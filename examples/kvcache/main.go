// kvcache: the paper's motivating scenario (Figure 1/12) as a runnable
// demo — a Redis-like store under a YCSB-style workload hits an infinite
// loop, and the same failure is recovered four ways: Vanilla restart,
// Builtin RDB reload, CRIU image restore, and PHOENIX partial preservation.
package main

import (
	"fmt"
	"log"
	"time"

	"phoenix/internal/apps/kvstore"
	"phoenix/internal/kernel"
	"phoenix/internal/recovery"
	"phoenix/internal/workload"
)

func run(mode recovery.Mode) {
	m := kernel.NewMachine(7)
	kv := kvstore.New(kvstore.Config{Cleanup: true}, nil)
	gen := workload.NewYCSB(workload.YCSBConfig{
		Seed: 7, Records: 30000, ReadFrac: 0.9, InsertFrac: 0.1,
		ValueSize: 128, ZipfianKeys: true,
	})
	cfg := recovery.Config{
		Mode:            mode,
		UnsafeRegions:   mode == recovery.ModePhoenix,
		WatchdogTimeout: 2 * time.Second,
	}
	if mode != recovery.ModeVanilla {
		cfg.CheckpointInterval = 2 * time.Second
	}
	h := recovery.NewHarness(m, cfg, kv, gen, nil)
	if err := h.Boot(); err != nil {
		log.Fatal(err)
	}
	keys := make([]string, 30000)
	for i := range keys {
		keys[i] = fmt.Sprintf("user%010d", i)
	}
	kv.Load(keys, 128)

	// Warm up, then trigger the Redis #12290 infinite loop (R4).
	if err := h.RunUntil(m.Clock.Now() + 5*time.Second); err != nil {
		log.Fatal(err)
	}
	kv.ArmBug("R4")
	if err := h.RunUntil(m.Clock.Now() + 15*time.Second); err != nil {
		log.Fatal(err)
	}

	sum := h.TL.Summarize()
	rec := "not reached"
	if sum.Recovered90 {
		rec = fmt.Sprintf("%.2fs", sum.Recovery90.Seconds())
	}
	fmt.Printf("%-8s downtime=%-8.3fs 5s-availability=%-6.2f 90%%-recovery=%s\n",
		mode, sum.Downtime.Seconds(), sum.FifthSecond, rec)
}

func main() {
	fmt.Println("Redis #12290 (infinite loop) recovered four ways:")
	for _, mode := range []recovery.Mode{
		recovery.ModeVanilla, recovery.ModeBuiltin, recovery.ModeCRIU, recovery.ModePhoenix,
	} {
		run(mode)
	}
	fmt.Println("\nPHOENIX keeps the dictionary in memory across the restart:")
	fmt.Println("downtime stays near the plain-restart floor while availability")
	fmt.Println("returns to the pre-failure level immediately (no warm-up).")
}
