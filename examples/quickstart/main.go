// Quickstart: the minimal PHOENIX integration of Figure 2/3 — a process
// builds a hash table in simulated memory, crashes on a null dereference,
// and performs a PHOENIX-mode restart that preserves the table while
// resetting execution.
package main

import (
	"fmt"
	"log"

	"phoenix"
	"phoenix/internal/costmodel"
)

func main() {
	machine := phoenix.NewMachine(42)

	// Build the application "binary": one ordinary static plus nothing
	// fancy — the preserved state lives on the heap.
	b := phoenix.NewImageBuilder("quickstart", 0x0010_0000)
	b.Var("config", 64, phoenix.SecData)
	img := b.Build()

	proc, err := machine.Spawn(img)
	if err != nil {
		log.Fatal(err)
	}

	// --- first incarnation: phx_init, build state, serve, crash ---
	rt := phoenix.Init(proc, nil)
	h, err := rt.OpenHeap(phoenix.HeapOptions{})
	if err != nil {
		log.Fatal(err)
	}
	ctx := phoenix.NewCtx(h, machine.Clock, costmodel.Default())
	table := phoenix.NewDict(ctx, 64)
	for i := 0; i < 10000; i++ {
		table.Set([]byte(fmt.Sprintf("key-%05d", i)), uint64(i))
	}
	fmt.Printf("built table with %d entries at simulated address %#x\n",
		table.Len(), uint64(table.Addr()))

	// The recovery-info block: root pointers the restart handler passes to
	// phx_restart. It must live in preserved memory (the heap).
	info := h.Alloc(16)
	proc.AS.WritePtr(info, table.Addr())

	// A request dereferences a null pointer — SIGSEGV.
	crash := proc.Run(func() {
		proc.AS.ReadU64(phoenix.NullPtr + 8)
	})
	fmt.Printf("crash: %s (%s)\n", crash.Reason, crash.Sig)

	// --- the restart handler's decision (Figure 2, lines 1-5) ---
	if !rt.AllSafe() {
		log.Fatal("would fall back to default recovery (mid-update crash)")
	}
	before := machine.Clock.Now()
	successor, err := rt.Restart(phoenix.RestartPlan{InfoAddr: info, WithHeap: true})
	if err != nil {
		log.Fatal(err)
	}

	// --- second incarnation: main runs again, adopts preserved state ---
	rt2 := phoenix.Init(successor, nil)
	if !rt2.IsRecoveryMode() {
		log.Fatal("expected recovery mode")
	}
	h2, err := rt2.OpenHeap(phoenix.HeapOptions{})
	if err != nil {
		log.Fatal(err)
	}
	ctx2 := phoenix.NewCtx(h2, machine.Clock, costmodel.Default())
	recovered := phoenix.OpenDict(ctx2, successor.AS.ReadPtr(rt2.RecoveryInfo()))
	fmt.Printf("phoenix restart took %v (simulated)\n", machine.Clock.Now()-before)
	fmt.Printf("recovered table: %d entries, valid=%v\n", recovered.Len(), recovered.Validate())

	v, ok := recovered.Get([]byte("key-00042"))
	fmt.Printf("lookup key-00042 -> %d (found=%v)\n", v, ok)

	// Cleanup: mark what we keep, sweep the rest (phx_finish_recovery).
	recovered.Mark(nil)
	h2.Mark(rt2.RecoveryInfo())
	freed, bytes := rt2.FinishRecovery(true)
	fmt.Printf("cleanup freed %d chunks (%d bytes)\n", freed, bytes)
}
