// allocator: component-granular preservation with phx_create_allocator
// (§3.3) — a server keeps its durable index in one PHOENIX allocator and a
// rebuildable query cache in another, and chooses at crash time to preserve
// the index while discarding the cache region wholesale (no mark-and-sweep
// needed for the discarded component).
package main

import (
	"fmt"
	"log"

	"phoenix"
	"phoenix/internal/costmodel"
)

func main() {
	m := phoenix.NewMachine(9)
	b := phoenix.NewImageBuilder("allocator-demo", 0x0010_0000)
	b.Var("cfg", 8, phoenix.SecData)
	proc, err := m.Spawn(b.Build())
	if err != nil {
		log.Fatal(err)
	}
	rt := phoenix.Init(proc, nil)
	if _, err := rt.OpenHeap(phoenix.HeapOptions{}); err != nil {
		log.Fatal(err)
	}

	// Two components, two allocator regions (phx_create_allocator).
	indexAlloc, err := rt.CreateAllocator(phoenix.HeapOptions{Name: "index"})
	if err != nil {
		log.Fatal(err)
	}
	cacheAlloc, err := rt.CreateAllocator(phoenix.HeapOptions{Name: "qcache"})
	if err != nil {
		log.Fatal(err)
	}
	model := costmodel.Default()
	index := phoenix.NewDict(phoenix.NewCtx(indexAlloc, m.Clock, model), 64)
	qcache := phoenix.NewDict(phoenix.NewCtx(cacheAlloc, m.Clock, model), 64)
	for i := 0; i < 5000; i++ {
		index.Set([]byte(fmt.Sprintf("doc-%05d", i)), uint64(i))
	}
	for i := 0; i < 2000; i++ {
		qcache.Set([]byte(fmt.Sprintf("query-%05d", i)), uint64(i*i))
	}
	fmt.Printf("index: %d entries (%s region)   query cache: %d entries (%s region)\n",
		index.Len(), "preserved", qcache.Len(), "to be discarded")

	info := rt.MainHeap().Alloc(16)
	proc.AS.WritePtr(info, index.Addr())
	cacheRoot := qcache.Addr()

	// Crash, then restart preserving only the index component.
	crash := proc.Run(func() { proc.AS.ReadU64(phoenix.NullPtr) })
	fmt.Printf("crash: %s\n", crash.Reason)
	np, err := rt.Restart(phoenix.RestartPlan{
		InfoAddr:   info,
		WithHeap:   true, // the main heap holds the info block
		Allocators: []*phoenix.Heap{indexAlloc},
	})
	if err != nil {
		log.Fatal(err)
	}

	rt2 := phoenix.Init(np, nil)
	if _, err := rt2.OpenHeap(phoenix.HeapOptions{}); err != nil {
		log.Fatal(err)
	}
	indexAlloc2, err := rt2.CreateAllocator(phoenix.HeapOptions{Name: "index"})
	if err != nil {
		log.Fatal(err)
	}
	recovered := phoenix.OpenDict(phoenix.NewCtx(indexAlloc2, m.Clock, model), np.AS.ReadPtr(rt2.RecoveryInfo()))
	fmt.Printf("recovered index: %d entries, valid=%v\n", recovered.Len(), recovered.Validate())

	// The cache region is simply gone — no per-object cleanup was needed.
	if ci := np.Run(func() { np.AS.ReadU64(cacheRoot) }); ci != nil {
		fmt.Printf("query cache region discarded wholesale: %s\n", ci.Reason)
	}
	fmt.Println("component-granular preservation: keep the expensive index,")
	fmt.Println("drop the rebuildable cache without any mark-and-sweep pass.")
}
