// training: stage-based progress recovery (§3.7, Figure 8/13) — a gradient-
// boosting run crashes mid-iteration; Builtin recovery reloads an old model
// checkpoint and recomputes lost iterations, while PHOENIX resumes inside
// the crashed iteration via phx_stage.
package main

import (
	"fmt"
	"log"
	"time"

	"phoenix/internal/apps/boost"
	"phoenix/internal/kernel"
	"phoenix/internal/recovery"
	"phoenix/internal/workload"
)

type iterGen struct{ seq uint64 }

func (g *iterGen) Next() *workload.Request {
	g.seq++
	return &workload.Request{Seq: g.seq, Op: workload.OpRead, Key: "iter"}
}

func (g *iterGen) Clone(seed int64) workload.Generator { return &iterGen{} }

func run(mode recovery.Mode) {
	m := kernel.NewMachine(3)
	tr := boost.New(boost.Config{Samples: 1000, Features: 8, MaxIters: 2048, WorkScale: 200}, nil)
	cfg := recovery.Config{Mode: mode, WatchdogTimeout: time.Second}
	if mode == recovery.ModeBuiltin {
		cfg.CheckpointInterval = 3 * time.Second
	}
	h := recovery.NewHarness(m, cfg, tr, &iterGen{}, nil)
	if err := h.Boot(); err != nil {
		log.Fatal(err)
	}
	// Dwell past the last checkpoint so the crash loses real work.
	if err := h.RunUntil(m.Clock.Now() + 11*time.Second); err != nil {
		log.Fatal(err)
	}
	atCrash := tr.CompletedIters()
	tr.ArmBug("X1") // the XGBoost memory-leak issue: OOM mid-training
	if err := h.RunUntil(m.Clock.Now() + 10*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s crash@iter=%-5d downtime=%-8.3fs recomputed=%-5d final=%-5d rmse=%.4f\n",
		mode, atCrash, h.TL.Summarize().Downtime.Seconds(),
		tr.Stats().Recomputed, tr.CompletedIters(), tr.RMSE())
}

func main() {
	fmt.Println("Gradient-boosting training with a mid-run OOM crash:")
	for _, mode := range []recovery.Mode{recovery.ModeVanilla, recovery.ModeBuiltin, recovery.ModePhoenix} {
		run(mode)
	}
	fmt.Println("\nPHOENIX preserves the model, workspace, and the phx_stage")
	fmt.Println("tracker, so training resumes at the crashed stage with zero")
	fmt.Println("recomputation; Builtin replays everything since its checkpoint.")
}
