// crosscheck: background cross-check validation (§3.6) — after a PHOENIX
// restart, the store keeps serving speculatively while a background process
// runs the default recovery (RDB load + in-memory redo-log replay) and
// compares states. A clean recovery passes; a run with silently corrupted
// preserved state is caught and hot-switched to the validated state.
package main

import (
	"fmt"
	"log"
	"time"

	"phoenix/internal/apps/kvstore"
	"phoenix/internal/faultinject"
	"phoenix/internal/kernel"
	"phoenix/internal/recovery"
	"phoenix/internal/workload"
)

func run(corrupt bool) {
	m := kernel.NewMachine(11)
	inj := faultinject.New()
	kv := kvstore.New(kvstore.Config{RedoLog: true, Cleanup: true}, inj)
	cfg := recovery.Config{
		Mode: recovery.ModePhoenix, UnsafeRegions: false, CrossCheck: true,
		CheckpointInterval: time.Hour, // force the redo log to carry the work
		WatchdogTimeout:    time.Second,
	}
	h := recovery.NewHarness(m, cfg, kv, workload.NewFillSeq(64), inj)
	if err := h.Boot(); err != nil {
		log.Fatal(err)
	}
	if err := h.RunRequests(2000); err != nil {
		log.Fatal(err)
	}
	if corrupt {
		// A missing-store fault silently drops one insert from the
		// dictionary while the redo log still records it.
		inj.Arm("kv.set.link", faultinject.MissingStore)
		inj.Enable()
		if err := h.RunRequests(200); err != nil {
			log.Fatal(err)
		}
	}
	kv.ArmBug("R3") // crash outside any unsafe region
	if err := h.RunRequests(200); err != nil {
		log.Fatal(err)
	}
	// Let the background validation finish, then take a step so a pending
	// hot-switch is processed.
	m.Clock.Advance(10 * time.Second)
	if err := h.RunRequests(10); err != nil {
		log.Fatal(err)
	}

	v := h.CrossCheckResult()
	if v == nil {
		log.Fatal("cross-check did not complete")
	}
	label := "clean preserved state"
	if corrupt {
		label = "silently corrupted preserved state"
	}
	fmt.Printf("%s:\n", label)
	fmt.Printf("  verdict: match=%v diverged=%v\n", v.Match, v.Diverged)
	fmt.Printf("  hot-switches to validated state: %d\n", h.Stat.CrossFallbacks)
	fmt.Printf("  final dataset size: %d keys\n\n", len(kv.Dump()))
}

func main() {
	fmt.Println("Cross-check validation after a PHOENIX restart:")
	run(false)
	run(true)
	fmt.Println("A mismatch confines any incorrect output to the speculation")
	fmt.Println("window and switches to the state the default recovery built.")
}
