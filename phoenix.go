// Package phoenix is the public API of the PHOENIX reproduction: optimistic
// custom recovery for high-availability software via partial process state
// preservation (SOSP 2025).
//
// PHOENIX adds a fast recovery path to an application: on failure, the
// process restarts from main like a normal restart — discarding transient
// state and resetting execution — but selectively carries its large,
// long-lived data structures into the new process at their original virtual
// addresses, skipping the expensive state reconstruction that dominates
// restart downtime and warm-up.
//
// The package re-exports the runtime library (phx_init, phx_restart,
// unsafe regions, stage-based progress recovery, cross-check validation)
// together with the simulated substrate it runs on — virtual memory, a
// simulated kernel with the preserve_exec system call, a malloc-style heap,
// and data structures that live in simulated memory. See DESIGN.md for the
// architecture and EXPERIMENTS.md for the paper-vs-measured evaluation.
//
// Quickstart (see examples/quickstart for the full program):
//
//	machine := phoenix.NewMachine(1)
//	proc, _ := machine.Spawn(image)
//	rt := phoenix.Init(proc, nil)
//	heap, _ := rt.OpenHeap(phoenix.HeapOptions{})
//	// ... build state in simulated memory, then on failure:
//	successor, _ := rt.Restart(phoenix.RestartPlan{InfoAddr: info, WithHeap: true})
package phoenix

import (
	"phoenix/internal/core"
	"phoenix/internal/heap"
	"phoenix/internal/kernel"
	"phoenix/internal/linker"
	"phoenix/internal/mem"
	"phoenix/internal/simds"
)

// Core runtime (Table 2 APIs).
type (
	// Runtime is the per-process PHOENIX context (phx_init's result).
	Runtime = core.Runtime
	// RestartPlan parameterises a PHOENIX-mode restart (phx_restart).
	RestartPlan = core.RestartPlan
	// Stages is the stage-based progress-recovery tracker (phx_stage).
	Stages = core.Stages
	// StageVault backs SAVE/RESTORE hooks: preserved pre-images for stage
	// bodies that mutate state in place (Figure 8's basic pattern).
	StageVault = core.StageVault
	// RedoLog is the in-memory redo log backing cross-check validation.
	RedoLog = core.RedoLog
	// CrossCheckSpec wires an application into background validation.
	CrossCheckSpec = core.CrossCheckSpec
	// Verdict is a cross-check outcome.
	Verdict = core.Verdict
	// StateDump is a logical application-state snapshot used in validation.
	StateDump = core.StateDump
	// UnsafeSet tracks per-component unsafe-region counters.
	UnsafeSet = core.UnsafeSet
)

// Init initialises the PHOENIX context for a process (phx_init).
var Init = core.Init

// CompareDumps compares two state dumps at the data-structure level.
var CompareDumps = core.CompareDumps

// DefaultHeapBase is where a process's main heap region is placed.
const DefaultHeapBase = core.DefaultHeapBase

// Simulated OS substrate.
type (
	// Machine is the simulated host (clock, cost model, disk, processes).
	Machine = kernel.Machine
	// Process is one simulated process.
	Process = kernel.Process
	// CrashInfo describes a caught failure.
	CrashInfo = kernel.CrashInfo
	// Crash is the panic value for non-memory application failures.
	Crash = kernel.Crash
	// ExecSpec parameterises the preserve_exec system call directly.
	ExecSpec = kernel.ExecSpec
	// Signal is a POSIX-style signal number.
	Signal = kernel.Signal
)

// NewMachine boots a simulated machine with a deterministic seed.
var NewMachine = kernel.NewMachine

// Signals PHOENIX hooks.
const (
	SIGSEGV = kernel.SIGSEGV
	SIGABRT = kernel.SIGABRT
	SIGALRM = kernel.SIGALRM
)

// Memory and binary-image substrate.
type (
	// VAddr is a simulated virtual address.
	VAddr = mem.VAddr
	// AddressSpace is a process's simulated virtual memory.
	AddressSpace = mem.AddressSpace
	// Fault is the panic value for invalid simulated-memory accesses.
	Fault = mem.Fault
	// Image is a simulated binary with sections (including .phx.data/.bss).
	Image = linker.Image
	// ImageBuilder lays out images and phxsec static variables.
	ImageBuilder = linker.Builder
	// StaticVar is a named static placed in a section.
	StaticVar = linker.StaticVar
	// Range is a byte range of simulated memory.
	Range = linker.Range
)

// NullPtr is the canonical nil simulated pointer.
const NullPtr = mem.NullPtr

// PageSize is the simulated page size.
const PageSize = mem.PageSize

// NewImageBuilder starts an image layout (see linker.NewBuilder).
var NewImageBuilder = linker.NewBuilder

// Section kinds for ImageBuilder.Var — SecPhxData/SecPhxBSS are the
// PHOENIX-preserved sections the phxsec annotation targets.
const (
	SecData    = linker.SecData
	SecBSS     = linker.SecBSS
	SecPhxData = linker.SecPhxData
	SecPhxBSS  = linker.SecPhxBSS
)

// Heap substrate.
type (
	// Heap is the simulated malloc (glibc-style, with PHOENIX marker bits).
	Heap = heap.Heap
	// HeapOptions configures a heap region.
	HeapOptions = heap.Options
)

// Data structures in simulated memory.
type (
	// Ctx bundles the accessors simulated-memory data structures need.
	Ctx = simds.Ctx
	// Dict is a hash table in simulated memory.
	Dict = simds.Dict
	// Skiplist is an ordered map in simulated memory.
	Skiplist = simds.Skiplist
	// List is an intrusive doubly-linked list in simulated memory.
	List = simds.List
)

// Constructors for simulated-memory data structures.
var (
	NewCtx         = simds.NewCtx
	NewDict        = simds.NewDict
	OpenDict       = simds.OpenDict
	NewSkiplist    = simds.NewSkiplist
	OpenSkiplist   = simds.OpenSkiplist
	NewList        = simds.NewList
	OpenList       = simds.OpenList
	NewRedoLog     = core.NewRedoLog
	OpenRedoLog    = core.OpenRedoLog
	NewStageVault  = core.NewStageVault
	OpenStageVault = core.OpenStageVault
)
