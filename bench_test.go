package phoenix

import (
	"fmt"
	"io"
	"testing"

	"phoenix/internal/costmodel"
	"phoenix/internal/experiments"
	"phoenix/internal/mem"
	"phoenix/internal/perftraj"
)

// One benchmark per paper table/figure: each runs the corresponding
// experiment end to end at reduced (Quick) scale. The harness prints the
// same rows/series the paper reports when run via cmd/phoenix-bench; here
// the output is discarded and the wall-clock cost of regenerating the
// artifact is what's measured.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		if err := e.Run(experiments.Options{Quick: true, Seed: int64(i + 1), Out: io.Discard}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTab1FailureStudy(b *testing.B)      { benchExperiment(b, "tab1") }
func BenchmarkFig1RedisTimeline(b *testing.B)     { benchExperiment(b, "fig1") }
func BenchmarkFig9RestartLatency(b *testing.B)    { benchExperiment(b, "fig9") }
func BenchmarkTab3Systems(b *testing.B)           { benchExperiment(b, "tab3") }
func BenchmarkTab4PortingEffort(b *testing.B)     { benchExperiment(b, "tab4") }
func BenchmarkTab5BugCatalogue(b *testing.B)      { benchExperiment(b, "tab5") }
func BenchmarkFig10BugCases(b *testing.B)         { benchExperiment(b, "fig10") }
func BenchmarkFig11VarnishDeadlock(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12RedisMechanisms(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13TrainingProgress(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkTab6FaultTypes(b *testing.B)        { benchExperiment(b, "tab6") }
func BenchmarkTab7Injection(b *testing.B)         { benchExperiment(b, "tab7") }
func BenchmarkTab8Overhead(b *testing.B)          { benchExperiment(b, "tab8") }
func BenchmarkTab9MemoryReuse(b *testing.B)       { benchExperiment(b, "tab9") }

// --- micro-benchmarks of the core mechanisms ---

// BenchmarkPreserveExec measures one PHOENIX restart preserving 16 MiB of
// heap (the Figure 9 mechanism), in host wall-clock terms.
func BenchmarkPreserveExec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := NewMachine(int64(i + 1))
		bld := NewImageBuilder("bench", 0x0010_0000)
		bld.Var("cfg", 8, SecData)
		proc, err := m.Spawn(bld.Build())
		if err != nil {
			b.Fatal(err)
		}
		rt := Init(proc, nil)
		h, err := rt.OpenHeap(HeapOptions{})
		if err != nil {
			b.Fatal(err)
		}
		p := h.Alloc(16 << 20)
		proc.AS.WriteU64(p, 42)
		info := h.Alloc(16)
		proc.AS.WritePtr(info, p)
		np, err := rt.Restart(RestartPlan{InfoAddr: info, WithHeap: true})
		if err != nil {
			b.Fatal(err)
		}
		rt2 := Init(np, nil)
		if !rt2.IsRecoveryMode() {
			b.Fatal("not in recovery mode")
		}
	}
}

// BenchmarkPreserveCommit runs the incremental preserve_exec scenario over
// the 10k-page set at 1% and 100% dirty. Wall clock measures the simulator;
// the reported sim-ns metrics are the deterministic latencies the checked-in
// BENCH_preserve.json trajectory gates, and the bench asserts the headline
// acceptance criterion (>= 5x at 1% vs 100% dirty) every run.
func BenchmarkPreserveCommit(b *testing.B) {
	for _, frac := range []struct {
		name  string
		dirty int
	}{
		{"dirty1pct", perftraj.Pages / 100},
		{"dirty100pct", perftraj.Pages},
	} {
		b.Run(frac.name, func(b *testing.B) {
			var last int64
			for i := 0; i < b.N; i++ {
				_, second, err := perftraj.PreserveCommit(perftraj.Pages, frac.dirty)
				if err != nil {
					b.Fatal(err)
				}
				last = int64(second)
			}
			b.ReportMetric(float64(last), "sim-ns/commit")
		})
	}
	_, onePct, err := perftraj.PreserveCommit(perftraj.Pages, perftraj.Pages/100)
	if err != nil {
		b.Fatal(err)
	}
	_, full, err := perftraj.PreserveCommit(perftraj.Pages, perftraj.Pages)
	if err != nil {
		b.Fatal(err)
	}
	if ratio := float64(full) / float64(onePct); ratio < 5 {
		b.Fatalf("1%% dirty commit only %.1fx faster than 100%% dirty (want >= 5x)", ratio)
	}
}

// BenchmarkRestartToFirstRequest measures the optimistic-recovery critical
// path — PHOENIX restart, re-init, first preserved read — for a 10k-page
// state, reporting the deterministic simulated latency alongside wall clock.
func BenchmarkRestartToFirstRequest(b *testing.B) {
	var last int64
	for i := 0; i < b.N; i++ {
		d, err := perftraj.RestartToFirstRequest(perftraj.Pages)
		if err != nil {
			b.Fatal(err)
		}
		last = int64(d)
	}
	b.ReportMetric(float64(last), "sim-ns/restart")
}

// BenchmarkDirtyTracking measures the host-side overhead the soft-dirty
// machinery adds to the hot write path plus a full dirty-set scan — the cost
// every simulated store now pays for the incremental wins above.
func BenchmarkDirtyTracking(b *testing.B) {
	const pages = 10000
	const region = VAddr(0x2000_0000)
	m := NewMachine(1)
	proc, err := m.Spawn(nil)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := proc.AS.Map(region, pages, mem.KindCustom, "bench"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for pg := 0; pg < pages; pg++ {
			proc.AS.WriteU64(region+VAddr(pg)*PageSize, uint64(i))
		}
		if n := proc.AS.DirtyPagesIn(region, pages); n != pages {
			b.Fatalf("dirty scan found %d of %d pages", n, pages)
		}
		proc.AS.ClearDirty(region, pages)
	}
}

// BenchmarkDictSet measures inserts into the simulated-memory dictionary.
func BenchmarkDictSet(b *testing.B) {
	m := NewMachine(1)
	bld := NewImageBuilder("bench", 0x0010_0000)
	bld.Var("cfg", 8, SecData)
	proc, _ := m.Spawn(bld.Build())
	rt := Init(proc, nil)
	h, _ := rt.OpenHeap(HeapOptions{})
	ctx := NewCtx(h, nil, costmodel.Default())
	d := NewDict(ctx, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Set([]byte(fmt.Sprintf("key-%09d", i)), uint64(i))
	}
}

// BenchmarkDictGet measures lookups.
func BenchmarkDictGet(b *testing.B) {
	m := NewMachine(1)
	bld := NewImageBuilder("bench", 0x0010_0000)
	bld.Var("cfg", 8, SecData)
	proc, _ := m.Spawn(bld.Build())
	rt := Init(proc, nil)
	h, _ := rt.OpenHeap(HeapOptions{})
	ctx := NewCtx(h, nil, costmodel.Default())
	d := NewDict(ctx, 1024)
	const n = 10000
	for i := 0; i < n; i++ {
		d.Set([]byte(fmt.Sprintf("key-%09d", i)), uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Get([]byte(fmt.Sprintf("key-%09d", i%n)))
	}
}

// BenchmarkHeapAllocFree measures the simulated malloc.
func BenchmarkHeapAllocFree(b *testing.B) {
	m := NewMachine(1)
	bld := NewImageBuilder("bench", 0x0010_0000)
	bld.Var("cfg", 8, SecData)
	proc, _ := m.Spawn(bld.Build())
	rt := Init(proc, nil)
	h, _ := rt.OpenHeap(HeapOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := h.Alloc(128)
		if p == NullPtr {
			b.Fatal("oom")
		}
		h.Free(p)
	}
}

// BenchmarkMarkSweep measures the cleanup pass over 10k live chunks.
func BenchmarkMarkSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := NewMachine(1)
		bld := NewImageBuilder("bench", 0x0010_0000)
		bld.Var("cfg", 8, SecData)
		proc, _ := m.Spawn(bld.Build())
		rt := Init(proc, nil)
		h, _ := rt.OpenHeap(HeapOptions{})
		keep := make([]VAddr, 5000)
		for j := range keep {
			keep[j] = h.Alloc(64)
			h.Alloc(64) // garbage interleaved
		}
		b.StartTimer()
		for _, p := range keep {
			h.Mark(p)
		}
		if freed, _, _ := h.Sweep(); freed != 5000 {
			b.Fatalf("swept %d", freed)
		}
	}
}
