module phoenix

go 1.22
