// Command phxkv is an interactive demo of the kvstore analogue under
// PHOENIX recovery: a small REPL over the simulated store where you can
// set/get keys, crash the process in different ways, and watch PHOENIX
// preserve (or, for mid-update crashes, refuse to preserve) the dictionary.
//
// Commands:
//
//	set K V       store a key
//	get K         read a key
//	del K         delete a key
//	len           number of keys
//	crash         null-dereference crash (R3 class)
//	hang          infinite loop, ended by the watchdog (R4 class)
//	corrupt       unsanitized overwrite inside the unsafe region (R2 class)
//	stats         harness statistics
//	quit
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"
	"time"

	"phoenix/internal/apps/kvstore"
	"phoenix/internal/kernel"
	"phoenix/internal/recovery"
	"phoenix/internal/workload"
)

// replGen is a placeholder generator; the REPL injects requests directly.
type replGen struct{}

func (replGen) Next() *workload.Request { return &workload.Request{Op: workload.OpRead, Key: "_"} }

func (replGen) Clone(seed int64) workload.Generator { return replGen{} }

func main() {
	m := kernel.NewMachine(1)
	kv := kvstore.New(kvstore.Config{Cleanup: true}, nil)
	cfg := recovery.Config{
		Mode: recovery.ModePhoenix, UnsafeRegions: true,
		WatchdogTimeout: 2 * time.Second,
	}
	h := recovery.NewHarness(m, cfg, kv, replGen{}, nil)
	if err := h.Boot(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("phxkv — PHOENIX-protected KV store (type 'help')")

	exec := func(req *workload.Request) {
		var ok, eff bool
		ci := h.Proc().Run(func() { ok, eff = kv.Handle(req) })
		if ci == nil {
			fmt.Printf("ok=%v hit=%v (t=%v)\n", ok, eff, m.Clock.Now())
			return
		}
		fmt.Printf("!! %s: %s\n", ci.Sig, ci.Reason)
		recoverNow(h, m, ci)
	}

	sc := bufio.NewScanner(os.Stdin)
	for fmt.Print("> "); sc.Scan(); fmt.Print("> ") {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "set":
			if len(fields) != 3 {
				fmt.Println("usage: set K V")
				continue
			}
			exec(&workload.Request{Op: workload.OpInsert, Key: fields[1], Value: []byte(fields[2])})
		case "get":
			if len(fields) != 2 {
				fmt.Println("usage: get K")
				continue
			}
			exec(&workload.Request{Op: workload.OpRead, Key: fields[1]})
		case "del":
			if len(fields) != 2 {
				fmt.Println("usage: del K")
				continue
			}
			exec(&workload.Request{Op: workload.OpDelete, Key: fields[1]})
		case "len":
			fmt.Println(kv.Len())
		case "crash":
			kv.ArmBug("R3")
			exec(&workload.Request{Op: workload.OpRead, Key: "_"})
		case "hang":
			kv.ArmBug("R4")
			exec(&workload.Request{Op: workload.OpRead, Key: "_"})
		case "corrupt":
			kv.ArmBug("R2")
			exec(&workload.Request{Op: workload.OpInsert, Key: "_", Value: []byte("_")})
		case "stats":
			fmt.Printf("phoenix restarts: %d, unsafe fallbacks: %d, failures: %d, sim time: %v\n",
				h.Stat.PhoenixRestarts, h.Stat.UnsafeFallbacks, h.Stat.Failures, m.Clock.Now())
		case "help":
			fmt.Println("set K V | get K | del K | len | crash | hang | corrupt | stats | quit")
		case "quit", "exit":
			return
		default:
			fmt.Println("unknown command (try 'help')")
		}
	}
}

// recoverNow mirrors the driver's failure handling for the REPL.
func recoverNow(h *recovery.Harness, m *kernel.Machine, ci *kernel.CrashInfo) {
	before := m.Clock.Now()
	// Route through the harness by replaying the failure path: the harness
	// only handles failures inside Step, so drive one no-op request whose
	// handling begins with the recovery. Simplest correct route: use the
	// internal handler via a synthetic step.
	if err := h.HandleFailureForREPL(ci); err != nil {
		fmt.Fprintln(os.Stderr, "recovery failed:", err)
		os.Exit(1)
	}
	fmt.Printf("recovered in %v (simulated); phoenix restarts so far: %d, fallbacks: %d\n",
		m.Clock.Now()-before, h.Stat.PhoenixRestarts, h.Stat.UnsafeFallbacks)
}
