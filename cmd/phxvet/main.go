// Command phxvet runs the whole-program preservation-safety verifier: an
// Andersen-style points-to / escape analysis over the mini-IR that
// classifies every abstract object as preserved-reachable or transient and
// reports position-carrying finding kinds:
//
//   - dangling-reference: a store may make preserved-reachable memory point
//     at a transient (talloc) allocation site — the word dangles once a
//     PHOENIX restart discards the transient arena;
//   - unsafe-region-gap: a store that writes preserved memory by a path the
//     taint instrumentation cannot see (e.g. a preserved pointer stashed in
//     transient scratch and reloaded), leaving it outside every unsafe
//     region;
//   - cross-domain-store: a component-assigned function stores into
//     preserved state owned by another component, escaping its rewind
//     domain and defeating the sub-process recovery rungs;
//   - rewind-escape (flow-sensitive): a store publishes a pointer to
//     preserved state allocated during the current request into transient
//     state the rewind rung's undo journal does not cover — after a domain
//     discard the transient word dangles into unwound heap;
//   - icall-resolution (informational): points-to narrowed an indirect
//     call's target set below the arity-matched candidate merge.
//
// With no file argument it vets every built-in application model; the exit
// code is 1 if any model has a non-informational finding. The JSON output is
// deterministic: same inputs, byte-identical report (CI enforces this).
//
// Usage:
//
//	phxvet                         # vet all built-in application models
//	phxvet -model kvstore          # one built-in model
//	phxvet -json                   # deterministic JSON report
//	phxvet -entries handler f.pir  # vet a .pir file from disk
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"phoenix/internal/analysis"
	"phoenix/internal/analysis/pta"
	"phoenix/internal/ir"
)

// ModelReport pairs one model name with its verifier report in the JSON
// output.
type ModelReport struct {
	Model  string      `json:"model"`
	Report *pta.Report `json:"report"`
}

func main() {
	var (
		model   = flag.String("model", "", "restrict to one built-in application model (default: all)")
		entries = flag.String("entries", "", "comma-separated serving entry functions (required for .pir file input)")
		jsonOut = flag.Bool("json", false, "emit the full report as deterministic JSON")
	)
	flag.Parse()

	var reports []ModelReport
	if flag.NArg() > 0 {
		if flag.NArg() != 1 {
			fatalf("want exactly one .pir file, got %d", flag.NArg())
		}
		if *entries == "" {
			fatalf("-entries is required for file input")
		}
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		m, err := ir.Parse(string(src))
		if err != nil {
			fatalf("%v", err)
		}
		if _, err := m.Validate(); err != nil {
			fatalf("%v", err)
		}
		rep, err := pta.Vet(m, strings.Split(*entries, ","))
		if err != nil {
			fatalf("%v", err)
		}
		reports = append(reports, ModelReport{Model: flag.Arg(0), Report: rep})
	} else {
		matched := false
		for _, app := range analysis.IRApps() {
			if *model != "" && app.Name != *model {
				continue
			}
			matched = true
			rep, err := pta.Vet(ir.MustParse(app.Src), app.Entries)
			if err != nil {
				fatalf("%s: %v", app.Name, err)
			}
			reports = append(reports, ModelReport{Model: app.Name, Report: rep})
		}
		if !matched {
			fatalf("unknown model %q", *model)
		}
	}

	dirty := 0
	for _, r := range reports {
		if !r.Report.Clean() {
			dirty++
		}
	}
	if *jsonOut {
		out, err := json.Marshal(reports)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("%s\n", out)
	} else {
		for _, r := range reports {
			rep := r.Report
			fmt.Printf("%-12s entries=%s funcs=%d objects=%d preserved=%d transient=%d clean=%v\n",
				r.Model, strings.Join(rep.Entries, ","), rep.Funcs, rep.Objects,
				rep.Preserved, rep.Transient, rep.Clean())
			for _, f := range rep.Findings {
				fmt.Printf("  %s:%d:%d: %s: %s\n", f.Fn, f.Line, f.Col, f.Kind, f.Msg)
			}
		}
		if dirty > 0 {
			fmt.Printf("phxvet: %d model(s) with preservation-safety findings\n", dirty)
		}
	}
	if dirty > 0 {
		os.Exit(1)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "phxvet: "+format+"\n", args...)
	os.Exit(1)
}
