// Command phxinject runs fault-injection campaigns. The default campaign is
// the IR-level one against the instrumented mini-IR model — the distilled
// version of §4.4's experiment: inject one instruction-level fault, run the
// workload, crash at random points, and check the state-stack recovery
// condition against the ground truth consistency of the preserved
// dictionary. -campaign selects the system-level campaigns instead:
// "atomicity" replays recovery-path faults (including Byzantine bit flips in
// the preserved frames) against every application and requires no torn
// survivor; "escalation" drives repeated preserved-state corruption through
// the crash-loop breaker and requires the full detect → escalate →
// de-escalate cycle; "cluster" drives client traffic through a replicated
// serving tier over a simulated network while nodes are killed, drained, and
// partitioned on a schedule, and requires PHOENIX's measured availability to
// strictly beat a vanilla restart's under identical faults; "shard" drives
// open-loop traffic through a sharded serving fabric while replicas are
// killed and shards are live-migrated mid-traffic, and requires PHOENIX to
// beat vanilla on availability and on the migration cutover window (delta
// convergence vs stop-and-copy), with zero lost acked writes and zero
// non-owner serves; "explore" sweeps
// randomized fault schedules (one per seed) against per-app invariant
// oracles, shrinking every violation to a minimal replayable artifact; "vet"
// differentially validates the phxvet static verifier — every application
// model must verify clean AND stay violation-free under randomized dynamic
// schedules, and every seeded dangling-store mutant must be flagged
// statically at the planted position and manifest dynamically; "microreboot"
// measures the recovery-granularity windows — the simulated unavailability of
// the same mid-request fault recovered by request rewind, component
// microreboot, PHOENIX preserve_exec, builtin restart, and vanilla restart —
// and requires each finer granularity to strictly beat the coarser ones;
// "lint" runs the phoenixlint static contract suite (snapshot-purity,
// dirty-bit soundness, cost-charging, determinism) over the module and fails
// on any finding not covered by the checked-in baseline of accepted
// exceptions.
//
// Usage:
//
//	phxinject -runs 200                  # IR campaign on the bundled kvmodel
//	phxinject -runs 200 -seed 7 -v
//	phxinject -campaign atomicity        # recovery-path faults, all apps
//	phxinject -campaign escalation       # Byzantine corruption, all apps
//	phxinject -campaign escalation -app kvstore -crashes 9
//	phxinject -campaign cluster          # availability under traffic, all apps
//	phxinject -campaign cluster -app kvstore -json
//	phxinject -campaign shard            # sharded fabric: kills + live migration
//	phxinject -campaign shard -app kvstore -json
//	phxinject -campaign explore -seeds 200        # randomized schedule search
//	phxinject -campaign explore -seeds 50 -app kvstore -json
//	phxinject -campaign vet -seeds 200            # static/dynamic differential
//	phxinject -campaign vet -seeds 50 -app kvstore -json
//	phxinject -campaign microreboot               # granularity windows, all apps
//	phxinject -campaign microreboot -app boost -json
//	phxinject -campaign lint                      # static contract suite
//	phxinject -campaign lint -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"phoenix/internal/analysis"
	"phoenix/internal/apps/registry"
	"phoenix/internal/cluster"
	"phoenix/internal/explore"
	"phoenix/internal/ir"
	"phoenix/internal/lint"
	"phoenix/internal/recovery"
	"phoenix/internal/shard"
)

func main() {
	var (
		runs     = flag.Int("runs", 200, "number of injection runs (ir campaign)")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		v        = flag.Bool("v", false, "print per-run outcomes")
		campaign = flag.String("campaign", "ir", "campaign to run: ir, atomicity, escalation, cluster, shard, explore, vet, microreboot, concurrency, lint")
		app      = flag.String("app", "", "restrict system-level campaigns to one application (default: all)")
		crashes  = flag.Int("crashes", 0, "escalation campaign: corruption-armed crash cycles (0 = default)")
		jsonOut  = flag.Bool("json", false, "cluster/explore/vet campaigns: emit the full report as deterministic JSON")
		seeds    = flag.Int("seeds", 200, "explore/vet campaigns: number of consecutive seeds to sweep")
	)
	flag.Parse()

	switch *campaign {
	case "ir":
		// Falls through to the IR campaign below.
	case "atomicity", "escalation":
		if err := runSystemCampaign(*campaign, *app, *seed, *crashes); err != nil {
			fatalf("%v", err)
		}
		return
	case "cluster":
		if err := runClusterCampaign(*app, *seed, *jsonOut); err != nil {
			fatalf("%v", err)
		}
		return
	case "shard":
		if err := runShardCampaign(*app, *seed, *jsonOut); err != nil {
			fatalf("%v", err)
		}
		return
	case "explore":
		if err := runExploreCampaign(*app, *seed, *seeds, *jsonOut, *v); err != nil {
			fatalf("%v", err)
		}
		return
	case "vet":
		if err := runVetCampaign(*app, *seed, *seeds, *jsonOut, *v); err != nil {
			fatalf("%v", err)
		}
		return
	case "microreboot":
		if err := runMicrorebootCampaign(*app, *seed, *jsonOut); err != nil {
			fatalf("%v", err)
		}
		return
	case "lint":
		if err := runLintCampaign(*jsonOut); err != nil {
			fatalf("%v", err)
		}
		return
	case "concurrency":
		if err := runConcurrencyCampaign(*app, *seed, *jsonOut); err != nil {
			fatalf("%v", err)
		}
		return
	default:
		fatalf("unknown campaign %q (want ir, atomicity, escalation, cluster, shard, explore, vet, microreboot, concurrency, or lint)", *campaign)
	}

	mod := ir.MustParse(analysis.KVModel)
	a := analysis.New(mod)
	if err := a.Run("handler", nil); err != nil {
		fatalf("analysis: %v", err)
	}
	instrumented, _, err := a.Instrument()
	if err != nil {
		fatalf("instrument: %v", err)
	}
	sites := ir.EnumerateFaultSites(instrumented, nil)
	rng := rand.New(rand.NewSource(*seed))

	var (
		completed, crashed     int
		safeVerdict, unsafeVer int
		inconsistent, falseNeg int
		silentCarried          int
	)
	for i := 0; i < *runs; i++ {
		site := sites[rng.Intn(len(sites))]
		fm, err := ir.Inject(instrumented, site)
		if err != nil {
			continue
		}
		in := ir.NewInterp(fm)
		in.MaxStep = 20000
		seedDict(in)
		// Random crash point somewhere in the faulted workload.
		in.CrashAtStep = 50 + rng.Intn(400)

		var runErr error
		preCrashConsistent := true
		for k := int64(1); k <= 12 && runErr == nil; k++ {
			before := dictConsistent(in)
			_, runErr = in.Call("handler", k%5, k*3)
			if runErr != nil {
				preCrashConsistent = before
			}
		}
		consistent := dictConsistent(in)
		switch e := runErr.(type) {
		case nil:
			completed++
			if !consistent && *v {
				fmt.Printf("run %3d: %-22s silent corruption\n", i, site.Kind)
			}
		case *ir.ErrCrash:
			crashed++
			safe := ir.Safe(e.Stack)
			if safe {
				safeVerdict++
			} else {
				unsafeVer++
			}
			if !consistent {
				inconsistent++
				switch {
				case safe && preCrashConsistent:
					// The crash itself interrupted an update yet the stack
					// said safe: a genuine unsafe-region miss.
					falseNeg++
				case safe:
					// The corruption was committed by an earlier completed
					// transaction: invisible to unsafe regions by design
					// (§3.5 — "if the failure is silent, PHOENIX shares the
					// same fate as the original recovery"); cross-check
					// validation is the mechanism that catches these.
					silentCarried++
				}
			}
			if *v {
				fmt.Printf("run %3d: %-22s crash in %-8s stack=%v safe=%v consistent=%v\n",
					i, site.Kind, e.Fn, e.Stack, safe, consistent)
			}
		default:
			// Fuel exhaustion et al.: an injected hang.
			crashed++
			unsafeVer++
		}
	}

	fmt.Printf("runs:                        %d\n", *runs)
	fmt.Printf("completed without crash:     %d\n", completed)
	fmt.Printf("crashed:                     %d\n", crashed)
	fmt.Printf("  verdict safe:              %d\n", safeVerdict)
	fmt.Printf("  verdict unsafe:            %d\n", unsafeVer)
	fmt.Printf("  state inconsistent:        %d\n", inconsistent)
	fmt.Printf("  silent pre-crash corruption: %d (unsafe regions cannot see these; cross-check does)\n", silentCarried)
	fmt.Printf("  FALSE NEGATIVES:           %d (crash-interrupted update judged safe)\n", falseNeg)
	if falseNeg > 0 {
		os.Exit(1)
	}
}

// runSystemCampaign runs the recovery-layer campaigns over the application
// registry and reports per-app outcomes; any contract violation fails the
// whole campaign.
func runSystemCampaign(kind, only string, seed int64, crashes int) error {
	factories := registry.Factories(seed)
	names := registry.Names()
	if only != "" {
		if _, ok := factories[only]; !ok {
			return fmt.Errorf("unknown app %q (have %v)", only, names)
		}
		names = []string{only}
	}
	failed := 0
	for _, name := range names {
		mk := factories[name]
		switch kind {
		case "atomicity":
			outcomes, err := recovery.CheckAtomicity(mk, recovery.AtomicityConfig{Seed: seed, Warm: 60, Settle: 20})
			if err != nil {
				failed++
				fmt.Printf("%-18s FAIL: %v\n", name, err)
				continue
			}
			fired := 0
			for _, o := range outcomes {
				if o.Fired {
					fired++
				}
			}
			fmt.Printf("%-18s ok: %d/%d probes fired, no torn survivor\n", name, fired, len(outcomes))
		case "escalation":
			out, err := recovery.CheckEscalation(mk, recovery.EscalationConfig{Seed: seed, Crashes: crashes})
			if err != nil {
				failed++
				fmt.Printf("%-18s FAIL: %v\n", name, err)
				continue
			}
			fmt.Printf("%-18s ok: %s\n", name, out)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%s campaign: %d application(s) failed", kind, failed)
	}
	return nil
}

// runClusterCampaign runs the availability-under-traffic campaign: each
// registry application's cluster profile, PHOENIX vs builtin vs vanilla under
// one fault schedule. With jsonOut the three full reports per system are
// emitted as deterministic JSON (fixed field order, sorted map keys); the
// contract check still runs either way.
func runClusterCampaign(only string, seed int64, jsonOut bool) error {
	systems := registry.ClusterSystems(seed)
	if only != "" {
		var keep []cluster.System
		for _, s := range systems {
			if s.Name == only {
				keep = append(keep, s)
			}
		}
		if keep == nil {
			return fmt.Errorf("unknown app %q (have %v)", only, registry.Names())
		}
		systems = keep
	}
	res, cerr := cluster.CheckCluster(systems, cluster.Options{Seed: seed})
	if jsonOut {
		out, err := json.Marshal(res)
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", out)
	} else {
		for _, r := range res {
			fmt.Print(cluster.FmtComparison(r))
		}
	}
	return cerr
}

// runShardCampaign runs the sharded-fabric availability comparison: per
// shardable system, PHOENIX vs builtin vs vanilla under the same
// kill-and-rebalance schedule, with the live-migration and lost-write
// contracts enforced (and every mode double-run byte-identically).
func runShardCampaign(only string, seed int64, jsonOut bool) error {
	systems := registry.ShardSystems(seed)
	if only != "" {
		var keep []shard.System
		for _, s := range systems {
			if s.Name == only {
				keep = append(keep, s)
			}
		}
		if keep == nil {
			return fmt.Errorf("unknown app %q (have %v)", only, registry.ShardNames())
		}
		systems = keep
	}
	res, cerr := shard.CheckShard(systems, shard.Options{Seed: seed})
	if jsonOut {
		out, err := json.Marshal(res)
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", out)
	} else {
		for _, r := range res {
			fmt.Print(shard.FmtComparison(r))
		}
	}
	return cerr
}

// runExploreCampaign sweeps randomized fault schedules: one schedule per
// seed, run twice (byte-identical outcomes required), every oracle violation
// shrunk to a minimal artifact that must replay. Violations are reported, not
// failed on — only determinism breaks, irreproducible artifacts, and
// infrastructure errors exit non-zero.
func runExploreCampaign(app string, start int64, seeds int, jsonOut, verbose bool) error {
	opts := explore.Options{Seeds: seeds, Start: start, App: app}
	if verbose {
		opts.Log = os.Stderr
	}
	sum, cerr := explore.CheckExplore(opts)
	if jsonOut {
		out, err := json.Marshal(sum)
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", out)
	} else {
		fmt.Print(explore.FmtSummary(sum))
	}
	return cerr
}

// runMicrorebootCampaign measures the recovery-granularity windows: for each
// application, the simulated unavailability (crash → first answered request)
// at every ladder rung it supports — rewind, microreboot, PHOENIX, builtin,
// vanilla — and enforces the granularity ordering rewind < microreboot <
// process-level recovery.
func runMicrorebootCampaign(only string, seed int64, jsonOut bool) error {
	specs := registry.MicrorebootSpecs(seed)
	if only != "" {
		var keep []recovery.MicrorebootSpec
		for _, s := range specs {
			if s.Name == only {
				keep = append(keep, s)
			}
		}
		if keep == nil {
			return fmt.Errorf("unknown app %q (have %v)", only, registry.Names())
		}
		specs = keep
	}
	res, cerr := recovery.CheckMicroreboot(specs, recovery.MicrorebootConfig{Seed: seed})
	if jsonOut {
		out, err := json.Marshal(res)
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", out)
	} else {
		fmt.Print(recovery.FmtMicroreboot(res))
	}
	return cerr
}

// runConcurrencyCampaign runs the concurrent-serving campaign: for each
// snapshot-serving application, batches of reads off committed MVCC versions
// at 1/4/16 readers with a mid-run PHOENIX kill, enforcing the reader
// speedup, the zero-stale oracle, and the modelled parallel-vs-serial
// preserve staging comparison.
func runConcurrencyCampaign(only string, seed int64, jsonOut bool) error {
	specs := registry.ConcurrencySpecs(seed)
	if only != "" {
		var keep []recovery.ConcurrencySpec
		for _, s := range specs {
			if s.Name == only {
				keep = append(keep, s)
			}
		}
		if keep == nil {
			return fmt.Errorf("unknown app %q (have %v)", only, registry.ConcurrencyNames())
		}
		specs = keep
	}
	res, cerr := recovery.CheckConcurrency(specs, recovery.ConcurrencyConfig{Seed: seed})
	if jsonOut {
		out, err := json.Marshal(res)
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", out)
	} else {
		fmt.Print(recovery.FmtConcurrency(res))
	}
	return cerr
}

// runVetCampaign runs the static/dynamic differential: the phxvet verifier
// against the interpreter's restart audit on every application model, plus
// the seeded-mutant contract. Any disagreement exits non-zero.
func runVetCampaign(model string, start int64, seeds int, jsonOut, verbose bool) error {
	opts := explore.VetOptions{Seeds: seeds, Start: start, Model: model}
	if verbose {
		opts.Log = os.Stderr
	}
	sum, cerr := explore.CheckVet(opts)
	if jsonOut {
		out, err := json.Marshal(sum)
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", out)
	} else {
		fmt.Print(explore.FmtVetSummary(sum))
	}
	return cerr
}

// seedDict initialises the interpreter's dictionary bucket.
func seedDict(in *ir.Interp) {
	bucket := in.Global("table") + 256
	in.Store(in.Global("table")+8, bucket)
	in.Store(in.Global("table")+16, 0)
	in.Store(bucket, 0)
}

// dictConsistent checks chain length against the stored count.
func dictConsistent(in *ir.Interp) bool {
	table := in.Global("table")
	bucket := in.Load(table + 8)
	count := in.Load(table + 16)
	var n int64
	for e := in.Load(bucket); e != 0; e = in.Load(e) {
		n++
		if n > count+16 {
			return false
		}
	}
	return n == count
}

// runLintCampaign runs the static contract suite (phoenixlint) over the
// enclosing module: every registered analyzer, baseline applied, failing when
// any finding survives the baseline. The JSON report is deterministic and
// double-run-compared in CI like every other campaign's.
func runLintCampaign(jsonOut bool) error {
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	root, err := lint.FindRoot(cwd)
	if err != nil {
		return err
	}
	rep, err := lint.Campaign(root)
	if err != nil {
		return err
	}
	if jsonOut {
		out, err := rep.JSON()
		if err != nil {
			return err
		}
		os.Stdout.Write(out)
	} else {
		fmt.Print(lint.FmtReport(rep))
	}
	if !rep.Clean {
		return fmt.Errorf("lint campaign: %d finding(s) beyond baseline", len(rep.Findings))
	}
	return nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "phxinject: "+format+"\n", args...)
	os.Exit(1)
}
