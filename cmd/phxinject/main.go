// Command phxinject runs IR-level fault-injection campaigns against the
// instrumented mini-IR model — the distilled version of §4.4's experiment:
// inject one instruction-level fault, run the workload, crash at random
// points, and check the state-stack recovery condition against the ground
// truth consistency of the preserved dictionary.
//
// Usage:
//
//	phxinject -runs 200            # campaign on the bundled kvmodel
//	phxinject -runs 200 -seed 7 -v
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"phoenix/internal/analysis"
	"phoenix/internal/ir"
)

func main() {
	var (
		runs = flag.Int("runs", 200, "number of injection runs")
		seed = flag.Int64("seed", 1, "deterministic seed")
		v    = flag.Bool("v", false, "print per-run outcomes")
	)
	flag.Parse()

	mod := ir.MustParse(analysis.KVModel)
	a := analysis.New(mod)
	if err := a.Run("handler", nil); err != nil {
		fatalf("analysis: %v", err)
	}
	instrumented, _, err := a.Instrument()
	if err != nil {
		fatalf("instrument: %v", err)
	}
	sites := ir.EnumerateFaultSites(instrumented, nil)
	rng := rand.New(rand.NewSource(*seed))

	var (
		completed, crashed     int
		safeVerdict, unsafeVer int
		inconsistent, falseNeg int
		silentCarried          int
	)
	for i := 0; i < *runs; i++ {
		site := sites[rng.Intn(len(sites))]
		fm, err := ir.Inject(instrumented, site)
		if err != nil {
			continue
		}
		in := ir.NewInterp(fm)
		in.MaxStep = 20000
		seedDict(in)
		// Random crash point somewhere in the faulted workload.
		in.CrashAtStep = 50 + rng.Intn(400)

		var runErr error
		preCrashConsistent := true
		for k := int64(1); k <= 12 && runErr == nil; k++ {
			before := dictConsistent(in)
			_, runErr = in.Call("handler", k%5, k*3)
			if runErr != nil {
				preCrashConsistent = before
			}
		}
		consistent := dictConsistent(in)
		switch e := runErr.(type) {
		case nil:
			completed++
			if !consistent && *v {
				fmt.Printf("run %3d: %-22s silent corruption\n", i, site.Kind)
			}
		case *ir.ErrCrash:
			crashed++
			safe := ir.Safe(e.Stack)
			if safe {
				safeVerdict++
			} else {
				unsafeVer++
			}
			if !consistent {
				inconsistent++
				switch {
				case safe && preCrashConsistent:
					// The crash itself interrupted an update yet the stack
					// said safe: a genuine unsafe-region miss.
					falseNeg++
				case safe:
					// The corruption was committed by an earlier completed
					// transaction: invisible to unsafe regions by design
					// (§3.5 — "if the failure is silent, PHOENIX shares the
					// same fate as the original recovery"); cross-check
					// validation is the mechanism that catches these.
					silentCarried++
				}
			}
			if *v {
				fmt.Printf("run %3d: %-22s crash in %-8s stack=%v safe=%v consistent=%v\n",
					i, site.Kind, e.Fn, e.Stack, safe, consistent)
			}
		default:
			// Fuel exhaustion et al.: an injected hang.
			crashed++
			unsafeVer++
		}
	}

	fmt.Printf("runs:                        %d\n", *runs)
	fmt.Printf("completed without crash:     %d\n", completed)
	fmt.Printf("crashed:                     %d\n", crashed)
	fmt.Printf("  verdict safe:              %d\n", safeVerdict)
	fmt.Printf("  verdict unsafe:            %d\n", unsafeVer)
	fmt.Printf("  state inconsistent:        %d\n", inconsistent)
	fmt.Printf("  silent pre-crash corruption: %d (unsafe regions cannot see these; cross-check does)\n", silentCarried)
	fmt.Printf("  FALSE NEGATIVES:           %d (crash-interrupted update judged safe)\n", falseNeg)
	if falseNeg > 0 {
		os.Exit(1)
	}
}

// seedDict initialises the interpreter's dictionary bucket.
func seedDict(in *ir.Interp) {
	bucket := in.Global("table") + 256
	in.Store(in.Global("table")+8, bucket)
	in.Store(in.Global("table")+16, 0)
	in.Store(bucket, 0)
}

// dictConsistent checks chain length against the stored count.
func dictConsistent(in *ir.Interp) bool {
	table := in.Global("table")
	bucket := in.Load(table + 8)
	count := in.Load(table + 16)
	var n int64
	for e := in.Load(bucket); e != 0; e = in.Load(e) {
		n++
		if n > count+16 {
			return false
		}
	}
	return n == count
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "phxinject: "+format+"\n", args...)
	os.Exit(1)
}
