// Command phoenix-bench regenerates the paper's evaluation tables and
// figures (see DESIGN.md's per-experiment index and EXPERIMENTS.md for the
// paper-vs-measured comparison).
//
// Usage:
//
//	phoenix-bench                  # run everything at full scale
//	phoenix-bench -run fig10,tab7 # selected experiments
//	phoenix-bench -quick          # reduced scale (CI-sized)
//	phoenix-bench -list           # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"phoenix/internal/experiments"
)

func main() {
	var (
		run       = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		quick     = flag.Bool("quick", false, "reduced workload sizes")
		seed      = flag.Int64("seed", 1, "deterministic seed")
		list      = flag.Bool("list", false, "list experiments and exit")
		ablations = flag.Bool("ablations", false, "also run the design-choice ablations")
	)
	flag.Parse()

	all := experiments.All()
	if *ablations || *run != "" {
		all = append(all, experiments.Ablations()...)
	}

	if *list {
		all = append(all, experiments.Ablations()...)
		for _, e := range all {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	want := map[string]bool{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	failed := false
	for _, e := range all {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		start := time.Now()
		err := e.Run(experiments.Options{Quick: *quick, Seed: *seed, Out: os.Stdout})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: FAILED: %v\n", e.ID, err)
			failed = true
		}
		fmt.Printf("--- %s done in %v (wall clock) ---\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}
