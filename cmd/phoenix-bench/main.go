// Command phoenix-bench regenerates the paper's evaluation tables and
// figures (see DESIGN.md's per-experiment index and EXPERIMENTS.md for the
// paper-vs-measured comparison).
//
// Usage:
//
//	phoenix-bench                  # run everything at full scale
//	phoenix-bench -run fig10,tab7 # selected experiments
//	phoenix-bench -quick          # reduced scale (CI-sized)
//	phoenix-bench -list           # list experiment IDs
//	phoenix-bench -preserve -out BENCH_preserve.json    # record the preserve trajectory
//	phoenix-bench -preserve -check BENCH_preserve.json  # gate against the baseline
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"phoenix/internal/experiments"
	"phoenix/internal/perftraj"
)

func main() {
	var (
		run       = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		quick     = flag.Bool("quick", false, "reduced workload sizes")
		seed      = flag.Int64("seed", 1, "deterministic seed")
		list      = flag.Bool("list", false, "list experiments and exit")
		ablations = flag.Bool("ablations", false, "also run the design-choice ablations")
		preserve  = flag.Bool("preserve", false, "collect the preserve-path perf trajectory instead of the experiments")
		out       = flag.String("out", "", "with -preserve: write the trajectory JSON to this file")
		check     = flag.String("check", "", "with -preserve: fail if any metric regresses >20% vs this baseline file")
	)
	flag.Parse()

	if *preserve {
		preserveTrajectory(*out, *check)
		return
	}

	all := experiments.All()
	if *ablations || *run != "" {
		all = append(all, experiments.Ablations()...)
	}

	if *list {
		all = append(all, experiments.Ablations()...)
		for _, e := range all {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	want := map[string]bool{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	failed := false
	for _, e := range all {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		start := time.Now()
		err := e.Run(experiments.Options{Quick: *quick, Seed: *seed, Out: os.Stdout})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: FAILED: %v\n", e.ID, err)
			failed = true
		}
		fmt.Printf("--- %s done in %v (wall clock) ---\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}

// tolerance is the regression gate: a metric more than 20% slower than the
// checked-in baseline fails the run.
const tolerance = 0.20

// preserveTrajectory collects the deterministic preserve-path metrics,
// optionally records them to a baseline file, and optionally gates the run
// against an existing baseline.
func preserveTrajectory(out, check string) {
	traj, err := perftraj.Collect()
	if err != nil {
		fmt.Fprintf(os.Stderr, "perf trajectory: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("preserve trajectory (schema v%d, %d pages, simulated clock):\n", traj.Schema, traj.Pages)
	for _, m := range traj.Metrics {
		fmt.Printf("  %-28s %12d sim-ns\n", m.Name, m.SimNanos)
	}
	if out != "" {
		data, err := perftraj.Encode(traj)
		if err == nil {
			err = os.WriteFile(out, data, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "perf trajectory: write %s: %v\n", out, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", out)
	}
	if check == "" {
		return
	}
	data, err := os.ReadFile(check)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perf trajectory: %v\n", err)
		os.Exit(1)
	}
	base, err := perftraj.Decode(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perf trajectory: baseline %s: %v\n", check, err)
		os.Exit(1)
	}
	regs, err := perftraj.Compare(base, traj, tolerance)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perf trajectory: compare: %v\n", err)
		os.Exit(1)
	}
	if len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "REGRESSION %-28s %d -> %d sim-ns (%.2fx, gate %.0f%%)\n",
				r.Name, r.BaselineNanos, r.CurrentNanos, r.Ratio, tolerance*100)
		}
		os.Exit(1)
	}
	fmt.Printf("no metric regressed >%.0f%% vs %s\n", tolerance*100, check)
}
