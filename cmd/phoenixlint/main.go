// Command phoenixlint runs the static contract analyzers over the module and
// reports findings not covered by the checked-in baseline of accepted
// exceptions. Exit status 1 means the tree violates a contract.
//
// Usage:
//
//	phoenixlint [-root dir] [-json] [-list]
//
// The JSON report is deterministic: same tree, same baseline, byte-identical
// bytes (CI runs the campaign twice and cmps).
package main

import (
	"flag"
	"fmt"
	"os"

	"phoenix/internal/lint"
)

func main() {
	root := flag.String("root", "", "module root (default: ascend from cwd to go.mod)")
	asJSON := flag.Bool("json", false, "emit the deterministic JSON report instead of text")
	list := flag.Bool("list", false, "list registered analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	dir := *root
	if dir == "" {
		cwd, err := os.Getwd()
		if err != nil {
			fatal(err)
		}
		dir, err = lint.FindRoot(cwd)
		if err != nil {
			fatal(err)
		}
	}

	rep, err := lint.Campaign(dir)
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		data, err := rep.JSON()
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(data)
	} else {
		fmt.Print(lint.FmtReport(rep))
	}
	if !rep.Clean {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phoenixlint:", err)
	os.Exit(1)
}
