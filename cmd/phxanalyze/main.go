// Command phxanalyze is the PHOENIX static analyzer CLI (§3.5): it runs
// the layered taint analysis over a mini-IR program, reports function
// summaries and per-function modification ranges, and emits the
// unsafe-region-instrumented program.
//
// Usage:
//
//	phxanalyze -entry handler program.pir        # analyze a .pir file
//	phxanalyze -entry handler -builtin kvmodel   # analyze the bundled model
//	phxanalyze -entry handler -emit out.pir ...  # write instrumented IR
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"phoenix/internal/analysis"
	"phoenix/internal/ir"
)

func main() {
	var (
		entry   = flag.String("entry", "", "transaction entry function (e.g. the request handler)")
		emit    = flag.String("emit", "", "write the instrumented IR to this file")
		builtin = flag.String("builtin", "", "analyze a bundled model instead of a file (kvmodel)")
		params  = flag.String("preserved-params", "", "comma-separated entry parameter indices bound to preserved state")
	)
	flag.Parse()

	var src string
	switch {
	case *builtin == "kvmodel":
		src = analysis.KVModel
	case *builtin != "":
		fatalf("unknown builtin model %q (available: kvmodel)", *builtin)
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		src = string(data)
	default:
		fatalf("usage: phxanalyze -entry FUNC (FILE.pir | -builtin kvmodel)")
	}
	if *entry == "" {
		fatalf("-entry is required")
	}

	mod, err := ir.Parse(src)
	if err != nil {
		fatalf("parse: %v", err)
	}
	externals, err := mod.Validate()
	if err != nil {
		fatalf("validate: %v", err)
	}
	if len(externals) > 0 {
		fmt.Printf("external functions (assumed effect-free unless annotated): %s\n",
			strings.Join(externals, ", "))
	}

	var preserved []int
	if *params != "" {
		for _, p := range strings.Split(*params, ",") {
			var i int
			if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d", &i); err != nil {
				fatalf("bad -preserved-params: %v", err)
			}
			preserved = append(preserved, i)
		}
	}

	a := analysis.New(mod)
	if err := a.Run(*entry, preserved); err != nil {
		fatalf("analysis: %v", err)
	}
	fmt.Print(a.Report())

	instrumented, placements, err := a.Instrument()
	if err != nil {
		fatalf("instrument: %v", err)
	}
	fmt.Println("instrumentation:")
	for _, p := range placements {
		kind := "tight"
		if !p.Tight {
			kind = "conservative (whole function)"
		}
		fmt.Printf("  %-24s %s\n", p.Fn, kind)
	}
	if *emit != "" {
		if err := os.WriteFile(*emit, []byte(instrumented.String()), 0o644); err != nil {
			fatalf("emit: %v", err)
		}
		fmt.Printf("instrumented IR written to %s\n", *emit)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "phxanalyze: "+format+"\n", args...)
	os.Exit(1)
}
