package phoenix

import (
	"fmt"
	"testing"

	"phoenix/internal/costmodel"
)

// TestPublicAPIRoundTrip drives the whole public surface: build an image
// with a phxsec static, spawn, allocate state, crash, PHOENIX-restart with
// heap and section preservation, and recover.
func TestPublicAPIRoundTrip(t *testing.T) {
	m := NewMachine(1)
	b := NewImageBuilder("api-test", 0x0010_0000)
	b.Var("plain", 8, SecData)
	pools := b.Var("pools", 64, SecPhxData)
	proc, err := m.Spawn(b.Build())
	if err != nil {
		t.Fatal(err)
	}

	rt := Init(proc, nil)
	if rt.IsRecoveryMode() {
		t.Fatal("fresh start in recovery mode")
	}
	h, err := rt.OpenHeap(HeapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewCtx(h, m.Clock, costmodel.Default())
	d := NewDict(ctx, 64)
	for i := 0; i < 500; i++ {
		d.Set([]byte(fmt.Sprintf("k%03d", i)), uint64(i))
	}
	proc.AS.WriteU64(pools.Addr, 77)
	info := h.Alloc(16)
	proc.AS.WritePtr(info, d.Addr())

	// Unsafe regions through the facade.
	rt.UnsafeBegin("comp")
	if rt.AllSafe() {
		t.Fatal("AllSafe inside region")
	}
	rt.UnsafeEnd("comp")

	// Crash and recover.
	ci := proc.Run(func() { proc.AS.ReadU64(NullPtr + 16) })
	if ci == nil || ci.Sig != SIGSEGV {
		t.Fatalf("crash = %+v", ci)
	}
	np, err := rt.Restart(RestartPlan{InfoAddr: info, WithHeap: true, WithSection: true})
	if err != nil {
		t.Fatal(err)
	}
	rt2 := Init(np, nil)
	if !rt2.IsRecoveryMode() {
		t.Fatal("successor not in recovery mode")
	}
	h2, err := rt2.OpenHeap(HeapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx2 := NewCtx(h2, m.Clock, costmodel.Default())
	d2 := OpenDict(ctx2, np.AS.ReadPtr(rt2.RecoveryInfo()))
	if d2.Len() != 500 || !d2.Validate() {
		t.Fatal("dictionary lost across restart")
	}
	if np.AS.ReadU64(pools.Addr) != 77 {
		t.Fatal("phxsec static lost across restart")
	}
	d2.Mark(nil)
	h2.Mark(rt2.RecoveryInfo())
	rt2.FinishRecovery(true)
}

// TestAllocatorComponentSeparation exercises phx_create_allocator: two
// components in separate allocator regions, only one preserved.
func TestAllocatorComponentSeparation(t *testing.T) {
	m := NewMachine(2)
	b := NewImageBuilder("alloc-test", 0x0010_0000)
	b.Var("cfg", 8, SecData)
	proc, _ := m.Spawn(b.Build())
	rt := Init(proc, nil)
	if _, err := rt.OpenHeap(HeapOptions{}); err != nil {
		t.Fatal(err)
	}
	keepAlloc, err := rt.CreateAllocator(HeapOptions{Name: "keep"})
	if err != nil {
		t.Fatal(err)
	}
	dropAlloc, err := rt.CreateAllocator(HeapOptions{Name: "drop"})
	if err != nil {
		t.Fatal(err)
	}
	kept := keepAlloc.Alloc(64)
	dropped := dropAlloc.Alloc(64)
	proc.AS.WriteU64(kept, 1)
	proc.AS.WriteU64(dropped, 2)
	info := rt.MainHeap().Alloc(16)
	proc.AS.WritePtr(info, kept)

	np, err := rt.Restart(RestartPlan{
		InfoAddr:   info,
		WithHeap:   true,
		Allocators: []*Heap{keepAlloc}, // "drop" is discarded
	})
	if err != nil {
		t.Fatal(err)
	}
	rt2 := Init(np, nil)
	if np.AS.ReadU64(np.AS.ReadPtr(rt2.RecoveryInfo())) != 1 {
		t.Fatal("kept component lost")
	}
	// The dropped component's address faults — its pages were discarded.
	if ci := np.Run(func() { np.AS.ReadU64(dropped) }); ci == nil {
		t.Fatal("dropped component still mapped")
	}
}

// TestCompareDumpsFacade sanity-checks the re-exported helper.
func TestCompareDumpsFacade(t *testing.T) {
	ok, _ := CompareDumps(StateDump{"a": "1"}, StateDump{"a": "1"}, nil)
	if !ok {
		t.Fatal("equal dumps diverged")
	}
}
