// Package linker implements the simulated binary image and dynamic-linker
// behaviour PHOENIX depends on: ELF-like sections including the PHOENIX
// .phx.data and .phx.bss preserved sections (§3.3, section-based
// preservation), and the post-restart reload protocol in which the dynamic
// linker skips kernel-installed preserved ranges and freshly loads everything
// else (§3.4).
package linker

import (
	"fmt"

	"phoenix/internal/mem"
)

// SectionKind identifies a section's semantics.
type SectionKind uint8

const (
	// SecData is initialised writable data (.data); reloaded fresh on every
	// restart.
	SecData SectionKind = iota
	// SecBSS is zero-initialised data (.bss); re-zeroed on every restart.
	SecBSS
	// SecPhxData is PHOENIX-preserved initialised data (.phx.data); carried
	// across PHOENIX restarts when the with_section option is set.
	SecPhxData
	// SecPhxBSS is PHOENIX-preserved zeroed data (.phx.bss).
	SecPhxBSS
)

func (k SectionKind) String() string {
	switch k {
	case SecData:
		return ".data"
	case SecBSS:
		return ".bss"
	case SecPhxData:
		return ".phx.data"
	case SecPhxBSS:
		return ".phx.bss"
	}
	return fmt.Sprintf("section(%d)", uint8(k))
}

// Preserved reports whether the section belongs to the PHOENIX preserved set.
func (k SectionKind) Preserved() bool { return k == SecPhxData || k == SecPhxBSS }

// Section is one loadable section of an image.
type Section struct {
	Kind SectionKind
	Addr mem.VAddr // load address (ASLR base already applied)
	Size int       // bytes, padded to page multiple at load time
	Init []byte    // initial contents (SecData/SecPhxData only)
}

// Pages returns the section's page count.
func (s *Section) Pages() int { return mem.PagesFor(s.Size) }

// End returns the first address past the section's page-padded extent.
func (s *Section) End() mem.VAddr { return s.Addr + mem.VAddr(s.Pages())*mem.PageSize }

// StaticVar is a named static variable placed in a section — the analogue of
// a C static annotated with the phxsec macro (Figure 5). Its simulated
// address is fixed at image build time.
type StaticVar struct {
	Name string
	Addr mem.VAddr
	Size int
	Kind SectionKind
}

// Image is a simulated binary: a set of sections plus the static-variable
// symbol table.
type Image struct {
	Name     string
	Sections []*Section
	Vars     map[string]*StaticVar
}

// Builder lays out an image's sections and statics. Layout is deterministic:
// sections are placed in registration order starting at base, each padded to
// a page boundary.
type Builder struct {
	name string
	next mem.VAddr
	img  *Image
	// open section accumulation: vars are appended per kind, then sealed.
	open map[SectionKind]*openSec
	// order preserves deterministic section emission.
	order []SectionKind
}

type openSec struct {
	kind SectionKind
	size int
	init []byte
	vars []*StaticVar
}

// NewBuilder starts an image layout at the given base address.
func NewBuilder(name string, base mem.VAddr) *Builder {
	if base%mem.PageSize != 0 {
		panic(fmt.Sprintf("linker: unaligned image base %#x", uint64(base)))
	}
	return &Builder{
		name: name,
		next: base,
		img:  &Image{Name: name, Vars: make(map[string]*StaticVar)},
		open: make(map[SectionKind]*openSec),
	}
}

// Var reserves size bytes for a named static variable in the section of the
// given kind (the phxsec annotation places it in SecPhxData/SecPhxBSS).
// Variables are 8-byte aligned. The returned StaticVar's address is only
// final after Build.
func (b *Builder) Var(name string, size int, kind SectionKind) *StaticVar {
	if size <= 0 {
		panic(fmt.Sprintf("linker: Var %s: non-positive size %d", name, size))
	}
	if _, dup := b.img.Vars[name]; dup {
		panic(fmt.Sprintf("linker: duplicate static %q", name))
	}
	os := b.open[kind]
	if os == nil {
		os = &openSec{kind: kind}
		b.open[kind] = os
		b.order = append(b.order, kind)
	}
	// Align to 8 bytes.
	os.size = (os.size + 7) &^ 7
	v := &StaticVar{Name: name, Addr: mem.VAddr(os.size), Size: size, Kind: kind}
	os.size += size
	os.vars = append(os.vars, v)
	b.img.Vars[name] = v
	return v
}

// VarInit sets the initial bytes for a SecData/SecPhxData variable declared
// via Var. Missing trailing bytes stay zero.
func (b *Builder) VarInit(v *StaticVar, data []byte) {
	if v.Kind == SecBSS || v.Kind == SecPhxBSS {
		panic(fmt.Sprintf("linker: VarInit %s: BSS variables have no initial data", v.Name))
	}
	if len(data) > v.Size {
		panic(fmt.Sprintf("linker: VarInit %s: %d bytes exceed size %d", v.Name, len(data), v.Size))
	}
	os := b.open[v.Kind]
	off := int(v.Addr)
	need := off + v.Size
	if len(os.init) < need {
		os.init = append(os.init, make([]byte, need-len(os.init))...)
	}
	copy(os.init[off:], data)
}

// Build finalises the layout and returns the image. The builder must not be
// reused afterwards.
func (b *Builder) Build() *Image {
	for _, kind := range b.order {
		os := b.open[kind]
		if os.size == 0 {
			continue
		}
		sec := &Section{Kind: kind, Addr: b.next, Size: os.size}
		if kind == SecData || kind == SecPhxData {
			sec.Init = make([]byte, os.size)
			copy(sec.Init, os.init)
		}
		for _, v := range os.vars {
			v.Addr += sec.Addr // relocate from section offset to absolute
		}
		b.img.Sections = append(b.img.Sections, sec)
		b.next = sec.End()
	}
	return b.img
}

// PreservedRanges returns the page ranges of the image's .phx.* sections —
// what the dynamic linker appends to the preserve_exec system call when
// with_section is enabled.
func (img *Image) PreservedRanges() []Range {
	var out []Range
	for _, s := range img.Sections {
		if s.Kind.Preserved() {
			out = append(out, Range{Start: s.Addr, Len: s.Pages() * mem.PageSize})
		}
	}
	return out
}

// Range is a byte range of simulated memory.
type Range struct {
	Start mem.VAddr
	Len   int
}

// End returns the first address past the range.
func (r Range) End() mem.VAddr { return r.Start + mem.VAddr(r.Len) }

// Load maps and initialises the image's sections into as. For ranges that
// the kernel already installed (preserved pages carried over by
// preserve_exec), the linker skips loading and leaves the preserved content
// in place — the skip-and-fill-gaps protocol of §3.4. It returns the number
// of sections freshly loaded.
func (img *Image) Load(as *mem.AddressSpace) (fresh int, err error) {
	for _, s := range img.Sections {
		if as.Mapped(s.Addr) {
			// Kernel-installed preserved range: skip reload.
			if !s.Kind.Preserved() {
				return fresh, fmt.Errorf("linker: section %s at %#x already mapped but not preserved",
					s.Kind, uint64(s.Addr))
			}
			continue
		}
		if _, err := as.Map(s.Addr, s.Pages(), mem.KindSection, img.Name+s.Kind.String()); err != nil {
			return fresh, err
		}
		if len(s.Init) > 0 {
			as.WriteAt(s.Addr, s.Init)
		}
		fresh++
	}
	return fresh, nil
}

// LinkMap records where an image is loaded — the data structure the paper's
// private system call preserves across preserve_exec so the restarted
// dynamic linker can skip kernel-installed ranges and reuse the prior layout
// (§3.4).
type LinkMap struct {
	Image    *Image
	ASLRBase mem.VAddr
}
