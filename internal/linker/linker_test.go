package linker

import (
	"bytes"
	"testing"

	"phoenix/internal/mem"
)

const imgBase = mem.VAddr(0x0010_0000)

func buildTestImage(t *testing.T) (*Image, *StaticVar, *StaticVar, *StaticVar, *StaticVar) {
	t.Helper()
	b := NewBuilder("app", imgBase)
	d := b.Var("counter", 8, SecData)
	b.VarInit(d, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	z := b.Var("scratch", 64, SecBSS)
	pd := b.Var("pools", 128, SecPhxData)
	b.VarInit(pd, []byte("persistent-initial"))
	pz := b.Var("initialized", 8, SecPhxBSS)
	return b.Build(), d, z, pd, pz
}

func TestLayoutDeterministic(t *testing.T) {
	img, d, z, pd, pz := buildTestImage(t)
	if len(img.Sections) != 4 {
		t.Fatalf("sections = %d, want 4", len(img.Sections))
	}
	// Sections are page aligned and non-overlapping in registration order.
	var prevEnd mem.VAddr = imgBase
	for _, s := range img.Sections {
		if s.Addr%mem.PageSize != 0 {
			t.Fatalf("section %s unaligned at %#x", s.Kind, uint64(s.Addr))
		}
		if s.Addr < prevEnd {
			t.Fatalf("section %s overlaps previous", s.Kind)
		}
		prevEnd = s.End()
	}
	for _, v := range []*StaticVar{d, z, pd, pz} {
		if v.Addr < imgBase {
			t.Fatalf("var %s not relocated: %#x", v.Name, uint64(v.Addr))
		}
	}
}

func TestVarAlignment(t *testing.T) {
	b := NewBuilder("a", imgBase)
	v1 := b.Var("one", 1, SecData)
	v2 := b.Var("two", 8, SecData)
	b.Build()
	if v2.Addr-v1.Addr != 8 {
		t.Fatalf("second var not 8-aligned after 1-byte var: delta %d", v2.Addr-v1.Addr)
	}
}

func TestDuplicateVarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Var did not panic")
		}
	}()
	b := NewBuilder("a", imgBase)
	b.Var("x", 8, SecData)
	b.Var("x", 8, SecBSS)
}

func TestVarInitBSSPanics(t *testing.T) {
	b := NewBuilder("a", imgBase)
	v := b.Var("x", 8, SecBSS)
	defer func() {
		if recover() == nil {
			t.Fatal("VarInit on BSS did not panic")
		}
	}()
	b.VarInit(v, []byte{1})
}

func TestLoadFresh(t *testing.T) {
	img, d, z, pd, _ := buildTestImage(t)
	as := mem.NewAddressSpace()
	fresh, err := img.Load(as)
	if err != nil {
		t.Fatal(err)
	}
	if fresh != 4 {
		t.Fatalf("fresh = %d, want 4", fresh)
	}
	if !bytes.Equal(as.ReadBytes(d.Addr, 8), []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Fatal(".data init content wrong")
	}
	if as.ReadU64(z.Addr) != 0 {
		t.Fatal(".bss not zeroed")
	}
	if !bytes.Equal(as.ReadBytes(pd.Addr, 18), []byte("persistent-initial")) {
		t.Fatal(".phx.data init content wrong")
	}
}

func TestPreservedRanges(t *testing.T) {
	img, _, _, pd, pz := buildTestImage(t)
	ranges := img.PreservedRanges()
	if len(ranges) != 2 {
		t.Fatalf("preserved ranges = %d, want 2 (.phx.data, .phx.bss)", len(ranges))
	}
	in := func(a mem.VAddr) bool {
		for _, r := range ranges {
			if a >= r.Start && a < r.End() {
				return true
			}
		}
		return false
	}
	if !in(pd.Addr) || !in(pz.Addr) {
		t.Fatal("phx vars not inside preserved ranges")
	}
}

func TestReloadSkipsPreserved(t *testing.T) {
	img, d, _, pd, pz := buildTestImage(t)
	as := mem.NewAddressSpace()
	if _, err := img.Load(as); err != nil {
		t.Fatal(err)
	}
	// Mutate everything.
	as.WriteU64(d.Addr, 999)
	as.WriteAt(pd.Addr, []byte("MUTATED"))
	as.WriteU64(pz.Addr, 1)

	// Simulate preserve_exec carrying only the .phx ranges.
	dst := mem.NewAddressSpace()
	for _, r := range img.PreservedRanges() {
		if _, err := as.MovePages(dst, r.Start, r.Len/mem.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	fresh, err := img.Load(dst)
	if err != nil {
		t.Fatal(err)
	}
	if fresh != 2 {
		t.Fatalf("reload loaded %d sections, want 2 (.data, .bss)", fresh)
	}
	// Non-preserved .data is re-initialised; .phx.* keep mutated values.
	if !bytes.Equal(dst.ReadBytes(d.Addr, 8), []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Fatal(".data not reloaded fresh")
	}
	if !bytes.Equal(dst.ReadBytes(pd.Addr, 7), []byte("MUTATED")) {
		t.Fatal(".phx.data content not preserved")
	}
	if dst.ReadU64(pz.Addr) != 1 {
		t.Fatal(".phx.bss content not preserved")
	}
}

func TestLoadConflictNonPreserved(t *testing.T) {
	img, d, _, _, _ := buildTestImage(t)
	as := mem.NewAddressSpace()
	// Occupy the .data address with a foreign mapping: Load must fail rather
	// than silently treat it as preserved.
	if _, err := as.Map(mem.PageBase(d.Addr), 1, mem.KindMmap, "foreign"); err != nil {
		t.Fatal(err)
	}
	if _, err := img.Load(as); err == nil {
		t.Fatal("Load over occupied non-preserved section succeeded")
	}
}
