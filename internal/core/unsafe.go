package core

import "sort"

// UnsafeSet tracks per-component unsafe-region counters (§3.5). An unsafe
// region brackets the instructions that modify preservable state within one
// transaction; a crash while any counter is non-zero means the preserved
// state may be mid-update and the restart handler must fall back to default
// recovery.
//
// Components let an application track independent state (e.g. "kv" vs
// "index") so a crash while modifying one component can still preserve the
// other — the component granularity of §3.5.
type UnsafeSet struct {
	counters map[string]int
	// entries/exits per component, for diagnostics and Table 7 accounting.
	entries map[string]uint64
}

// NewUnsafeSet returns an empty tracker (all components safe).
func NewUnsafeSet() *UnsafeSet {
	return &UnsafeSet{counters: make(map[string]int), entries: make(map[string]uint64)}
}

// UnsafeBegin enters the unsafe region for the component
// (phx_unsafe_begin(NAME)). Regions nest: each Begin must be paired with an
// End. When the process runs a PHOENIX-instrumented build, the counter
// update's cost — PHOENIX's main runtime overhead source (Table 8) — is
// charged to the simulated clock.
func (rt *Runtime) UnsafeBegin(name string) {
	rt.chargeMark()
	rt.unsafe.Begin(name)
}

// UnsafeEnd leaves the component's unsafe region (phx_unsafe_end(NAME)).
func (rt *Runtime) UnsafeEnd(name string) {
	rt.chargeMark()
	rt.unsafe.End(name)
}

func (rt *Runtime) chargeMark() {
	if rt.instrumented {
		m := rt.proc.Machine
		m.Clock.Advance(m.Model.UnsafeMark)
	}
}

// SetInstrumented declares whether this incarnation runs the PHOENIX-
// instrumented build (unsafe-region marks and allocator tracking cost
// simulated time) or the vanilla build (annotation calls compile away).
func (rt *Runtime) SetInstrumented(on bool) { rt.instrumented = on }

// Instrumented reports the build flavor.
func (rt *Runtime) Instrumented() bool { return rt.instrumented }

// IsSafe reports whether the component is outside all of its unsafe regions
// — the NAME_is_safe check the recovery handler consults.
func (rt *Runtime) IsSafe(name string) bool { return rt.unsafe.Safe(name) }

// AllSafe reports whether every component is outside its unsafe regions.
func (rt *Runtime) AllSafe() bool { return rt.unsafe.AllSafe() }

// UnsafeComponents returns the names of components currently inside an
// unsafe region, sorted (used in fallback diagnostics).
func (rt *Runtime) UnsafeComponents() []string { return rt.unsafe.Active() }

// Unsafe exposes the underlying set (used by instrumented code and tests).
func (rt *Runtime) Unsafe() *UnsafeSet { return rt.unsafe }

// Begin increments the component's counter.
func (u *UnsafeSet) Begin(name string) {
	u.counters[name]++
	u.entries[name]++
}

// End decrements the component's counter. Unbalanced Ends are clamped at
// zero: after a crash-and-recover inside application code, an End without a
// matching Begin must not wrap the counter negative.
func (u *UnsafeSet) End(name string) {
	if u.counters[name] > 0 {
		u.counters[name]--
	}
}

// Safe reports whether the component's counter is zero.
func (u *UnsafeSet) Safe(name string) bool { return u.counters[name] == 0 }

// AllSafe reports whether every counter is zero.
func (u *UnsafeSet) AllSafe() bool {
	for _, c := range u.counters {
		if c != 0 {
			return false
		}
	}
	return true
}

// Active returns the sorted names of components with non-zero counters.
func (u *UnsafeSet) Active() []string {
	var out []string
	for name, c := range u.counters {
		if c != 0 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Entries returns how many times the component's unsafe region has been
// entered over the process lifetime.
func (u *UnsafeSet) Entries(name string) uint64 { return u.entries[name] }

// Reset clears all counters (used when execution is reset after a handled
// fault in tests).
func (u *UnsafeSet) Reset() {
	u.counters = make(map[string]int)
}
