package core

import (
	"phoenix/internal/kernel"
	"phoenix/internal/mem"
)

// Stages implements stage-based progress recovery for computational
// applications (§3.7, phx_stage). A stage marks a consistent recovery point;
// its completion record lives in *preserved* simulated memory so a PHOENIX
// restart knows exactly which stage of which iteration to resume from.
//
// Tracker layout in simulated memory (24 bytes):
//
//	 0: iteration number (u64)
//	 8: completed-stage count within the iteration (u64)
//	16: preserve-done flag (u64) — set once the pending stage's preserve
//	    hook has saved its pre-image, cleared when the stage commits; it
//	    tells recovery whether a rollback is meaningful
//
// Normal execution per stage: run the PRESERVE hook (saving the pre-image of
// any state the body mutates in place — typically via a StageVault), run the
// stage body, then advance the completion record. During recovery:
//
//   - stages that completed before the crash are skipped outright — their
//     effects live in preserved memory and must not be disturbed;
//   - the first incomplete stage (the one the crash interrupted, possibly
//     mid-mutation) runs its RESTORE hook once, rolling partially modified
//     state back to the saved pre-image, and then re-runs normally.
//
// Stages whose bodies are idempotent (recompute-from-scratch, or write-once
// into a dedicated slot) may pass nil hooks — the recommended §3.7 pattern;
// the hooks exist for bodies that mutate preserved state in place, where a
// bare re-run would double-apply the partial work.
type Stages struct {
	rt   *Runtime
	as   addrSpace
	addr mem.VAddr

	// replay state (recovery mode only)
	replay      bool
	replayIter  uint64
	replayStage uint64
	// rollback is true until the interrupted stage has run its restore
	// hook.
	rollback bool

	curIter  uint64
	curStage uint64
	inIter   bool
}

// addrSpace is the minimal accessor interface Stages needs; it keeps the
// tracker testable against a bare address space.
type addrSpace interface {
	ReadU64(mem.VAddr) uint64
	WriteU64(mem.VAddr, uint64)
}

// StageTrackerSize is the number of preserved bytes a tracker occupies.
const StageTrackerSize = 24

// NewStages allocates a stage tracker at addr (typically a heap allocation
// inside preserved memory, referenced from the recovery info block). On a
// fresh start the record is zeroed; in recovery mode the preserved record
// selects the replay target.
func (rt *Runtime) NewStages(addr mem.VAddr) *Stages {
	st := &Stages{rt: rt, as: rt.proc.AS, addr: addr}
	if rt.IsRecoveryMode() {
		st.replay = true
		st.rollback = true
		st.replayIter = st.as.ReadU64(addr)
		st.replayStage = st.as.ReadU64(addr + 8)
	} else {
		st.as.WriteU64(addr, 0)
		st.as.WriteU64(addr+8, 0)
		st.as.WriteU64(addr+16, 0)
	}
	return st
}

// Replaying reports whether the tracker is currently skipping completed
// work.
func (st *Stages) Replaying() bool { return st.replay }

// BeginIteration opens iteration it. Iterations must be opened in the same
// order on every incarnation (the usual training/simulation loop does this
// naturally).
func (st *Stages) BeginIteration(it uint64) {
	if st.inIter {
		panic(&kernel.Crash{Sig: kernel.SIGABRT, Reason: "phx_stage: nested iteration"})
	}
	st.inIter = true
	st.curIter = it
	st.curStage = 0
	if !st.skipping() {
		st.as.WriteU64(st.addr, it)
		st.as.WriteU64(st.addr+8, 0)
	}
}

// skipping reports whether the current position is strictly behind the
// preserved replay point.
func (st *Stages) skipping() bool {
	if !st.replay {
		return false
	}
	if st.curIter != st.replayIter {
		return st.curIter < st.replayIter
	}
	return st.curStage < st.replayStage
}

// Run executes one stage (phx_stage(NAME, CODE, PRESERVE_HOOK,
// RESTORE_HOOK)). In replay, completed stages are skipped; the interrupted
// stage rolls back via its restore hook and re-runs. Hooks may be nil.
func (st *Stages) Run(name string, code, preserveHook, restoreHook func()) {
	if !st.inIter {
		panic(&kernel.Crash{Sig: kernel.SIGABRT, Reason: "phx_stage: Run outside iteration"})
	}
	if st.skipping() {
		// Completed before the crash: its effects are preserved; skip.
		st.curStage++
		if !st.skipping() {
			st.replay = false
		}
		return
	}
	st.replay = false
	if st.rollback {
		// This is the stage the crash interrupted: if its preserve hook had
		// already saved a pre-image in the crashed incarnation (flag set),
		// undo any partial in-place mutation before re-running. A crash
		// before the preserve hook left the state untouched — restoring
		// then would reinstate a stale image, so the flag gates it.
		st.rollback = false
		if restoreHook != nil && st.curIter == st.replayIter &&
			st.curStage == st.replayStage && st.as.ReadU64(st.addr+16) == 1 {
			restoreHook()
		}
	}
	if preserveHook != nil {
		preserveHook()
		st.as.WriteU64(st.addr+16, 1)
	}
	code()
	st.curStage++
	st.as.WriteU64(st.addr+8, st.curStage)
	st.as.WriteU64(st.addr+16, 0)
}

// EndIteration closes the current iteration.
func (st *Stages) EndIteration() {
	if !st.inIter {
		panic(&kernel.Crash{Sig: kernel.SIGABRT, Reason: "phx_stage: EndIteration outside iteration"})
	}
	st.inIter = false
}

// Position returns the last committed (iteration, completed-stage) pair from
// preserved memory.
func (st *Stages) Position() (iter, stage uint64) {
	return st.as.ReadU64(st.addr), st.as.ReadU64(st.addr + 8)
}
