package core

import (
	"testing"
	"time"

	"phoenix/internal/costmodel"
	"phoenix/internal/heap"
	"phoenix/internal/mem"
)

// TestCrossCheckForkWalksDirtySet pins the copy-on-write fork charge: the
// cross-check fork right after a PHOENIX restart pays the full fork copy only
// for pages dirtied since the verified commit, plus a per-page scan. Two
// identical setups differing only in how many preserved pages were written
// post-restart must differ by exactly that many ForkPerPage units.
func TestCrossCheckForkWalksDirtySet(t *testing.T) {
	forkCharge := func(extraPages int) (time.Duration, int) {
		_, p := newProc(t)
		rt := Init(p, nil)
		h, _ := rt.OpenHeap(heap.Options{})
		state := h.Alloc(32 * mem.PageSize)
		for i := 0; i < 32; i++ {
			p.AS.WriteU64(state+mem.VAddr(i)*mem.PageSize, uint64(i)+1)
		}
		info := h.Alloc(16)
		p.AS.WritePtr(info, state)
		np, err := rt.Restart(RestartPlan{InfoAddr: info, WithHeap: true})
		if err != nil {
			t.Fatal(err)
		}
		rt2 := Init(np, nil)
		rt2.OpenHeap(heap.Options{})
		for i := 0; i < extraPages; i++ {
			np.AS.WriteU64(state+mem.VAddr(i)*mem.PageSize, 0xF00)
		}
		m := np.Machine
		before := m.Clock.Now()
		rt2.StartCrossCheck(CrossCheckSpec{
			SnapshotDump:     func(*mem.AddressSpace) StateDump { return StateDump{} },
			ReferenceRecover: func() (StateDump, time.Duration) { return StateDump{}, time.Second },
		})
		pages := 0
		for _, r := range rt2.PreservedRanges() {
			pages += mem.PagesFor(r.Len)
		}
		return m.Clock.Now() - before, pages
	}

	clean, pages := forkCharge(0)
	written, _ := forkCharge(7)
	m := costmodel.Default()
	if diff := written - clean; diff != 7*m.ForkPerPage {
		t.Fatalf("7 dirtied pages changed the fork charge by %v, want %v", diff, 7*m.ForkPerPage)
	}
	// The clean fork still cannot be cheaper than the scan over every
	// preserved page — the irreducible O(preserved) term.
	if clean < time.Duration(pages)*m.DirtyScanPerPage {
		t.Fatalf("clean fork charge %v below the scan floor for %d pages", clean, pages)
	}
	// And it must be far below the eager fork the old model charged.
	if clean >= time.Duration(pages)*m.ForkPerPage {
		t.Fatalf("clean fork charge %v not below eager fork %v", clean, time.Duration(pages)*m.ForkPerPage)
	}
}
