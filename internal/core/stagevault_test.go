package core

import (
	"bytes"
	"testing"

	"phoenix/internal/costmodel"
	"phoenix/internal/heap"
	"phoenix/internal/kernel"
	"phoenix/internal/simds"
)

func vaultEnv(t *testing.T) (*kernel.Process, *Runtime, *simds.Ctx) {
	t.Helper()
	_, p := newProc(t)
	rt := Init(p, nil)
	h, err := rt.OpenHeap(heap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p, rt, simds.NewCtx(h, p.Machine.Clock, costmodel.Default())
}

func TestVaultSaveRestore(t *testing.T) {
	p, _, c := vaultEnv(t)
	v := NewStageVault(c)
	buf := c.Heap.Alloc(64)
	p.AS.WriteAt(buf, []byte("original-contents"))
	v.Save("pred", buf, 17)

	p.AS.WriteAt(buf, []byte("clobbered-by-code"))
	v.Restore("pred", buf)
	if !bytes.Equal(p.AS.ReadBytes(buf, 17), []byte("original-contents")) {
		t.Fatal("restore did not recover the saved copy")
	}
	if v.Len("pred") != 17 || v.Len("nope") != -1 {
		t.Fatalf("Len = %d / %d", v.Len("pred"), v.Len("nope"))
	}
}

func TestVaultOverwriteFreesOldCopy(t *testing.T) {
	p, _, c := vaultEnv(t)
	v := NewStageVault(c)
	buf := c.Heap.Alloc(64)
	before := c.Heap.Stats().LiveChunks
	for i := 0; i < 50; i++ {
		p.AS.WriteU64(buf, uint64(i))
		v.Save("slot", buf, 8)
	}
	// One slot blob + one dict entry + key blob beyond the baseline.
	growth := c.Heap.Stats().LiveChunks - before
	if growth > 4 {
		t.Fatalf("repeated Save leaked %d chunks", growth)
	}
	v.Drop("slot")
	if v.Len("slot") != -1 {
		t.Fatal("Drop left the slot")
	}
}

func TestVaultRestoreUnsavedAborts(t *testing.T) {
	_, _, c := vaultEnv(t)
	v := NewStageVault(c)
	defer func() {
		if _, ok := recover().(*kernel.Crash); !ok {
			t.Fatal("restore of unsaved slot did not abort")
		}
	}()
	v.Restore("ghost", 0x1000)
}

// TestVaultSurvivesRestart is the Figure 8 flow: a stage saves its inputs,
// the process crashes mid-stage, and the restarted process restores them
// from the preserved vault.
func TestVaultSurvivesRestart(t *testing.T) {
	p, rt, c := vaultEnv(t)
	v := NewStageVault(c)
	work := c.Heap.Alloc(32)
	p.AS.WriteAt(work, []byte("stage-input-state"))
	v.Save("grad", work, 17)
	// The stage body corrupts the buffer, then crashes.
	p.AS.WriteAt(work, []byte("half-written-junk"))
	info := c.Heap.Alloc(16)
	p.AS.WritePtr(info, v.Addr())
	p.AS.WritePtr(info+8, work)

	np, err := rt.Restart(RestartPlan{InfoAddr: info, WithHeap: true})
	if err != nil {
		t.Fatal(err)
	}
	rt2 := Init(np, nil)
	h2, err := rt2.OpenHeap(heap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c2 := simds.NewCtx(h2, np.Machine.Clock, costmodel.Default())
	v2 := OpenStageVault(c2, np.AS.ReadPtr(rt2.RecoveryInfo()))
	work2 := np.AS.ReadPtr(rt2.RecoveryInfo() + 8)
	v2.Restore("grad", work2)
	if !bytes.Equal(np.AS.ReadBytes(work2, 17), []byte("stage-input-state")) {
		t.Fatal("vault copy lost across restart")
	}
	// Cleanup keeps the vault and its copies.
	v2.Mark()
	h2.Mark(rt2.RecoveryInfo())
	rt2.FinishRecovery(true)
	if v2.Len("grad") != 17 {
		t.Fatal("sweep collected the vault")
	}
}
