package core

import (
	"fmt"
	"testing"
	"time"

	"phoenix/internal/costmodel"
	"phoenix/internal/heap"
	"phoenix/internal/kernel"
	"phoenix/internal/linker"
	"phoenix/internal/mem"
	"phoenix/internal/simds"
)

func newProc(t *testing.T) (*kernel.Machine, *kernel.Process) {
	t.Helper()
	m := kernel.NewMachine(1)
	b := linker.NewBuilder("app", 0x0010_0000)
	b.Var("flag", 8, linker.SecPhxBSS)
	p, err := m.Spawn(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	return m, p
}

func TestInitFreshStart(t *testing.T) {
	_, p := newProc(t)
	rt := Init(p, nil)
	if rt.IsRecoveryMode() || rt.WasPhoenixStart() {
		t.Fatal("fresh start reports recovery mode")
	}
	if rt.RecoveryInfo() != mem.NullPtr || rt.FallbackReason() != "" {
		t.Fatal("fresh start carries handoff data")
	}
}

func TestPhoenixRestartCycle(t *testing.T) {
	_, p := newProc(t)
	rt := Init(p, nil)
	h, err := rt.OpenHeap(heap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Build preservable state and an info block pointing at it.
	state := h.Alloc(64)
	p.AS.WriteU64(state, 12345)
	info := h.Alloc(16)
	p.AS.WritePtr(info, state)

	np, err := rt.Restart(RestartPlan{InfoAddr: info, WithHeap: true})
	if err != nil {
		t.Fatal(err)
	}

	// --- new incarnation ---
	rt2 := Init(np, nil)
	if !rt2.IsRecoveryMode() || !rt2.WasPhoenixStart() {
		t.Fatal("successor not in recovery mode")
	}
	if rt2.RecoveryInfo() != info {
		t.Fatal("recovery info pointer lost")
	}
	h2, err := rt2.OpenHeap(heap.Options{})
	if err != nil {
		t.Fatalf("OpenHeap in recovery mode: %v", err)
	}
	gotState := np.AS.ReadPtr(rt2.RecoveryInfo())
	if np.AS.ReadU64(gotState) != 12345 {
		t.Fatal("preserved state content lost")
	}
	_ = h2
	rt2.FinishRecovery(false)
	if rt2.IsRecoveryMode() {
		t.Fatal("recovery mode persists after FinishRecovery")
	}
}

func TestRestartWithHeapRequiresHeap(t *testing.T) {
	_, p := newProc(t)
	rt := Init(p, nil)
	if _, err := rt.Restart(RestartPlan{WithHeap: true}); err == nil {
		t.Fatal("Restart with_heap without a heap succeeded")
	}
}

func TestFallbackStart(t *testing.T) {
	_, p := newProc(t)
	rt := Init(p, nil)
	np, err := rt.Fallback("unsafe region kv")
	if err != nil {
		t.Fatal(err)
	}
	rt2 := Init(np, nil)
	if rt2.IsRecoveryMode() {
		t.Fatal("fallback start reports recovery mode")
	}
	if rt2.FallbackReason() != "unsafe region kv" {
		t.Fatalf("FallbackReason = %q", rt2.FallbackReason())
	}
	if _, err := rt2.OpenHeap(heap.Options{}); err != nil {
		t.Fatalf("fresh heap after fallback: %v", err)
	}
}

func TestMarkPreserveAndCleanup(t *testing.T) {
	_, p := newProc(t)
	rt := Init(p, nil)
	h, _ := rt.OpenHeap(heap.Options{})
	keep := h.Alloc(64)
	for i := 0; i < 20; i++ {
		h.Alloc(64) // garbage
	}
	info := h.Alloc(16)
	p.AS.WritePtr(info, keep)

	np, err := rt.Restart(RestartPlan{InfoAddr: info, WithHeap: true})
	if err != nil {
		t.Fatal(err)
	}
	rt2 := Init(np, nil)
	if _, err := rt2.OpenHeap(heap.Options{}); err != nil {
		t.Fatal(err)
	}
	rt2.MarkPreserve(rt2.RecoveryInfo())
	rt2.MarkPreserve(np.AS.ReadPtr(rt2.RecoveryInfo()))
	before := np.Machine.Clock.Now()
	freed, bytes := rt2.FinishRecovery(true)
	if freed != 20 || bytes <= 0 {
		t.Fatalf("cleanup freed %d chunks (%d bytes), want 20", freed, bytes)
	}
	if np.Machine.Clock.Now() == before {
		t.Fatal("cleanup charged no simulated time")
	}
}

func TestMarkPreserveOutsideHeapAborts(t *testing.T) {
	_, p := newProc(t)
	rt := Init(p, nil)
	rt.OpenHeap(heap.Options{})
	defer func() {
		c, ok := recover().(*kernel.Crash)
		if !ok || c.Sig != kernel.SIGABRT {
			t.Fatal("MarkPreserve outside heap did not abort")
		}
	}()
	rt.MarkPreserve(0x42)
}

func TestCreateAllocatorRoundTrip(t *testing.T) {
	_, p := newProc(t)
	rt := Init(p, nil)
	rt.OpenHeap(heap.Options{})
	alloc1, err := rt.CreateAllocator(heap.Options{Name: "cache"})
	if err != nil {
		t.Fatal(err)
	}
	obj := alloc1.Alloc(128)
	p.AS.WriteU64(obj, 777)
	info := rt.MainHeap().Alloc(16)
	p.AS.WritePtr(info, obj)

	np, err := rt.Restart(RestartPlan{
		InfoAddr:   info,
		WithHeap:   true,
		Allocators: []*heap.Heap{alloc1},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt2 := Init(np, nil)
	if _, err := rt2.OpenHeap(heap.Options{}); err != nil {
		t.Fatal(err)
	}
	alloc2, err := rt2.CreateAllocator(heap.Options{Name: "cache"})
	if err != nil {
		t.Fatalf("reattach allocator: %v", err)
	}
	if np.AS.ReadU64(np.AS.ReadPtr(rt2.RecoveryInfo())) != 777 {
		t.Fatal("allocator-region object lost")
	}
	if alloc2.Stats().LiveChunks != 1 {
		t.Fatalf("allocator LiveChunks = %d", alloc2.Stats().LiveChunks)
	}
}

func TestSecondFailureGrace(t *testing.T) {
	m, p := newProc(t)
	rt := Init(p, nil)
	h, _ := rt.OpenHeap(heap.Options{})
	info := h.Alloc(16)
	np, err := rt.Restart(RestartPlan{InfoAddr: info, WithHeap: true})
	if err != nil {
		t.Fatal(err)
	}
	rt2 := Init(np, nil)
	if !rt2.WithinGrace() {
		t.Fatal("immediately after restart should be within grace window")
	}
	m.Clock.Advance(SecondFailureGrace)
	if rt2.WithinGrace() {
		t.Fatal("grace window did not expire")
	}
	// Fresh starts are never in the grace window.
	_, p3 := newProc(t)
	if Init(p3, nil).WithinGrace() {
		t.Fatal("fresh start in grace window")
	}
}

func TestSignalHandlerRegistered(t *testing.T) {
	_, p := newProc(t)
	var seen *kernel.CrashInfo
	Init(p, func(rt *Runtime, ci *kernel.CrashInfo) { seen = ci })
	ci := p.Run(func() { p.AS.ReadU64(0xdead0000) })
	if ci == nil {
		t.Fatal("no crash caught")
	}
	if !p.Deliver(ci) || seen == nil || seen.Sig != kernel.SIGSEGV {
		t.Fatal("restart handler not invoked for SIGSEGV")
	}
}

// --- unsafe regions ---

func TestUnsafeRegions(t *testing.T) {
	_, p := newProc(t)
	rt := Init(p, nil)
	if !rt.AllSafe() || !rt.IsSafe("kv") {
		t.Fatal("fresh runtime not safe")
	}
	rt.UnsafeBegin("kv")
	if rt.IsSafe("kv") || rt.AllSafe() {
		t.Fatal("inside region reported safe")
	}
	if rt.IsSafe("other") != true {
		t.Fatal("independent component affected")
	}
	rt.UnsafeBegin("kv") // nesting
	rt.UnsafeEnd("kv")
	if rt.IsSafe("kv") {
		t.Fatal("nested region closed early")
	}
	rt.UnsafeEnd("kv")
	if !rt.AllSafe() {
		t.Fatal("region not closed")
	}
	if got := rt.Unsafe().Entries("kv"); got != 2 {
		t.Fatalf("Entries = %d", got)
	}
}

func TestUnsafeEndClamps(t *testing.T) {
	u := NewUnsafeSet()
	u.End("x")
	if !u.Safe("x") {
		t.Fatal("unbalanced End corrupted counter")
	}
	u.Begin("x")
	u.End("x")
	u.End("x")
	u.Begin("x")
	if u.Safe("x") {
		t.Fatal("clamped counter lost a Begin")
	}
}

func TestUnsafeActive(t *testing.T) {
	u := NewUnsafeSet()
	u.Begin("b")
	u.Begin("a")
	got := u.Active()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Active = %v", got)
	}
}

// --- stages ---

func stageEnv(t *testing.T) (*kernel.Process, *Runtime, mem.VAddr) {
	t.Helper()
	_, p := newProc(t)
	rt := Init(p, nil)
	h, err := rt.OpenHeap(heap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tracker := h.Alloc(StageTrackerSize)
	return p, rt, tracker
}

func TestStagesNormalRun(t *testing.T) {
	_, rt, tracker := stageEnv(t)
	st := rt.NewStages(tracker)
	var trace []string
	for it := uint64(0); it < 2; it++ {
		st.BeginIteration(it)
		st.Run("a", func() { trace = append(trace, fmt.Sprintf("a%d", it)) },
			func() { trace = append(trace, fmt.Sprintf("pre-a%d", it)) }, nil)
		st.Run("b", func() { trace = append(trace, fmt.Sprintf("b%d", it)) }, nil, nil)
		st.EndIteration()
	}
	want := "pre-a0 a0 b0 pre-a1 a1 b1"
	if got := fmt.Sprint(trace); got != fmt.Sprint([]string{"pre-a0", "a0", "b0", "pre-a1", "a1", "b1"}) {
		t.Fatalf("trace = %v, want %s", trace, want)
	}
	if it, s := st.Position(); it != 1 || s != 2 {
		t.Fatalf("Position = %d,%d", it, s)
	}
}

func TestStagesRecoveryReplay(t *testing.T) {
	p, rt, tracker := stageEnv(t)
	st := rt.NewStages(tracker)
	// Complete iteration 3 stage "a", crash during "b".
	st.BeginIteration(3)
	st.Run("a", func() {}, nil, nil)
	// (crash here)

	info := rt.MainHeap().Alloc(16)
	p.AS.WritePtr(info, tracker)
	np, err := rt.Restart(RestartPlan{InfoAddr: info, WithHeap: true})
	if err != nil {
		t.Fatal(err)
	}
	rt2 := Init(np, nil)
	if _, err := rt2.OpenHeap(heap.Options{}); err != nil {
		t.Fatal(err)
	}
	tracker2 := np.AS.ReadPtr(rt2.RecoveryInfo())
	st2 := rt2.NewStages(tracker2)
	if !st2.Replaying() {
		t.Fatal("recovered tracker not replaying")
	}
	iter, stage := st2.Position()
	if iter != 3 || stage != 1 {
		t.Fatalf("preserved position = %d,%d, want 3,1", iter, stage)
	}
	var trace []string
	st2.BeginIteration(3)
	// Completed stage "a" is skipped outright (its effects are preserved);
	// stage "b" was interrupted before its preserve hook ran (flag clear),
	// so no rollback happens — it simply re-runs.
	st2.Run("a", func() { trace = append(trace, "a") }, nil,
		func() { trace = append(trace, "restore-a") })
	st2.Run("b", func() { trace = append(trace, "b") },
		func() { trace = append(trace, "pre-b") },
		func() { trace = append(trace, "restore-b") })
	st2.EndIteration()
	got := fmt.Sprint(trace)
	want := fmt.Sprint([]string{"pre-b", "b"})
	if got != want {
		t.Fatalf("replay trace = %v", trace)
	}
	if st2.Replaying() {
		t.Fatal("still replaying after passing preserved point")
	}
}

func TestStagesMidStageRollback(t *testing.T) {
	p, rt, tracker := stageEnv(t)
	st := rt.NewStages(tracker)
	st.BeginIteration(7)
	st.Run("a", func() {}, nil, nil)
	// Stage "b" runs its preserve hook (pre-image saved, flag set) and then
	// crashes mid-body.
	func() {
		defer func() { recover() }()
		st.Run("b", func() {
			panic(&kernel.Crash{Sig: kernel.SIGSEGV, Reason: "mid-stage crash"})
		}, func() { /* pre-image saved */ }, nil)
	}()

	info := rt.MainHeap().Alloc(16)
	p.AS.WritePtr(info, tracker)
	np, err := rt.Restart(RestartPlan{InfoAddr: info, WithHeap: true})
	if err != nil {
		t.Fatal(err)
	}
	rt2 := Init(np, nil)
	if _, err := rt2.OpenHeap(heap.Options{}); err != nil {
		t.Fatal(err)
	}
	st2 := rt2.NewStages(np.AS.ReadPtr(rt2.RecoveryInfo()))
	var trace []string
	st2.BeginIteration(7)
	st2.Run("a", func() { trace = append(trace, "a") }, nil,
		func() { trace = append(trace, "restore-a") })
	// The interrupted stage's preserve flag was set: rollback runs first.
	st2.Run("b", func() { trace = append(trace, "b") },
		func() { trace = append(trace, "pre-b") },
		func() { trace = append(trace, "restore-b") })
	st2.EndIteration()
	got := fmt.Sprint(trace)
	want := fmt.Sprint([]string{"restore-b", "pre-b", "b"})
	if got != want {
		t.Fatalf("mid-stage replay trace = %v", trace)
	}
}

func TestStagesMisuseAborts(t *testing.T) {
	_, rt, tracker := stageEnv(t)
	st := rt.NewStages(tracker)
	expectAbort := func(name string, fn func()) {
		defer func() {
			if _, ok := recover().(*kernel.Crash); !ok {
				t.Fatalf("%s did not abort", name)
			}
		}()
		fn()
	}
	expectAbort("Run outside iteration", func() { st.Run("x", func() {}, nil, nil) })
	expectAbort("EndIteration outside", func() { st.EndIteration() })
	st.BeginIteration(0)
	expectAbort("nested BeginIteration", func() { st.BeginIteration(1) })
}

// --- redo log ---

func redoCtx(t *testing.T) (*kernel.Process, *Runtime, *simds.Ctx) {
	t.Helper()
	m, p := newProc(t)
	rt := Init(p, nil)
	h, err := rt.OpenHeap(heap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p, rt, simds.NewCtx(h, m.Clock, costmodel.Default())
}

func TestRedoLogAppendReplay(t *testing.T) {
	_, _, c := redoCtx(t)
	l := NewRedoLog(c)
	for i := 0; i < 5; i++ {
		l.Append([]byte(fmt.Sprintf("op-%d", i)))
	}
	if l.Len() != 5 || l.Seq() != 5 {
		t.Fatalf("Len=%d Seq=%d", l.Len(), l.Seq())
	}
	var got []string
	l.Replay(func(rec []byte) bool { got = append(got, string(rec)); return true })
	if len(got) != 5 || got[0] != "op-0" || got[4] != "op-4" {
		t.Fatalf("Replay = %v", got)
	}
	l.Truncate()
	if l.Len() != 0 {
		t.Fatal("Truncate left records")
	}
	if l.Seq() != 5 {
		t.Fatal("Truncate reset sequence number")
	}
	l.Append([]byte("after"))
	got = nil
	l.Replay(func(rec []byte) bool { got = append(got, string(rec)); return true })
	if len(got) != 1 || got[0] != "after" {
		t.Fatalf("post-truncate Replay = %v", got)
	}
}

func TestRedoLogSurvivesRestart(t *testing.T) {
	p, rt, c := redoCtx(t)
	l := NewRedoLog(c)
	l.Append([]byte("set k1 v1"))
	l.Append([]byte("set k2 v2"))
	info := rt.MainHeap().Alloc(16)
	p.AS.WritePtr(info, l.Addr())
	np, err := rt.Restart(RestartPlan{InfoAddr: info, WithHeap: true})
	if err != nil {
		t.Fatal(err)
	}
	rt2 := Init(np, nil)
	h2, err := rt2.OpenHeap(heap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c2 := simds.NewCtx(h2, np.Machine.Clock, costmodel.Default())
	l2 := OpenRedoLog(c2, np.AS.ReadPtr(rt2.RecoveryInfo()))
	var got []string
	l2.Replay(func(rec []byte) bool { got = append(got, string(rec)); return true })
	if len(got) != 2 || got[0] != "set k1 v1" || got[1] != "set k2 v2" {
		t.Fatalf("preserved redo log = %v", got)
	}
}

func TestRedoLogMarkSweep(t *testing.T) {
	_, _, c := redoCtx(t)
	l := NewRedoLog(c)
	l.Append([]byte("a"))
	l.Append([]byte("b"))
	c.Heap.Alloc(64) // garbage
	l.Mark()
	freed, _, _ := c.Heap.Sweep()
	if freed != 1 {
		t.Fatalf("sweep freed %d, want 1", freed)
	}
	var got []string
	l.Replay(func(rec []byte) bool { got = append(got, string(rec)); return true })
	if len(got) != 2 {
		t.Fatal("redo log damaged by sweep")
	}
}

// --- cross-check ---

func TestCompareDumps(t *testing.T) {
	si := StateDump{"a": "1", "b": "2", "c": "3"}
	sr := StateDump{"a": "1", "b": "2", "c": "3"}
	if ok, d := CompareDumps(si, sr, nil); !ok || d != nil {
		t.Fatalf("equal dumps diverged: %v", d)
	}
	sr["b"] = "X"
	if ok, d := CompareDumps(si, sr, nil); ok || len(d) != 1 || d[0] != "b" {
		t.Fatalf("diverged value not detected: %v", d)
	}
	// In-flight tolerance.
	if ok, _ := CompareDumps(si, sr, map[string]bool{"b": true}); !ok {
		t.Fatal("in-flight key not tolerated")
	}
	// Missing / extra keys.
	delete(sr, "c")
	sr["z"] = "9"
	_, d := CompareDumps(si, sr, map[string]bool{"b": true})
	if len(d) != 2 {
		t.Fatalf("missing+extra keys = %v", d)
	}
}

func TestCrossCheckFlow(t *testing.T) {
	m, p := newProc(t)
	rt := Init(p, nil)
	h, _ := rt.OpenHeap(heap.Options{})
	state := h.Alloc(64)
	p.AS.WriteU64(state, 7)
	info := h.Alloc(16)
	p.AS.WritePtr(info, state)
	np, err := rt.Restart(RestartPlan{InfoAddr: info, WithHeap: true})
	if err != nil {
		t.Fatal(err)
	}
	rt2 := Init(np, nil)
	rt2.OpenHeap(heap.Options{})

	var verdicts []Verdict
	before := m.Clock.Now()
	cc := rt2.StartCrossCheck(CrossCheckSpec{
		SnapshotDump: func(snap *mem.AddressSpace) StateDump {
			// Snapshot must see the preserved value even if the live state
			// advances afterwards.
			return StateDump{"v": fmt.Sprint(snap.ReadU64(state))}
		},
		ReferenceRecover: func() (StateDump, time.Duration) {
			return StateDump{"v": "7"}, 2 * time.Second
		},
		OnVerdict: func(v Verdict) { verdicts = append(verdicts, v) },
	})
	if m.Clock.Now() == before {
		t.Fatal("fork charged no time")
	}
	// Main process keeps serving speculatively and mutates live state.
	np.AS.WriteU64(state, 999)
	if cc.Verdict() != nil {
		t.Fatal("verdict before background completion")
	}
	m.Clock.Advance(3 * time.Second)
	if cc.Verdict() == nil || len(verdicts) != 1 {
		t.Fatal("verdict not delivered")
	}
	if !verdicts[0].Match {
		t.Fatalf("verdict diverged: %v", verdicts[0].Diverged)
	}
	if cc.SpeculationWindow() < 2*time.Second {
		t.Fatalf("speculation window %v", cc.SpeculationWindow())
	}
}

func TestCrossCheckMismatch(t *testing.T) {
	m, p := newProc(t)
	rt := Init(p, nil)
	h, _ := rt.OpenHeap(heap.Options{})
	info := h.Alloc(16)
	np, err := rt.Restart(RestartPlan{InfoAddr: info, WithHeap: true})
	if err != nil {
		t.Fatal(err)
	}
	rt2 := Init(np, nil)
	rt2.OpenHeap(heap.Options{})
	var got *Verdict
	rt2.StartCrossCheck(CrossCheckSpec{
		SnapshotDump:     func(*mem.AddressSpace) StateDump { return StateDump{"k": "corrupted"} },
		ReferenceRecover: func() (StateDump, time.Duration) { return StateDump{"k": "good"}, time.Second },
		OnVerdict:        func(v Verdict) { got = &v },
	})
	m.Clock.Advance(2 * time.Second)
	if got == nil || got.Match {
		t.Fatal("mismatch not detected")
	}
	if len(got.Diverged) != 1 || got.Diverged[0] != "k" {
		t.Fatalf("Diverged = %v", got.Diverged)
	}
}
