package core

import (
	"sort"
	"time"

	"phoenix/internal/mem"
)

// Cross-check validation (§3.6): after a PHOENIX restart the main process
// resumes serving immediately from the preserved state S_i, while a
// background process — forked with an isolated snapshot of S_i — runs the
// application's *default* recovery to rebuild a reference state S_r and
// compares the two. A match certifies both the speculative output already
// produced and all future output; a mismatch hot-switches to the validated
// process, confining any inconsistency to the pre-verdict window.

// StateDump is an application-level, placement-independent representation of
// recovered state: logical key → logical value. Using data-structure-level
// dumps rather than byte-wise memory comparison tolerates allocator and
// layout dynamism (§3.6).
type StateDump map[string]string

// Verdict is the outcome of a background cross-check.
type Verdict struct {
	// Match is true when S_i is equivalent to S_r modulo in-flight requests.
	Match bool
	// Diverged lists the logical keys that differed (capped at 16).
	Diverged []string
	// CompletedAt is the simulated time the background validation finished —
	// the end of the speculation window.
	CompletedAt time.Duration
	// Reference is the validated state S_r. On a mismatch the system
	// hot-switches to the background process, whose live state this is.
	Reference StateDump
}

// CrossCheckSpec wires an application into the cross-check machinery.
type CrossCheckSpec struct {
	// SnapshotDump captures S_i from the forked snapshot. It runs logically
	// in the background process, against the snapshot address space the
	// framework forked at Start time.
	SnapshotDump func(snapshot *mem.AddressSpace) StateDump

	// ReferenceRecover runs the application's default recovery (checkpoint
	// load + in-memory redo-log replay) off the critical path and returns
	// the reference dump S_r along with the simulated time the background
	// recovery consumed. It must not advance the main clock; the framework
	// schedules the verdict at now + fork cost + that duration.
	ReferenceRecover func() (StateDump, time.Duration)

	// InFlightKeys are logical keys whose effect may legitimately differ
	// between S_i and S_r: requests that were in flight at failure time may
	// be included or excluded by whole (§3.6).
	InFlightKeys map[string]bool

	// OnVerdict is invoked (on the main timeline) when validation completes.
	OnVerdict func(Verdict)
}

// CrossCheck is a scheduled background validation.
type CrossCheck struct {
	rt      *Runtime
	spec    CrossCheckSpec
	verdict *Verdict
	started time.Duration
}

// StartCrossCheck forks the preserved state and schedules the background
// validation. It must be called right after a PHOENIX-mode restart, before
// the application mutates preserved state (the fork isolates S_i from
// subsequent requests). The fork's per-page cost is charged to the main
// clock; the default-recovery cost runs concurrently and only delays the
// verdict.
func (rt *Runtime) StartCrossCheck(spec CrossCheckSpec) *CrossCheck {
	m := rt.proc.Machine
	cc := &CrossCheck{rt: rt, spec: spec, started: m.Clock.Now()}

	// Fork: copy every preserved range into an isolated snapshot space. The
	// charge follows the copy-on-write model: every page pays a PTE scan, but
	// only pages dirtied since the last verified commit pay the full fork
	// copy — clean pages are pinned by the commit's checksums, so the
	// snapshot can share them. Right after a PHOENIX restart most preserved
	// pages are clean, which is what keeps the fork off the critical path.
	snapshot := mem.NewAddressSpace()
	pages, dirty := 0, 0
	for _, r := range rt.PreservedRanges() {
		n := mem.PagesFor(r.Len)
		start := mem.PageBase(r.Start)
		if _, err := rt.proc.AS.CopyPages(snapshot, start, n, mem.KindCustom, "fork"); err != nil {
			// Overlapping ranges can occur when a partial page was copied
			// separately; tolerate already-mapped regions.
			continue
		}
		pages += n
		dirty += rt.proc.AS.DirtyPagesIn(start, n)
	}
	m.Clock.Advance(m.Model.ForkCoW(pages, dirty))

	si := spec.SnapshotDump(snapshot)
	sr, bgDur := spec.ReferenceRecover()

	match, diverged := CompareDumps(si, sr, spec.InFlightKeys)
	completeAt := m.Clock.Now() + bgDur
	m.Clock.AfterFunc(bgDur, func() {
		v := Verdict{Match: match, Diverged: diverged, CompletedAt: completeAt, Reference: sr}
		cc.verdict = &v
		if spec.OnVerdict != nil {
			spec.OnVerdict(v)
		}
	})
	return cc
}

// Verdict returns the verdict once the background validation has completed
// on the simulated timeline, or nil while speculation is still open.
func (cc *CrossCheck) Verdict() *Verdict { return cc.verdict }

// SpeculationWindow returns how long the application ran speculatively
// before the verdict (zero until complete).
func (cc *CrossCheck) SpeculationWindow() time.Duration {
	if cc.verdict == nil {
		return 0
	}
	return cc.verdict.CompletedAt - cc.started
}

// CompareDumps compares S_i against S_r at the data-structure level,
// ignoring keys whose requests were in flight at failure time. It returns
// whether the states match and up to 16 diverged keys.
func CompareDumps(si, sr StateDump, inflight map[string]bool) (bool, []string) {
	var diverged []string
	add := func(k string) {
		if len(diverged) < 16 {
			diverged = append(diverged, k)
		}
	}
	for k, v := range si {
		if inflight[k] {
			continue
		}
		rv, ok := sr[k]
		if !ok || rv != v {
			add(k)
		}
	}
	for k := range sr {
		if inflight[k] {
			continue
		}
		if _, ok := si[k]; !ok {
			add(k)
		}
	}
	sort.Strings(diverged)
	return len(diverged) == 0, diverged
}
