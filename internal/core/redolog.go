package core

import (
	"phoenix/internal/kernel"
	"phoenix/internal/mem"
	"phoenix/internal/simds"
)

// RedoLog is the custom in-memory redo log of §3.6. Applications whose
// default recovery restores an *older* checkpoint append each completed
// update here; because the log lives in preserved simulated memory, the
// cross-check's background process can replay it on top of the stale
// checkpoint to reconstruct a reference state comparable to the preserved
// one. PHOENIX's state preservation is what makes keeping such a log
// entirely in memory practical.
//
// Layout:
//
//	header: 0: head (VAddr), 8: tail (VAddr), 16: count (u64),
//	        24: since-checkpoint sequence number (u64)
//	node:   0: next (VAddr), 8: record blob (VAddr)
type RedoLog struct {
	c    *simds.Ctx
	addr mem.VAddr
}

const (
	rlHdrSize  = 32
	rlOffHead  = 0
	rlOffTail  = 8
	rlOffCount = 16
	rlOffSeq   = 24
	rlNodeSize = 16
)

// NewRedoLog allocates an empty redo log on the context's heap.
func NewRedoLog(c *simds.Ctx) *RedoLog {
	hdr := allocOrDie(c, rlHdrSize)
	c.AS.WritePtr(hdr+rlOffHead, mem.NullPtr)
	c.AS.WritePtr(hdr+rlOffTail, mem.NullPtr)
	c.AS.WriteU64(hdr+rlOffCount, 0)
	c.AS.WriteU64(hdr+rlOffSeq, 0)
	return &RedoLog{c: c, addr: hdr}
}

// OpenRedoLog reattaches to a preserved redo log.
func OpenRedoLog(c *simds.Ctx, addr mem.VAddr) *RedoLog {
	return &RedoLog{c: c, addr: addr}
}

func allocOrDie(c *simds.Ctx, n int) mem.VAddr {
	p := c.Heap.Alloc(n)
	if p == mem.NullPtr {
		panic(&kernel.Crash{Sig: kernel.SIGABRT, Reason: "redo log: out of memory"})
	}
	return p
}

// Addr returns the log's root address (stored in the recovery info block).
func (l *RedoLog) Addr() mem.VAddr { return l.addr }

// Len returns the number of records since the last checkpoint.
func (l *RedoLog) Len() uint64 { return l.c.AS.ReadU64(l.addr + rlOffCount) }

// Seq returns the monotone sequence number of the last appended record.
func (l *RedoLog) Seq() uint64 { return l.c.AS.ReadU64(l.addr + rlOffSeq) }

// Append records one completed update.
func (l *RedoLog) Append(record []byte) {
	n := allocOrDie(l.c, rlNodeSize)
	blob := l.c.NewBlob(record)
	l.c.AS.WritePtr(n, mem.NullPtr)
	l.c.AS.WritePtr(n+8, blob)
	tail := l.c.AS.ReadPtr(l.addr + rlOffTail)
	if tail == mem.NullPtr {
		l.c.AS.WritePtr(l.addr+rlOffHead, n)
	} else {
		l.c.AS.WritePtr(tail, n)
	}
	l.c.AS.WritePtr(l.addr+rlOffTail, n)
	l.c.AS.WriteU64(l.addr+rlOffCount, l.Len()+1)
	l.c.AS.WriteU64(l.addr+rlOffSeq, l.Seq()+1)
	l.c.Charge(4)
	l.c.ChargeBytes(len(record))
}

// Truncate drops all records — called right after the application completes
// a checkpoint, so the log only ever covers post-checkpoint work.
func (l *RedoLog) Truncate() {
	n := l.c.AS.ReadPtr(l.addr + rlOffHead)
	steps := 0
	for n != mem.NullPtr {
		next := l.c.AS.ReadPtr(n)
		l.c.FreeBlob(l.c.AS.ReadPtr(n + 8))
		l.c.Heap.Free(n)
		n = next
		steps += 2
	}
	l.c.AS.WritePtr(l.addr+rlOffHead, mem.NullPtr)
	l.c.AS.WritePtr(l.addr+rlOffTail, mem.NullPtr)
	l.c.AS.WriteU64(l.addr+rlOffCount, 0)
	l.c.Charge(steps + 3)
}

// Replay visits every record in append order. Records are copies.
func (l *RedoLog) Replay(fn func(record []byte) bool) {
	n := l.c.AS.ReadPtr(l.addr + rlOffHead)
	steps := 0
	for n != mem.NullPtr {
		steps++
		rec := l.c.BlobBytes(l.c.AS.ReadPtr(n + 8))
		if !fn(rec) {
			break
		}
		n = l.c.AS.ReadPtr(n)
	}
	l.c.Charge(steps)
}

// Mark marks the log header, nodes, and record blobs for the cleanup sweep.
func (l *RedoLog) Mark() {
	l.c.Heap.Mark(l.addr)
	n := l.c.AS.ReadPtr(l.addr + rlOffHead)
	for n != mem.NullPtr {
		l.c.Heap.Mark(n)
		l.c.Heap.Mark(l.c.AS.ReadPtr(n + 8))
		n = l.c.AS.ReadPtr(n)
	}
}
