package core

import (
	"fmt"

	"phoenix/internal/kernel"
	"phoenix/internal/mem"
	"phoenix/internal/simds"
)

// StageVault backs the SAVE/RESTORE hooks of Figure 8's basic pattern: a
// preserve hook copies the variables a stage is about to modify into
// preserved memory, and the restore hook copies them back during recovery.
//
// The recommended pattern (§3.7) places stage marks where preserved state is
// unchanged, making both hooks no-ops; the vault exists for the stages that
// cannot be structured that way. Slots live in the preserved heap and are
// keyed by name, so the restarted process reopens the vault from its
// recovery info and finds the last saved copies.
//
// Layout: a dictionary from slot name to a blob holding the saved bytes.
type StageVault struct {
	c    *simds.Ctx
	dict *simds.Dict
}

// NewStageVault allocates a vault on the context's (preserved) heap.
func NewStageVault(c *simds.Ctx) *StageVault {
	return &StageVault{c: c, dict: simds.NewDict(c, 16)}
}

// OpenStageVault reattaches to a preserved vault.
func OpenStageVault(c *simds.Ctx, addr mem.VAddr) *StageVault {
	return &StageVault{c: c, dict: simds.OpenDict(c, addr)}
}

// Addr returns the vault's root address (for the recovery info block).
func (v *StageVault) Addr() mem.VAddr { return v.dict.Addr() }

// Save copies n bytes at addr into the named slot, replacing any previous
// copy (the PRESERVE_HOOK body).
func (v *StageVault) Save(name string, addr mem.VAddr, n int) {
	data := v.c.AS.ReadBytes(addr, n)
	blob := v.c.NewBlob(data)
	old, existed := v.dict.Set([]byte(name), uint64(blob))
	if existed && old != 0 {
		v.c.FreeBlob(mem.VAddr(old))
	}
	v.c.ChargeBytes(n)
}

// Restore copies the named slot's bytes back to addr (the RESTORE_HOOK
// body). It aborts if the slot does not exist — a restore hook running
// without its preserve hook is an integration bug.
func (v *StageVault) Restore(name string, addr mem.VAddr) {
	blob, ok := v.dict.Get([]byte(name))
	if !ok {
		panic(&kernel.Crash{Sig: kernel.SIGABRT,
			Reason: fmt.Sprintf("phx_stage: restore of unsaved slot %q", name)})
	}
	data := v.c.BlobBytes(mem.VAddr(blob))
	v.c.AS.WriteAt(addr, data)
	v.c.ChargeBytes(len(data))
}

// Len returns the saved byte length of the named slot (-1 if absent).
func (v *StageVault) Len(name string) int {
	blob, ok := v.dict.Get([]byte(name))
	if !ok {
		return -1
	}
	return v.c.BlobLen(mem.VAddr(blob))
}

// Drop removes a slot, freeing its copy.
func (v *StageVault) Drop(name string) {
	if old, ok := v.dict.Delete([]byte(name)); ok && old != 0 {
		v.c.FreeBlob(mem.VAddr(old))
	}
}

// Mark extends a cleanup traversal over the vault and its saved copies.
func (v *StageVault) Mark() {
	v.dict.Mark(func(val uint64) {
		if val != 0 {
			v.c.Heap.Mark(mem.VAddr(val))
		}
	})
}
