// Package core implements the PHOENIX runtime library — the paper's primary
// contribution. It exposes the API surface of Table 2:
//
//	phx_init              → Init
//	phx_restart           → (*Runtime).Restart
//	phx_is_recovery_mode  → (*Runtime).IsRecoveryMode
//	phx_mark_preserve     → (*Runtime).MarkPreserve
//	phx_finish_recovery   → (*Runtime).FinishRecovery
//	phx_unsafe_begin/end  → (*Runtime).UnsafeBegin / UnsafeEnd (unsafe.go)
//	phx_stage             → (*Stages).Run (stages.go)
//	phx_create_allocator  → (*Runtime).CreateAllocator
//
// plus the cross-check validation machinery of §3.6 (crosscheck.go) and the
// in-memory redo log it relies on (redolog.go).
package core

import (
	"fmt"
	"time"

	"phoenix/internal/heap"
	"phoenix/internal/kernel"
	"phoenix/internal/linker"
	"phoenix/internal/mem"
)

// Runtime is the per-process PHOENIX context returned by Init. One Runtime
// exists per process incarnation; a restarted process calls Init again and
// receives a fresh Runtime that reports recovery mode.
type Runtime struct {
	proc *kernel.Process

	recoveryMode bool
	handoff      *kernel.Handoff

	mainHeap   *heap.Heap
	allocators []*heap.Heap
	nextRegion mem.VAddr

	unsafe       *UnsafeSet
	instrumented bool

	// restartedAt is the simulated time Init observed a PHOENIX-mode start;
	// used for the second-failure fallback rule (§3.2).
	restartedAt time.Duration

	finished bool
}

// HandlerFunc is the user-defined restart handler registered with Init. It
// runs at crash time in the failing process: it inspects the crash and the
// unsafe-region state and either assembles a RestartPlan (PHOENIX-mode
// restart) or declines, sending the application to its default recovery.
type HandlerFunc func(rt *Runtime, ci *kernel.CrashInfo)

// Init initialises the PHOENIX context for proc and registers the restart
// handler for SIGSEGV and SIGABRT. Like phx_init, it simultaneously
// retrieves the information the terminated predecessor passed through
// preserve_exec: recovery mode and the recovery-info pointer.
func Init(proc *kernel.Process, handler HandlerFunc) *Runtime {
	rt := &Runtime{
		proc:       proc,
		handoff:    proc.Handoff(),
		unsafe:     NewUnsafeSet(),
		nextRegion: DefaultHeapBase,
	}
	if h := rt.handoff; h != nil && h.FallbackReason == "" && (h.MovedPages+h.CopiedPages) > 0 {
		rt.recoveryMode = true
		rt.restartedAt = proc.Machine.Clock.Now()
	}
	if handler != nil {
		wrap := func(ci *kernel.CrashInfo) { handler(rt, ci) }
		proc.OnSignal(kernel.SIGSEGV, wrap)
		proc.OnSignal(kernel.SIGABRT, wrap)
		proc.OnSignal(kernel.SIGALRM, wrap)
	}
	return rt
}

// DefaultHeapBase is where the first heap region is placed. Successive
// CreateAllocator regions are placed at RegionStride intervals above it.
const DefaultHeapBase = mem.VAddr(0x1000_0000)

// RegionStride is the address-space distance between allocator regions.
const RegionStride = mem.VAddr(0x4000_0000) // 1 GiB of room per region

// Proc returns the process this runtime belongs to.
func (rt *Runtime) Proc() *kernel.Process { return rt.proc }

// IsRecoveryMode reports whether the process was started by a PHOENIX-mode
// restart and recovery has not finished yet (phx_is_recovery_mode).
func (rt *Runtime) IsRecoveryMode() bool { return rt.recoveryMode && !rt.finished }

// RecoveryInfo returns the recovery-info pointer the failed process passed
// to Restart, or NullPtr on a fresh start.
func (rt *Runtime) RecoveryInfo() mem.VAddr {
	if rt.handoff == nil {
		return mem.NullPtr
	}
	return rt.handoff.InfoAddr
}

// FallbackReason returns the annotation carried by a non-PHOENIX restart
// ("" if none) — set when the prior incarnation declined preservation.
func (rt *Runtime) FallbackReason() string {
	if rt.handoff == nil {
		return ""
	}
	return rt.handoff.FallbackReason
}

// OpenHeap creates the process's main heap at DefaultHeapBase, attaching to
// preserved memory in recovery mode and creating a fresh heap otherwise.
// This is the "malloc regains control of the preserved heap" step (§3.2).
func (rt *Runtime) OpenHeap(opts heap.Options) (*heap.Heap, error) {
	var (
		h   *heap.Heap
		err error
	)
	if rt.IsRecoveryMode() {
		h, err = heap.Attach(rt.proc.AS, DefaultHeapBase, opts)
	} else {
		h, err = heap.New(rt.proc.AS, DefaultHeapBase, opts)
	}
	if err != nil {
		return nil, err
	}
	rt.mainHeap = h
	rt.nextRegion = DefaultHeapBase + RegionStride
	return h, nil
}

// MainHeap returns the heap registered by OpenHeap (nil before).
func (rt *Runtime) MainHeap() *heap.Heap { return rt.mainHeap }

// CreateAllocator creates (or, in recovery mode, reattaches) a PHOENIX
// allocator with its own managed preserve ranges (phx_create_allocator).
// Allocator regions are assigned deterministic bases in creation order, so
// the post-restart process reattaches by re-creating them in the same order.
func (rt *Runtime) CreateAllocator(opts heap.Options) (*heap.Heap, error) {
	base := rt.nextRegion
	rt.nextRegion += RegionStride
	var (
		h   *heap.Heap
		err error
	)
	if rt.IsRecoveryMode() {
		h, err = heap.Attach(rt.proc.AS, base, opts)
	} else {
		h, err = heap.New(rt.proc.AS, base, opts)
	}
	if err != nil {
		return nil, err
	}
	rt.allocators = append(rt.allocators, h)
	return h, nil
}

// Allocators returns the PHOENIX allocators created so far.
func (rt *Runtime) Allocators() []*heap.Heap { return rt.allocators }

// MarkPreserve marks the heap object at addr as reachable so FinishRecovery's
// garbage collection keeps it (phx_mark_preserve). The object must belong to
// the main heap or one of the created allocators.
func (rt *Runtime) MarkPreserve(addr mem.VAddr) {
	h := rt.heapOf(addr)
	if h == nil {
		panic(&kernel.Crash{Sig: kernel.SIGABRT,
			Reason: fmt.Sprintf("phx_mark_preserve: %#x not in any registered heap", uint64(addr))})
	}
	h.Mark(addr)
}

func (rt *Runtime) heapOf(addr mem.VAddr) *heap.Heap {
	check := func(h *heap.Heap) bool {
		for _, r := range h.PreservedRanges() {
			if addr >= r.Start && addr < r.End() {
				return true
			}
		}
		return false
	}
	if rt.mainHeap != nil && check(rt.mainHeap) {
		return rt.mainHeap
	}
	for _, h := range rt.allocators {
		if check(h) {
			return h
		}
	}
	return nil
}

// FinishRecovery resets the recovery-mode flag and, when cleanupMalloc is
// set, runs the mark-and-sweep cleanup over every registered heap, freeing
// unmarked objects (phx_finish_recovery, §3.4). It returns the number of
// chunks and bytes freed; the sweep's cost is charged to the simulated
// clock.
func (rt *Runtime) FinishRecovery(cleanupMalloc bool) (freedChunks int, freedBytes int64) {
	if cleanupMalloc && rt.IsRecoveryMode() {
		heaps := append([]*heap.Heap{}, rt.allocators...)
		if rt.mainHeap != nil {
			heaps = append(heaps, rt.mainHeap)
		}
		visited := 0
		for _, h := range heaps {
			fc, fb, v := h.Sweep()
			freedChunks += fc
			freedBytes += fb
			visited += v
		}
		m := rt.proc.Machine
		m.Clock.Advance(time.Duration(visited) * m.Model.GCSweepPerChunk)
	}
	rt.finished = true
	return freedChunks, freedBytes
}

// RestartPlan is what a restart handler assembles before calling Restart —
// the options of phx_restart (Table 2).
type RestartPlan struct {
	// InfoAddr is the recovery-info pointer. It must point into preserved
	// memory (typically a heap allocation holding root pointers).
	InfoAddr mem.VAddr
	// WithHeap preserves every page of the main heap (with_heap).
	WithHeap bool
	// WithSection preserves the image's .phx.data/.phx.bss sections.
	WithSection bool
	// Ranges are additional custom ranges (the raw interface of §3.3).
	Ranges []linker.Range
	// Allocators are PHOENIX allocators whose managed ranges are preserved.
	Allocators []*heap.Heap
	// SkipIntegrityVerify disables post-commit checksum verification of the
	// preserved frames (checksums are still staged). Only the driver sets it,
	// from its DisableChecksums configuration.
	SkipIntegrityVerify bool
}

// Restart performs the PHOENIX-mode restart: it gathers the preserved page
// set from the plan and invokes preserve_exec, returning the successor
// process (phx_restart). The caller — normally the recovery driver — then
// re-enters the application's main function on the new process.
func (rt *Runtime) Restart(plan RestartPlan) (*kernel.Process, error) {
	spec, err := rt.ResolveSpec(plan)
	if err != nil {
		return nil, err
	}
	return rt.proc.PreserveExec(spec)
}

// ResolveSpec expands a restart plan into the concrete preserve_exec spec —
// heap and allocator ranges gathered at call time — without executing it.
// Restart uses it on the crash path; live shard migration re-resolves it
// every copy round so the tracked page set follows the live heap.
func (rt *Runtime) ResolveSpec(plan RestartPlan) (kernel.ExecSpec, error) {
	spec := kernel.ExecSpec{
		InfoAddr:    plan.InfoAddr,
		WithSection: plan.WithSection,
		SkipVerify:  plan.SkipIntegrityVerify,
	}
	if plan.WithHeap {
		if rt.mainHeap == nil {
			return kernel.ExecSpec{}, fmt.Errorf("core: Restart with_heap but no heap opened")
		}
		spec.Ranges = append(spec.Ranges, rt.mainHeap.PreservedRanges()...)
	}
	for _, h := range plan.Allocators {
		spec.Ranges = append(spec.Ranges, h.PreservedRanges()...)
	}
	spec.Ranges = append(spec.Ranges, plan.Ranges...)
	return spec, nil
}

// Fallback tears the process down with a plain restart carrying reason —
// the path taken when the recovery condition fails (§3.5) or when a
// PHOENIX-restarted process fails again shortly after recovery (§3.2).
func (rt *Runtime) Fallback(reason string) (*kernel.Process, error) {
	return rt.proc.Exec(reason)
}

// SecondFailureGrace is the window after a PHOENIX restart within which
// another failure triggers an automatic fallback instead of a second
// PHOENIX attempt (§3.2).
const SecondFailureGrace = 10 * time.Second

// DisarmGrace marks this incarnation as a planned handoff — a live
// migration adoption — rather than a failure recovery. The §3.2 rule
// guards against crash loops (a preserved state that keeps crashing its
// successor), but nothing failed on the way into an adopted start, so the
// next crash is a first failure and deserves a full PHOENIX attempt.
func (rt *Runtime) DisarmGrace() { rt.restartedAt = 0 }

// WithinGrace reports whether the current failure falls inside the
// second-failure window of a PHOENIX-mode start.
func (rt *Runtime) WithinGrace() bool {
	if rt.handoff == nil || rt.handoff.FallbackReason != "" || rt.restartedAt == 0 {
		return false
	}
	return rt.proc.Machine.Clock.Now()-rt.restartedAt < SecondFailureGrace
}

// WasPhoenixStart reports whether this incarnation came from a PHOENIX-mode
// restart (independent of FinishRecovery having run).
func (rt *Runtime) WasPhoenixStart() bool {
	h := rt.handoff
	return h != nil && h.FallbackReason == "" && (h.MovedPages+h.CopiedPages) > 0
}

// PreservedRanges returns the ranges the current incarnation received from
// preserve_exec (empty on fresh starts).
func (rt *Runtime) PreservedRanges() []linker.Range {
	if rt.handoff == nil {
		return nil
	}
	return rt.handoff.Ranges
}
