package lsmdb

import (
	"phoenix/internal/mem"
	"phoenix/internal/simds"
	"phoenix/internal/workload"
)

// OpenSnapshotReader implements recovery.SnapshotServer: point reads served
// off a frozen MVCC view of the memtable plus immutable images of the sorted
// runs. The memtable is read straight from the view; the runs live on the
// Go-side simulated disk, which the view does not cover, so the closure
// captures per-run byte copies while it is still on the writer thread — after
// that, readers never touch Disk or db.ssts concurrently with the writer.
// (Disk.ReadFile hands back copies, and the capture's read cost is charged to
// the writer's clock, where all snapshot costs land.)
func (db *DB) OpenSnapshotReader(view *mem.AddressSpace) func(req *workload.Request) (ok, effective bool) {
	m := db.rt.Proc().Machine
	c := simds.SnapshotCtx(view, m.Model)
	mt := simds.OpenSkiplist(c, view.ReadPtr(db.info))
	type frozenRun struct {
		min, max string
		data     []byte
	}
	runs := make([]frozenRun, 0, len(db.ssts))
	for _, s := range db.ssts {
		if data, ok := m.Disk.ReadFile(s.name); ok {
			runs = append(runs, frozenRun{min: s.min, max: s.max, data: data})
		}
	}
	return func(req *workload.Request) (ok, effective bool) {
		if req.Op != workload.OpRead {
			return false, false
		}
		key := req.Key
		if v, found := mt.Get([]byte(key)); found {
			_, tomb := mtDecode(v)
			return true, !tomb
		}
		for _, r := range runs {
			if r.min <= key && key <= r.max {
				if val, hit := lookupRun(r.data, key); hit {
					return true, val != nil
				}
			}
		}
		return true, false
	}
}
