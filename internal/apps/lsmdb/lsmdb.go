// Package lsmdb is the repository's LevelDB analogue: an LSM-tree store
// with a write-ahead log, an in-memory skiplist memtable (the preserved
// state of Table 3), and sorted-run files flushed when the memtable fills.
//
// Builtin recovery replays the WAL into a fresh memtable — the log replay
// that dominates LevelDB's restart time (§4.2.1). PHOENIX preserves the
// skiplist instead, recovering the same progress as the replay with
// none of its cost (§4.3.3): because every update appends to the WAL before
// mutating the memtable inside one unsafe region, a preserved memtable is
// always equivalent to a full replay.
package lsmdb

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"phoenix/internal/core"
	"phoenix/internal/faultinject"
	"phoenix/internal/heap"
	"phoenix/internal/kernel"
	"phoenix/internal/linker"
	"phoenix/internal/mem"
	"phoenix/internal/simds"
	"phoenix/internal/workload"
)

// Config parameterises the store.
type Config struct {
	// MemtableThreshold is the payload size that triggers a flush.
	MemtableThreshold uint64
	// BootCost / PhoenixBootCost mirror kvstore's initialisation split.
	BootCost        time.Duration
	PhoenixBootCost time.Duration
	// Cleanup runs mark-and-sweep during PHOENIX recovery.
	Cleanup bool
}

func (c *Config) fill() {
	if c.MemtableThreshold == 0 {
		c.MemtableThreshold = 4 << 20
	}
	if c.BootCost == 0 {
		c.BootCost = 120 * time.Millisecond
	}
	if c.PhoenixBootCost == 0 {
		c.PhoenixBootCost = 15 * time.Millisecond
	}
}

const walFile = "lsm.wal"

// Info-block layout: [0] memtable root, [8] WAL sequence number mirror,
// [16] magic.
const (
	infoSize  = 24
	infoMagic = 0x6c73_6d64_62 // "lsmdb"
)

// sst is the Go-side handle of one flushed sorted run. The authoritative
// contents live on the simulated disk; min/max keys enable cheap routing.
type sst struct {
	name     string
	min, max string
	bytes    int64
	records  int
}

// DB is the store program.
type DB struct {
	cfg Config
	img *linker.Image
	inj *faultinject.Injector

	rt          *core.Runtime
	ctx         *simds.Ctx
	mt          *simds.Skiplist
	info        mem.VAddr
	persistence bool

	ssts    []sst // newest first
	nextSST int

	// walMark is the WAL length at the top of the in-flight request, the
	// truncation floor AfterRewind repairs the log back to.
	walMark int64

	armedBug  string
	armedComp string
	inflight  string

	stats Stats
}

// Stats counts store activity.
type Stats struct {
	Puts, Gets, Hits uint64
	Flushes          uint64
	Compactions      uint64
	WALReplays       uint64
	WALRecords       uint64
}

// New creates the program.
func New(cfg Config, inj *faultinject.Injector) *DB {
	cfg.fill()
	b := linker.NewBuilder("lsmdb", 0x0010_0000)
	b.Var("lsm.options", 64, linker.SecData)
	db := &DB{cfg: cfg, img: b.Build(), inj: inj}
	if inj != nil {
		inj.RegisterAll(Sites())
	}
	return db
}

// Sites returns the injection sites in the write/read paths.
func Sites() []faultinject.Site {
	return []faultinject.Site{
		{ID: "lsm.put.walenc", Func: "AddRecord", Kind: faultinject.KindValue, Modifying: true},
		{ID: "lsm.put.walappend", Func: "AddRecord", Kind: faultinject.KindAction, Modifying: true},
		{ID: "lsm.put.insert", Func: "SkipList::Insert", Kind: faultinject.KindAction, Modifying: true},
		{ID: "lsm.put.batchsize", Func: "WriteBatch::Put", Kind: faultinject.KindValue},
		{ID: "lsm.put.compare", Func: "SkipList::FindGreaterOrEqual", Kind: faultinject.KindCond},
		{ID: "lsm.put.room", Func: "MakeRoomForWrite", Kind: faultinject.KindCond},
		{ID: "lsm.flush.trigger", Func: "MakeRoomForWrite", Kind: faultinject.KindCond, Modifying: true},
		{ID: "lsm.put.partial", Func: "MemTable::Add", Kind: faultinject.KindCond, Modifying: true},
		{ID: "lsm.flush.drop", Func: "WriteLevel0Table", Kind: faultinject.KindAction, Modifying: true},
		{ID: "lsm.get.seek", Func: "SkipList::Seek", Kind: faultinject.KindCond},
		{ID: "lsm.get.route", Func: "Version::Get", Kind: faultinject.KindCond},
		{ID: "lsm.get.decode", Func: "BlockReader", Kind: faultinject.KindValue},
		{ID: "lsm.lock.release", Func: "DBImpl::Write", Kind: faultinject.KindAction},
	}
}

// Name implements recovery.App.
func (db *DB) Name() string { return "lsmdb" }

// Image implements recovery.App.
func (db *DB) Image() *linker.Image { return db.img }

// SetPersistence implements recovery.App.
func (db *DB) SetPersistence(on bool) { db.persistence = on }

// Stats returns activity counters.
func (db *DB) Stats() Stats { return db.stats }

// Len returns the number of memtable entries.
func (db *DB) Len() uint64 { return db.mt.Len() }

// Main implements recovery.App.
func (db *DB) Main(rt *core.Runtime) error {
	db.rt = rt
	m := rt.Proc().Machine
	h, err := rt.OpenHeap(heap.Options{Name: "lsm"})
	if err != nil {
		return fmt.Errorf("lsmdb: open heap: %w", err)
	}
	db.ctx = simds.NewCtx(h, m.Clock, m.Model)

	if rt.IsRecoveryMode() {
		m.Clock.Advance(db.cfg.PhoenixBootCost)
		info := rt.RecoveryInfo()
		if info == mem.NullPtr || rt.Proc().AS.ReadU64(info+16) != infoMagic {
			return fmt.Errorf("lsmdb: recovery info invalid")
		}
		db.info = info
		db.mt = simds.OpenSkiplist(db.ctx, rt.Proc().AS.ReadPtr(info))
		if !db.mt.ValidateHeader() {
			return fmt.Errorf("lsmdb: preserved memtable failed validation")
		}
		if db.cfg.Cleanup {
			db.mt.Mark()
			h.Mark(db.info)
			rt.FinishRecovery(true)
		} else {
			rt.FinishRecovery(false)
		}
		return nil
	}

	m.Clock.Advance(db.cfg.BootCost)
	db.mt = simds.NewSkiplist(db.ctx, 0x5eed)
	db.info = h.Alloc(infoSize)
	if db.info == mem.NullPtr {
		return fmt.Errorf("lsmdb: info block allocation failed")
	}
	db.writeInfo()
	if db.persistence {
		db.replayWAL()
	}
	rt.FinishRecovery(false)
	return nil
}

func (db *DB) writeInfo() {
	as := db.rt.Proc().AS
	as.WritePtr(db.info, db.mt.Addr())
	as.WriteU64(db.info+16, infoMagic)
}

// replayWAL is the builtin recovery path: sequential read plus per-record
// replay into a fresh memtable.
func (db *DB) replayWAL() {
	m := db.rt.Proc().Machine
	data, ok := m.Disk.ReadFile(walFile)
	if !ok {
		return
	}
	recs, err := decodeWAL(data)
	if err != nil {
		panic(&kernel.Crash{Sig: kernel.SIGABRT, Reason: "lsmdb: corrupt WAL: " + err.Error()})
	}
	m.Clock.Advance(time.Duration(len(recs)) * m.Model.LogReplayPerRecord)
	for _, r := range recs {
		db.mt.Insert([]byte(r.Key), mtEncode(r.Val))
	}
	db.stats.WALReplays++
	db.stats.WALRecords += uint64(len(recs))
}

// Handle implements recovery.App.
func (db *DB) Handle(req *workload.Request) (ok, effective bool) {
	m := db.rt.Proc().Machine
	m.Clock.Advance(m.Model.RequestBase)
	db.inflight = req.Key
	db.walMark = m.Disk.Size(walFile)
	if db.armedComp != "" {
		comp := db.armedComp
		db.armedComp = ""
		db.fireComponentCrash(comp)
	}
	if db.armedBug != "" {
		bug := db.armedBug
		db.armedBug = ""
		db.fireBug(bug)
	}
	switch req.Op {
	case workload.OpInsert, workload.OpUpdate:
		db.put(req.Key, req.Value)
		return true, true
	case workload.OpRead:
		return db.get(req.Key)
	case workload.OpDelete:
		db.put(req.Key, nil) // tombstone
		return true, true
	}
	return false, false
}

// put appends to the WAL then inserts into the memtable — one transaction
// bracketed by the "ldb" unsafe region, which (per the §3.5 limitation)
// explicitly includes the file write.
func (db *DB) put(key string, val []byte) {
	rt := db.rt
	m := rt.Proc().Machine
	inj := db.inj
	db.stats.Puts++

	rec := encodeWALRecord(key, val)
	if inj != nil {
		if n := inj.Int("lsm.put.walenc", len(rec)); n >= 0 && n < len(rec) {
			rec = rec[:n] // truncated WAL record: corruption on disk
		}
		// WriteBatch assembly and the memtable seek run before any
		// modification — the read-only majority of the write path that
		// unsafe regions explicitly exclude (§3.5: LevelDB spends 27.5%
		// of fillseq time making updates; the rest is here).
		if n := inj.Int("lsm.put.batchsize", len(rec)); n < 0 {
			panic(&kernel.Crash{Sig: kernel.SIGSEGV, Reason: "lsmdb: bogus write-batch size"})
		}
		if !inj.Cond("lsm.put.compare", true) {
			panic(&kernel.Crash{Sig: kernel.SIGSEGV, Reason: "lsmdb: comparator walked past node"})
		}
		if !inj.Cond("lsm.put.room", true) {
			panic(&kernel.Crash{Sig: kernel.SIGALRM, Reason: "lsmdb: MakeRoomForWrite waits forever"})
		}
	}
	// NOTE: no defer — a crash must leave the counter raised (§3.5); the C
	// instrumentation runs no cleanup on a fatal signal.
	rt.UnsafeBegin("ldb")
	appendWAL := func() { m.Disk.Append(walFile, rec) }
	insert := func() { db.mt.Insert([]byte(key), mtEncode(val)) }
	if inj != nil {
		inj.Do("lsm.put.walappend", appendWAL)
		inj.Do("lsm.put.insert", insert)
	} else {
		appendWAL()
		insert()
	}
	// A fault mid-insert leaves a half-written value in the memtable and
	// kills the writer inside the unsafe region.
	if inj != nil && !inj.Cond("lsm.put.partial", true) {
		db.mt.Insert([]byte(key), mtEncode([]byte("\xde\xad")))
		panic(&kernel.Crash{Sig: kernel.SIGSEGV, Reason: "lsmdb: crash during memtable insert"})
	}
	if inj != nil && !inj.Cond("lsm.lock.release", true) {
		// The write-queue lock is never released: every later writer
		// blocks (LevelDB issue #245 class).
		panic(&kernel.Crash{Sig: kernel.SIGALRM, Reason: "lsmdb: writer lock never released"})
	}

	flush := db.mt.PayloadBytes() >= db.cfg.MemtableThreshold
	if inj != nil {
		flush = inj.Cond("lsm.flush.trigger", flush)
	}
	if flush {
		db.flush()
	}
	rt.UnsafeEnd("ldb")
}

// flush writes the memtable as a sorted run and truncates the WAL.
func (db *DB) flush() {
	m := db.rt.Proc().Machine
	var buf []byte
	var minKey, maxKey string
	n := 0
	db.mt.IterAll(func(k, v []byte) bool {
		if n == 0 {
			minKey = string(k)
		}
		maxKey = string(k)
		val, tomb := mtDecode(v)
		if tomb {
			val = nil
		}
		buf = appendKV(buf, k, val)
		n++
		return true
	})
	if n == 0 {
		return
	}
	name := fmt.Sprintf("sst-%06d", db.nextSST)
	db.nextSST++
	m.Clock.Advance(time.Duration(len(buf)) * m.Model.MarshalPerByte)
	write := func() {
		m.Disk.WriteFile(name, buf)
		if db.persistence {
			m.Disk.WriteFile(walFile, nil)
		}
	}
	if db.inj != nil {
		db.inj.Do("lsm.flush.drop", write) // dropped flush = lost run
	} else {
		write()
	}
	db.ssts = append([]sst{{name: name, min: minKey, max: maxKey, bytes: int64(len(buf)), records: n}}, db.ssts...)
	// Drop the flushed memtable and start a fresh one.
	db.mt.FreeAll()
	db.mt = simds.NewSkiplist(db.ctx, uint64(db.nextSST)*0x9E37+1)
	db.writeInfo()
	db.stats.Flushes++
	db.maybeCompact()
}

// get consults the memtable then routes to sorted runs.
func (db *DB) get(key string) (ok, effective bool) {
	db.stats.Gets++
	inj := db.inj
	if inj != nil && !inj.Cond("lsm.get.seek", true) {
		panic(&kernel.Crash{Sig: kernel.SIGALRM, Reason: "lsmdb: seek loop never terminates"})
	}
	if v, found := db.mt.Get([]byte(key)); found {
		if _, tomb := mtDecode(v); tomb {
			return true, false
		}
		db.stats.Hits++
		return true, true
	}
	m := db.rt.Proc().Machine
	for _, s := range db.ssts {
		inRange := s.min <= key && key <= s.max
		if inj != nil {
			inRange = inj.Cond("lsm.get.route", inRange)
		}
		if !inRange {
			continue
		}
		// One table read: index block + data block.
		m.Clock.Advance(m.Model.DiskLatency)
		data, found := m.Disk.ReadFile(s.name)
		if !found {
			continue
		}
		val, hit := lookupRun(data, key)
		if hit {
			if inj != nil {
				if n := inj.Int("lsm.get.decode", len(val)); n != len(val) && (n < 0 || n > len(val)) {
					panic(&kernel.Crash{Sig: kernel.SIGSEGV, Reason: "lsmdb: block decode out of bounds"})
				}
			}
			if val == nil {
				return true, false
			}
			db.stats.Hits++
			return true, true
		}
	}
	return true, false
}

// --- persistence encoding ---

// mtEncode tags a memtable value: blobs cannot distinguish nil from empty,
// so tombstones carry an explicit type byte (as LevelDB's internal keys do).
func mtEncode(val []byte) []byte {
	if val == nil {
		return []byte{0}
	}
	return append([]byte{1}, val...)
}

// mtDecode strips the type byte, returning the value and whether the entry
// is a tombstone.
func mtDecode(b []byte) (val []byte, tombstone bool) {
	if len(b) == 0 || b[0] == 0 {
		return nil, true
	}
	return b[1:], false
}

// walRecord is one decoded WAL entry.
type walRecord struct {
	Key string
	Val []byte
}

func encodeWALRecord(key string, val []byte) []byte {
	out := make([]byte, 0, 8+len(key)+len(val))
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(len(key)))
	out = append(out, l[:]...)
	out = append(out, key...)
	vlen := uint32(len(val))
	if val == nil {
		vlen = 0xFFFFFFFF // tombstone marker
	}
	binary.LittleEndian.PutUint32(l[:], vlen)
	out = append(out, l[:]...)
	return append(out, val...)
}

func decodeWAL(data []byte) ([]walRecord, error) {
	var out []walRecord
	for len(data) > 0 {
		if len(data) < 4 {
			return nil, fmt.Errorf("truncated key length")
		}
		kl := binary.LittleEndian.Uint32(data)
		data = data[4:]
		if uint32(len(data)) < kl+4 {
			return nil, fmt.Errorf("truncated key")
		}
		key := string(data[:kl])
		data = data[kl:]
		vl := binary.LittleEndian.Uint32(data)
		data = data[4:]
		if vl == 0xFFFFFFFF {
			out = append(out, walRecord{Key: key, Val: nil})
			continue
		}
		if uint32(len(data)) < vl {
			return nil, fmt.Errorf("truncated value")
		}
		v := make([]byte, vl)
		copy(v, data[:vl])
		out = append(out, walRecord{Key: key, Val: v})
		data = data[vl:]
	}
	return out, nil
}

func appendKV(buf []byte, k, v []byte) []byte {
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(len(k)))
	buf = append(buf, l[:]...)
	buf = append(buf, k...)
	vlen := uint32(len(v))
	if v == nil {
		vlen = 0xFFFFFFFF
	}
	binary.LittleEndian.PutUint32(l[:], vlen)
	buf = append(buf, l[:]...)
	return append(buf, v...)
}

// lookupRun scans a sorted-run image for key.
func lookupRun(data []byte, key string) ([]byte, bool) {
	for len(data) > 0 {
		if len(data) < 4 {
			return nil, false
		}
		kl := binary.LittleEndian.Uint32(data)
		data = data[4:]
		if uint32(len(data)) < kl+4 {
			return nil, false
		}
		k := string(data[:kl])
		data = data[kl:]
		vl := binary.LittleEndian.Uint32(data)
		data = data[4:]
		if vl == 0xFFFFFFFF {
			if k == key {
				return nil, true
			}
			continue
		}
		if uint32(len(data)) < vl {
			return nil, false
		}
		if k == key {
			return append([]byte(nil), data[:vl]...), true
		}
		data = data[vl:]
	}
	return nil, false
}

// --- recovery integration ---

// Checkpoint implements recovery.App. LevelDB journals continuously instead
// of checkpointing, so this is a no-op (§2.2).
func (db *DB) Checkpoint() {}

// PlanRestart implements recovery.App.
func (db *DB) PlanRestart(rt *core.Runtime, ci *kernel.CrashInfo, useUnsafe bool) (core.RestartPlan, string) {
	if useUnsafe && !rt.IsSafe("ldb") {
		return core.RestartPlan{}, "unsafe region: ldb"
	}
	db.writeInfo()
	return core.RestartPlan{InfoAddr: db.info, WithHeap: true}, ""
}

// Reattach implements recovery.App (CRIU restore).
func (db *DB) Reattach(rt *core.Runtime) {
	db.rt = rt
	proc := rt.Proc()
	m := proc.Machine
	h, err := heap.Attach(proc.AS, core.DefaultHeapBase, heap.Options{Name: "lsm"})
	if err != nil {
		panic(&kernel.Crash{Sig: kernel.SIGABRT, Reason: "lsmdb: criu reattach: " + err.Error()})
	}
	db.ctx = simds.NewCtx(h, m.Clock, m.Model)
	db.mt = simds.OpenSkiplist(db.ctx, proc.AS.ReadPtr(db.info))
}

// Dump implements recovery.App: merged view of memtable over sorted runs.
func (db *DB) Dump() core.StateDump {
	out := core.StateDump{}
	m := db.rt.Proc().Machine
	// Oldest runs first so newer runs overwrite.
	for i := len(db.ssts) - 1; i >= 0; i-- {
		if data, ok := m.Disk.ReadFile(db.ssts[i].name); ok {
			forEachKV(data, func(k string, v []byte) {
				if v == nil {
					delete(out, k)
				} else {
					out[k] = string(v)
				}
			})
		}
	}
	db.mt.IterAll(func(k, v []byte) bool {
		if val, tomb := mtDecode(v); tomb {
			delete(out, string(k))
		} else {
			out[string(k)] = string(val)
		}
		return true
	})
	return out
}

func forEachKV(data []byte, fn func(k string, v []byte)) {
	for len(data) >= 4 {
		kl := binary.LittleEndian.Uint32(data)
		data = data[4:]
		if uint32(len(data)) < kl+4 {
			return
		}
		k := string(data[:kl])
		data = data[kl:]
		vl := binary.LittleEndian.Uint32(data)
		data = data[4:]
		if vl == 0xFFFFFFFF {
			fn(k, nil)
			continue
		}
		if uint32(len(data)) < vl {
			return
		}
		fn(k, append([]byte(nil), data[:vl]...))
		data = data[vl:]
	}
}

// CrossCheck implements recovery.App: the reference state is the WAL replay
// (LevelDB's default recovery restores exactly the failure-time state, so no
// redo log is needed — §3.6's "some applications already support this").
func (db *DB) CrossCheck(rt *core.Runtime) (core.CrossCheckSpec, bool) {
	if !db.persistence {
		return core.CrossCheckSpec{}, false
	}
	m := rt.Proc().Machine
	info := db.info
	cfg := db.cfg
	return core.CrossCheckSpec{
		SnapshotDump: func(snap *mem.AddressSpace) core.StateDump {
			h, err := heap.Attach(snap, core.DefaultHeapBase, heap.Options{Name: "lsm"})
			if err != nil {
				return core.StateDump{"<snapshot>": "unattachable"}
			}
			c := simds.NewCtx(h, nil, m.Model)
			mt := simds.OpenSkiplist(c, snap.ReadPtr(info))
			out := core.StateDump{}
			func() {
				defer func() {
					if recover() != nil {
						out["<snapshot>"] = "corrupt"
					}
				}()
				mt.IterAll(func(k, v []byte) bool {
					if val, tomb := mtDecode(v); tomb {
						out[string(k)] = ""
					} else {
						out[string(k)] = string(val)
					}
					return true
				})
			}()
			return out
		},
		ReferenceRecover: func() (core.StateDump, time.Duration) {
			ref := core.StateDump{}
			dur := m.Clock.RunOffline(func() {
				data, ok := m.Disk.ReadFile(walFile)
				if !ok {
					return
				}
				recs, err := decodeWAL(data)
				if err != nil {
					return
				}
				m.Clock.Advance(time.Duration(len(recs)) * m.Model.LogReplayPerRecord)
				for _, r := range recs {
					if r.Val == nil {
						ref[r.Key] = ""
					} else {
						ref[r.Key] = string(r.Val)
					}
				}
				m.Clock.Advance(cfg.BootCost)
			})
			return ref, dur
		},
		InFlightKeys: map[string]bool{db.inflight: true},
	}, true
}

// RestoreReference implements recovery.ReferenceRestorer.
func (db *DB) RestoreReference(rt *core.Runtime, ref core.StateDump) error {
	// The validated background process's state equals the WAL replay, which
	// is exactly what a default-recovery Main produces.
	return db.Main(rt)
}

// --- real-bug scenarios (Table 5, L1–L2) ---

// ArmBug schedules a scripted bug: L1 (race on file operations crashes a
// request thread), L2 (hang due to unreleased lock).
func (db *DB) ArmBug(name string) { db.armedBug = name }

func (db *DB) fireBug(name string) {
	switch name {
	case "L1":
		// A racing file rename leaves a dangling table handle; the reader
		// dereferences freed state (LevelDB issue #169 class). Temporary
		// state only — the memtable is untouched.
		db.rt.Proc().AS.ReadU64(mem.VAddr(0x40)) // unmapped low page
	case "L2":
		// A lock acquired on an error path is never released; all writers
		// queue behind it (LevelDB issue #245).
		panic(&kernel.Crash{Sig: kernel.SIGALRM, Reason: "lsmdb: deadlock on write queue"})
	default:
		panic(fmt.Sprintf("lsmdb: unknown bug %q", name))
	}
}

// SSTCount returns the number of flushed runs (tests).
func (db *DB) SSTCount() int { return len(db.ssts) }

// SortedSSTNames lists run names oldest-first (tests).
func (db *DB) SortedSSTNames() []string {
	names := make([]string, len(db.ssts))
	for i, s := range db.ssts {
		names[i] = s.name
	}
	sort.Strings(names)
	return names
}
