package lsmdb

import (
	"fmt"
	"testing"
	"time"

	"phoenix/internal/faultinject"
	"phoenix/internal/kernel"
	"phoenix/internal/recovery"
	"phoenix/internal/workload"
)

func boot(t *testing.T, cfg Config, rcfg recovery.Config, seed int64) (*recovery.Harness, *DB) {
	t.Helper()
	m := kernel.NewMachine(seed)
	db := New(cfg, nil)
	gen := workload.NewFillSeq(100)
	h := recovery.NewHarness(m, rcfg, db, gen, nil)
	if err := h.Boot(); err != nil {
		t.Fatal(err)
	}
	return h, db
}

func TestFillAndGet(t *testing.T) {
	h, db := boot(t, Config{MemtableThreshold: 1 << 30}, recovery.Config{Mode: recovery.ModeBuiltin}, 1)
	if err := h.RunRequests(1000); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 1000 {
		t.Fatalf("Len = %d", db.Len())
	}
	ok, eff := db.Handle(&workload.Request{Op: workload.OpRead, Key: fmt.Sprintf("%016d", 42)})
	if !ok || !eff {
		t.Fatal("read of inserted key missed")
	}
	ok, eff = db.Handle(&workload.Request{Op: workload.OpRead, Key: "nope"})
	if !ok || eff {
		t.Fatal("read of absent key hit")
	}
}

func TestFlushAndReadFromRun(t *testing.T) {
	h, db := boot(t, Config{MemtableThreshold: 32 << 10}, recovery.Config{Mode: recovery.ModeBuiltin}, 2)
	if err := h.RunRequests(2000); err != nil {
		t.Fatal(err)
	}
	if db.Stats().Flushes == 0 || db.SSTCount() == 0 {
		t.Fatalf("no flush happened: %+v", db.Stats())
	}
	// Key 0 flushed to a run; memtable no longer holds it.
	ok, eff := db.Handle(&workload.Request{Op: workload.OpRead, Key: fmt.Sprintf("%016d", 0)})
	if !ok || !eff {
		t.Fatal("read of flushed key missed")
	}
	// Dump merges runs and memtable.
	if n := len(db.Dump()); n != 2000 {
		t.Fatalf("Dump has %d keys", n)
	}
}

func TestTombstones(t *testing.T) {
	h, db := boot(t, Config{MemtableThreshold: 1 << 30}, recovery.Config{Mode: recovery.ModeBuiltin}, 3)
	if err := h.RunRequests(10); err != nil {
		t.Fatal(err)
	}
	key := fmt.Sprintf("%016d", 5)
	db.Handle(&workload.Request{Op: workload.OpDelete, Key: key})
	ok, eff := db.Handle(&workload.Request{Op: workload.OpRead, Key: key})
	if !ok || eff {
		t.Fatal("deleted key still readable")
	}
	if _, present := db.Dump()[key]; present {
		t.Fatal("tombstoned key in dump")
	}
}

func TestBuiltinWALReplay(t *testing.T) {
	h, db := boot(t, Config{MemtableThreshold: 1 << 30}, recovery.Config{Mode: recovery.ModeBuiltin}, 4)
	if err := h.RunRequests(500); err != nil {
		t.Fatal(err)
	}
	before := db.Dump()
	db.ArmBug("L1")
	if err := h.RunRequests(500); err != nil {
		t.Fatal(err)
	}
	if h.Stat.Failures != 1 || db.Stats().WALReplays != 1 {
		t.Fatalf("stats: %+v / %+v", h.Stat, db.Stats())
	}
	after := db.Dump()
	for k, v := range before {
		if after[k] != v {
			t.Fatalf("WAL replay lost key %s", k)
		}
	}
}

func TestPhoenixPreservesMemtable(t *testing.T) {
	rcfg := recovery.Config{Mode: recovery.ModePhoenix, UnsafeRegions: true, WatchdogTimeout: time.Second}
	h, db := boot(t, Config{MemtableThreshold: 1 << 30}, rcfg, 5)
	if err := h.RunRequests(500); err != nil {
		t.Fatal(err)
	}
	before := db.Dump()
	db.ArmBug("L1")
	if err := h.RunRequests(500); err != nil {
		t.Fatal(err)
	}
	if h.Stat.PhoenixRestarts != 1 {
		t.Fatalf("stats: %+v", h.Stat)
	}
	if db.Stats().WALReplays != 0 {
		t.Fatal("phoenix recovery should not replay the WAL")
	}
	after := db.Dump()
	for k, v := range before {
		if after[k] != v {
			t.Fatalf("preserved memtable lost key %s", k)
		}
	}
}

func TestPhoenixDowntimeBeatsWALReplay(t *testing.T) {
	downtime := map[recovery.Mode]time.Duration{}
	for _, mode := range []recovery.Mode{recovery.ModeBuiltin, recovery.ModePhoenix} {
		rcfg := recovery.Config{Mode: mode, UnsafeRegions: mode == recovery.ModePhoenix, WatchdogTimeout: time.Second}
		h, db := boot(t, Config{MemtableThreshold: 1 << 30}, rcfg, 6)
		if err := h.RunRequests(20000); err != nil {
			t.Fatal(err)
		}
		db.ArmBug("L1")
		if err := h.RunRequests(5000); err != nil {
			t.Fatal(err)
		}
		downtime[mode] = h.TL.Summarize().Downtime
	}
	if downtime[recovery.ModePhoenix]*5 > downtime[recovery.ModeBuiltin] {
		t.Fatalf("phoenix %v vs builtin %v: no clear win",
			downtime[recovery.ModePhoenix], downtime[recovery.ModeBuiltin])
	}
}

func TestHangBugUsesWatchdog(t *testing.T) {
	rcfg := recovery.Config{Mode: recovery.ModePhoenix, UnsafeRegions: true, WatchdogTimeout: 3 * time.Second}
	h, db := boot(t, Config{MemtableThreshold: 1 << 30}, rcfg, 7)
	if err := h.RunRequests(100); err != nil {
		t.Fatal(err)
	}
	db.ArmBug("L2")
	if err := h.RunRequests(100); err != nil {
		t.Fatal(err)
	}
	d := h.TL.Summarize().Downtime
	if d < 3*time.Second || d > 4*time.Second {
		t.Fatalf("downtime %v, want ~watchdog timeout", d)
	}
}

func TestCrashInsideUnsafeRegionFallsBack(t *testing.T) {
	// A crash between WAL append and memtable insert is mid-transaction:
	// the preserved memtable would miss a logged update.
	m := kernel.NewMachine(8)
	db := New(Config{MemtableThreshold: 1 << 30}, nil)
	rcfg := recovery.Config{Mode: recovery.ModePhoenix, UnsafeRegions: true, WatchdogTimeout: time.Second}
	gen := workload.NewFillSeq(100)
	h := recovery.NewHarness(m, rcfg, db, gen, nil)
	if err := h.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := h.RunRequests(200); err != nil {
		t.Fatal(err)
	}
	// Simulate the mid-update crash directly.
	db.rt.UnsafeBegin("ldb")
	plan, reason := db.PlanRestart(db.rt, &kernel.CrashInfo{Sig: kernel.SIGSEGV}, true)
	if reason == "" {
		t.Fatalf("mid-update crash not flagged unsafe (plan=%+v)", plan)
	}
	db.rt.UnsafeEnd("ldb")
	if _, reason := db.PlanRestart(db.rt, &kernel.CrashInfo{Sig: kernel.SIGSEGV}, true); reason != "" {
		t.Fatalf("safe crash flagged: %s", reason)
	}
}

func TestCrossCheckMatchesWALReplay(t *testing.T) {
	rcfg := recovery.Config{
		Mode: recovery.ModePhoenix, UnsafeRegions: true, CrossCheck: true,
		WatchdogTimeout: time.Second,
	}
	h, db := boot(t, Config{MemtableThreshold: 1 << 30}, rcfg, 9)
	if err := h.RunRequests(1000); err != nil {
		t.Fatal(err)
	}
	db.ArmBug("L1")
	if err := h.RunRequests(1000); err != nil {
		t.Fatal(err)
	}
	h.M.Clock.Advance(10 * time.Second)
	v := h.CrossCheckResult()
	if v == nil {
		t.Fatal("cross-check never completed")
	}
	if !v.Match {
		t.Fatalf("memtable diverged from WAL replay: %v", v.Diverged)
	}
}

func TestWALEncoding(t *testing.T) {
	recs := []walRecord{
		{Key: "a", Val: []byte("1")},
		{Key: "tomb", Val: nil},
		{Key: "empty", Val: []byte{}},
	}
	var data []byte
	for _, r := range recs {
		data = append(data, encodeWALRecord(r.Key, r.Val)...)
	}
	got, err := decodeWAL(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Key != "a" || got[1].Val != nil || got[2].Val == nil {
		t.Fatalf("decoded %+v", got)
	}
	if _, err := decodeWAL(data[:len(data)-1]); err == nil {
		t.Fatal("truncated WAL decoded cleanly")
	}
}

func TestCompactionMergesRuns(t *testing.T) {
	h, db := boot(t, Config{MemtableThreshold: 16 << 10}, recovery.Config{Mode: recovery.ModeBuiltin}, 20)
	if err := h.RunRequests(4000); err != nil {
		t.Fatal(err)
	}
	if db.Stats().Compactions == 0 {
		t.Fatalf("no compaction after %d flushes", db.Stats().Flushes)
	}
	if db.SSTCount() >= CompactionThreshold+1 {
		t.Fatalf("run count %d not bounded by compaction", db.SSTCount())
	}
	// Every inserted key still readable after merges.
	for _, i := range []int{0, 500, 1500, 3000, 3999} {
		ok, eff := db.Handle(&workload.Request{Op: workload.OpRead, Key: fmt.Sprintf("%016d", i)})
		if !ok || !eff {
			t.Fatalf("key %d lost after compaction", i)
		}
	}
	if n := len(db.Dump()); n != 4000 {
		t.Fatalf("dump has %d keys after compaction", n)
	}
}

func TestCompactionDropsTombstones(t *testing.T) {
	h, db := boot(t, Config{MemtableThreshold: 1 << 30}, recovery.Config{Mode: recovery.ModeBuiltin}, 21)
	if err := h.RunRequests(100); err != nil {
		t.Fatal(err)
	}
	key := fmt.Sprintf("%016d", 50)
	db.Handle(&workload.Request{Op: workload.OpDelete, Key: key})
	db.flush()
	db.flush() // no-op (empty memtable)
	db.Compact()
	if _, present := db.Dump()[key]; present {
		t.Fatal("tombstoned key resurrected by compaction")
	}
	ok, eff := db.Handle(&workload.Request{Op: workload.OpRead, Key: key})
	if !ok || eff {
		t.Fatal("deleted key readable after compaction")
	}
	// Old runs unlinked from disk.
	files := 0
	for _, name := range h.Proc().Machine.Disk.List() {
		if len(name) > 4 && name[:4] == "sst-" {
			files++
		}
	}
	if files != db.SSTCount() {
		t.Fatalf("disk has %d runs, index has %d", files, db.SSTCount())
	}
}

func TestCompactionPreservesNewestValue(t *testing.T) {
	_, db := boot(t, Config{MemtableThreshold: 1 << 30}, recovery.Config{Mode: recovery.ModeBuiltin}, 22)
	key := "k-version-test"
	for v := 1; v <= 3; v++ {
		db.put(key, []byte(fmt.Sprintf("v%d", v)))
		db.flush()
	}
	db.Compact()
	if got := db.Dump()[key]; got != "v3" {
		t.Fatalf("compaction kept %q, want v3", got)
	}
}

func TestCrossCheckCatchesMemtableCorruption(t *testing.T) {
	// A silently corrupted memtable value (injected partial write that did
	// not crash immediately) diverges from the WAL replay; the cross-check
	// must detect it and hot-switch to the validated WAL-derived state.
	m := kernel.NewMachine(30)
	inj := faultinject.New()
	db := New(Config{MemtableThreshold: 1 << 30}, inj)
	rcfg := recovery.Config{
		Mode: recovery.ModePhoenix, UnsafeRegions: false, CrossCheck: true,
		WatchdogTimeout: time.Second,
	}
	h := recovery.NewHarness(m, rcfg, db, workload.NewFillSeq(64), inj)
	if err := h.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := h.RunRequests(500); err != nil {
		t.Fatal(err)
	}
	// Drop one memtable insert while the WAL records it (silent divergence).
	inj.Arm("lsm.put.insert", faultinject.MissingStore)
	inj.Enable()
	if err := h.RunRequests(50); err != nil {
		t.Fatal(err)
	}
	if !inj.Fired("lsm.put.insert") {
		t.Fatal("fault did not fire")
	}
	db.ArmBug("L1") // crash outside the region
	if err := h.RunRequests(50); err != nil {
		t.Fatal(err)
	}
	if h.Stat.PhoenixRestarts != 1 {
		t.Fatalf("stats %+v", h.Stat)
	}
	h.M.Clock.Advance(10 * time.Second)
	if err := h.RunRequests(10); err != nil {
		t.Fatal(err)
	}
	v := h.CrossCheckResult()
	if v == nil || v.Match {
		t.Fatalf("cross-check missed the divergence: %+v", v)
	}
	if h.Stat.CrossFallbacks != 1 {
		t.Fatalf("no hot switch: %+v", h.Stat)
	}
	// Post-switch, the dropped key is back (WAL replay has it).
	if len(db.Dump()) < 550 {
		t.Fatalf("validated state missing keys: %d", len(db.Dump()))
	}
}
