package lsmdb

import (
	"testing"
	"time"

	"phoenix/internal/faultinject"
	"phoenix/internal/kernel"
	"phoenix/internal/recovery"
	"phoenix/internal/workload"
)

// TestRewindRepairsGoSideEffects drives the rewind rung end to end on the one
// app whose request handlers have Go-side effects a domain discard cannot
// undo. The lsm.put.partial fault crashes a put after its WAL append and
// mid-memtable-insert (a poisoned value is already in the skiplist), so a
// correct recovery needs both halves of the RewindableApp + RewindObserver
// pair: the domain discard rolls the simulated memory (both inserts) back
// byte-exactly, and AfterRewind truncates the WAL to the top-of-request mark —
// otherwise the rewound put would resurrect through a later WAL replay as an
// acked write that never was — and reopens the memtable handle from the
// restored info block.
func TestRewindRepairsGoSideEffects(t *testing.T) {
	m := kernel.NewMachine(41)
	inj := faultinject.New()
	db := New(Config{MemtableThreshold: 1 << 30}, inj)
	rcfg := recovery.Config{
		Mode: recovery.ModePhoenix, Supervise: true, RewindDomains: true,
		Supervisor: recovery.SupervisorConfig{
			Floor:       recovery.LevelRewind,
			BackoffBase: time.Nanosecond,
			BackoffMax:  time.Nanosecond,
		},
	}
	h := recovery.NewHarness(m, rcfg, db, workload.NewFillSeq(64), inj)
	if err := h.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := h.RunRequests(100); err != nil {
		t.Fatal(err)
	}

	before := db.Dump()
	walBefore := m.Disk.Size(walFile)
	inj.Arm("lsm.put.partial", faultinject.CompInversion)
	inj.Enable()
	victim := &workload.Request{Op: workload.OpInsert, Key: "rewind-victim", Value: []byte("poison")}
	ok, _, err := h.ServeRequest(victim)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("crashing put reported ok")
	}
	if !inj.Fired("lsm.put.partial") {
		t.Fatal("armed fault did not fire")
	}

	// The crash recovered at LevelRewind: no restart of any kind.
	if h.Stat.Rewinds != 1 || h.Stat.PhoenixRestarts != 0 || h.Stat.Failures != 1 {
		t.Fatalf("stats %+v, want exactly one rewind and no restart", h.Stat)
	}
	// The rewound put's WAL append is gone and its inserts rolled back.
	if got := m.Disk.Size(walFile); got != walBefore {
		t.Fatalf("WAL is %d bytes after rewind, want %d (append not truncated)", got, walBefore)
	}
	after := db.Dump()
	if _, present := after[victim.Key]; present {
		t.Fatal("rewound insert still visible in the store")
	}
	if len(after) != len(before) {
		t.Fatalf("rewind changed the dataset: %d keys, want %d", len(after), len(before))
	}
	for k, v := range before {
		if after[k] != v {
			t.Fatalf("key %q = %q after rewind, want %q", k, after[k], v)
		}
	}

	// The store keeps serving through the reopened memtable handle: the same
	// put, unfaulted, lands durably.
	okk, eff, err := h.ServeRequest(victim)
	if err != nil || !okk || !eff {
		t.Fatalf("post-rewind put failed: ok=%v eff=%v err=%v", okk, eff, err)
	}
	if m.Disk.Size(walFile) <= walBefore {
		t.Fatal("post-rewind put did not append to the WAL")
	}
	ok, eff = db.Handle(&workload.Request{Op: workload.OpRead, Key: victim.Key})
	if !ok || !eff {
		t.Fatal("post-rewind put not readable")
	}
	if err := h.RunRequests(50); err != nil {
		t.Fatal(err)
	}
	if db.Len() == 0 {
		t.Fatal("memtable handle dead after rewind")
	}
}
