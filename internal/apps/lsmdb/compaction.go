package lsmdb

import (
	"fmt"
	"sort"
	"time"
)

// Size-tiered compaction: when the number of sorted runs exceeds
// CompactionThreshold, merge them all into one run. Compaction reads every
// input run, merges by key with newest-wins semantics, drops tombstones
// whose key appears in no older run (after a full merge there are no older
// runs, so all tombstones die), and writes one output run.
//
// Like the flush path, compaction mutates only on-disk state plus the
// Go-side run index (the MANIFEST analogue); the preserved in-memory state
// is untouched, so no unsafe region is needed — a crash mid-compaction
// leaves the old runs in place because the output is swapped in last
// (write-new-then-unlink, the crash-safe order real LSM stores use).

// CompactionThreshold is the run count that triggers a merge.
const CompactionThreshold = 4

// maybeCompact merges all runs when the threshold is exceeded.
func (db *DB) maybeCompact() {
	if len(db.ssts) < CompactionThreshold {
		return
	}
	db.compact()
}

// compact merges every current run into one.
func (db *DB) compact() {
	if len(db.ssts) <= 1 {
		return
	}
	m := db.rt.Proc().Machine

	// Read all inputs (oldest first so newer entries overwrite).
	merged := map[string][]byte{}
	var inputs []string
	var inputBytes int64
	for i := len(db.ssts) - 1; i >= 0; i-- {
		s := db.ssts[i]
		data, ok := m.Disk.ReadFile(s.name)
		if !ok {
			continue
		}
		inputBytes += int64(len(data))
		forEachKV(data, func(k string, v []byte) {
			merged[k] = v // nil marks a tombstone
		})
		inputs = append(inputs, s.name)
	}

	// Emit in key order, dropping tombstones (full merge ⇒ nothing older).
	keys := make([]string, 0, len(merged))
	for k := range merged {
		if merged[k] != nil {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var buf []byte
	for _, k := range keys {
		buf = appendKV(buf, []byte(k), merged[k])
	}
	m.Clock.Advance(time.Duration(inputBytes+int64(len(buf))) * m.Model.MarshalPerByte)

	name := fmt.Sprintf("sst-%06d", db.nextSST)
	db.nextSST++
	var newRuns []sst
	if len(keys) > 0 {
		m.Disk.WriteFile(name, buf)
		newRuns = []sst{{
			name: name, min: keys[0], max: keys[len(keys)-1],
			bytes: int64(len(buf)), records: len(keys),
		}}
	}
	// Swap in the new index, then unlink inputs (crash-safe order).
	db.ssts = newRuns
	for _, in := range inputs {
		m.Disk.Remove(in)
	}
	db.stats.Compactions++
}

// Compact forces a full merge (tests and tools).
func (db *DB) Compact() { db.compact() }
