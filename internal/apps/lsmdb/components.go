package lsmdb

import (
	"fmt"

	"phoenix/internal/kernel"
	"phoenix/internal/recovery"
)

// Component-level recovery for the store. Two components sit below the
// process:
//
//   - "memtable": the preserved skiplist. Its safe discard is a flush — the
//     contents move to a sorted run on disk and a fresh skiplist takes over,
//     exactly the path MakeRoomForWrite runs when the table fills.
//   - "sstreader": the Go-side run index (the MANIFEST analogue). It is pure
//     cache over the on-disk runs and rebuilds from a disk scan. It depends
//     on "memtable" because a flush emits a new run the index must pick up.
//
// The store is rewindable via the RewindableApp + RewindObserver pair in
// rewind.go: the domain discard restores the memtable pages, and AfterRewind
// repairs the Go-side effects (the WAL append, the memtable handle).
// ArmComponentCrash plants no scribble — any pre-crash corruption of the
// memtable would be made durable by the flush that reboots it.

// Components implements recovery.ComponentApp.
func (db *DB) Components() []recovery.Component {
	return []recovery.Component{
		{Name: "memtable"},
		{Name: "sstreader", Deps: []string{"memtable"}},
	}
}

// RebootComponent implements recovery.ComponentApp.
func (db *DB) RebootComponent(name string) (int, error) {
	switch name {
	case "memtable":
		n := int(db.mt.Len())
		db.flush()
		return n, nil
	case "sstreader":
		return db.rebuildRunIndex(), nil
	default:
		return 0, fmt.Errorf("lsmdb: unknown component %q", name)
	}
}

// rebuildRunIndex reconstructs db.ssts from the on-disk runs. Run names are
// sst-%06d with a monotonically increasing counter (flush and compaction
// both allocate from it, and compaction unlinks its inputs), so the
// surviving files in descending-counter order ARE the newest-first index.
func (db *DB) rebuildRunIndex() int {
	m := db.rt.Proc().Machine
	var runs []sst
	for i := db.nextSST - 1; i >= 0; i-- {
		name := fmt.Sprintf("sst-%06d", i)
		data, ok := m.Disk.ReadFile(name)
		if !ok {
			continue
		}
		runs = append(runs, summarizeRun(name, data))
	}
	db.ssts = runs
	return len(runs)
}

// summarizeRun derives a handle from a run image. Runs are written in key
// order, so the first record carries the min key and the last the max.
func summarizeRun(name string, data []byte) sst {
	s := sst{name: name, bytes: int64(len(data))}
	forEachKV(data, func(k string, v []byte) {
		if s.records == 0 {
			s.min = k
		}
		s.max = k
		s.records++
	})
	return s
}

// VerifyComponents implements recovery.ComponentApp: the memtable header
// must validate, the info block must point at it, and the run index must
// agree byte-for-byte with the on-disk runs — no dangling handles to
// unlinked files, no stale metadata, no run on disk the index forgot.
func (db *DB) VerifyComponents() error {
	as := db.rt.Proc().AS
	if as.ReadU64(db.info+16) != infoMagic {
		return fmt.Errorf("lsmdb: info block magic corrupt")
	}
	if as.ReadPtr(db.info) != db.mt.Addr() {
		return fmt.Errorf("lsmdb: info block points at stale memtable (dangling root)")
	}
	if !db.mt.ValidateHeader() {
		return fmt.Errorf("lsmdb: memtable header failed validation")
	}
	m := db.rt.Proc().Machine
	indexed := make(map[string]bool, len(db.ssts))
	prev := db.nextSST
	for _, s := range db.ssts {
		i := 0
		if _, err := fmt.Sscanf(s.name, "sst-%06d", &i); err != nil || i >= prev {
			return fmt.Errorf("lsmdb: run index out of order at %s", s.name)
		}
		prev = i
		indexed[s.name] = true
		data, ok := m.Disk.ReadFile(s.name)
		if !ok {
			return fmt.Errorf("lsmdb: run index references unlinked file %s (dangling handle)", s.name)
		}
		if want := summarizeRun(s.name, data); s != want {
			return fmt.Errorf("lsmdb: run handle %s disagrees with on-disk contents (stale metadata)", s.name)
		}
	}
	for i := 0; i < db.nextSST; i++ {
		name := fmt.Sprintf("sst-%06d", i)
		if _, ok := m.Disk.ReadFile(name); ok && !indexed[name] {
			return fmt.Errorf("lsmdb: on-disk run %s missing from index", name)
		}
	}
	return nil
}

// ArmComponentCrash implements recovery.ComponentApp: the next request
// panics with the crash attributed to the named component.
func (db *DB) ArmComponentCrash(name string) { db.armedComp = name }

func (db *DB) fireComponentCrash(comp string) {
	switch comp {
	case "memtable", "sstreader":
		panic(&kernel.Crash{Sig: kernel.SIGABRT, Reason: "lsmdb: fault in component " + comp, Component: comp})
	default:
		panic(fmt.Sprintf("lsmdb: unknown component %q", comp))
	}
}
