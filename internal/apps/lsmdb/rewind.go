package lsmdb

import "phoenix/internal/simds"

// Rewind-domain support. A put's page writes (memtable insert, info block)
// all land in simulated memory, which the domain discard restores
// byte-exactly — but the put also appends to the WAL on the Go-side simulated
// disk, and (on a flush) swaps the Go-side memtable handle and run index. The
// store therefore rides the rewind rung as a RewindableApp + RewindObserver
// pair: Handle marks the WAL length at the top of every request, and
// AfterRewind re-syncs the Go side with the rolled-back memory — the WAL is
// truncated back to the mark (the rewound request's append must not resurrect
// through a later replay as an acked write that never was), and the memtable
// handle reopens from the restored info block.
//
// A flush inside the rewound request is the one case the repair cannot fully
// invert: the emitted run stays on disk (its contents equal the rolled-back
// memtable, so reads stay correct) and the flush's WAL truncation stands
// (shorter than the mark, so the guard skips it).

// Rewindable implements recovery.RewindableApp.
func (db *DB) Rewindable() bool { return true }

// AfterRewind implements recovery.RewindObserver.
func (db *DB) AfterRewind() {
	as := db.rt.Proc().AS
	m := db.rt.Proc().Machine
	// Follow the restored info block: if the rewound request flushed, the
	// live Go handle points at the successor skiplist while memory rolled
	// back to the predecessor.
	db.mt = simds.OpenSkiplist(db.ctx, as.ReadPtr(db.info))
	// Undo the request's WAL append.
	floor := db.walMark
	if floor < 0 {
		floor = 0
	}
	if cur := m.Disk.Size(walFile); cur > floor {
		if data, ok := m.Disk.ReadFile(walFile); ok {
			m.Disk.WriteFile(walFile, data[:floor])
		}
	}
}
