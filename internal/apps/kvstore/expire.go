package kvstore

import (
	"encoding/binary"
	"time"

	"phoenix/internal/mem"
	"phoenix/internal/simds"
)

// Key expiry, structured like Redis: a separate expires dictionary maps key
// → absolute simulated deadline. Expired keys are reclaimed lazily on access
// and proactively by the active expire cycle that runs between requests.
// The expires dictionary lives in the same preserved heap as the main
// dictionary, so TTLs survive a PHOENIX restart (deadlines are absolute
// simulated times and the machine clock is monotonic across restarts).

// Expire sets a TTL on an existing key. It reports whether the key exists.
func (kv *KV) Expire(key string, ttl time.Duration) bool {
	if _, ok := kv.dict.Get([]byte(key)); !ok {
		return false
	}
	deadline := kv.rt.Proc().Machine.Clock.Now() + ttl
	kv.rt.UnsafeBegin("kv")
	kv.expires.Set([]byte(key), uint64(deadline))
	kv.rt.UnsafeEnd("kv")
	return true
}

// TTL returns the remaining lifetime of key: (0, false) when the key has no
// expiry or does not exist.
func (kv *KV) TTL(key string) (time.Duration, bool) {
	dl, ok := kv.expires.Get([]byte(key))
	if !ok {
		return 0, false
	}
	now := kv.rt.Proc().Machine.Clock.Now()
	if time.Duration(dl) <= now {
		return 0, false
	}
	return time.Duration(dl) - now, true
}

// expired reports whether key has a deadline in the past.
func (kv *KV) expired(key string) bool {
	dl, ok := kv.expires.Get([]byte(key))
	return ok && time.Duration(dl) <= kv.rt.Proc().Machine.Clock.Now()
}

// reapExpired removes an expired key (lazy expiration on the access path).
func (kv *KV) reapExpired(key string) {
	kv.rt.UnsafeBegin("kv")
	if old, found := kv.dict.Delete([]byte(key)); found && old != 0 {
		kv.ctx.FreeBlob(mem.VAddr(old))
	}
	kv.expires.Delete([]byte(key))
	if kv.redo != nil {
		kv.redo.Append(encodeRedo('D', key, nil))
	}
	kv.rt.UnsafeEnd("kv")
	kv.stats.Expired++
}

// activeExpireCycle samples the expires dictionary and reaps any dead keys,
// Redis's serverCron-style background pass. It runs at most `budget` key
// checks per invocation.
func (kv *KV) activeExpireCycle(budget int) {
	if kv.expires.Len() == 0 {
		return
	}
	now := kv.rt.Proc().Machine.Clock.Now()
	var dead []string
	scan := true
	if kv.inj != nil {
		scan = kv.inj.Cond("kv.expire.scan", true)
	}
	if !scan {
		return // perturbed guard: the cycle silently does nothing
	}
	kv.expires.Iterate(func(key []byte, dl uint64) bool {
		budget--
		if time.Duration(dl) <= now {
			dead = append(dead, string(key))
		}
		return budget > 0
	})
	for _, k := range dead {
		kv.reapExpired(k)
	}
}

// expiresSnapshot serialises the expires dict for the RDB image.
func (kv *KV) expiresSnapshot() []byte {
	var buf []byte
	kv.expires.Iterate(func(key []byte, dl uint64) bool {
		var l [4]byte
		binary.LittleEndian.PutUint32(l[:], uint32(len(key)))
		buf = append(buf, l[:]...)
		buf = append(buf, key...)
		var d [8]byte
		binary.LittleEndian.PutUint64(d[:], dl)
		buf = append(buf, d[:]...)
		return true
	})
	return buf
}

// loadExpires rebuilds the expires dict from an RDB expiry section.
func (kv *KV) loadExpires(buf []byte) {
	for len(buf) >= 4 {
		n := binary.LittleEndian.Uint32(buf)
		buf = buf[4:]
		if uint32(len(buf)) < n+8 {
			return
		}
		key := string(buf[:n])
		dl := binary.LittleEndian.Uint64(buf[n : n+8])
		buf = buf[n+8:]
		kv.expires.Set([]byte(key), dl)
	}
}

// markExpires extends the cleanup traversal over the expires dictionary.
func (kv *KV) markExpires() {
	if kv.expires != nil {
		kv.expires.Mark(nil)
	}
}

// openExpires attaches or creates the expires dictionary during Main.
func (kv *KV) openExpires(recovered bool, root mem.VAddr) {
	if recovered && root != mem.NullPtr {
		kv.expires = simds.OpenDict(kv.ctx, root)
		return
	}
	kv.expires = simds.NewDict(kv.ctx, 64)
}
