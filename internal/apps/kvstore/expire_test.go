package kvstore

import (
	"testing"
	"time"

	"phoenix/internal/core"
	"phoenix/internal/kernel"
	"phoenix/internal/recovery"
	"phoenix/internal/workload"
)

func TestExpireAndTTL(t *testing.T) {
	h, kv := boot(t, Config{}, recovery.ModeVanilla, recovery.Config{}, 31)
	kv.Load([]string{"hot"}, 16)
	if !kv.Expire("hot", 2*time.Second) {
		t.Fatal("Expire on existing key failed")
	}
	if kv.Expire("missing", time.Second) {
		t.Fatal("Expire on missing key succeeded")
	}
	ttl, ok := kv.TTL("hot")
	if !ok || ttl <= 0 || ttl > 2*time.Second {
		t.Fatalf("TTL = %v,%v", ttl, ok)
	}
	// Still readable before the deadline.
	ok, eff := kv.Handle(&workload.Request{Op: workload.OpRead, Key: "hot"})
	if !ok || !eff {
		t.Fatal("key expired early")
	}
	// Past the deadline: lazy expiration on access.
	h.M.Clock.Advance(3 * time.Second)
	ok, eff = kv.Handle(&workload.Request{Op: workload.OpRead, Key: "hot"})
	if !ok || eff {
		t.Fatal("expired key still readable")
	}
	if kv.Stats().Expired != 1 {
		t.Fatalf("Expired = %d", kv.Stats().Expired)
	}
	if _, ok := kv.TTL("hot"); ok {
		t.Fatal("TTL survives expiry")
	}
}

func TestActiveExpireCycle(t *testing.T) {
	h, kv := boot(t, Config{}, recovery.ModeVanilla, recovery.Config{}, 32)
	kv.Load([]string{"a", "b", "c"}, 16)
	kv.Expire("a", time.Millisecond)
	kv.Expire("b", time.Millisecond)
	h.M.Clock.Advance(time.Second)
	// Drive unrelated requests until the cron pass reaps the dead keys.
	for i := 0; i < 200 && kv.Stats().Expired < 2; i++ {
		kv.Handle(&workload.Request{Op: workload.OpRead, Key: "c"})
	}
	if kv.Stats().Expired != 2 {
		t.Fatalf("active cycle reaped %d, want 2", kv.Stats().Expired)
	}
	if kv.Len() != 1 {
		t.Fatalf("Len = %d, want 1", kv.Len())
	}
}

func TestSetClearsTTL(t *testing.T) {
	h, kv := boot(t, Config{}, recovery.ModeVanilla, recovery.Config{}, 33)
	kv.Load([]string{"k"}, 16)
	kv.Expire("k", time.Second)
	kv.Handle(&workload.Request{Op: workload.OpInsert, Key: "k", Value: []byte("fresh")})
	h.M.Clock.Advance(5 * time.Second)
	ok, eff := kv.Handle(&workload.Request{Op: workload.OpRead, Key: "k"})
	if !ok || !eff {
		t.Fatal("SET did not clear the TTL")
	}
}

func TestDeleteClearsTTL(t *testing.T) {
	_, kv := boot(t, Config{}, recovery.ModeVanilla, recovery.Config{}, 34)
	kv.Load([]string{"k"}, 16)
	kv.Expire("k", time.Hour)
	kv.Handle(&workload.Request{Op: workload.OpDelete, Key: "k"})
	if _, ok := kv.TTL("k"); ok {
		t.Fatal("DEL left a TTL behind")
	}
}

func TestTTLSurvivesPhoenixRestart(t *testing.T) {
	h, kv := boot(t, Config{}, recovery.ModePhoenix, phoenixCfg(), 35)
	kv.Load(loadKeys(100), 16)
	kv.Expire("user0000000001", 30*time.Second)
	kv.Expire("user0000000002", 50*time.Millisecond)
	h.M.Clock.Advance(time.Second) // key 2's deadline passes pre-crash
	kv.ArmBug("R3")
	if err := h.RunRequests(100); err != nil {
		t.Fatal(err)
	}
	if h.Stat.PhoenixRestarts != 1 {
		t.Fatalf("stats: %+v", h.Stat)
	}
	// The long TTL survived the restart; the short one is dead.
	if ttl, ok := kv.TTL("user0000000001"); !ok || ttl <= 0 {
		t.Fatalf("TTL lost across restart: %v %v", ttl, ok)
	}
	ok, eff := kv.Handle(&workload.Request{Op: workload.OpRead, Key: "user0000000002"})
	if !ok || eff {
		t.Fatal("pre-crash-expired key readable after restart")
	}
}

func TestTTLSurvivesRDBRoundTrip(t *testing.T) {
	h, kv := boot(t, Config{}, recovery.ModeBuiltin, recovery.Config{CheckpointInterval: time.Hour}, 36)
	kv.Load([]string{"k1", "k2"}, 16)
	kv.Expire("k1", time.Hour)
	kv.Checkpoint()
	// Crash and reload from the RDB: the expiry table travels with it.
	np, err := h.Runtime().Fallback("test")
	if err != nil {
		t.Fatal(err)
	}
	rt2 := newRuntimeForTest(np)
	if err := kv.Main(rt2); err != nil {
		t.Fatal(err)
	}
	if _, ok := kv.TTL("k1"); !ok {
		t.Fatal("TTL lost across RDB reload")
	}
	if _, ok := kv.TTL("k2"); ok {
		t.Fatal("phantom TTL after reload")
	}
}

// newRuntimeForTest mirrors the driver's runtime creation.
func newRuntimeForTest(np *kernel.Process) *core.Runtime {
	return core.Init(np, nil)
}
