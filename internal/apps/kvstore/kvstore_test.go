package kvstore

import (
	"fmt"
	"testing"
	"time"

	"phoenix/internal/core"
	"phoenix/internal/faultinject"
	"phoenix/internal/kernel"
	"phoenix/internal/recovery"
	"phoenix/internal/workload"
)

func boot(t *testing.T, cfg Config, mode recovery.Mode, rcfg recovery.Config, seed int64) (*recovery.Harness, *KV) {
	t.Helper()
	m := kernel.NewMachine(seed)
	kv := New(cfg, nil)
	rcfg.Mode = mode
	gen := workload.NewYCSB(workload.YCSBConfig{
		Seed: seed, Records: 2000, ReadFrac: 0.9, InsertFrac: 0.1,
		ValueSize: 64, ZipfianKeys: true,
	})
	h := recovery.NewHarness(m, rcfg, kv, gen, nil)
	if err := h.Boot(); err != nil {
		t.Fatal(err)
	}
	return h, kv
}

func loadKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("user%010d", i)
	}
	return keys
}

func TestServeWithoutFailure(t *testing.T) {
	h, kv := boot(t, Config{}, recovery.ModeVanilla, recovery.Config{}, 1)
	kv.Load(loadKeys(2000), 64)
	if err := h.RunRequests(5000); err != nil {
		t.Fatal(err)
	}
	st := kv.Stats()
	if st.Gets == 0 || st.Hits == 0 || st.Sets == 0 {
		t.Fatalf("stats: %+v", st)
	}
	// Reads of loaded keys must hit.
	if float64(st.Hits)/float64(st.Gets) < 0.95 {
		t.Fatalf("hit rate %d/%d too low", st.Hits, st.Gets)
	}
	if h.Stat.Failures != 0 {
		t.Fatalf("unexpected failures: %+v", h.Stat)
	}
}

func TestDumpMatchesWrites(t *testing.T) {
	h, kv := boot(t, Config{}, recovery.ModeVanilla, recovery.Config{}, 2)
	kv.Load(loadKeys(100), 16)
	_ = h
	dump := kv.Dump()
	if len(dump) != 100 {
		t.Fatalf("dump has %d keys", len(dump))
	}
	want := string(workload.Value("user0000000007", 1, 16))
	if dump["user0000000007"] != want {
		t.Fatalf("dump value mismatch: %q vs %q", dump["user0000000007"], want)
	}
}

func TestRDBRoundTrip(t *testing.T) {
	h, kv := boot(t, Config{}, recovery.ModeBuiltin, recovery.Config{CheckpointInterval: time.Hour}, 3)
	kv.Load(loadKeys(500), 32)
	before := kv.Dump()
	kv.Checkpoint()
	if kv.Stats().RDBSaves != 1 {
		t.Fatal("checkpoint did not save")
	}
	// Simulate crash: plain restart reloads from RDB.
	np, err := h.Runtime().Fallback("test")
	if err != nil {
		t.Fatal(err)
	}
	rt2 := core.Init(np, nil)
	if err := kv.Main(rt2); err != nil {
		t.Fatal(err)
	}
	after := kv.Dump()
	if len(after) != len(before) {
		t.Fatalf("reloaded %d keys, want %d", len(after), len(before))
	}
	for k, v := range before {
		if after[k] != v {
			t.Fatalf("key %s mismatch after reload", k)
		}
	}
}

func phoenixCfg() recovery.Config {
	return recovery.Config{Mode: recovery.ModePhoenix, UnsafeRegions: true, WatchdogTimeout: 2 * time.Second}
}

func runBugScenario(t *testing.T, bug string) (*recovery.Harness, *KV) {
	t.Helper()
	h, kv := boot(t, Config{}, recovery.ModePhoenix, phoenixCfg(), 7)
	kv.Load(loadKeys(2000), 64)
	if err := h.RunRequests(2000); err != nil {
		t.Fatal(err)
	}
	kv.ArmBug(bug)
	if err := h.RunRequests(3000); err != nil {
		t.Fatal(err)
	}
	return h, kv
}

func TestPhoenixRecoveryHang(t *testing.T) {
	h, kv := runBugScenario(t, "R4")
	if h.Stat.Failures != 1 || h.Stat.PhoenixRestarts != 1 {
		t.Fatalf("stats: %+v", h.Stat)
	}
	// Data survived: hit rate stays high after recovery.
	st := kv.Stats()
	if float64(st.Hits)/float64(st.Gets) < 0.9 {
		t.Fatalf("post-recovery hit rate too low: %d/%d", st.Hits, st.Gets)
	}
	// Downtime includes the watchdog dwell but recovery itself is fast.
	sum := h.TL.Summarize()
	if sum.Downtime < 2*time.Second || sum.Downtime > 3*time.Second {
		t.Fatalf("downtime %v, want watchdog (2s) + fast restart", sum.Downtime)
	}
}

func TestPhoenixRecoveryNullptr(t *testing.T) {
	h, _ := runBugScenario(t, "R3")
	if h.Stat.PhoenixRestarts != 1 || h.Stat.UnsafeFallbacks != 0 {
		t.Fatalf("stats: %+v", h.Stat)
	}
	sum := h.TL.Summarize()
	// No hang: downtime is the phoenix restart plus reduced boot, well
	// under the fresh boot cost.
	if sum.Downtime > 200*time.Millisecond {
		t.Fatalf("phoenix downtime %v too high", sum.Downtime)
	}
}

func TestPhoenixFallbackInUnsafeRegion(t *testing.T) {
	h, kv := runBugScenario(t, "R2")
	if h.Stat.UnsafeFallbacks != 1 {
		t.Fatalf("R2 should fall back via unsafe region: %+v", h.Stat)
	}
	if h.Stat.PhoenixRestarts != 0 {
		t.Fatalf("R2 must not phoenix-restart: %+v", h.Stat)
	}
	// Fallback rebuilds from scratch (no persistence in this config):
	// the store still serves, with data lost.
	if kv.Len() == 0 {
		t.Fatal("store empty — inserts after recovery should repopulate")
	}
}

func TestPhoenixOOM(t *testing.T) {
	h, _ := runBugScenario(t, "R1")
	if h.Stat.Failures != 1 {
		t.Fatalf("stats: %+v", h.Stat)
	}
	if h.Stat.PhoenixRestarts+h.Stat.UnsafeFallbacks != 1 {
		t.Fatalf("no recovery recorded: %+v", h.Stat)
	}
}

func TestModesPreserveOrLoseData(t *testing.T) {
	for _, tc := range []struct {
		mode     recovery.Mode
		interval time.Duration
		keepData bool
	}{
		{recovery.ModeVanilla, 0, false},
		{recovery.ModeBuiltin, 10 * time.Millisecond, true},
		{recovery.ModeCRIU, 10 * time.Millisecond, true},
		{recovery.ModePhoenix, 0, true},
	} {
		t.Run(tc.mode.String(), func(t *testing.T) {
			rcfg := recovery.Config{
				Mode: tc.mode, UnsafeRegions: tc.mode == recovery.ModePhoenix,
				CheckpointInterval: tc.interval, WatchdogTimeout: time.Second,
			}
			h, kv := boot(t, Config{}, tc.mode, rcfg, 11)
			kv.Load(loadKeys(2000), 64)
			if err := h.RunRequests(4000); err != nil {
				t.Fatal(err)
			}
			kv.ArmBug("R3")
			if err := h.RunRequests(4000); err != nil {
				t.Fatal(err)
			}
			if h.Stat.Failures != 1 {
				t.Fatalf("failures = %d", h.Stat.Failures)
			}
			st := kv.Stats()
			hitRate := float64(st.Hits) / float64(st.Gets)
			if tc.keepData && hitRate < 0.85 {
				t.Fatalf("%s lost data: hit rate %.2f", tc.mode, hitRate)
			}
			if !tc.keepData && hitRate > 0.8 {
				t.Fatalf("%s should have lost data: hit rate %.2f", tc.mode, hitRate)
			}
		})
	}
}

func TestPhoenixDowntimeBeatsBuiltin(t *testing.T) {
	downtime := map[recovery.Mode]time.Duration{}
	for _, mode := range []recovery.Mode{recovery.ModeBuiltin, recovery.ModePhoenix} {
		rcfg := recovery.Config{
			Mode: mode, UnsafeRegions: mode == recovery.ModePhoenix,
			CheckpointInterval: 5 * time.Second, WatchdogTimeout: time.Second,
		}
		h, kv := boot(t, Config{}, mode, rcfg, 13)
		kv.Load(loadKeys(20000), 128)
		if err := h.RunRequests(20000); err != nil {
			t.Fatal(err)
		}
		kv.ArmBug("R3")
		if err := h.RunRequests(20000); err != nil {
			t.Fatal(err)
		}
		downtime[mode] = h.TL.Summarize().Downtime
	}
	if downtime[recovery.ModePhoenix]*5 > downtime[recovery.ModeBuiltin] {
		t.Fatalf("phoenix %v not clearly faster than builtin %v",
			downtime[recovery.ModePhoenix], downtime[recovery.ModeBuiltin])
	}
}

func TestCrossCheckPassesOnCleanRecovery(t *testing.T) {
	rcfg := recovery.Config{
		Mode: recovery.ModePhoenix, UnsafeRegions: true, CrossCheck: true,
		CheckpointInterval: 20 * time.Millisecond, WatchdogTimeout: time.Second,
	}
	h, kv := boot(t, Config{RedoLog: true}, recovery.ModePhoenix, rcfg, 17)
	kv.Load(loadKeys(2000), 64)
	if err := h.RunRequests(5000); err != nil {
		t.Fatal(err)
	}
	kv.ArmBug("R3")
	if err := h.RunRequests(5000); err != nil {
		t.Fatal(err)
	}
	// Let the background validation complete on the simulated timeline.
	h.M.Clock.Advance(5 * time.Second)
	v := h.CrossCheckResult()
	if v == nil {
		t.Fatal("cross-check never completed")
	}
	if !v.Match {
		t.Fatalf("cross-check diverged on clean recovery: %v", v.Diverged)
	}
	if h.Stat.CrossFallbacks != 0 {
		t.Fatalf("unexpected hot switch: %+v", h.Stat)
	}
}

func TestCrossCheckCatchesCorruption(t *testing.T) {
	// Inject a silent corruption (missing store) after the last checkpoint
	// so the preserved state diverges from checkpoint+redo replay; the
	// cross-check must detect it and hot-switch to the validated state.
	m := kernel.NewMachine(19)
	inj := faultinject.New()
	kv := New(Config{RedoLog: true}, inj)
	rcfg := recovery.Config{
		Mode: recovery.ModePhoenix, UnsafeRegions: false, CrossCheck: true,
		// One checkpoint cadence long enough that nothing checkpoints
		// between the fault firing and the crash.
		CheckpointInterval: time.Hour, WatchdogTimeout: time.Second,
	}
	gen := workload.NewFillSeq(32) // every request is a logged insert
	h := recovery.NewHarness(m, rcfg, kv, gen, inj)
	if err := h.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := h.RunRequests(1000); err != nil {
		t.Fatal(err)
	}
	// Lost update: the dict link is skipped once while the redo log still
	// records the write.
	inj.Arm("kv.set.link", faultinject.MissingStore)
	inj.Enable()
	if err := h.RunRequests(100); err != nil {
		t.Fatal(err)
	}
	if !inj.Fired("kv.set.link") {
		t.Fatal("fault did not fire")
	}
	kv.ArmBug("R3")
	if err := h.RunRequests(100); err != nil {
		t.Fatal(err)
	}
	if h.Stat.PhoenixRestarts != 1 {
		t.Fatalf("stats: %+v", h.Stat)
	}
	// Deliver the verdict, then take a step so the driver processes the
	// pending hot-switch.
	h.M.Clock.Advance(10 * time.Second)
	if err := h.RunRequests(10); err != nil {
		t.Fatal(err)
	}
	if h.Stat.CrossFallbacks != 1 {
		t.Fatalf("cross-check did not hot-switch: %+v", h.Stat)
	}
	// The hot-switched state is the validated S_r: the lost update is back.
	if v := h.CrossCheckResult(); v == nil || v.Match {
		t.Fatal("verdict should be a mismatch")
	}
	dump := kv.Dump()
	if len(dump) < 1100 {
		t.Fatalf("restored reference missing keys: %d", len(dump))
	}
}

func TestSecondFailureFallsBack(t *testing.T) {
	h, kv := boot(t, Config{}, recovery.ModePhoenix, phoenixCfg(), 23)
	kv.Load(loadKeys(1000), 32)
	if err := h.RunRequests(1000); err != nil {
		t.Fatal(err)
	}
	kv.ArmBug("R3")
	if err := h.RunRequests(10); err != nil {
		t.Fatal(err)
	}
	// Second failure immediately after the PHOENIX restart.
	kv.ArmBug("R3")
	if err := h.RunRequests(10); err != nil {
		t.Fatal(err)
	}
	if h.Stat.PhoenixRestarts != 1 || h.Stat.GraceFallbacks != 1 {
		t.Fatalf("second-failure rule not applied: %+v", h.Stat)
	}
}

func TestInjectionSitesRegistered(t *testing.T) {
	inj := faultinject.New()
	New(Config{}, inj)
	if len(inj.Sites()) < 10 {
		t.Fatalf("only %d sites registered", len(inj.Sites()))
	}
	mod := 0
	for _, s := range inj.Sites() {
		if s.Modifying {
			mod++
		}
	}
	if mod == 0 {
		t.Fatal("no modifying-phase sites")
	}
}

func TestInjectedMissingStoreSilentlyCorrupts(t *testing.T) {
	m := kernel.NewMachine(29)
	inj := faultinject.New()
	kv := New(Config{}, inj)
	gen := workload.NewFillSeq(32)
	h := recovery.NewHarness(m, recovery.Config{Mode: recovery.ModeVanilla}, kv, gen, inj)
	if err := h.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := h.RunRequests(100); err != nil {
		t.Fatal(err)
	}
	inj.Arm("kv.set.link", faultinject.MissingStore)
	inj.Enable()
	if err := h.RunRequests(100); err != nil {
		t.Fatal(err)
	}
	// Exactly one insert was dropped: 199 keys present.
	if kv.Len() != 199 {
		t.Fatalf("len = %d, want 199 (one lost update)", kv.Len())
	}
	if h.Stat.Failures != 0 {
		t.Fatal("silent corruption should not crash")
	}
}
