// Package kvstore is the repository's Redis analogue: a single-threaded
// in-memory key-value server whose dictionary lives in simulated memory.
//
// Preserved state (Table 3): the in-memory KV hash table (plus the
// cross-check redo log). Builtin persistence: RDB-style full snapshots on a
// timer; recovery loads the latest snapshot, losing updates since the save —
// the failure mode of §2.1/Figure 1.
//
// Unsafe regions for the "kv" component bracket the dictionary mutation in
// SET/DEL handlers — the hash-table insertion is "the only unsafe region for
// a SET user request in Redis" (§3.5); the instrumentation placement is
// derived by the static analyzer from the IR model in analyzer_model.pir
// (see internal/analysis).
package kvstore

import (
	"encoding/binary"
	"fmt"
	"time"

	"phoenix/internal/core"
	"phoenix/internal/faultinject"
	"phoenix/internal/heap"
	"phoenix/internal/kernel"
	"phoenix/internal/linker"
	"phoenix/internal/mem"
	"phoenix/internal/simds"
	"phoenix/internal/workload"
)

// Config parameterises the store.
type Config struct {
	// MaxMemory caps the simulated heap (0 = unlimited). Exceeding it is an
	// OOM crash, as in Redis without maxmemory-policy.
	MaxMemory int64
	// BootCost is the fixed fresh-start initialisation time (config parse,
	// socket setup, worker spawn).
	BootCost time.Duration
	// PhoenixBootCost is the reduced reinitialisation time of a
	// PHOENIX-mode restart (only non-preserved components are rebuilt).
	PhoenixBootCost time.Duration
	// RedoLog maintains the in-memory redo log needed by cross-check
	// validation.
	RedoLog bool
	// Cleanup runs the mark-and-sweep pass during PHOENIX recovery.
	Cleanup bool
}

func (c *Config) fill() {
	if c.BootCost == 0 {
		c.BootCost = 300 * time.Millisecond
	}
	if c.PhoenixBootCost == 0 {
		c.PhoenixBootCost = 30 * time.Millisecond
	}
}

// rdbFile is the snapshot file name.
const rdbFile = "dump.rdb"

// Info-block layout: [0] dict root, [8] redo-log root, [16] magic,
// [24] expires-dict root.
const (
	infoSize  = 32
	infoMagic = 0x7265646973 // "redis"
)

// KV is the store. The value survives simulated restarts; Main rebinds it to
// each process incarnation.
type KV struct {
	cfg Config
	img *linker.Image
	inj *faultinject.Injector

	// Per-incarnation state.
	rt          *core.Runtime
	ctx         *simds.Ctx
	dict        *simds.Dict
	expires     *simds.Dict
	redo        *core.RedoLog
	info        mem.VAddr
	persistence bool

	// reqSinceCron counts requests since the last active expire cycle.
	reqSinceCron int

	// armedBug fires a scripted real-bug scenario on the next request.
	armedBug string
	// inflight is the key of the request being processed (lost work the
	// validation tolerates).
	inflight string

	stats Stats
}

// Stats counts store activity.
type Stats struct {
	Gets, Hits, Sets, Dels uint64
	Expired                uint64
	RDBSaves, RDBLoads     uint64
}

// New creates the store program.
func New(cfg Config, inj *faultinject.Injector) *KV {
	cfg.fill()
	b := linker.NewBuilder("kvstore", 0x0010_0000)
	b.Var("kv.config", 64, linker.SecData)
	kv := &KV{cfg: cfg, img: b.Build(), inj: inj}
	if inj != nil {
		inj.RegisterAll(Sites())
	}
	return kv
}

// Sites returns the injection sites compiled into the request path.
// Modifying-phase sites sit inside the kv unsafe region; read-phase sites do
// not.
func Sites() []faultinject.Site {
	return []faultinject.Site{
		{ID: "kv.get.probe", Func: "lookupKey", Kind: faultinject.KindCond},
		{ID: "kv.get.copy", Func: "lookupKey", Kind: faultinject.KindValue},
		{ID: "kv.get.scan", Func: "lookupKey", Kind: faultinject.KindCond},
		{ID: "kv.set.vallen", Func: "setGenericCommand", Kind: faultinject.KindValue, Modifying: true},
		{ID: "kv.set.store", Func: "dictSetVal", Kind: faultinject.KindAction, Modifying: true},
		{ID: "kv.set.link", Func: "dictAdd", Kind: faultinject.KindAction, Modifying: true},
		{ID: "kv.set.freeold", Func: "setGenericCommand", Kind: faultinject.KindAction, Modifying: true},
		{ID: "kv.set.resize", Func: "dictExpand", Kind: faultinject.KindCond, Modifying: true},
		{ID: "kv.del.unlink", Func: "dictDelete", Kind: faultinject.KindAction, Modifying: true},
		{ID: "kv.del.found", Func: "dictDelete", Kind: faultinject.KindCond, Modifying: true},
		{ID: "kv.req.dispatch", Func: "processCommand", Kind: faultinject.KindCond},
		{ID: "kv.req.arity", Func: "processCommand", Kind: faultinject.KindValue},
		{ID: "kv.redo.append", Func: "feedAppendOnlyFile", Kind: faultinject.KindAction, Modifying: true},
		{ID: "kv.expire.scan", Func: "activeExpireCycle", Kind: faultinject.KindCond},
	}
}

// Name implements recovery.App.
func (kv *KV) Name() string { return "kvstore" }

// Image implements recovery.App.
func (kv *KV) Image() *linker.Image { return kv.img }

// SetPersistence implements recovery.App.
func (kv *KV) SetPersistence(on bool) { kv.persistence = on }

// Stats returns activity counters.
func (kv *KV) Stats() Stats { return kv.stats }

// Runtime returns the live runtime (for tests and experiments).
func (kv *KV) Runtime() *core.Runtime { return kv.rt }

// Ctx exposes the data-structure context (tests).
func (kv *KV) Ctx() *simds.Ctx { return kv.ctx }

// Main implements recovery.App: Figure 2's integration, in Go.
func (kv *KV) Main(rt *core.Runtime) error {
	kv.rt = rt
	m := rt.Proc().Machine
	h, err := rt.OpenHeap(heap.Options{MaxBytes: kv.cfg.MaxMemory, Name: "kv"})
	if err != nil {
		return fmt.Errorf("kvstore: open heap: %w", err)
	}
	kv.ctx = simds.NewCtx(h, m.Clock, m.Model)

	if rt.IsRecoveryMode() {
		// PHOENIX path: adopt the preserved dictionary by pointer.
		m.Clock.Advance(kv.cfg.PhoenixBootCost)
		info := rt.RecoveryInfo()
		if info == mem.NullPtr || rt.Proc().AS.ReadU64(info+16) != infoMagic {
			return fmt.Errorf("kvstore: recovery info invalid")
		}
		kv.info = info
		kv.dict = simds.OpenDict(kv.ctx, rt.Proc().AS.ReadPtr(info))
		kv.openExpires(true, rt.Proc().AS.ReadPtr(info+24))
		if redoRoot := rt.Proc().AS.ReadPtr(info + 8); redoRoot != mem.NullPtr {
			kv.redo = core.OpenRedoLog(kv.ctx, redoRoot)
		}
		// Cheap integrity gate, as a real server would do: header sanity
		// only. Deep corruption that slipped past the unsafe-region check
		// surfaces later on access (and is what cross-check validation is
		// for).
		if !kv.dict.ValidateHeader() {
			return fmt.Errorf("kvstore: preserved dictionary failed validation")
		}
		if kv.cfg.Cleanup {
			kv.dict.Mark(func(val uint64) { h.Mark(mem.VAddr(val)) })
			kv.markExpires()
			if kv.redo != nil {
				kv.redo.Mark()
			}
			h.Mark(kv.info)
			rt.FinishRecovery(true)
		} else {
			rt.FinishRecovery(false)
		}
		return nil
	}

	// Fresh start (vanilla, builtin, or fallback): full initialisation.
	m.Clock.Advance(kv.cfg.BootCost)
	kv.dict = simds.NewDict(kv.ctx, 1024)
	kv.openExpires(false, mem.NullPtr)
	kv.redo = nil
	if kv.cfg.RedoLog {
		kv.redo = core.NewRedoLog(kv.ctx)
	}
	kv.info = kv.ctx.Heap.Alloc(infoSize)
	if kv.info == mem.NullPtr {
		return fmt.Errorf("kvstore: info block allocation failed")
	}
	kv.writeInfo()

	if kv.persistence {
		kv.loadRDB()
	}
	rt.FinishRecovery(false)
	return nil
}

func (kv *KV) writeInfo() {
	as := kv.rt.Proc().AS
	as.WritePtr(kv.info, kv.dict.Addr())
	if kv.redo != nil {
		as.WritePtr(kv.info+8, kv.redo.Addr())
	} else {
		as.WritePtr(kv.info+8, mem.NullPtr)
	}
	as.WriteU64(kv.info+16, infoMagic)
	as.WritePtr(kv.info+24, kv.expires.Addr())
}

// Load seeds the store with the initial dataset (the YCSB load phase).
func (kv *KV) Load(keys []string, valueSize int) {
	for _, k := range keys {
		kv.setKey(k, workload.Value(k, 1, valueSize), false)
	}
}

// Handle implements recovery.App.
func (kv *KV) Handle(req *workload.Request) (ok, effective bool) {
	m := kv.rt.Proc().Machine
	m.Clock.Advance(m.Model.RequestBase)
	kv.inflight = req.Key
	kv.reqSinceCron++
	if kv.reqSinceCron >= 64 {
		kv.reqSinceCron = 0
		kv.activeExpireCycle(32)
	}
	if kv.armedBug != "" {
		bug := kv.armedBug
		kv.armedBug = ""
		kv.fireBug(bug)
	}
	inj := kv.inj
	// Command dispatch: a perturbed dispatch misroutes the request — the
	// "passing a wrong data type to a read-only function" class.
	if inj != nil && !inj.Cond("kv.req.dispatch", true) {
		// Misdispatch: treat as an unknown command; client gets an error.
		return false, false
	}
	switch req.Op {
	case workload.OpRead:
		return kv.handleGet(req)
	case workload.OpInsert, workload.OpUpdate:
		return kv.handleSet(req)
	case workload.OpDelete:
		return kv.handleDel(req)
	}
	return false, false
}

func (kv *KV) handleGet(req *workload.Request) (bool, bool) {
	kv.stats.Gets++
	inj := kv.inj
	key := req.Key
	if inj != nil {
		// A corrupted arity/length computation reads past the key buffer —
		// temporary-state failure (crash in read path, outside unsafe
		// region).
		if n := inj.Int("kv.req.arity", len(key)); n != len(key) {
			if n < 0 || n > len(key)+16 {
				panic(&kernel.Crash{Sig: kernel.SIGSEGV, Reason: "kv: read past request buffer"})
			}
			if n <= len(key) {
				key = key[:n]
			}
		}
	}
	if kv.expired(key) {
		kv.reapExpired(key)
		return true, false
	}
	valPtr, found := kv.dict.Get([]byte(key))
	if inj != nil {
		found = inj.Cond("kv.get.probe", found)
		if inj != nil && !inj.Cond("kv.get.scan", true) {
			// Inverted scan guard: the lookup loop never terminates.
			panic(&kernel.Crash{Sig: kernel.SIGALRM, Reason: "kv: lookup loop never terminates"})
		}
	}
	if !found {
		return true, false
	}
	// Copy the value out (the reply path).
	addr := mem.VAddr(valPtr)
	if inj != nil {
		addr = mem.VAddr(inj.U64("kv.get.copy", uint64(addr)))
	}
	val := kv.ctx.BlobBytes(addr) // faults if addr was perturbed
	kv.ctx.ChargeBytes(len(val))
	kv.stats.Hits++
	return true, true
}

func (kv *KV) handleSet(req *workload.Request) (bool, bool) {
	kv.stats.Sets++
	kv.setKey(req.Key, req.Value, true)
	if _, hadTTL := kv.expires.Get([]byte(req.Key)); hadTTL {
		kv.rt.UnsafeBegin("kv")
		kv.expires.Delete([]byte(req.Key))
		kv.rt.UnsafeEnd("kv")
	}
	return true, true
}

// setKey performs the dictionary mutation inside the kv unsafe region.
func (kv *KV) setKey(key string, value []byte, log bool) {
	inj := kv.inj
	rt := kv.rt
	if inj != nil {
		value = append([]byte(nil), value...)
		if n := inj.Int("kv.set.vallen", len(value)); n != len(value) && n >= 0 && n < len(value) {
			value = value[:n] // silently truncated payload: corruption
		}
	}
	// Stage the write before entering the unsafe region: the value blob is
	// allocated and filled, and the redo record encoded, while the durable
	// chains are still untouched. A crash during staging leaves the
	// dictionary, expiry table, and redo log exactly consistent — the staged
	// blob is unreferenced garbage the recovery sweep reclaims — so only the
	// chain-linking instants below need the unsafe bracket. This is what
	// makes the whole handler rewind-safe: everything it mutates lives in
	// simulated memory, and nothing durable changes until the publish step.
	newBlob := kv.ctx.NewBlob(value)
	var redoRec []byte
	if log && kv.redo != nil {
		redoRec = encodeRedo('S', key, value)
	}
	// NOTE: no defer — a crash inside the region must leave the counter
	// raised so the restart handler sees the mid-update state, exactly as
	// the C instrumentation behaves (no cleanup runs on SIGSEGV).
	rt.UnsafeBegin("kv")
	doSet := func() {
		old, existed := kv.dict.Set([]byte(key), uint64(newBlob))
		if existed {
			free := func() { kv.ctx.FreeBlob(mem.VAddr(old)) }
			if inj != nil {
				inj.Do("kv.set.freeold", free) // skipped free = leak
			} else {
				free()
			}
		}
	}
	if inj != nil {
		inj.Do("kv.set.link", doSet) // skipped link = lost update + leaked blob
	} else {
		doSet()
	}
	// A fault striking mid-resize leaves a partially rewritten entry: the
	// value pointer dangles and the process dies inside the unsafe region —
	// the partial-update hazard of §2.3 Finding 2.
	if inj != nil && !inj.Cond("kv.set.resize", true) {
		kv.dict.Set([]byte(key), uint64(0xDEAD0000))
		panic(&kernel.Crash{Sig: kernel.SIGSEGV, Reason: "kv: crash during dict resize"})
	}
	if redoRec != nil {
		append_ := func() { kv.redo.Append(redoRec) }
		if inj != nil {
			inj.Do("kv.redo.append", append_)
		} else {
			append_()
		}
	}
	rt.UnsafeEnd("kv")
}

func (kv *KV) handleDel(req *workload.Request) (bool, bool) {
	kv.stats.Dels++
	rt := kv.rt
	inj := kv.inj
	// Stage the redo record before the unsafe region, mirroring setKey: the
	// unsafe bracket covers only the in-place chain surgery.
	var redoRec []byte
	if kv.redo != nil {
		redoRec = encodeRedo('D', req.Key, nil)
	}
	rt.UnsafeBegin("kv")
	old, found := kv.dict.Delete([]byte(req.Key))
	if inj != nil {
		found = inj.Cond("kv.del.found", found)
	}
	if found && old != 0 {
		free := func() { kv.ctx.FreeBlob(mem.VAddr(old)) }
		if inj != nil {
			inj.Do("kv.del.unlink", free)
		} else {
			free()
		}
	}
	kv.expires.Delete([]byte(req.Key))
	if redoRec != nil && found {
		kv.redo.Append(redoRec)
	}
	rt.UnsafeEnd("kv")
	return true, found
}

// Rewindable implements recovery.RewindableApp: every byte a request
// handler mutates — dictionary chains, expiry table, redo log, and the
// allocator metadata under all three — lives in simulated memory, so a
// rewind-domain discard rolls a faulting request back byte-exactly. Writes
// are staged before publication (setKey/handleDel), so even the blast
// radius of a mid-request crash is an unreferenced staged blob, and the
// harness resets the unsafe counters after a successful discard to match
// the restored memory.
func (kv *KV) Rewindable() bool { return true }

// --- builtin persistence (RDB) ---

// Checkpoint implements recovery.App: the RDB save, modelled as Redis's
// BGSAVE — the server forks (a brief copy-on-write pause proportional to
// resident pages) and the child serializes and writes the snapshot off the
// critical path. Only the fork pause stalls request processing, which is
// why builtin persistence costs a few percent while CRIU's stop-the-world
// dump costs tens (Table 8).
func (kv *KV) Checkpoint() {
	if !kv.persistence {
		return
	}
	m := kv.rt.Proc().Machine
	// Fork pause on the main timeline.
	pages := kv.rt.Proc().AS.ResidentPages()
	m.Clock.Advance(time.Duration(pages) * m.Model.ForkPerPage)
	// Child serializes and writes concurrently.
	m.Clock.RunOffline(func() {
		var buf []byte
		var count uint64
		kv.dict.Iterate(func(key []byte, val uint64) bool {
			v := kv.ctx.BlobBytes(mem.VAddr(val))
			buf = appendRecord(buf, key, v)
			count++
			return true
		})
		hdr := make([]byte, 8)
		binary.LittleEndian.PutUint64(hdr, count)
		img := append(hdr, buf...)
		exp := kv.expiresSnapshot()
		var el [4]byte
		binary.LittleEndian.PutUint32(el[:], uint32(len(exp)))
		img = append(img, el[:]...)
		img = append(img, exp...)
		m.Clock.Advance(time.Duration(len(img)) * m.Model.MarshalPerByte)
		m.Disk.WriteFile(rdbFile, img)
	})
	if kv.redo != nil {
		kv.redo.Truncate()
	}
	kv.stats.RDBSaves++
}

// loadRDB is the builtin recovery path: read the snapshot, unmarshal, and
// rebuild the dictionary — the expensive reconstruction of §2.1.
func (kv *KV) loadRDB() {
	m := kv.rt.Proc().Machine
	img, ok := m.Disk.ReadFile(rdbFile)
	if !ok {
		return
	}
	recs, rest, err := DecodeRDBFull(img)
	if err != nil {
		panic(&kernel.Crash{Sig: kernel.SIGABRT, Reason: "kv: corrupt RDB: " + err.Error()})
	}
	m.Clock.Advance(time.Duration(len(img)) * m.Model.UnmarshalPerByte)
	m.Clock.Advance(time.Duration(len(recs)) * m.Model.UnmarshalPerObject)
	for _, r := range recs {
		kv.setKey(r.Key, r.Val, false)
	}
	if len(rest) >= 4 {
		n := binary.LittleEndian.Uint32(rest)
		if uint32(len(rest)-4) >= n {
			kv.loadExpires(rest[4 : 4+n])
		}
	}
	kv.stats.RDBLoads++
}

// Record is one RDB entry.
type Record struct {
	Key string
	Val []byte
}

func appendRecord(buf []byte, key, val []byte) []byte {
	var lk [4]byte
	binary.LittleEndian.PutUint32(lk[:], uint32(len(key)))
	buf = append(buf, lk[:]...)
	buf = append(buf, key...)
	binary.LittleEndian.PutUint32(lk[:], uint32(len(val)))
	buf = append(buf, lk[:]...)
	return append(buf, val...)
}

// DecodeRDB parses a snapshot image's key-value records.
func DecodeRDB(img []byte) ([]Record, error) {
	recs, _, err := DecodeRDBFull(img)
	return recs, err
}

// DecodeRDBFull parses a snapshot image and also returns the trailing
// sections (the expiry table).
func DecodeRDBFull(img []byte) ([]Record, []byte, error) {
	if len(img) < 8 {
		return nil, nil, fmt.Errorf("short header")
	}
	count := binary.LittleEndian.Uint64(img)
	img = img[8:]
	recs := make([]Record, 0, count)
	for i := uint64(0); i < count; i++ {
		var key, val []byte
		var err error
		key, img, err = takeField(img)
		if err != nil {
			return nil, nil, err
		}
		val, img, err = takeField(img)
		if err != nil {
			return nil, nil, err
		}
		recs = append(recs, Record{Key: string(key), Val: val})
	}
	return recs, img, nil
}

func takeField(img []byte) ([]byte, []byte, error) {
	if len(img) < 4 {
		return nil, nil, fmt.Errorf("truncated field length")
	}
	n := binary.LittleEndian.Uint32(img)
	img = img[4:]
	if uint32(len(img)) < n {
		return nil, nil, fmt.Errorf("truncated field body")
	}
	return img[:n], img[n:], nil
}

func encodeRedo(op byte, key string, val []byte) []byte {
	out := []byte{op}
	var lk [4]byte
	binary.LittleEndian.PutUint32(lk[:], uint32(len(key)))
	out = append(out, lk[:]...)
	out = append(out, key...)
	return append(out, val...)
}

func decodeRedo(rec []byte) (op byte, key string, val []byte, err error) {
	if len(rec) < 5 {
		return 0, "", nil, fmt.Errorf("short redo record")
	}
	op = rec[0]
	n := binary.LittleEndian.Uint32(rec[1:5])
	if uint32(len(rec)-5) < n {
		return 0, "", nil, fmt.Errorf("truncated redo key")
	}
	return op, string(rec[5 : 5+n]), rec[5+n:], nil
}

// --- PHOENIX integration ---

// PlanRestart implements recovery.App: the restart handler of Figure 2.
func (kv *KV) PlanRestart(rt *core.Runtime, ci *kernel.CrashInfo, useUnsafe bool) (core.RestartPlan, string) {
	if useUnsafe && !rt.IsSafe("kv") {
		return core.RestartPlan{}, "unsafe region: kv"
	}
	// The handler collects the preservation roots into the info block (it
	// is refreshed here in case roots moved since boot).
	kv.writeInfo()
	return core.RestartPlan{InfoAddr: kv.info, WithHeap: true}, ""
}

// Reattach implements recovery.App (CRIU restore: addresses unchanged).
func (kv *KV) Reattach(rt *core.Runtime) {
	kv.rt = rt
	proc := rt.Proc()
	m := proc.Machine
	h, err := heap.Attach(proc.AS, core.DefaultHeapBase, heap.Options{MaxBytes: kv.cfg.MaxMemory, Name: "kv"})
	if err != nil {
		panic(&kernel.Crash{Sig: kernel.SIGABRT, Reason: "kv: criu reattach: " + err.Error()})
	}
	kv.ctx = simds.NewCtx(h, m.Clock, m.Model)
	kv.dict = simds.OpenDict(kv.ctx, proc.AS.ReadPtr(kv.info))
	kv.openExpires(true, proc.AS.ReadPtr(kv.info+24))
	if kv.redo != nil {
		kv.redo = core.OpenRedoLog(kv.ctx, proc.AS.ReadPtr(kv.info+8))
	}
}

// Dump implements recovery.App: the end-to-end dataset dump used for
// injection validation ("request all keys that should be present", §4.4).
func (kv *KV) Dump() core.StateDump {
	out := core.StateDump{}
	kv.dict.Iterate(func(key []byte, val uint64) bool {
		out[string(key)] = string(kv.ctx.BlobBytes(mem.VAddr(val)))
		return true
	})
	return out
}

// CrossCheck implements recovery.App (§3.6): the reference state is the RDB
// snapshot replayed forward with the in-memory redo log.
func (kv *KV) CrossCheck(rt *core.Runtime) (core.CrossCheckSpec, bool) {
	if kv.redo == nil || !kv.persistence {
		return core.CrossCheckSpec{}, false
	}
	m := rt.Proc().Machine
	info := kv.info
	cfg := kv.cfg
	spec := core.CrossCheckSpec{
		SnapshotDump: func(snap *mem.AddressSpace) core.StateDump {
			h, err := heap.Attach(snap, core.DefaultHeapBase, heap.Options{Name: "kv"})
			if err != nil {
				return core.StateDump{"<snapshot>": "unattachable: " + err.Error()}
			}
			c := simds.NewCtx(h, nil, m.Model)
			d := simds.OpenDict(c, snap.ReadPtr(info))
			out := core.StateDump{}
			func() {
				defer func() {
					if recover() != nil {
						out["<snapshot>"] = "corrupt"
					}
				}()
				d.Iterate(func(key []byte, val uint64) bool {
					out[string(key)] = string(c.BlobBytes(mem.VAddr(val)))
					return true
				})
			}()
			return out
		},
		ReferenceRecover: func() (core.StateDump, time.Duration) {
			ref := core.StateDump{}
			dur := m.Clock.RunOffline(func() {
				img, ok := m.Disk.ReadFile(rdbFile)
				if ok {
					if recs, err := DecodeRDB(img); err == nil {
						m.Clock.Advance(time.Duration(len(img)) * m.Model.UnmarshalPerByte)
						m.Clock.Advance(time.Duration(len(recs)) * m.Model.UnmarshalPerObject)
						for _, r := range recs {
							ref[r.Key] = string(r.Val)
						}
					}
				}
				// Replay the preserved in-memory redo log on top.
				if kv.redo != nil {
					kv.redo.Replay(func(rec []byte) bool {
						m.Clock.Advance(m.Model.LogReplayPerRecord)
						op, key, val, err := decodeRedo(rec)
						if err != nil {
							return true
						}
						switch op {
						case 'S':
							ref[key] = string(val)
						case 'D':
							delete(ref, key)
						}
						return true
					})
				}
				m.Clock.Advance(cfg.BootCost)
			})
			return ref, dur
		},
		InFlightKeys: map[string]bool{kv.inflight: true},
	}
	return spec, true
}

// RestoreReference implements recovery.ReferenceRestorer: after a
// cross-check mismatch the system hot-switches to the background process,
// whose state is the validated S_r. We rebuild the store from that dump.
func (kv *KV) RestoreReference(rt *core.Runtime, ref core.StateDump) error {
	if err := kv.Main(rt); err != nil {
		return err
	}
	for k, v := range ref {
		kv.setKey(k, []byte(v), false)
	}
	return nil
}

// --- real-bug scenarios (Table 5, R1–R4) ---

// ArmBug schedules a scripted bug to fire on the next request. Valid names:
// R1 (OOM via integer overflow), R2 (unsanitized memory overwrite inside the
// unsafe region), R3 (null-pointer dereference on temporary state), R4
// (infinite loop / hang).
func (kv *KV) ArmBug(name string) { kv.armedBug = name }

func (kv *KV) fireBug(name string) {
	switch name {
	case "R1":
		// Integer overflow in a size computation requests an absurd
		// allocation; the allocator reports OOM (Redis #761 class). Even on
		// an uncapped heap the subsequent buffer fill exhausts memory, so
		// the failure always manifests as an abort on temporary state.
		n := int(uint32(1<<31 - 16))
		p := kv.ctx.Heap.Alloc(n)
		if p != mem.NullPtr {
			kv.ctx.Heap.Free(p)
		}
		panic(&kernel.Crash{Sig: kernel.SIGABRT, Reason: "kv: OOM allocating oversized buffer (int overflow)"})
	case "R2":
		// Unsanitized offset overwrites dictionary memory mid-update: the
		// crash lands inside the kv unsafe region, so PHOENIX must fall
		// back (Redis #7445 class; the one fallback case in §4.3.2).
		kv.rt.UnsafeBegin("kv")
		// Corrupt the dict header's bucket pointer with a wild value.
		kv.rt.Proc().AS.WriteU64(kv.dict.Addr()+16, 0xDEAD0000)
		panic(&kernel.Crash{Sig: kernel.SIGSEGV, Reason: "kv: unsanitized write past buffer"})
	case "R3":
		// Null pointer dereference on a request-scoped object (Redis
		// #10070 class): temporary state only.
		kv.rt.Proc().AS.ReadU64(mem.NullPtr + 8)
	case "R4":
		// Infinite loop on one request (Redis #12290): the watchdog ends
		// it (Figure 1/12).
		panic(&kernel.Crash{Sig: kernel.SIGALRM, Reason: "kv: infinite loop in stream handler"})
	default:
		panic(fmt.Sprintf("kvstore: unknown bug %q", name))
	}
}

// Len returns the number of live keys.
func (kv *KV) Len() uint64 { return kv.dict.Len() }
