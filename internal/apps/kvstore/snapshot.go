package kvstore

import (
	"time"

	"phoenix/internal/mem"
	"phoenix/internal/simds"
	"phoenix/internal/workload"
)

// OpenSnapshotReader implements recovery.SnapshotServer: GETs served off a
// frozen MVCC view of the preserved dictionary. The closure is built on the
// writer thread (it reads the live clock and info block) and is then safe to
// call from any number of reader goroutines concurrently with the writer:
// every byte it touches lives in the immutable view, and it mutates nothing —
// no stats, no lazy expiry reap, no injection. Expiry is judged against the
// clock frozen at commit time, so a key alive in the snapshot stays alive for
// every reader of that version (snapshot isolation, not read-your-latest).
func (kv *KV) OpenSnapshotReader(view *mem.AddressSpace) func(req *workload.Request) (ok, effective bool) {
	m := kv.rt.Proc().Machine
	c := simds.SnapshotCtx(view, m.Model)
	dict := simds.OpenDict(c, view.ReadPtr(kv.info))
	expires := simds.OpenDict(c, view.ReadPtr(kv.info+24))
	now := m.Clock.Now()
	return func(req *workload.Request) (ok, effective bool) {
		if req.Op != workload.OpRead {
			return false, false
		}
		key := []byte(req.Key)
		if dl, hasTTL := expires.Get(key); hasTTL && time.Duration(dl) <= now {
			return true, false
		}
		valPtr, found := dict.Get(key)
		if !found {
			return true, false
		}
		// The reply path copies the value out of the frozen pages.
		_ = c.BlobBytes(mem.VAddr(valPtr))
		return true, true
	}
}
