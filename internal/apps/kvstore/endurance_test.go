package kvstore

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"phoenix/internal/kernel"
	"phoenix/internal/recovery"
	"phoenix/internal/workload"
)

// TestEnduranceManyFailures drives the store through a long run with a
// failure every few thousand requests, cycling through the bug catalogue,
// and validates the end-to-end dataset exactly: every present key must
// carry its ground-truth value, and at most one insert (the in-flight
// request) may be missing per failure.
func TestEnduranceManyFailures(t *testing.T) {
	h, kv := boot(t, Config{}, recovery.ModePhoenix, phoenixCfg(), 99)
	bugs := []string{"R3", "R1", "R4", "R3", "R1"}
	const perPhase = 2000
	totalInserts := 0
	for phase := 0; phase < len(bugs)+1; phase++ {
		for i := 0; i < perPhase; i++ {
			key := fmt.Sprintf("end-%06d", totalInserts)
			ok, _ := kv.Handle(&workload.Request{Op: workload.OpInsert, Key: key, Value: workload.Value(key, 1, 32)})
			_ = ok
			totalInserts++
		}
		if phase < len(bugs) {
			kv.ArmBug(bugs[phase])
			// Drive through the failure via the harness (recovery included).
			if err := h.RunRequests(1); err != nil {
				t.Fatal(err)
			}
			// Leave the grace window so each failure gets a fresh PHOENIX
			// attempt.
			h.M.Clock.Advance(15 * time.Second)
		}
	}
	if h.Stat.Failures != len(bugs) {
		t.Fatalf("failures = %d, want %d", h.Stat.Failures, len(bugs))
	}
	if h.Stat.PhoenixRestarts != len(bugs) {
		t.Fatalf("phoenix restarts = %d (stats %+v)", h.Stat.PhoenixRestarts, h.Stat)
	}

	dump := kv.Dump()
	present, corrupt := 0, 0
	for i := 0; i < totalInserts; i++ {
		key := fmt.Sprintf("end-%06d", i)
		v, ok := dump[key]
		if !ok {
			continue
		}
		present++
		if v != string(workload.Value(key, 1, 32)) {
			corrupt++
		}
	}
	if corrupt != 0 {
		t.Fatalf("%d corrupted values after %d failures", corrupt, len(bugs))
	}
	// Each failure may lose only work in flight at the crash.
	if totalInserts-present > len(bugs)*2 {
		t.Fatalf("lost %d inserts across %d failures", totalInserts-present, len(bugs))
	}
	// The store is still fully serviceable.
	if err := h.RunRequests(1000); err != nil {
		t.Fatal(err)
	}
	if h.Stat.Failures != len(bugs) {
		t.Fatal("spurious failure after endurance run")
	}
}

// TestEnduranceAlternatingMechanisms checks a PHOENIX deployment that also
// checkpoints: phoenix restarts and unsafe-region fallbacks interleave, and
// the RDB keeps fallbacks from losing everything.
func TestEnduranceAlternatingMechanisms(t *testing.T) {
	cfg := recovery.Config{
		Mode: recovery.ModePhoenix, UnsafeRegions: true,
		WatchdogTimeout: time.Second, CheckpointInterval: 50 * time.Millisecond,
	}
	h, kv := boot(t, Config{}, recovery.ModePhoenix, cfg, 101)
	kv.Load(loadKeys(3000), 64)
	for round := 0; round < 4; round++ {
		if err := h.RunRequests(3000); err != nil {
			t.Fatal(err)
		}
		if round%2 == 0 {
			kv.ArmBug("R3") // recoverable
		} else {
			kv.ArmBug("R2") // unsafe-region fallback
		}
		if err := h.RunRequests(10); err != nil {
			t.Fatal(err)
		}
		h.M.Clock.Advance(15 * time.Second)
	}
	if h.Stat.PhoenixRestarts != 2 || h.Stat.UnsafeFallbacks != 2 {
		t.Fatalf("stats %+v", h.Stat)
	}
	// After fallbacks the RDB restores the bulk of the dataset.
	if kv.Len() < 2500 {
		t.Fatalf("dataset shrank to %d", kv.Len())
	}
	// All values exact.
	for k, v := range kv.Dump() {
		if len(k) > 4 && k[:4] == "user" && v != string(workload.Value(k, 1, 64)) {
			// Inserted keys (non-"user") carry other versions; loaded keys
			// must be exact.
			t.Fatalf("key %s corrupted", k)
		}
	}
}

// TestQuickStoreMapEquivalence drives random op streams against the store
// and a shadow Go map, with periodic PHOENIX crashes; the store must match
// the shadow exactly except for the single in-flight request per crash.
func TestQuickStoreMapEquivalence(t *testing.T) {
	f := func(ops []uint16, crashEvery uint8) bool {
		h, kv := bootQuick(t, 77)
		shadow := map[string]string{}
		interval := int(crashEvery)%37 + 13
		for i, op := range ops {
			key := fmt.Sprintf("q%03d", op%97)
			switch op % 3 {
			case 0, 1:
				val := fmt.Sprintf("v%d", op)
				ok, _ := kv.Handle(&workload.Request{Op: workload.OpInsert, Key: key, Value: []byte(val)})
				if !ok {
					return false
				}
				shadow[key] = val
			case 2:
				kv.Handle(&workload.Request{Op: workload.OpDelete, Key: key})
				delete(shadow, key)
			}
			if i%interval == interval-1 {
				kv.ArmBug("R3")
				if err := h.RunRequests(1); err != nil {
					return false
				}
				h.M.Clock.Advance(12 * time.Second) // leave grace window
			}
		}
		dump := kv.Dump()
		if len(dump) != len(shadow) {
			return false
		}
		for k, v := range shadow {
			if dump[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func bootQuick(t *testing.T, seed int64) (*recovery.Harness, *KV) {
	t.Helper()
	m := kernel.NewMachine(seed)
	kv := New(Config{Cleanup: true, BootCost: time.Millisecond, PhoenixBootCost: time.Millisecond}, nil)
	gen := workload.NewFillSeq(16)
	h := recovery.NewHarness(m, recovery.Config{
		Mode: recovery.ModePhoenix, UnsafeRegions: true, WatchdogTimeout: time.Second,
	}, kv, gen, nil)
	if err := h.Boot(); err != nil {
		t.Fatal(err)
	}
	return h, kv
}
