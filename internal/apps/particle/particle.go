// Package particle is the repository's VPIC analogue: a one-dimensional
// electrostatic particle-in-cell simulation whose particles and field grids
// — the preserved state of Table 3 — live in simulated memory.
//
// Each iteration runs three phx_stage stages (§3.7): push (advance particle
// positions/velocities), deposit (accumulate charge density onto the grid),
// and solve (update the electric field). Builtin recovery loads a periodic
// checkpoint of particles and fields and recomputes lost steps; PHOENIX
// resumes inside the crashed step.
package particle

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"phoenix/internal/core"
	"phoenix/internal/faultinject"
	"phoenix/internal/heap"
	"phoenix/internal/kernel"
	"phoenix/internal/linker"
	"phoenix/internal/mem"
	"phoenix/internal/simds"
	"phoenix/internal/workload"
)

// Config parameterises the simulation.
type Config struct {
	Particles int
	Cells     int
	Dt        float64
	// WorkScale multiplies charged compute units (stands in for the 3D
	// field solve and particle sorting the analogue does not model).
	WorkScale       int
	BootCost        time.Duration
	PhoenixBootCost time.Duration
}

func (c *Config) fill() {
	if c.Particles == 0 {
		c.Particles = 4000
	}
	if c.Cells == 0 {
		c.Cells = 128
	}
	if c.Dt == 0 {
		c.Dt = 0.05
	}
	if c.WorkScale == 0 {
		c.WorkScale = 50
	}
	if c.BootCost == 0 {
		c.BootCost = 3 * time.Second // deck parse + particle injection
	}
	if c.PhoenixBootCost == 0 {
		c.PhoenixBootCost = 120 * time.Millisecond
	}
}

const ckptFile = "particle.ckpt"

// Header layout: 0 magic, 8 N, 16 cells, 24 step, 32 pos ptr, 40 vel ptr,
// 48 efield ptr, 56 density ptr, 64 stage vault ptr, 72..95 stage tracker.
const (
	hdrSize    = 96
	hdrMagic   = 0x70696373696d // "picsim"
	offMagic   = 0
	offN       = 8
	offCells   = 16
	offStep    = 24
	offPos     = 32
	offVel     = 40
	offE       = 48
	offRho     = 56
	offVault   = 64
	offTracker = 72
)

// Sim is the program.
type Sim struct {
	cfg Config
	img *linker.Image
	inj *faultinject.Injector

	rt          *core.Runtime
	heap        *heap.Heap
	hdr         mem.VAddr
	stages      *core.Stages
	vault       *core.StageVault
	persistence bool

	highWater uint64
	armedBug  string
	// crashMidStage makes the named stage body panic halfway through (tests
	// of the rollback path).
	crashMidStage string
	stats         Stats
}

// Stats counts simulation activity.
type Stats struct {
	Steps       uint64
	Recomputed  uint64
	Checkpoints uint64
	CkptLoads   uint64
}

// New creates the simulation program.
func New(cfg Config, inj *faultinject.Injector) *Sim {
	cfg.fill()
	b := linker.NewBuilder("particle", 0x0010_0000)
	b.Var("vpic.deck", 64, linker.SecData)
	s := &Sim{cfg: cfg, img: b.Build(), inj: inj}
	if inj != nil {
		inj.RegisterAll(Sites())
	}
	return s
}

// Sites returns the injection sites in the step loop.
func Sites() []faultinject.Site {
	return []faultinject.Site{
		{ID: "pic.push.vel", Func: "advance_p", Kind: faultinject.KindValue, Modifying: true},
		{ID: "pic.push.wrap", Func: "advance_p", Kind: faultinject.KindCond, Modifying: true},
		{ID: "pic.deposit.cell", Func: "accumulate_rho", Kind: faultinject.KindValue, Modifying: true},
		{ID: "pic.deposit.add", Func: "accumulate_rho", Kind: faultinject.KindAction, Modifying: true},
		{ID: "pic.solve.step", Func: "advance_e", Kind: faultinject.KindValue, Modifying: true},
		{ID: "pic.step.bound", Func: "vpic_simulation::advance", Kind: faultinject.KindCond},
	}
}

// Name implements recovery.App.
func (s *Sim) Name() string { return "particle" }

// Image implements recovery.App.
func (s *Sim) Image() *linker.Image { return s.img }

// SetPersistence implements recovery.App.
func (s *Sim) SetPersistence(on bool) { s.persistence = on }

// Stats returns counters.
func (s *Sim) Stats() Stats { return s.stats }

// Step returns the committed step count from simulated memory.
func (s *Sim) Step() uint64 { return s.rt.Proc().AS.ReadU64(s.hdr + offStep) }

func (s *Sim) f64(a mem.VAddr) float64 { return math.Float64frombits(s.rt.Proc().AS.ReadU64(a)) }
func (s *Sim) setF64(a mem.VAddr, v float64) {
	s.rt.Proc().AS.WriteU64(a, math.Float64bits(v))
}

func (s *Sim) charge(units int) {
	m := s.rt.Proc().Machine
	m.Clock.Advance(time.Duration(units*s.cfg.WorkScale) * m.Model.ComputePerUnit)
}

// Main implements recovery.App.
func (s *Sim) Main(rt *core.Runtime) error {
	s.rt = rt
	m := rt.Proc().Machine
	h, err := rt.OpenHeap(heap.Options{Name: "pic"})
	if err != nil {
		return fmt.Errorf("particle: open heap: %w", err)
	}
	s.heap = h
	as := rt.Proc().AS

	if rt.IsRecoveryMode() {
		m.Clock.Advance(s.cfg.PhoenixBootCost)
		hdr := rt.RecoveryInfo()
		if hdr == mem.NullPtr || as.ReadU64(hdr+offMagic) != hdrMagic {
			return fmt.Errorf("particle: recovery info invalid")
		}
		s.hdr = hdr
		ctx := simds.NewCtx(h, m.Clock, m.Model)
		s.vault = core.OpenStageVault(ctx, as.ReadPtr(hdr+offVault))
		s.stages = rt.NewStages(hdr + offTracker)
		rt.FinishRecovery(false) // >90% of memory preserved: skip cleanup (§4.2.2)
		return nil
	}

	m.Clock.Advance(s.cfg.BootCost)
	n, g := s.cfg.Particles, s.cfg.Cells
	s.hdr = h.Alloc(hdrSize)
	pos := h.Alloc(n * 8)
	vel := h.Alloc(n * 8)
	ef := h.Alloc(g * 8)
	rho := h.Alloc(g * 8)
	if s.hdr == mem.NullPtr || pos == mem.NullPtr || vel == mem.NullPtr ||
		ef == mem.NullPtr || rho == mem.NullPtr {
		return fmt.Errorf("particle: workspace allocation failed")
	}
	as.WriteU64(s.hdr+offMagic, hdrMagic)
	as.WriteU64(s.hdr+offN, uint64(n))
	as.WriteU64(s.hdr+offCells, uint64(g))
	as.WriteU64(s.hdr+offStep, 0)
	as.WritePtr(s.hdr+offPos, pos)
	as.WritePtr(s.hdr+offVel, vel)
	as.WritePtr(s.hdr+offE, ef)
	as.WritePtr(s.hdr+offRho, rho)

	// Two-stream instability initial conditions, deterministic per index.
	for i := 0; i < n; i++ {
		x := (float64(i) + 0.5) / float64(n)
		v := 1.0
		if i%2 == 1 {
			v = -1.0
		}
		v += 0.01 * math.Sin(2*math.Pi*x*3+float64(i%7))
		s.setF64(pos+mem.VAddr(i*8), x)
		s.setF64(vel+mem.VAddr(i*8), v)
	}
	for c := 0; c < g; c++ {
		s.setF64(ef+mem.VAddr(c*8), 0)
		s.setF64(rho+mem.VAddr(c*8), 0)
	}
	s.charge(n + g)
	ctx := simds.NewCtx(h, m.Clock, m.Model)
	s.vault = core.NewStageVault(ctx)
	as.WritePtr(s.hdr+offVault, s.vault.Addr())
	s.stages = rt.NewStages(s.hdr + offTracker)
	if s.persistence {
		s.loadCheckpoint()
	}
	rt.FinishRecovery(false)
	return nil
}

// Handle implements recovery.App: one request = one simulation step.
func (s *Sim) Handle(req *workload.Request) (ok, effective bool) {
	if s.armedBug != "" {
		bug := s.armedBug
		s.armedBug = ""
		s.fireBug(bug)
	}
	as := s.rt.Proc().AS
	inj := s.inj
	if inj != nil && !inj.Cond("pic.step.bound", true) {
		panic(&kernel.Crash{Sig: kernel.SIGALRM, Reason: "particle: step loop bound inverted"})
	}
	n := int(as.ReadU64(s.hdr + offN))
	g := int(as.ReadU64(s.hdr + offCells))
	pos := as.ReadPtr(s.hdr + offPos)
	vel := as.ReadPtr(s.hdr + offVel)
	ef := as.ReadPtr(s.hdr + offE)
	rho := as.ReadPtr(s.hdr + offRho)
	step := s.Step()
	dt := s.cfg.Dt

	s.stages.BeginIteration(step)

	// Stage 1: push — advances positions and velocities in place; not
	// idempotent, so the preserve hook saves both arrays' pre-images.
	s.stages.Run("push", func() {
		for i := 0; i < n; i++ {
			if i == n/2 && s.crashMidStage == "push" {
				s.crashMidStage = ""
				panic(&kernel.Crash{Sig: kernel.SIGSEGV, Reason: "particle: crash mid-push"})
			}
			x := s.f64(pos + mem.VAddr(i*8))
			cell := int(x * float64(g))
			if cell >= g {
				cell = g - 1
			}
			if cell < 0 {
				cell = 0
			}
			e := s.f64(ef + mem.VAddr(cell*8))
			v := s.f64(vel+mem.VAddr(i*8)) - e*dt
			if inj != nil {
				v = math.Float64frombits(inj.U64("pic.push.vel", math.Float64bits(v)))
			}
			x += v * dt / float64(g)
			wrap := x >= 1.0 || x < 0.0
			if inj != nil {
				wrap = inj.Cond("pic.push.wrap", wrap)
			}
			if wrap {
				x -= math.Floor(x)
			}
			s.setF64(pos+mem.VAddr(i*8), x)
			s.setF64(vel+mem.VAddr(i*8), v)
		}
		s.charge(n)
	}, func() {
		s.vault.Save("pos", pos, n*8)
		s.vault.Save("vel", vel, n*8)
	}, func() {
		s.vault.Restore("pos", pos)
		s.vault.Restore("vel", vel)
	})

	// Stage 2: deposit — accumulate charge density. The body re-zeroes the
	// density grid before accumulating, so a re-run is idempotent: nil
	// hooks (the recommended §3.7 pattern).
	s.stages.Run("deposit", func() {
		for c := 0; c < g; c++ {
			s.setF64(rho+mem.VAddr(c*8), 0)
		}
		for i := 0; i < n; i++ {
			x := s.f64(pos + mem.VAddr(i*8))
			cell := int(x * float64(g))
			if inj != nil {
				cell = inj.Int("pic.deposit.cell", cell)
			}
			if cell >= g || cell < 0 {
				// Out-of-bounds deposit: in VPIC this scribbles past the
				// accumulator array (the VP1 class); here it faults.
				as.ReadU64(mem.VAddr(uint64(s.hdr) + uint64(cell)*1e9))
			}
			addr := rho + mem.VAddr(cell*8)
			add := func() { s.setF64(addr, s.f64(addr)+1.0/float64(n)) }
			if inj != nil {
				inj.Do("pic.deposit.add", add)
			} else {
				add()
			}
		}
		s.charge(n + g)
	}, nil, nil)

	// Stage 3: solve — relaxes the field in place (not idempotent): the
	// preserve hook saves the field's pre-image.
	s.stages.Run("solve", func() {
		mean := 0.0
		for c := 0; c < g; c++ {
			mean += s.f64(rho + mem.VAddr(c*8))
		}
		mean /= float64(g)
		for c := 0; c < g; c++ {
			if c == g/2 && s.crashMidStage == "solve" {
				s.crashMidStage = ""
				panic(&kernel.Crash{Sig: kernel.SIGSEGV, Reason: "particle: crash mid-solve"})
			}
			grad := s.f64(rho+mem.VAddr(c*8)) - mean
			if inj != nil {
				grad = math.Float64frombits(inj.U64("pic.solve.step", math.Float64bits(grad)))
			}
			e := 0.9*s.f64(ef+mem.VAddr(c*8)) + grad*dt
			s.setF64(ef+mem.VAddr(c*8), e)
		}
		as.WriteU64(s.hdr+offStep, step+1)
		s.charge(2 * g)
	}, func() {
		s.vault.Save("efield", ef, g*8)
	}, func() {
		s.vault.Restore("efield", ef)
	})

	s.stages.EndIteration()
	s.stats.Steps++

	done := s.Step()
	if done <= s.highWater {
		s.stats.Recomputed++
		return true, false
	}
	s.highWater = done
	return true, true
}

// Rewindable implements recovery.RewindableApp: a simulation step touches
// only simulated memory (checkpoints are written by Checkpoint, outside the
// request path), so a rewind-domain discard rolls the whole step back.
func (s *Sim) Rewindable() bool { return true }

// Energy returns total kinetic + field energy (a physics sanity invariant:
// bounded over the run).
func (s *Sim) Energy() float64 {
	as := s.rt.Proc().AS
	n := int(as.ReadU64(s.hdr + offN))
	g := int(as.ReadU64(s.hdr + offCells))
	vel := as.ReadPtr(s.hdr + offVel)
	ef := as.ReadPtr(s.hdr + offE)
	var ke, fe float64
	for i := 0; i < n; i++ {
		v := s.f64(vel + mem.VAddr(i*8))
		ke += v * v
	}
	for c := 0; c < g; c++ {
		e := s.f64(ef + mem.VAddr(c*8))
		fe += e * e
	}
	return ke/float64(n) + fe/float64(g)
}

// Checkpoint implements recovery.App: dump particles and fields.
func (s *Sim) Checkpoint() {
	if !s.persistence {
		return
	}
	m := s.rt.Proc().Machine
	as := s.rt.Proc().AS
	n := int(as.ReadU64(s.hdr + offN))
	g := int(as.ReadU64(s.hdr + offCells))
	buf := make([]byte, 8+(2*n+2*g)*8)
	binary.LittleEndian.PutUint64(buf, s.Step())
	off := 8
	dump := func(base mem.VAddr, cnt int) {
		for i := 0; i < cnt; i++ {
			binary.LittleEndian.PutUint64(buf[off:], as.ReadU64(base+mem.VAddr(i*8)))
			off += 8
		}
	}
	dump(as.ReadPtr(s.hdr+offPos), n)
	dump(as.ReadPtr(s.hdr+offVel), n)
	dump(as.ReadPtr(s.hdr+offE), g)
	dump(as.ReadPtr(s.hdr+offRho), g)
	m.Clock.Advance(time.Duration(len(buf)) * m.Model.MarshalPerByte)
	m.Disk.WriteFile(ckptFile, buf)
	s.stats.Checkpoints++
}

// loadCheckpoint restores particles, fields, and the step counter.
func (s *Sim) loadCheckpoint() {
	m := s.rt.Proc().Machine
	buf, ok := m.Disk.ReadFile(ckptFile)
	if !ok || len(buf) < 8 {
		return
	}
	as := s.rt.Proc().AS
	n := int(as.ReadU64(s.hdr + offN))
	g := int(as.ReadU64(s.hdr + offCells))
	if len(buf) != 8+(2*n+2*g)*8 {
		panic(&kernel.Crash{Sig: kernel.SIGABRT, Reason: "particle: corrupt checkpoint"})
	}
	m.Clock.Advance(time.Duration(len(buf)) * m.Model.UnmarshalPerByte)
	as.WriteU64(s.hdr+offStep, binary.LittleEndian.Uint64(buf))
	off := 8
	load := func(base mem.VAddr, cnt int) {
		for i := 0; i < cnt; i++ {
			as.WriteU64(base+mem.VAddr(i*8), binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
	}
	load(as.ReadPtr(s.hdr+offPos), n)
	load(as.ReadPtr(s.hdr+offVel), n)
	load(as.ReadPtr(s.hdr+offE), g)
	load(as.ReadPtr(s.hdr+offRho), g)
	s.charge(n + g)
	s.stats.CkptLoads++
}

// PlanRestart implements recovery.App: whole-heap preservation with stage
// tracking; no unsafe regions (§3.7).
func (s *Sim) PlanRestart(rt *core.Runtime, ci *kernel.CrashInfo, useUnsafe bool) (core.RestartPlan, string) {
	return core.RestartPlan{InfoAddr: s.hdr, WithHeap: true}, ""
}

// Reattach implements recovery.App (CRIU restore).
func (s *Sim) Reattach(rt *core.Runtime) {
	s.rt = rt
	h, err := heap.Attach(rt.Proc().AS, core.DefaultHeapBase, heap.Options{Name: "pic"})
	if err != nil {
		panic(&kernel.Crash{Sig: kernel.SIGABRT, Reason: "particle: criu reattach: " + err.Error()})
	}
	s.heap = h
	s.stages = rt.NewStages(s.hdr + offTracker)
}

// Dump implements recovery.App: step count plus checksums of the state
// arrays (chunked, so validation localises corruption).
func (s *Sim) Dump() core.StateDump {
	out := core.StateDump{}
	as := s.rt.Proc().AS
	n := int(as.ReadU64(s.hdr + offN))
	g := int(as.ReadU64(s.hdr + offCells))
	out["step"] = fmt.Sprint(s.Step())
	sum := func(base mem.VAddr, cnt int, tag string) {
		const chunk = 512
		for lo := 0; lo < cnt; lo += chunk {
			hi := lo + chunk
			if hi > cnt {
				hi = cnt
			}
			var h uint64 = 14695981039346656037
			for i := lo; i < hi; i++ {
				h = (h ^ as.ReadU64(base+mem.VAddr(i*8))) * 1099511628211
			}
			out[fmt.Sprintf("%s-%05d", tag, lo)] = fmt.Sprintf("%x", h)
		}
	}
	sum(as.ReadPtr(s.hdr+offPos), n, "pos")
	sum(as.ReadPtr(s.hdr+offVel), n, "vel")
	sum(as.ReadPtr(s.hdr+offE), g, "efield")
	return out
}

// CrossCheck implements recovery.App (not wired for compute apps).
func (s *Sim) CrossCheck(rt *core.Runtime) (core.CrossCheckSpec, bool) {
	return core.CrossCheckSpec{}, false
}

// --- real-bug scenario (Table 5, VP1) ---

// ArmBug schedules VP1: an out-of-bound particle index whose revert was
// forgotten on an error path (VPIC #118).
func (s *Sim) ArmBug(name string) { s.armedBug = name }

func (s *Sim) fireBug(name string) {
	switch name {
	case "VP1":
		// The mover retries a particle with an unreverted index and walks
		// off the accumulator array.
		s.rt.Proc().AS.ReadU64(mem.VAddr(0xFFFF_F000_0000))
	default:
		panic(fmt.Sprintf("particle: unknown bug %q", name))
	}
}
