package particle

import (
	"testing"
	"time"

	"phoenix/internal/kernel"
	"phoenix/internal/recovery"
	"phoenix/internal/workload"
)

type stepGen struct{ seq uint64 }

func (g *stepGen) Next() *workload.Request {
	g.seq++
	return &workload.Request{Seq: g.seq, Op: workload.OpRead, Key: "step"}
}

func (g *stepGen) Clone(seed int64) workload.Generator { return &stepGen{} }

func boot(t *testing.T, cfg Config, rcfg recovery.Config, seed int64) (*recovery.Harness, *Sim) {
	t.Helper()
	m := kernel.NewMachine(seed)
	s := New(cfg, nil)
	h := recovery.NewHarness(m, rcfg, s, &stepGen{}, nil)
	if err := h.Boot(); err != nil {
		t.Fatal(err)
	}
	return h, s
}

func smallCfg() Config {
	return Config{Particles: 500, Cells: 32, WorkScale: 10}
}

func TestStepsAdvance(t *testing.T) {
	h, s := boot(t, smallCfg(), recovery.Config{Mode: recovery.ModeVanilla}, 1)
	if err := h.RunRequests(20); err != nil {
		t.Fatal(err)
	}
	if s.Step() != 20 || s.Stats().Steps != 20 {
		t.Fatalf("step = %d, stats %+v", s.Step(), s.Stats())
	}
}

func TestEnergyBounded(t *testing.T) {
	h, s := boot(t, smallCfg(), recovery.Config{Mode: recovery.ModeVanilla}, 2)
	e0 := s.Energy()
	if err := h.RunRequests(100); err != nil {
		t.Fatal(err)
	}
	e1 := s.Energy()
	if e1 <= 0 || e1 > e0*10 {
		t.Fatalf("energy unbounded: %.3f -> %.3f", e0, e1)
	}
}

func TestDeterministic(t *testing.T) {
	h1, s1 := boot(t, smallCfg(), recovery.Config{Mode: recovery.ModeVanilla}, 3)
	h2, s2 := boot(t, smallCfg(), recovery.Config{Mode: recovery.ModeVanilla}, 4)
	if err := h1.RunRequests(30); err != nil {
		t.Fatal(err)
	}
	if err := h2.RunRequests(30); err != nil {
		t.Fatal(err)
	}
	d1, d2 := s1.Dump(), s2.Dump()
	for k, v := range d1 {
		if d2[k] != v {
			t.Fatalf("nondeterministic state at %s", k)
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	h, s := boot(t, smallCfg(), recovery.Config{Mode: recovery.ModeBuiltin, CheckpointInterval: time.Hour}, 5)
	if err := h.RunRequests(10); err != nil {
		t.Fatal(err)
	}
	s.Checkpoint()
	before := s.Dump()
	s.ArmBug("VP1")
	if err := h.RunRequests(1); err != nil {
		t.Fatal(err)
	}
	if s.Stats().CkptLoads != 1 {
		t.Fatalf("checkpoint not loaded: %+v", s.Stats())
	}
	after := s.Dump()
	for k, v := range before {
		if after[k] != v {
			t.Fatalf("state %s differs after checkpoint load", k)
		}
	}
}

func TestPhoenixResumesMidRun(t *testing.T) {
	rcfg := recovery.Config{Mode: recovery.ModePhoenix, WatchdogTimeout: time.Second}
	h, s := boot(t, smallCfg(), rcfg, 6)
	if err := h.RunRequests(25); err != nil {
		t.Fatal(err)
	}
	before := s.Step()
	s.ArmBug("VP1")
	if err := h.RunRequests(5); err != nil {
		t.Fatal(err)
	}
	if h.Stat.PhoenixRestarts != 1 {
		t.Fatalf("stats: %+v", h.Stat)
	}
	if s.Step() < before {
		t.Fatalf("phoenix lost steps: %d -> %d", before, s.Step())
	}
	if s.Stats().Recomputed != 0 {
		t.Fatalf("phoenix recomputed: %+v", s.Stats())
	}
}

func TestPhoenixStateMatchesUninterrupted(t *testing.T) {
	hRef, sRef := boot(t, smallCfg(), recovery.Config{Mode: recovery.ModeVanilla}, 7)
	if err := hRef.RunRequests(40); err != nil {
		t.Fatal(err)
	}
	want := sRef.Dump()

	rcfg := recovery.Config{Mode: recovery.ModePhoenix, WatchdogTimeout: time.Second}
	h, s := boot(t, smallCfg(), rcfg, 7)
	if err := h.RunRequests(20); err != nil {
		t.Fatal(err)
	}
	s.ArmBug("VP1")
	if err := h.RunRequests(21); err != nil {
		t.Fatal(err)
	}
	got := s.Dump()
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("state %s diverged after phoenix recovery", k)
		}
	}
}

func TestVanillaRecomputes(t *testing.T) {
	h, s := boot(t, smallCfg(), recovery.Config{Mode: recovery.ModeVanilla}, 8)
	if err := h.RunRequests(30); err != nil {
		t.Fatal(err)
	}
	s.ArmBug("VP1")
	if err := h.RunRequests(1); err != nil {
		t.Fatal(err)
	}
	if s.Step() > 1 {
		t.Fatalf("vanilla kept %d steps", s.Step())
	}
	if err := h.RunRequests(20); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Recomputed == 0 {
		t.Fatal("recompute not flagged")
	}
}

func TestBuiltinRecomputesFromCheckpoint(t *testing.T) {
	rcfg := recovery.Config{Mode: recovery.ModeBuiltin, CheckpointInterval: 5 * time.Millisecond, WatchdogTimeout: time.Second}
	h, s := boot(t, smallCfg(), rcfg, 9)
	if err := h.RunRequests(30); err != nil {
		t.Fatal(err)
	}
	s.ArmBug("VP1")
	if err := h.RunRequests(1); err != nil {
		t.Fatal(err)
	}
	if s.Stats().CkptLoads != 1 {
		t.Fatalf("no checkpoint load: %+v", s.Stats())
	}
	if s.Step() == 0 {
		t.Fatal("builtin restart lost everything despite checkpoints")
	}
}

// TestMidSolveCrashRollsBack: a crash halfway through the in-place field
// relaxation must roll the field back to the pre-image; the recovered state
// must match an uninterrupted run exactly.
func TestMidSolveCrashRollsBack(t *testing.T) {
	hRef, sRef := boot(t, smallCfg(), recovery.Config{Mode: recovery.ModeVanilla}, 60)
	if err := hRef.RunRequests(30); err != nil {
		t.Fatal(err)
	}
	want := sRef.Dump()

	rcfg := recovery.Config{Mode: recovery.ModePhoenix, WatchdogTimeout: time.Second}
	h, s := boot(t, smallCfg(), rcfg, 60)
	if err := h.RunRequests(15); err != nil {
		t.Fatal(err)
	}
	s.crashMidStage = "solve"
	if err := h.RunRequests(16); err != nil {
		t.Fatal(err)
	}
	if h.Stat.PhoenixRestarts != 1 {
		t.Fatalf("stats %+v", h.Stat)
	}
	got := s.Dump()
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("state %s diverged after mid-solve crash (double-applied relaxation)", k)
		}
	}
}

// TestMidPushCrashRollsBack covers the particle-array pre-image.
func TestMidPushCrashRollsBack(t *testing.T) {
	hRef, sRef := boot(t, smallCfg(), recovery.Config{Mode: recovery.ModeVanilla}, 61)
	if err := hRef.RunRequests(20); err != nil {
		t.Fatal(err)
	}
	want := sRef.Dump()

	rcfg := recovery.Config{Mode: recovery.ModePhoenix, WatchdogTimeout: time.Second}
	h, s := boot(t, smallCfg(), rcfg, 61)
	if err := h.RunRequests(10); err != nil {
		t.Fatal(err)
	}
	s.crashMidStage = "push"
	if err := h.RunRequests(11); err != nil {
		t.Fatal(err)
	}
	got := s.Dump()
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("state %s diverged after mid-push crash", k)
		}
	}
}
