// Package webcache is the repository's web-cache-server analogue, covering
// both evaluated flavors: Varnish (master–worker architecture, reference-
// counted objects) and Squid (section-annotated static pools).
//
// Preserved state (Table 3): the cached page objects — the dict from URL to
// object, the LRU list, and the object bodies. Neither flavor has builtin
// persistence (both run in-memory stores, §4.3.3), so the alternatives to
// PHOENIX are losing the cache (Vanilla, and CRIU for Varnish, whose
// master–worker coordination CRIU disrupts) or a stale CRIU image (Squid).
//
// Effective availability is the hit rate: a freshly restarted cache answers
// requests quickly but misses everything, which is precisely the warm-up
// problem partial preservation removes.
package webcache

import (
	"fmt"
	"time"

	"phoenix/internal/core"
	"phoenix/internal/faultinject"
	"phoenix/internal/heap"
	"phoenix/internal/kernel"
	"phoenix/internal/linker"
	"phoenix/internal/mem"
	"phoenix/internal/recovery"
	"phoenix/internal/simds"
	"phoenix/internal/workload"
)

// Flavor selects the modelled server.
type Flavor int

const (
	// FlavorVarnish models Varnish: worker process under a master,
	// refcounted cache objects.
	FlavorVarnish Flavor = iota
	// FlavorSquid models Squid: static memory pools annotated with phxsec.
	FlavorSquid
)

func (f Flavor) String() string {
	if f == FlavorSquid {
		return "squid"
	}
	return "varnish"
}

// Config parameterises the cache.
type Config struct {
	Flavor Flavor
	// CapacityBytes bounds total cached body bytes (LRU eviction beyond).
	CapacityBytes int64
	// BackendLatency and BackendRate model origin fetches on a miss.
	BackendLatency  time.Duration
	BackendRate     int64 // bytes per second
	BootCost        time.Duration
	PhoenixBootCost time.Duration
	// ObjectTTL is the freshness lifetime of cached objects (0 = immortal).
	// Stale objects are revalidated: evicted and refetched on access.
	ObjectTTL time.Duration
	// Cleanup runs mark-and-sweep during PHOENIX recovery.
	Cleanup bool
}

func (c *Config) fill() {
	if c.CapacityBytes == 0 {
		c.CapacityBytes = 64 << 20
	}
	if c.BackendLatency == 0 {
		c.BackendLatency = 2 * time.Millisecond
	}
	if c.BackendRate == 0 {
		c.BackendRate = 100 << 20
	}
	if c.BootCost == 0 {
		c.BootCost = 400 * time.Millisecond
	}
	if c.PhoenixBootCost == 0 {
		c.PhoenixBootCost = 40 * time.Millisecond
	}
}

// Cache-object layout in simulated memory:
//
//	 0: refcount (u32)   — live request references (Varnish)
//	 4: flags (u32)
//	 8: body size (u64)
//	16: LRU node (VAddr)
//	24: key blob (VAddr)
//	32: body blob (VAddr)
//	40: expiry deadline (u64 nanoseconds of simulated time; 0 = immortal)
const (
	objSize    = 48
	objOffRef  = 0
	objOffFlag = 4
	objOffLen  = 8
	objOffLRU  = 16
	objOffKey  = 24
	objOffBody = 32
	objOffExp  = 40
)

// Root-block layout: [0] dict, [8] lru list, [16] cached bytes, [24] magic.
const (
	rootSize  = 32
	rootMagic = 0x7765626361636865 // "webcache"
)

// Cache is the server program.
type Cache struct {
	cfg Config
	img *linker.Image
	inj *faultinject.Injector

	// phxsec statics (Squid's pool table, Figure 5).
	poolsVar *linker.StaticVar
	initVar  *linker.StaticVar

	rt          *core.Runtime
	ctx         *simds.Ctx
	dict        *simds.Dict
	lru         *simds.List
	root        mem.VAddr
	persistence bool

	web *workload.Web // object size/cacheability oracle (backend model)

	armedBug  string
	armedComp string
	inflight  string

	stats Stats
}

// Stats counts cache activity.
type Stats struct {
	Gets, Hits, Misses, Inserts, Evictions uint64
	Stale                                  uint64
	RefResets                              uint64
}

// New creates the program. web supplies the deterministic backend.
func New(cfg Config, web *workload.Web, inj *faultinject.Injector) *Cache {
	cfg.fill()
	b := linker.NewBuilder("webcache-"+cfg.Flavor.String(), 0x0010_0000)
	c := &Cache{cfg: cfg, inj: inj, web: web}
	if cfg.Flavor == FlavorSquid {
		// Squid's static pool table lives in .phx.data via the phxsec
		// macro (Figure 5): preserved across PHOENIX restarts with
		// with_section, without global-scope plumbing.
		c.poolsVar = b.Var("Mem::pools", 32*8, linker.SecPhxData)
		c.initVar = b.Var("Mem::initialized", 8, linker.SecPhxBSS)
	} else {
		b.Var("varnish.params", 64, linker.SecData)
	}
	c.img = b.Build()
	if inj != nil {
		inj.RegisterAll(Sites())
	}
	return c
}

// Sites returns the injection sites in the request path.
func Sites() []faultinject.Site {
	return []faultinject.Site{
		{ID: "web.lookup.hash", Func: "HSH_Lookup", Kind: faultinject.KindValue},
		{ID: "web.lookup.hit", Func: "HSH_Lookup", Kind: faultinject.KindCond},
		{ID: "web.serve.len", Func: "ved_deliver", Kind: faultinject.KindValue},
		{ID: "web.insert.link", Func: "HSH_Insert", Kind: faultinject.KindAction, Modifying: true},
		{ID: "web.insert.size", Func: "HSH_Insert", Kind: faultinject.KindValue, Modifying: true},
		{ID: "web.insert.acct", Func: "HSH_Insert", Kind: faultinject.KindAction, Modifying: true},
		{ID: "web.insert.partial", Func: "HSH_Insert", Kind: faultinject.KindCond, Modifying: true},
		{ID: "web.evict.pick", Func: "EXP_NukeOne", Kind: faultinject.KindCond, Modifying: true},
		{ID: "web.evict.unlink", Func: "EXP_NukeOne", Kind: faultinject.KindAction, Modifying: true},
		{ID: "web.ref.acquire", Func: "HSH_Ref", Kind: faultinject.KindAction},
		{ID: "web.ref.release", Func: "HSH_Deref", Kind: faultinject.KindAction},
		{ID: "web.fetch.guard", Func: "FetchBody", Kind: faultinject.KindCond},
		{ID: "web.fetch.size", Func: "FetchBody", Kind: faultinject.KindValue},
	}
}

// Name implements recovery.App.
func (c *Cache) Name() string { return "webcache-" + c.cfg.Flavor.String() }

// Image implements recovery.App.
func (c *Cache) Image() *linker.Image { return c.img }

// SetPersistence implements recovery.App (no builtin persistence exists).
func (c *Cache) SetPersistence(on bool) { c.persistence = on }

// Stats returns activity counters.
func (c *Cache) Stats() Stats { return c.stats }

// Len returns the number of cached objects.
func (c *Cache) Len() uint64 { return c.dict.Len() }

// CachedBytes returns the accounted body bytes.
func (c *Cache) CachedBytes() int64 {
	return int64(c.rt.Proc().AS.ReadU64(c.root + 16))
}

// Main implements recovery.App.
func (c *Cache) Main(rt *core.Runtime) error {
	c.rt = rt
	m := rt.Proc().Machine
	h, err := rt.OpenHeap(heap.Options{Name: "web"})
	if err != nil {
		return fmt.Errorf("webcache: open heap: %w", err)
	}
	c.ctx = simds.NewCtx(h, m.Clock, m.Model)
	as := rt.Proc().AS

	if rt.IsRecoveryMode() {
		m.Clock.Advance(c.cfg.PhoenixBootCost)
		root := rt.RecoveryInfo()
		if root == mem.NullPtr || as.ReadU64(root+24) != rootMagic {
			return fmt.Errorf("webcache: recovery info invalid")
		}
		c.root = root
		c.dict = simds.OpenDict(c.ctx, as.ReadPtr(root))
		c.lru = simds.OpenList(c.ctx, as.ReadPtr(root+8))
		if !c.dict.ValidateHeader() || !c.lru.ValidateHeader() {
			return fmt.Errorf("webcache: preserved cache failed validation")
		}
		if c.cfg.Flavor == FlavorSquid {
			// Section-preserved statics must have survived (with_section).
			if as.ReadU64(c.initVar.Addr) != 1 {
				return fmt.Errorf("webcache: preserved pool table missing")
			}
		}
		// Reset refcounts: preserved objects may carry references from
		// requests of the dead process (§3.4 special handling; the Varnish
		// port's refcount discount). The same walk re-derives the cached-bytes
		// accounting — like refcounts it is transient bookkeeping the dead
		// process may have left mid-update, so it is recomputed rather than
		// trusted (the write only happens when the preserved total is wrong).
		var total uint64
		c.lru.Iterate(func(_ mem.VAddr, payload uint64) bool {
			obj := mem.VAddr(payload)
			if as.ReadU32(obj+objOffRef) != 0 {
				as.WriteU32(obj+objOffRef, 0)
				c.stats.RefResets++
			}
			total += as.ReadU64(obj + objOffLen)
			return true
		})
		if as.ReadU64(root+16) != total {
			as.WriteU64(root+16, total)
		}
		if c.cfg.Cleanup {
			c.markAll(h)
			rt.FinishRecovery(true)
		} else {
			rt.FinishRecovery(false)
		}
		return nil
	}

	m.Clock.Advance(c.cfg.BootCost)
	c.dict = simds.NewDict(c.ctx, 4096)
	c.lru = simds.NewList(c.ctx)
	c.root = h.Alloc(rootSize)
	if c.root == mem.NullPtr {
		return fmt.Errorf("webcache: root allocation failed")
	}
	as.WritePtr(c.root, c.dict.Addr())
	as.WritePtr(c.root+8, c.lru.Addr())
	as.WriteU64(c.root+16, 0)
	as.WriteU64(c.root+24, rootMagic)
	if c.cfg.Flavor == FlavorSquid {
		as.WriteU64(c.initVar.Addr, 1)
		for i := 0; i < 32; i++ {
			as.WriteU64(c.poolsVar.Addr+mem.VAddr(i*8), uint64(i)*16+1)
		}
	}
	rt.FinishRecovery(false)
	return nil
}

func (c *Cache) markAll(h *heap.Heap) {
	h.Mark(c.root)
	c.dict.Mark(func(val uint64) {
		obj := mem.VAddr(val)
		h.Mark(obj)
		h.Mark(c.rt.Proc().AS.ReadPtr(obj + objOffKey))
		h.Mark(c.rt.Proc().AS.ReadPtr(obj + objOffBody))
	})
	c.lru.Mark(nil) // object payloads already marked via dict
}

// Handle implements recovery.App.
func (c *Cache) Handle(req *workload.Request) (ok, effective bool) {
	m := c.rt.Proc().Machine
	m.Clock.Advance(m.Model.RequestBase)
	c.inflight = req.Key
	if c.armedBug != "" {
		bug := c.armedBug
		c.armedBug = ""
		c.fireBug(bug)
	}
	if c.armedComp != "" {
		comp := c.armedComp
		c.armedComp = ""
		c.fireComponentCrash(comp)
	}
	c.stats.Gets++
	as := c.rt.Proc().AS
	inj := c.inj

	objVal, found := c.dict.Get([]byte(req.Key))
	if inj != nil {
		objVal = inj.U64("web.lookup.hash", objVal)
		found = inj.Cond("web.lookup.hit", found)
	}
	if found {
		obj := mem.VAddr(objVal)
		// Freshness check: a stale object is evicted and refetched, as an
		// expired Cache-Control lifetime forces revalidation.
		if exp := as.ReadU64(obj + objOffExp); exp != 0 && time.Duration(exp) <= m.Clock.Now() {
			c.rt.UnsafeBegin("cache")
			c.evict(obj, as.ReadPtr(obj+objOffLRU))
			c.rt.UnsafeEnd("cache")
			c.stats.Stale++
			found = false
		}
	}
	if found {
		obj := mem.VAddr(objVal)
		// Take a reference while serving (Varnish semantics).
		acquire := func() { as.WriteU32(obj+objOffRef, as.ReadU32(obj+objOffRef)+1) }
		release := func() {
			if r := as.ReadU32(obj + objOffRef); r > 0 {
				as.WriteU32(obj+objOffRef, r-1)
			}
		}
		if inj != nil {
			inj.Do("web.ref.acquire", acquire)
		} else {
			acquire()
		}
		n := int(as.ReadU64(obj + objOffLen))
		if inj != nil {
			n = inj.Int("web.serve.len", n)
			if n < 0 {
				panic(&kernel.Crash{Sig: kernel.SIGSEGV, Reason: "webcache: negative deliver length"})
			}
		}
		body := as.ReadPtr(obj + objOffBody)
		blobLen := c.ctx.BlobLen(body)
		if n > blobLen {
			n = blobLen
		}
		c.ctx.ChargeBytes(n)
		c.lru.MoveToFront(as.ReadPtr(obj + objOffLRU))
		if inj != nil {
			inj.Do("web.ref.release", release) // leaked ref pins the object
		} else {
			release()
		}
		c.stats.Hits++
		return true, true
	}

	// Miss: fetch from the backend.
	c.stats.Misses++
	guard := true
	if inj != nil {
		guard = inj.Cond("web.fetch.guard", true)
	}
	if !guard {
		// Fetch retry loop spins without its exit condition.
		panic(&kernel.Crash{Sig: kernel.SIGALRM, Reason: "webcache: fetch retry loop never exits"})
	}
	size := req.Size
	if inj != nil {
		size = inj.Int("web.fetch.size", size)
		if size < 0 {
			panic(&kernel.Crash{Sig: kernel.SIGSEGV, Reason: "webcache: bogus content-length"})
		}
	}
	m.Clock.Advance(c.cfg.BackendLatency)
	m.Clock.Advance(time.Duration(float64(size) / float64(c.cfg.BackendRate) * float64(time.Second)))
	if req.Cacheable {
		c.insert(req.Key, size)
	}
	return true, false
}

// body derives the deterministic object body (backend content) for a URL.
func body(url string, size int) []byte {
	return workload.Value(url, 1, size)
}

// insert stores a fetched object, evicting LRU victims to fit — the cache
// mutation transaction bracketed by the "cache" unsafe region.
func (c *Cache) insert(url string, size int) {
	rt := c.rt
	as := rt.Proc().AS
	inj := c.inj
	if int64(size) > c.cfg.CapacityBytes {
		return
	}
	// NOTE: no defer — a crash must leave the counter raised (§3.5).
	rt.UnsafeBegin("cache")

	// Evict until the object fits.
	for c.CachedBytes()+int64(size) > c.cfg.CapacityBytes {
		victimNode := c.lru.Back()
		pick := victimNode != mem.NullPtr
		if inj != nil {
			pick = inj.Cond("web.evict.pick", pick)
		}
		if !pick {
			break
		}
		obj := mem.VAddr(c.lru.Payload(victimNode))
		if as.ReadU32(obj+objOffRef) != 0 {
			// Referenced objects are not evictable; move on.
			c.lru.MoveToFront(victimNode)
			continue
		}
		unlink := func() { c.evict(obj, victimNode) }
		if inj != nil {
			inj.Do("web.evict.unlink", unlink)
			if _, armed := inj.ArmedAt("web.evict.unlink"); armed && inj.Fired("web.evict.unlink") {
				// The skipped unlink would loop forever retrying the same
				// victim; bail out of the insert instead.
				break
			}
		} else {
			unlink()
		}
	}
	if c.CachedBytes()+int64(size) > c.cfg.CapacityBytes {
		rt.UnsafeEnd("cache")
		return
	}

	data := body(url, size)
	obj := c.ctx.Heap.Alloc(objSize)
	if obj == mem.NullPtr {
		panic(&kernel.Crash{Sig: kernel.SIGABRT, Reason: "webcache: out of memory"})
	}
	keyBlob := c.ctx.NewBlob([]byte(url))
	bodyBlob := c.ctx.NewBlob(data)
	as.WriteU32(obj+objOffRef, 0)
	as.WriteU32(obj+objOffFlag, 1)
	sz := uint64(size)
	if inj != nil {
		sz = inj.U64("web.insert.size", sz)
	}
	as.WriteU64(obj+objOffLen, sz)
	as.WritePtr(obj+objOffKey, keyBlob)
	as.WritePtr(obj+objOffBody, bodyBlob)
	if c.cfg.ObjectTTL > 0 {
		as.WriteU64(obj+objOffExp, uint64(c.rt.Proc().Machine.Clock.Now()+c.cfg.ObjectTTL))
	} else {
		as.WriteU64(obj+objOffExp, 0)
	}
	node := c.lru.PushFront(uint64(obj))
	as.WritePtr(obj+objOffLRU, node)

	link := func() { c.dict.Set([]byte(url), uint64(obj)) }
	acct := func() { as.WriteU64(c.root+16, uint64(c.CachedBytes()+int64(size))) }
	if inj != nil {
		inj.Do("web.insert.link", link)
		inj.Do("web.insert.acct", acct)
	} else {
		link()
		acct()
	}
	// A fault mid-insert scribbles over the body being filled and kills the
	// worker inside the unsafe region.
	if inj != nil && !inj.Cond("web.insert.partial", true) {
		as.WriteU32(bodyBlob+4, 0x44414544)
		panic(&kernel.Crash{Sig: kernel.SIGSEGV, Reason: "webcache: crash during object insert"})
	}
	c.stats.Inserts++
	c.ctx.ChargeBytes(size)
	rt.UnsafeEnd("cache")
}

// evict removes one object entirely.
func (c *Cache) evict(obj, node mem.VAddr) {
	as := c.rt.Proc().AS
	key := c.ctx.BlobBytes(as.ReadPtr(obj + objOffKey))
	size := int64(as.ReadU64(obj + objOffLen))
	c.lru.Remove(node)
	c.dict.Delete(key)
	c.ctx.FreeBlob(as.ReadPtr(obj + objOffKey))
	c.ctx.FreeBlob(as.ReadPtr(obj + objOffBody))
	c.ctx.Heap.Free(obj)
	as.WriteU64(c.root+16, uint64(c.CachedBytes()-size))
	c.stats.Evictions++
}

// Checkpoint implements recovery.App: web caches have no builtin
// persistence (§4.3.3).
func (c *Cache) Checkpoint() {}

// PlanRestart implements recovery.App.
func (c *Cache) PlanRestart(rt *core.Runtime, ci *kernel.CrashInfo, useUnsafe bool) (core.RestartPlan, string) {
	if useUnsafe && !rt.IsSafe("cache") {
		return core.RestartPlan{}, "unsafe region: cache"
	}
	plan := core.RestartPlan{InfoAddr: c.root, WithHeap: true}
	if c.cfg.Flavor == FlavorSquid {
		plan.WithSection = true
	}
	return plan, ""
}

// Reattach implements recovery.App. For Varnish, CRIU restore breaks the
// master–worker handshake (the restored worker's session with the master is
// gone), forcing a full restart — the behaviour §4.3.3 reports.
func (c *Cache) Reattach(rt *core.Runtime) {
	if c.cfg.Flavor == FlavorVarnish {
		panic(&kernel.Crash{Sig: kernel.SIGABRT,
			Reason: "webcache: CLI handshake with master failed after criu restore"})
	}
	c.rt = rt
	proc := rt.Proc()
	m := proc.Machine
	h, err := heap.Attach(proc.AS, core.DefaultHeapBase, heap.Options{Name: "web"})
	if err != nil {
		panic(&kernel.Crash{Sig: kernel.SIGABRT, Reason: "webcache: criu reattach: " + err.Error()})
	}
	c.ctx = simds.NewCtx(h, m.Clock, m.Model)
	c.dict = simds.OpenDict(c.ctx, proc.AS.ReadPtr(c.root))
	c.lru = simds.OpenList(c.ctx, proc.AS.ReadPtr(c.root+8))
}

// Dump implements recovery.App: URL → body for every cached object.
func (c *Cache) Dump() core.StateDump {
	out := core.StateDump{}
	as := c.rt.Proc().AS
	c.dict.Iterate(func(key []byte, val uint64) bool {
		obj := mem.VAddr(val)
		out[string(key)] = string(c.ctx.BlobBytes(as.ReadPtr(obj + objOffBody)))
		return true
	})
	return out
}

// CrossCheck implements recovery.App: web caches have no default recovery
// that reconstructs content (a restarted cache is empty), so cross-check is
// not applicable (Table 4 lists CC as N/A for Varnish and Squid).
func (c *Cache) CrossCheck(rt *core.Runtime) (core.CrossCheckSpec, bool) {
	return core.CrossCheckSpec{}, false
}

// --- component graph (microreboot support) ---

// Components implements recovery.ComponentApp: the recency component ("lru")
// owns the LRU order and per-object refcounts, and the accounting component
// ("stats") derives the cached-bytes total from the object table. stats
// depends on lru, so killing lru cascades into an accounting rebuild.
func (c *Cache) Components() []recovery.Component {
	return []recovery.Component{
		{Name: "lru"},
		{Name: "stats", Deps: []string{"lru"}},
	}
}

// RebootComponent implements recovery.ComponentApp: the named component's
// transient state is discarded and re-derived from the object table, which is
// the authoritative (preserved) state.
func (c *Cache) RebootComponent(name string) (int, error) {
	as := c.rt.Proc().AS
	n := 0
	switch name {
	case "lru":
		// Discard the recency order and in-flight refcounts: every object is
		// relinked to the front in table order with its refcount cleared
		// (the same refcount discount a process-level recovery applies).
		c.dict.Iterate(func(_ []byte, val uint64) bool {
			obj := mem.VAddr(val)
			if as.ReadU32(obj+objOffRef) != 0 {
				as.WriteU32(obj+objOffRef, 0)
				c.stats.RefResets++
			}
			c.lru.MoveToFront(as.ReadPtr(obj + objOffLRU))
			n++
			return true
		})
		return n, nil
	case "stats":
		// Re-derive the cached-bytes accounting from the object table.
		var total uint64
		c.dict.Iterate(func(_ []byte, val uint64) bool {
			total += as.ReadU64(mem.VAddr(val) + objOffLen)
			n++
			return true
		})
		as.WriteU64(c.root+16, total)
		return n, nil
	}
	return 0, fmt.Errorf("webcache: unknown component %q", name)
}

// VerifyComponents implements recovery.ComponentApp: between requests, no
// component may hold state dangling into another — every object's LRU node
// must round-trip back to the object, the two indexes must agree on size, no
// refcount may survive outside a request, and the accounting total must match
// the object table.
func (c *Cache) VerifyComponents() error {
	as := c.rt.Proc().AS
	if d, l := c.dict.Len(), c.lru.Len(); d != l {
		return fmt.Errorf("webcache: dict has %d objects but lru has %d nodes", d, l)
	}
	var total uint64
	var bad error
	c.dict.Iterate(func(key []byte, val uint64) bool {
		obj := mem.VAddr(val)
		node := as.ReadPtr(obj + objOffLRU)
		if mem.VAddr(c.lru.Payload(node)) != obj {
			bad = fmt.Errorf("webcache: object %q's LRU node dangles", string(key))
			return false
		}
		if r := as.ReadU32(obj + objOffRef); r != 0 {
			bad = fmt.Errorf("webcache: object %q holds %d refs outside any request", string(key), r)
			return false
		}
		total += as.ReadU64(obj + objOffLen)
		return true
	})
	if bad != nil {
		return bad
	}
	if got := as.ReadU64(c.root + 16); got != total {
		return fmt.Errorf("webcache: cached-bytes accounting %d != object total %d", got, total)
	}
	return nil
}

// ArmComponentCrash implements recovery.ComponentApp: the next request
// scribbles over the named component's transient state and dies attributed to
// it.
func (c *Cache) ArmComponentCrash(name string) { c.armedComp = name }

func (c *Cache) fireComponentCrash(comp string) {
	as := c.rt.Proc().AS
	switch comp {
	case "lru":
		// Leak a reference on the hottest object mid-request (the §3.4
		// refcount hazard, scoped to the recency component).
		if front := c.lru.Front(); front != mem.NullPtr {
			obj := mem.VAddr(c.lru.Payload(front))
			as.WriteU32(obj+objOffRef, as.ReadU32(obj+objOffRef)+1)
		}
	case "stats":
		// Tear the accounting mid-update.
		as.WriteU64(c.root+16, as.ReadU64(c.root+16)+977)
	}
	panic(&kernel.Crash{Sig: kernel.SIGABRT,
		Reason: "webcache: fault in component " + comp, Component: comp})
}

// Rewindable implements recovery.RewindableApp: the request path touches only
// simulated memory (the backend fetch just advances the clock), so a rewind
// domain rolls a faulting request back completely.
func (c *Cache) Rewindable() bool { return true }

// --- real-bug scenarios (Table 5, VA1–VA4 and S1–S5) ---

// ArmBug schedules a scripted bug to fire on the next request.
func (c *Cache) ArmBug(name string) { c.armedBug = name }

func (c *Cache) fireBug(name string) {
	as := c.rt.Proc().AS
	switch name {
	case "VA1":
		// Unsynchronized critical section: a racing worker reads a
		// half-initialised session object (Varnish #2434 class).
		as.ReadU64(mem.VAddr(0x18))
	case "VA2":
		// Memory leak: request contexts are never freed; the worker
		// eventually aborts on OOM (Varnish #2495).
		for i := 0; i < 64; i++ {
			if c.ctx.Heap.Alloc(1<<20) == mem.NullPtr {
				break
			}
		}
		panic(&kernel.Crash{Sig: kernel.SIGABRT, Reason: "webcache: worker out of memory (leak)"})
	case "VA3":
		// Priority-inversion deadlock stalls the whole pool; the
		// pool-herder watchdog kills the worker after quiet time
		// (Varnish #2796, Figure 11).
		panic(&kernel.Crash{Sig: kernel.SIGALRM, Reason: "webcache: request pool deadlocked"})
	case "VA4", "S1":
		// Buffer overflow in header parsing: the write runs past a
		// stack buffer (Varnish #3319 / Squid #1517).
		panic(&kernel.Crash{Sig: kernel.SIGSEGV, Reason: "webcache: header buffer overflow"})
	case "S2":
		// Use of a closed descriptor trips an internal assert (Squid #257).
		panic(&kernel.Crash{Sig: kernel.SIGABRT, Reason: "webcache: comm_write on closed fd"})
	case "S3":
		// Wrong type passed to a reply handler dereferences a bogus
		// vtable (Squid #3735).
		as.ReadU64(mem.VAddr(0x30))
	case "S4":
		// Missing NUL terminator: the scanner walks past the end of a
		// request buffer (Squid #3869).
		panic(&kernel.Crash{Sig: kernel.SIGSEGV, Reason: "webcache: unterminated string scan"})
	case "S5":
		// An over-strict length assertion aborts on a legal request
		// (Squid #4823).
		panic(&kernel.Crash{Sig: kernel.SIGABRT, Reason: "webcache: length check assertion failed"})
	default:
		panic(fmt.Sprintf("webcache: unknown bug %q", name))
	}
}

// PoolValue reads a section-preserved static pool slot (tests).
func (c *Cache) PoolValue(i int) uint64 {
	if c.poolsVar == nil {
		return 0
	}
	return c.rt.Proc().AS.ReadU64(c.poolsVar.Addr + mem.VAddr(i*8))
}
