package webcache

import (
	"time"

	"phoenix/internal/mem"
	"phoenix/internal/simds"
	"phoenix/internal/workload"
)

// OpenSnapshotReader implements recovery.SnapshotServer: cache lookups served
// off a frozen MVCC view of the object table. The hot hit path in Handle
// mutates — it takes a reference, bumps the LRU node, counts stats — and none
// of that is possible (or needed) on an immutable view, so the snapshot
// reader is the pure lookup: dict probe, freshness check against the clock
// frozen at commit, body copy. A miss is just a miss — a frozen view cannot
// fetch from the backend, so snapshot reads never insert.
func (c *Cache) OpenSnapshotReader(view *mem.AddressSpace) func(req *workload.Request) (ok, effective bool) {
	m := c.rt.Proc().Machine
	sc := simds.SnapshotCtx(view, m.Model)
	dict := simds.OpenDict(sc, view.ReadPtr(c.root))
	now := m.Clock.Now()
	return func(req *workload.Request) (ok, effective bool) {
		if req.Op != workload.OpWebGet && req.Op != workload.OpRead {
			return false, false
		}
		objVal, found := dict.Get([]byte(req.Key))
		if !found {
			return true, false
		}
		obj := mem.VAddr(objVal)
		if exp := view.ReadU64(obj + objOffExp); exp != 0 && time.Duration(exp) <= now {
			// Stale at commit time; revalidation needs the writer.
			return true, false
		}
		_ = sc.BlobBytes(view.ReadPtr(obj + objOffBody))
		return true, true
	}
}
