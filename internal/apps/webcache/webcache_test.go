package webcache

import (
	"testing"
	"time"

	"phoenix/internal/kernel"
	"phoenix/internal/mem"
	"phoenix/internal/recovery"
	"phoenix/internal/workload"
)

func boot(t *testing.T, cfg Config, rcfg recovery.Config, seed int64) (*recovery.Harness, *Cache) {
	t.Helper()
	m := kernel.NewMachine(seed)
	web := workload.NewWeb(workload.WebConfig{Seed: seed, URLs: 2000, MeanSize: 4 << 10})
	c := New(cfg, web, nil)
	h := recovery.NewHarness(m, rcfg, c, web, nil)
	if err := h.Boot(); err != nil {
		t.Fatal(err)
	}
	return h, c
}

func TestWarmupAndHits(t *testing.T) {
	h, c := boot(t, Config{}, recovery.Config{Mode: recovery.ModeVanilla}, 1)
	if err := h.RunRequests(10000); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Hits == 0 || st.Inserts == 0 {
		t.Fatalf("no cache activity: %+v", st)
	}
	// Zipfian traffic on a warmed cache should mostly hit.
	if float64(st.Hits)/float64(st.Gets) < 0.5 {
		t.Fatalf("hit rate %d/%d too low after warm-up", st.Hits, st.Gets)
	}
}

func TestCapacityEviction(t *testing.T) {
	h, c := boot(t, Config{CapacityBytes: 256 << 10}, recovery.Config{Mode: recovery.ModeVanilla}, 2)
	if err := h.RunRequests(10000); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("no evictions under a tight capacity")
	}
	if c.CachedBytes() > 256<<10 {
		t.Fatalf("cache over capacity: %d", c.CachedBytes())
	}
}

func TestDumpBodiesMatchBackend(t *testing.T) {
	h, c := boot(t, Config{}, recovery.Config{Mode: recovery.ModeVanilla}, 3)
	if err := h.RunRequests(2000); err != nil {
		t.Fatal(err)
	}
	dump := c.Dump()
	if len(dump) == 0 {
		t.Fatal("empty dump")
	}
	checked := 0
	for url, got := range dump {
		want := string(body(url, len(got)))
		if got != want {
			t.Fatalf("cached body for %s diverges from backend", url)
		}
		checked++
		if checked > 20 {
			break
		}
	}
}

func bugKeepsCache(t *testing.T, flavor Flavor, bug string) {
	t.Helper()
	rcfg := recovery.Config{Mode: recovery.ModePhoenix, UnsafeRegions: true, WatchdogTimeout: time.Second}
	h, c := boot(t, Config{Flavor: flavor}, rcfg, 5)
	if err := h.RunRequests(8000); err != nil {
		t.Fatal(err)
	}
	lenBefore := c.Len()
	c.ArmBug(bug)
	if err := h.RunRequests(2000); err != nil {
		t.Fatal(err)
	}
	if h.Stat.PhoenixRestarts != 1 {
		t.Fatalf("%s: stats %+v", bug, h.Stat)
	}
	if c.Len() < lenBefore {
		t.Fatalf("%s: cache shrank across phoenix restart: %d -> %d", bug, lenBefore, c.Len())
	}
}

func TestPhoenixPreservesCacheAcrossAllBugs(t *testing.T) {
	for _, bug := range []string{"VA1", "VA2", "VA3", "VA4"} {
		t.Run(bug, func(t *testing.T) { bugKeepsCache(t, FlavorVarnish, bug) })
	}
	for _, bug := range []string{"S1", "S2", "S3", "S4", "S5"} {
		t.Run(bug, func(t *testing.T) { bugKeepsCache(t, FlavorSquid, bug) })
	}
}

func TestVanillaLosesCache(t *testing.T) {
	h, c := boot(t, Config{}, recovery.Config{Mode: recovery.ModeVanilla, WatchdogTimeout: time.Second}, 7)
	if err := h.RunRequests(8000); err != nil {
		t.Fatal(err)
	}
	c.ArmBug("VA1")
	if err := h.RunRequests(10); err != nil {
		t.Fatal(err)
	}
	if c.Len() > 10 {
		t.Fatalf("vanilla restart kept %d objects", c.Len())
	}
}

func TestVarnishCRIUDegradesToFullRestart(t *testing.T) {
	rcfg := recovery.Config{Mode: recovery.ModeCRIU, CheckpointInterval: 10 * time.Millisecond, WatchdogTimeout: time.Second}
	h, c := boot(t, Config{Flavor: FlavorVarnish}, rcfg, 8)
	if err := h.RunRequests(5000); err != nil {
		t.Fatal(err)
	}
	c.ArmBug("VA1")
	if err := h.RunRequests(10); err != nil {
		t.Fatal(err)
	}
	// The restored worker cannot re-handshake: cache lost (§4.3.3).
	if c.Len() > 10 {
		t.Fatalf("varnish criu restore should degrade to full restart, kept %d", c.Len())
	}
}

func TestSquidCRIUKeepsCache(t *testing.T) {
	rcfg := recovery.Config{Mode: recovery.ModeCRIU, CheckpointInterval: 10 * time.Millisecond, WatchdogTimeout: time.Second}
	h, c := boot(t, Config{Flavor: FlavorSquid}, rcfg, 9)
	if err := h.RunRequests(5000); err != nil {
		t.Fatal(err)
	}
	before := c.Len()
	c.ArmBug("S1")
	if err := h.RunRequests(10); err != nil {
		t.Fatal(err)
	}
	// The restored cache keeps (almost) everything from the snapshot; a few
	// post-restore misses may add objects.
	if c.Len() < before*9/10 {
		t.Fatalf("squid criu restore lost cache: %d vs %d", c.Len(), before)
	}
}

func TestSquidSectionStaticsPreserved(t *testing.T) {
	rcfg := recovery.Config{Mode: recovery.ModePhoenix, UnsafeRegions: true, WatchdogTimeout: time.Second}
	h, c := boot(t, Config{Flavor: FlavorSquid}, rcfg, 10)
	if err := h.RunRequests(2000); err != nil {
		t.Fatal(err)
	}
	// Mutate a pool slot; it must survive the PHOENIX restart via
	// .phx.data preservation.
	c.rt.Proc().AS.WriteU64(c.poolsVar.Addr, 4242)
	c.ArmBug("S3")
	if err := h.RunRequests(100); err != nil {
		t.Fatal(err)
	}
	if h.Stat.PhoenixRestarts != 1 {
		t.Fatalf("stats: %+v", h.Stat)
	}
	if got := c.PoolValue(0); got != 4242 {
		t.Fatalf("pool slot = %d after restart, want 4242", got)
	}
}

func TestRefcountsResetOnRecovery(t *testing.T) {
	rcfg := recovery.Config{Mode: recovery.ModePhoenix, UnsafeRegions: true, WatchdogTimeout: time.Second}
	h, c := boot(t, Config{Flavor: FlavorVarnish}, rcfg, 11)
	if err := h.RunRequests(3000); err != nil {
		t.Fatal(err)
	}
	// Inflate a refcount as if a request died holding a reference.
	var obj uint64
	c.dict.Iterate(func(_ []byte, val uint64) bool { obj = val; return false })
	as := c.rt.Proc().AS
	as.WriteU32(mem.VAddr(obj)+objOffRef, 3)
	c.ArmBug("VA1")
	if err := h.RunRequests(100); err != nil {
		t.Fatal(err)
	}
	if c.Stats().RefResets == 0 {
		t.Fatal("no refcounts were reset during recovery")
	}
	if as.ReadU32(mem.VAddr(obj)+objOffRef) != 0 {
		t.Fatal("inflated refcount survived recovery")
	}
}

func TestUnsafeRegionDuringInsert(t *testing.T) {
	h, c := boot(t, Config{}, recovery.Config{Mode: recovery.ModePhoenix, UnsafeRegions: true}, 12)
	if err := h.RunRequests(100); err != nil {
		t.Fatal(err)
	}
	c.rt.UnsafeBegin("cache")
	if _, reason := c.PlanRestart(c.rt, &kernel.CrashInfo{}, true); reason == "" {
		t.Fatal("mid-insert crash not flagged unsafe")
	}
	c.rt.UnsafeEnd("cache")
	if _, reason := c.PlanRestart(c.rt, &kernel.CrashInfo{}, true); reason != "" {
		t.Fatalf("safe point flagged: %s", reason)
	}
}

func TestPhoenixHitRateBeatsVanillaAfterCrash(t *testing.T) {
	rate := map[recovery.Mode]float64{}
	for _, mode := range []recovery.Mode{recovery.ModeVanilla, recovery.ModePhoenix} {
		rcfg := recovery.Config{Mode: mode, UnsafeRegions: mode == recovery.ModePhoenix, WatchdogTimeout: time.Second}
		h, c := boot(t, Config{}, rcfg, 13)
		if err := h.RunRequests(10000); err != nil {
			t.Fatal(err)
		}
		pre := c.Stats()
		c.ArmBug("VA1")
		// Measure the immediate post-crash window, before a cold cache has
		// had time to re-warm.
		if err := h.RunRequests(300); err != nil {
			t.Fatal(err)
		}
		post := c.Stats()
		rate[mode] = float64(post.Hits-pre.Hits) / float64(post.Gets-pre.Gets)
	}
	if rate[recovery.ModePhoenix] < rate[recovery.ModeVanilla]*1.5 {
		t.Fatalf("phoenix post-crash hit rate %.2f vs vanilla %.2f: no clear win",
			rate[recovery.ModePhoenix], rate[recovery.ModeVanilla])
	}
}

func TestObjectTTLExpiry(t *testing.T) {
	h, c := boot(t, Config{ObjectTTL: time.Second}, recovery.Config{Mode: recovery.ModeVanilla}, 40)
	url := workload.URLOf(3)
	req := &workload.Request{Op: workload.OpWebGet, Key: url, Size: 1024, Cacheable: true}
	c.Handle(req) // miss + insert
	ok, eff := c.Handle(req)
	if !ok || !eff {
		t.Fatal("fresh object missed")
	}
	h.M.Clock.Advance(2 * time.Second)
	ok, eff = c.Handle(req) // stale: revalidated (miss + reinsert)
	if !ok || eff {
		t.Fatal("stale object served as a hit")
	}
	if c.Stats().Stale != 1 {
		t.Fatalf("Stale = %d", c.Stats().Stale)
	}
	ok, eff = c.Handle(req) // fresh again
	if !ok || !eff {
		t.Fatal("refetched object missed")
	}
}

func TestObjectTTLSurvivesPhoenixRestart(t *testing.T) {
	rcfg := recovery.Config{Mode: recovery.ModePhoenix, UnsafeRegions: true, WatchdogTimeout: time.Second}
	h, c := boot(t, Config{ObjectTTL: time.Hour}, rcfg, 41)
	if err := h.RunRequests(3000); err != nil {
		t.Fatal(err)
	}
	c.ArmBug("VA1")
	if err := h.RunRequests(100); err != nil {
		t.Fatal(err)
	}
	if h.Stat.PhoenixRestarts != 1 {
		t.Fatalf("stats %+v", h.Stat)
	}
	// Deadlines are absolute simulated times: preserved objects expire on
	// schedule after the restart.
	h.M.Clock.Advance(2 * time.Hour)
	pre := c.Stats().Stale
	if err := h.RunRequests(500); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Stale == pre {
		t.Fatal("no preserved object expired after its TTL")
	}
}
