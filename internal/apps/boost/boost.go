// Package boost is the repository's XGBoost analogue: gradient-boosted
// regression stumps trained on a synthetic dataset, with every long-lived
// array — feature matrix, labels, predictions, gradients, and the model
// itself — living in simulated memory.
//
// Preserved state (Table 3): "gradients and model" plus the large
// calculation workspace that dominates memory and reinitialisation time
// (§4.2.1). Progress recovery uses phx_stage (§3.7) with the iteration split
// into the three hooks of Figure 8: predict, gradient, update. Builtin
// recovery checkpoints the model periodically and recomputes lost
// iterations; Vanilla recomputes from scratch; PHOENIX resumes inside the
// crashed iteration.
package boost

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"phoenix/internal/core"
	"phoenix/internal/faultinject"
	"phoenix/internal/heap"
	"phoenix/internal/kernel"
	"phoenix/internal/linker"
	"phoenix/internal/mem"
	"phoenix/internal/simds"
	"phoenix/internal/workload"
)

// Config parameterises training.
type Config struct {
	Samples  int
	Features int
	// MaxIters bounds the model array.
	MaxIters int
	// LearningRate scales each stump's contribution.
	LearningRate float64
	// WorkScale multiplies charged compute units, standing in for the tree
	// depth and boosting internals the analogue does not model (calibrates
	// per-iteration time toward the paper's multi-second iterations).
	WorkScale       int
	BootCost        time.Duration
	PhoenixBootCost time.Duration
}

func (c *Config) fill() {
	if c.Samples == 0 {
		c.Samples = 2000
	}
	if c.Features == 0 {
		c.Features = 8
	}
	if c.MaxIters == 0 {
		c.MaxIters = 512
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.3
	}
	if c.WorkScale == 0 {
		c.WorkScale = 100
	}
	if c.BootCost == 0 {
		c.BootCost = 2 * time.Second // dataset load + DMatrix construction
	}
	if c.PhoenixBootCost == 0 {
		c.PhoenixBootCost = 100 * time.Millisecond
	}
}

const ckptFile = "boost.ckpt"

// Header block layout (the recovery info points here):
//
//	 0: magic, 8: N, 16: F, 24: ntrees, 32: trees array ptr,
//	40: X ptr, 48: y ptr, 56: preds ptr, 64: grads ptr, 72: stage vault ptr,
//	80..103: stage tracker (core.StageTrackerSize)
const (
	hdrSize    = 104
	hdrMagic   = 0x626f6f7374 // "boost"
	offMagic   = 0
	offN       = 8
	offF       = 16
	offNTrees  = 24
	offTrees   = 32
	offX       = 40
	offY       = 48
	offPreds   = 56
	offGrads   = 64
	offVault   = 72
	offTracker = 80
)

// treeSize is one stump's serialized size: feature, threshold, left, right.
const treeSize = 32

// Trainer is the program.
type Trainer struct {
	cfg Config
	img *linker.Image
	inj *faultinject.Injector

	rt          *core.Runtime
	heap        *heap.Heap
	hdr         mem.VAddr
	stages      *core.Stages
	vault       *core.StageVault
	persistence bool

	// highWater is the most iterations ever completed — re-running earlier
	// iterations after a restart is recompute, not progress.
	highWater uint64

	armedBug  string
	armedComp string
	// crashMidStage makes the named stage body panic halfway through its
	// sample loop (tests of the rollback path).
	crashMidStage string
	stats         Stats
}

// Stats counts training activity.
type Stats struct {
	Iterations  uint64
	Recomputed  uint64
	Checkpoints uint64
	CkptLoads   uint64
}

// New creates the trainer.
func New(cfg Config, inj *faultinject.Injector) *Trainer {
	cfg.fill()
	b := linker.NewBuilder("boost", 0x0010_0000)
	b.Var("boost.params", 64, linker.SecData)
	tr := &Trainer{cfg: cfg, img: b.Build(), inj: inj}
	if inj != nil {
		inj.RegisterAll(Sites())
	}
	return tr
}

// Sites returns the injection sites in the training loop.
func Sites() []faultinject.Site {
	return []faultinject.Site{
		{ID: "boost.pred.apply", Func: "PredictRaw", Kind: faultinject.KindValue},
		{ID: "boost.grad.residual", Func: "GetGradient", Kind: faultinject.KindValue, Modifying: true},
		{ID: "boost.split.gain", Func: "FindBestSplit", Kind: faultinject.KindCond, Modifying: true},
		{ID: "boost.update.commit", Func: "CommitModel", Kind: faultinject.KindAction, Modifying: true},
		{ID: "boost.update.count", Func: "CommitModel", Kind: faultinject.KindValue, Modifying: true},
		{ID: "boost.iter.bound", Func: "UpdateOneIter", Kind: faultinject.KindCond},
	}
}

// Name implements recovery.App.
func (tr *Trainer) Name() string { return "boost" }

// Image implements recovery.App.
func (tr *Trainer) Image() *linker.Image { return tr.img }

// SetPersistence implements recovery.App.
func (tr *Trainer) SetPersistence(on bool) { tr.persistence = on }

// Stats returns counters.
func (tr *Trainer) Stats() Stats { return tr.stats }

// CompletedIters returns the committed iteration count from simulated
// memory.
func (tr *Trainer) CompletedIters() uint64 {
	return tr.rt.Proc().AS.ReadU64(tr.hdr + offNTrees)
}

// synthFeature deterministically generates sample i's feature f.
func synthFeature(i, f int) float64 {
	x := uint64(i)*0x9E3779B97F4A7C15 + uint64(f)*0xBF58476D1CE4E5B9 + 1
	x ^= x >> 31
	x *= 0x94D049BB133111EB
	x ^= x >> 29
	return float64(x%10000) / 10000.0
}

// synthLabel is the ground-truth function the model learns.
func synthLabel(i, features int) float64 {
	v := 0.0
	for f := 0; f < features; f++ {
		w := float64(f%3) - 1.0
		v += w * synthFeature(i, f)
	}
	return v + 0.05*math.Sin(float64(i))
}

func (tr *Trainer) f64(addr mem.VAddr) float64 {
	return math.Float64frombits(tr.rt.Proc().AS.ReadU64(addr))
}

func (tr *Trainer) setF64(addr mem.VAddr, v float64) {
	tr.rt.Proc().AS.WriteU64(addr, math.Float64bits(v))
}

// Main implements recovery.App.
func (tr *Trainer) Main(rt *core.Runtime) error {
	tr.rt = rt
	m := rt.Proc().Machine
	h, err := rt.OpenHeap(heap.Options{Name: "boost"})
	if err != nil {
		return fmt.Errorf("boost: open heap: %w", err)
	}
	tr.heap = h
	as := rt.Proc().AS

	if rt.IsRecoveryMode() {
		m.Clock.Advance(tr.cfg.PhoenixBootCost)
		hdr := rt.RecoveryInfo()
		if hdr == mem.NullPtr || as.ReadU64(hdr+offMagic) != hdrMagic {
			return fmt.Errorf("boost: recovery info invalid")
		}
		tr.hdr = hdr
		ctx := simds.NewCtx(h, m.Clock, m.Model)
		tr.vault = core.OpenStageVault(ctx, as.ReadPtr(hdr+offVault))
		tr.stages = rt.NewStages(hdr + offTracker)
		tr.repairComponents()
		rt.FinishRecovery(false) // workspace dominates memory: skip cleanup (§4.2.2)
		return nil
	}

	m.Clock.Advance(tr.cfg.BootCost)
	n, f := tr.cfg.Samples, tr.cfg.Features
	tr.hdr = h.Alloc(hdrSize)
	X := h.Alloc(n * f * 8)
	y := h.Alloc(n * 8)
	preds := h.Alloc(n * 8)
	grads := h.Alloc(n * 8)
	trees := h.Alloc(tr.cfg.MaxIters * 8)
	if tr.hdr == mem.NullPtr || X == mem.NullPtr || y == mem.NullPtr ||
		preds == mem.NullPtr || grads == mem.NullPtr || trees == mem.NullPtr {
		return fmt.Errorf("boost: workspace allocation failed")
	}
	as.WriteU64(tr.hdr+offMagic, hdrMagic)
	as.WriteU64(tr.hdr+offN, uint64(n))
	as.WriteU64(tr.hdr+offF, uint64(f))
	as.WriteU64(tr.hdr+offNTrees, 0)
	as.WritePtr(tr.hdr+offTrees, trees)
	as.WritePtr(tr.hdr+offX, X)
	as.WritePtr(tr.hdr+offY, y)
	as.WritePtr(tr.hdr+offPreds, preds)
	as.WritePtr(tr.hdr+offGrads, grads)
	as.Zero(trees, tr.cfg.MaxIters*8)

	for i := 0; i < n; i++ {
		for j := 0; j < f; j++ {
			tr.setF64(X+mem.VAddr((i*f+j)*8), synthFeature(i, j))
		}
		tr.setF64(y+mem.VAddr(i*8), synthLabel(i, f))
		tr.setF64(preds+mem.VAddr(i*8), 0)
		tr.setF64(grads+mem.VAddr(i*8), 0)
	}
	tr.charge(n * f)
	ctx := simds.NewCtx(h, m.Clock, m.Model)
	tr.vault = core.NewStageVault(ctx)
	as.WritePtr(tr.hdr+offVault, tr.vault.Addr())
	tr.stages = rt.NewStages(tr.hdr + offTracker)

	if tr.persistence {
		tr.loadCheckpoint(h)
	}
	rt.FinishRecovery(false)
	return nil
}

// charge advances the clock for units of compute, scaled by WorkScale.
func (tr *Trainer) charge(units int) {
	m := tr.rt.Proc().Machine
	m.Clock.Advance(time.Duration(units*tr.cfg.WorkScale) * m.Model.ComputePerUnit)
}

// Handle implements recovery.App: one request = one boosting iteration.
// effective=false marks recomputation of previously completed work.
func (tr *Trainer) Handle(req *workload.Request) (ok, effective bool) {
	if tr.armedComp != "" {
		comp := tr.armedComp
		tr.armedComp = ""
		tr.fireComponentCrash(comp)
	}
	if tr.armedBug != "" {
		bug := tr.armedBug
		tr.armedBug = ""
		tr.fireBug(bug)
	}
	as := tr.rt.Proc().AS
	it := tr.CompletedIters()
	if it >= uint64(tr.cfg.MaxIters) {
		return true, false // model full; nothing to do
	}
	inj := tr.inj
	if inj != nil && !inj.Cond("boost.iter.bound", true) {
		panic(&kernel.Crash{Sig: kernel.SIGALRM, Reason: "boost: iteration loop bound inverted"})
	}

	n := int(as.ReadU64(tr.hdr + offN))
	f := int(as.ReadU64(tr.hdr + offF))
	X := as.ReadPtr(tr.hdr + offX)
	y := as.ReadPtr(tr.hdr + offY)
	preds := as.ReadPtr(tr.hdr + offPreds)
	grads := as.ReadPtr(tr.hdr + offGrads)
	trees := as.ReadPtr(tr.hdr + offTrees)

	tr.stages.BeginIteration(it)

	// Stage 1: predict — fold the latest committed tree into preds. The
	// body mutates preds in place and is NOT idempotent, so the preserve
	// hook saves the pre-image and a mid-stage crash rolls back before the
	// re-run (otherwise the tree would be applied twice).
	tr.stages.Run("predict", func() {
		if it > 0 {
			tree := as.ReadPtr(trees + mem.VAddr((it-1)*8))
			feat := int(as.ReadU64(tree))
			thr := math.Float64frombits(as.ReadU64(tree + 8))
			left := math.Float64frombits(as.ReadU64(tree + 16))
			right := math.Float64frombits(as.ReadU64(tree + 24))
			for i := 0; i < n; i++ {
				if i == n/2 && tr.crashMidStage == "predict" {
					tr.crashMidStage = ""
					panic(&kernel.Crash{Sig: kernel.SIGSEGV, Reason: "boost: crash mid-predict"})
				}
				x := tr.f64(X + mem.VAddr((i*f+feat)*8))
				delta := left
				if x >= thr {
					delta = right
				}
				if inj != nil {
					delta = math.Float64frombits(inj.U64("boost.pred.apply", math.Float64bits(delta)))
				}
				tr.setF64(preds+mem.VAddr(i*8), tr.f64(preds+mem.VAddr(i*8))+tr.cfg.LearningRate*delta)
			}
		}
		tr.charge(n)
	}, func() {
		tr.vault.Save("preds", preds, n*8)
	}, func() {
		tr.vault.Restore("preds", preds)
	})

	// Stage 2: gradient — residuals for squared loss.
	tr.stages.Run("gradient", func() {
		for i := 0; i < n; i++ {
			g := tr.f64(y+mem.VAddr(i*8)) - tr.f64(preds+mem.VAddr(i*8))
			if inj != nil {
				g = math.Float64frombits(inj.U64("boost.grad.residual", math.Float64bits(g)))
			}
			tr.setF64(grads+mem.VAddr(i*8), g)
		}
		tr.charge(n)
	}, nil, nil)

	// Stage 3: update — fit a stump to the gradients and commit it into the
	// model slot for this iteration (idempotent on re-run).
	tr.stages.Run("update", func() {
		feat, thr, left, right := tr.fitStump(n, f, X, grads)
		tree := tr.heap.Alloc(treeSize)
		if tree == mem.NullPtr {
			panic(&kernel.Crash{Sig: kernel.SIGABRT, Reason: "boost: out of memory for tree"})
		}
		as.WriteU64(tree, uint64(feat))
		as.WriteU64(tree+8, math.Float64bits(thr))
		as.WriteU64(tree+16, math.Float64bits(left))
		as.WriteU64(tree+24, math.Float64bits(right))
		commit := func() { as.WritePtr(trees+mem.VAddr(it*8), tree) }
		if inj != nil {
			inj.Do("boost.update.commit", commit)
		} else {
			commit()
		}
		count := it + 1
		if inj != nil {
			count = inj.U64("boost.update.count", count)
		}
		as.WriteU64(tr.hdr+offNTrees, count)
		tr.charge(n * f)
	}, nil, nil)

	tr.stages.EndIteration()
	tr.stats.Iterations++

	done := tr.CompletedIters()
	if done <= tr.highWater {
		tr.stats.Recomputed++
		return true, false
	}
	tr.highWater = done
	return true, true
}

// fitStump finds the best single split on the gradients.
func (tr *Trainer) fitStump(n, f int, X, grads mem.VAddr) (feat int, thr, left, right float64) {
	bestGain := math.Inf(-1)
	feat, thr = 0, 0.5
	for j := 0; j < f; j++ {
		for _, cand := range []float64{0.2, 0.35, 0.5, 0.65, 0.8} {
			var sumL, sumR float64
			var nL, nR int
			for i := 0; i < n; i++ {
				g := tr.f64(grads + mem.VAddr(i*8))
				if tr.f64(X+mem.VAddr((i*f+j)*8)) < cand {
					sumL += g
					nL++
				} else {
					sumR += g
					nR++
				}
			}
			if nL == 0 || nR == 0 {
				continue
			}
			gain := sumL*sumL/float64(nL) + sumR*sumR/float64(nR)
			better := gain > bestGain
			if tr.inj != nil {
				better = tr.inj.Cond("boost.split.gain", better)
			}
			if better {
				bestGain = gain
				feat, thr = j, cand
				left, right = sumL/float64(nL), sumR/float64(nR)
			}
		}
	}
	return feat, thr, left, right
}

// RMSE computes the current training error (used by the progress figure).
func (tr *Trainer) RMSE() float64 {
	as := tr.rt.Proc().AS
	n := int(as.ReadU64(tr.hdr + offN))
	y := as.ReadPtr(tr.hdr + offY)
	preds := as.ReadPtr(tr.hdr + offPreds)
	var sum float64
	for i := 0; i < n; i++ {
		d := tr.f64(y+mem.VAddr(i*8)) - tr.f64(preds+mem.VAddr(i*8))
		sum += d * d
	}
	return math.Sqrt(sum / float64(n))
}

// Checkpoint implements recovery.App: serialize the committed model.
func (tr *Trainer) Checkpoint() {
	if !tr.persistence {
		return
	}
	m := tr.rt.Proc().Machine
	as := tr.rt.Proc().AS
	nt := tr.CompletedIters()
	trees := as.ReadPtr(tr.hdr + offTrees)
	buf := make([]byte, 8+int(nt)*treeSize)
	binary.LittleEndian.PutUint64(buf, nt)
	for i := uint64(0); i < nt; i++ {
		tree := as.ReadPtr(trees + mem.VAddr(i*8))
		for w := 0; w < 4; w++ {
			binary.LittleEndian.PutUint64(buf[8+int(i)*treeSize+w*8:], as.ReadU64(tree+mem.VAddr(w*8)))
		}
	}
	m.Clock.Advance(time.Duration(len(buf)) * m.Model.MarshalPerByte)
	m.Disk.WriteFile(ckptFile, buf)
	tr.stats.Checkpoints++
}

// loadCheckpoint restores the model and replays it over the workspace, then
// positions the iteration counter so lost iterations are recomputed.
func (tr *Trainer) loadCheckpoint(h *heap.Heap) {
	m := tr.rt.Proc().Machine
	buf, ok := m.Disk.ReadFile(ckptFile)
	if !ok || len(buf) < 8 {
		return
	}
	as := tr.rt.Proc().AS
	nt := binary.LittleEndian.Uint64(buf)
	if len(buf) < 8+int(nt)*treeSize {
		panic(&kernel.Crash{Sig: kernel.SIGABRT, Reason: "boost: corrupt checkpoint"})
	}
	m.Clock.Advance(time.Duration(len(buf)) * m.Model.UnmarshalPerByte)
	n := int(as.ReadU64(tr.hdr + offN))
	f := int(as.ReadU64(tr.hdr + offF))
	X := as.ReadPtr(tr.hdr + offX)
	preds := as.ReadPtr(tr.hdr + offPreds)
	trees := as.ReadPtr(tr.hdr + offTrees)
	for i := uint64(0); i < nt; i++ {
		tree := h.Alloc(treeSize)
		if tree == mem.NullPtr {
			panic(&kernel.Crash{Sig: kernel.SIGABRT, Reason: "boost: out of memory loading checkpoint"})
		}
		for w := 0; w < 4; w++ {
			as.WriteU64(tree+mem.VAddr(w*8), binary.LittleEndian.Uint64(buf[8+int(i)*treeSize+w*8:]))
		}
		as.WritePtr(trees+mem.VAddr(i*8), tree)
	}
	as.WriteU64(tr.hdr+offNTrees, nt)
	// Rebuild predictions by applying trees 0..nt-2 (the predict stage of
	// iteration nt will fold in tree nt-1).
	for i := uint64(0); i+1 < nt; i++ {
		tree := as.ReadPtr(trees + mem.VAddr(i*8))
		feat := int(as.ReadU64(tree))
		thr := math.Float64frombits(as.ReadU64(tree + 8))
		left := math.Float64frombits(as.ReadU64(tree + 16))
		right := math.Float64frombits(as.ReadU64(tree + 24))
		for s := 0; s < n; s++ {
			x := tr.f64(X + mem.VAddr((s*f+feat)*8))
			d := left
			if x >= thr {
				d = right
			}
			tr.setF64(preds+mem.VAddr(s*8), tr.f64(preds+mem.VAddr(s*8))+tr.cfg.LearningRate*d)
		}
	}
	// The next predict stage expects to fold tree nt-1; align the tracker.
	as.WriteU64(tr.hdr+offTracker, nt)
	as.WriteU64(tr.hdr+offTracker+8, 0)
	tr.charge(n * int(nt))
	tr.stats.CkptLoads++
}

// PlanRestart implements recovery.App: compute apps rely on stage-based
// progress recovery rather than unsafe regions (§3.7); the whole heap —
// workspace, model, tracker — is preserved.
func (tr *Trainer) PlanRestart(rt *core.Runtime, ci *kernel.CrashInfo, useUnsafe bool) (core.RestartPlan, string) {
	return core.RestartPlan{InfoAddr: tr.hdr, WithHeap: true}, ""
}

// Reattach implements recovery.App (CRIU restore).
func (tr *Trainer) Reattach(rt *core.Runtime) {
	tr.rt = rt
	h, err := heap.Attach(rt.Proc().AS, core.DefaultHeapBase, heap.Options{Name: "boost"})
	if err != nil {
		panic(&kernel.Crash{Sig: kernel.SIGABRT, Reason: "boost: criu reattach: " + err.Error()})
	}
	tr.heap = h
	tr.stages = rt.NewStages(tr.hdr + offTracker)
}

// Dump implements recovery.App: the committed model.
func (tr *Trainer) Dump() core.StateDump {
	out := core.StateDump{}
	as := tr.rt.Proc().AS
	nt := tr.CompletedIters()
	trees := as.ReadPtr(tr.hdr + offTrees)
	out["ntrees"] = fmt.Sprint(nt)
	for i := uint64(0); i < nt; i++ {
		tree := as.ReadPtr(trees + mem.VAddr(i*8))
		out[fmt.Sprintf("tree-%04d", i)] = fmt.Sprintf("%d %x %x %x",
			as.ReadU64(tree), as.ReadU64(tree+8), as.ReadU64(tree+16), as.ReadU64(tree+24))
	}
	return out
}

// CrossCheck implements recovery.App: not wired for the compute apps
// (Table 4 lists cross-check only for Redis and LevelDB).
func (tr *Trainer) CrossCheck(rt *core.Runtime) (core.CrossCheckSpec, bool) {
	return core.CrossCheckSpec{}, false
}

// --- real-bug scenario (Table 5, X1) ---

// ArmBug schedules a bug: X1 is the XGBoost memory-leak issue (#3579) —
// per-iteration buffers are never released until allocation fails.
func (tr *Trainer) ArmBug(name string) { tr.armedBug = name }

func (tr *Trainer) fireBug(name string) {
	switch name {
	case "X1":
		for i := 0; i < 8; i++ {
			if tr.heap.Alloc(1<<20) == mem.NullPtr {
				break
			}
		}
		panic(&kernel.Crash{Sig: kernel.SIGABRT, Reason: "boost: host memory exhausted (leaked DMatrix buffers)"})
	default:
		panic(fmt.Sprintf("boost: unknown bug %q", name))
	}
}

// Stages exposes the tracker (tests).
func (tr *Trainer) Stages() *core.Stages { return tr.stages }
