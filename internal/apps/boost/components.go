package boost

import (
	"fmt"
	"math"

	"phoenix/internal/kernel"
	"phoenix/internal/mem"
	"phoenix/internal/recovery"
)

// Component-level recovery for the trainer. The workspace splits into two
// rebootable components below the process:
//
//   - "preds": the prediction vector. Its contents are a pure function of
//     the committed model (fold trees 0..K-1 in order), so a reboot zeroes
//     it and re-applies the trees — the same recompute loadCheckpoint uses.
//   - "grads": the residual vector, derived from preds (grads = y - preds),
//     so it depends on "preds" and cascades when preds reboots.
//
// The fold count K is read off the stage tracker: once the predict stage of
// iteration it has committed (stage >= 1), preds holds trees 0..it-1; before
// it (stage == 0 with no pending pre-image), preds holds trees 0..it-2. A
// crash mid-predict leaves the preserve flag set and preds mid-fold — in that
// window the vector is not a function of committed state, so verification
// skips it (the stage vault's restore hook rolls it back on re-run).

// predsTreeCount returns how many trees are folded into preds, or ok=false
// when the predict stage is mid-flight and the count is indeterminate.
func (tr *Trainer) predsTreeCount() (k uint64, ok bool) {
	as := tr.rt.Proc().AS
	iter := as.ReadU64(tr.hdr + offTracker)
	stage := as.ReadU64(tr.hdr + offTracker + 8)
	flag := as.ReadU64(tr.hdr + offTracker + 16)
	if stage >= 1 {
		return iter, true
	}
	if flag != 0 {
		return 0, false
	}
	if iter == 0 {
		return 0, true
	}
	return iter - 1, true
}

// recomputePreds folds trees 0..k-1 into a fresh Go-side buffer, using the
// same nesting (tree-major, sample-minor) as the incremental predict stages
// so the float accumulation is bit-exact.
func (tr *Trainer) recomputePreds(k uint64) []float64 {
	as := tr.rt.Proc().AS
	n := int(as.ReadU64(tr.hdr + offN))
	f := int(as.ReadU64(tr.hdr + offF))
	X := as.ReadPtr(tr.hdr + offX)
	trees := as.ReadPtr(tr.hdr + offTrees)
	out := make([]float64, n)
	for i := uint64(0); i < k; i++ {
		tree := as.ReadPtr(trees + mem.VAddr(i*8))
		feat := int(as.ReadU64(tree))
		thr := math.Float64frombits(as.ReadU64(tree + 8))
		left := math.Float64frombits(as.ReadU64(tree + 16))
		right := math.Float64frombits(as.ReadU64(tree + 24))
		for s := 0; s < n; s++ {
			x := tr.f64(X + mem.VAddr((s*f+feat)*8))
			d := left
			if x >= thr {
				d = right
			}
			out[s] += tr.cfg.LearningRate * d
		}
	}
	return out
}

// Components implements recovery.ComponentApp.
func (tr *Trainer) Components() []recovery.Component {
	return []recovery.Component{
		{Name: "preds"},
		{Name: "grads", Deps: []string{"preds"}},
	}
}

// RebootComponent implements recovery.ComponentApp.
func (tr *Trainer) RebootComponent(name string) (int, error) {
	as := tr.rt.Proc().AS
	if as.ReadU64(tr.hdr+offMagic) != hdrMagic {
		return 0, fmt.Errorf("boost: header magic corrupt")
	}
	n := int(as.ReadU64(tr.hdr + offN))
	preds := as.ReadPtr(tr.hdr + offPreds)
	grads := as.ReadPtr(tr.hdr + offGrads)
	switch name {
	case "preds":
		k, ok := tr.predsTreeCount()
		if !ok {
			// Mid-predict: rebuild the pre-fold image; the stage vault's
			// restore hook reinstates the same bytes before the re-run.
			iter := as.ReadU64(tr.hdr + offTracker)
			if iter > 0 {
				k = iter - 1
			}
		}
		want := tr.recomputePreds(k)
		for i := 0; i < n; i++ {
			tr.setF64(preds+mem.VAddr(i*8), want[i])
		}
		return n, nil
	case "grads":
		for i := 0; i < n; i++ {
			tr.setF64(grads+mem.VAddr(i*8),
				tr.f64(tr.rt.Proc().AS.ReadPtr(tr.hdr+offY)+mem.VAddr(i*8))-tr.f64(preds+mem.VAddr(i*8)))
		}
		return n, nil
	default:
		return 0, fmt.Errorf("boost: unknown component %q", name)
	}
}

// VerifyComponents implements recovery.ComponentApp: preds must be the exact
// fold of the committed trees whenever the fold count is determinate, and
// grads must be the exact residuals once the gradient stage of the current
// iteration has committed (or still pristine/consistent at boot-like states).
func (tr *Trainer) VerifyComponents() error {
	as := tr.rt.Proc().AS
	if as.ReadU64(tr.hdr+offMagic) != hdrMagic {
		return fmt.Errorf("boost: header magic corrupt")
	}
	n := int(as.ReadU64(tr.hdr + offN))
	f := int(as.ReadU64(tr.hdr + offF))
	nt := as.ReadU64(tr.hdr + offNTrees)
	if nt > uint64(tr.cfg.MaxIters) {
		return fmt.Errorf("boost: ntrees %d exceeds MaxIters %d", nt, tr.cfg.MaxIters)
	}
	trees := as.ReadPtr(tr.hdr + offTrees)
	for i := uint64(0); i < nt; i++ {
		tree := as.ReadPtr(trees + mem.VAddr(i*8))
		if tree == mem.NullPtr {
			return fmt.Errorf("boost: committed tree %d is null", i)
		}
		if feat := as.ReadU64(tree); feat >= uint64(f) {
			return fmt.Errorf("boost: tree %d split feature %d out of range", i, feat)
		}
	}
	preds := as.ReadPtr(tr.hdr + offPreds)
	grads := as.ReadPtr(tr.hdr + offGrads)
	y := as.ReadPtr(tr.hdr + offY)
	stage := as.ReadU64(tr.hdr + offTracker + 8)
	k, determinate := tr.predsTreeCount()
	if determinate {
		if k > nt {
			return fmt.Errorf("boost: tracker implies %d folded trees but only %d committed", k, nt)
		}
		want := tr.recomputePreds(k)
		for i := 0; i < n; i++ {
			got := tr.f64(preds + mem.VAddr(i*8))
			if math.Float64bits(got) != math.Float64bits(want[i]) {
				return fmt.Errorf("boost: preds[%d] = %v, want fold of %d trees = %v (dangling prediction state)", i, got, k, want[i])
			}
		}
	}
	for i := 0; i < n; i++ {
		g := math.Float64bits(tr.f64(grads + mem.VAddr(i*8)))
		res := math.Float64bits(tr.f64(y+mem.VAddr(i*8)) - tr.f64(preds+mem.VAddr(i*8)))
		switch {
		case stage >= 2:
			// Gradient stage committed this iteration: exact residuals.
			if g != res {
				return fmt.Errorf("boost: grads[%d] inconsistent with y-preds after gradient stage (dangling residual state)", i)
			}
		case stage == 0 && determinate:
			// Boot/checkpoint/pre-predict boundary: pristine zeros or the
			// previous iteration's residuals (which equal y-preds here,
			// since preds has not folded a new tree since they were taken).
			if g != 0 && g != res {
				return fmt.Errorf("boost: grads[%d] neither pristine nor consistent with preds (dangling residual state)", i)
			}
		}
	}
	return nil
}

// ArmComponentCrash implements recovery.ComponentApp: the next request
// scribbles on the named component's state and panics with the crash
// attributed to it.
func (tr *Trainer) ArmComponentCrash(name string) { tr.armedComp = name }

func (tr *Trainer) fireComponentCrash(comp string) {
	as := tr.rt.Proc().AS
	switch comp {
	case "preds":
		preds := as.ReadPtr(tr.hdr + offPreds)
		tr.setF64(preds, tr.f64(preds)+0.5)
	case "grads":
		grads := as.ReadPtr(tr.hdr + offGrads)
		tr.setF64(grads, tr.f64(grads)+0.5)
	default:
		panic(fmt.Sprintf("boost: unknown component %q", comp))
	}
	panic(&kernel.Crash{Sig: kernel.SIGABRT, Reason: "boost: fault in component " + comp, Component: comp})
}

// Rewindable implements recovery.RewindableApp: an iteration touches only
// simulated memory (the checkpoint file is written by Checkpoint, outside the
// request path), so a domain discard rolls the whole request back.
func (tr *Trainer) Rewindable() bool { return true }

// repairComponents runs during PHOENIX recovery: a component scribble
// survives a process restart byte-for-byte (restart preserves the workspace),
// so recovery recomputes the derived vectors and fixes any slot that
// disagrees. Writes happen only on mismatch — a clean recovery is
// byte-identical and clock-identical to one without this pass.
func (tr *Trainer) repairComponents() {
	as := tr.rt.Proc().AS
	n := int(as.ReadU64(tr.hdr + offN))
	k, determinate := tr.predsTreeCount()
	if !determinate || k > as.ReadU64(tr.hdr+offNTrees) {
		return
	}
	preds := as.ReadPtr(tr.hdr + offPreds)
	grads := as.ReadPtr(tr.hdr + offGrads)
	y := as.ReadPtr(tr.hdr + offY)
	want := tr.recomputePreds(k)
	repaired := 0
	for i := 0; i < n; i++ {
		if math.Float64bits(tr.f64(preds+mem.VAddr(i*8))) != math.Float64bits(want[i]) {
			tr.setF64(preds+mem.VAddr(i*8), want[i])
			repaired++
		}
	}
	stage := as.ReadU64(tr.hdr + offTracker + 8)
	for i := 0; i < n; i++ {
		g := math.Float64bits(tr.f64(grads + mem.VAddr(i*8)))
		res := tr.f64(y+mem.VAddr(i*8)) - tr.f64(preds+mem.VAddr(i*8))
		consistent := g == math.Float64bits(res)
		pristineOK := stage < 2 && g == 0
		if !consistent && !pristineOK {
			tr.setF64(grads+mem.VAddr(i*8), res)
			repaired++
		}
	}
	if repaired > 0 {
		tr.charge(repaired)
	}
}
