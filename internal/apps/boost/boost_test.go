package boost

import (
	"testing"
	"time"

	"phoenix/internal/kernel"
	"phoenix/internal/recovery"
	"phoenix/internal/workload"
)

// iterGen produces compute "requests" (one per boosting iteration).
type iterGen struct{ seq uint64 }

func (g *iterGen) Next() *workload.Request {
	g.seq++
	return &workload.Request{Seq: g.seq, Op: workload.OpRead, Key: "iter"}
}

func (g *iterGen) Clone(seed int64) workload.Generator { return &iterGen{} }

func boot(t *testing.T, cfg Config, rcfg recovery.Config, seed int64) (*recovery.Harness, *Trainer) {
	t.Helper()
	m := kernel.NewMachine(seed)
	tr := New(cfg, nil)
	h := recovery.NewHarness(m, rcfg, tr, &iterGen{}, nil)
	if err := h.Boot(); err != nil {
		t.Fatal(err)
	}
	return h, tr
}

func smallCfg() Config {
	return Config{Samples: 400, Features: 4, MaxIters: 64, WorkScale: 10}
}

func TestTrainingConverges(t *testing.T) {
	h, tr := boot(t, smallCfg(), recovery.Config{Mode: recovery.ModeVanilla}, 1)
	if err := h.RunRequests(5); err != nil {
		t.Fatal(err)
	}
	early := tr.RMSE()
	if err := h.RunRequests(30); err != nil {
		t.Fatal(err)
	}
	late := tr.RMSE()
	if late >= early {
		t.Fatalf("no convergence: rmse %.4f -> %.4f", early, late)
	}
	if tr.CompletedIters() != 35 {
		t.Fatalf("CompletedIters = %d", tr.CompletedIters())
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	h, tr := boot(t, smallCfg(), recovery.Config{Mode: recovery.ModeBuiltin, CheckpointInterval: time.Hour}, 2)
	if err := h.RunRequests(10); err != nil {
		t.Fatal(err)
	}
	tr.Checkpoint()
	before := tr.Dump()
	// Crash: builtin restart loads the checkpoint.
	tr.ArmBug("X1")
	if err := h.RunRequests(1); err != nil {
		t.Fatal(err)
	}
	if tr.Stats().CkptLoads != 1 {
		t.Fatalf("checkpoint not loaded: %+v", tr.Stats())
	}
	after := tr.Dump()
	if after["ntrees"] != before["ntrees"] {
		t.Fatalf("model size after load: %s vs %s", after["ntrees"], before["ntrees"])
	}
	for k, v := range before {
		if after[k] != v {
			t.Fatalf("model tree %s differs after checkpoint load", k)
		}
	}
}

func TestVanillaRecomputesFromScratch(t *testing.T) {
	h, tr := boot(t, smallCfg(), recovery.Config{Mode: recovery.ModeVanilla}, 3)
	if err := h.RunRequests(20); err != nil {
		t.Fatal(err)
	}
	tr.ArmBug("X1")
	if err := h.RunRequests(1); err != nil {
		t.Fatal(err)
	}
	if tr.CompletedIters() > 1 {
		t.Fatalf("vanilla restart kept %d iterations", tr.CompletedIters())
	}
	// Re-running old iterations counts as recompute, not progress.
	if err := h.RunRequests(10); err != nil {
		t.Fatal(err)
	}
	if tr.Stats().Recomputed == 0 {
		t.Fatal("recomputed iterations not flagged")
	}
}

func TestPhoenixResumesMidTraining(t *testing.T) {
	rcfg := recovery.Config{Mode: recovery.ModePhoenix, WatchdogTimeout: time.Second}
	h, tr := boot(t, smallCfg(), rcfg, 4)
	if err := h.RunRequests(20); err != nil {
		t.Fatal(err)
	}
	before := tr.CompletedIters()
	tr.ArmBug("X1")
	if err := h.RunRequests(5); err != nil {
		t.Fatal(err)
	}
	if h.Stat.PhoenixRestarts != 1 {
		t.Fatalf("stats: %+v", h.Stat)
	}
	if tr.CompletedIters() < before {
		t.Fatalf("phoenix lost progress: %d -> %d", before, tr.CompletedIters())
	}
	if tr.Stats().Recomputed != 0 {
		t.Fatalf("phoenix should not recompute: %+v", tr.Stats())
	}
}

func TestPhoenixModelMatchesUninterrupted(t *testing.T) {
	// Ground truth: 30 iterations with no fault.
	hRef, trRef := boot(t, smallCfg(), recovery.Config{Mode: recovery.ModeVanilla}, 5)
	if err := hRef.RunRequests(30); err != nil {
		t.Fatal(err)
	}
	want := trRef.Dump()

	// Faulted run with a PHOENIX recovery in the middle.
	rcfg := recovery.Config{Mode: recovery.ModePhoenix, WatchdogTimeout: time.Second}
	h, tr := boot(t, smallCfg(), rcfg, 5)
	if err := h.RunRequests(15); err != nil {
		t.Fatal(err)
	}
	tr.ArmBug("X1")
	if err := h.RunRequests(16); err != nil { // crash request + remaining 15
		t.Fatal(err)
	}
	got := tr.Dump()
	if got["ntrees"] != want["ntrees"] {
		t.Fatalf("ntrees %s vs %s", got["ntrees"], want["ntrees"])
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("tree %s diverged after phoenix recovery", k)
		}
	}
}

func TestStageReplayWithinIteration(t *testing.T) {
	// Crash inside the update stage of iteration 7; PHOENIX must resume at
	// that stage, not redo the whole run.
	m := kernel.NewMachine(6)
	tr := New(smallCfg(), nil)
	rcfg := recovery.Config{Mode: recovery.ModePhoenix, WatchdogTimeout: time.Second}
	h := recovery.NewHarness(m, rcfg, tr, &iterGen{}, nil)
	if err := h.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := h.RunRequests(7); err != nil {
		t.Fatal(err)
	}
	tr.ArmBug("X1") // fires at the top of iteration 7, before its stages
	if err := h.RunRequests(2); err != nil {
		t.Fatal(err)
	}
	if tr.CompletedIters() < 8 {
		t.Fatalf("iteration 7 not completed after recovery: %d", tr.CompletedIters())
	}
}

func TestCRIUResumesFromSnapshot(t *testing.T) {
	rcfg := recovery.Config{Mode: recovery.ModeCRIU, CheckpointInterval: time.Millisecond, WatchdogTimeout: time.Second}
	h, tr := boot(t, smallCfg(), rcfg, 7)
	if err := h.RunRequests(20); err != nil {
		t.Fatal(err)
	}
	tr.ArmBug("X1")
	if err := h.RunRequests(2); err != nil {
		t.Fatal(err)
	}
	if h.Stat.OtherRestarts != 1 {
		t.Fatalf("stats: %+v", h.Stat)
	}
	// Snapshot-time progress retained (snapshots are taken every
	// millisecond of simulated time, i.e. at least once per iteration).
	if tr.CompletedIters() < 15 {
		t.Fatalf("criu lost too much progress: %d", tr.CompletedIters())
	}
}

func TestDumpDeterministic(t *testing.T) {
	_, tr1 := boot(t, smallCfg(), recovery.Config{Mode: recovery.ModeVanilla}, 8)
	_, tr2 := boot(t, smallCfg(), recovery.Config{Mode: recovery.ModeVanilla}, 8)
	for i := 0; i < 10; i++ {
		tr1.Handle(&workload.Request{})
		tr2.Handle(&workload.Request{})
	}
	d1, d2 := tr1.Dump(), tr2.Dump()
	if len(d1) != len(d2) {
		t.Fatal("dumps differ in size")
	}
	for k, v := range d1 {
		if d2[k] != v {
			t.Fatalf("nondeterministic training at %s", k)
		}
	}
}

// TestMidPredictCrashRollsBack is the double-apply regression test: a crash
// halfway through the (non-idempotent) predict stage must roll preds back to
// the stage vault's pre-image before re-running, so the recovered model is
// bit-identical to an uninterrupted run.
func TestMidPredictCrashRollsBack(t *testing.T) {
	hRef, trRef := boot(t, smallCfg(), recovery.Config{Mode: recovery.ModeVanilla}, 50)
	if err := hRef.RunRequests(20); err != nil {
		t.Fatal(err)
	}
	want := trRef.Dump()
	wantRMSE := trRef.RMSE()

	rcfg := recovery.Config{Mode: recovery.ModePhoenix, WatchdogTimeout: time.Second}
	h, tr := boot(t, smallCfg(), rcfg, 50)
	if err := h.RunRequests(10); err != nil {
		t.Fatal(err)
	}
	tr.crashMidStage = "predict"
	if err := h.RunRequests(11); err != nil { // the crashed request + 10 live
		t.Fatal(err)
	}
	if h.Stat.PhoenixRestarts != 1 {
		t.Fatalf("stats %+v", h.Stat)
	}
	got := tr.Dump()
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("model diverged at %s after mid-predict crash", k)
		}
	}
	if got["ntrees"] != want["ntrees"] {
		t.Fatalf("ntrees %s vs %s", got["ntrees"], want["ntrees"])
	}
	if gotRMSE := tr.RMSE(); gotRMSE != wantRMSE {
		t.Fatalf("rmse %.9f vs %.9f: predictions double-applied", gotRMSE, wantRMSE)
	}
}
