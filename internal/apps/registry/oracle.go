package registry

// This file defines the invariant-oracle contract the exploration engine
// (internal/explore) checks after every randomized fault schedule. The types
// live here rather than in explore because an oracle is a statement about an
// *application's* semantics — what durability, staleness, and recovery
// accounting mean for kvstore are registry knowledge, while explore only
// knows how to generate schedules and shrink failures. Registry already
// imports recovery and cluster, so the observation can carry both a
// single-harness run and a cluster report without a cycle.

import (
	"fmt"
	"strings"

	"phoenix/internal/cluster"
	"phoenix/internal/recovery"
	"phoenix/internal/shard"
)

// TraceStep records one served request of a single-harness run, in order.
type TraceStep struct {
	Index     int    `json:"index"`
	Op        string `json:"op"`
	Key       string `json:"key"`
	OK        bool   `json:"ok"`
	Effective bool   `json:"effective"`
}

// RecoveryRecord classifies one crash-recovery episode. CleanPreserve means
// the episode was exactly one PHOENIX restart with zero fallbacks of any
// kind — the only recovery class that preserves in-memory state.
type RecoveryRecord struct {
	// AtStep is the trace index the crash preceded: the recovery ran after
	// Steps[AtStep-1] and before Steps[AtStep].
	AtStep        int    `json:"at_step"`
	CleanPreserve bool   `json:"clean_preserve"`
	Level         string `json:"level"`
	// Fallbacks is the episode's total fallback count (unsafe, grace, cross,
	// recovery-fault, integrity) plus plain restarts and boot failures.
	Fallbacks int `json:"fallbacks"`
	// Escalated and Deescalated report ladder movement during the episode.
	Escalated   bool `json:"escalated"`
	Deescalated bool `json:"deescalated"`
}

// Observation is everything an oracle may judge about one schedule run. A
// single-harness run fills the trace/stats/counters fields; a cluster run
// fills Cluster and leaves the rest zero.
type Observation struct {
	App               string
	Seed              int64
	ChecksumsDisabled bool
	Steps             []TraceStep
	Recoveries        []RecoveryRecord
	// CorruptionsFired counts armed kernel.preserve.corrupt bit flips that
	// actually struck a preserved frame; OpFaultsFired counts fired
	// operation-failure faults on the preserve path.
	CorruptionsFired int
	OpFaultsFired    int
	Stats            recovery.Stats
	Counters         map[string]int64
	FinalLevel       recovery.Level
	// Floor is the ladder rung the harness started at and may de-escalate
	// back to (LevelRewind when rewind domains are on, LevelPhoenix
	// otherwise); Domains reports whether requests ran inside rewind domains.
	Floor   recovery.Level
	Domains bool
	// ComponentViolations carries failures of the application's own
	// VerifyComponents invariant (dangling cross-component state), gathered
	// by the engine after every recovery episode.
	ComponentViolations []string
	// Terminated carries the driver's terminal error (retry-budget
	// exhaustion) when the run stopped early; empty otherwise.
	Terminated string
	Cluster    *cluster.Report
	// Shard carries the sharded-fabric report when the schedule ran in shard
	// mode (kills plus live migrations under open-loop traffic).
	Shard *shard.Report
}

// Oracle is one invariant checked against a completed run. Check returns one
// human-readable violation string per broken invariant; an empty slice means
// the run upheld it. Oracles must be deterministic pure functions of the
// observation: the exploration engine shrinks schedules by re-running them
// and comparing the set of violated oracle names.
type Oracle interface {
	Name() string
	Check(o *Observation) []string
}

// OraclesFor returns the invariants applicable to one application in one
// mode, in deterministic order. The durability oracle only applies to the
// storage apps: caches evict at will and the compute apps have no
// key-value semantics.
func OraclesFor(app string, clusterMode bool) []Oracle {
	if clusterMode {
		return []Oracle{clusterOracle{}}
	}
	out := []Oracle{accountingOracle{}, ladderOracle{}}
	if app == "kvstore" || app == "lsmdb" {
		out = append(out, durabilityOracle{})
	}
	out = append(out, componentOracle{})
	return out
}

// --- accounting oracle ---

// accountingOracle cross-checks the kernel's machine-wide recovery counters
// against the driver's per-harness stats and the fired-fault ground truth.
// Its sharpest clause is the silent-corruption predicate: every bit flip
// injected into a preserved frame must surface as a checksum mismatch — if
// one committed silently, acknowledged state survived corrupted and the
// whole preservation contract is void.
type accountingOracle struct{}

func (accountingOracle) Name() string { return "accounting" }

func (accountingOracle) Check(o *Observation) []string {
	var v []string
	c := o.Counters
	add := func(format string, args ...interface{}) { v = append(v, fmt.Sprintf(format, args...)) }

	if int64(o.CorruptionsFired) > c["checksum_mismatches"] {
		add("silent corruption: %d bit flips fired against preserved frames but only %d checksum mismatches counted",
			o.CorruptionsFired, c["checksum_mismatches"])
	}
	if c["integrity_fallbacks"] != int64(o.Stats.IntegrityFallbacks) {
		add("integrity fallbacks disagree: counters=%d stats=%d", c["integrity_fallbacks"], o.Stats.IntegrityFallbacks)
	}
	if c["recovery_fault_fallbacks"] != int64(o.Stats.RecoveryFaultFallbacks) {
		add("recovery-fault fallbacks disagree: counters=%d stats=%d", c["recovery_fault_fallbacks"], o.Stats.RecoveryFaultFallbacks)
	}
	if o.OpFaultsFired != o.Stats.RecoveryFaultFallbacks {
		add("op faults fired (%d) != recovery-fault fallbacks (%d): a failed preserve was not contained",
			o.OpFaultsFired, o.Stats.RecoveryFaultFallbacks)
	}
	if c["checksum_mismatches"] != c["integrity_fallbacks"] {
		add("checksum mismatches (%d) != integrity fallbacks (%d): a detection was not contained",
			c["checksum_mismatches"], c["integrity_fallbacks"])
	}
	if c["incremental_audit_divergences"] > 0 {
		add("incremental verification unsound: %d commits passed the delta checksum walk but failed the full walk",
			c["incremental_audit_divergences"])
	}
	if c["checksums_reused"] > 0 && c["preserves_committed"] == 0 {
		add("checksum reuse (%d) without any committed preserve: the delta baseline leaked through a failed commit",
			c["checksums_reused"])
	}
	if c["preserves_committed"] > c["preserves_staged"] {
		add("preserves committed (%d) exceed staged (%d)", c["preserves_committed"], c["preserves_staged"])
	}
	if c["preserves_aborted"] < c["preserves_staged"]-c["preserves_committed"] {
		add("aborted preserves (%d) below staged-minus-committed (%d-%d)",
			c["preserves_aborted"], c["preserves_staged"], c["preserves_committed"])
	}
	if int64(o.Stats.PhoenixRestarts) != c["preserves_committed"] {
		add("phoenix restarts (%d) != committed preserves (%d)", o.Stats.PhoenixRestarts, c["preserves_committed"])
	}
	if c["breaker_trips"] != int64(o.Stats.BreakerTrips) || c["escalations"] != int64(o.Stats.Escalations) ||
		c["deescalations"] != int64(o.Stats.Deescalations) {
		add("ladder counters disagree with stats: trips %d/%d esc %d/%d deesc %d/%d",
			c["breaker_trips"], o.Stats.BreakerTrips, c["escalations"], o.Stats.Escalations,
			c["deescalations"], o.Stats.Deescalations)
	}
	return v
}

// --- ladder oracle ---

// ladderOracle checks supervisor monotonicity from the event log: every
// escalation steps exactly one rung down, every de-escalation exactly one
// rung up, the walk stays inside [phoenix, vanilla], and the final rung of
// the walk matches the harness's reported level.
type ladderOracle struct{}

func (ladderOracle) Name() string { return "ladder" }

func parseLevel(s string) (recovery.Level, bool) {
	for l := recovery.LevelRewind; l <= recovery.LevelVanilla; l++ {
		if l.String() == s {
			return l, true
		}
	}
	return 0, false
}

func (ladderOracle) Check(o *Observation) []string {
	var v []string
	add := func(format string, args ...interface{}) { v = append(v, fmt.Sprintf(format, args...)) }

	if o.Stats.Escalations != o.Stats.BreakerTrips {
		add("escalations (%d) != breaker trips (%d)", o.Stats.Escalations, o.Stats.BreakerTrips)
	}
	if o.Stats.Deescalations > o.Stats.Escalations {
		add("more de-escalations (%d) than escalations (%d)", o.Stats.Deescalations, o.Stats.Escalations)
	}
	// The event walk needs the full log; a compacted one lost its prefix.
	if o.Stats.DroppedEvents > 0 {
		return v
	}
	level := o.Floor
	esc, deesc := 0, 0
	for i, ev := range o.Stats.Events {
		switch ev.Kind {
		case recovery.EvEscalate:
			to, ok := parseLevel(ev.Detail)
			if !ok {
				add("event %d: unparseable escalation target %q", i, ev.Detail)
				continue
			}
			if to != level+1 {
				add("event %d: escalation %v -> %v skips rungs", i, level, to)
			}
			if to > recovery.LevelVanilla {
				add("event %d: escalation below the bottom rung (%v)", i, to)
			}
			level = to
			esc++
		case recovery.EvDeescalate:
			to, ok := parseLevel(ev.Detail)
			if !ok {
				add("event %d: unparseable de-escalation target %q", i, ev.Detail)
				continue
			}
			if to != level-1 {
				add("event %d: de-escalation %v -> %v skips rungs", i, level, to)
			}
			if to < o.Floor {
				add("event %d: de-escalation above the harness floor (%v < %v)", i, to, o.Floor)
			}
			level = to
			deesc++
		}
	}
	if esc != o.Stats.Escalations || deesc != o.Stats.Deescalations {
		add("event log records %d escalations / %d de-escalations, stats say %d / %d",
			esc, deesc, o.Stats.Escalations, o.Stats.Deescalations)
	}
	if level != o.FinalLevel {
		add("event walk ends at %v but harness reports %v", level, o.FinalLevel)
	}
	return v
}

// --- durability oracle ---

// durabilityOracle replays the trace against the recovery records and checks
// two storage invariants. Durability: a key whose write was acknowledged must
// stay readable across clean preserves — only a fallback recovery (which
// legitimately reboots from persistence or empty) may lose it. Staleness: a
// vanilla-rung restart boots with persistence off, so everything it serves
// must have been written after that boot; an effective read of a pre-crash
// key that was never re-written is a stale read — state that cannot exist
// leaked through recovery.
type durabilityOracle struct{}

func (durabilityOracle) Name() string { return "durability" }

func (durabilityOracle) Check(o *Observation) []string {
	var v []string
	acked := make(map[string]bool) // acked writes since the last non-clean recovery
	everAcked := make(map[string]bool)
	forbidden := make(map[string]bool) // keys that must not be readable after a vanilla boot
	ri := 0
	for _, st := range o.Steps {
		for ri < len(o.Recoveries) && o.Recoveries[ri].AtStep <= st.Index {
			rec := o.Recoveries[ri]
			ri++
			if rec.CleanPreserve {
				continue // preserved state: acked survives, forbidden persists
			}
			if rec.Level == "vanilla" {
				// Persistence is off at this rung: the successor boots empty,
				// so every previously acked key becomes unreadable-until-
				// rewritten.
				forbidden = make(map[string]bool)
				for k := range everAcked {
					forbidden[k] = true
				}
			} else {
				// Builtin/fallback recovery may legitimately restore any
				// persisted prefix, including pre-vanilla data.
				forbidden = make(map[string]bool)
			}
			acked = make(map[string]bool)
		}
		switch st.Op {
		case "INSERT", "UPDATE":
			if st.OK {
				acked[st.Key] = true
				everAcked[st.Key] = true
				delete(forbidden, st.Key)
			}
		case "DELETE":
			if st.OK {
				delete(acked, st.Key)
				delete(everAcked, st.Key)
				delete(forbidden, st.Key)
			}
		case "READ":
			if st.OK && !st.Effective && acked[st.Key] {
				v = append(v, fmt.Sprintf("step %d: acked write to %q lost across clean preserves", st.Index, st.Key))
			}
			if st.Effective && forbidden[st.Key] {
				v = append(v, fmt.Sprintf("step %d: stale read of %q after a vanilla-rung boot that never re-wrote it", st.Index, st.Key))
			}
		}
	}
	return v
}

// --- component oracle ---

// componentOracle judges the sub-process rungs. Its primary clause surfaces
// failures of the application's own VerifyComponents invariant — dangling
// state left across a component boundary after any recovery is exactly the
// bug microreboot literature warns about. The accounting clauses pin the
// rewind/microreboot counters to the configuration: no rewind without
// domains, no domain discard without domains, and driver stats must agree
// with the kernel counters.
type componentOracle struct{}

func (componentOracle) Name() string { return "component" }

func (componentOracle) Check(o *Observation) []string {
	var v []string
	add := func(format string, args ...interface{}) { v = append(v, fmt.Sprintf(format, args...)) }

	for _, m := range o.ComponentViolations {
		add("dangling component state after recovery: %s", m)
	}
	c := o.Counters
	if c["rewinds"] != int64(o.Stats.Rewinds) {
		add("rewind counters disagree: counters=%d stats=%d", c["rewinds"], o.Stats.Rewinds)
	}
	if c["microreboots"] != int64(o.Stats.Microreboots) {
		add("microreboot counters disagree: counters=%d stats=%d", c["microreboots"], o.Stats.Microreboots)
	}
	if !o.Domains {
		if o.Stats.Rewinds > 0 {
			add("%d rewind recoveries without rewind domains enabled", o.Stats.Rewinds)
		}
		if c["domain_discards"] > 0 {
			add("%d domain discards without rewind domains enabled", c["domain_discards"])
		}
	}
	if c["domain_discards"] < int64(o.Stats.Rewinds) {
		add("domain discards (%d) below rewind recoveries (%d): a rewind kept its domain", c["domain_discards"], o.Stats.Rewinds)
	}
	if o.Floor > recovery.LevelRewind && o.Stats.Rewinds > 0 {
		add("rewind recoveries (%d) with floor %v above the rewind rung", o.Stats.Rewinds, o.Floor)
	}
	if o.Floor > recovery.LevelMicroreboot && o.Stats.Microreboots > 0 {
		add("microreboots (%d) with floor %v above the microreboot rung", o.Stats.Microreboots, o.Floor)
	}
	return v
}

// --- cluster oracle ---

// clusterOracle checks a cluster run's report for structural consistency:
// drained nodes start nothing, partitioned nodes answer nothing, windows are
// well-formed, the request ledger balances, and each node's kernel counters
// are internally consistent.
type clusterOracle struct{}

func (clusterOracle) Name() string { return "cluster" }

func (clusterOracle) Check(o *Observation) []string {
	var v []string
	add := func(format string, args ...interface{}) { v = append(v, fmt.Sprintf(format, args...)) }
	r := o.Cluster
	if r == nil {
		return []string{"cluster observation carries no report"}
	}
	if r.PartitionResponses != 0 {
		add("%d responses crossed a partition", r.PartitionResponses)
	}
	if r.Served+r.Retried+r.Stale+r.Failed > r.Requests {
		add("request ledger overflows: served=%d retried=%d stale=%d failed=%d of %d",
			r.Served, r.Retried, r.Stale, r.Failed, r.Requests)
	}
	if r.AvailabilityPct < 0 || r.AvailabilityPct > 100 {
		add("availability %.2f%% outside [0,100]", r.AvailabilityPct)
	}
	if r.SnapshotStale != 0 {
		add("%d snapshot reads observed pages mutated under a frozen MVCC version", r.SnapshotStale)
	}
	for _, w := range r.Windows {
		if w.EndUs < w.StartUs || w.DurUs != w.EndUs-w.StartUs {
			add("malformed unavailability window on node %d: [%d,%d] dur %d", w.Node, w.StartUs, w.EndUs, w.DurUs)
		}
		if w.Node < 0 || w.Node >= r.Replicas {
			add("window names nonexistent node %d", w.Node)
		}
	}
	for _, nd := range r.Nodes {
		if nd.StartedDuringDrain != 0 {
			add("node %d started %d requests while draining", nd.Node, nd.StartedDuringDrain)
		}
		c := nd.Counters
		if c["preserves_committed"] > c["preserves_staged"] {
			add("node %d: committed preserves (%d) exceed staged (%d)", nd.Node, c["preserves_committed"], c["preserves_staged"])
		}
		if c["checksum_mismatches"] != c["integrity_fallbacks"] {
			add("node %d: checksum mismatches (%d) != integrity fallbacks (%d)", nd.Node, c["checksum_mismatches"], c["integrity_fallbacks"])
		}
		if int64(nd.PhoenixRestarts) != c["preserves_committed"] {
			add("node %d: phoenix restarts (%d) != committed preserves (%d)", nd.Node, nd.PhoenixRestarts, c["preserves_committed"])
		}
	}
	return v
}

// ShardOracles returns the invariants for shard-mode schedules. One oracle
// carries the whole contract because every clause judges the same report.
func ShardOracles() []Oracle { return []Oracle{shardOracle{}} }

// --- shard oracle ---

// shardOracle judges a sharded-fabric run: ownership is single (no request
// is ever served by a node whose shard placement had already flipped), no
// acknowledged write is lost across a live migration, the request and move
// ledgers balance, unavailability windows are well-formed, and per-node
// kernel counters stay internally consistent.
type shardOracle struct{}

func (shardOracle) Name() string { return "shard" }

func (shardOracle) Check(o *Observation) []string {
	var v []string
	add := func(format string, args ...interface{}) { v = append(v, fmt.Sprintf(format, args...)) }
	r := o.Shard
	if r == nil {
		return []string{"shard observation carries no report"}
	}
	if r.NonOwnerServes != 0 {
		add("%d requests served by a non-owner across ownership flips", r.NonOwnerServes)
	}
	if r.LostAcked != 0 {
		add("%d acknowledged writes lost across migration (keys %v)", r.LostAcked, r.LostKeys)
	}
	if r.Served+r.Retried+r.Stale+r.Failed > r.Requests {
		add("request ledger overflows: served=%d retried=%d stale=%d failed=%d of %d",
			r.Served, r.Retried, r.Stale, r.Failed, r.Requests)
	}
	if r.AvailabilityPct < 0 || r.AvailabilityPct > 100 {
		add("availability %.2f%% outside [0,100]", r.AvailabilityPct)
	}
	if r.SnapshotStale != 0 {
		add("%d snapshot reads observed pages mutated under a frozen MVCC version", r.SnapshotStale)
	}
	nodes := r.Shards*r.Replicas + r.Spares
	for _, w := range r.Windows {
		if w.EndUs < w.StartUs || w.DurUs != w.EndUs-w.StartUs {
			add("malformed kill window on node %d: [%d,%d] dur %d", w.Node, w.StartUs, w.EndUs, w.DurUs)
		}
		if w.Node < 0 || w.Node >= nodes || w.Shard < 0 || w.Shard >= r.Shards {
			add("kill window names nonexistent slot: node %d shard %d", w.Node, w.Shard)
		}
	}
	if got := r.MovesCompleted + r.MovesAborted + r.MovesSkipped; got != len(r.MoveReports) {
		add("move ledger unbalanced: %d completed + %d aborted + %d skipped != %d moves",
			r.MovesCompleted, r.MovesAborted, r.MovesSkipped, len(r.MoveReports))
	}
	for _, m := range r.MoveReports {
		if m.Completed && (m.EndUs < m.FreezeUs || m.FreezeUs < m.StartUs) {
			add("move of shard %d has a time-travelling freeze: start=%d freeze=%d end=%d",
				m.Shard, m.StartUs, m.FreezeUs, m.EndUs)
		}
		if m.Completed && m.CutoverUs > m.FrozenUs {
			add("move of shard %d cut over for longer than it was frozen: cutover=%d frozen=%d",
				m.Shard, m.CutoverUs, m.FrozenUs)
		}
		if m.Completed && m.DstNode < 0 {
			add("completed move of shard %d has no destination", m.Shard)
		}
	}
	for _, nd := range r.Nodes {
		c := nd.Counters
		if c["preserves_committed"] > c["preserves_staged"] {
			add("node %d: committed preserves (%d) exceed staged (%d)", nd.Node, c["preserves_committed"], c["preserves_staged"])
		}
		if c["checksum_mismatches"] != c["integrity_fallbacks"] {
			add("node %d: checksum mismatches (%d) != integrity fallbacks (%d)", nd.Node, c["checksum_mismatches"], c["integrity_fallbacks"])
		}
	}
	return v
}

// FmtViolations renders oracle violations for logs: "oracle: message" lines.
func FmtViolations(oracle string, msgs []string) string {
	var b strings.Builder
	for _, m := range msgs {
		fmt.Fprintf(&b, "%s: %s\n", oracle, m)
	}
	return b.String()
}
