// Package registry enumerates every application in internal/apps as a
// recovery.AppFactory, sized for fault campaigns: small enough that a full
// probe matrix stays fast, large enough that every app preserves multiple
// ranges. Campaign tests and the phxinject CLI share it so "all apps" means
// the same thing everywhere.
package registry

import (
	"fmt"
	"sort"
	"time"

	"phoenix/internal/apps/boost"
	"phoenix/internal/apps/kvstore"
	"phoenix/internal/apps/lsmdb"
	"phoenix/internal/apps/particle"
	"phoenix/internal/apps/webcache"
	"phoenix/internal/cluster"
	"phoenix/internal/faultinject"
	"phoenix/internal/recovery"
	"phoenix/internal/shard"
	"phoenix/internal/workload"
)

// StepGen drives the compute apps (boost, particle) one step per request.
type StepGen struct{ seq uint64 }

func (g *StepGen) Next() *workload.Request {
	g.seq++
	return &workload.Request{Seq: g.seq, Op: workload.OpRead, Key: "step"}
}

// Clone implements workload.Generator; the step stream is seed-independent.
func (g *StepGen) Clone(seed int64) workload.Generator { return &StepGen{} }

// Factories returns one campaign-sized factory per application, keyed by the
// system name used throughout the experiments.
func Factories(seed int64) map[string]recovery.AppFactory {
	return map[string]recovery.AppFactory{
		"kvstore": func(inj *faultinject.Injector) (recovery.App, workload.Generator) {
			kv := kvstore.New(kvstore.Config{Cleanup: true}, inj)
			gen := workload.NewYCSB(workload.YCSBConfig{
				Seed: seed, Records: 200, ReadFrac: 0.8, InsertFrac: 0.2,
				ValueSize: 64, ZipfianKeys: true,
			})
			return kv, gen
		},
		"lsmdb": func(inj *faultinject.Injector) (recovery.App, workload.Generator) {
			db := lsmdb.New(lsmdb.Config{MemtableThreshold: 1 << 20}, inj)
			return db, workload.NewFillSeq(64)
		},
		"webcache-varnish": func(inj *faultinject.Injector) (recovery.App, workload.Generator) {
			web := workload.NewWeb(workload.WebConfig{Seed: seed, URLs: 100, MeanSize: 2 << 10})
			c := webcache.New(webcache.Config{
				Flavor: webcache.FlavorVarnish, CapacityBytes: 8 << 20,
			}, web, inj)
			return c, web
		},
		"webcache-squid": func(inj *faultinject.Injector) (recovery.App, workload.Generator) {
			web := workload.NewWeb(workload.WebConfig{Seed: seed, URLs: 100, MeanSize: 2 << 10})
			c := webcache.New(webcache.Config{
				Flavor: webcache.FlavorSquid, CapacityBytes: 8 << 20,
			}, web, inj)
			return c, web
		},
		"boost": func(inj *faultinject.Injector) (recovery.App, workload.Generator) {
			tr := boost.New(boost.Config{Samples: 200, Features: 8, MaxIters: 256, WorkScale: 50}, inj)
			return tr, &StepGen{}
		},
		"particle": func(inj *faultinject.Injector) (recovery.App, workload.Generator) {
			s := particle.New(particle.Config{Particles: 200, Cells: 32, WorkScale: 50}, inj)
			return s, &StepGen{}
		},
	}
}

// Names returns the registered system names in deterministic order.
func Names() []string {
	names := make([]string, 0, len(Factories(0)))
	for n := range Factories(0) {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// MicrorebootSpecs bundles every application with the fault hooks the
// recovery-granularity campaign drives, in deterministic name order: a
// scripted mid-request bug that crashes on transient state only (so every
// ladder rung can recover from it) and, for component-declaring apps, the
// root component whose crash cascades through the graph. The explore
// package's fault tables are pinned against these by test.
func MicrorebootSpecs(seed int64) []recovery.MicrorebootSpec {
	bugs := map[string]string{
		"kvstore":          "R3",
		"lsmdb":            "L1",
		"boost":            "X1",
		"particle":         "VP1",
		"webcache-varnish": "VA1",
		"webcache-squid":   "S3",
	}
	comps := map[string]string{
		"lsmdb":            "memtable",
		"boost":            "preds",
		"webcache-varnish": "lru",
		"webcache-squid":   "lru",
	}
	factories := Factories(seed)
	var out []recovery.MicrorebootSpec
	for _, name := range Names() {
		out = append(out, recovery.MicrorebootSpec{
			Name:      name,
			Mk:        factories[name],
			Bug:       bugs[name],
			Component: comps[name],
		})
	}
	return out
}

// ConcurrencyNames lists the applications that implement
// recovery.SnapshotServer — the ones the concurrent-serving campaign can
// drive (TestConcurrencySpecsServeSnapshots keeps the list honest).
func ConcurrencyNames() []string {
	return []string{"kvstore", "lsmdb", "webcache-squid", "webcache-varnish"}
}

// ConcurrencySpecs bundles the snapshot-serving applications for the
// concurrent-serving campaign, in deterministic name order.
func ConcurrencySpecs(seed int64) []recovery.ConcurrencySpec {
	factories := Factories(seed)
	var out []recovery.ConcurrencySpec
	for _, name := range ConcurrencyNames() {
		out = append(out, recovery.ConcurrencySpec{Name: name, Mk: factories[name]})
	}
	return out
}

// ClusterProfile returns the client-population profile the cluster campaign
// drives against the named system. The storage apps get a Zipfian read-heavy
// keyspace that the warm phase pre-populates (so reads are effective until a
// restart loses the data); the caches get the same web trace their factory
// wired as the origin; the compute apps get fewer, slower clients so a
// node's step count stays inside the factory's iteration budget.
func ClusterProfile(name string, seed int64) cluster.Profile {
	switch name {
	case "kvstore", "lsmdb":
		const records, valueSize = 64, 64
		p := cluster.Profile{
			Proto: workload.NewYCSB(workload.YCSBConfig{
				Seed: seed, Records: records, ReadFrac: 0.7, InsertFrac: 0.05,
				ValueSize: valueSize, ZipfianKeys: true,
			}),
			// Long enough that a cold reboot (kvstore 300ms, lsmdb 120ms)
			// completes inside the traffic window: builtin comes back with its
			// RDB restored while vanilla comes back empty, and the difference
			// shows up as stale reads and window length instead of both modes
			// simply staying dark.
			RunFor: 600 * time.Millisecond,
		}
		// Pre-populate the YCSB keyspace on every node: the generator reads
		// keys it assumes exist.
		for i := uint64(0); i < records; i++ {
			key := fmt.Sprintf("user%010d", i)
			p.Warm = append(p.Warm, &workload.Request{
				Seq: i + 1, Op: workload.OpInsert, Key: key,
				Value: workload.Value(key, 1, valueSize),
			})
		}
		return p
	case "webcache-varnish", "webcache-squid":
		// Must match the factory's WebConfig: the traffic trace and the
		// cache's origin fetcher draw from the same URL population.
		web := workload.NewWeb(workload.WebConfig{Seed: seed, URLs: 100, MeanSize: 2 << 10})
		// 600ms outlives the 400ms cold boot for the first kill; a returned
		// vanilla cache refills popular URLs on demand.
		p := cluster.Profile{Proto: web, RunFor: 600 * time.Millisecond}
		warm := web.Clone(seed + 7001)
		for i := 0; i < 300; i++ {
			p.Warm = append(p.Warm, warm.Next())
		}
		return p
	case "boost", "particle":
		// One step per request; keep per-node totals inside boost's
		// MaxIters=256 budget (2 clients/node, ~4ms closed-loop period).
		return cluster.Profile{
			Proto:          &StepGen{},
			ClientsPerNode: 2,
			Think:          4 * time.Millisecond,
			Timeout:        40 * time.Millisecond,
			RunFor:         400 * time.Millisecond,
		}
	}
	panic("registry: no cluster profile for system " + name)
}

// ShardNames returns the systems the sharded campaign runs: the
// key-addressed stores. The caches are read-only traffic (the lost-write
// ledger would audit nothing) and the compute apps have no keyspace to
// shard.
func ShardNames() []string { return []string{"kvstore", "lsmdb"} }

// ShardProfile returns the open-loop client profile the shard campaign
// drives against the named system: a Zipfian read-heavy keyspace large
// enough that each shard's arc holds real state (so stop-and-copy migration
// has something to ship), warmed before traffic, with read hedging on.
func ShardProfile(name string, seed int64) shard.Profile {
	switch name {
	case "kvstore", "lsmdb":
		const records, valueSize = 1024, 64
		p := shard.Profile{
			Proto: workload.NewYCSB(workload.YCSBConfig{
				Seed: seed, Records: records, ReadFrac: 0.7, InsertFrac: 0.05,
				ValueSize: valueSize, ZipfianKeys: true,
			}),
			Population: 2_000_000,
			HedgeDelay: 4 * time.Millisecond,
		}
		// Pre-populate the YCSB keyspace: the ring splits these across the
		// shards, each replica group warming exactly its own arc.
		for i := uint64(0); i < records; i++ {
			key := fmt.Sprintf("user%010d", i)
			p.Warm = append(p.Warm, &workload.Request{
				Seq: i + 1, Op: workload.OpInsert, Key: key,
				Value: workload.Value(key, 1, valueSize),
			})
		}
		return p
	}
	panic("registry: no shard profile for system " + name)
}

// ShardSystems bundles the shardable applications with their campaign
// profiles, in deterministic name order.
func ShardSystems(seed int64) []shard.System {
	factories := Factories(seed)
	var out []shard.System
	for _, name := range ShardNames() {
		out = append(out, shard.System{
			Name:    name,
			Factory: factories[name],
			Profile: ShardProfile(name, seed),
		})
	}
	return out
}

// ClusterSystems bundles every registered application with its campaign
// profile, in deterministic name order.
func ClusterSystems(seed int64) []cluster.System {
	factories := Factories(seed)
	var out []cluster.System
	for _, name := range Names() {
		out = append(out, cluster.System{
			Name:    name,
			Factory: factories[name],
			Profile: ClusterProfile(name, seed),
		})
	}
	return out
}
