// Package registry enumerates every application in internal/apps as a
// recovery.AppFactory, sized for fault campaigns: small enough that a full
// probe matrix stays fast, large enough that every app preserves multiple
// ranges. Campaign tests and the phxinject CLI share it so "all apps" means
// the same thing everywhere.
package registry

import (
	"sort"

	"phoenix/internal/apps/boost"
	"phoenix/internal/apps/kvstore"
	"phoenix/internal/apps/lsmdb"
	"phoenix/internal/apps/particle"
	"phoenix/internal/apps/webcache"
	"phoenix/internal/faultinject"
	"phoenix/internal/recovery"
	"phoenix/internal/workload"
)

// StepGen drives the compute apps (boost, particle) one step per request.
type StepGen struct{ seq uint64 }

func (g *StepGen) Next() *workload.Request {
	g.seq++
	return &workload.Request{Seq: g.seq, Op: workload.OpRead, Key: "step"}
}

// Factories returns one campaign-sized factory per application, keyed by the
// system name used throughout the experiments.
func Factories(seed int64) map[string]recovery.AppFactory {
	return map[string]recovery.AppFactory{
		"kvstore": func(inj *faultinject.Injector) (recovery.App, workload.Generator) {
			kv := kvstore.New(kvstore.Config{Cleanup: true}, inj)
			gen := workload.NewYCSB(workload.YCSBConfig{
				Seed: seed, Records: 200, ReadFrac: 0.8, InsertFrac: 0.2,
				ValueSize: 64, ZipfianKeys: true,
			})
			return kv, gen
		},
		"lsmdb": func(inj *faultinject.Injector) (recovery.App, workload.Generator) {
			db := lsmdb.New(lsmdb.Config{MemtableThreshold: 1 << 20}, inj)
			return db, workload.NewFillSeq(64)
		},
		"webcache-varnish": func(inj *faultinject.Injector) (recovery.App, workload.Generator) {
			web := workload.NewWeb(workload.WebConfig{Seed: seed, URLs: 100, MeanSize: 2 << 10})
			c := webcache.New(webcache.Config{
				Flavor: webcache.FlavorVarnish, CapacityBytes: 8 << 20,
			}, web, inj)
			return c, web
		},
		"webcache-squid": func(inj *faultinject.Injector) (recovery.App, workload.Generator) {
			web := workload.NewWeb(workload.WebConfig{Seed: seed, URLs: 100, MeanSize: 2 << 10})
			c := webcache.New(webcache.Config{
				Flavor: webcache.FlavorSquid, CapacityBytes: 8 << 20,
			}, web, inj)
			return c, web
		},
		"boost": func(inj *faultinject.Injector) (recovery.App, workload.Generator) {
			tr := boost.New(boost.Config{Samples: 200, Features: 8, MaxIters: 256, WorkScale: 50}, inj)
			return tr, &StepGen{}
		},
		"particle": func(inj *faultinject.Injector) (recovery.App, workload.Generator) {
			s := particle.New(particle.Config{Particles: 200, Cells: 32, WorkScale: 50}, inj)
			return s, &StepGen{}
		},
	}
}

// Names returns the registered system names in deterministic order.
func Names() []string {
	names := make([]string, 0, len(Factories(0)))
	for n := range Factories(0) {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
