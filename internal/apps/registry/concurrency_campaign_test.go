package registry_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"phoenix/internal/apps/registry"
	"phoenix/internal/faultinject"
	"phoenix/internal/kernel"
	"phoenix/internal/recovery"
	"phoenix/internal/workload"
)

// TestConcurrencyCampaignGolden runs the concurrent-serving campaign twice on
// the same seed and requires byte-identical JSON — the property the CI step
// checks end-to-end through phxinject. It also pins the campaign's headline
// contract: every snapshot-serving app present, ≥2x throughput at 4 readers,
// a PHOENIX restart ridden mid-run, and a clean stale oracle.
func TestConcurrencyCampaignGolden(t *testing.T) {
	run := func() []recovery.ConcurrencyOutcome {
		t.Helper()
		outs, err := recovery.CheckConcurrency(registry.ConcurrencySpecs(1), recovery.ConcurrencyConfig{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return outs
	}
	a, b := run(), run()
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatalf("same-seed campaign runs diverged:\n%s\n%s", ja, jb)
	}

	names := registry.ConcurrencyNames()
	if len(a) != len(names) {
		t.Fatalf("campaign covered %d apps, want %d", len(a), len(names))
	}
	for i, o := range a {
		if o.App != names[i] {
			t.Errorf("outcome %d is %q, want %q", i, o.App, names[i])
		}
		if o.Speedup4v1 < 2.0 {
			t.Errorf("%s: 4-reader speedup %.2f below 2.0", o.App, o.Speedup4v1)
		}
		if o.PhoenixRestarts < 1 {
			t.Errorf("%s: campaign rode no PHOENIX restart", o.App)
		}
		if o.Stale != 0 {
			t.Errorf("%s: stale oracle fired %d times", o.App, o.Stale)
		}
		if o.PreserveParallelNs >= o.PreserveSerialNs {
			t.Errorf("%s: modelled parallel preserve %dns not below serial %dns",
				o.App, o.PreserveParallelNs, o.PreserveSerialNs)
		}
	}
}

// TestConcurrencySpecsServeSnapshots keeps ConcurrencyNames honest: an app is
// listed if and only if it actually implements recovery.SnapshotServer, so
// adding snapshot serving to an app (or dropping it) without updating the
// campaign roster fails here instead of silently shrinking coverage.
func TestConcurrencySpecsServeSnapshots(t *testing.T) {
	listed := map[string]bool{}
	for _, n := range registry.ConcurrencyNames() {
		listed[n] = true
	}
	factories := registry.Factories(1)
	for _, name := range registry.Names() {
		app, _ := factories[name](faultinject.New())
		_, serves := app.(recovery.SnapshotServer)
		if serves && !listed[name] {
			t.Errorf("%s implements SnapshotServer but is missing from ConcurrencyNames", name)
		}
		if !serves && listed[name] {
			t.Errorf("%s is in ConcurrencyNames but does not implement SnapshotServer", name)
		}
	}
	for n := range listed {
		if _, ok := factories[n]; !ok {
			t.Errorf("ConcurrencyNames lists unknown app %q", n)
		}
	}
}

// TestSnapshotServersAreRewindable pins the rewind contract for the serving
// apps: every app the concurrency campaign drives also consents to rewind
// domains (the sub-process rung rides under the same battery), and lsmdb —
// whose request handlers append to the Go-side WAL — carries the
// RewindObserver repair hook a domain discard alone cannot replace.
func TestSnapshotServersAreRewindable(t *testing.T) {
	factories := registry.Factories(1)
	for _, name := range registry.ConcurrencyNames() {
		app, _ := factories[name](faultinject.New())
		ra, ok := app.(recovery.RewindableApp)
		if !ok || !ra.Rewindable() {
			t.Errorf("%s: snapshot-serving app is not rewindable", name)
		}
	}
	lsm, _ := factories["lsmdb"](faultinject.New())
	if _, ok := lsm.(recovery.RewindObserver); !ok {
		t.Error("lsmdb lost its RewindObserver repair hook: a rewound put would resurrect its WAL append")
	}
}

// BenchmarkServeConcurrent reports simulated serving throughput off committed
// MVCC snapshots across the reader ladder. The metric of record is
// sim_ops_per_sec (wall time on a 1-core CI box says nothing); the acceptance
// bar — ≥2x ops/sec at 4 readers vs 1 on at least two apps — is enforced
// deterministically by TestConcurrencyCampaignGolden, this benchmark makes the
// same curve visible in bench output.
func BenchmarkServeConcurrent(b *testing.B) {
	for _, name := range registry.ConcurrencyNames() {
		for _, readers := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/readers=%d", name, readers), func(b *testing.B) {
				bench := newServeBench(b, name)
				b.ResetTimer()
				var simNs float64
				for i := 0; i < b.N; i++ {
					simNs += bench.batch(b, readers)
				}
				b.ReportMetric(float64(len(bench.reads)*b.N)/(simNs/1e9), "sim_ops/s")
			})
		}
	}
}

type serveBench struct {
	h     *recovery.Harness
	reads []*workload.Request
}

func newServeBench(b *testing.B, name string) *serveBench {
	b.Helper()
	const keys = 64
	m := kernel.NewMachine(1)
	inj := faultinject.New()
	app, gen := registry.Factories(1)[name](inj)
	h := recovery.NewHarness(m, recovery.Config{Mode: recovery.ModePhoenix}, app, gen, inj)
	if err := h.Boot(); err != nil {
		b.Fatal(err)
	}
	isCache := strings.HasPrefix(name, "webcache")
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("bench-%04d", i)
		req := &workload.Request{Op: workload.OpInsert, Key: key, Value: []byte(key)}
		if isCache {
			req = &workload.Request{Op: workload.OpWebGet, Key: key, Size: 256, Cacheable: true}
		}
		if _, _, err := h.ServeRequest(req); err != nil {
			b.Fatal(err)
		}
	}
	sb := &serveBench{h: h}
	for i := 0; i < 128; i++ {
		key := fmt.Sprintf("bench-%04d", i%keys)
		if isCache {
			sb.reads = append(sb.reads, &workload.Request{Op: workload.OpWebGet, Key: key})
		} else {
			sb.reads = append(sb.reads, &workload.Request{Op: workload.OpRead, Key: key})
		}
	}
	return sb
}

// batch runs one commit+serve cycle and returns the simulated nanoseconds it
// cost.
func (sb *serveBench) batch(b *testing.B, readers int) float64 {
	b.Helper()
	m := sb.h.M
	before := m.Clock.Now()
	if _, err := sb.h.SnapshotCommit(); err != nil {
		b.Fatal(err)
	}
	eff, stale, err := sb.h.ServeSnapshotReads(sb.reads, readers)
	if err != nil {
		b.Fatal(err)
	}
	if eff != len(sb.reads) || stale != 0 {
		b.Fatalf("batch served %d/%d effective, stale=%d", eff, len(sb.reads), stale)
	}
	return float64(m.Clock.Now() - before)
}
