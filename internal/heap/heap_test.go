package heap

import (
	"bytes"
	"testing"
	"testing/quick"

	"phoenix/internal/kernel"
	"phoenix/internal/mem"
)

const testBase = mem.VAddr(0x1000_0000)

func newHeap(t *testing.T, opts Options) (*mem.AddressSpace, *Heap) {
	t.Helper()
	as := mem.NewAddressSpace()
	h, err := New(as, testBase, opts)
	if err != nil {
		t.Fatal(err)
	}
	return as, h
}

func TestAllocFreeRoundTrip(t *testing.T) {
	as, h := newHeap(t, Options{})
	p := h.Alloc(100)
	if p == mem.NullPtr {
		t.Fatal("Alloc failed")
	}
	as.WriteAt(p, []byte("payload"))
	if !bytes.Equal(as.ReadBytes(p, 7), []byte("payload")) {
		t.Fatal("payload round trip failed")
	}
	if h.UsableSize(p) < 100 {
		t.Fatalf("UsableSize = %d, want >= 100", h.UsableSize(p))
	}
	st := h.Stats()
	if st.LiveChunks != 1 {
		t.Fatalf("LiveChunks = %d", st.LiveChunks)
	}
	h.Free(p)
	if st := h.Stats(); st.LiveChunks != 0 || st.LiveBytes != 0 {
		t.Fatalf("after free: %+v", st)
	}
}

func TestFreeListRecycling(t *testing.T) {
	_, h := newHeap(t, Options{})
	p1 := h.Alloc(100)
	h.Free(p1)
	p2 := h.Alloc(100)
	if p1 != p2 {
		t.Fatalf("same-class alloc after free got %#x, want recycled %#x", uint64(p2), uint64(p1))
	}
}

func TestAllocDistinct(t *testing.T) {
	_, h := newHeap(t, Options{})
	seen := map[mem.VAddr]bool{}
	for i := 0; i < 1000; i++ {
		p := h.Alloc(64)
		if seen[p] {
			t.Fatalf("Alloc returned duplicate address %#x", uint64(p))
		}
		seen[p] = true
	}
}

func TestLargeAllocation(t *testing.T) {
	as, h := newHeap(t, Options{})
	p := h.Alloc(200 << 10) // above MmapThreshold
	if p == mem.NullPtr {
		t.Fatal("large Alloc failed")
	}
	buf := make([]byte, 200<<10)
	for i := range buf {
		buf[i] = byte(i)
	}
	as.WriteAt(p, buf)
	if !bytes.Equal(as.ReadBytes(p, len(buf)), buf) {
		t.Fatal("large payload round trip failed")
	}
	if h.Stats().LargeRegs != 1 {
		t.Fatalf("LargeRegs = %d", h.Stats().LargeRegs)
	}
	h.Free(p)
	if h.Stats().LargeRegs != 0 {
		t.Fatal("large region not unmapped on free")
	}
	if as.Mapped(p) {
		t.Fatal("large pages still mapped after free")
	}
}

func TestBrkGrowthThenArenas(t *testing.T) {
	_, h := newHeap(t, Options{BrkMax: 64 << 10, ArenaSize: 64 << 10})
	// Exhaust brk then force mmap arenas.
	for i := 0; i < 100; i++ {
		if h.Alloc(2000) == mem.NullPtr {
			t.Fatalf("Alloc %d failed", i)
		}
	}
	st := h.Stats()
	if st.Arenas < 2 {
		t.Fatalf("expected mmap arenas after brk exhaustion, got %d", st.Arenas)
	}
}

func TestMaxBytesOOM(t *testing.T) {
	_, h := newHeap(t, Options{BrkMax: 8 << 10, ArenaSize: 8 << 10, MaxBytes: 32 << 10})
	var last mem.VAddr
	n := 0
	for {
		p := h.Alloc(1024)
		if p == mem.NullPtr {
			break
		}
		last = p
		n++
		if n > 10000 {
			t.Fatal("MaxBytes never enforced")
		}
	}
	if n == 0 || last == mem.NullPtr {
		t.Fatal("no allocations succeeded before OOM")
	}
}

func expectAbort(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Errorf("%s: no abort", name)
			return
		}
		c, ok := r.(*kernel.Crash)
		if !ok || c.Sig != kernel.SIGABRT {
			t.Errorf("%s: panic %v, want SIGABRT crash", name, r)
		}
	}()
	fn()
}

func TestIntegrityChecks(t *testing.T) {
	as, h := newHeap(t, Options{})
	p := h.Alloc(64)

	expectAbort(t, "free nil", func() { h.Free(mem.NullPtr) })
	expectAbort(t, "free wild", func() { h.Free(mem.VAddr(0x5000)) })

	h.Free(p)
	expectAbort(t, "double free", func() { h.Free(p) })

	// Corrupt a chunk header (models a buffer overrun into metadata) and
	// check the next free aborts like glibc's checks.
	p2 := h.Alloc(64)
	as.WriteU64(p2-16, 0xffffffffffffffff)
	expectAbort(t, "corrupted header", func() { h.Free(p2) })
}

func TestMarkAndSweep(t *testing.T) {
	_, h := newHeap(t, Options{})
	keep := h.Alloc(128)
	drop1 := h.Alloc(128)
	drop2 := h.Alloc(4096)
	large := h.Alloc(100 << 10)
	h.Mark(keep)
	h.Mark(large)

	freed, freedBytes, visited := h.Sweep()
	if freed != 2 {
		t.Fatalf("Sweep freed %d chunks, want 2", freed)
	}
	if freedBytes <= 0 || visited < 4 {
		t.Fatalf("Sweep stats: bytes=%d visited=%d", freedBytes, visited)
	}
	// Marker is cleared on survivors so a future sweep would free them.
	if h.Marked(keep) || h.Marked(large) {
		t.Fatal("Sweep did not clear markers on retained chunks")
	}
	if h.Stats().LiveChunks != 2 {
		t.Fatalf("LiveChunks after sweep = %d, want 2", h.Stats().LiveChunks)
	}
	// The dropped chunks are reusable.
	if p := h.Alloc(128); p != drop1 && p != drop2 {
		// Either recycled address is acceptable; at minimum it must succeed.
		if p == mem.NullPtr {
			t.Fatal("alloc after sweep failed")
		}
	}
}

func TestWalkCoversAll(t *testing.T) {
	_, h := newHeap(t, Options{})
	want := map[mem.VAddr]bool{}
	for i := 0; i < 10; i++ {
		want[h.Alloc(100)] = true
	}
	large := h.Alloc(128 << 10)
	want[large] = true
	got := map[mem.VAddr]bool{}
	h.Walk(func(p mem.VAddr, size int, inUse, marked bool) bool {
		if inUse {
			got[p] = true
		}
		return true
	})
	for p := range want {
		if !got[p] {
			t.Fatalf("Walk missed chunk %#x", uint64(p))
		}
	}
}

func TestAttachAfterPreserve(t *testing.T) {
	as, h := newHeap(t, Options{})
	ptrs := make([]mem.VAddr, 50)
	for i := range ptrs {
		ptrs[i] = h.Alloc(200)
		as.WriteU64(ptrs[i], uint64(i)*7)
	}
	large := h.Alloc(100 << 10)
	as.WriteU64(large, 424242)

	// Simulate preserve_exec: move every heap range into a new space.
	dst := mem.NewAddressSpace()
	for _, r := range h.PreservedRanges() {
		if _, err := as.MovePages(dst, r.Start, r.Len/mem.PageSize); err != nil {
			t.Fatal(err)
		}
	}

	h2, err := Attach(dst, testBase, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ptrs {
		if dst.ReadU64(p) != uint64(i)*7 {
			t.Fatalf("preserved chunk %d content lost", i)
		}
	}
	if dst.ReadU64(large) != 424242 {
		t.Fatal("preserved large content lost")
	}
	// The re-attached heap keeps allocating correctly.
	st := h2.Stats()
	if st.LiveChunks != 51 {
		t.Fatalf("reattached LiveChunks = %d, want 51", st.LiveChunks)
	}
	p := h2.Alloc(200)
	if p == mem.NullPtr {
		t.Fatal("alloc on reattached heap failed")
	}
	for _, old := range ptrs {
		if p == old {
			t.Fatal("reattached heap handed out a live chunk")
		}
	}
	// Free and sweep still work post-attach.
	h2.Mark(ptrs[0])
	h2.Mark(large)
	h2.Mark(p)
	freed, _, _ := h2.Sweep()
	if freed != 49 {
		t.Fatalf("post-attach sweep freed %d, want 49", freed)
	}
}

func TestAttachErrors(t *testing.T) {
	as := mem.NewAddressSpace()
	if _, err := Attach(as, testBase, Options{}); err == nil {
		t.Fatal("Attach on unmapped memory succeeded")
	}
	if _, err := as.Map(testBase, 1, mem.KindBrk, "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(as, testBase, Options{}); err == nil {
		t.Fatal("Attach without root magic succeeded")
	}
}

func TestPreservedRangesCoverAllocations(t *testing.T) {
	_, h := newHeap(t, Options{BrkMax: 16 << 10, ArenaSize: 16 << 10})
	var ptrs []mem.VAddr
	for i := 0; i < 200; i++ {
		ptrs = append(ptrs, h.Alloc(500))
	}
	ptrs = append(ptrs, h.Alloc(300<<10))
	ranges := h.PreservedRanges()
	covered := func(p mem.VAddr) bool {
		for _, r := range ranges {
			if p >= r.Start && p < r.End() {
				return true
			}
		}
		return false
	}
	for _, p := range ptrs {
		if !covered(p) {
			t.Fatalf("allocation %#x not covered by preserved ranges", uint64(p))
		}
	}
}

// Property: for random alloc/free interleavings the allocator never hands
// out overlapping live chunks, and stats stay consistent.
func TestQuickNoOverlap(t *testing.T) {
	f := func(sizes []uint16, freeMask []bool) bool {
		as := mem.NewAddressSpace()
		h, err := New(as, testBase, Options{})
		if err != nil {
			return false
		}
		type alloc struct {
			p    mem.VAddr
			size int
		}
		var live []alloc
		for i, s := range sizes {
			n := int(s)%3000 + 1
			p := h.Alloc(n)
			if p == mem.NullPtr {
				return false
			}
			live = append(live, alloc{p, n})
			if i < len(freeMask) && freeMask[i] && len(live) > 0 {
				h.Free(live[0].p)
				live = live[1:]
			}
		}
		// Overlap check over payload ranges.
		for i := range live {
			for j := i + 1; j < len(live); j++ {
				a, b := live[i], live[j]
				if a.p < b.p+mem.VAddr(b.size) && b.p < a.p+mem.VAddr(a.size) {
					return false
				}
			}
		}
		return int64(len(live)) == h.Stats().LiveChunks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: writes to one allocation never bleed into another.
func TestQuickIsolation(t *testing.T) {
	as, h := newHeap(t, Options{})
	f := func(fill byte, n uint16) bool {
		size := int(n)%2000 + 8
		a := h.Alloc(size)
		b := h.Alloc(size)
		if a == mem.NullPtr || b == mem.NullPtr {
			return false
		}
		bufA := bytes.Repeat([]byte{fill}, size)
		bufB := bytes.Repeat([]byte{^fill}, size)
		as.WriteAt(a, bufA)
		as.WriteAt(b, bufB)
		ok := bytes.Equal(as.ReadBytes(a, size), bufA) && bytes.Equal(as.ReadBytes(b, size), bufB)
		h.Free(a)
		h.Free(b)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
