// Package heap implements the simulated malloc the PHOENIX reproduction's
// applications allocate from.
//
// It mirrors the glibc structure the paper instruments (§3.3, Figure 4):
//
//   - small objects come from arenas — the first arena sits on a growable
//     brk (data-segment) mapping, additional arenas are mmap-backed;
//   - large objects get dedicated mmap regions;
//   - every chunk carries a header with a PHOENIX marker bit used by the
//     mark-and-sweep cleanup of §3.4.
//
// Crucially, *all allocator metadata lives inside simulated memory*: the
// root header, the arena list, the free lists (threaded through free chunk
// bodies), and the large-region list. After a PHOENIX restart preserves the
// heap pages, Attach reconstructs a working allocator from that memory alone
// — "malloc regains control of the preserved heap" (§3.2 step 6).
//
// The allocator is segregated-storage: freed chunks return to a per-size-
// class free list and are reused for the same class; there is no coalescing.
// glibc's internal consistency checks are modelled: freeing an invalid or
// corrupted pointer aborts (SIGABRT), which is how the paper's MongoDB
// buffer-overrun case is caught.
package heap

import (
	"fmt"

	"phoenix/internal/kernel"
	"phoenix/internal/linker"
	"phoenix/internal/mem"
)

const (
	rootMagic  = 0x5048_4E58_4845_4150 // "PHNXHEAP"
	arenaMagic = 0x5048_4E58_4152_454E // "PHNXAREN"
	largeMagic = 0x5048_4E58_4C41_5247 // "PHNXLARG"

	chunkHeader = 16
	arenaHdr    = 256
	largeHdr    = 32

	// Flag bits stored in the low bits of the chunk-size word (sizes are
	// 8-aligned so three bits are free).
	flagInUse  = 1 << 0
	flagMarked = 1 << 1
	flagLarge  = 1 << 2
	flagMask   = 7

	// MmapThreshold is the payload size at or above which allocations get a
	// dedicated mmap region.
	MmapThreshold = 64 << 10

	// DefaultArenaSize is the size of each mmap-backed arena.
	DefaultArenaSize = 1 << 20

	// DefaultBrkMax is the reserved growth limit of the brk arena.
	DefaultBrkMax = 4 << 20
)

// Root-header field offsets (within arena 0, after the arena fields).
const (
	offArenaMagic = 0
	offArenaNext  = 8
	offArenaBump  = 16 // u32
	offArenaSize  = 20 // u32
	offRootMagic  = 24
	offLargeHead  = 32
	offNextMap    = 40
	offLiveBytes  = 48
	offLiveChunks = 56
	offFreeHeads  = 64 // numClasses * 8 bytes
)

// classSizes are the chunk sizes (header + payload) served from arenas.
var classSizes = []int{
	32, 48, 64, 96, 128, 192, 256, 384, 512, 768,
	1024, 1536, 2048, 3072, 4096, 8192, 16384, 32768, 65536 + chunkHeader,
}

const numClasses = 19

func init() {
	if len(classSizes) != numClasses {
		panic("heap: class table size mismatch")
	}
	if offFreeHeads+numClasses*8 > arenaHdr {
		panic("heap: root header overflow")
	}
}

// classFor returns the class index serving a chunk of at least n bytes
// (header included), or -1 if n exceeds the largest class.
func classFor(n int) int {
	for i, s := range classSizes {
		if n <= s {
			return i
		}
	}
	return -1
}

// Options configures a new heap region.
type Options struct {
	// ArenaSize overrides DefaultArenaSize.
	ArenaSize int
	// BrkMax overrides DefaultBrkMax (growth limit of the brk arena).
	BrkMax int
	// MaxBytes caps total mapped heap bytes; 0 means unlimited. Alloc
	// returns NullPtr once the cap would be exceeded (the app decides
	// whether that is an OOM crash).
	MaxBytes int64
	// Name tags the heap's mappings (useful when multiple PhxAllocators
	// coexist).
	Name string
}

func (o *Options) fill() {
	if o.ArenaSize == 0 {
		o.ArenaSize = DefaultArenaSize
	}
	if o.BrkMax == 0 {
		o.BrkMax = DefaultBrkMax
	}
	if o.Name == "" {
		o.Name = "heap"
	}
	if o.ArenaSize%mem.PageSize != 0 || o.BrkMax%mem.PageSize != 0 {
		panic("heap: arena sizes must be page multiples")
	}
}

// Heap is one allocator region. The Go-side struct is a thin cursor over
// state held in simulated memory; it can be dropped and rebuilt with Attach.
type Heap struct {
	as   *mem.AddressSpace
	base mem.VAddr // arena 0 == root
	opts Options

	// lastSweepChunks/Bytes record the most recent Sweep's reclamation for
	// memory-reuse accounting (Table 9).
	lastSweepChunks int
	lastSweepBytes  int64
}

// New creates a heap whose brk arena starts at base (page aligned) with one
// initial page, writing the root header into simulated memory.
func New(as *mem.AddressSpace, base mem.VAddr, opts Options) (*Heap, error) {
	opts.fill()
	h := &Heap{as: as, base: base, opts: opts}
	if _, err := as.Map(base, 1, mem.KindBrk, opts.Name+".brk"); err != nil {
		return nil, err
	}
	// Arena 0 header.
	as.WriteU64(base+offArenaMagic, arenaMagic)
	as.WritePtr(base+offArenaNext, mem.NullPtr)
	as.WriteU32(base+offArenaBump, arenaHdr)
	as.WriteU32(base+offArenaSize, mem.PageSize)
	// Root fields.
	as.WriteU64(base+offRootMagic, rootMagic)
	as.WritePtr(base+offLargeHead, mem.NullPtr)
	as.WritePtr(base+offNextMap, base+mem.VAddr(opts.BrkMax))
	as.WriteU64(base+offLiveBytes, 0)
	as.WriteU64(base+offLiveChunks, 0)
	for i := 0; i < numClasses; i++ {
		as.WritePtr(base+offFreeHeads+mem.VAddr(i*8), mem.NullPtr)
	}
	return h, nil
}

// Attach reconstructs a Heap from preserved simulated memory. It validates
// the root magic and returns an error if the memory at base is not a heap
// root (e.g. the pages were not preserved).
func Attach(as *mem.AddressSpace, base mem.VAddr, opts Options) (*Heap, error) {
	opts.fill()
	if !as.Mapped(base) {
		return nil, fmt.Errorf("heap: attach at %#x: unmapped", uint64(base))
	}
	if as.ReadU64(base+offRootMagic) != rootMagic {
		return nil, fmt.Errorf("heap: attach at %#x: bad root magic", uint64(base))
	}
	return &Heap{as: as, base: base, opts: opts}, nil
}

// Base returns the heap root address.
func (h *Heap) Base() mem.VAddr { return h.base }

// AS returns the address space the heap allocates from.
func (h *Heap) AS() *mem.AddressSpace { return h.as }

func (h *Heap) abort(format string, args ...interface{}) {
	panic(&kernel.Crash{Sig: kernel.SIGABRT, Reason: "malloc: " + fmt.Sprintf(format, args...)})
}

// mappedBytes returns total bytes currently mapped by this heap.
func (h *Heap) mappedBytes() int64 {
	var total int64
	for a := h.base; a != mem.NullPtr; a = h.as.ReadPtr(a + offArenaNext) {
		total += int64(h.as.ReadU32(a + offArenaSize))
	}
	for l := h.as.ReadPtr(h.base + offLargeHead); l != mem.NullPtr; l = h.as.ReadPtr(l + 8) {
		total += int64(h.as.ReadU64(l + 16))
	}
	return total
}

// Alloc allocates n payload bytes and returns the payload address, or
// NullPtr if the heap limit is exhausted. The payload is NOT zeroed when the
// chunk is recycled from a free list — like malloc, stale contents leak
// through, which matters for the uninitialized-variable fault type.
func (h *Heap) Alloc(n int) mem.VAddr {
	if n <= 0 {
		n = 1
	}
	need := (n + chunkHeader + 7) &^ 7
	if need >= MmapThreshold {
		return h.allocLarge(n)
	}
	ci := classFor(need)
	size := classSizes[ci]

	// Fast path: recycle from the free list.
	headAddr := h.base + offFreeHeads + mem.VAddr(ci*8)
	if c := h.as.ReadPtr(headAddr); c != mem.NullPtr {
		next := h.as.ReadPtr(c + 8)
		h.as.WritePtr(headAddr, next)
		h.as.WriteU64(c, uint64(size)|flagInUse)
		h.as.WriteU64(c+8, 0)
		h.addLive(1, int64(size))
		return c + chunkHeader
	}

	// Bump-allocate from an arena with room.
	for a := h.base; a != mem.NullPtr; a = h.as.ReadPtr(a + offArenaNext) {
		if c := h.bumpFrom(a, size); c != mem.NullPtr {
			h.addLive(1, int64(size))
			return c + chunkHeader
		}
	}
	// Grow the brk arena if possible, else map a new arena.
	if h.growBrk(size) {
		if c := h.bumpFrom(h.base, size); c != mem.NullPtr {
			h.addLive(1, int64(size))
			return c + chunkHeader
		}
	}
	a := h.newArena()
	if a == mem.NullPtr {
		return mem.NullPtr
	}
	c := h.bumpFrom(a, size)
	if c == mem.NullPtr {
		h.abort("fresh arena cannot satisfy class %d", size)
	}
	h.addLive(1, int64(size))
	return c + chunkHeader
}

// bumpFrom tries to carve size bytes from arena a's bump region.
func (h *Heap) bumpFrom(a mem.VAddr, size int) mem.VAddr {
	bump := int(h.as.ReadU32(a + offArenaBump))
	asize := int(h.as.ReadU32(a + offArenaSize))
	if bump+size > asize {
		return mem.NullPtr
	}
	c := a + mem.VAddr(bump)
	h.as.WriteU32(a+offArenaBump, uint32(bump+size))
	h.as.WriteU64(c, uint64(size)|flagInUse)
	h.as.WriteU64(c+8, 0)
	return c
}

// growBrk extends the brk arena by at least need bytes (page-rounded),
// respecting BrkMax and MaxBytes. It reports whether the arena grew.
func (h *Heap) growBrk(need int) bool {
	asize := int(h.as.ReadU32(h.base + offArenaSize))
	if asize >= h.opts.BrkMax {
		return false
	}
	grow := mem.PagesFor(need)
	// Grow geometrically to amortise, capped at BrkMax.
	if doubled := asize / mem.PageSize; doubled > grow {
		grow = doubled
	}
	if asize+grow*mem.PageSize > h.opts.BrkMax {
		grow = (h.opts.BrkMax - asize) / mem.PageSize
	}
	if grow <= 0 {
		return false
	}
	if h.opts.MaxBytes > 0 && h.mappedBytes()+int64(grow)*mem.PageSize > h.opts.MaxBytes {
		return false
	}
	m := h.as.FindMapping(h.base)
	if m == nil {
		h.abort("brk arena mapping lost")
	}
	if err := h.as.Grow(m, grow); err != nil {
		return false
	}
	h.as.WriteU32(h.base+offArenaSize, uint32(asize+grow*mem.PageSize))
	return true
}

// newArena maps a fresh mmap arena and links it into the arena list.
func (h *Heap) newArena() mem.VAddr {
	size := h.opts.ArenaSize
	if h.opts.MaxBytes > 0 && h.mappedBytes()+int64(size) > h.opts.MaxBytes {
		return mem.NullPtr
	}
	a := h.as.ReadPtr(h.base + offNextMap)
	if _, err := h.as.Map(a, size/mem.PageSize, mem.KindMmap, h.opts.Name+".arena"); err != nil {
		return mem.NullPtr
	}
	h.as.WritePtr(h.base+offNextMap, a+mem.VAddr(size))
	h.as.WriteU64(a+offArenaMagic, arenaMagic)
	h.as.WriteU32(a+offArenaBump, arenaHdr)
	h.as.WriteU32(a+offArenaSize, uint32(size))
	// Push onto the arena list after the root arena.
	next := h.as.ReadPtr(h.base + offArenaNext)
	h.as.WritePtr(a+offArenaNext, next)
	h.as.WritePtr(h.base+offArenaNext, a)
	return a
}

// allocLarge maps a dedicated region for an allocation of n payload bytes.
// Layout: [largeHdr][chunkHeader][payload...].
func (h *Heap) allocLarge(n int) mem.VAddr {
	total := largeHdr + chunkHeader + n
	pages := mem.PagesFor(total)
	size := pages * mem.PageSize
	if h.opts.MaxBytes > 0 && h.mappedBytes()+int64(size) > h.opts.MaxBytes {
		return mem.NullPtr
	}
	l := h.as.ReadPtr(h.base + offNextMap)
	if _, err := h.as.Map(l, pages, mem.KindMmap, h.opts.Name+".large"); err != nil {
		return mem.NullPtr
	}
	h.as.WritePtr(h.base+offNextMap, l+mem.VAddr(size))
	h.as.WriteU64(l, largeMagic)
	// Link into large list: next ptr at +8, region size at +16.
	h.as.WritePtr(l+8, h.as.ReadPtr(h.base+offLargeHead))
	h.as.WriteU64(l+16, uint64(size))
	h.as.WritePtr(h.base+offLargeHead, l)
	c := l + largeHdr
	h.as.WriteU64(c, uint64(size-largeHdr)|flagInUse|flagLarge)
	h.as.WriteU64(c+8, 0)
	h.addLive(1, int64(size-largeHdr))
	return c + chunkHeader
}

func (h *Heap) addLive(chunks int64, bytes int64) {
	h.as.WriteU64(h.base+offLiveChunks, uint64(int64(h.as.ReadU64(h.base+offLiveChunks))+chunks))
	h.as.WriteU64(h.base+offLiveBytes, uint64(int64(h.as.ReadU64(h.base+offLiveBytes))+bytes))
}

// chunkOf validates that p is a live payload pointer and returns its chunk
// address and size word, aborting (SIGABRT) on corruption — modelling
// glibc's integrity checks.
func (h *Heap) chunkOf(p mem.VAddr, op string) (c mem.VAddr, sizeWord uint64) {
	if p == mem.NullPtr {
		h.abort("%s(nil)", op)
	}
	c = p - chunkHeader
	if !h.as.Mapped(c) {
		h.abort("%s(%#x): pointer outside heap", op, uint64(p))
	}
	sizeWord = h.as.ReadU64(c)
	size := int(sizeWord &^ flagMask)
	if size < chunkHeader || size%8 != 0 || size > 1<<40 {
		h.abort("%s(%#x): corrupted chunk size %#x", op, uint64(p), sizeWord)
	}
	if sizeWord&flagInUse == 0 {
		h.abort("%s(%#x): double free or invalid pointer", op, uint64(p))
	}
	return c, sizeWord
}

// Free releases the allocation at payload pointer p.
func (h *Heap) Free(p mem.VAddr) {
	c, sizeWord := h.chunkOf(p, "free")
	size := int(sizeWord &^ flagMask)
	if sizeWord&flagLarge != 0 {
		h.freeLarge(c, size)
		return
	}
	ci := classFor(size)
	if ci < 0 || classSizes[ci] != size {
		h.abort("free(%#x): chunk size %d not a size class", uint64(p), size)
	}
	headAddr := h.base + offFreeHeads + mem.VAddr(ci*8)
	h.as.WriteU64(c, uint64(size)) // clear in-use and marker
	h.as.WritePtr(c+8, h.as.ReadPtr(headAddr))
	h.as.WritePtr(headAddr, c)
	h.addLive(-1, -int64(size))
}

// freeLarge unlinks and unmaps a large region given its chunk address.
func (h *Heap) freeLarge(c mem.VAddr, size int) {
	l := c - largeHdr
	if h.as.ReadU64(l) != largeMagic {
		h.abort("free large(%#x): corrupted region header", uint64(c))
	}
	// Unlink from the large list.
	prev := h.base + offLargeHead
	for cur := h.as.ReadPtr(prev); cur != mem.NullPtr; cur = h.as.ReadPtr(prev) {
		if cur == l {
			h.as.WritePtr(prev, h.as.ReadPtr(cur+8))
			if err := h.as.Unmap(l); err != nil {
				h.abort("free large: %v", err)
			}
			h.addLive(-1, -int64(size))
			return
		}
		prev = cur + 8
	}
	h.abort("free large(%#x): region not in list", uint64(c))
}

// UsableSize returns the payload capacity of the allocation at p.
func (h *Heap) UsableSize(p mem.VAddr) int {
	_, sizeWord := h.chunkOf(p, "usable_size")
	return int(sizeWord&^flagMask) - chunkHeader
}

// Mark sets the PHOENIX marker bit on the allocation at p — the
// phx_mark_used step of the developer's traversal (§3.4).
func (h *Heap) Mark(p mem.VAddr) {
	c, sizeWord := h.chunkOf(p, "mark")
	h.as.WriteU64(c, sizeWord|flagMarked)
}

// Marked reports whether the allocation at p carries the marker bit.
func (h *Heap) Marked(p mem.VAddr) bool {
	_, sizeWord := h.chunkOf(p, "marked")
	return sizeWord&flagMarked != 0
}

// Sweep frees every in-use chunk whose marker bit is clear and clears the
// marker on retained chunks, returning counts — the phx_finish_recovery
// cleanup (§3.4). The cost of the pass (per-chunk) is returned so the caller
// can charge the simulated clock.
func (h *Heap) Sweep() (freedChunks int, freedBytes int64, visited int) {
	type chunk struct {
		payload mem.VAddr
		size    int
		marked  bool
	}
	var live []chunk
	h.Walk(func(payload mem.VAddr, size int, inUse, marked bool) bool {
		visited++
		if inUse {
			live = append(live, chunk{payload, size, marked})
		}
		return true
	})
	for _, c := range live {
		if !c.marked {
			h.Free(c.payload)
			freedChunks++
			freedBytes += int64(c.size)
			continue
		}
		// Clear the marker for future restarts.
		ca := c.payload - chunkHeader
		h.as.WriteU64(ca, h.as.ReadU64(ca)&^uint64(flagMarked))
	}
	h.lastSweepChunks, h.lastSweepBytes = freedChunks, freedBytes
	return freedChunks, freedBytes, visited
}

// LastSweep returns the most recent Sweep's reclamation counts.
func (h *Heap) LastSweep() (chunks int, bytes int64) {
	return h.lastSweepChunks, h.lastSweepBytes
}

// Walk visits every chunk (in-use and free) in the heap. size is the full
// chunk size including header. Return false from fn to stop early.
func (h *Heap) Walk(fn func(payload mem.VAddr, size int, inUse, marked bool) bool) {
	for a := h.base; a != mem.NullPtr; a = h.as.ReadPtr(a + offArenaNext) {
		bump := int(h.as.ReadU32(a + offArenaBump))
		off := arenaHdr
		for off < bump {
			c := a + mem.VAddr(off)
			sizeWord := h.as.ReadU64(c)
			size := int(sizeWord &^ flagMask)
			if size < chunkHeader || size%8 != 0 {
				h.abort("walk: corrupted chunk at %#x (size word %#x)", uint64(c), sizeWord)
			}
			if !fn(c+chunkHeader, size, sizeWord&flagInUse != 0, sizeWord&flagMarked != 0) {
				return
			}
			off += size
		}
	}
	for l := h.as.ReadPtr(h.base + offLargeHead); l != mem.NullPtr; l = h.as.ReadPtr(l + 8) {
		c := l + largeHdr
		sizeWord := h.as.ReadU64(c)
		size := int(sizeWord &^ flagMask)
		if !fn(c+chunkHeader, size, sizeWord&flagInUse != 0, sizeWord&flagMarked != 0) {
			return
		}
	}
}

// Stats reports allocator accounting.
type Stats struct {
	LiveChunks  int64
	LiveBytes   int64 // chunk bytes including headers
	MappedBytes int64
	Arenas      int
	LargeRegs   int
}

// Stats returns a snapshot of allocator accounting read from simulated
// memory.
func (h *Heap) Stats() Stats {
	s := Stats{
		LiveChunks:  int64(h.as.ReadU64(h.base + offLiveChunks)),
		LiveBytes:   int64(h.as.ReadU64(h.base + offLiveBytes)),
		MappedBytes: h.mappedBytes(),
	}
	for a := h.base; a != mem.NullPtr; a = h.as.ReadPtr(a + offArenaNext) {
		s.Arenas++
	}
	for l := h.as.ReadPtr(h.base + offLargeHead); l != mem.NullPtr; l = h.as.ReadPtr(l + 8) {
		s.LargeRegs++
	}
	return s
}

// PreservedRanges returns the page ranges of every mapping belonging to this
// heap — what phx_restart's with_heap (or a PhxAllocator's managed ranges)
// hands to preserve_exec.
func (h *Heap) PreservedRanges() []linker.Range {
	var out []linker.Range
	// Brk arena.
	if m := h.as.FindMapping(h.base); m != nil {
		out = append(out, linker.Range{Start: m.Start, Len: m.Len()})
	}
	// Mmap arenas.
	for a := h.as.ReadPtr(h.base + offArenaNext); a != mem.NullPtr; a = h.as.ReadPtr(a + offArenaNext) {
		size := int(h.as.ReadU32(a + offArenaSize))
		out = append(out, linker.Range{Start: a, Len: size})
	}
	// Large regions.
	for l := h.as.ReadPtr(h.base + offLargeHead); l != mem.NullPtr; l = h.as.ReadPtr(l + 8) {
		size := int(h.as.ReadU64(l + 16))
		out = append(out, linker.Range{Start: l, Len: size})
	}
	return out
}
