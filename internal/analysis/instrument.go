package analysis

import (
	"fmt"

	"phoenix/internal/ir"
)

// Placement describes where the instrumenter put a function's unsafe-region
// transitions.
type Placement struct {
	Fn string
	// Tight is true when all modifications sit in one block and the
	// enter/exit pair brackets exactly the modification range; false means
	// the conservative whole-function placement was used (enter at function
	// entry, exit before every return).
	Tight bool
	// EnterBlock/EnterIndex locate the inserted unsafe_enter (tight mode).
	EnterBlock, EnterIndex int
	// ExitBlock/ExitIndex locate the inserted unsafe_exit (tight mode).
	ExitBlock, ExitIndex int
}

// Instrument inserts unsafe_enter/unsafe_exit state transitions into a copy
// of the module according to the analysis results, and returns the
// instrumented module plus the placements.
//
// Placement policy (conservative in the paper's sense — the instrumented
// range may only be larger than the true modification range, never smaller):
//
//   - if every modifying instruction of a function lies in a single basic
//     block, the enter/exit pair tightly brackets the first..last modifying
//     instructions of that block;
//   - otherwise the whole function body becomes the unsafe region: enter is
//     the first instruction, and an exit precedes every return.
func (a *Analyzer) Instrument() (*ir.Module, []Placement, error) {
	if len(a.ModRefs) == 0 && len(a.preservedParams) == 0 {
		return nil, nil, fmt.Errorf("analysis: Instrument before Run")
	}
	nm := a.Mod.Clone()
	var placements []Placement
	for _, name := range nm.Order {
		refs := a.ModRefs[name]
		if len(refs) == 0 {
			continue
		}
		f := nm.Funcs[name]
		first, last := refs[0], refs[0]
		sameBlock := true
		for _, r := range refs {
			if r.Less(first) {
				first = r
			}
			if last.Less(r) {
				last = r
			}
		}
		for _, r := range refs {
			if r.Block != first.Block {
				sameBlock = false
			}
		}
		if sameBlock {
			b := f.Blocks[first.Block]
			// Insert exit first so the enter index stays valid.
			b.Instrs = insertAt(b.Instrs, last.Index+1, ir.Instr{Op: ir.OpUnsafeExit})
			b.Instrs = insertAt(b.Instrs, first.Index, ir.Instr{Op: ir.OpUnsafeEnter})
			placements = append(placements, Placement{
				Fn: name, Tight: true,
				EnterBlock: first.Block, EnterIndex: first.Index,
				ExitBlock: last.Block, ExitIndex: last.Index + 2, // after shift by enter
			})
			continue
		}
		// Conservative whole-function region.
		entry := f.Entry()
		entry.Instrs = insertAt(entry.Instrs, 0, ir.Instr{Op: ir.OpUnsafeEnter})
		for _, b := range f.Blocks {
			for i := 0; i < len(b.Instrs); i++ {
				if b.Instrs[i].Op == ir.OpRet {
					b.Instrs = insertAt(b.Instrs, i, ir.Instr{Op: ir.OpUnsafeExit})
					i++
				}
			}
		}
		placements = append(placements, Placement{Fn: name, Tight: false})
	}
	return nm, placements, nil
}

func insertAt(instrs []ir.Instr, i int, in ir.Instr) []ir.Instr {
	instrs = append(instrs, ir.Instr{})
	copy(instrs[i+1:], instrs[i:])
	instrs[i] = in
	return instrs
}
