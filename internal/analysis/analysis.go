// Package analysis implements the PHOENIX static analyzer of §3.5: a
// layered, completeness-over-soundness taint analysis over the mini-IR that
// finds each function's modification range relative to the preserved state
// and instruments unsafe-region state transitions (Figure 6).
//
// The pipeline:
//
//  1. bottom-up function summaries (fixpoint over the call graph): which
//     parameters each function modifies and what its return value derives
//     from;
//  2. forward context propagation from the transaction entry function:
//     which parameters are bound to preserved state at runtime;
//  3. per-function modification ranges: the first and last instruction (in
//     layout order) that writes preserved state, directly or through a
//     callee;
//  4. instrumentation: unsafe_enter / unsafe_exit transitions feeding the
//     runtime state stack that the restart handler consults.
//
// Taint is deliberately coarse: any value derived from a preserved pointer
// (field, load, copy) is preserved-tainted — the paper's "arg and any
// arg->* are taint" heuristic, trading precision for completeness.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"phoenix/internal/ir"
)

// taint is a bitmask: bit i = derived from parameter i; bit 63 = derived
// from a preserved global root.
type taint uint64

const taintGlobal taint = 1 << 63

func paramBit(i int) taint { return 1 << uint(i) }

// Summary describes a function's externally visible memory effects.
type Summary struct {
	// ModifiesParam[i] is true if the function (transitively) stores
	// through a pointer derived from parameter i.
	ModifiesParam []bool
	// ModifiesGlobal is true if it stores through a global-derived pointer.
	ModifiesGlobal bool
	// ReturnTaint is the taint mask of the return value in terms of the
	// caller's arguments/global.
	ReturnTaint taint
}

// Analyzer carries one analysis run.
type Analyzer struct {
	Mod       *ir.Module
	Summaries map[string]*Summary

	// addressTaken lists functions whose address is taken (funcref): the
	// candidate targets the analyzer conservatively merges at every icall
	// site (§3.5's indirect-call treatment).
	addressTaken []string

	// preservedParams[f] is the set (mask) of f's parameters that may be
	// bound to preserved state in some call context reachable from the
	// entry.
	preservedParams map[string]taint

	// ModRefs[f] lists the instructions that modify preserved state.
	ModRefs map[string][]ir.InstrRef

	// Externals lists callees not defined in the module; they are assumed
	// effect-free unless listed in ExternalModifies.
	Externals []string
	// ExternalModifies maps an external function to the parameter indices
	// it modifies (the built-in libc annotations of §3.5).
	ExternalModifies map[string][]int
}

// New prepares an analyzer for the module.
func New(m *ir.Module) *Analyzer {
	return &Analyzer{
		Mod:              m,
		Summaries:        make(map[string]*Summary),
		preservedParams:  make(map[string]taint),
		ModRefs:          make(map[string][]ir.InstrRef),
		ExternalModifies: make(map[string][]int),
	}
}

// ComputeSummaries runs the bottom-up fixpoint (step 1). It is idempotent.
func (a *Analyzer) ComputeSummaries() {
	a.addressTaken = nil
	seen := map[string]bool{}
	for _, name := range a.Mod.Order {
		a.Mod.Funcs[name].ForEachInstr(func(_ ir.InstrRef, in *ir.Instr) {
			if in.Op == ir.OpFuncRef && !seen[in.Fn] {
				seen[in.Fn] = true
				a.addressTaken = append(a.addressTaken, in.Fn)
			}
		})
	}
	for _, name := range a.Mod.Order {
		f := a.Mod.Funcs[name]
		a.Summaries[name] = &Summary{ModifiesParam: make([]bool, len(f.Params))}
	}
	for changed := true; changed; {
		changed = false
		for _, name := range a.Mod.Order {
			if a.summarizeOnce(a.Mod.Funcs[name]) {
				changed = true
			}
		}
	}
}

// icallCandidates returns the address-taken functions an indirect call with
// the given arity could reach — merged conservatively per §3.5 ("the
// current tool conservatively merges all possible callees' effects for each
// call site").
func (a *Analyzer) icallCandidates(arity int) []string {
	var out []string
	for _, name := range a.addressTaken {
		if f := a.Mod.Funcs[name]; f != nil && len(f.Params) == arity {
			out = append(out, name)
		}
	}
	return out
}

// regTaints computes the flow-insensitive register taint map for f, given
// per-parameter identity taints. Iterates locally to a fixpoint (mutable
// registers and loops).
func (a *Analyzer) regTaints(f *ir.Func) map[string]taint {
	t := make(map[string]taint)
	for i, p := range f.Params {
		t[p] = paramBit(i)
	}
	globals := map[string]bool{}
	for _, g := range a.Mod.Globals {
		globals[g] = true
	}
	operand := func(name string) taint {
		if globals[name] {
			return taintGlobal
		}
		return t[name]
	}
	for changed := true; changed; {
		changed = false
		upd := func(dst string, mask taint) {
			if t[dst]|mask != t[dst] {
				t[dst] |= mask
				changed = true
			}
		}
		f.ForEachInstr(func(_ ir.InstrRef, in *ir.Instr) {
			switch in.Op {
			case ir.OpBin:
				upd(in.Dst, operand(in.A)|operand(in.B))
			case ir.OpLoad:
				// Coarse: a value loaded from preserved memory is itself
				// treated as preserved (it may be an interior pointer).
				upd(in.Dst, operand(in.A))
			case ir.OpGetField:
				upd(in.Dst, operand(in.A))
			case ir.OpCall:
				sum := a.Summaries[in.Fn]
				var ret taint
				if sum != nil {
					for i, arg := range in.Args {
						if i < 64 && sum.ReturnTaint&paramBit(i) != 0 {
							ret |= operand(arg)
						}
					}
					if sum.ReturnTaint&taintGlobal != 0 {
						ret |= taintGlobal
					}
				}
				if in.Dst != "" {
					upd(in.Dst, ret)
				}
			case ir.OpICall:
				var ret taint
				for _, cand := range a.icallCandidates(len(in.Args)) {
					sum := a.Summaries[cand]
					if sum == nil {
						continue
					}
					for i, arg := range in.Args {
						if i < 64 && sum.ReturnTaint&paramBit(i) != 0 {
							ret |= operand(arg)
						}
					}
					if sum.ReturnTaint&taintGlobal != 0 {
						ret |= taintGlobal
					}
				}
				if in.Dst != "" {
					upd(in.Dst, ret)
				}
			}
		})
	}
	return t
}

// summarizeOnce recomputes f's summary; reports whether it changed.
func (a *Analyzer) summarizeOnce(f *ir.Func) bool {
	t := a.regTaints(f)
	globals := map[string]bool{}
	for _, g := range a.Mod.Globals {
		globals[g] = true
	}
	operand := func(name string) taint {
		if globals[name] {
			return taintGlobal
		}
		return t[name]
	}
	ns := &Summary{ModifiesParam: make([]bool, len(f.Params))}
	applyMask := func(mask taint) {
		if mask&taintGlobal != 0 {
			ns.ModifiesGlobal = true
		}
		for i := range f.Params {
			if mask&paramBit(i) != 0 {
				ns.ModifiesParam[i] = true
			}
		}
	}
	f.ForEachInstr(func(_ ir.InstrRef, in *ir.Instr) {
		switch in.Op {
		case ir.OpStore:
			applyMask(operand(in.A))
		case ir.OpCall:
			if sum := a.Summaries[in.Fn]; sum != nil {
				for i, arg := range in.Args {
					if i < len(sum.ModifiesParam) && sum.ModifiesParam[i] {
						applyMask(operand(arg))
					}
				}
				if sum.ModifiesGlobal {
					ns.ModifiesGlobal = true
				}
			} else if idxs, ok := a.ExternalModifies[in.Fn]; ok {
				for _, i := range idxs {
					if i < len(in.Args) {
						applyMask(operand(in.Args[i]))
					}
				}
			}
		case ir.OpICall:
			for _, cand := range a.icallCandidates(len(in.Args)) {
				sum := a.Summaries[cand]
				if sum == nil {
					continue
				}
				for i, arg := range in.Args {
					if i < len(sum.ModifiesParam) && sum.ModifiesParam[i] {
						applyMask(operand(arg))
					}
				}
				if sum.ModifiesGlobal {
					ns.ModifiesGlobal = true
				}
			}
		case ir.OpRet:
			if in.Val != "" {
				ns.ReturnTaint |= operand(in.Val)
			}
		}
	})
	old := a.Summaries[f.Name]
	changed := old == nil || old.ModifiesGlobal != ns.ModifiesGlobal || old.ReturnTaint != ns.ReturnTaint
	if old != nil {
		for i := range ns.ModifiesParam {
			if ns.ModifiesParam[i] != old.ModifiesParam[i] {
				changed = true
			}
		}
	}
	a.Summaries[f.Name] = ns
	return changed
}

// PropagateContexts performs step 2: starting from entry (whose
// entryPreserved parameter indices, plus all globals, carry preserved
// state), propagate which parameters of reachable functions may be bound to
// preserved data.
func (a *Analyzer) PropagateContexts(entry string, entryPreserved []int) error {
	f, ok := a.Mod.Funcs[entry]
	if !ok {
		return fmt.Errorf("analysis: unknown entry function %q", entry)
	}
	var mask taint
	for _, i := range entryPreserved {
		if i >= len(f.Params) {
			return fmt.Errorf("analysis: entry preserved param %d out of range", i)
		}
		mask |= paramBit(i)
	}
	a.preservedParams = map[string]taint{entry: mask}
	work := []string{entry}
	for len(work) > 0 {
		name := work[0]
		work = work[1:]
		fn := a.Mod.Funcs[name]
		if fn == nil {
			continue
		}
		pmask := a.preservedParams[name]
		t := a.regTaints(fn)
		globals := map[string]bool{}
		for _, g := range a.Mod.Globals {
			globals[g] = true
		}
		preservedVal := func(name string) bool {
			if globals[name] {
				return true
			}
			m := t[name]
			if m&taintGlobal != 0 {
				return true
			}
			return m&pmask != 0
		}
		fn.ForEachInstr(func(_ ir.InstrRef, in *ir.Instr) {
			var targets []string
			switch in.Op {
			case ir.OpCall:
				if _, defined := a.Mod.Funcs[in.Fn]; defined {
					targets = []string{in.Fn}
				}
			case ir.OpICall:
				targets = a.icallCandidates(len(in.Args))
			default:
				return
			}
			var calleeMask taint
			for i, arg := range in.Args {
				if i < 64 && preservedVal(arg) {
					calleeMask |= paramBit(i)
				}
			}
			for _, target := range targets {
				old := a.preservedParams[target]
				if old|calleeMask != old || !a.seen(target) {
					a.preservedParams[target] = old | calleeMask
					work = append(work, target)
				}
			}
		})
	}
	return nil
}

func (a *Analyzer) seen(fn string) bool {
	_, ok := a.preservedParams[fn]
	return ok
}

// FindModRefs performs step 3: per reachable function, the instructions that
// modify preserved state.
func (a *Analyzer) FindModRefs() {
	a.ModRefs = make(map[string][]ir.InstrRef)
	for name, pmask := range a.preservedParams {
		fn := a.Mod.Funcs[name]
		if fn == nil {
			continue
		}
		t := a.regTaints(fn)
		globals := map[string]bool{}
		for _, g := range a.Mod.Globals {
			globals[g] = true
		}
		preservedVal := func(n string) bool {
			if globals[n] {
				return true
			}
			m := t[n]
			return m&taintGlobal != 0 || m&pmask != 0
		}
		var refs []ir.InstrRef
		fn.ForEachInstr(func(ref ir.InstrRef, in *ir.Instr) {
			switch in.Op {
			case ir.OpStore:
				if preservedVal(in.A) {
					refs = append(refs, ref)
				}
			case ir.OpCall:
				if sum := a.Summaries[in.Fn]; sum != nil {
					for i, arg := range in.Args {
						if i < len(sum.ModifiesParam) && sum.ModifiesParam[i] && preservedVal(arg) {
							refs = append(refs, ref)
							return
						}
					}
					if sum.ModifiesGlobal {
						refs = append(refs, ref)
					}
				} else if idxs, ok := a.ExternalModifies[in.Fn]; ok {
					for _, i := range idxs {
						if i < len(in.Args) && preservedVal(in.Args[i]) {
							refs = append(refs, ref)
							return
						}
					}
				}
			case ir.OpICall:
				for _, cand := range a.icallCandidates(len(in.Args)) {
					sum := a.Summaries[cand]
					if sum == nil {
						continue
					}
					for i, arg := range in.Args {
						if i < len(sum.ModifiesParam) && sum.ModifiesParam[i] && preservedVal(arg) {
							refs = append(refs, ref)
							return
						}
					}
					if sum.ModifiesGlobal {
						refs = append(refs, ref)
						return
					}
				}
			}
		})
		if len(refs) > 0 {
			a.ModRefs[name] = refs
		}
	}
}

// Run executes the whole pipeline.
func (a *Analyzer) Run(entry string, entryPreserved []int) error {
	a.ComputeSummaries()
	if err := a.PropagateContexts(entry, entryPreserved); err != nil {
		return err
	}
	a.FindModRefs()
	return nil
}

// Report renders a human-readable analysis report.
func (a *Analyzer) Report() string {
	var sb strings.Builder
	names := make([]string, 0, len(a.Summaries))
	for n := range a.Summaries {
		names = append(names, n)
	}
	sort.Strings(names)
	sb.WriteString("function summaries:\n")
	for _, n := range names {
		s := a.Summaries[n]
		mods := []string{}
		for i, m := range s.ModifiesParam {
			if m {
				mods = append(mods, fmt.Sprintf("param%d", i))
			}
		}
		if s.ModifiesGlobal {
			mods = append(mods, "global")
		}
		if len(mods) == 0 {
			mods = append(mods, "none")
		}
		fmt.Fprintf(&sb, "  %-24s modifies: %s\n", n, strings.Join(mods, ","))
	}
	sb.WriteString("modification ranges:\n")
	var modNames []string
	for n := range a.ModRefs {
		modNames = append(modNames, n)
	}
	sort.Strings(modNames)
	for _, n := range modNames {
		refs := a.ModRefs[n]
		first, last := refs[0], refs[0]
		for _, r := range refs {
			if r.Less(first) {
				first = r
			}
			if last.Less(r) {
				last = r
			}
		}
		fmt.Fprintf(&sb, "  %-24s %d modifying instr(s), range b%d:%d .. b%d:%d\n",
			n, len(refs), first.Block, first.Index, last.Block, last.Index)
	}
	return sb.String()
}
