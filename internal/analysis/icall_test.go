package analysis

import (
	"strings"
	"testing"

	"phoenix/internal/ir"
)

// DispatchModel exercises indirect calls: a command table dispatches through
// a function pointer to either a read-only or a modifying handler — the
// Redis command-table shape §3.5's limitations discuss. The analyzer cannot
// know which target runs, so it conservatively merges both callees' effects
// at the icall site.
const DispatchModel = `
global table

func dispatch(cmd, key, val) {
entry:
  getf = funcref do_get
  setf = funcref do_set
  iswrite = eq cmd, 1
  cbr iswrite, pickset, pickget
pickset:
  h = add setf, 0
  br go
pickget:
  h = add getf, 0
  br go
go:
  r = icall h(table, key, val)
  ret r
}

func do_get(t, key, val) {
entry:
  b = load t, 8
  v = load b, 0
  ret v
}

func do_set(t, key, val) {
entry:
  b = load t, 8
  store b, 0, val
  c = load t, 16
  c1 = add c, 1
  store t, 16, c1
  ret c1
}
`

func TestICallInterp(t *testing.T) {
	m := ir.MustParse(DispatchModel)
	in := ir.NewInterp(m)
	bucket := in.Global("table") + 256
	in.Store(in.Global("table")+8, bucket)
	// Write path (cmd=1).
	if _, err := in.Call("dispatch", 1, 5, 55); err != nil {
		t.Fatal(err)
	}
	if in.Load(bucket) != 55 || in.Load(in.Global("table")+16) != 1 {
		t.Fatal("indirect set did not apply")
	}
	// Read path (cmd=0).
	got, err := in.Call("dispatch", 0, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 55 {
		t.Fatalf("indirect get = %d", got)
	}
}

func TestICallMergedSummaries(t *testing.T) {
	m := ir.MustParse(DispatchModel)
	a := New(m)
	if err := a.Run("dispatch", nil); err != nil {
		t.Fatal(err)
	}
	// do_set modifies t; do_get does not.
	if !a.Summaries["do_set"].ModifiesParam[0] || a.Summaries["do_get"].ModifiesParam[0] {
		t.Fatalf("handler summaries wrong: %+v / %+v", a.Summaries["do_set"], a.Summaries["do_get"])
	}
	// The icall site merges both: dispatch conservatively modifies global
	// state even on the read path.
	if !a.Summaries["dispatch"].ModifiesGlobal {
		t.Fatal("icall effects not merged into dispatch")
	}
	if got := len(a.ModRefs["dispatch"]); got != 1 {
		t.Fatalf("dispatch mod refs = %d, want the icall site", got)
	}
	// Context propagation reaches both candidates.
	if len(a.ModRefs["do_set"]) == 0 {
		t.Fatal("do_set not analysed as reachable with preserved state")
	}
}

func TestICallInstrumentedVerdicts(t *testing.T) {
	m := ir.MustParse(DispatchModel)
	a := New(m)
	if err := a.Run("dispatch", nil); err != nil {
		t.Fatal(err)
	}
	nm, placements, err := a.Instrument()
	if err != nil {
		t.Fatal(err)
	}
	instrumented := map[string]bool{}
	for _, p := range placements {
		instrumented[p.Fn] = true
	}
	if !instrumented["dispatch"] || !instrumented["do_set"] {
		t.Fatalf("placements = %+v", placements)
	}
	// do_get is read-only yet conservatively reachable; the paper accepts
	// this imprecision ("callees of the same call site often share similar
	// modification semantics") — it must NOT be instrumented since it has
	// no modifying instructions.
	if instrumented["do_get"] {
		t.Fatal("read-only handler instrumented")
	}
	// Round-trip the instrumented module through the textual format.
	text := nm.String()
	if !strings.Contains(text, "icall") || !strings.Contains(text, "funcref") {
		t.Fatalf("textual form lost indirect ops:\n%s", text)
	}
	if _, err := ir.Parse(text); err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	// Crash mid-do_set: unsafe (dispatch M + do_set M). Crash in do_get
	// under dispatch's M region: conservatively unsafe too.
	sawSafe, sawUnsafe := false, false
	for crashAt := 1; crashAt < 80; crashAt++ {
		in := ir.NewInterp(nm)
		bucket := in.Global("table") + 256
		in.Store(in.Global("table")+8, bucket)
		in.CrashAtStep = crashAt
		_, err := in.Call("dispatch", 1, 5, 55)
		if err == nil {
			break
		}
		crash, ok := err.(*ir.ErrCrash)
		if !ok {
			t.Fatal(err)
		}
		if ir.Safe(crash.Stack) {
			sawSafe = true
		} else {
			sawUnsafe = true
		}
	}
	if !sawSafe || !sawUnsafe {
		t.Fatalf("sweep lacked variety: safe=%v unsafe=%v", sawSafe, sawUnsafe)
	}
}

func TestFuncRefValidate(t *testing.T) {
	if _, err := ir.Parse("func f() {\nentry:\n  x = funcref nope\n  ret\n}"); err == nil {
		// Parse succeeds; Validate must flag it.
		m, _ := ir.Parse("func f() {\nentry:\n  x = funcref nope\n  ret\n}")
		if _, err := m.Validate(); err == nil {
			t.Fatal("funcref to unknown function validated")
		}
	}
}
