package analysis

import (
	"testing"

	"phoenix/internal/ir"
)

// LSMModel is a second application model: a LevelDB-style put path where a
// write-ahead-log append is an *external* function (the glibc/file-IO case
// of §3.5's limitations). Without an annotation the analyzer cannot see the
// WAL write's effect; with the built-in-style annotation the append joins
// the modification range, as the paper says LevelDB requires manually.
const LSMModel = `
global db

func put(key, val) {
entry:
  rec = alloc 32
  store rec, 0, key
  store rec, 8, val
  call wal_append(db, rec)
  n = call mt_insert(db, key, val)
  ret n
}

func mt_insert(t, key, val) {
entry:
  node = alloc 32
  store node, 8, key
  store node, 16, val
  head = load t, 0
  store node, 0, head
  store t, 0, node
  c = load t, 8
  c1 = add c, 1
  store t, 8, c1
  ret node
}
`

func TestExternalUnannotated(t *testing.T) {
	m := ir.MustParse(LSMModel)
	ext, err := m.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if len(ext) != 1 || ext[0] != "wal_append" {
		t.Fatalf("externals = %v", ext)
	}
	a := New(m)
	if err := a.Run("put", nil); err != nil {
		t.Fatal(err)
	}
	// Without annotation, put's modification range starts at the mt_insert
	// call: the WAL append is invisible.
	refs := a.ModRefs["put"]
	if len(refs) != 1 {
		t.Fatalf("put mod refs = %v, want only the mt_insert call", refs)
	}
	// mt_insert: three modifying stores through t (head link, node link via
	// t-derived head?, counter) — node stores excluded.
	got := len(a.ModRefs["mt_insert"])
	if got != 2 {
		t.Fatalf("mt_insert mod refs = %d, want 2 (t head link + counter)", got)
	}
}

func TestExternalAnnotated(t *testing.T) {
	m := ir.MustParse(LSMModel)
	a := New(m)
	// The built-in annotation: wal_append(db, rec) modifies the database
	// state reachable from its first argument (the paper's LevelDB manual
	// annotation tying file writes to in-memory state).
	a.ExternalModifies["wal_append"] = []int{0}
	if err := a.Run("put", nil); err != nil {
		t.Fatal(err)
	}
	refs := a.ModRefs["put"]
	if len(refs) != 2 {
		t.Fatalf("annotated put mod refs = %d, want 2 (wal_append + mt_insert)", len(refs))
	}
	// The instrumented range must now begin at the wal_append call.
	nm, placements, err := a.Instrument()
	if err != nil {
		t.Fatal(err)
	}
	var put *Placement
	for i := range placements {
		if placements[i].Fn == "put" {
			put = &placements[i]
		}
	}
	if put == nil || !put.Tight {
		t.Fatalf("put placement = %+v", put)
	}
	// Execute the instrumented module with the external wired in; crash
	// verdicts must cover the WAL append now.
	in := ir.NewInterp(nm)
	appended := 0
	in.Externals["wal_append"] = func(args []int64) int64 {
		appended++
		return 0
	}
	if _, err := in.Call("put", 7, 70); err != nil {
		t.Fatal(err)
	}
	if appended != 1 {
		t.Fatalf("wal_append ran %d times", appended)
	}
	// Sweep crash points: any crash while the external WAL call is pending
	// must be unsafe.
	sawUnsafeAtCall := false
	for crashAt := 1; crashAt < 60; crashAt++ {
		in := ir.NewInterp(nm)
		in.Externals["wal_append"] = func([]int64) int64 { return 0 }
		in.CrashAtStep = crashAt
		_, err := in.Call("put", 7, 70)
		if err == nil {
			break
		}
		crash, ok := err.(*ir.ErrCrash)
		if !ok {
			t.Fatal(err)
		}
		if !ir.Safe(crash.Stack) {
			sawUnsafeAtCall = true
		}
	}
	if !sawUnsafeAtCall {
		t.Fatal("no crash point inside the annotated region")
	}
}

func TestExternalSummaryPropagation(t *testing.T) {
	// An external's effect must propagate through wrappers: f calls the
	// annotated external with its own parameter; callers of f with
	// preserved arguments become modifying.
	src := `
global g

func outer() {
entry:
  call wrapper(g)
  ret
}

func wrapper(p) {
entry:
  call ext_mutate(p)
  ret
}
`
	m := ir.MustParse(src)
	a := New(m)
	a.ExternalModifies["ext_mutate"] = []int{0}
	if err := a.Run("outer", nil); err != nil {
		t.Fatal(err)
	}
	if !a.Summaries["wrapper"].ModifiesParam[0] {
		t.Fatal("external effect not folded into wrapper's summary")
	}
	if len(a.ModRefs["outer"]) != 1 {
		t.Fatalf("outer mod refs = %v", a.ModRefs["outer"])
	}
}
