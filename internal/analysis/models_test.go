package analysis

import (
	"testing"

	"phoenix/internal/ir"
)

// TestIRAppsWellFormed checks every registered app model parses, validates,
// analyzes from each serving entry, and instruments without error — the
// contract both halves of the phxvet differential campaign rely on.
func TestIRAppsWellFormed(t *testing.T) {
	apps := IRApps()
	if len(apps) != 5 {
		t.Fatalf("IRApps() returned %d models, want 5", len(apps))
	}
	for i := 1; i < len(apps); i++ {
		if apps[i-1].Name >= apps[i].Name {
			t.Fatalf("IRApps() not sorted by name: %q >= %q", apps[i-1].Name, apps[i].Name)
		}
	}
	for _, app := range apps {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			m, err := ir.Parse(app.Src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if _, err := m.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
			if _, ok := m.Funcs[app.Setup]; !ok {
				t.Fatalf("setup function %q missing", app.Setup)
			}
			if len(app.Entries) == 0 || len(app.Calls) == 0 || len(app.Mutants) == 0 {
				t.Fatal("app spec missing entries, calls, or mutants")
			}
			for _, e := range app.Entries {
				a := New(m)
				if err := a.Run(e, nil); err != nil {
					t.Fatalf("analyze entry %s: %v", e, err)
				}
				if _, _, err := a.Instrument(); err != nil {
					t.Fatalf("instrument entry %s: %v", e, err)
				}
			}
			for _, mu := range app.Mutants {
				ref, err := ir.FindStore(m, mu.Fn, mu.NthStore)
				if err != nil {
					t.Fatalf("mutant store: %v", err)
				}
				if _, pos, err := ir.InsertDanglingStore(m, mu.Fn, ref); err != nil || pos.IsZero() {
					t.Fatalf("plant mutant: pos=%v err=%v", pos, err)
				}
			}
		})
	}
}

// TestIRAppsRunCleanly drives each model through setup plus a deterministic
// burst of serving calls, restarts, and asserts the restart audit is clean
// and the preserved checksum survives — the shipped models must be free of
// the very bug class the campaign plants.
func TestIRAppsRunCleanly(t *testing.T) {
	for _, app := range IRApps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			in := ir.NewInterp(ir.MustParse(app.Src))
			if _, err := in.Call(app.Setup); err != nil {
				t.Fatalf("setup: %v", err)
			}
			drive := func() {
				for round := 0; round < 6; round++ {
					for _, c := range app.Calls {
						args := make([]int64, c.NArgs)
						for i := range args {
							args[i] = int64(round+i) % c.ArgMax
						}
						if _, err := in.Call(c.Fn, args...); err != nil {
							t.Fatalf("%s%v: %v", c.Fn, args, err)
						}
					}
				}
			}
			drive()
			sum := in.PreservedChecksum()
			if d := in.PreserveRestart(); len(d) != 0 {
				t.Fatalf("restart audit found dangling pointers: %+v", d)
			}
			if got := in.PreservedChecksum(); got != sum {
				t.Fatalf("preserved checksum changed across restart: %x -> %x", sum, got)
			}
			// The app keeps serving on the surviving heap.
			drive()
			if d := in.PreserveRestart(); len(d) != 0 {
				t.Fatalf("second restart audit found dangling pointers: %+v", d)
			}
		})
	}
}

// TestIRAppMutantsManifest asserts each registered mutant produces at least
// one dynamic dangling-pointer observation under the same deterministic
// drive — the ground truth the differential campaign compares phxvet against.
func TestIRAppMutantsManifest(t *testing.T) {
	for _, app := range IRApps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			m := ir.MustParse(app.Src)
			for _, mu := range app.Mutants {
				ref, err := ir.FindStore(m, mu.Fn, mu.NthStore)
				if err != nil {
					t.Fatal(err)
				}
				mut, _, err := ir.InsertDanglingStore(m, mu.Fn, ref)
				if err != nil {
					t.Fatal(err)
				}
				in := ir.NewInterp(mut)
				if _, err := in.Call(app.Setup); err != nil {
					t.Fatalf("setup: %v", err)
				}
				violations := 0
				for round := 0; round < 8; round++ {
					for _, c := range app.Calls {
						args := make([]int64, c.NArgs)
						for i := range args {
							args[i] = int64(round+i) % c.ArgMax
						}
						if _, err := in.Call(c.Fn, args...); err != nil {
							violations++ // post-restart dangling access fault
						}
					}
					violations += len(in.PreserveRestart())
				}
				if violations == 0 {
					t.Fatalf("mutant %s#%d never manifested dynamically", mu.Fn, mu.NthStore)
				}
			}
		})
	}
}
