package pta

import (
	"fmt"

	"phoenix/internal/ir"
)

// The rewind-escape pass. Unlike the Andersen solution — which is
// flow-INsensitive and cannot say when a pointer was created relative to a
// store — this pass runs a forward, per-program-point dataflow over each
// serving-reachable function's CFG, tracking which registers may hold a
// pointer to preserved state allocated *during the current request* (a
// "domain-fresh" pointer). The rewind rung's undo journal covers the
// preserved arena only; the transient arena models state outside the
// simulated address space (Go-side handles, the WAL on the simulated disk)
// that a domain discard cannot rewind. A store that publishes a domain-fresh
// pointer into transient state therefore leaves, after a discard, a live
// word aiming into unwound heap — the bug class ir.(*Interp).DomainDiscard
// audits dynamically.
//
// Soundness caveats (documented, mutant-validated for the covered flows):
// the taint is register-level — it does not flow through memory (a fresh
// pointer stored to scratch and reloaded is untracked; the Andersen
// dangling/gap checks cover stash-and-reload patterns) and does not flow
// into callee parameters (a callee storing its argument transiently is
// untracked). Returns ARE tracked: a function whose return value may be
// domain-fresh taints its callers' result registers, via an interprocedural
// summary fixpoint.

// taintState maps register name → may hold a domain-fresh preserved pointer.
type taintState map[string]bool

// clone copies a taint state.
func (t taintState) clone() taintState {
	n := make(taintState, len(t))
	for k, v := range t {
		if v {
			n[k] = true
		}
	}
	return n
}

// join unions src into dst, reporting whether dst changed.
func (t taintState) join(src taintState) bool {
	changed := false
	for k, v := range src {
		if v && !t[k] {
			t[k] = true
			changed = true
		}
	}
	return changed
}

// successors returns the labels a block can branch to.
func successors(b *ir.Block) []string {
	var out []string
	for i := range b.Instrs {
		switch b.Instrs[i].Op {
		case ir.OpBr:
			out = append(out, b.Instrs[i].L1)
		case ir.OpCbr:
			out = append(out, b.Instrs[i].L1, b.Instrs[i].L2)
		}
	}
	return out
}

// rewindEscapes runs the pass over every serving-reachable function and
// returns the findings (unsorted; Vet merges and sorts).
func (a *Analysis) rewindEscapes(reachable map[string]bool) []Finding {
	m := a.Mod

	// Interprocedural summary fixpoint: retFresh[f] — f may return a
	// domain-fresh pointer. Only reachable functions allocate inside a
	// domain, but summaries are computed for every function so indirect
	// targets resolve uniformly.
	retFresh := map[string]bool{}
	for changed := true; changed; {
		changed = false
		for _, name := range m.Order {
			fresh := a.fnDataflow(name, retFresh, nil)
			if fresh && !retFresh[name] {
				retFresh[name] = true
				changed = true
			}
		}
	}

	var findings []Finding
	for _, name := range m.Order {
		if !reachable[name] {
			continue
		}
		fn := name
		a.fnDataflow(fn, retFresh, func(in *ir.Instr, t taintState) {
			if in.Op != ir.OpStore || !t[in.Val] {
				return
			}
			var tgtTransient []Obj
			for _, o := range a.PointsTo(fn, in.A) {
				if a.objs[o].Kind == ObjTalloc {
					tgtTransient = append(tgtTransient, o)
				}
			}
			if len(tgtTransient) == 0 {
				return
			}
			// Name the freshest value object the Andersen solution agrees on.
			valObj := ""
			for _, o := range a.PointsTo(fn, in.Val) {
				if a.objs[o].Kind == ObjAlloc {
					valObj = a.Info(o).String()
					break
				}
			}
			if valObj == "" {
				valObj = "preserved allocation"
			}
			findings = append(findings, Finding{
				Kind: KindRewindEscape, Fn: fn, Line: in.Pos.Line, Col: in.Pos.Col,
				Msg: fmt.Sprintf("store publishes domain-fresh %s into transient %s, which outlives a rewind-domain discard",
					valObj, a.Info(tgtTransient[0])),
			})
		})
	}
	return findings
}

// fnDataflow runs the forward taint dataflow over fn's CFG. It returns
// whether fn may return a domain-fresh pointer under the given summaries.
// When visit is non-nil it is called for every instruction with the taint
// state holding immediately before it (called once per instruction, after
// the block-entry states have converged).
func (a *Analysis) fnDataflow(fn string, retFresh map[string]bool, visit func(*ir.Instr, taintState)) bool {
	f := a.Mod.Funcs[fn]
	if f == nil || len(f.Blocks) == 0 {
		return false
	}
	blockByLabel := map[string]*ir.Block{}
	entryIn := map[string]taintState{}
	for _, b := range f.Blocks {
		blockByLabel[b.Label] = b
		entryIn[b.Label] = taintState{}
	}

	returnsFresh := false
	// transfer interprets one block from state t, returning the out state.
	transfer := func(b *ir.Block, t taintState, emit bool) taintState {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if emit && visit != nil {
				visit(in, t)
			}
			switch in.Op {
			case ir.OpAlloc:
				t[in.Dst] = true
			case ir.OpTalloc, ir.OpConst, ir.OpLoad, ir.OpFuncRef:
				delete(t, in.Dst)
			case ir.OpGetField:
				t[in.Dst] = t[in.A]
				if !t[in.Dst] {
					delete(t, in.Dst)
				}
			case ir.OpBin:
				// Pointer arithmetic rides add/sub in this IR; other
				// operators produce scalars.
				if (in.Bin == ir.BinAdd || in.Bin == ir.BinSub) && (t[in.A] || t[in.B]) {
					t[in.Dst] = true
				} else {
					delete(t, in.Dst)
				}
			case ir.OpCall:
				if in.Dst != "" {
					if retFresh[in.Fn] {
						t[in.Dst] = true
					} else {
						delete(t, in.Dst)
					}
				}
			case ir.OpICall:
				if in.Dst != "" {
					fresh := false
					for _, tgt := range a.ICallTargets(fn, in) {
						if retFresh[tgt] {
							fresh = true
						}
					}
					if fresh {
						t[in.Dst] = true
					} else {
						delete(t, in.Dst)
					}
				}
			case ir.OpRet:
				if in.Val != "" && t[in.Val] {
					returnsFresh = true
				}
			}
		}
		return t
	}

	// Worklist to a fixpoint over block-entry states.
	work := []string{f.Blocks[0].Label}
	inWork := map[string]bool{f.Blocks[0].Label: true}
	for len(work) > 0 {
		label := work[0]
		work = work[1:]
		inWork[label] = false
		b := blockByLabel[label]
		if b == nil {
			continue
		}
		out := transfer(b, entryIn[label].clone(), false)
		for _, s := range successors(b) {
			if st, ok := entryIn[s]; ok && st.join(out) && !inWork[s] {
				inWork[s] = true
				work = append(work, s)
			}
		}
	}

	// Emission pass: layout block order, converged entry states.
	if visit != nil {
		for _, b := range f.Blocks {
			transfer(b, entryIn[b.Label].clone(), true)
		}
	}
	return returnsFresh
}
