package pta

import (
	"testing"

	"phoenix/internal/ir"
)

// FuzzSolve feeds arbitrary .pir text through the points-to solver and the
// verifier, asserting neither panics or diverges on anything the parser
// accepts. Seeds mirror the internal/ir fuzz corpus plus pta-adversarial
// shapes (cycles, self-references, icall-through-heap).
func FuzzSolve(f *testing.F) {
	f.Add("global g\nfunc f() {\nentry:\n  t = talloc 16\n  store g, 0, t\n  ret\n}")
	f.Add("global g\nfunc f() {\nentry:\n  store g, 0, g\n  ret\n}")
	f.Add("global g\nfunc f() {\nentry:\n  a = alloc 8\n  b = alloc 8\n  store a, 0, b\n  store b, 0, a\n  store g, 0, a\n  ret\n}")
	f.Add("global g\nfunc h(x) {\nentry:\n  store g, 0, x\n  ret\n}\nfunc f() {\nentry:\n  p = funcref h\n  store g, 8, p\n  q = load g, 8\n  icall q(q)\n  ret\n}")
	f.Add("func f(a, b) {\nentry:\n  x = add a, b\n  store a, 0, x\n  cbr x, entry, out\nout:\n  ret x\n}")
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ir.Parse(src)
		if err != nil {
			return
		}
		if _, err := m.Validate(); err != nil {
			return
		}
		a := Solve(m)
		// Termination sanity: a monotone solver over a finite domain cannot
		// exceed total-growth-many passes.
		if bound := a.NumObjects()*a.NumObjects()*8 + len(m.Funcs)*8 + 4; a.Passes() > bound {
			t.Fatalf("solver took %d passes on %d objects", a.Passes(), a.NumObjects())
		}
		// Vet every function as an entry; must never panic, only error on
		// unknown entries (impossible here).
		for _, name := range m.Order {
			if _, err := Vet(m, []string{name}); err != nil {
				t.Fatalf("Vet(%s): %v", name, err)
			}
		}
	})
}
