package pta

import (
	"strings"
	"testing"

	"phoenix/internal/analysis"
	"phoenix/internal/ir"
)

// rewindVetSrc exercises the flow-sensitive pass's transfer rules: direct
// publication, publication through pointer arithmetic, publication of a
// callee's fresh return value, and the two benign patterns (stash of a
// pre-existing pointer, scalar staging).
const rewindVetSrc = `
global g

func mknode(x) {
entry:
  n = alloc 16
  store n, 8, x
  ret n
}

func direct(x) {
entry:
  n = alloc 16
  t = talloc 16
  store t, 0, n
  ret
}

func arith(x) {
entry:
  n = alloc 32
  off = const 8
  p = add n, off
  t = talloc 16
  store t, 0, p
  ret
}

func viacall(x) {
entry:
  n = call mknode(x)
  t = talloc 16
  store t, 0, n
  ret
}

func stash(x) {
entry:
  p = load g, 0
  t = talloc 16
  store t, 0, p
  ret
}

func scalars(x) {
entry:
  t = talloc 32
  s = mul x, 7
  store t, 0, s
  store t, 8, x
  ret
}
`

func rewindFindings(t *testing.T, src string, entries ...string) []Finding {
	t.Helper()
	m := ir.MustParse(src)
	rep, err := Vet(m, entries)
	if err != nil {
		t.Fatal(err)
	}
	var out []Finding
	for _, f := range rep.Findings {
		if f.Kind == KindRewindEscape {
			out = append(out, f)
		}
	}
	return out
}

func TestRewindEscapeFlags(t *testing.T) {
	for _, entry := range []string{"direct", "arith", "viacall"} {
		fs := rewindFindings(t, rewindVetSrc, entry)
		if len(fs) != 1 {
			t.Errorf("%s: %d rewind-escape finding(s), want 1: %v", entry, len(fs), fs)
			continue
		}
		if fs[0].Fn != entry {
			t.Errorf("%s: finding in %s", entry, fs[0].Fn)
		}
		if !strings.Contains(fs[0].Msg, "transient") {
			t.Errorf("%s: msg %q does not name the transient target", entry, fs[0].Msg)
		}
	}
}

func TestRewindEscapeCleanPatterns(t *testing.T) {
	for _, entry := range []string{"stash", "scalars"} {
		if fs := rewindFindings(t, rewindVetSrc, entry); len(fs) != 0 {
			t.Errorf("%s: unexpected rewind-escape finding(s): %v", entry, fs)
		}
	}
}

// TestRewindEscapeScopedToReachable: the same store outside the serving
// entries' reach is not a request-time publication and must not be flagged.
func TestRewindEscapeScopedToReachable(t *testing.T) {
	if fs := rewindFindings(t, rewindVetSrc, "stash"); len(fs) != 0 {
		t.Fatalf("unexpected findings: %v", fs)
	}
	// direct is unreachable from stash, so its escape is not reported above;
	// sanity-check it IS reported when rooted there.
	if fs := rewindFindings(t, rewindVetSrc, "direct"); len(fs) != 1 {
		t.Fatalf("direct not flagged when reachable: %v", fs)
	}
}

// TestRewindEscapeMutantsOnModels plants an InsertRewindEscape mutant into
// every application model that allocates on a serving path and asserts the
// verifier flags it at exactly the planted position — and that the clean
// models carry no rewind-escape findings at all.
func TestRewindEscapeMutantsOnModels(t *testing.T) {
	for _, app := range analysis.IRApps() {
		m, err := ir.Parse(app.Src)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		rep, err := Vet(m, app.Entries)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		for _, f := range rep.Findings {
			if f.Kind == KindRewindEscape {
				t.Errorf("%s: clean model has rewind-escape finding: %+v", app.Name, f)
			}
		}
		for _, rm := range app.RewindMutants {
			ref, err := ir.FindAlloc(m, rm.Fn, rm.NthAlloc)
			if err != nil {
				t.Fatalf("%s mutant: %v", app.Name, err)
			}
			mut, pos, err := ir.InsertRewindEscape(m, rm.Fn, ref)
			if err != nil {
				t.Fatalf("%s mutant: %v", app.Name, err)
			}
			mrep, err := Vet(mut, app.Entries)
			if err != nil {
				t.Fatalf("%s mutant vet: %v", app.Name, err)
			}
			flagged := false
			for _, f := range mrep.Findings {
				if f.Kind == KindRewindEscape && f.Fn == rm.Fn && f.Line == pos.Line && f.Col == pos.Col {
					flagged = true
				}
			}
			if !flagged {
				t.Errorf("%s: planted rewind escape in %s not flagged at %d:%d (findings %v)",
					app.Name, rm.Fn, pos.Line, pos.Col, mrep.Findings)
			}
		}
	}
}
