package pta

import (
	"bytes"
	"encoding/json"
	"testing"

	"phoenix/internal/analysis"
	"phoenix/internal/ir"
)

// TestVetAppModelsClean: every shipped application model must verify clean —
// the static half of the differential campaign's agreement contract.
func TestVetAppModelsClean(t *testing.T) {
	for _, app := range analysis.IRApps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			rep, err := Vet(ir.MustParse(app.Src), app.Entries)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Clean() {
				t.Fatalf("shipped model not clean:\n%+v", rep.Findings)
			}
			if rep.Preserved == 0 || rep.Objects == 0 {
				t.Fatalf("degenerate object domain: %+v", rep)
			}
		})
	}
}

// TestVetAppMutantsFlagged: planting a dangling store in each model must
// produce a dangling-reference finding at exactly the planted position — the
// static half of the mutant contract.
func TestVetAppMutantsFlagged(t *testing.T) {
	for _, app := range analysis.IRApps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			m := ir.MustParse(app.Src)
			for _, mu := range app.Mutants {
				ref, err := ir.FindStore(m, mu.Fn, mu.NthStore)
				if err != nil {
					t.Fatal(err)
				}
				mut, pos, err := ir.InsertDanglingStore(m, mu.Fn, ref)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := Vet(mut, app.Entries)
				if err != nil {
					t.Fatal(err)
				}
				found := false
				for _, f := range rep.Findings {
					if f.Kind == KindDangling && f.Fn == mu.Fn && f.Line == pos.Line && f.Col == pos.Col {
						found = true
					}
				}
				if !found {
					t.Fatalf("mutant %s#%d (pos %s) not flagged; findings: %+v",
						mu.Fn, mu.NthStore, pos, rep.Findings)
				}
			}
		})
	}
}

// TestVetICallNarrowing: the webcache model's indirect body-fill call must
// be resolved by points-to, and reported as an informational finding.
func TestVetICallNarrowing(t *testing.T) {
	rep, err := Vet(ir.MustParse(analysis.WebcacheModel), []string{"get", "evict"})
	if err != nil {
		t.Fatal(err)
	}
	var ic []Finding
	for _, f := range rep.Findings {
		if f.Kind == KindICall {
			ic = append(ic, f)
		}
	}
	if len(ic) != 1 {
		t.Fatalf("icall findings = %+v, want exactly 1", ic)
	}
	if ic[0].Fn != "get" {
		t.Fatalf("icall finding in %s, want get", ic[0].Fn)
	}
	if want := "1 target(s) [fill_body]"; !bytes.Contains([]byte(ic[0].Msg), []byte(want)) {
		t.Fatalf("icall msg %q lacks %q", ic[0].Msg, want)
	}
}

// TestVetReportByteStable: the JSON report is deterministic — two
// independent Vet runs over every model must serialize byte-identically
// (the property the CI golden check enforces end to end).
func TestVetReportByteStable(t *testing.T) {
	for _, app := range analysis.IRApps() {
		r1, err := Vet(ir.MustParse(app.Src), app.Entries)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Vet(ir.MustParse(app.Src), app.Entries)
		if err != nil {
			t.Fatal(err)
		}
		b1, err := json.Marshal(r1)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := json.Marshal(r2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("%s: vet report not byte-stable:\n%s\n%s", app.Name, b1, b2)
		}
	}
}
