package pta

import (
	"testing"

	"phoenix/internal/analysis"
	"phoenix/internal/ir"
)

// A two-component module where the reader writes the writer's preserved
// state three ways: directly through the global, through a preserved object
// allocated by the writer, and — as a control — through its own talloc'd
// scratch (which must NOT be flagged).
const crossSample = `
global acct

func setup() {
entry:
  cell = alloc 16
  store acct, 0, cell
  store acct, 8, 0
  ret
}

func deposit(v) {
entry:
  cell = load acct, 0
  store cell, 0, v
  b = load acct, 8
  b1 = add b, v
  store acct, 8, b1
  ret b1
}

func audit() {
entry:
  scratch = talloc 16
  b = load acct, 8
  store scratch, 0, b
  store acct, 8, 0
  cell = load acct, 0
  store cell, 0, 0
  ret b
}

component writer setup deposit acct
component reader audit
`

// TestVetCrossDomainFindings: both of audit's foreign writes (into the acct
// global and into the writer-allocated cell) are flagged, the talloc scratch
// write is not, and same-component stores in deposit stay clean.
func TestVetCrossDomainFindings(t *testing.T) {
	rep, err := Vet(ir.MustParse(crossSample), []string{"deposit", "audit"})
	if err != nil {
		t.Fatal(err)
	}
	var cross []Finding
	for _, f := range rep.Findings {
		if f.Kind == KindCrossDomain {
			cross = append(cross, f)
		}
	}
	if len(cross) != 2 {
		t.Fatalf("want 2 cross-domain findings, got %d: %+v", len(cross), rep.Findings)
	}
	for _, f := range cross {
		if f.Fn != "audit" {
			t.Errorf("cross-domain finding outside audit: %+v", f)
		}
	}
	if rep.Clean() {
		t.Fatal("cross-domain findings must count against Clean")
	}
}

// TestVetCrossDomainRespectsPartition: with the components stripped the very
// same module verifies clean — the check only exists relative to a declared
// partition.
func TestVetCrossDomainRespectsPartition(t *testing.T) {
	m := ir.MustParse(crossSample)
	m.Components = nil
	rep, err := Vet(m, []string{"deposit", "audit"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("partition-free module not clean: %+v", rep.Findings)
	}
}

// TestVetAppCrossMutantsFlagged: every registered cross-domain mutant must
// be flagged at exactly the anchor position — the static half of the cross
// mutant contract, mirroring TestVetAppMutantsFlagged.
func TestVetAppCrossMutantsFlagged(t *testing.T) {
	for _, app := range analysis.IRApps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			m := ir.MustParse(app.Src)
			for _, cm := range app.CrossMutants {
				mut, pos, err := ir.InsertCrossDomainStore(m, cm.Fn, cm.Global, cm.Off)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := Vet(mut, app.Entries)
				if err != nil {
					t.Fatal(err)
				}
				found := false
				for _, f := range rep.Findings {
					if f.Kind == KindCrossDomain && f.Fn == cm.Fn && f.Line == pos.Line && f.Col == pos.Col {
						found = true
					}
				}
				if !found {
					t.Fatalf("cross mutant %s->%s+%d (pos %s) not flagged; findings: %+v",
						cm.Fn, cm.Global, cm.Off, pos, rep.Findings)
				}
			}
		})
	}
}
