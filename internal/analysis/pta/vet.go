package pta

import (
	"fmt"
	"sort"
	"strings"

	"phoenix/internal/analysis"
	"phoenix/internal/ir"
)

// Finding kinds emitted by Vet.
const (
	// KindDangling: a store may make preserved-reachable memory point at a
	// transient (talloc) allocation — the pointer dangles after restart.
	KindDangling = "dangling-reference"
	// KindGap: a store that writes preserved-reachable memory sits outside
	// every unsafe region the taint instrumentation would bracket — a
	// restart during it would be treated as safe-point despite a possibly
	// half-applied modification.
	KindGap = "unsafe-region-gap"
	// KindICall: informational — the points-to sets narrowed an indirect
	// call's target set below the taint analyzer's arity-matched merge.
	KindICall = "icall-resolution"
	// KindCrossDomain: a function assigned to one component may store into
	// preserved-reachable state owned by a different component. Such a write
	// escapes its rewind domain: discarding the request's pages or
	// microrebooting the writer's component cannot undo it, so the
	// sub-process recovery rungs are unsound for this module.
	KindCrossDomain = "cross-domain-store"
	// KindRewindEscape: a flow-sensitive finding (rewind.go) — a store
	// publishes a pointer to preserved state allocated during the current
	// request (domain-fresh) into transient state, which the rewind rung's
	// undo journal does not cover. After a domain discard the transient word
	// dangles into unwound heap.
	KindRewindEscape = "rewind-escape"
)

// Finding is one position-carrying verifier result. The JSON encoding is
// part of the phxvet report format and must stay byte-stable.
type Finding struct {
	Kind string `json:"kind"`
	Fn   string `json:"fn"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Msg  string `json:"msg"`
}

// Report is the verifier output for one module.
type Report struct {
	Entries   []string  `json:"entries"`
	Funcs     int       `json:"funcs"`
	Objects   int       `json:"objects"`
	Preserved int       `json:"preserved_reachable"`
	Transient int       `json:"transient_sites"`
	Passes    int       `json:"passes"`
	Findings  []Finding `json:"findings"`
}

// Clean reports whether the module is free of preservation-safety defects.
// icall-resolution findings are informational and do not count against it.
func (r *Report) Clean() bool {
	for _, f := range r.Findings {
		if f.Kind != KindICall {
			return false
		}
	}
	return true
}

// Counts returns the number of findings per kind.
func (r *Report) Counts() map[string]int {
	out := map[string]int{}
	for _, f := range r.Findings {
		out[f.Kind]++
	}
	return out
}

// covRange is one instrumented unsafe region derived from the taint
// analyzer's modification refs: either a tight [lo..hi] index range within
// one block, or the whole function.
type covRange struct {
	whole  bool
	block  int
	lo, hi int
}

// Vet runs the preservation-safety verifier: solve points-to, classify the
// object domain, then check every store against the dangling-reference and
// unsafe-region-gap rules and every indirect call for target narrowing.
//
// The dangling check is whole-program and has no freshness exemption: a
// preserved-reachable word aimed at a transient site is a defect even when
// the enclosing object was just allocated, because restart discards the
// transient arena regardless of publication order.
//
// The gap check is scoped to functions reachable from the serving entries
// and exempts stores whose only preserved targets are allocation sites in
// entry-reachable functions ("fresh" objects, conservatively treated as
// possibly not yet published — the allocation-site abstraction cannot
// separate a node being initialized from one already linked in, but the
// linked-in writes reachable through tainted pointers are covered by the
// instrumentation anyway).
func Vet(m *ir.Module, entries []string) (*Report, error) {
	for _, e := range entries {
		if _, ok := m.Funcs[e]; !ok {
			return nil, fmt.Errorf("pta: unknown entry function %q", e)
		}
	}
	a := Solve(m)
	preserved := a.PreservedReachable()

	// Serving-reachable functions: BFS over direct calls plus pta-resolved
	// indirect targets.
	reachable := map[string]bool{}
	work := append([]string(nil), entries...)
	for _, e := range entries {
		reachable[e] = true
	}
	for len(work) > 0 {
		fn := work[0]
		work = work[1:]
		m.Funcs[fn].ForEachInstr(func(_ ir.InstrRef, in *ir.Instr) {
			var targets []string
			switch in.Op {
			case ir.OpCall:
				if _, defined := m.Funcs[in.Fn]; defined {
					targets = []string{in.Fn}
				}
			case ir.OpICall:
				targets = a.ICallTargets(fn, in)
			default:
				return
			}
			for _, t := range targets {
				if !reachable[t] {
					reachable[t] = true
					work = append(work, t)
				}
			}
		})
	}

	// Instrumentation coverage: union over entries of the taint analyzer's
	// modification ranges (tight same-block bracket, else whole function) —
	// computed from ModRefs directly so indices match the uninstrumented
	// module.
	covs := map[string][]covRange{}
	for _, e := range entries {
		an := analysis.New(m)
		if err := an.Run(e, nil); err != nil {
			return nil, err
		}
		for fn, refs := range an.ModRefs {
			first, last := refs[0], refs[0]
			same := true
			for _, r := range refs {
				if r.Less(first) {
					first = r
				}
				if last.Less(r) {
					last = r
				}
			}
			for _, r := range refs {
				if r.Block != first.Block {
					same = false
				}
			}
			if same {
				covs[fn] = append(covs[fn], covRange{block: first.Block, lo: first.Index, hi: last.Index})
			} else {
				covs[fn] = append(covs[fn], covRange{whole: true})
			}
		}
	}
	covered := func(fn string, ref ir.InstrRef) bool {
		for _, c := range covs[fn] {
			if c.whole || (c.block == ref.Block && ref.Index >= c.lo && ref.Index <= c.hi) {
				return true
			}
		}
		return false
	}

	fresh := map[Obj]bool{}
	transient := 0
	for i := range a.objs {
		switch a.objs[i].Kind {
		case ObjAlloc:
			if reachable[a.objs[i].Fn] {
				fresh[Obj(i)] = true
			}
		case ObjTalloc:
			transient++
		}
	}

	var findings []Finding
	for _, name := range m.Order {
		fn := name
		m.Funcs[name].ForEachInstr(func(ref ir.InstrRef, in *ir.Instr) {
			switch in.Op {
			case ir.OpStore:
				tgt := a.PointsTo(fn, in.A)
				var tgtPreserved, tgtEscaped []Obj
				for _, o := range tgt {
					if preserved[o] {
						tgtPreserved = append(tgtPreserved, o)
						if !fresh[o] {
							tgtEscaped = append(tgtEscaped, o)
						}
					}
				}
				var valTransient []Obj
				for _, o := range a.PointsTo(fn, in.Val) {
					if a.objs[o].Kind == ObjTalloc {
						valTransient = append(valTransient, o)
					}
				}
				if len(tgtPreserved) > 0 && len(valTransient) > 0 {
					findings = append(findings, Finding{
						Kind: KindDangling, Fn: fn, Line: in.Pos.Line, Col: in.Pos.Col,
						Msg: fmt.Sprintf("store may make preserved %s point at transient %s",
							a.Info(tgtPreserved[0]), a.Info(valTransient[0])),
					})
				}
				if reachable[fn] && len(tgtEscaped) > 0 && !covered(fn, ref) {
					findings = append(findings, Finding{
						Kind: KindGap, Fn: fn, Line: in.Pos.Line, Col: in.Pos.Col,
						Msg: fmt.Sprintf("store to preserved %s is outside every instrumented unsafe region",
							a.Info(tgtEscaped[0])),
					})
				}
				// Domain isolation: a component-assigned function writing
				// preserved state homed in another component. No freshness
				// exemption — even a just-allocated object belongs to the
				// component of its allocating function, and a foreign write
				// to it outlives the writer's rewind domain.
				if home := m.ComponentOf(fn); home != "" {
					for _, o := range tgtPreserved {
						var owner string
						switch a.objs[o].Kind {
						case ObjGlobal:
							owner = m.ComponentOf(a.objs[o].Name)
						case ObjAlloc:
							owner = m.ComponentOf(a.objs[o].Fn)
						default:
							continue
						}
						if owner != "" && owner != home {
							findings = append(findings, Finding{
								Kind: KindCrossDomain, Fn: fn, Line: in.Pos.Line, Col: in.Pos.Col,
								Msg: fmt.Sprintf("component %s stores into preserved %s owned by component %s",
									home, a.Info(o), owner),
							})
							break
						}
					}
				}
			case ir.OpICall:
				if !reachable[fn] {
					return
				}
				resolved := a.ICallTargets(fn, in)
				fallback := a.AddressTakenTargets(len(in.Args))
				findings = append(findings, Finding{
					Kind: KindICall, Fn: fn, Line: in.Pos.Line, Col: in.Pos.Col,
					Msg: fmt.Sprintf("indirect call resolves to %d target(s) [%s] of %d arity-matched candidate(s)",
						len(resolved), strings.Join(resolved, " "), len(fallback)),
				})
			}
		})
	}
	findings = append(findings, a.rewindEscapes(reachable)...)
	sort.SliceStable(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Msg < b.Msg
	})

	ents := append([]string(nil), entries...)
	sort.Strings(ents)
	return &Report{
		Entries:   ents,
		Funcs:     len(m.Order),
		Objects:   a.NumObjects(),
		Preserved: len(preserved),
		Transient: transient,
		Passes:    a.Passes(),
		Findings:  findings,
	}, nil
}
