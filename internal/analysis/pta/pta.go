// Package pta implements a whole-program, flow-insensitive, inclusion-based
// (Andersen-style) points-to analysis over the mini-IR, with allocation-site
// heap abstraction, and the preservation-safety verifier (vet.go) built on
// top of it.
//
// The abstract object domain:
//
//   - one object per preserved global root (the interpreter's 512-byte
//     global blocks);
//   - one object per alloc site (preserved arena) and per talloc site
//     (transient arena) — allocation-site abstraction, so every run-time
//     allocation from one instruction collapses into one object;
//   - one object per address-taken function (funcref), which is what lets
//     the verifier narrow indirect-call targets beyond the taint analyzer's
//     arity-matched candidate merge.
//
// Constraints are the standard inclusion set: alloc introduces, move/bin/
// field copy, load projects contents, store injects into contents, calls
// copy arguments into parameters and returns back out, and icall does the
// same against the function objects currently in the callee register's set.
// The solver is a naive deterministic fixpoint (re-run all transfer
// functions in module order until no set grows): points-to sets only grow
// and are bounded by the finite object domain, so termination is by
// monotonicity. Object contents are field-insensitive — one contents set
// per object, the coarse analogue of the taint analyzer's "arg and arg->*"
// rule.
package pta

import (
	"fmt"

	"phoenix/internal/ir"
)

// Obj names an abstract object (index into the analysis' object table).
type Obj int

// ObjKind classifies an abstract object.
type ObjKind int

const (
	// ObjGlobal is a preserved global root block.
	ObjGlobal ObjKind = iota
	// ObjAlloc is a preserved-arena allocation site.
	ObjAlloc
	// ObjTalloc is a transient-arena allocation site.
	ObjTalloc
	// ObjFunc is an address-taken function.
	ObjFunc
)

func (k ObjKind) String() string {
	switch k {
	case ObjGlobal:
		return "global"
	case ObjAlloc:
		return "alloc"
	case ObjTalloc:
		return "talloc"
	case ObjFunc:
		return "func"
	}
	return "?"
}

// ObjInfo describes one abstract object.
type ObjInfo struct {
	Kind ObjKind
	// Name is the global or function name (ObjGlobal, ObjFunc).
	Name string
	// Fn is the allocating function (ObjAlloc, ObjTalloc).
	Fn string
	// Pos is the allocation/funcref site position.
	Pos ir.Pos
}

func (oi ObjInfo) String() string {
	switch oi.Kind {
	case ObjGlobal:
		return "global " + oi.Name
	case ObjFunc:
		return "func " + oi.Name
	default:
		return fmt.Sprintf("%s %s@%s", oi.Kind, oi.Fn, oi.Pos)
	}
}

type varKey struct{ fn, reg string }

type siteKey struct {
	fn           string
	block, index int
}

// Analysis holds a solved points-to instance for one module.
type Analysis struct {
	Mod *ir.Module

	objs      []ObjInfo
	globalObj map[string]Obj
	funcObj   map[string]Obj
	siteObj   map[siteKey]Obj

	pts      map[varKey]map[Obj]bool
	contents []map[Obj]bool
	retPts   map[string]map[Obj]bool

	globals   map[string]bool
	globalSet map[string]map[Obj]bool // cached singleton operand sets
	passes    int
}

// Solve builds the object table and runs the inclusion-constraint fixpoint.
func Solve(m *ir.Module) *Analysis {
	a := &Analysis{
		Mod:       m,
		globalObj: map[string]Obj{},
		funcObj:   map[string]Obj{},
		siteObj:   map[siteKey]Obj{},
		pts:       map[varKey]map[Obj]bool{},
		retPts:    map[string]map[Obj]bool{},
		globals:   map[string]bool{},
		globalSet: map[string]map[Obj]bool{},
	}
	newObj := func(info ObjInfo) Obj {
		a.objs = append(a.objs, info)
		return Obj(len(a.objs) - 1)
	}
	for _, g := range m.Globals {
		o := newObj(ObjInfo{Kind: ObjGlobal, Name: g})
		a.globals[g] = true
		a.globalObj[g] = o
		a.globalSet[g] = map[Obj]bool{o: true}
	}
	for _, name := range m.Order {
		fn := name
		m.Funcs[name].ForEachInstr(func(ref ir.InstrRef, in *ir.Instr) {
			switch in.Op {
			case ir.OpAlloc:
				a.siteObj[siteKey{fn, ref.Block, ref.Index}] =
					newObj(ObjInfo{Kind: ObjAlloc, Fn: fn, Pos: in.Pos})
			case ir.OpTalloc:
				a.siteObj[siteKey{fn, ref.Block, ref.Index}] =
					newObj(ObjInfo{Kind: ObjTalloc, Fn: fn, Pos: in.Pos})
			case ir.OpFuncRef:
				if _, ok := a.funcObj[in.Fn]; !ok {
					a.funcObj[in.Fn] = newObj(ObjInfo{Kind: ObjFunc, Name: in.Fn, Pos: in.Pos})
				}
			}
		})
	}
	a.contents = make([]map[Obj]bool, len(a.objs))
	for i := range a.contents {
		a.contents[i] = map[Obj]bool{}
	}
	for changed := true; changed; {
		changed = false
		a.passes++
		for _, name := range m.Order {
			if a.transfer(m.Funcs[name]) {
				changed = true
			}
		}
	}
	return a
}

// operand resolves a register or global name to its current points-to set
// (nil for literals and never-assigned registers).
func (a *Analysis) operand(fn, name string) map[Obj]bool {
	if a.globals[name] {
		return a.globalSet[name]
	}
	return a.pts[varKey{fn, name}]
}

func (a *Analysis) varSet(fn, reg string) map[Obj]bool {
	k := varKey{fn, reg}
	s := a.pts[k]
	if s == nil {
		s = map[Obj]bool{}
		a.pts[k] = s
	}
	return s
}

func union(dst, src map[Obj]bool) bool {
	changed := false
	for o := range src {
		if !dst[o] {
			dst[o] = true
			changed = true
		}
	}
	return changed
}

// transfer applies every constraint of f once; reports whether any set grew.
func (a *Analysis) transfer(f *ir.Func) bool {
	changed := false
	grow := func(b bool) {
		if b {
			changed = true
		}
	}
	f.ForEachInstr(func(ref ir.InstrRef, in *ir.Instr) {
		switch in.Op {
		case ir.OpAlloc, ir.OpTalloc:
			o := a.siteObj[siteKey{f.Name, ref.Block, ref.Index}]
			s := a.varSet(f.Name, in.Dst)
			if !s[o] {
				s[o] = true
				changed = true
			}
		case ir.OpFuncRef:
			o := a.funcObj[in.Fn]
			s := a.varSet(f.Name, in.Dst)
			if !s[o] {
				s[o] = true
				changed = true
			}
		case ir.OpBin:
			// Pointer arithmetic stays within the source object.
			grow(union(a.varSet(f.Name, in.Dst), a.operand(f.Name, in.A)))
			grow(union(a.varSet(f.Name, in.Dst), a.operand(f.Name, in.B)))
		case ir.OpGetField:
			grow(union(a.varSet(f.Name, in.Dst), a.operand(f.Name, in.A)))
		case ir.OpLoad:
			dst := a.varSet(f.Name, in.Dst)
			for o := range a.operand(f.Name, in.A) {
				grow(union(dst, a.contents[o]))
			}
		case ir.OpStore:
			val := a.operand(f.Name, in.Val)
			for o := range a.operand(f.Name, in.A) {
				grow(union(a.contents[o], val))
			}
		case ir.OpCall:
			g, defined := a.Mod.Funcs[in.Fn]
			if !defined {
				return // externals are effect-free, as in the taint analyzer
			}
			grow(a.bindCall(f.Name, g, in))
		case ir.OpICall:
			for _, target := range a.ICallTargets(f.Name, in) {
				grow(a.bindCall(f.Name, a.Mod.Funcs[target], in))
			}
		case ir.OpRet:
			if in.Val == "" {
				return
			}
			s := a.retPts[f.Name]
			if s == nil {
				s = map[Obj]bool{}
				a.retPts[f.Name] = s
			}
			grow(union(s, a.operand(f.Name, in.Val)))
		}
	})
	return changed
}

// bindCall copies arguments into callee parameters and the callee's return
// set into the destination register.
func (a *Analysis) bindCall(caller string, g *ir.Func, in *ir.Instr) bool {
	changed := false
	for i, arg := range in.Args {
		if i >= len(g.Params) {
			break
		}
		if union(a.varSet(g.Name, g.Params[i]), a.operand(caller, arg)) {
			changed = true
		}
	}
	if in.Dst != "" {
		if union(a.varSet(caller, in.Dst), a.retPts[g.Name]) {
			changed = true
		}
	}
	return changed
}

// ICallTargets returns the defined functions an indirect call may reach:
// arity-matched functions whose function object is in the callee register's
// points-to set. Deterministic (module Order).
func (a *Analysis) ICallTargets(fn string, in *ir.Instr) []string {
	callee := a.operand(fn, in.Val)
	var out []string
	for _, name := range a.Mod.Order {
		o, taken := a.funcObj[name]
		if !taken || !callee[o] {
			continue
		}
		if g := a.Mod.Funcs[name]; g != nil && len(g.Params) == len(in.Args) {
			out = append(out, name)
		}
	}
	return out
}

// AddressTakenTargets returns the taint analyzer's conservative candidate
// set for an indirect call of the given arity: every funcref'd function with
// matching parameter count, in module Order.
func (a *Analysis) AddressTakenTargets(arity int) []string {
	var out []string
	for _, name := range a.Mod.Order {
		if _, taken := a.funcObj[name]; !taken {
			continue
		}
		if g := a.Mod.Funcs[name]; g != nil && len(g.Params) == arity {
			out = append(out, name)
		}
	}
	return out
}

// PointsTo returns the solved points-to set of a register or global operand,
// sorted by object id.
func (a *Analysis) PointsTo(fn, name string) []Obj {
	return sortedObjs(a.operand(fn, name))
}

// Contents returns the field-insensitive contents set of an object, sorted.
func (a *Analysis) Contents(o Obj) []Obj {
	if int(o) < 0 || int(o) >= len(a.contents) {
		return nil
	}
	return sortedObjs(a.contents[o])
}

// Info returns the descriptor of an object.
func (a *Analysis) Info(o Obj) ObjInfo { return a.objs[o] }

// NumObjects returns the size of the abstract object domain.
func (a *Analysis) NumObjects() int { return len(a.objs) }

// Passes returns how many fixpoint passes the solver took — bounded by the
// total growth capacity of the constraint system (termination witness).
func (a *Analysis) Passes() int { return a.passes }

// PreservedReachable classifies the object domain: the set of objects
// reachable from the preserved global roots by following contents edges.
// Everything outside it is transient-or-garbage at restart; a talloc site
// INSIDE it is exactly the dangling-reference bug class.
func (a *Analysis) PreservedReachable() map[Obj]bool {
	reach := map[Obj]bool{}
	var work []Obj
	for _, g := range a.Mod.Globals {
		o := a.globalObj[g]
		if !reach[o] {
			reach[o] = true
			work = append(work, o)
		}
	}
	for len(work) > 0 {
		o := work[0]
		work = work[1:]
		for _, n := range sortedObjs(a.contents[o]) {
			if !reach[n] {
				reach[n] = true
				work = append(work, n)
			}
		}
	}
	return reach
}

func sortedObjs(s map[Obj]bool) []Obj {
	if len(s) == 0 {
		return nil
	}
	out := make([]Obj, 0, len(s))
	for o := range s {
		out = append(out, o)
	}
	for i := 1; i < len(out); i++ { // insertion sort: sets are tiny
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
