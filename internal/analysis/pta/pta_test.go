package pta

import (
	"testing"

	"phoenix/internal/ir"
)

func objKinds(a *Analysis, objs []Obj) []ObjKind {
	out := make([]ObjKind, len(objs))
	for i, o := range objs {
		out[i] = a.Info(o).Kind
	}
	return out
}

// TestCyclicHeap: two preserved allocations pointing at each other must not
// diverge the fixpoint, and both must land in each other's contents.
func TestCyclicHeap(t *testing.T) {
	m := ir.MustParse(`
global root

func setup() {
entry:
  a = alloc 16
  b = alloc 16
  store a, 0, b
  store b, 0, a
  store root, 0, a
  ret
}

func chase() {
entry:
  p = load root, 0
  br loop
loop:
  p = load p, 0
  br loop
}
`)
	a := Solve(m)
	pa := a.PointsTo("setup", "a")
	pb := a.PointsTo("setup", "b")
	if len(pa) != 1 || len(pb) != 1 {
		t.Fatalf("pts(a)=%v pts(b)=%v, want singletons", pa, pb)
	}
	if got := a.Contents(pa[0]); len(got) != 1 || got[0] != pb[0] {
		t.Fatalf("contents(a)=%v, want [%v]", got, pb[0])
	}
	if got := a.Contents(pb[0]); len(got) != 1 || got[0] != pa[0] {
		t.Fatalf("contents(b)=%v, want [%v]", got, pa[0])
	}
	// chase's cursor reaches both cycle members and nothing else.
	if got := a.PointsTo("chase", "p"); len(got) != 2 {
		t.Fatalf("pts(chase.p)=%v, want both cycle objects", got)
	}
	reach := a.PreservedReachable()
	if !reach[pa[0]] || !reach[pb[0]] {
		t.Fatal("cycle members not preserved-reachable")
	}
}

// TestSelfReferentialGlobal: store g, 0, g must terminate and make the
// global its own contents.
func TestSelfReferentialGlobal(t *testing.T) {
	m := ir.MustParse(`
global g

func setup() {
entry:
  store g, 0, g
  ret
}

func spin() {
entry:
  p = load g, 0
  q = load p, 0
  store q, 8, p
  ret
}
`)
	a := Solve(m)
	g := a.PointsTo("setup", "g")
	if len(g) != 1 {
		t.Fatalf("global operand pts = %v", g)
	}
	if got := a.Contents(g[0]); len(got) != 1 || got[0] != g[0] {
		t.Fatalf("contents(g)=%v, want itself", got)
	}
	if got := a.PointsTo("spin", "q"); len(got) != 1 || got[0] != g[0] {
		t.Fatalf("pts(spin.q)=%v, want the global", got)
	}
}

// TestICallThroughHeap: a funcref laundered through the preserved heap must
// still resolve — and narrow below the arity-matched candidate set.
func TestICallThroughHeap(t *testing.T) {
	m := ir.MustParse(`
global tbl

func setup() {
entry:
  h = funcref apply
  store tbl, 0, h
  h2 = funcref other
  ret h2
}

func apply(x) {
entry:
  store tbl, 8, x
  ret
}

func other(x) {
entry:
  ret
}

func drive(v) {
entry:
  f = load tbl, 0
  icall f(v)
  ret
}
`)
	a := Solve(m)
	var icallInstr *ir.Instr
	m.Funcs["drive"].ForEachInstr(func(_ ir.InstrRef, in *ir.Instr) {
		if in.Op == ir.OpICall {
			icallInstr = in
		}
	})
	if icallInstr == nil {
		t.Fatal("no icall in drive")
	}
	got := a.ICallTargets("drive", icallInstr)
	if len(got) != 1 || got[0] != "apply" {
		t.Fatalf("icall targets = %v, want [apply]", got)
	}
	if fb := a.AddressTakenTargets(1); len(fb) != 2 {
		t.Fatalf("arity-matched candidates = %v, want apply+other", fb)
	}
	// The effect of the resolved callee flows: apply stores v into tbl.
	m2 := ir.MustParse(`
global tbl

func setup() {
entry:
  h = funcref publish
  store tbl, 0, h
  ret
}

func publish(x) {
entry:
  store tbl, 8, x
  ret
}

func drive() {
entry:
  n = alloc 16
  f = load tbl, 0
  icall f(n)
  ret
}
`)
	a2 := Solve(m2)
	tblObj := a2.PointsTo("setup", "tbl")[0]
	found := false
	for _, o := range a2.Contents(tblObj) {
		if a2.Info(o).Kind == ObjAlloc {
			found = true
		}
	}
	if !found {
		t.Fatalf("contents(tbl)=%v kinds=%v: icall arg did not flow into callee",
			a2.Contents(tblObj), objKinds(a2, a2.Contents(tblObj)))
	}
}

// TestFixpointDeterministicAndBounded: solving the same module twice yields
// identical sets and pass counts, and passes stay within the monotone bound
// (every pass but the last must grow at least one set, each bounded by the
// object-domain size).
func TestFixpointDeterministicAndBounded(t *testing.T) {
	srcs := []string{
		`global g
func f() {
entry:
  a = alloc 8
  t = talloc 8
  store g, 0, a
  store a, 0, t
  store t, 0, g
  b = load g, 0
  c = load b, 0
  d = load c, 0
  store d, 0, d
  ret
}`,
		`global r
func mk() {
entry:
  x = alloc 8
  y = talloc 8
  store x, 0, y
  store r, 0, x
  ret x
}
func use() {
entry:
  p = call mk()
  q = load p, 0
  store q, 0, p
  ret
}`,
	}
	for _, src := range srcs {
		m := ir.MustParse(src)
		a1, a2 := Solve(m), Solve(m)
		if a1.Passes() != a2.Passes() {
			t.Fatalf("pass count not deterministic: %d vs %d", a1.Passes(), a2.Passes())
		}
		// Monotone bound: #passes <= total possible set growth + 1.
		bound := a1.NumObjects()*a1.NumObjects()*4 + 2
		if a1.Passes() > bound {
			t.Fatalf("solver took %d passes, monotone bound %d", a1.Passes(), bound)
		}
		for _, name := range m.Order {
			f := m.Funcs[name]
			regs := map[string]bool{}
			for _, p := range f.Params {
				regs[p] = true
			}
			f.ForEachInstr(func(_ ir.InstrRef, in *ir.Instr) {
				if in.Dst != "" {
					regs[in.Dst] = true
				}
			})
			for r := range regs {
				p1, p2 := a1.PointsTo(name, r), a2.PointsTo(name, r)
				if len(p1) != len(p2) {
					t.Fatalf("%s.%s pts not deterministic: %v vs %v", name, r, p1, p2)
				}
				for i := range p1 {
					if p1[i] != p2[i] {
						t.Fatalf("%s.%s pts not deterministic: %v vs %v", name, r, p1, p2)
					}
				}
			}
		}
	}
}

// TestVetDanglingReference: the canonical leak — a talloc'd node linked into
// the preserved heap — must be flagged at the offending store's position.
func TestVetDanglingReference(t *testing.T) {
	src := `global root

func setup() {
entry:
  box = alloc 32
  store root, 0, box
  ret
}

func leak(v) {
entry:
  t = talloc 16
  store t, 0, v
  box = load root, 0
  store box, 8, t
  ret v
}`
	m := ir.MustParse(src)
	rep, err := Vet(m, []string{"leak"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("leaky module reported clean")
	}
	var dang []Finding
	for _, f := range rep.Findings {
		if f.Kind == KindDangling {
			dang = append(dang, f)
		}
	}
	if len(dang) != 1 {
		t.Fatalf("dangling findings = %+v, want exactly 1", dang)
	}
	// `store box, 8, t` is line 15 col 3 of src.
	if dang[0].Fn != "leak" || dang[0].Line != 15 || dang[0].Col != 3 {
		t.Fatalf("dangling finding at %s %d:%d, want leak 15:3", dang[0].Fn, dang[0].Line, dang[0].Col)
	}
}

// TestVetUnsafeRegionGap: a preserved pointer stashed in a talloc'd buffer,
// reloaded, and stored through reaches preserved memory by a path the taint
// analyzer cannot see (loads from untainted transient scratch are
// untainted), so the store sits outside every instrumented region — the gap
// the points-to verifier exists to catch.
func TestVetUnsafeRegionGap(t *testing.T) {
	src := `global root

func setup() {
entry:
  box = alloc 32
  store root, 0, box
  ret
}

func sneaky(v) {
entry:
  stash = talloc 16
  box = load root, 0
  store stash, 0, box
  p = load stash, 0
  store p, 8, v
  ret v
}`
	m := ir.MustParse(src)
	rep, err := Vet(m, []string{"sneaky"})
	if err != nil {
		t.Fatal(err)
	}
	var gaps []Finding
	for _, f := range rep.Findings {
		if f.Kind == KindGap {
			gaps = append(gaps, f)
		}
	}
	if len(gaps) != 1 {
		t.Fatalf("gap findings = %+v, want exactly 1", gaps)
	}
	// `store p, 8, v` is line 16 col 3 of src.
	if gaps[0].Fn != "sneaky" || gaps[0].Line != 16 || gaps[0].Col != 3 {
		t.Fatalf("gap finding at %s %d:%d, want sneaky 16:3", gaps[0].Fn, gaps[0].Line, gaps[0].Col)
	}
	// The direct-store variant is taint-visible and must NOT be flagged:
	// same effect, but through a tainted pointer, so it is instrumented.
	direct := ir.MustParse(`global root

func setup() {
entry:
  box = alloc 32
  store root, 0, box
  ret
}

func honest(v) {
entry:
  box = load root, 0
  store box, 8, v
  ret v
}`)
	rep2, err := Vet(direct, []string{"honest"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Clean() {
		t.Fatalf("taint-visible store flagged: %+v", rep2.Findings)
	}
}

// TestVetUnknownEntry: bad entry names error instead of silently vetting
// nothing.
func TestVetUnknownEntry(t *testing.T) {
	m := ir.MustParse("func f() {\nentry:\n  ret\n}")
	if _, err := Vet(m, []string{"nope"}); err == nil {
		t.Fatal("expected error for unknown entry")
	}
}
