package analysis

import (
	"math/rand"
	"strings"
	"testing"

	"phoenix/internal/ir"
)

func runAnalysis(t *testing.T) *Analyzer {
	t.Helper()
	m := ir.MustParse(KVModel)
	a := New(m)
	if err := a.Run("handler", nil); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSummaries(t *testing.T) {
	a := runAnalysis(t)
	cases := []struct {
		fn       string
		modifies []bool
	}{
		{"lookup", []bool{false, false}},
		{"link", []bool{true, true}},
		{"insert", []bool{true, false, false}},
		{"delete", []bool{true, false}},
	}
	for _, tc := range cases {
		s := a.Summaries[tc.fn]
		if s == nil {
			t.Fatalf("no summary for %s", tc.fn)
		}
		for i, want := range tc.modifies {
			if s.ModifiesParam[i] != want {
				t.Errorf("%s: ModifiesParam[%d] = %v, want %v", tc.fn, i, s.ModifiesParam[i], want)
			}
		}
	}
	// handler stores through the global (via callees): ModifiesGlobal.
	if !a.Summaries["handler"].ModifiesGlobal {
		t.Error("handler should modify global state")
	}
	// lookup's return derives from its t parameter (entry pointer).
	if a.Summaries["lookup"].ReturnTaint&1 == 0 {
		t.Error("lookup return should be tainted by param 0")
	}
}

func TestModRefs(t *testing.T) {
	a := runAnalysis(t)
	// lookup is read-only: no modifying instructions.
	if len(a.ModRefs["lookup"]) != 0 {
		t.Fatalf("lookup has mod refs: %v", a.ModRefs["lookup"])
	}
	// link: exactly one modifying store (store b,0,node); the store into
	// the fresh node is NOT modifying — the paper's precision point about
	// excluding temporary-state writes.
	if got := len(a.ModRefs["link"]); got != 1 {
		t.Fatalf("link mod refs = %d, want 1", got)
	}
	// insert: the counter store and the link call (2), NOT the two stores
	// into the freshly allocated node.
	if got := len(a.ModRefs["insert"]); got != 2 {
		t.Fatalf("insert mod refs = %d, want 2: %v", got, a.ModRefs["insert"])
	}
	// delete: the two stores in unlink.
	if got := len(a.ModRefs["delete"]); got != 2 {
		t.Fatalf("delete mod refs = %d, want 2", got)
	}
	// handler: the delete call and both insert calls.
	if got := len(a.ModRefs["handler"]); got != 3 {
		t.Fatalf("handler mod refs = %d, want 3", got)
	}
}

func TestReport(t *testing.T) {
	a := runAnalysis(t)
	rep := a.Report()
	for _, want := range []string{"link", "modifies: param0", "modification ranges"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestInstrumentPlacement(t *testing.T) {
	a := runAnalysis(t)
	nm, placements, err := a.Instrument()
	if err != nil {
		t.Fatal(err)
	}
	byFn := map[string]Placement{}
	for _, p := range placements {
		byFn[p.Fn] = p
	}
	// insert and link and delete have single-block mods → tight ranges;
	// handler's mods span blocks → conservative whole-function region
	// (the compiler-conservatism Table 7's Redis discussion mentions).
	if !byFn["insert"].Tight || !byFn["link"].Tight || !byFn["delete"].Tight {
		t.Fatalf("expected tight placement: %+v", byFn)
	}
	if byFn["handler"].Tight {
		t.Fatal("handler should get conservative placement")
	}
	if _, ok := byFn["lookup"]; ok {
		t.Fatal("read-only lookup must not be instrumented")
	}
	// Instrumented module still validates and the original is untouched.
	if _, err := nm.Validate(); err != nil {
		t.Fatal(err)
	}
	orig := ir.MustParse(KVModel)
	if a.Mod.String() != orig.String() {
		t.Fatal("Instrument mutated the analyzed module")
	}
	// The instrumented text contains balanced enter/exit markers.
	text := nm.String()
	if strings.Count(text, "unsafe_enter") == 0 ||
		strings.Count(text, "unsafe_enter") > strings.Count(text, "unsafe_exit") {
		t.Fatalf("unbalanced instrumentation:\n%s", text)
	}
}

// seedEntry populates the interpreter's dictionary with a bucket cell.
func seedEntry(in *ir.Interp) {
	bucket := in.Global("table") + 256 // spare space inside the root region
	in.Store(in.Global("table")+8, bucket)
	in.Store(in.Global("table")+16, 0)
	in.Store(bucket, 0)
}

// dictConsistent checks the ground-truth invariant: the chain length equals
// the stored count.
func dictConsistent(in *ir.Interp) bool {
	table := in.Global("table")
	bucket := in.Load(table + 8)
	count := in.Load(table + 16)
	var n int64
	for e := in.Load(bucket); e != 0; e = in.Load(e) {
		n++
		if n > count+8 {
			return false // cycle
		}
	}
	return n == count
}

func TestInstrumentedExecutionStillCorrect(t *testing.T) {
	a := runAnalysis(t)
	nm, _, err := a.Instrument()
	if err != nil {
		t.Fatal(err)
	}
	in := ir.NewInterp(nm)
	seedEntry(in)
	for i := int64(1); i <= 20; i++ {
		if _, err := in.Call("handler", 100+i, i*i); err != nil {
			t.Fatal(err)
		}
	}
	// Updates replace, so count is 20 distinct keys.
	if got := in.Load(in.Global("table") + 16); got != 20 {
		t.Fatalf("count = %d, want 20", got)
	}
	if !dictConsistent(in) {
		t.Fatal("instrumented run corrupted the dictionary")
	}
	// Updating an existing key keeps the count.
	if _, err := in.Call("handler", 105, 7); err != nil {
		t.Fatal(err)
	}
	if got := in.Load(in.Global("table") + 16); got != 20 {
		t.Fatalf("count after update = %d", got)
	}
}

// TestUnsafeRegionSoundness is the IR-level analogue of §4.4: crash the
// instrumented handler at every possible step; whenever the dictionary is
// actually inconsistent at the crash point, the state stack MUST say
// "unsafe" (no false negatives — that is the correctness obligation; false
// positives merely cost availability).
func TestUnsafeRegionSoundness(t *testing.T) {
	a := runAnalysis(t)
	nm, _, err := a.Instrument()
	if err != nil {
		t.Fatal(err)
	}
	var unsafeCnt, inconsistentCnt, falseNeg int
	for crashAt := 1; crashAt < 400; crashAt++ {
		in := ir.NewInterp(nm)
		seedEntry(in)
		// Warm up with two committed keys.
		if _, err := in.Call("handler", 1, 11); err != nil {
			t.Fatal(err)
		}
		if _, err := in.Call("handler", 2, 22); err != nil {
			t.Fatal(err)
		}
		in.CrashAtStep = in.Steps + crashAt
		_, err := in.Call("handler", 1, 99) // update path: delete + insert
		if err == nil {
			break // crash point beyond the transaction
		}
		crash, ok := err.(*ir.ErrCrash)
		if !ok {
			t.Fatal(err)
		}
		safe := ir.Safe(crash.Stack)
		consistent := dictConsistent(in)
		if !safe {
			unsafeCnt++
		}
		if !consistent {
			inconsistentCnt++
			if safe {
				falseNeg++
			}
		}
	}
	if inconsistentCnt == 0 {
		t.Fatal("sweep never hit an inconsistent state — test is vacuous")
	}
	if falseNeg != 0 {
		t.Fatalf("%d inconsistent crash points judged safe", falseNeg)
	}
	if unsafeCnt <= inconsistentCnt {
		t.Logf("note: unsafe=%d inconsistent=%d", unsafeCnt, inconsistentCnt)
	}
}

// TestInjectionVerdicts mirrors the U-configuration of Table 7 at IR level:
// inject random faults, run the workload, and check that crashes landing
// inside unsafe regions are flagged.
func TestInjectionVerdicts(t *testing.T) {
	a := runAnalysis(t)
	nm, _, err := a.Instrument()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	sites := ir.EnumerateFaultSites(nm, nil)
	ran, crashed := 0, 0
	for _, site := range ir.PickSites(sites, 40, rng) {
		fm, err := ir.Inject(nm, site)
		if err != nil {
			continue
		}
		in := ir.NewInterp(fm)
		in.MaxStep = 5000
		seedEntry(in)
		ran++
		failed := false
		for k := int64(1); k <= 10 && !failed; k++ {
			if _, err := in.Call("handler", k%4, k); err != nil {
				failed = true
			}
		}
		if failed {
			crashed++
		} else if !dictConsistent(in) {
			// Silent corruption: acceptable here; end-to-end validation
			// catches it in the full Table 7 experiment.
			crashed++
		}
	}
	if ran < 30 {
		t.Fatalf("too few injections ran: %d", ran)
	}
	if crashed == 0 {
		t.Fatal("no injected fault had any observable effect")
	}
}
