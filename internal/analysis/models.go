package analysis

// The verifier's application-model registry: one mini-IR model per
// fault-injection app, each shaped after the corresponding real system's
// preserved-state handling (see internal/apps). These are the inputs to both
// sides of the phxvet differential campaign — the static points-to verifier
// (internal/analysis/pta) and the IR interpreter's restart audit — so every
// model deliberately exercises the preserved arena (alloc) for durable
// structures and the transient arena (talloc) for per-request scratch.
//
// KVModel (model.go) is reused unchanged for the kvstore app; KVSetup adds
// the bucket-cell initialization that the analyzer tests used to do from Go,
// so the whole heap shape is visible to the points-to analysis.

// KVSetup initializes the kvstore dictionary: one preserved bucket cell
// hanging off table+8, count zeroed. Concatenated with KVModel in IRApps.
const KVSetup = `
func setup() {
entry:
  bkt = alloc 64
  store table, 8, bkt
  store table, 16, 0
  ret
}
`

// KVComponents partitions the kvstore model for the domain-isolation check:
// the read path (reader, lookup) versus the mutating path that owns the
// dictionary. Kept separate from KVModel, which other campaigns reuse
// standalone and must stay byte-identical.
const KVComponents = `
component reader reader lookup
component writer setup handler delete insert link table
`

// WebcacheModel mirrors the webcache app (Varnish/Squid-style URL→object
// cache): a preserved chain of cache entries rooted at the global `cache`,
// an indirect call through a preserved function pointer for body fill, and a
// talloc'd per-request staging buffer on the miss path.
//
// Layout: cache+0 chain head, cache+8 entry count, cache+16 hit counter,
// cache+24 fill-handler funcref. entry+0 next, entry+8 url, entry+16 body.
const WebcacheModel = `
global cache

func setup() {
entry:
  store cache, 0, 0
  store cache, 8, 0
  store cache, 16, 0
  h = funcref fill_body
  store cache, 24, h
  ret
}

func get(url) {
entry:
  e = call find(cache, url)
  miss = eq e, 0
  cbr miss, fetch, hit
hit:
  h1 = load cache, 16
  h2 = add h1, 1
  store cache, 16, h2
  v = load e, 16
  ret v
fetch:
  tmp = talloc 32
  store tmp, 0, url
  body = mul url, 7
  store tmp, 8, body
  e2 = alloc 32
  store e2, 8, url
  f = load cache, 24
  b = load tmp, 8
  icall f(e2, b)
  n = call link_front(cache, e2)
  v2 = load e2, 16
  ret v2
}

func fill_body(e, body) {
entry:
  store e, 16, body
  ret
}

func find(c, url) {
entry:
  e = load c, 0
  br scan
scan:
  miss = eq e, 0
  cbr miss, out, check
check:
  u = load e, 8
  hit = eq u, url
  cbr hit, found, next
next:
  e = load e, 0
  br scan
found:
  ret e
out:
  z = const 0
  ret z
}

func link_front(c, e) {
entry:
  head = load c, 0
  store e, 0, head
  store c, 0, e
  c1 = load c, 8
  c2 = add c1, 1
  store c, 8, c2
  ret c2
}

func evict() {
entry:
  head = load cache, 0
  gone = eq head, 0
  cbr gone, out, drop
drop:
  nxt = load head, 0
  store cache, 0, nxt
  c1 = load cache, 8
  c2 = sub c1, 1
  store cache, 8, c2
  br out
out:
  z = const 0
  ret z
}

component reader find
component index setup get link_front evict fill_body cache
`

// LSMDBModel mirrors the lsmdb app: puts prepend to a preserved memtable
// chain rooted at db+0; when the memtable reaches four entries, flush
// relinks every node onto the level-0 chain at db+16. Gets walk both chains
// through a talloc'd iterator cursor — a transient structure that briefly
// holds preserved pointers, which is safe in this direction.
//
// Layout: db+0 memtable head, db+8 memtable count, db+16 level-0 head,
// db+24 flushed-node count. node+0 next, node+8 key, node+16 value.
const LSMDBModel = `
global db

func setup() {
entry:
  store db, 0, 0
  store db, 8, 0
  store db, 16, 0
  store db, 24, 0
  ret
}

func put(key, val) {
entry:
  node = alloc 32
  store node, 8, key
  store node, 16, val
  head = load db, 0
  store node, 0, head
  store db, 0, node
  c = load db, 8
  c1 = add c, 1
  store db, 8, c1
  thresh = const 4
  full = lt thresh, c1
  cbr full, doflush, out
doflush:
  call flush(db)
  br out
out:
  ret c1
}

func flush(d) {
entry:
  e = load d, 0
  br loop
loop:
  done = eq e, 0
  cbr done, fin, move
move:
  nxt = load e, 0
  l0 = load d, 16
  store e, 0, l0
  store d, 16, e
  fc = load d, 24
  f1 = add fc, 1
  store d, 24, f1
  e = add nxt, 0
  br loop
fin:
  store d, 0, 0
  store d, 8, 0
  ret
}

func get(key) {
entry:
  it = talloc 16
  m = load db, 0
  store it, 0, m
  br scanmem
scanmem:
  cur = load it, 0
  memdone = eq cur, 0
  cbr memdone, tolevel, checkmem
checkmem:
  k = load cur, 8
  hit = eq k, key
  cbr hit, found, nextmem
nextmem:
  n = load cur, 0
  store it, 0, n
  br scanmem
tolevel:
  l = load db, 16
  store it, 0, l
  br scanlvl
scanlvl:
  cur2 = load it, 0
  lvldone = eq cur2, 0
  cbr lvldone, miss, checklvl
checklvl:
  k2 = load cur2, 8
  hit2 = eq k2, key
  cbr hit2, found2, nextlvl
nextlvl:
  n2 = load cur2, 0
  store it, 0, n2
  br scanlvl
found:
  v = load cur, 16
  ret v
found2:
  v2 = load cur2, 16
  ret v2
miss:
  z = const 0
  ret z
}

component reader get
component writer setup put flush db
`

// BoostModel mirrors the boost app (gradient-boosting trainer): preserved
// weight and gradient arrays hung off the global `model`, a per-step talloc'd
// residual scratch buffer, and pointer-arithmetic array walks.
//
// Layout: model+0 weights ptr, model+8 iteration counter, model+16 gradient
// ptr, model+24 element count.
const BoostModel = `
global model

func setup() {
entry:
  w = alloc 64
  g = alloc 64
  store model, 0, w
  store model, 16, g
  store model, 8, 0
  n = const 8
  store model, 24, n
  ret
}

func step(x) {
entry:
  w = load model, 0
  g = load model, 16
  n = load model, 24
  tmp = talloc 64
  i = const 0
  br grad
grad:
  gdone = eq i, n
  cbr gdone, upd, gbody
gbody:
  off = mul i, 8
  wa = add w, off
  wv = load wa, 0
  r = sub x, wv
  ta = add tmp, off
  store ta, 0, r
  ga = add g, off
  rv = load ta, 0
  store ga, 0, rv
  i = add i, 1
  br grad
upd:
  it = load model, 8
  it1 = add it, 1
  store model, 8, it1
  j = const 0
  br wloop
wloop:
  wdone = eq j, n
  cbr wdone, out, wbody
wbody:
  joff = mul j, 8
  gja = add g, joff
  gj = load gja, 0
  wja = add w, joff
  wj = load wja, 0
  d2 = add wj, gj
  store wja, 0, d2
  j = add j, 1
  br wloop
out:
  ret it1
}
`

// ParticleModel mirrors the particle app (VPIC-style PIC step): preserved
// position/velocity/grid arrays off the global `world`; the deposit phase
// accumulates into a talloc'd staging buffer before folding it into the
// preserved grid — the paper's scratch-then-publish idiom.
//
// Layout: world+0 positions ptr, world+8 velocities ptr, world+16 grid ptr,
// world+24 particle count, world+32 step counter.
const ParticleModel = `
global world

func setup() {
entry:
  p = alloc 64
  v = alloc 64
  gr = alloc 64
  store world, 0, p
  store world, 8, v
  store world, 16, gr
  n = const 8
  store world, 24, n
  store world, 32, 0
  ret
}

func step(f) {
entry:
  p = load world, 0
  v = load world, 8
  n = load world, 24
  call push(p, v, n, f)
  gr = load world, 16
  call deposit(p, gr, n)
  s = load world, 32
  s1 = add s, 1
  store world, 32, s1
  ret s1
}

func push(p, v, n, f) {
entry:
  i = const 0
  br loop
loop:
  done = eq i, n
  cbr done, out, body
body:
  off = mul i, 8
  va = add v, off
  vv = load va, 0
  v1 = add vv, f
  store va, 0, v1
  pa = add p, off
  pv = load pa, 0
  p1 = add pv, v1
  store pa, 0, p1
  i = add i, 1
  br loop
out:
  ret
}

func deposit(p, gr, n) {
entry:
  st = talloc 64
  i = const 0
  br acc
acc:
  adone = eq i, n
  cbr adone, copy0, abody
abody:
  off = mul i, 8
  pa = add p, off
  pv = load pa, 0
  sa = add st, off
  sv = load sa, 0
  s1 = add sv, pv
  store sa, 0, s1
  i = add i, 1
  br acc
copy0:
  j = const 0
  br copy
copy:
  cdone = eq j, n
  cbr cdone, out, cbody
cbody:
  joff = mul j, 8
  sa2 = add st, joff
  sv2 = load sa2, 0
  ga = add gr, joff
  gv = load ga, 0
  g1 = add gv, sv2
  store ga, 0, g1
  j = add j, 1
  br copy
out:
  ret
}
`

// IRCall describes one serving-entry invocation shape for the differential
// campaign's randomized drivers: call Fn with NArgs arguments, each drawn
// uniformly from [0, ArgMax).
type IRCall struct {
	Fn     string
	NArgs  int
	ArgMax int64
}

// IRMutant names a store to corrupt with ir.InsertDanglingStore: the NthStore
// (0-based, layout order) of Fn.
type IRMutant struct {
	Fn       string
	NthStore int
}

// IRCrossMutant names a cross-domain write to plant with
// ir.InsertCrossDomainStore: a constant store from Fn into Global at Off.
// Offsets target scalar counter fields so the mutant violates component
// isolation without corrupting any pointer chain — the differential campaign
// asserts the static flag, not a dynamic crash.
type IRCrossMutant struct {
	Fn     string
	Global string
	Off    int64
}

// IRRewindMutant names a rewind-escape to plant with ir.InsertRewindEscape:
// the NthAlloc (0-based, layout order) of Fn gets a talloc'd scratch word
// publishing the fresh allocation into the transient arena — state the
// rewind rung's undo journal does not cover.
type IRRewindMutant struct {
	Fn       string
	NthAlloc int
}

// IRApp bundles one application model for phxvet: the IR source, its setup
// function, the serving entry points (roots for the static verifier and the
// dynamic drivers), and the seeded mutants the differential campaign plants.
type IRApp struct {
	Name          string
	Src           string
	Setup         string
	Entries       []string
	Calls         []IRCall
	Mutants       []IRMutant
	CrossMutants  []IRCrossMutant
	RewindMutants []IRRewindMutant
}

// IRApps returns the model registry in deterministic (name) order.
func IRApps() []IRApp {
	return []IRApp{
		{
			Name:    "boost",
			Src:     BoostModel,
			Setup:   "setup",
			Entries: []string{"step"},
			Calls:   []IRCall{{Fn: "step", NArgs: 1, ArgMax: 8}},
			Mutants: []IRMutant{{Fn: "step", NthStore: 2}}, // store model, 8, it1
		},
		{
			Name:    "kvstore",
			Src:     KVModel + KVSetup + KVComponents,
			Setup:   "setup",
			Entries: []string{"handler", "reader"},
			Calls: []IRCall{
				{Fn: "handler", NArgs: 2, ArgMax: 8},
				{Fn: "reader", NArgs: 1, ArgMax: 8},
			},
			Mutants:       []IRMutant{{Fn: "link", NthStore: 1}},                     // store b, 0, node
			CrossMutants:  []IRCrossMutant{{Fn: "reader", Global: "table", Off: 16}}, // reader bumps writer's count
			RewindMutants: []IRRewindMutant{{Fn: "insert", NthAlloc: 0}},             // node = alloc 32 published transiently
		},
		{
			Name:    "lsmdb",
			Src:     LSMDBModel,
			Setup:   "setup",
			Entries: []string{"put", "get"},
			Calls: []IRCall{
				{Fn: "put", NArgs: 2, ArgMax: 8},
				{Fn: "get", NArgs: 1, ArgMax: 8},
			},
			Mutants:       []IRMutant{{Fn: "flush", NthStore: 0}},             // store e, 0, l0
			CrossMutants:  []IRCrossMutant{{Fn: "get", Global: "db", Off: 8}}, // get scribbles writer's memtable count
			RewindMutants: []IRRewindMutant{{Fn: "put", NthAlloc: 0}},         // node = alloc 32 published transiently
		},
		{
			Name:    "particle",
			Src:     ParticleModel,
			Setup:   "setup",
			Entries: []string{"step"},
			Calls:   []IRCall{{Fn: "step", NArgs: 1, ArgMax: 8}},
			Mutants: []IRMutant{{Fn: "push", NthStore: 1}}, // store pa, 0, p1
		},
		{
			Name:    "webcache",
			Src:     WebcacheModel,
			Setup:   "setup",
			Entries: []string{"get", "evict"},
			Calls: []IRCall{
				{Fn: "get", NArgs: 1, ArgMax: 8},
				{Fn: "evict", NArgs: 0, ArgMax: 1},
			},
			Mutants:       []IRMutant{{Fn: "link_front", NthStore: 0}},             // store e, 0, head
			CrossMutants:  []IRCrossMutant{{Fn: "find", Global: "cache", Off: 16}}, // find bumps index's hit counter
			RewindMutants: []IRRewindMutant{{Fn: "get", NthAlloc: 0}},              // e2 = alloc 32 published transiently
		},
	}
}
