package analysis

// KVModel is the mini-IR model of the kvstore request handlers — the
// analogue of running the paper's compiler pass over Redis's dictionary
// code (Figure 6's example shape: a handler that calls delete then insert,
// where insert's last step is linking a list node).
//
// Memory layout of the preserved dictionary rooted at the global `table`:
//
//	table+8:  bucket cell pointer (the single chain head for this model)
//	table+16: entry count
//	entry+0:  next entry
//	entry+8:  key
//	entry+16: value
//
// The analyzer must find: `link` modifies its t parameter (one store),
// `insert` modifies t directly (counter) and via link, `delete` modifies t
// in its unlink block, and `handler`'s modification range spans the delete
// and insert calls.
const KVModel = `
global table

func handler(key, val) {
entry:
  e = call lookup(table, key)
  found = eq e, 0
  cbr found, insert_new, update
update:
  call delete(table, key)
  n = call insert(table, key, val)
  br done
insert_new:
  n2 = call insert(table, key, val)
  br done
done:
  c = load table, 16
  ret c
}

func reader(key) {
entry:
  e = call lookup(table, key)
  miss = eq e, 0
  cbr miss, out, hit
hit:
  v = load e, 16
  ret v
out:
  z = const 0
  ret z
}

func lookup(t, key) {
entry:
  b = load t, 8
  e = load b, 0
  br scan
scan:
  miss = eq e, 0
  cbr miss, out, check
check:
  k = load e, 8
  hit = eq k, key
  cbr hit, found, next
next:
  e = load e, 0
  br scan
found:
  ret e
out:
  z = const 0
  ret z
}

func delete(t, key) {
entry:
  b = load t, 8
  br scan
scan:
  e = load b, 0
  gone = eq e, 0
  cbr gone, out, check
check:
  k = load e, 8
  hit = eq k, key
  cbr hit, unlink, next
next:
  b = field e, 0
  br scan
unlink:
  nxt = load e, 0
  store b, 0, nxt
  c = load t, 16
  c1 = sub c, 1
  store t, 16, c1
  br out
out:
  r = const 0
  ret r
}

func insert(t, key, val) {
entry:
  node = alloc 32
  store node, 8, key
  store node, 16, val
  c = load t, 16
  c1 = add c, 1
  store t, 16, c1
  call link(t, node)
  ret node
}

func link(t, node) {
entry:
  b = load t, 8
  head = load b, 0
  store node, 0, head
  store b, 0, node
  ret
}
`
