// Package faultinject implements instruction-level software fault injection
// in the style of the paper's LLVM-IR injector (§4.4, Table 6).
//
// Applications compile injection *sites* into their hot paths by routing
// conditions, values, and calls through an Injector's helpers. A campaign
// arms one or more (site, fault-type) pairs; when an armed site next
// executes, the helper perturbs the operation — inverting a comparison,
// skipping a store or call, zeroing an operand, leaking an uninitialized
// value — and the consequences (crash, hang, silent corruption, or nothing)
// unfold mechanically through the application's real data-structure code on
// the simulated heap.
//
// Faults fire once per arming: this models the transient-trigger bugs that
// dominate the paper's §2.3 study (a code bug whose triggering input is
// rare). The *corruption* a fired fault leaves behind persists in memory —
// so a corrupted structure can still crash the process much later, including
// after a PHOENIX restart that preserved it, which is exactly the hazard the
// unsafe-region mechanism exists to catch.
package faultinject

import "sort"

// FaultType enumerates the injected fault types of Table 6.
type FaultType uint8

const (
	// CompInversion inverts a comparison (e.g. > becomes <=).
	CompInversion FaultType = iota
	// MissingStore removes a store instruction.
	MissingStore
	// WrongOperand sets an operand to 0 or 1.
	WrongOperand
	// MissingBranch removes an if statement (branch never taken).
	MissingBranch
	// UninitVar removes a variable's first assignment, leaking stale bits.
	UninitVar
	// WrongResult makes a store write 0 or 1 instead of its value.
	WrongResult
	// MissingCall removes a function call.
	MissingCall

	// NumFaultTypes is the count of injectable types.
	NumFaultTypes = 7
)

func (f FaultType) String() string {
	switch f {
	case CompInversion:
		return "comparison-inversion"
	case MissingStore:
		return "missing-assignment"
	case WrongOperand:
		return "wrong-operand"
	case MissingBranch:
		return "missing-if"
	case UninitVar:
		return "uninitialized-variable"
	case WrongResult:
		return "assign-wrong-result"
	case MissingCall:
		return "missing-function-call"
	}
	return "unknown-fault"
}

// SiteKind describes which helpers a site supports, so campaigns arm
// compatible fault types.
type SiteKind uint8

const (
	// KindCond sites guard branches (support CompInversion, MissingBranch).
	KindCond SiteKind = iota
	// KindValue sites produce data values (WrongOperand, UninitVar,
	// WrongResult).
	KindValue
	// KindAction sites perform stores or calls (MissingStore, MissingCall).
	KindAction
)

// TypesFor returns the fault types applicable to a site kind.
func TypesFor(k SiteKind) []FaultType {
	switch k {
	case KindCond:
		return []FaultType{CompInversion, MissingBranch}
	case KindValue:
		return []FaultType{WrongOperand, UninitVar, WrongResult}
	case KindAction:
		return []FaultType{MissingStore, MissingCall}
	}
	return nil
}

// Site describes one injection point compiled into application code.
type Site struct {
	// ID is unique within the application, e.g. "dict.set.link".
	ID string
	// Func is the enclosing function name (for gcov-style activation
	// filtering).
	Func string
	// Kind selects the applicable fault types.
	Kind SiteKind
	// Modifying marks sites inside state-modifying code — used only for
	// reporting (the unsafe-region outcome must *emerge* from the runtime
	// counters, not from this label).
	Modifying bool
}

// Injector carries the armed faults for one process lifetime. Arming
// persists across simulated restarts of the same "binary" (the campaign
// re-uses one Injector per run), but each armed fault fires at most once.
type Injector struct {
	sites map[string]*Site
	armed map[string]FaultType
	fired map[string]bool
	// Enabled gates all perturbation; campaigns flip it mid-workload
	// ("switch to the fault-injected version", §4.4).
	enabled bool
	// execCount counts site executions for diagnostics.
	execCount map[string]uint64
}

// New returns an injector with no sites armed.
func New() *Injector {
	return &Injector{
		sites:     make(map[string]*Site),
		armed:     make(map[string]FaultType),
		fired:     make(map[string]bool),
		execCount: make(map[string]uint64),
	}
}

// Register declares a site. Registering the same ID twice panics: site IDs
// identify unique instructions.
func (in *Injector) Register(s Site) {
	if _, dup := in.sites[s.ID]; dup {
		panic("faultinject: duplicate site " + s.ID)
	}
	cp := s
	in.sites[s.ID] = &cp
}

// RegisterAll declares many sites.
func (in *Injector) RegisterAll(sites []Site) {
	for _, s := range sites {
		in.Register(s)
	}
}

// Sites returns all registered sites sorted by ID.
func (in *Injector) Sites() []Site {
	out := make([]Site, 0, len(in.sites))
	for _, s := range in.sites {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Arm schedules fault t at the site. It panics if the site is unknown or the
// type is inapplicable to the site's kind.
func (in *Injector) Arm(siteID string, t FaultType) {
	s, ok := in.sites[siteID]
	if !ok {
		panic("faultinject: arm unknown site " + siteID)
	}
	applicable := false
	for _, at := range TypesFor(s.Kind) {
		if at == t {
			applicable = true
		}
	}
	if !applicable {
		panic("faultinject: fault " + t.String() + " inapplicable to site " + siteID)
	}
	in.armed[siteID] = t
}

// Enable switches the process to the fault-injected code version.
func (in *Injector) Enable() { in.enabled = true }

// Enabled reports whether injection is active.
func (in *Injector) Enabled() bool { return in.enabled }

// Fired reports whether the armed fault at siteID has fired.
func (in *Injector) Fired(siteID string) bool { return in.fired[siteID] }

// FiredAny reports whether any armed fault has fired.
func (in *Injector) FiredAny() bool {
	for _, f := range in.fired {
		if f {
			return true
		}
	}
	return false
}

// ExecCount returns how many times the site has executed.
func (in *Injector) ExecCount(siteID string) uint64 { return in.execCount[siteID] }

// fire checks whether the armed fault at siteID should fire now, consuming
// it if so.
func (in *Injector) fire(siteID string) (FaultType, bool) {
	in.execCount[siteID]++
	if !in.enabled {
		return 0, false
	}
	t, armed := in.armed[siteID]
	if !armed || in.fired[siteID] {
		return 0, false
	}
	in.fired[siteID] = true
	return t, true
}

// Cond routes a branch condition through the site. CompInversion inverts it;
// MissingBranch forces it false (the guarded block is skipped).
func (in *Injector) Cond(siteID string, c bool) bool {
	t, fired := in.fire(siteID)
	if !fired {
		return c
	}
	switch t {
	case CompInversion:
		return !c
	case MissingBranch:
		return false
	}
	return c
}

// U64 routes a data value through the site. WrongOperand and WrongResult
// replace it with 0 or 1 (alternating by execution parity); UninitVar
// replaces it with a stale-looking garbage pattern.
func (in *Injector) U64(siteID string, v uint64) uint64 {
	t, fired := in.fire(siteID)
	if !fired {
		return v
	}
	switch t {
	case WrongOperand, WrongResult:
		return in.execCount[siteID] & 1
	case UninitVar:
		return 0xDEAD4BADDEAD4BAD
	}
	return v
}

// Int is U64 for int values (sizes, lengths, indices).
func (in *Injector) Int(siteID string, v int) int {
	t, fired := in.fire(siteID)
	if !fired {
		return v
	}
	switch t {
	case WrongOperand, WrongResult:
		return int(in.execCount[siteID] & 1)
	case UninitVar:
		return -0x4BAD
	}
	return v
}

// Do routes a store or call through the site; MissingStore and MissingCall
// skip it entirely.
func (in *Injector) Do(siteID string, fn func()) {
	t, fired := in.fire(siteID)
	if fired && (t == MissingStore || t == MissingCall) {
		return
	}
	fn()
}

// ArmedAt returns the fault type armed at siteID, if any.
func (in *Injector) ArmedAt(siteID string) (FaultType, bool) {
	t, ok := in.armed[siteID]
	return t, ok
}

// Reset clears arming and firing state but keeps registered sites.
func (in *Injector) Reset() {
	in.armed = make(map[string]FaultType)
	in.fired = make(map[string]bool)
	in.enabled = false
	in.execCount = make(map[string]uint64)
}
