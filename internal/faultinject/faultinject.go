// Package faultinject implements instruction-level software fault injection
// in the style of the paper's LLVM-IR injector (§4.4, Table 6).
//
// Applications compile injection *sites* into their hot paths by routing
// conditions, values, and calls through an Injector's helpers. A campaign
// arms one or more (site, fault-type) pairs; when an armed site next
// executes, the helper perturbs the operation — inverting a comparison,
// skipping a store or call, zeroing an operand, leaking an uninitialized
// value — and the consequences (crash, hang, silent corruption, or nothing)
// unfold mechanically through the application's real data-structure code on
// the simulated heap.
//
// Faults fire once per arming: this models the transient-trigger bugs that
// dominate the paper's §2.3 study (a code bug whose triggering input is
// rare). The *corruption* a fired fault leaves behind persists in memory —
// so a corrupted structure can still crash the process much later, including
// after a PHOENIX restart that preserved it, which is exactly the hazard the
// unsafe-region mechanism exists to catch.
package faultinject

import "sort"

// FaultType enumerates the injected fault types of Table 6.
type FaultType uint8

const (
	// CompInversion inverts a comparison (e.g. > becomes <=).
	CompInversion FaultType = iota
	// MissingStore removes a store instruction.
	MissingStore
	// WrongOperand sets an operand to 0 or 1.
	WrongOperand
	// MissingBranch removes an if statement (branch never taken).
	MissingBranch
	// UninitVar removes a variable's first assignment, leaking stale bits.
	UninitVar
	// WrongResult makes a store write 0 or 1 instead of its value.
	WrongResult
	// MissingCall removes a function call.
	MissingCall

	// NumFaultTypes is the count of Table-6 instruction fault types.
	NumFaultTypes = 7

	// OpFailure makes the kernel/runtime operation at a KindOp site fail
	// with an error. It models recovery-time faults (a page move or image
	// load failing mid-preserve_exec) rather than application code bugs, so
	// it sits outside the Table-6 set.
	OpFailure FaultType = NumFaultTypes

	// BitFlip inverts one bit of a preserved frame at a KindCorrupt site —
	// Byzantine corruption of the preservation channel itself (bad DRAM, a
	// stray DMA) rather than a failed operation. Like OpFailure it sits
	// outside the Table-6 instruction-fault set.
	BitFlip FaultType = NumFaultTypes + 1
)

func (f FaultType) String() string {
	switch f {
	case CompInversion:
		return "comparison-inversion"
	case MissingStore:
		return "missing-assignment"
	case WrongOperand:
		return "wrong-operand"
	case MissingBranch:
		return "missing-if"
	case UninitVar:
		return "uninitialized-variable"
	case WrongResult:
		return "assign-wrong-result"
	case MissingCall:
		return "missing-function-call"
	case OpFailure:
		return "operation-failure"
	case BitFlip:
		return "preserved-frame-bit-flip"
	}
	return "unknown-fault"
}

// SiteKind describes which helpers a site supports, so campaigns arm
// compatible fault types.
type SiteKind uint8

const (
	// KindCond sites guard branches (support CompInversion, MissingBranch).
	KindCond SiteKind = iota
	// KindValue sites produce data values (WrongOperand, UninitVar,
	// WrongResult).
	KindValue
	// KindAction sites perform stores or calls (MissingStore, MissingCall).
	KindAction
	// KindOp sites are kernel/runtime operations inside the recovery path
	// that a campaign can make fail (OpFailure).
	KindOp
	// KindCorrupt sites mark preserved data a campaign can silently corrupt
	// in flight (BitFlip) — the Byzantine counterpart of KindOp.
	KindCorrupt
)

// TypesFor returns the fault types applicable to a site kind.
func TypesFor(k SiteKind) []FaultType {
	switch k {
	case KindCond:
		return []FaultType{CompInversion, MissingBranch}
	case KindValue:
		return []FaultType{WrongOperand, UninitVar, WrongResult}
	case KindAction:
		return []FaultType{MissingStore, MissingCall}
	case KindOp:
		return []FaultType{OpFailure}
	case KindCorrupt:
		return []FaultType{BitFlip}
	}
	return nil
}

// Recovery-path injection sites: faults that strike *during* a PHOENIX
// preserve_exec rather than during normal request processing. They let
// campaigns measure whether a failure of the recovery mechanism itself
// degrades to the application's default recovery instead of corrupting
// state.
const (
	// SitePreservePlan crashes preserve_exec between validating/staging the
	// transfer plan and committing the first operation.
	SitePreservePlan = "kernel.preserve.plan"
	// SitePreserveMove fails the Nth page-move operation of the commit
	// phase (arm with ArmAfter to choose N).
	SitePreserveMove = "kernel.preserve.move"
	// SitePreserveCopy fails the Nth partial-page copy of the commit phase.
	SitePreserveCopy = "kernel.preserve.copy"
	// SitePreserveLoad fails loading the fresh image into the gaps left
	// between the preserved ranges.
	SitePreserveLoad = "kernel.preserve.load"
	// SitePreserveCorrupt flips one bit in the Nth preserved frame between
	// the commit of the transfer and the integrity verification pass — the
	// Byzantine window where the dying and nascent address spaces both hold
	// the data (arm with ArmAfter to choose N).
	SitePreserveCorrupt = "kernel.preserve.corrupt"
)

// RecoverySites lists the injection points inside the recovery path.
func RecoverySites() []Site {
	return []Site{
		{ID: SitePreservePlan, Func: "PreserveExec", Kind: KindOp, Modifying: true},
		{ID: SitePreserveMove, Func: "PreserveExec", Kind: KindOp, Modifying: true},
		{ID: SitePreserveCopy, Func: "PreserveExec", Kind: KindOp, Modifying: true},
		{ID: SitePreserveLoad, Func: "PreserveExec", Kind: KindOp, Modifying: true},
		{ID: SitePreserveCorrupt, Func: "PreserveExec", Kind: KindCorrupt, Modifying: true},
	}
}

// Site describes one injection point compiled into application code.
type Site struct {
	// ID is unique within the application, e.g. "dict.set.link".
	ID string
	// Func is the enclosing function name (for gcov-style activation
	// filtering).
	Func string
	// Kind selects the applicable fault types.
	Kind SiteKind
	// Modifying marks sites inside state-modifying code — used only for
	// reporting (the unsafe-region outcome must *emerge* from the runtime
	// counters, not from this label).
	Modifying bool
}

// Injector carries the armed faults for one process lifetime. Arming
// persists across simulated restarts of the same "binary" (the campaign
// re-uses one Injector per run), but each armed fault fires at most once.
type Injector struct {
	sites map[string]*Site
	armed map[string]FaultType
	// skips[id] counts site executions to let pass before the armed fault
	// fires (ArmAfter); zero means fire on the next execution.
	skips map[string]int
	fired map[string]bool
	// Enabled gates all perturbation; campaigns flip it mid-workload
	// ("switch to the fault-injected version", §4.4).
	enabled bool
	// execCount counts site executions for diagnostics.
	execCount map[string]uint64
}

// New returns an injector with no sites armed.
func New() *Injector {
	return &Injector{
		sites:     make(map[string]*Site),
		armed:     make(map[string]FaultType),
		skips:     make(map[string]int),
		fired:     make(map[string]bool),
		execCount: make(map[string]uint64),
	}
}

// RegisterRecovery declares the recovery-path injection sites, skipping any
// already registered (the harness calls this for every run, and campaigns
// may share one injector across harnesses).
func (in *Injector) RegisterRecovery() {
	for _, s := range RecoverySites() {
		if _, dup := in.sites[s.ID]; !dup {
			in.Register(s)
		}
	}
}

// Register declares a site. Registering the same ID twice panics: site IDs
// identify unique instructions.
func (in *Injector) Register(s Site) {
	if _, dup := in.sites[s.ID]; dup {
		panic("faultinject: duplicate site " + s.ID)
	}
	cp := s
	in.sites[s.ID] = &cp
}

// RegisterAll declares many sites.
func (in *Injector) RegisterAll(sites []Site) {
	for _, s := range sites {
		in.Register(s)
	}
}

// Sites returns all registered sites sorted by ID.
func (in *Injector) Sites() []Site {
	out := make([]Site, 0, len(in.sites))
	for _, s := range in.sites {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Arm schedules fault t at the site, firing on its next execution. It panics
// if the site is unknown or the type is inapplicable to the site's kind.
func (in *Injector) Arm(siteID string, t FaultType) {
	in.ArmAfter(siteID, t, 0)
}

// ArmAfter schedules fault t at the site to fire on its (skip+1)th execution
// after injection is enabled — e.g. skip=2 fails the third page move of a
// preserve_exec commit. It panics like Arm on unknown sites or inapplicable
// types.
func (in *Injector) ArmAfter(siteID string, t FaultType, skip int) {
	s, ok := in.sites[siteID]
	if !ok {
		panic("faultinject: arm unknown site " + siteID)
	}
	applicable := false
	for _, at := range TypesFor(s.Kind) {
		if at == t {
			applicable = true
		}
	}
	if !applicable {
		panic("faultinject: fault " + t.String() + " inapplicable to site " + siteID)
	}
	if skip < 0 {
		skip = 0
	}
	in.armed[siteID] = t
	in.skips[siteID] = skip
}

// Enable switches the process to the fault-injected code version.
func (in *Injector) Enable() { in.enabled = true }

// Enabled reports whether injection is active.
func (in *Injector) Enabled() bool { return in.enabled }

// Fired reports whether the armed fault at siteID has fired.
func (in *Injector) Fired(siteID string) bool { return in.fired[siteID] }

// FiredAny reports whether any armed fault has fired.
func (in *Injector) FiredAny() bool {
	for _, f := range in.fired {
		if f {
			return true
		}
	}
	return false
}

// ExecCount returns how many times the site has executed.
func (in *Injector) ExecCount(siteID string) uint64 { return in.execCount[siteID] }

// fire checks whether the armed fault at siteID should fire now, consuming
// it if so.
func (in *Injector) fire(siteID string) (FaultType, bool) {
	in.execCount[siteID]++
	if !in.enabled {
		return 0, false
	}
	t, armed := in.armed[siteID]
	if !armed || in.fired[siteID] {
		return 0, false
	}
	if in.skips[siteID] > 0 {
		in.skips[siteID]--
		return 0, false
	}
	in.fired[siteID] = true
	return t, true
}

// Fail routes a kernel/runtime operation through an op site and reports
// whether an armed OpFailure fires now — the operation's caller turns a true
// return into an error.
func (in *Injector) Fail(siteID string) bool {
	t, fired := in.fire(siteID)
	return fired && t == OpFailure
}

// Corrupt routes one preserved frame through a corrupt site and reports
// whether an armed BitFlip fires now — the kernel turns a true return into a
// single flipped bit in that frame.
func (in *Injector) Corrupt(siteID string) bool {
	t, fired := in.fire(siteID)
	return fired && t == BitFlip
}

// Disarm clears the armed fault, skip count, and fired latch at one site so a
// campaign can re-arm it for a later incarnation without resetting every
// other site's state (faults fire once per arming; Fired would otherwise
// block the re-fire forever).
func (in *Injector) Disarm(siteID string) {
	delete(in.armed, siteID)
	delete(in.skips, siteID)
	delete(in.fired, siteID)
}

// Cond routes a branch condition through the site. CompInversion inverts it;
// MissingBranch forces it false (the guarded block is skipped).
func (in *Injector) Cond(siteID string, c bool) bool {
	t, fired := in.fire(siteID)
	if !fired {
		return c
	}
	switch t {
	case CompInversion:
		return !c
	case MissingBranch:
		return false
	}
	return c
}

// U64 routes a data value through the site. WrongOperand and WrongResult
// replace it with 0 or 1 (alternating by execution parity); UninitVar
// replaces it with a stale-looking garbage pattern.
func (in *Injector) U64(siteID string, v uint64) uint64 {
	t, fired := in.fire(siteID)
	if !fired {
		return v
	}
	switch t {
	case WrongOperand, WrongResult:
		return in.execCount[siteID] & 1
	case UninitVar:
		return 0xDEAD4BADDEAD4BAD
	}
	return v
}

// Int is U64 for int values (sizes, lengths, indices).
func (in *Injector) Int(siteID string, v int) int {
	t, fired := in.fire(siteID)
	if !fired {
		return v
	}
	switch t {
	case WrongOperand, WrongResult:
		return int(in.execCount[siteID] & 1)
	case UninitVar:
		return -0x4BAD
	}
	return v
}

// Do routes a store or call through the site; MissingStore and MissingCall
// skip it entirely.
func (in *Injector) Do(siteID string, fn func()) {
	t, fired := in.fire(siteID)
	if fired && (t == MissingStore || t == MissingCall) {
		return
	}
	fn()
}

// ArmedAt returns the fault type armed at siteID, if any.
func (in *Injector) ArmedAt(siteID string) (FaultType, bool) {
	t, ok := in.armed[siteID]
	return t, ok
}

// Reset clears arming and firing state but keeps registered sites.
func (in *Injector) Reset() {
	in.armed = make(map[string]FaultType)
	in.skips = make(map[string]int)
	in.fired = make(map[string]bool)
	in.enabled = false
	in.execCount = make(map[string]uint64)
}
