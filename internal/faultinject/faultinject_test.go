package faultinject

import "testing"

func newInjector(t *testing.T) *Injector {
	t.Helper()
	in := New()
	in.RegisterAll([]Site{
		{ID: "f.cond", Func: "f", Kind: KindCond},
		{ID: "f.val", Func: "f", Kind: KindValue, Modifying: true},
		{ID: "f.act", Func: "f", Kind: KindAction, Modifying: true},
	})
	return in
}

func TestPassThroughWhenDisarmed(t *testing.T) {
	in := newInjector(t)
	in.Enable()
	if !in.Cond("f.cond", true) || in.Cond("f.cond", false) {
		t.Fatal("disarmed Cond perturbed")
	}
	if in.U64("f.val", 42) != 42 || in.Int("f.val", -7) != -7 {
		t.Fatal("disarmed value perturbed")
	}
	ran := false
	in.Do("f.act", func() { ran = true })
	if !ran {
		t.Fatal("disarmed Do skipped")
	}
}

func TestDisabledNeverFires(t *testing.T) {
	in := newInjector(t)
	in.Arm("f.cond", CompInversion)
	if !in.Cond("f.cond", true) {
		t.Fatal("fired while disabled")
	}
	if in.Fired("f.cond") {
		t.Fatal("Fired true while disabled")
	}
}

func TestFireOnce(t *testing.T) {
	in := newInjector(t)
	in.Arm("f.cond", CompInversion)
	in.Enable()
	if in.Cond("f.cond", true) {
		t.Fatal("armed inversion did not fire")
	}
	if !in.Fired("f.cond") || !in.FiredAny() {
		t.Fatal("fired state not recorded")
	}
	// Second execution passes through: transient-trigger model.
	if !in.Cond("f.cond", true) {
		t.Fatal("fault fired twice")
	}
}

func TestFaultSemantics(t *testing.T) {
	cases := []struct {
		typ   FaultType
		check func(in *Injector) bool
	}{
		{CompInversion, func(in *Injector) bool { return in.Cond("f.cond", true) == false }},
		{MissingBranch, func(in *Injector) bool { return in.Cond("f.cond", true) == false }},
		{WrongOperand, func(in *Injector) bool { v := in.U64("f.val", 999); return v == 0 || v == 1 }},
		{WrongResult, func(in *Injector) bool { v := in.U64("f.val", 999); return v == 0 || v == 1 }},
		{UninitVar, func(in *Injector) bool { return in.U64("f.val", 999) == 0xDEAD4BADDEAD4BAD }},
		{MissingStore, func(in *Injector) bool {
			ran := false
			in.Do("f.act", func() { ran = true })
			return !ran
		}},
		{MissingCall, func(in *Injector) bool {
			ran := false
			in.Do("f.act", func() { ran = true })
			return !ran
		}},
	}
	for _, tc := range cases {
		in := newInjector(t)
		site := "f.cond"
		switch tc.typ {
		case WrongOperand, WrongResult, UninitVar:
			site = "f.val"
		case MissingStore, MissingCall:
			site = "f.act"
		}
		in.Arm(site, tc.typ)
		in.Enable()
		if !tc.check(in) {
			t.Errorf("%v did not take effect", tc.typ)
		}
	}
}

func TestIntUninit(t *testing.T) {
	in := newInjector(t)
	in.Arm("f.val", UninitVar)
	in.Enable()
	if v := in.Int("f.val", 10); v >= 0 {
		t.Fatalf("uninit int = %d, want garbage negative", v)
	}
}

func TestArmValidation(t *testing.T) {
	in := newInjector(t)
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("unknown site", func() { in.Arm("nope", CompInversion) })
	expectPanic("inapplicable type", func() { in.Arm("f.cond", MissingStore) })
	expectPanic("duplicate site", func() { in.Register(Site{ID: "f.cond", Kind: KindCond}) })
}

func TestTypesFor(t *testing.T) {
	if len(TypesFor(KindCond)) != 2 || len(TypesFor(KindValue)) != 3 || len(TypesFor(KindAction)) != 2 {
		t.Fatal("TypesFor cardinalities wrong")
	}
	total := 0
	for _, k := range []SiteKind{KindCond, KindValue, KindAction} {
		total += len(TypesFor(k))
	}
	if total != NumFaultTypes {
		t.Fatalf("fault types covered %d, want %d", total, NumFaultTypes)
	}
}

func TestExecCountAndSites(t *testing.T) {
	in := newInjector(t)
	in.Cond("f.cond", true)
	in.Cond("f.cond", true)
	if in.ExecCount("f.cond") != 2 {
		t.Fatalf("ExecCount = %d", in.ExecCount("f.cond"))
	}
	sites := in.Sites()
	if len(sites) != 3 || sites[0].ID > sites[1].ID {
		t.Fatalf("Sites() = %+v", sites)
	}
}

func TestReset(t *testing.T) {
	in := newInjector(t)
	in.Arm("f.cond", CompInversion)
	in.Enable()
	in.Cond("f.cond", true)
	in.Reset()
	if in.Enabled() || in.FiredAny() || in.ExecCount("f.cond") != 0 {
		t.Fatal("Reset incomplete")
	}
	// Sites survive reset.
	if len(in.Sites()) != 3 {
		t.Fatal("Reset dropped sites")
	}
}

func TestFaultTypeStrings(t *testing.T) {
	for ty := FaultType(0); ty < NumFaultTypes; ty++ {
		if ty.String() == "unknown-fault" {
			t.Fatalf("type %d has no name", ty)
		}
	}
}

func TestArmAfterSkipsExecutions(t *testing.T) {
	in := New()
	in.Register(Site{ID: "op.move", Kind: KindOp})
	in.ArmAfter("op.move", OpFailure, 2)
	in.Enable()
	for i := 0; i < 2; i++ {
		if in.Fail("op.move") {
			t.Fatalf("fault fired on execution %d, want skip", i)
		}
	}
	if !in.Fail("op.move") {
		t.Fatal("fault did not fire on the third execution")
	}
	if in.Fail("op.move") {
		t.Fatal("fault fired twice")
	}
	if !in.Fired("op.move") {
		t.Fatal("Fired not recorded")
	}
}

func TestFailUnarmedAndDisabled(t *testing.T) {
	in := New()
	in.RegisterRecovery()
	if in.Fail(SitePreserveMove) {
		t.Fatal("unarmed op site fired")
	}
	in.Arm(SitePreserveMove, OpFailure)
	// Not enabled: must not fire.
	if in.Fail(SitePreserveMove) {
		t.Fatal("disabled injector fired")
	}
	in.Enable()
	if !in.Fail(SitePreserveMove) {
		t.Fatal("armed+enabled op site did not fire")
	}
}

func TestRegisterRecoveryIdempotent(t *testing.T) {
	in := New()
	in.RegisterRecovery()
	in.RegisterRecovery() // must not panic on duplicates
	want := len(RecoverySites())
	got := 0
	for _, s := range in.Sites() {
		if s.Kind == KindOp || s.Kind == KindCorrupt {
			got++
		}
	}
	if got != want {
		t.Fatalf("recovery sites registered %d, want %d", got, want)
	}
	if types := TypesFor(KindOp); len(types) != 1 || types[0] != OpFailure {
		t.Fatalf("TypesFor(KindOp) = %v", TypesFor(KindOp))
	}
	if types := TypesFor(KindCorrupt); len(types) != 1 || types[0] != BitFlip {
		t.Fatalf("TypesFor(KindCorrupt) = %v", TypesFor(KindCorrupt))
	}
	if OpFailure.String() != "operation-failure" {
		t.Fatalf("OpFailure.String() = %q", OpFailure.String())
	}
	if BitFlip.String() != "preserved-frame-bit-flip" {
		t.Fatalf("BitFlip.String() = %q", BitFlip.String())
	}
}

// TestCorruptAndDisarm covers the Byzantine helpers: BitFlip only fires
// through Corrupt (Fail at the same site stays quiet), fires once, and Disarm
// clears the fired latch so the site can be re-armed for a later incarnation.
func TestCorruptAndDisarm(t *testing.T) {
	in := New()
	in.RegisterRecovery()
	in.ArmAfter(SitePreserveCorrupt, BitFlip, 1)
	in.Enable()
	if in.Fail(SitePreserveCorrupt) {
		t.Fatal("Fail fired for an armed BitFlip")
	}
	// The Fail call above consumed the one skipped execution.
	if !in.Corrupt(SitePreserveCorrupt) {
		t.Fatal("BitFlip did not fire on the second execution")
	}
	if in.Corrupt(SitePreserveCorrupt) {
		t.Fatal("BitFlip fired twice")
	}
	in.Disarm(SitePreserveCorrupt)
	if in.Fired(SitePreserveCorrupt) {
		t.Fatal("Disarm left the fired latch set")
	}
	in.Arm(SitePreserveCorrupt, BitFlip)
	if !in.Corrupt(SitePreserveCorrupt) {
		t.Fatal("re-armed BitFlip did not fire after Disarm")
	}
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("OpFailure at corrupt site", func() { in.Arm(SitePreserveCorrupt, OpFailure) })
	expectPanic("BitFlip at op site", func() { in.Arm(SitePreserveMove, BitFlip) })
}

func TestResetClearsSkips(t *testing.T) {
	in := New()
	in.RegisterRecovery()
	in.ArmAfter(SitePreserveCopy, OpFailure, 5)
	in.Reset()
	in.RegisterRecovery() // idempotent after reset too
	in.Arm(SitePreserveCopy, OpFailure)
	in.Enable()
	if !in.Fail(SitePreserveCopy) {
		t.Fatal("stale skip count survived Reset")
	}
}
