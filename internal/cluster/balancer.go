package cluster

import (
	"time"

	"phoenix/internal/netsim"
	"phoenix/internal/workload"
)

// balancer fronts the replica set: it health-probes every node on a fixed
// cadence, routes each client request to its home node (clientID mod
// replicas) when healthy — spreading retries to the following nodes — and
// relays responses back. It also does the run's availability bookkeeping:
// closing unavailability windows on the first effective read a killed node
// delivers, and counting any response that would have escaped a partitioned
// node.
type balancer struct {
	c       *Cluster
	lastAck []time.Duration

	// partitionResponses counts non-refusal responses received from the
	// currently partitioned node. The fabric cuts them, so the count must
	// stay zero; it is the campaign's proof the isolation held.
	partitionResponses int
}

func newBalancer(c *Cluster) *balancer {
	return &balancer{c: c, lastAck: make([]time.Duration, c.cfg.Replicas)}
}

func (lb *balancer) start() { lb.probe() }

func (lb *balancer) probe() {
	for i := range lb.c.nodes {
		lb.c.net.Send(lbID, nodeID(i), probeEnv{})
	}
	lb.c.clk.AfterFunc(lb.c.cfg.ProbeInterval, lb.probe)
}

// healthy reports whether the node acked a probe recently enough to route
// to. At time zero every node is trusted until the first staleness horizon.
func (lb *balancer) healthy(i int) bool {
	return lb.c.clk.Now()-lb.lastAck[i] <= lb.c.cfg.ProbeStale
}

func (lb *balancer) handle(m netsim.Message) {
	switch env := m.Payload.(type) {
	case reqEnv:
		lb.route(env)
	case respEnv:
		lb.onResponse(env)
	case ackEnv:
		lb.lastAck[env.Node] = lb.c.clk.Now()
	}
}

// route forwards a request to the first healthy candidate, starting from the
// client's home node offset by the attempt number — so a retry of a request
// that died on its home node lands on the next replica instead of hammering
// the same one. With no healthy candidate the request goes to the nominal
// choice anyway (it will be refused or time out, and the client retries).
func (lb *balancer) route(env reqEnv) {
	r := lb.c.cfg.Replicas
	home := env.Client % r
	for i := 0; i < r; i++ {
		cand := (home + env.Attempt + i) % r
		if lb.healthy(cand) {
			lb.c.net.Send(lbID, nodeID(cand), env)
			return
		}
	}
	lb.c.net.Send(lbID, nodeID((home+env.Attempt)%r), env)
}

func (lb *balancer) onResponse(env respEnv) {
	if lb.c.partitioned == env.Node && !env.Refused {
		lb.partitionResponses++
	}
	// An effective read (a key found, or a cache hit) from a killed node
	// proves it is serving real state again: close its unavailability window.
	// (Writes don't count — a freshly wiped vanilla node answers writes
	// instantly without having recovered anything.)
	isRead := env.Op == workload.OpRead || env.Op == workload.OpWebGet
	if w := lb.c.openW[env.Node]; w != nil && !env.Refused && env.Effective && isRead && env.Epoch >= w.epoch {
		w.end = lb.c.clk.Now()
		w.closed = true
		lb.c.openW[env.Node] = nil
	}
	lb.c.net.Send(lbID, clientID(env.Client), env)
}
