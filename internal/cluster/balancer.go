package cluster

import (
	"time"

	"phoenix/internal/netsim"
	"phoenix/internal/workload"
)

// balancer fronts the replica set: it health-probes every node on a fixed
// cadence, routes each client request to its home node (clientID mod
// replicas) when healthy — spreading retries to the following nodes — and
// relays responses back. It also does the run's availability bookkeeping:
// closing unavailability windows on the first effective read a killed node
// delivers, and counting any response that would have escaped a partitioned
// node.
type balancer struct {
	c       *Cluster
	lastAck []time.Duration
	// stale tracks which nodes are currently past the staleness horizon, so
	// the probe log records health *transitions* once rather than on every
	// tick.
	stale []bool

	// events is the per-node probe log: every ack plus each health
	// transition. Long campaigns generate one ack per node per probe
	// interval forever, so the log is bounded exactly like the harness
	// event ring: at ProbeEventCap the oldest half is discarded and
	// droppedByKind accounts for the loss.
	events        []ProbeEvent
	droppedEvents int
	droppedByKind map[ProbeEventKind]int
	// staleCount/recoverCount tally health transitions per node as plain
	// counters, immune to ring compaction, so node reports stay exact even
	// after the detailed log has wrapped.
	staleCount   []int
	recoverCount []int

	// partitionResponses counts non-refusal responses received from the
	// currently partitioned node. The fabric cuts them, so the count must
	// stay zero; it is the campaign's proof the isolation held.
	partitionResponses int
}

// ProbeEventKind classifies one balancer probe-log entry.
type ProbeEventKind string

const (
	// ProbeAck is a node answering a health probe.
	ProbeAck ProbeEventKind = "ack"
	// ProbeStale is a node crossing the staleness horizon: the balancer
	// starts routing around it.
	ProbeStale ProbeEventKind = "stale"
	// ProbeRecover is the first ack from a node that had gone stale.
	ProbeRecover ProbeEventKind = "recover"
)

// ProbeEvent is one entry of the balancer's bounded probe log.
type ProbeEvent struct {
	At   time.Duration
	Node int
	Kind ProbeEventKind
}

func newBalancer(c *Cluster) *balancer {
	return &balancer{
		c:            c,
		lastAck:      make([]time.Duration, c.cfg.Replicas),
		stale:        make([]bool, c.cfg.Replicas),
		staleCount:   make([]int, c.cfg.Replicas),
		recoverCount: make([]int, c.cfg.Replicas),
	}
}

func (lb *balancer) start() { lb.probe() }

func (lb *balancer) probe() {
	for i := range lb.c.nodes {
		if !lb.healthy(i) && !lb.stale[i] {
			lb.stale[i] = true
			lb.staleCount[i]++
			lb.probeEvent(i, ProbeStale)
		}
		lb.c.net.Send(lbID, nodeID(i), probeEnv{})
	}
	lb.c.clk.AfterFunc(lb.c.cfg.ProbeInterval, lb.probe)
}

// probeEvent appends to the probe log, compacting the way the harness event
// ring does: at the cap the oldest half is dropped and the loss is counted
// per kind, so a campaign report can still say what kind of history is gone.
func (lb *balancer) probeEvent(node int, kind ProbeEventKind) {
	if limit := lb.c.cfg.ProbeEventCap; limit > 0 && len(lb.events) >= limit {
		drop := len(lb.events) - limit/2
		if lb.droppedByKind == nil {
			lb.droppedByKind = make(map[ProbeEventKind]int)
		}
		for _, e := range lb.events[:drop] {
			lb.droppedByKind[e.Kind]++
		}
		kept := copy(lb.events, lb.events[drop:])
		lb.events = lb.events[:kept]
		lb.droppedEvents += drop
	}
	lb.events = append(lb.events, ProbeEvent{At: lb.c.clk.Now(), Node: node, Kind: kind})
}

// healthy reports whether the node acked a probe recently enough to route
// to. At time zero every node is trusted until the first staleness horizon.
func (lb *balancer) healthy(i int) bool {
	return lb.c.clk.Now()-lb.lastAck[i] <= lb.c.cfg.ProbeStale
}

func (lb *balancer) handle(m netsim.Message) {
	switch env := m.Payload.(type) {
	case reqEnv:
		lb.route(env)
	case respEnv:
		lb.onResponse(env)
	case ackEnv:
		lb.lastAck[env.Node] = lb.c.clk.Now()
		if lb.stale[env.Node] {
			lb.stale[env.Node] = false
			lb.recoverCount[env.Node]++
			lb.probeEvent(env.Node, ProbeRecover)
		}
		lb.probeEvent(env.Node, ProbeAck)
	}
}

// route forwards a request to the first healthy candidate, starting from the
// client's home node offset by the attempt number — so a retry of a request
// that died on its home node lands on the next replica instead of hammering
// the same one. With no healthy candidate the request goes to the nominal
// choice anyway (it will be refused or time out, and the client retries).
func (lb *balancer) route(env reqEnv) {
	r := lb.c.cfg.Replicas
	home := env.Client % r
	for i := 0; i < r; i++ {
		cand := (home + env.Attempt + i) % r
		if lb.healthy(cand) {
			lb.c.net.Send(lbID, nodeID(cand), env)
			return
		}
	}
	lb.c.net.Send(lbID, nodeID((home+env.Attempt)%r), env)
}

func (lb *balancer) onResponse(env respEnv) {
	if lb.c.partitioned == env.Node && !env.Refused {
		lb.partitionResponses++
	}
	// An effective read (a key found, or a cache hit) from a killed node
	// proves it is serving real state again: close its unavailability window.
	// (Writes don't count — a freshly wiped vanilla node answers writes
	// instantly without having recovered anything.)
	isRead := env.Op == workload.OpRead || env.Op == workload.OpWebGet
	if w := lb.c.openW[env.Node]; w != nil && !env.Refused && env.Effective && isRead && env.Epoch >= w.epoch {
		w.end = lb.c.clk.Now()
		w.closed = true
		lb.c.openW[env.Node] = nil
	}
	lb.c.net.Send(lbID, clientID(env.Client), env)
}
