package cluster

import (
	"testing"

	"phoenix/internal/simclock"
)

// TestProbeEventRingBounded drives the balancer's probe log past its cap and
// checks the harness-mirroring compaction: the log never exceeds the cap,
// the oldest half is what gets dropped, and the loss is accounted per kind.
func TestProbeEventRingBounded(t *testing.T) {
	lb := &balancer{c: &Cluster{cfg: Config{ProbeEventCap: 8}, clk: simclock.New()}}

	for i := 0; i < 100; i++ {
		kind := ProbeAck
		if i%10 == 0 {
			kind = ProbeStale
		}
		lb.probeEvent(i%3, kind)
		if len(lb.events) > 8 {
			t.Fatalf("after %d events the log holds %d entries, cap is 8", i+1, len(lb.events))
		}
	}
	if lb.droppedEvents == 0 {
		t.Fatal("100 events through a cap-8 ring dropped nothing")
	}
	total := 0
	for _, n := range lb.droppedByKind {
		total += n
	}
	if total != lb.droppedEvents {
		t.Fatalf("droppedByKind sums to %d, droppedEvents is %d", total, lb.droppedEvents)
	}
	if lb.droppedByKind[ProbeStale] == 0 {
		t.Fatal("stale transitions were dropped but not accounted by kind")
	}
	if kept := len(lb.events) + lb.droppedEvents; kept != 100 {
		t.Fatalf("kept+dropped = %d, want 100", kept)
	}
}

// TestProbeEventRingUnbounded checks the negative-cap escape hatch.
func TestProbeEventRingUnbounded(t *testing.T) {
	lb := &balancer{c: &Cluster{cfg: Config{ProbeEventCap: -1}, clk: simclock.New()}}
	for i := 0; i < 10_000; i++ {
		lb.probeEvent(0, ProbeAck)
	}
	if len(lb.events) != 10_000 || lb.droppedEvents != 0 {
		t.Fatalf("unbounded log: kept %d dropped %d, want 10000/0", len(lb.events), lb.droppedEvents)
	}
}
