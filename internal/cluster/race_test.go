package cluster_test

// Race-hammer for the serving tier: each cluster run is single-threaded by
// design (one simclock drives balancer probes, client traffic, and the kill
// schedule), so the concurrency hazard worth hunting is *shared package
// state* — a stray global in the balancer, fabric, kernel, or app layers
// that two independent clusters would stomp. This test runs many full
// clusters concurrently under -race with kill-heavy schedules and health
// probing active, requires same-seed runs to stay byte-identical even while
// racing each other, and checks no goroutine outlives the runs.

import (
	"bytes"
	"runtime"
	"sync"
	"testing"
	"time"

	"phoenix/internal/apps/registry"
	"phoenix/internal/cluster"
	"phoenix/internal/recovery"
)

func hammerOnce(t *testing.T, seed int64) cluster.Report {
	t.Helper()
	mk := registry.Factories(seed)["kvstore"]
	prof := registry.ClusterProfile("kvstore", seed)
	cfg := cluster.Config{
		System:   "kvstore",
		Seed:     seed,
		Recovery: recovery.Config{Mode: recovery.ModePhoenix, CheckpointInterval: prof.CheckpointInterval},
		Profile:  prof,
	}
	d := prof.RunFor
	sched := cluster.Schedule{Kills: []cluster.Kill{
		{At: d / 4, Node: 0},
		{At: d / 3, Node: 1},
		{At: d / 2, Node: 2},
	}}
	rep, err := cluster.Run(cfg, mk, sched)
	if err != nil {
		t.Errorf("seed %d: %v", seed, err)
		return cluster.Report{}
	}
	return rep
}

func TestClusterRaceHammer(t *testing.T) {
	before := runtime.NumGoroutine()

	// 4 seeds × 2 concurrent runs each: the duplicate pairs double as a
	// determinism check under contention.
	const seedCount, dup = 4, 2
	reports := make([]cluster.Report, seedCount*dup)
	var wg sync.WaitGroup
	for i := range reports {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			reports[i] = hammerOnce(t, int64(i%seedCount)+1)
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	for s := 0; s < seedCount; s++ {
		a, b := reports[s], reports[s+seedCount]
		ja, err := a.JSON()
		if err != nil {
			t.Fatal(err)
		}
		jb, err := b.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ja, jb) {
			t.Fatalf("seed %d: concurrent same-seed runs diverged:\n%s\n%s", s+1, ja, jb)
		}
		if a.Kills != 3 || a.Requests == 0 {
			t.Fatalf("seed %d: hammer run exercised nothing: %s", s+1, a)
		}
		// Health probing ran: the balancer's probe traffic is part of NetSent
		// beyond the request/response pairs, and every node answered probes.
		for _, nd := range a.Nodes {
			if nd.Accepted == 0 {
				t.Fatalf("seed %d: node %d accepted nothing (balancer never routed to it): %s", s+1, nd.Node, ja)
			}
		}
	}

	// Goroutine-leak check: nothing the runs started may outlive them. A few
	// settle retries tolerate runtime-internal goroutines winding down.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
