package cluster_test

import (
	"testing"

	"phoenix/internal/apps/registry"
	"phoenix/internal/cluster"
	"phoenix/internal/recovery"
)

// TestProbeTransitionsAccountedInRun runs one small cluster with a kill and
// checks the report surfaces the probe accounting: the killed node goes
// stale and recovers, per-node transition counters survive even with a tiny
// ring, and the ring honors its cap.
func TestProbeTransitionsAccountedInRun(t *testing.T) {
	const seed = 11
	mk := registry.Factories(seed)["kvstore"]
	prof := registry.ClusterProfile("kvstore", seed)
	cfg := cluster.Config{
		System:        "kvstore",
		Seed:          seed,
		Recovery:      recovery.Config{Mode: recovery.ModePhoenix, CheckpointInterval: prof.CheckpointInterval},
		Profile:       prof,
		ProbeEventCap: 32,
	}
	sched := cluster.Schedule{Kills: []cluster.Kill{{At: prof.RunFor / 4, Node: 1}}}
	rep, err := cluster.Run(cfg, mk, sched)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ProbeEvents > 32 {
		t.Fatalf("probe log holds %d entries, cap is 32", rep.ProbeEvents)
	}
	if rep.ProbeDropped == 0 {
		t.Fatal("a full run through a cap-32 ring dropped nothing")
	}
	if rep.ProbeDroppedByKind[string(cluster.ProbeAck)] == 0 {
		t.Fatal("dropped acks not accounted by kind")
	}
	var node cluster.NodeReport
	for _, n := range rep.Nodes {
		if n.Node == 1 {
			node = n
		}
	}
	if node.ProbeStales == 0 {
		t.Fatalf("killed node 1 never went stale: %+v", node)
	}
	if node.ProbeRecovers == 0 {
		t.Fatalf("killed node 1 never recovered per the probe log: %+v", node)
	}
}
