package cluster_test

import (
	"testing"

	"phoenix/internal/apps/registry"
	"phoenix/internal/cluster"
)

// TestCheckClusterAllApps runs the full availability-under-traffic campaign:
// every registry application, PHOENIX vs Builtin vs Vanilla under the same
// kill/drain/partition schedule. The campaign itself asserts the serving-tier
// contract (availability ordering, recovered windows, silent drains, sealed
// partitions, byte-identical replay).
func TestCheckClusterAllApps(t *testing.T) {
	res, err := cluster.CheckCluster(registry.ClusterSystems(1), cluster.Options{Seed: 1})
	for _, r := range res {
		t.Logf("\n%s", cluster.FmtComparison(r))
	}
	if err != nil {
		t.Fatal(err)
	}
}
