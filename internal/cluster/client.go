package cluster

import (
	"time"

	"phoenix/internal/netsim"
	"phoenix/internal/simclock"
	"phoenix/internal/workload"
)

// client is one closed-loop user: issue a request, wait for the response (or
// time out and retry, bounded), think, repeat — until the traffic window
// closes. Requests come from the client's own rewound clone of the profile
// workload, so the population is deterministic and per-client streams are
// independent.
type client struct {
	c   *Cluster
	idx int
	id  netsim.NodeID
	gen workload.Generator

	rid         uint64
	req         *workload.Request
	attempt     int
	resent      bool
	outstanding bool
	issuedAt    time.Duration
	timeout     *simclock.Timer
	hedge       *simclock.Timer
}

func (cl *client) start() {
	// Stagger client starts so the population doesn't arrive as one pulse.
	stagger := time.Duration(cl.idx+1) * 37 * time.Microsecond
	cl.c.clk.AfterFunc(stagger, cl.issueNext)
}

func (cl *client) issueNext() {
	if cl.c.clk.Now() >= cl.c.deadline {
		return
	}
	cl.req = cl.gen.Next()
	cl.rid++
	cl.attempt = 0
	cl.resent = false
	cl.outstanding = true
	cl.issuedAt = cl.c.clk.Now()
	cl.c.totalRequests++
	cl.send()
}

func (cl *client) send() {
	cl.stopTimers()
	cl.c.net.Send(cl.id, lbID, reqEnv{Client: cl.idx, RID: cl.rid, Attempt: cl.attempt, Req: cl.req})
	cl.timeout = cl.c.clk.AfterFunc(cl.c.cfg.Profile.Timeout, cl.onTimeout)
	if hd := cl.c.cfg.Profile.HedgeDelay; hd > 0 && cl.attempt == 0 {
		cl.hedge = cl.c.clk.AfterFunc(hd, cl.onHedge)
	}
}

func (cl *client) stopTimers() {
	if cl.timeout != nil {
		cl.c.clk.Stop(cl.timeout)
		cl.timeout = nil
	}
	if cl.hedge != nil {
		cl.c.clk.Stop(cl.hedge)
		cl.hedge = nil
	}
}

// onHedge fires a duplicate attempt at the next replica while the original
// stays outstanding; whichever response returns first wins.
func (cl *client) onHedge() {
	cl.hedge = nil
	if !cl.outstanding {
		return
	}
	cl.resent = true
	cl.c.net.Send(cl.id, lbID, reqEnv{Client: cl.idx, RID: cl.rid, Attempt: cl.attempt + 1, Req: cl.req})
}

func (cl *client) onTimeout() {
	cl.timeout = nil
	if !cl.outstanding {
		return
	}
	if cl.attempt >= cl.c.cfg.Profile.MaxRetries {
		cl.finishFailed()
		return
	}
	cl.attempt++
	cl.resent = true
	cl.send()
}

func (cl *client) handle(m netsim.Message) {
	env, ok := m.Payload.(respEnv)
	if !ok {
		return
	}
	// Duplicates, hedge losers, and responses to abandoned requests carry a
	// stale RID or arrive after the request resolved: drop them.
	if !cl.outstanding || env.RID != cl.rid {
		return
	}
	if env.Refused {
		if cl.timeout != nil {
			cl.c.clk.Stop(cl.timeout)
			cl.timeout = nil
		}
		if cl.attempt >= cl.c.cfg.Profile.MaxRetries {
			cl.finishFailed()
			return
		}
		cl.attempt++
		cl.resent = true
		rid := cl.rid
		cl.c.clk.AfterFunc(cl.c.cfg.Profile.RetryDelay, func() {
			if cl.outstanding && cl.rid == rid {
				cl.send()
			}
		})
		return
	}
	// Accepted response: classify the request's outcome.
	cl.outstanding = false
	cl.stopTimers()
	c := cl.c
	c.latencies = append(c.latencies, c.clk.Now()-cl.issuedAt)
	switch {
	case env.Effective && !cl.resent:
		c.served++
	case env.Effective:
		c.retried++
	default:
		c.stale++
	}
	c.clk.AfterFunc(c.cfg.Profile.Think, cl.issueNext)
}

func (cl *client) finishFailed() {
	cl.outstanding = false
	cl.stopTimers()
	cl.c.failed++
	cl.c.clk.AfterFunc(cl.c.cfg.Profile.Think, cl.issueNext)
}
