package cluster

import (
	"bytes"
	"fmt"

	"phoenix/internal/recovery"
)

// This file implements the availability-under-traffic campaign: for each
// registered application, replay the identical kill/drain/partition schedule
// against a PHOENIX cluster, a builtin-recovery cluster, and a vanilla
// cluster, and check the serving-tier contract — PHOENIX's measured
// availability strictly exceeds vanilla's under the same faults, its
// unavailability windows are shorter, a draining or partitioned node serves
// nothing, and the whole run is a deterministic replay (same seed →
// byte-identical report).

// System pairs an application factory with its cluster workload profile.
// The campaign's caller wires these from the app registry; the cluster
// package cannot import the registry itself (the registry depends on this
// package for the profile type).
type System struct {
	Name    string
	Factory recovery.AppFactory
	Profile Profile
}

// Options parameterises CheckCluster.
type Options struct {
	// Seed drives every run (default 1).
	Seed int64
	// Replicas is the per-cluster node count (default 3).
	Replicas int
}

// Result holds one system's three mode reports.
type Result struct {
	System  string `json:"system"`
	Phoenix Report `json:"phoenix"`
	Builtin Report `json:"builtin"`
	Vanilla Report `json:"vanilla"`
}

// CheckCluster runs the campaign for the given systems and returns the first
// contract violation found.
func CheckCluster(systems []System, o Options) ([]Result, error) {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Replicas <= 0 {
		o.Replicas = 3
	}
	var results []Result
	for _, sys := range systems {
		res, err := checkSystem(sys, o)
		results = append(results, res)
		if err != nil {
			return results, fmt.Errorf("cluster campaign: %s: %w", sys.Name, err)
		}
	}
	return results, nil
}

func checkSystem(sys System, o Options) (Result, error) {
	sys.Profile.fill()
	sched := DefaultSchedule(sys.Profile, o.Replicas)
	run := func(rcfg recovery.Config) (Report, error) {
		cfg := Config{
			System:   sys.Name,
			Replicas: o.Replicas,
			Seed:     o.Seed,
			Recovery: rcfg,
			Profile:  sys.Profile,
		}
		return Run(cfg, sys.Factory, sched)
	}

	res := Result{System: sys.Name}
	ci := sys.Profile.CheckpointInterval
	var err error
	if res.Phoenix, err = run(recovery.Config{Mode: recovery.ModePhoenix, CheckpointInterval: ci}); err != nil {
		return res, err
	}
	// Determinism: the identical configuration must replay byte-for-byte.
	rerun, err := run(recovery.Config{Mode: recovery.ModePhoenix, CheckpointInterval: ci})
	if err != nil {
		return res, err
	}
	j1, err := res.Phoenix.JSON()
	if err != nil {
		return res, err
	}
	j2, err := rerun.JSON()
	if err != nil {
		return res, err
	}
	if !bytes.Equal(j1, j2) {
		return res, fmt.Errorf("same-seed reruns diverged:\n%s\n%s", j1, j2)
	}
	if res.Builtin, err = run(recovery.Config{Mode: recovery.ModeBuiltin, CheckpointInterval: ci}); err != nil {
		return res, err
	}
	if res.Vanilla, err = run(recovery.Config{Mode: recovery.ModeVanilla}); err != nil {
		return res, err
	}

	p, b, v := res.Phoenix, res.Builtin, res.Vanilla
	switch {
	case p.Requests == 0 || v.Requests == 0 || b.Requests == 0:
		return res, fmt.Errorf("a mode served no traffic (phoenix=%d builtin=%d vanilla=%d requests)",
			p.Requests, b.Requests, v.Requests)
	case p.Kills == 0:
		return res, fmt.Errorf("schedule killed nothing — the campaign exercised no recovery")
	case p.AvailabilityPct <= v.AvailabilityPct:
		return res, fmt.Errorf("PHOENIX availability %.3f%% does not strictly exceed vanilla %.3f%%\n  phoenix: %s\n  vanilla: %s",
			p.AvailabilityPct, v.AvailabilityPct, p, v)
	case p.UnavailTotalUs >= v.UnavailTotalUs:
		return res, fmt.Errorf("PHOENIX unavailability %dµs did not shrink vs vanilla %dµs", p.UnavailTotalUs, v.UnavailTotalUs)
	case p.Unrecovered > 0:
		return res, fmt.Errorf("PHOENIX left %d kill(s) unrecovered to effective service", p.Unrecovered)
	}
	for _, rep := range []Report{p, b, v} {
		for _, nd := range rep.Nodes {
			if nd.StartedDuringDrain != 0 {
				return res, fmt.Errorf("%s: node %d began serving %d request(s) while draining", rep.Mode, nd.Node, nd.StartedDuringDrain)
			}
		}
		if len(DefaultSchedule(sys.Profile, o.Replicas).Drains) > 0 && rep.DrainRefusals == 0 {
			return res, fmt.Errorf("%s: drain window was never exercised (no refusals)", rep.Mode)
		}
		if len(DefaultSchedule(sys.Profile, o.Replicas).Partitions) > 0 {
			if rep.PartitionResponses != 0 {
				return res, fmt.Errorf("%s: partitioned node delivered %d response(s)", rep.Mode, rep.PartitionResponses)
			}
			if rep.NetPartitionDrops == 0 {
				return res, fmt.Errorf("%s: partition window was never exercised (no fabric drops)", rep.Mode)
			}
		}
	}
	return res, nil
}

// FmtComparison renders one result as the availability table the campaign
// and the figcluster experiment print.
func FmtComparison(res Result) string {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s (replicas=%d, clients=%d, kills=%d)\n",
		res.System, res.Phoenix.Replicas, res.Phoenix.Clients, res.Phoenix.Kills)
	fmt.Fprintf(&buf, "  %-8s %10s %8s %8s %8s %12s %6s\n",
		"mode", "avail", "p50", "p99", "p999", "unavail", "fail")
	for _, rep := range []Report{res.Phoenix, res.Builtin, res.Vanilla} {
		fmt.Fprintf(&buf, "  %-8s %9.3f%% %7dµs %7dµs %7dµs %11dµs %6d\n",
			rep.Mode, rep.AvailabilityPct, rep.P50Us, rep.P99Us, rep.P999Us, rep.UnavailTotalUs, rep.Failed)
	}
	return buf.String()
}
