// Package cluster simulates a replicated serving tier built from PHOENIX
// harnesses: N replica nodes — each one recovery.Harness over a real
// application from internal/apps — behind a load balancer with health
// probes, fed by a closed-loop client population over a netsim fabric.
//
// Two clocks cooperate. The *cluster clock* (one simclock.Clock shared with
// the network) orders every distributed event: message delivery, client
// think time and timeouts, health probes, and the fault schedule. Each node
// additionally keeps its own kernel.Machine whose clock is used as a
// stopwatch: before a node serves a request its machine clock is synced
// forward to cluster time, the harness runs the request (advancing the
// machine clock by the modelled service and recovery costs), and the delta
// becomes the cluster-time service duration. Node clocks may run ahead of
// the cluster clock (a request's state mutation is computed at dispatch but
// its completion is scheduled at dispatch+delta); they never run behind.
//
// Failures happen at request boundaries: a scheduled kill cancels the
// victim's in-flight completion (the response is lost and the client times
// out and retries elsewhere), discards its queue, and drives the harness's
// real recovery path — so a PHOENIX node comes back with its state
// preserved while a vanilla node comes back empty, and the difference
// surfaces as measured availability.
//
// Everything is deterministic: one seeded RNG in the fabric, no map
// iteration on any event path, timers firing in deadline order. Two runs
// with the same Config produce byte-identical reports.
package cluster

import (
	"fmt"
	"time"

	"phoenix/internal/faultinject"
	"phoenix/internal/kernel"
	"phoenix/internal/mem"
	"phoenix/internal/netsim"
	"phoenix/internal/recovery"
	"phoenix/internal/simclock"
	"phoenix/internal/workload"
)

// crashVA is an unmapped address: reading it is the synthetic "kill -9" the
// fault schedule uses (same address class as the recovery campaigns).
const crashVA = mem.VAddr(0x2_0000_0000)

const lbID = netsim.NodeID("lb")

func nodeID(i int) netsim.NodeID   { return netsim.NodeID(fmt.Sprintf("node%d", i)) }
func clientID(i int) netsim.NodeID { return netsim.NodeID(fmt.Sprintf("client%d", i)) }

// Profile shapes the client population and its workload.
type Profile struct {
	// Proto is the prototype workload; each client gets Proto.Clone(seed_i)
	// and replays from request one.
	Proto workload.Generator
	// Warm is served directly to every node before traffic opens (e.g.
	// inserts covering the read keyspace, or cache-filling fetches).
	Warm []*workload.Request
	// ClientsPerNode scales the population (total = ClientsPerNode × Replicas).
	ClientsPerNode int
	// Think is the closed-loop pause between a response and the next request.
	Think time.Duration
	// Timeout bounds one attempt; expiry triggers a retry.
	Timeout time.Duration
	// MaxRetries bounds retransmissions per request (after which it counts
	// as failed).
	MaxRetries int
	// RetryDelay is the pause before retrying a refused request (connection
	// refused is fast, but hammering a dead node is pointless).
	RetryDelay time.Duration
	// HedgeDelay, when positive, sends one hedged duplicate to another node
	// if no response arrived within the delay. Zero disables hedging.
	HedgeDelay time.Duration
	// RunFor is the traffic window; clients stop issuing at this cluster
	// time and the run settles until in-flight requests resolve.
	RunFor time.Duration
	// Settle extends the run past RunFor so in-flight requests resolve
	// (default covers the full retry budget).
	Settle time.Duration
	// CheckpointInterval is the per-node builtin/PHOENIX persistence cadence
	// (node-clock time).
	CheckpointInterval time.Duration
}

func (p *Profile) fill() {
	if p.ClientsPerNode <= 0 {
		p.ClientsPerNode = 3
	}
	if p.Think <= 0 {
		p.Think = 500 * time.Microsecond
	}
	if p.Timeout <= 0 {
		p.Timeout = 8 * time.Millisecond
	}
	if p.MaxRetries <= 0 {
		p.MaxRetries = 3
	}
	if p.RetryDelay <= 0 {
		p.RetryDelay = time.Millisecond
	}
	if p.RunFor <= 0 {
		p.RunFor = 150 * time.Millisecond
	}
	if p.Settle <= 0 {
		p.Settle = time.Duration(p.MaxRetries+1)*(p.Timeout+p.RetryDelay) + 20*time.Millisecond
	}
	if p.CheckpointInterval <= 0 {
		p.CheckpointInterval = 2 * time.Millisecond
	}
}

// Config parameterises one cluster run.
type Config struct {
	// System names the application (report labelling only).
	System string
	// Replicas is the node count (default 3).
	Replicas int
	// Seed drives every random draw and all derived per-node/per-client
	// seeds.
	Seed int64
	// Recovery is the per-node harness configuration (the mode under test).
	Recovery recovery.Config
	// Link shapes the fabric's default link.
	Link netsim.LinkConfig
	// ProbeInterval is the balancer's health-probe period.
	ProbeInterval time.Duration
	// ProbeStale is how long without an ack before a node is routed around.
	ProbeStale time.Duration
	// ProbeEventCap bounds the balancer's probe-event log: once the log
	// reaches the cap the oldest half is discarded and the loss is counted
	// per kind, mirroring the harness event ring. 0 takes the default
	// (4096); negative keeps the log unbounded.
	ProbeEventCap int
	// Profile shapes the client population.
	Profile Profile
	// Inj, when non-nil, is the network-level injector (netsim.link.* sites).
	// Node harnesses always get their own private injectors; sharing one
	// across nodes would collide on per-app site registration.
	Inj *faultinject.Injector
}

func (c *Config) fill() {
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Millisecond
	}
	if c.ProbeStale <= 0 {
		c.ProbeStale = 5 * time.Millisecond
	}
	if c.ProbeEventCap == 0 {
		c.ProbeEventCap = 4096
	}
	if c.Link.Latency == 0 {
		c.Link.Latency = 100 * time.Microsecond
		if c.Link.Jitter == 0 {
			c.Link.Jitter = 50 * time.Microsecond
		}
	}
	c.Profile.fill()
}

// Kill schedules one node kill at a cluster time.
type Kill struct {
	At   time.Duration
	Node int
}

// Window is a [From, To) interval applied to one node.
type Window struct {
	From, To time.Duration
	Node     int
}

// SnapshotRead schedules one concurrent-read batch on a node at a cluster
// time: the node commits an MVCC snapshot and serves Count in-distribution
// reads off it at a fan-out of Readers (see recovery.SnapshotReadBatch).
type SnapshotRead struct {
	At      time.Duration
	Node    int
	Count   int // batch size (0 = default 16)
	Readers int // modelled reader fan-out (0 = 1)
}

// Schedule is the fault script a run executes. The same schedule is replayed
// against every recovery mode under comparison.
type Schedule struct {
	Kills         []Kill
	Drains        []Window
	Partitions    []Window
	SnapshotReads []SnapshotRead
}

// DefaultSchedule kills node 0 at 25% and node 1 at 50% of the traffic
// window (one kill per node: a second kill on the same node would land
// inside the PHOENIX grace window at these time scales and measure the
// fallback path instead), then drains and later partitions the last node.
func DefaultSchedule(p Profile, replicas int) Schedule {
	d := p.RunFor
	s := Schedule{Kills: []Kill{{At: d / 4, Node: 0}}}
	if replicas > 1 {
		s.Kills = append(s.Kills, Kill{At: d / 2, Node: 1})
	}
	last := replicas - 1
	if replicas > 2 {
		s.Drains = []Window{{From: d * 55 / 100, To: d * 70 / 100, Node: last}}
		s.Partitions = []Window{{From: d * 78 / 100, To: d * 90 / 100, Node: last}}
	}
	return s
}

// --- message envelopes (netsim payloads) ---

type reqEnv struct {
	Client  int
	RID     uint64
	Attempt int
	Req     *workload.Request
}

type respEnv struct {
	Client    int
	RID       uint64
	Attempt   int
	Node      int
	Ok        bool
	Effective bool
	Refused   bool
	Op        workload.Op
	// Epoch is the node's kill count at dispatch: a window opened by kill k
	// only closes on a response computed in epoch k (not by a pre-kill
	// response still in flight when the node died).
	Epoch int
}

type probeEnv struct{}

type ackEnv struct{ Node int }

// windowRec tracks one unavailability window: kill time until the killed
// node's first effective read reaches the balancer.
type windowRec struct {
	node       int
	epoch      int // node kill count that opened this window
	start, end time.Duration
	closed     bool
}

// Cluster is one live run.
type Cluster struct {
	cfg     Config
	clk     *simclock.Clock
	net     *netsim.Network
	lb      *balancer
	nodes   []*node
	clients []*client

	deadline time.Duration // traffic window end

	// partitioned is the currently isolated node index (-1 = none).
	partitioned int

	// request outcome accounting (aggregated over all clients).
	totalRequests int
	served        int
	retried       int
	stale         int
	failed        int
	latencies     []time.Duration

	windows []*windowRec
	openW   []*windowRec // per-node open window

	firstErr error
}

func (c *Cluster) fail(err error) {
	if c.firstErr == nil {
		c.firstErr = err
	}
}

// Run executes one cluster under one recovery configuration against the
// fault schedule and returns its report.
func Run(cfg Config, mk recovery.AppFactory, sched Schedule) (Report, error) {
	cfg.fill()
	clk := simclock.New()
	c := &Cluster{
		cfg:         cfg,
		clk:         clk,
		net:         netsim.New(clk, cfg.Link, cfg.Seed, cfg.Inj),
		deadline:    cfg.Profile.RunFor,
		partitioned: -1,
		openW:       make([]*windowRec, cfg.Replicas),
	}

	// Nodes: each gets its own machine (stopwatch clock) and its own
	// injector (apps register their sites at construction; a shared injector
	// would panic on the second node's duplicate registration).
	for i := 0; i < cfg.Replicas; i++ {
		m := kernel.NewMachine(cfg.Seed*7919 + int64(i) + 1)
		inj := faultinject.New()
		app, gen := mk(inj)
		h := recovery.NewHarness(m, cfg.Recovery, app, gen, inj)
		if err := h.Boot(); err != nil {
			return Report{}, fmt.Errorf("cluster: node %d boot: %w", i, err)
		}
		nd := &node{c: c, idx: i, id: nodeID(i), h: h}
		for _, wr := range cfg.Profile.Warm {
			if _, _, err := h.ServeRequest(wr); err != nil {
				return Report{}, fmt.Errorf("cluster: node %d warm: %w", i, err)
			}
		}
		c.net.Register(nd.id, nd.handle)
		c.nodes = append(c.nodes, nd)
	}

	c.lb = newBalancer(c)
	c.net.Register(lbID, c.lb.handle)

	nClients := cfg.Profile.ClientsPerNode * cfg.Replicas
	for i := 0; i < nClients; i++ {
		cl := &client{
			c: c, idx: i, id: clientID(i),
			gen: cfg.Profile.Proto.Clone(cfg.Seed*1_000_003 + int64(i)),
		}
		c.net.Register(cl.id, cl.handle)
		c.clients = append(c.clients, cl)
		cl.start()
	}
	c.lb.start()

	for _, k := range sched.Kills {
		nd := c.nodes[k.Node]
		clk.AfterFunc(k.At, nd.kill)
	}
	for _, w := range sched.Drains {
		nd := c.nodes[w.Node]
		clk.AfterFunc(w.From, nd.drainStart)
		clk.AfterFunc(w.To, nd.drainEnd)
	}
	for _, w := range sched.Partitions {
		w := w
		clk.AfterFunc(w.From, func() { c.partitionStart(w.Node) })
		clk.AfterFunc(w.To, c.partitionEnd)
	}
	for _, sr := range sched.SnapshotReads {
		sr := sr
		nd := c.nodes[sr.Node]
		clk.AfterFunc(sr.At, func() { nd.snapshotRead(sr.Count, sr.Readers) })
	}

	clk.Advance(cfg.Profile.RunFor + cfg.Profile.Settle)
	if c.firstErr != nil {
		return Report{}, c.firstErr
	}
	return c.report(sched), nil
}

// partitionStart isolates one node from everything else — the balancer, the
// other nodes, and every client. In-flight messages crossing the cut are
// dropped by the fabric.
func (c *Cluster) partitionStart(idx int) {
	rest := []netsim.NodeID{lbID}
	for i := range c.nodes {
		if i != idx {
			rest = append(rest, nodeID(i))
		}
	}
	for i := range c.clients {
		rest = append(rest, clientID(i))
	}
	c.net.Partition(rest, []netsim.NodeID{nodeID(idx)})
	c.partitioned = idx
}

func (c *Cluster) partitionEnd() {
	c.net.Heal()
	c.partitioned = -1
}
