package cluster

import (
	"fmt"
	"time"

	"phoenix/internal/netsim"
	"phoenix/internal/recovery"
	"phoenix/internal/simclock"
)

type nodeState int

const (
	stateServing nodeState = iota
	stateDraining
	stateDown
)

// node is one replica: a recovery harness over a real application, serving
// one request at a time from a FIFO queue. The harness's machine clock is
// the node's stopwatch; the cluster clock orders its interactions with the
// rest of the world.
type node struct {
	c   *Cluster
	idx int
	id  netsim.NodeID
	h   *recovery.Harness

	state      nodeState
	queue      []reqEnv
	busy       bool
	completion *simclock.Timer

	// accounting
	accepted           int
	refused            int
	drainRefusals      int
	startedDuringDrain int
	kills              int
	recoveryTotal      time.Duration
	snapshotReads      int
	snapshotEffective  int
	snapshotStale      int
}

func (nd *node) handle(m netsim.Message) {
	switch env := m.Payload.(type) {
	case reqEnv:
		nd.onRequest(env)
	case probeEnv:
		// Only a fully serving node acks: draining and dead nodes go dark so
		// the balancer routes around them.
		if nd.state == stateServing {
			nd.c.net.Send(nd.id, lbID, ackEnv{Node: nd.idx})
		}
	}
}

func (nd *node) onRequest(env reqEnv) {
	if nd.state != stateServing {
		// Connection refused: a fast, explicit failure the client retries
		// elsewhere (vs. the slow timeout a lost packet costs).
		nd.refused++
		if nd.state == stateDraining {
			nd.drainRefusals++
		}
		nd.c.net.Send(nd.id, lbID, respEnv{
			Client: env.Client, RID: env.RID, Attempt: env.Attempt,
			Node: nd.idx, Refused: true, Op: env.Req.Op,
		})
		return
	}
	nd.accepted++
	nd.queue = append(nd.queue, env)
	nd.startNext()
}

// startNext dispatches the queue head. The harness computes the request's
// outcome and service duration immediately on the node's machine clock; the
// response is then scheduled that far in the cluster's future, so the node
// is busy (single-server) until the modelled completion time.
func (nd *node) startNext() {
	if nd.busy || nd.state != stateServing || len(nd.queue) == 0 {
		return
	}
	if nd.state == stateDraining {
		nd.startedDuringDrain++ // unreachable by construction; the campaign asserts it stays zero
	}
	env := nd.queue[0]
	nd.queue = nd.queue[1:]
	nd.busy = true

	nd.syncClock()
	before := nd.h.M.Clock.Now()
	ok, eff, err := nd.h.ServeRequest(env.Req)
	if err != nil {
		nd.c.fail(fmt.Errorf("cluster: node %d serve: %w", nd.idx, err))
		return
	}
	dur := nd.h.M.Clock.Now() - before
	resp := respEnv{
		Client: env.Client, RID: env.RID, Attempt: env.Attempt,
		Node: nd.idx, Ok: ok, Effective: eff, Op: env.Req.Op, Epoch: nd.kills,
	}
	nd.completion = nd.c.clk.AfterFunc(dur, func() {
		nd.busy = false
		nd.completion = nil
		nd.c.net.Send(nd.id, lbID, resp)
		nd.startNext()
	})
}

// syncClock pulls the node's machine clock forward to cluster time (never
// backward — the node clock may legitimately be ahead after computing an
// in-flight request's completion).
func (nd *node) syncClock() {
	if now := nd.c.clk.Now(); now > nd.h.M.Clock.Now() {
		nd.h.M.Clock.AdvanceTo(now)
	}
}

// kill crashes the node's process at the current cluster time and drives the
// harness's real recovery path. The in-flight response (if any) is lost —
// its client times out and retries — and queued requests vanish with the
// process. The node is Down for exactly the simulated recovery duration.
func (nd *node) kill() {
	if nd.state == stateDown {
		return
	}
	nd.state = stateDown
	nd.kills++
	if nd.completion != nil {
		nd.c.clk.Stop(nd.completion)
		nd.completion = nil
	}
	nd.busy = false
	nd.queue = nil

	// Open the unavailability window for this node.
	if nd.c.openW[nd.idx] == nil {
		w := &windowRec{node: nd.idx, epoch: nd.kills, start: nd.c.clk.Now()}
		nd.c.windows = append(nd.c.windows, w)
		nd.c.openW[nd.idx] = w
	}

	nd.syncClock()
	before := nd.h.M.Clock.Now()
	ci := nd.h.Proc().Run(func() { nd.h.Proc().AS.ReadU64(crashVA) })
	if ci == nil {
		nd.c.fail(fmt.Errorf("cluster: node %d synthetic crash did not register", nd.idx))
		return
	}
	if err := nd.h.HandleFailureForREPL(ci); err != nil {
		nd.c.fail(fmt.Errorf("cluster: node %d recovery: %w", nd.idx, err))
		return
	}
	rec := nd.h.M.Clock.Now() - before
	nd.recoveryTotal += rec
	nd.c.clk.AfterFunc(rec, func() {
		nd.state = stateServing
		nd.startNext()
	})
}

// snapshotRead executes one scheduled concurrent-read batch: commit an MVCC
// snapshot of the node's live state and serve count reads off it at the given
// fan-out. A down node skips the batch (there is no state to freeze); a
// draining node still serves — snapshot reads are exactly the traffic a
// draining replica can keep answering. Apps without snapshot support skip
// silently, so mixed-system schedules stay replayable.
func (nd *node) snapshotRead(count, readers int) {
	if nd.state == stateDown {
		return
	}
	if _, ok := nd.h.App.(recovery.SnapshotServer); !ok {
		return
	}
	if count <= 0 {
		count = 16
	}
	if readers <= 0 {
		readers = 1
	}
	nd.syncClock()
	eff, stale, err := nd.h.SnapshotReadBatch(count, readers)
	if err != nil {
		nd.c.fail(fmt.Errorf("cluster: node %d snapshot read: %w", nd.idx, err))
		return
	}
	nd.snapshotReads++
	nd.snapshotEffective += eff
	nd.snapshotStale += stale
}

// drainStart begins connection draining: the in-flight request finishes, the
// backlog and all new arrivals are refused, and the node stops acking health
// probes so the balancer routes around it.
func (nd *node) drainStart() {
	if nd.state != stateServing {
		return
	}
	nd.state = stateDraining
	for _, env := range nd.queue {
		nd.refused++
		nd.drainRefusals++
		nd.c.net.Send(nd.id, lbID, respEnv{
			Client: env.Client, RID: env.RID, Attempt: env.Attempt,
			Node: nd.idx, Refused: true, Op: env.Req.Op,
		})
	}
	nd.queue = nil
}

func (nd *node) drainEnd() {
	if nd.state != stateDraining {
		return
	}
	nd.state = stateServing
	nd.startNext()
}
