package cluster

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// NodeReport is one replica's accounting for the run.
type NodeReport struct {
	Node               int   `json:"node"`
	Accepted           int   `json:"accepted"`
	Refused            int   `json:"refused"`
	DrainRefusals      int   `json:"drain_refusals"`
	StartedDuringDrain int   `json:"started_during_drain"`
	Kills              int   `json:"kills"`
	ProbeStales        int   `json:"probe_stales"`
	ProbeRecovers      int   `json:"probe_recovers"`
	RecoveryUs         int64 `json:"recovery_us"`
	PhoenixRestarts    int   `json:"phoenix_restarts"`
	OtherRestarts      int   `json:"other_restarts"`
	Checkpoints        int   `json:"checkpoints"`
	SnapshotReads      int   `json:"snapshot_reads"`
	SnapshotEffective  int   `json:"snapshot_effective"`
	SnapshotStale      int   `json:"snapshot_stale"`
	// Counters is the node machine's recovery-counter snapshot; JSON maps
	// marshal with sorted keys, so the export is deterministic.
	Counters map[string]int64 `json:"counters"`
}

// WindowReport is one measured unavailability window: a kill until the first
// effective read the killed node delivered (or the end of the run when it
// never recovered effective service).
type WindowReport struct {
	Node    int   `json:"node"`
	StartUs int64 `json:"start_us"`
	EndUs   int64 `json:"end_us"`
	DurUs   int64 `json:"dur_us"`
	Closed  bool  `json:"closed"`
}

// Report is the availability-under-traffic result of one cluster run. Field
// order is fixed and durations are µs integers, so json.Marshal of equal
// runs yields byte-identical output.
type Report struct {
	System   string `json:"system"`
	Mode     string `json:"mode"`
	Seed     int64  `json:"seed"`
	Replicas int    `json:"replicas"`
	Clients  int    `json:"clients"`

	Requests int `json:"requests"`
	Served   int `json:"served"`
	Retried  int `json:"retried"`
	Stale    int `json:"stale"`
	Failed   int `json:"failed"`
	// AvailabilityPct is effective requests (served + retried) over total.
	AvailabilityPct float64 `json:"availability_pct"`

	P50Us  int64 `json:"p50_us"`
	P99Us  int64 `json:"p99_us"`
	P999Us int64 `json:"p999_us"`

	Kills          int            `json:"kills"`
	UnavailTotalUs int64          `json:"unavail_total_us"`
	Unrecovered    int            `json:"unrecovered"`
	Windows        []WindowReport `json:"windows"`

	DrainRefusals      int `json:"drain_refusals"`
	PartitionResponses int `json:"partition_responses"`

	// Snapshot-read accounting (scheduled concurrent-read batches off MVCC
	// versions). SnapshotStale is an oracle: it must stay zero.
	SnapshotReads     int `json:"snapshot_reads"`
	SnapshotEffective int `json:"snapshot_effective"`
	SnapshotStale     int `json:"snapshot_stale"`

	// ProbeEvents is the size of the balancer's (bounded) probe log at the
	// end of the run; ProbeDropped counts entries the ring compaction
	// discarded, broken down per kind in ProbeDroppedByKind (maps marshal
	// with sorted keys, so the export stays deterministic).
	ProbeEvents        int            `json:"probe_events"`
	ProbeDropped       int            `json:"probe_dropped"`
	ProbeDroppedByKind map[string]int `json:"probe_dropped_by_kind,omitempty"`

	NetSent           int `json:"net_sent"`
	NetDelivered      int `json:"net_delivered"`
	NetDropped        int `json:"net_dropped"`
	NetDuplicated     int `json:"net_duplicated"`
	NetPartitionDrops int `json:"net_partition_drops"`
	NetInjectedDrops  int `json:"net_injected_drops"`

	Nodes []NodeReport `json:"nodes"`
}

// JSON renders the report as deterministic JSON (fixed field order, sorted
// map keys).
func (r Report) JSON() ([]byte, error) { return json.Marshal(r) }

func (r Report) String() string {
	return fmt.Sprintf("%s/%s: avail=%.2f%% (served=%d retried=%d stale=%d failed=%d of %d) p50=%dµs p99=%dµs p999=%dµs kills=%d unavail=%dµs unrecovered=%d",
		r.System, r.Mode, r.AvailabilityPct, r.Served, r.Retried, r.Stale, r.Failed, r.Requests,
		r.P50Us, r.P99Us, r.P999Us, r.Kills, r.UnavailTotalUs, r.Unrecovered)
}

// percentile reads the q-quantile from a sorted latency slice.
func percentile(sorted []time.Duration, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx].Microseconds()
}

func (c *Cluster) report(sched Schedule) Report {
	end := c.cfg.Profile.RunFor + c.cfg.Profile.Settle
	rep := Report{
		System:   c.cfg.System,
		Mode:     c.cfg.Recovery.Mode.String(),
		Seed:     c.cfg.Seed,
		Replicas: c.cfg.Replicas,
		Clients:  len(c.clients),

		Requests: c.totalRequests,
		Served:   c.served,
		Retried:  c.retried,
		Stale:    c.stale,
		Failed:   c.failed,

		Kills:              len(sched.Kills),
		PartitionResponses: c.lb.partitionResponses,
		ProbeEvents:        len(c.lb.events),
		ProbeDropped:       c.lb.droppedEvents,

		NetSent:           c.net.Stat.Sent,
		NetDelivered:      c.net.Stat.Delivered,
		NetDropped:        c.net.Stat.Dropped,
		NetDuplicated:     c.net.Stat.Duplicated,
		NetPartitionDrops: c.net.Stat.PartitionDrops,
		NetInjectedDrops:  c.net.Stat.InjectedDrops,
	}
	if len(c.lb.droppedByKind) > 0 {
		rep.ProbeDroppedByKind = make(map[string]int, len(c.lb.droppedByKind))
		for k, n := range c.lb.droppedByKind {
			rep.ProbeDroppedByKind[string(k)] = n
		}
	}
	if rep.Requests > 0 {
		rep.AvailabilityPct = 100 * float64(rep.Served+rep.Retried) / float64(rep.Requests)
	}

	sort.Slice(c.latencies, func(i, j int) bool { return c.latencies[i] < c.latencies[j] })
	rep.P50Us = percentile(c.latencies, 0.50)
	rep.P99Us = percentile(c.latencies, 0.99)
	rep.P999Us = percentile(c.latencies, 0.999)

	for _, w := range c.windows {
		if !w.closed {
			w.end = end
			rep.Unrecovered++
		}
		wr := WindowReport{
			Node:    w.node,
			StartUs: w.start.Microseconds(),
			EndUs:   w.end.Microseconds(),
			DurUs:   (w.end - w.start).Microseconds(),
			Closed:  w.closed,
		}
		rep.UnavailTotalUs += wr.DurUs
		rep.Windows = append(rep.Windows, wr)
	}

	for _, nd := range c.nodes {
		rep.DrainRefusals += nd.drainRefusals
		rep.SnapshotReads += nd.snapshotReads
		rep.SnapshotEffective += nd.snapshotEffective
		rep.SnapshotStale += nd.snapshotStale
		rep.Nodes = append(rep.Nodes, NodeReport{
			Node:               nd.idx,
			Accepted:           nd.accepted,
			Refused:            nd.refused,
			DrainRefusals:      nd.drainRefusals,
			StartedDuringDrain: nd.startedDuringDrain,
			Kills:              nd.kills,
			ProbeStales:        c.lb.staleCount[nd.idx],
			ProbeRecovers:      c.lb.recoverCount[nd.idx],
			RecoveryUs:         nd.recoveryTotal.Microseconds(),
			PhoenixRestarts:    nd.h.Stat.PhoenixRestarts,
			OtherRestarts:      nd.h.Stat.OtherRestarts,
			Checkpoints:        nd.h.Stat.CheckpointsTaken,
			SnapshotReads:      nd.snapshotReads,
			SnapshotEffective:  nd.snapshotEffective,
			SnapshotStale:      nd.snapshotStale,
			Counters:           nd.h.M.Counters.Snapshot(),
		})
	}
	return rep
}
