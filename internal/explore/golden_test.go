package explore

// Golden-replay determinism tests (unit-level): every campaign the repo
// ships — atomicity, escalation, cluster, and explore — must serialise to
// byte-identical JSON when re-run with the same seed. The CI campaigns catch
// determinism regressions eventually; these tests catch them in `go test`
// with small configurations, and pin the JSON encodings of the campaign
// outcome types (a dropped tag or reordered field shows up as a diff here).

import (
	"bytes"
	"encoding/json"
	"testing"

	"phoenix/internal/apps/registry"
	"phoenix/internal/cluster"
	"phoenix/internal/recovery"
)

// goldenJSON marshals v twice around a re-computation and requires equality.
func mustJSON(t *testing.T, v interface{}) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestGoldenAtomicityCampaign(t *testing.T) {
	mk := registry.Factories(7)["kvstore"]
	run := func() []byte {
		outcomes, err := recovery.CheckAtomicity(mk, recovery.AtomicityConfig{Seed: 7, Warm: 30, Settle: 10})
		if err != nil {
			t.Fatal(err)
		}
		return mustJSON(t, outcomes)
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("atomicity outcomes diverged across same-seed runs:\n%s\n%s", a, b)
	}
}

func TestGoldenEscalationCampaign(t *testing.T) {
	mk := registry.Factories(7)["kvstore"]
	run := func() []byte {
		out, err := recovery.CheckEscalation(mk, recovery.EscalationConfig{Seed: 7, Warm: 30, Settle: 10})
		if err != nil {
			t.Fatal(err)
		}
		return mustJSON(t, out)
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("escalation outcomes diverged across same-seed runs:\n%s\n%s", a, b)
	}
}

func TestGoldenClusterRun(t *testing.T) {
	run := func() []byte {
		mk := registry.Factories(7)["kvstore"]
		prof := registry.ClusterProfile("kvstore", 7)
		cfg := cluster.Config{
			System:   "kvstore",
			Seed:     7,
			Recovery: recovery.Config{Mode: recovery.ModePhoenix, CheckpointInterval: prof.CheckpointInterval},
			Profile:  prof,
		}
		rep, err := cluster.Run(cfg, mk, cluster.DefaultSchedule(prof, 3))
		if err != nil {
			t.Fatal(err)
		}
		j, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("cluster reports diverged across same-seed runs:\n%s\n%s", a, b)
	}
}

// TestGoldenMicrorebootCampaign pins the recovery-granularity campaign (what
// `phxinject -campaign microreboot -json` emits) to byte-identical JSON
// across same-seed runs, and requires the granularity ordering the campaign
// enforces to actually have been measured on at least three applications.
func TestGoldenMicrorebootCampaign(t *testing.T) {
	run := func() []recovery.MicrorebootOutcome {
		outs, err := recovery.CheckMicroreboot(registry.MicrorebootSpecs(7), recovery.MicrorebootConfig{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return outs
	}
	first := run()
	a, b := mustJSON(t, first), mustJSON(t, run())
	if !bytes.Equal(a, b) {
		t.Fatalf("microreboot outcomes diverged across same-seed runs:\n%s\n%s", a, b)
	}
	fullLadder := 0
	for _, o := range first {
		rungs := map[string]bool{}
		for _, w := range o.Windows {
			rungs[w.Granularity] = true
		}
		if rungs["rewind"] && rungs["microreboot"] && rungs["phoenix"] {
			fullLadder++
		}
	}
	if fullLadder < 3 {
		t.Fatalf("only %d app(s) measured the full rewind/microreboot/phoenix ladder, want >= 3", fullLadder)
	}
}

func TestGoldenExploreCampaign(t *testing.T) {
	run := func() []byte {
		sum, err := CheckExplore(Options{Seeds: 6, Start: 1})
		if err != nil {
			t.Fatal(err)
		}
		return mustJSON(t, sum)
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("explore summaries diverged across same-option runs:\n%s\n%s", a, b)
	}
}
