package explore

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"

	"phoenix/internal/analysis"
	"phoenix/internal/analysis/pta"
	"phoenix/internal/ir"
)

// This file implements the vet differential campaign: the phxvet static
// verifier and the IR interpreter's restart audit are run against the same
// application models and must agree. Unlike the explore campaign — where
// oracle violations are results — any static/dynamic disagreement here is a
// campaign FAILURE:
//
//   - a statically-clean model must show zero dynamic dangling observations,
//     dangling-access faults, and preserved-checksum mismatches across the
//     whole seed sweep;
//   - every seeded dangling-store mutant must be flagged statically (kind
//     dangling-reference, at exactly the planted store's position) AND
//     manifest dynamically in a fixed small sweep;
//   - every seeded cross-domain mutant must be flagged statically (kind
//     cross-domain-store, at exactly the planted position). These mutants
//     target scalar counters, so no dynamic manifestation is required — the
//     sweep only asserts the mutant module still executes without error;
//   - every seeded rewind-escape mutant must be flagged statically (kind
//     rewind-escape, at exactly the planted alloc's position) AND manifest
//     dynamically: the drivers bracket a deterministic subset of calls in
//     rewind domains, and DomainDiscard's escape audit must catch the
//     published pointer. Clean models must show zero escapes over the whole
//     sweep.

// VetOptions parameterises CheckVet.
type VetOptions struct {
	// Seeds is how many consecutive seeds to sweep per model (default 200).
	Seeds int
	// Start is the first seed (default 1).
	Start int64
	// Model restricts the campaign to one application model ("" = all).
	Model string
	// Log, when non-nil, receives per-model progress lines.
	Log io.Writer
}

// mutantSeeds is the fixed sweep width of the mutant phase: enough runs for
// every registered mutant to manifest, small enough to keep the phase cheap.
const mutantSeeds = 8

// VetMutantResult records the two halves of one planted bug's contract.
type VetMutantResult struct {
	Fn       string `json:"fn"`
	NthStore int    `json:"nth_store"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	// Flagged: the verifier reported kind dangling-reference at exactly
	// (Fn, Line, Col) on the mutant module.
	Flagged bool `json:"flagged"`
	// Dynamic: total dynamic violations the mutant produced over the sweep.
	Dynamic int `json:"dynamic"`
}

// VetCrossMutantResult records one planted cross-domain write's contract:
// the verifier must flag it (kind cross-domain-store) at exactly the anchor
// position returned by ir.InsertCrossDomainStore.
type VetCrossMutantResult struct {
	Fn      string `json:"fn"`
	Global  string `json:"global"`
	Off     int64  `json:"off"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Flagged bool   `json:"flagged"`
	// Dynamic: violations observed over the sweep. Informational — counter
	// scribbles show up as checksum perturbations only when a restart lands
	// between the scribble and the next legitimate overwrite.
	Dynamic int `json:"dynamic"`
}

// VetRewindMutantResult records one planted rewind-escape's contract: the
// verifier must flag it (kind rewind-escape) at exactly the anchor position
// returned by ir.InsertRewindEscape, and the domain-bracketed sweep must
// observe at least one dynamic escape.
type VetRewindMutantResult struct {
	Fn       string `json:"fn"`
	NthAlloc int    `json:"nth_alloc"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Flagged  bool   `json:"flagged"`
	// Dynamic: DomainDiscard escape-audit records over the sweep.
	Dynamic int `json:"dynamic"`
}

// VetModelResult is one model's differential outcome.
type VetModelResult struct {
	Model    string         `json:"model"`
	Entries  []string       `json:"entries"`
	Findings map[string]int `json:"findings,omitempty"`
	Clean    bool           `json:"clean"`
	Seeds    int            `json:"seeds"`
	Calls    int            `json:"calls"`
	Restarts int            `json:"restarts"`
	// Dangling counts restart-audit observations plus post-restart access
	// faults on the unmutated model (agreement requires 0 when Clean).
	Dangling int `json:"dangling"`
	// ChecksumMismatches counts preserved-checksum changes across restarts.
	ChecksumMismatches int `json:"checksum_mismatches"`
	// RewindEscapes counts DomainDiscard escape-audit records on the
	// unmutated model (agreement requires 0 when Clean).
	RewindEscapes int                     `json:"rewind_escapes"`
	Mutants       []VetMutantResult       `json:"mutants"`
	CrossMutants  []VetCrossMutantResult  `json:"cross_mutants"`
	RewindMutants []VetRewindMutantResult `json:"rewind_mutants"`
	Agreement     bool                    `json:"agreement"`
}

// VetSummary is the campaign's deterministic JSON report.
type VetSummary struct {
	Start     int64            `json:"start"`
	Seeds     int              `json:"seeds"`
	Model     string           `json:"model,omitempty"`
	Models    []VetModelResult `json:"models"`
	Agreement bool             `json:"agreement"`
}

// vetDrive runs one randomized serving schedule against a fresh interpreter:
// setup, then ops serving calls with 1–3 restarts at random op indices and a
// final restart, counting dynamic violations. Roughly a quarter of the calls
// are bracketed in a rewind domain, half of those discarded — exercising the
// sub-process rewind rung and its escape audit alongside whole-process
// restarts. Everything derives from the seeded rng, so the same (model, seed)
// pair replays identically.
func vetDrive(app analysis.IRApp, m *ir.Module, seed int64) (calls, restarts, dangling, checksumBad, escapes int, err error) {
	h := fnv.New64a()
	h.Write([]byte(app.Name))
	rng := rand.New(rand.NewSource(mix(seed ^ int64(h.Sum64()))))

	in := ir.NewInterp(m)
	if _, err = in.Call(app.Setup); err != nil {
		return 0, 0, 0, 0, 0, fmt.Errorf("setup: %w", err)
	}
	ops := 20 + rng.Intn(40)
	restartAt := map[int]bool{}
	for n := 1 + rng.Intn(3); n > 0; n-- {
		restartAt[rng.Intn(ops)] = true
	}
	restart := func() {
		before := in.PreservedChecksum()
		dangling += len(in.PreserveRestart())
		if in.PreservedChecksum() != before {
			checksumBad++
		}
		restarts++
	}
	for i := 0; i < ops; i++ {
		c := app.Calls[rng.Intn(len(app.Calls))]
		args := make([]int64, c.NArgs)
		for j := range args {
			args[j] = rng.Int63n(c.ArgMax)
		}
		// Draw the domain decisions unconditionally so the rng stream — and
		// therefore the schedule — is identical across clean and mutant runs.
		inDomain := rng.Intn(4) == 0
		discard := rng.Intn(2) == 0
		if inDomain {
			if derr := in.DomainBegin(); derr != nil {
				return calls, restarts, dangling, checksumBad, escapes, derr
			}
		}
		if _, cerr := in.Call(c.Fn, args...); cerr != nil {
			var de *ir.ErrDangling
			if !errors.As(cerr, &de) {
				return calls, restarts, dangling, checksumBad, escapes,
					fmt.Errorf("%s%v: %w", c.Fn, args, cerr)
			}
			dangling++ // access through a dangling pointer
		}
		if inDomain {
			if discard {
				esc, derr := in.DomainDiscard()
				if derr != nil {
					return calls, restarts, dangling, checksumBad, escapes, derr
				}
				escapes += len(esc)
			} else if derr := in.DomainCommit(); derr != nil {
				return calls, restarts, dangling, checksumBad, escapes, derr
			}
		}
		calls++
		if restartAt[i] {
			restart()
		}
	}
	restart()
	return calls, restarts, dangling, checksumBad, escapes, nil
}

// CheckVet runs the differential campaign and returns the summary plus the
// first campaign failure. Infrastructure errors and static/dynamic
// disagreements both fail the campaign; the summary is valid either way.
func CheckVet(o VetOptions) (VetSummary, error) {
	if o.Seeds <= 0 {
		o.Seeds = 200
	}
	if o.Start == 0 {
		o.Start = 1
	}
	sum := VetSummary{Start: o.Start, Seeds: o.Seeds, Model: o.Model, Agreement: true, Models: []VetModelResult{}}
	logf := func(format string, args ...interface{}) {
		if o.Log != nil {
			fmt.Fprintf(o.Log, format+"\n", args...)
		}
	}
	var firstErr error
	fail := func(err error) {
		sum.Agreement = false
		if firstErr == nil {
			firstErr = err
		}
	}
	for _, app := range analysis.IRApps() {
		if o.Model != "" && app.Name != o.Model {
			continue
		}
		m, err := ir.Parse(app.Src)
		if err != nil {
			return sum, fmt.Errorf("model %s: %w", app.Name, err)
		}
		if _, err := m.Validate(); err != nil {
			return sum, fmt.Errorf("model %s: %w", app.Name, err)
		}
		rep, err := pta.Vet(m, app.Entries)
		if err != nil {
			return sum, fmt.Errorf("model %s: vet: %w", app.Name, err)
		}
		res := VetModelResult{
			Model:         app.Name,
			Entries:       rep.Entries,
			Findings:      rep.Counts(),
			Clean:         rep.Clean(),
			Seeds:         o.Seeds,
			Mutants:       []VetMutantResult{},
			CrossMutants:  []VetCrossMutantResult{},
			RewindMutants: []VetRewindMutantResult{},
		}
		for i := 0; i < o.Seeds; i++ {
			calls, restarts, dangling, checksumBad, escapes, err := vetDrive(app, m, o.Start+int64(i))
			if err != nil {
				return sum, fmt.Errorf("model %s seed %d: %w", app.Name, o.Start+int64(i), err)
			}
			res.Calls += calls
			res.Restarts += restarts
			res.Dangling += dangling
			res.ChecksumMismatches += checksumBad
			res.RewindEscapes += escapes
		}
		res.Agreement = true
		if res.Clean && (res.Dangling > 0 || res.ChecksumMismatches > 0 || res.RewindEscapes > 0) {
			res.Agreement = false
			fail(fmt.Errorf("model %s: statically clean but %d dangling + %d checksum + %d rewind-escape violations dynamically",
				app.Name, res.Dangling, res.ChecksumMismatches, res.RewindEscapes))
		}
		if !res.Clean {
			res.Agreement = false
			fail(fmt.Errorf("model %s: shipped model is not statically clean", app.Name))
		}

		for _, mu := range app.Mutants {
			ref, err := ir.FindStore(m, mu.Fn, mu.NthStore)
			if err != nil {
				return sum, fmt.Errorf("model %s mutant: %w", app.Name, err)
			}
			mut, pos, err := ir.InsertDanglingStore(m, mu.Fn, ref)
			if err != nil {
				return sum, fmt.Errorf("model %s mutant: %w", app.Name, err)
			}
			mres := VetMutantResult{Fn: mu.Fn, NthStore: mu.NthStore, Line: pos.Line, Col: pos.Col}
			mrep, err := pta.Vet(mut, app.Entries)
			if err != nil {
				return sum, fmt.Errorf("model %s mutant vet: %w", app.Name, err)
			}
			for _, f := range mrep.Findings {
				if f.Kind == pta.KindDangling && f.Fn == mu.Fn && f.Line == pos.Line && f.Col == pos.Col {
					mres.Flagged = true
				}
			}
			for i := 0; i < mutantSeeds; i++ {
				_, _, dangling, checksumBad, _, err := vetDrive(app, mut, o.Start+int64(i))
				if err != nil {
					return sum, fmt.Errorf("model %s mutant seed %d: %w", app.Name, o.Start+int64(i), err)
				}
				mres.Dynamic += dangling + checksumBad
			}
			if !mres.Flagged {
				res.Agreement = false
				fail(fmt.Errorf("model %s: mutant %s#%d not flagged statically at %s",
					app.Name, mu.Fn, mu.NthStore, pos))
			}
			if mres.Dynamic == 0 {
				res.Agreement = false
				fail(fmt.Errorf("model %s: mutant %s#%d flagged statically but never manifested dynamically",
					app.Name, mu.Fn, mu.NthStore))
			}
			res.Mutants = append(res.Mutants, mres)
		}

		for _, cm := range app.CrossMutants {
			mut, pos, err := ir.InsertCrossDomainStore(m, cm.Fn, cm.Global, cm.Off)
			if err != nil {
				return sum, fmt.Errorf("model %s cross mutant: %w", app.Name, err)
			}
			cres := VetCrossMutantResult{Fn: cm.Fn, Global: cm.Global, Off: cm.Off, Line: pos.Line, Col: pos.Col}
			mrep, err := pta.Vet(mut, app.Entries)
			if err != nil {
				return sum, fmt.Errorf("model %s cross mutant vet: %w", app.Name, err)
			}
			for _, f := range mrep.Findings {
				if f.Kind == pta.KindCrossDomain && f.Fn == cm.Fn && f.Line == pos.Line && f.Col == pos.Col {
					cres.Flagged = true
				}
			}
			for i := 0; i < mutantSeeds; i++ {
				_, _, dangling, checksumBad, _, err := vetDrive(app, mut, o.Start+int64(i))
				if err != nil {
					return sum, fmt.Errorf("model %s cross mutant seed %d: %w", app.Name, o.Start+int64(i), err)
				}
				cres.Dynamic += dangling + checksumBad
			}
			if !cres.Flagged {
				res.Agreement = false
				fail(fmt.Errorf("model %s: cross mutant %s->%s+%d not flagged statically at %s",
					app.Name, cm.Fn, cm.Global, cm.Off, pos))
			}
			res.CrossMutants = append(res.CrossMutants, cres)
		}

		for _, rm := range app.RewindMutants {
			ref, err := ir.FindAlloc(m, rm.Fn, rm.NthAlloc)
			if err != nil {
				return sum, fmt.Errorf("model %s rewind mutant: %w", app.Name, err)
			}
			mut, pos, err := ir.InsertRewindEscape(m, rm.Fn, ref)
			if err != nil {
				return sum, fmt.Errorf("model %s rewind mutant: %w", app.Name, err)
			}
			rres := VetRewindMutantResult{Fn: rm.Fn, NthAlloc: rm.NthAlloc, Line: pos.Line, Col: pos.Col}
			mrep, err := pta.Vet(mut, app.Entries)
			if err != nil {
				return sum, fmt.Errorf("model %s rewind mutant vet: %w", app.Name, err)
			}
			for _, f := range mrep.Findings {
				if f.Kind == pta.KindRewindEscape && f.Fn == rm.Fn && f.Line == pos.Line && f.Col == pos.Col {
					rres.Flagged = true
				}
			}
			for i := 0; i < mutantSeeds; i++ {
				_, _, _, _, escapes, err := vetDrive(app, mut, o.Start+int64(i))
				if err != nil {
					return sum, fmt.Errorf("model %s rewind mutant seed %d: %w", app.Name, o.Start+int64(i), err)
				}
				rres.Dynamic += escapes
			}
			if !rres.Flagged {
				res.Agreement = false
				fail(fmt.Errorf("model %s: rewind mutant %s#%d not flagged statically at %s",
					app.Name, rm.Fn, rm.NthAlloc, pos))
			}
			if rres.Dynamic == 0 {
				res.Agreement = false
				fail(fmt.Errorf("model %s: rewind mutant %s#%d flagged statically but never escaped dynamically",
					app.Name, rm.Fn, rm.NthAlloc))
			}
			res.RewindMutants = append(res.RewindMutants, rres)
		}
		if res.Agreement {
			logf("model %-10s clean=%v %6d calls %5d restarts, %d mutant(s) + %d cross + %d rewind agree",
				res.Model, res.Clean, res.Calls, res.Restarts, len(res.Mutants), len(res.CrossMutants), len(res.RewindMutants))
		} else {
			logf("model %-10s DISAGREEMENT clean=%v dangling=%d checksum=%d escapes=%d",
				res.Model, res.Clean, res.Dangling, res.ChecksumMismatches, res.RewindEscapes)
		}
		sum.Models = append(sum.Models, res)
	}
	if o.Model != "" && len(sum.Models) == 0 {
		return sum, fmt.Errorf("vet: unknown model %q", o.Model)
	}
	return sum, firstErr
}

// FmtVetSummary renders the campaign result for terminal output.
func FmtVetSummary(s VetSummary) string {
	var b []byte
	b = append(b, fmt.Sprintf("vet: %d seeds from %d", s.Seeds, s.Start)...)
	if s.Model != "" {
		b = append(b, fmt.Sprintf(" (model %s)", s.Model)...)
	}
	if s.Agreement {
		b = append(b, ": static/dynamic AGREE\n"...)
	} else {
		b = append(b, ": DISAGREEMENT\n"...)
	}
	for _, m := range s.Models {
		b = append(b, fmt.Sprintf("  %-10s clean=%-5v findings=%v calls=%d restarts=%d dangling=%d checksum_bad=%d escapes=%d\n",
			m.Model, m.Clean, m.Findings, m.Calls, m.Restarts, m.Dangling, m.ChecksumMismatches, m.RewindEscapes)...)
		for _, mu := range m.Mutants {
			b = append(b, fmt.Sprintf("    mutant %s#%d @%d:%d flagged=%v dynamic=%d\n",
				mu.Fn, mu.NthStore, mu.Line, mu.Col, mu.Flagged, mu.Dynamic)...)
		}
		for _, cm := range m.CrossMutants {
			b = append(b, fmt.Sprintf("    cross-mutant %s->%s+%d @%d:%d flagged=%v dynamic=%d\n",
				cm.Fn, cm.Global, cm.Off, cm.Line, cm.Col, cm.Flagged, cm.Dynamic)...)
		}
		for _, rm := range m.RewindMutants {
			b = append(b, fmt.Sprintf("    rewind-mutant %s#%d @%d:%d flagged=%v dynamic=%d\n",
				rm.Fn, rm.NthAlloc, rm.Line, rm.Col, rm.Flagged, rm.Dynamic)...)
		}
	}
	return string(b)
}
