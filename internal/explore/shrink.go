package explore

// This file implements failing-schedule shrinking: given a schedule whose run
// violated some oracles, produce the smallest schedule that still violates at
// least one of the *same* oracles. The reduction is a deterministic
// delta-debugging loop (ddmin-style, at single-event granularity) followed by
// parameter tightening: drop events until 1-minimal, cut the request count to
// the shortest failing prefix, re-enable checksums if the violation survives
// without the degraded configuration, zero arm skips, and halve calm/window
// durations. Every candidate is judged by re-running it, so shrinking is as
// deterministic as Run itself — the same failing schedule always reduces to
// the same minimal schedule.

// shrinkBudget bounds candidate runs per shrink so a pathological schedule
// cannot stall a campaign; at typical schedule sizes (≤ 9 events, ≤ 200
// requests) a shrink uses well under half of it.
const shrinkBudget = 400

type shrinker struct {
	target map[string]bool // oracle names the minimal schedule must still violate
	runs   int
}

// fails reports whether the candidate still violates a targeted oracle.
// Infrastructure errors and exhausted budgets conservatively count as "does
// not fail": the shrink keeps the last known-failing schedule instead.
func (s *shrinker) fails(sch Schedule) bool {
	if s.runs >= shrinkBudget {
		return false
	}
	s.runs++
	out, err := Run(sch)
	if err != nil {
		return false
	}
	for _, v := range out.Violations {
		if s.target[v.Oracle] {
			return true
		}
	}
	return false
}

func cloneSchedule(sch Schedule) Schedule {
	cp := sch
	cp.Events = append([]Event(nil), sch.Events...)
	return cp
}

func withoutEvent(sch Schedule, i int) Schedule {
	cp := sch
	cp.Events = make([]Event, 0, len(sch.Events)-1)
	cp.Events = append(cp.Events, sch.Events[:i]...)
	cp.Events = append(cp.Events, sch.Events[i+1:]...)
	return cp
}

// Shrink reduces a failing schedule to a minimal one and packages it as a
// replayable artifact. vio is the original run's violation list; the result
// is guaranteed to still violate at least one of the same oracles (in the
// worst case it is the input schedule itself).
func Shrink(sch Schedule, vio []Violation) (Artifact, error) {
	s := &shrinker{target: make(map[string]bool)}
	for _, v := range vio {
		s.target[v.Oracle] = true
	}
	cur := cloneSchedule(sch)

	// Phase 1 — event minimization to a 1-minimal set: repeatedly sweep the
	// event list, dropping any single event whose removal keeps the failure,
	// until a full sweep removes nothing.
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur.Events); i++ {
			cand := withoutEvent(cur, i)
			if s.fails(cand) {
				cur = cand
				changed = true
				i--
			}
		}
	}

	// Phase 2 — shortest failing prefix (single mode): binary-search the
	// smallest request count that still fails. Every surviving event must
	// still fire, so the floor is just past the last event index.
	if cur.Mode == "single" {
		floor := 1
		for _, ev := range cur.Events {
			if ev.At+1 > floor {
				floor = ev.At + 1
			}
		}
		lo, hi := floor, cur.Steps // fails at hi; unknown at lo
		for lo < hi {
			mid := lo + (hi-lo)/2
			cand := cloneSchedule(cur)
			cand.Steps = mid
			if s.fails(cand) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		cur.Steps = hi
	}

	// Phase 3 — configuration and parameter tightening.
	if cur.DisableChecksums {
		cand := cloneSchedule(cur)
		cand.DisableChecksums = false
		if s.fails(cand) {
			cur = cand
		}
	}
	for i := range cur.Events {
		if cur.Events[i].Skip > 0 {
			cand := cloneSchedule(cur)
			cand.Events[i].Skip = 0
			if s.fails(cand) {
				cur = cand
			}
		}
		for cur.Events[i].DurUs > 0 {
			cand := cloneSchedule(cur)
			cand.Events[i].DurUs /= 2
			if !s.fails(cand) {
				break
			}
			cur = cand
		}
	}

	// The minimal schedule's own run supplies the expected violations the
	// artifact must reproduce.
	out, err := Run(cur)
	if err != nil {
		return Artifact{}, err
	}
	return Artifact{Version: ArtifactVersion, Schedule: cur, Violations: out.Violations}, nil
}
