package explore

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// ArtifactVersion guards checked-in artifacts against grammar drift: bumping
// it invalidates stored artifacts explicitly instead of letting them decode
// into the wrong shape.
const ArtifactVersion = 1

// Artifact is a self-contained, replayable record of one minimal failing
// schedule: the schedule itself plus the exact violations its run produces.
// Artifacts are what the campaign emits for every shrunk failure and what CI
// checks into testdata — Replay must keep reproducing them byte-for-byte.
type Artifact struct {
	Version    int         `json:"version"`
	Schedule   Schedule    `json:"schedule"`
	Violations []Violation `json:"violations"`
}

// Replay re-runs an artifact's schedule and returns the fresh outcome. The
// caller compares Outcome.Violations against Artifact.Violations; Verify does
// exactly that.
func Replay(a Artifact) (Outcome, error) {
	if a.Version != ArtifactVersion {
		return Outcome{}, fmt.Errorf("explore: artifact version %d, want %d", a.Version, ArtifactVersion)
	}
	return Run(a.Schedule)
}

// Verify replays the artifact and errors unless the reproduced violations are
// byte-identical to the recorded ones.
func Verify(a Artifact) error {
	out, err := Replay(a)
	if err != nil {
		return err
	}
	want, err := json.Marshal(a.Violations)
	if err != nil {
		return err
	}
	got, err := json.Marshal(out.Violations)
	if err != nil {
		return err
	}
	if !bytes.Equal(want, got) {
		return fmt.Errorf("explore: artifact (seed %d, app %s) no longer reproduces:\n  recorded: %s\n  replayed: %s",
			a.Schedule.Seed, a.Schedule.App, want, got)
	}
	return nil
}

// DecodeArtifact parses one stored artifact, rejecting unknown fields so a
// grammar change cannot silently decode stale artifacts into zero values.
func DecodeArtifact(data []byte) (Artifact, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var a Artifact
	if err := dec.Decode(&a); err != nil {
		return Artifact{}, fmt.Errorf("explore: decode artifact: %w", err)
	}
	return a, nil
}
