package explore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// This file implements the explore campaign: sweep N seeds, run every
// generated schedule twice (byte-identical outcomes or the campaign fails),
// shrink every oracle violation to a minimal artifact, and verify the
// artifact replays. Oracle violations are *results* — the sweep reports them
// and ships their artifacts — while determinism failures, irreproducible
// artifacts, and infrastructure errors fail the campaign.

// Options parameterises CheckExplore.
type Options struct {
	// Seeds is how many consecutive seeds to sweep (default 200).
	Seeds int
	// Start is the first seed (default 1).
	Start int64
	// App restricts every schedule to one application ("" explores all).
	App string
	// Log, when non-nil, receives per-seed progress lines.
	Log io.Writer
}

// SeedResult summarises one seed of the sweep. Violating seeds carry their
// violations and the minimal shrunk artifact.
type SeedResult struct {
	Seed       int64       `json:"seed"`
	App        string      `json:"app"`
	Mode       string      `json:"mode"`
	Events     int         `json:"events"`
	Steps      int         `json:"steps,omitempty"`
	Requests   int         `json:"requests"`
	Recoveries int         `json:"recoveries"`
	Violations []Violation `json:"violations,omitempty"`
	Shrunk     *Artifact   `json:"shrunk,omitempty"`
}

// Summary is the campaign's deterministic JSON report.
type Summary struct {
	Start     int64        `json:"start"`
	Seeds     int          `json:"seeds"`
	App       string       `json:"app,omitempty"`
	Violating int          `json:"violating"`
	Results   []SeedResult `json:"results"`
}

// CheckExplore sweeps the seed range and returns the summary plus the first
// campaign failure (never an oracle violation). Every seed is run twice and
// its outcomes must encode byte-identically; every violation is shrunk and
// its artifact verified by replay before it enters the summary.
func CheckExplore(o Options) (Summary, error) {
	if o.Seeds <= 0 {
		o.Seeds = 200
	}
	if o.Start == 0 {
		o.Start = 1
	}
	sum := Summary{Start: o.Start, Seeds: o.Seeds, App: o.App, Results: []SeedResult{}}
	logf := func(format string, args ...interface{}) {
		if o.Log != nil {
			fmt.Fprintf(o.Log, format+"\n", args...)
		}
	}
	for i := 0; i < o.Seeds; i++ {
		seed := o.Start + int64(i)
		sch := Generate(seed, o.App)
		out, err := Run(sch)
		if err != nil {
			return sum, fmt.Errorf("seed %d: %w", seed, err)
		}
		rerun, err := Run(sch)
		if err != nil {
			return sum, fmt.Errorf("seed %d rerun: %w", seed, err)
		}
		j1, err := json.Marshal(out)
		if err != nil {
			return sum, err
		}
		j2, err := json.Marshal(rerun)
		if err != nil {
			return sum, err
		}
		if !bytes.Equal(j1, j2) {
			return sum, fmt.Errorf("seed %d: same-seed reruns diverged:\n%s\n%s", seed, j1, j2)
		}

		res := SeedResult{
			Seed:       seed,
			App:        sch.App,
			Mode:       sch.Mode,
			Events:     len(sch.Events),
			Steps:      sch.Steps,
			Requests:   out.Requests,
			Recoveries: out.Recoveries,
			Violations: out.Violations,
		}
		if len(out.Violations) > 0 {
			art, err := Shrink(sch, out.Violations)
			if err != nil {
				return sum, fmt.Errorf("seed %d: shrink: %w", seed, err)
			}
			if err := Verify(art); err != nil {
				return sum, fmt.Errorf("seed %d: shrunk artifact does not replay: %w", seed, err)
			}
			res.Shrunk = &art
			sum.Violating++
			logf("seed %-6d %-18s %-7s VIOLATION %s (shrunk to %d events, %d steps)",
				seed, sch.App, sch.Mode, out.Violations[0].Oracle, len(art.Schedule.Events), art.Schedule.Steps)
		} else {
			logf("seed %-6d %-18s %-7s ok: %d events, %d recoveries, %d requests",
				seed, sch.App, sch.Mode, len(sch.Events), out.Recoveries, out.Requests)
		}
		sum.Results = append(sum.Results, res)
	}
	return sum, nil
}

// FmtSummary renders the campaign result for terminal output.
func FmtSummary(s Summary) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "explore: %d seeds from %d", s.Seeds, s.Start)
	if s.App != "" {
		fmt.Fprintf(&b, " (app %s)", s.App)
	}
	fmt.Fprintf(&b, ": %d violating\n", s.Violating)
	byOracle := map[string]int{}
	modes := map[string]int{}
	for _, r := range s.Results {
		modes[r.Mode]++
		seen := map[string]bool{}
		for _, v := range r.Violations {
			if !seen[v.Oracle] {
				byOracle[v.Oracle]++
				seen[v.Oracle] = true
			}
		}
	}
	fmt.Fprintf(&b, "  modes: single=%d cluster=%d\n", modes["single"], modes["cluster"])
	for _, name := range []string{"accounting", "ladder", "durability", "component", "cluster"} {
		if n := byOracle[name]; n > 0 {
			fmt.Fprintf(&b, "  oracle %-12s violated by %d seed(s)\n", name, n)
		}
	}
	for _, r := range s.Results {
		if r.Shrunk != nil {
			fmt.Fprintf(&b, "  seed %d (%s/%s): %s — minimal: %d events, %d steps\n",
				r.Seed, r.App, r.Mode, r.Violations[0].Msg, len(r.Shrunk.Schedule.Events), r.Shrunk.Schedule.Steps)
		}
	}
	return b.String()
}
