package explore

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"phoenix/internal/apps/registry"
	"phoenix/internal/cluster"
	"phoenix/internal/faultinject"
	"phoenix/internal/kernel"
	"phoenix/internal/mem"
	"phoenix/internal/netsim"
	"phoenix/internal/recovery"
	"phoenix/internal/shard"
)

// crashVA is the synthetic "kill -9": an address no layout maps (same class
// as the recovery and cluster campaigns use).
const crashVA = mem.VAddr(0x2_0000_0000)

// Violation is one oracle failure, attributed to the oracle that found it.
type Violation struct {
	Oracle string `json:"oracle"`
	Msg    string `json:"msg"`
}

// Outcome is the deterministic result of running one schedule: the schedule
// itself, a compact run summary, and every oracle violation. Equal schedules
// produce byte-identical JSON encodings of equal outcomes.
type Outcome struct {
	Schedule         Schedule    `json:"schedule"`
	Requests         int         `json:"requests"`
	Recoveries       int         `json:"recoveries"`
	CorruptionsFired int         `json:"corruptions_fired"`
	OpFaultsFired    int         `json:"op_faults_fired"`
	FinalLevel       string      `json:"final_level,omitempty"`
	Terminated       string      `json:"terminated,omitempty"`
	Violations       []Violation `json:"violations"`
}

// Run executes one schedule and judges it against the application's oracles.
// The returned error reports infrastructure problems only (an unbootable app,
// a crash that did not register); oracle violations are data, not errors.
func Run(sch Schedule) (Outcome, error) {
	var (
		obs *registry.Observation
		err error
	)
	switch sch.Mode {
	case "cluster":
		obs, err = runCluster(sch)
	case "shard":
		obs, err = runShard(sch)
	case "single":
		obs, err = runSingle(sch)
	default:
		return Outcome{}, fmt.Errorf("explore: unknown schedule mode %q", sch.Mode)
	}
	if err != nil {
		return Outcome{}, err
	}
	out := Outcome{
		Schedule:         sch,
		Requests:         obs.Stats.Requests,
		Recoveries:       len(obs.Recoveries),
		CorruptionsFired: obs.CorruptionsFired,
		OpFaultsFired:    obs.OpFaultsFired,
		FinalLevel:       obs.FinalLevel.String(),
		Terminated:       obs.Terminated,
		Violations:       []Violation{},
	}
	if obs.Cluster != nil {
		out.Requests = obs.Cluster.Requests
		out.Recoveries = obs.Cluster.Kills
		out.FinalLevel = ""
	}
	if obs.Shard != nil {
		out.Requests = obs.Shard.Requests
		out.Recoveries = obs.Shard.Kills
		out.FinalLevel = ""
	}
	oracles := registry.OraclesFor(sch.App, sch.Mode == "cluster")
	if sch.Mode == "shard" {
		oracles = registry.ShardOracles()
	}
	for _, oracle := range oracles {
		for _, msg := range oracle.Check(obs) {
			out.Violations = append(out.Violations, Violation{Oracle: oracle.Name(), Msg: msg})
		}
	}
	return out, nil
}

// runSingle drives one supervised PHOENIX harness through the schedule:
// requests are served in order, and each event fires just before the request
// index it names. Kills go through the real failure-handling path, so the
// run exercises preserve_exec, the fallback taxonomy, and the escalation
// ladder exactly as production recovery would.
func runSingle(sch Schedule) (*registry.Observation, error) {
	mk, ok := registry.Factories(sch.Seed)[sch.App]
	if !ok {
		return nil, fmt.Errorf("explore: unknown app %q", sch.App)
	}
	m := kernel.NewMachine(sch.Seed)
	// Shadow every incremental verification with the full checksum walk: any
	// mismatch the delta protocol would miss shows up as an
	// incremental_audit_divergences count for the accounting oracle.
	m.AuditIncremental = true
	inj := faultinject.New()
	app, gen := mk(inj)
	cfg := recovery.Config{
		Mode:      recovery.ModePhoenix,
		Supervise: true,
		Supervisor: recovery.SupervisorConfig{
			BreakerK:     3,
			Window:       60 * time.Second,
			BackoffBase:  100 * time.Millisecond,
			BackoffMax:   2 * time.Second,
			StablePeriod: 30 * time.Second,
			RetryBudget:  16,
		},
		DisableChecksums:   sch.DisableChecksums,
		CheckpointInterval: 5 * time.Millisecond,
	}
	if sch.Domains {
		cfg.RewindDomains = true
		cfg.Supervisor.Floor = recovery.LevelRewind
	}
	h := recovery.NewHarness(m, cfg, app, gen, inj)
	if err := h.Boot(); err != nil {
		return nil, fmt.Errorf("explore: %s boot: %w", sch.App, err)
	}

	obs := &registry.Observation{
		App:               sch.App,
		Seed:              sch.Seed,
		ChecksumsDisabled: sch.DisableChecksums,
		Floor:             cfg.Supervisor.Floor,
		Domains:           sch.Domains,
	}

	// verifyComponents runs the application's cross-component invariant after
	// a recovery episode. It runs on the offline clock (an oracle must not
	// perturb the timeline) and only on checksummed runs — with verification
	// off, a silently committed bit flip may legitimately corrupt component
	// state, which is the accounting oracle's finding, not a dangling-state
	// bug. A simulated crash *inside* the verifier is itself a violation: the
	// invariant walk dereferenced dangling state.
	verifyComponents := func(where string) {
		ca, ok := app.(recovery.ComponentApp)
		if !ok || sch.DisableChecksums {
			return
		}
		m.Clock.RunOffline(func() {
			var verr error
			ci := h.Proc().Run(func() { verr = ca.VerifyComponents() })
			switch {
			case ci != nil:
				obs.ComponentViolations = append(obs.ComponentViolations,
					fmt.Sprintf("%s: component verification crashed: %s", where, ci.Reason))
			case verr != nil:
				obs.ComponentViolations = append(obs.ComponentViolations,
					fmt.Sprintf("%s: %v", where, verr))
			}
		})
	}
	armed := make(map[string]bool)
	// collect retires one arming: if its fault fired, credit the right
	// ground-truth counter and clear the latch so the site can be re-armed.
	collect := func(site string) {
		if !armed[site] {
			return
		}
		if inj.Fired(site) {
			if site == faultinject.SitePreserveCorrupt {
				obs.CorruptionsFired++
			} else {
				obs.OpFaultsFired++
			}
		}
		inj.Disarm(site)
		delete(armed, site)
	}

	// recordRecovery classifies the stat movement of one episode. A clean
	// preserve is exactly one PHOENIX restart and nothing else; everything
	// else lost in-memory state somewhere.
	recordRecovery := func(atStep int, before recovery.Stats) {
		d := h.Stat
		fallbacks := (d.UnsafeFallbacks - before.UnsafeFallbacks) +
			(d.GraceFallbacks - before.GraceFallbacks) +
			(d.CrossFallbacks - before.CrossFallbacks) +
			(d.RecoveryFaultFallbacks - before.RecoveryFaultFallbacks) +
			(d.IntegrityFallbacks - before.IntegrityFallbacks) +
			(d.OtherRestarts - before.OtherRestarts) +
			(d.BootFailures - before.BootFailures)
		obs.Recoveries = append(obs.Recoveries, registry.RecoveryRecord{
			AtStep:        atStep,
			CleanPreserve: d.PhoenixRestarts-before.PhoenixRestarts == 1 && fallbacks == 0,
			Level:         h.EscalationLevel().String(),
			Fallbacks:     fallbacks,
			Escalated:     d.Escalations > before.Escalations,
			Deescalated:   d.Deescalations > before.Deescalations,
		})
		verifyComponents(fmt.Sprintf("after recovery at step %d", atStep))
	}

	terminal := func(err error) (bool, error) {
		if err == nil {
			return false, nil
		}
		if strings.Contains(err.Error(), "retry budget exhausted") {
			obs.Terminated = err.Error()
			return true, nil
		}
		return false, err
	}

	ei := 0
	done := false
	for i := 0; i < sch.Steps && !done; i++ {
		for ei < len(sch.Events) && sch.Events[ei].At <= i {
			ev := sch.Events[ei]
			ei++
			switch ev.Kind {
			case KindCalm:
				m.Clock.Advance(time.Duration(ev.DurUs) * time.Microsecond)
			case KindArm:
				collect(ev.Site)
				spec, ok := kernel.PreserveSiteSpec(ev.Site)
				if !ok {
					return nil, fmt.Errorf("explore: arm event names unknown site %q", ev.Site)
				}
				inj.ArmAfter(ev.Site, spec.Type, ev.Skip)
				inj.Enable()
				armed[ev.Site] = true
			case KindComponentKill:
				ca, ok := app.(recovery.ComponentApp)
				if !ok {
					return nil, fmt.Errorf("explore: componentkill event but %s declares no components", sch.App)
				}
				ca.ArmComponentCrash(ev.Site)
			case KindDomainFault:
				ba, ok := app.(interface{ ArmBug(string) })
				if !ok {
					return nil, fmt.Errorf("explore: domainfault event but %s has no scripted bugs", sch.App)
				}
				ba.ArmBug(ev.Site)
			case KindKill:
				ci := h.Proc().Run(func() { h.Proc().AS.ReadU64(crashVA) })
				if ci == nil {
					return nil, fmt.Errorf("explore: synthetic crash did not register")
				}
				before := h.Stat
				stop, err := terminal(h.HandleFailureForREPL(ci))
				if err != nil {
					return nil, fmt.Errorf("explore: recovery surfaced a simulator error: %w", err)
				}
				recordRecovery(i, before)
				if stop {
					done = true
				}
			default:
				return nil, fmt.Errorf("explore: event %s invalid in single mode", ev)
			}
			if done {
				break
			}
		}
		if done {
			break
		}
		req := h.Gen.Next()
		before := h.Stat
		ok, eff, err := h.ServeRequest(req)
		if stop, err := terminal(err); err != nil {
			return nil, fmt.Errorf("explore: step %d: %w", i, err)
		} else if stop {
			done = true
		}
		// An organic crash inside the request (e.g. structures corrupted by a
		// silently committed bit flip) recovered in-line; the episode applies
		// to every step after this one.
		if h.Stat.Failures > before.Failures {
			recordRecovery(i+1, before)
		}
		obs.Steps = append(obs.Steps, registry.TraceStep{
			Index: i, Op: req.Op.String(), Key: req.Key, OK: ok, Effective: eff,
		})
	}

	sites := make([]string, 0, len(armed))
	for s := range armed {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	for _, s := range sites {
		collect(s)
	}

	obs.Stats = h.Stat
	obs.Counters = m.Counters.Snapshot()
	obs.FinalLevel = h.EscalationLevel()
	return obs, nil
}

// runCluster replays the schedule against a replicated PHOENIX serving tier:
// kills, drains, and partitions become the cluster fault script, and
// linkfault events arm the shared network injector before traffic opens.
func runCluster(sch Schedule) (*registry.Observation, error) {
	mk, ok := registry.Factories(sch.Seed)[sch.App]
	if !ok {
		return nil, fmt.Errorf("explore: unknown app %q", sch.App)
	}
	prof := registry.ClusterProfile(sch.App, sch.Seed)
	if prof.CheckpointInterval <= 0 {
		// Mirror the cluster campaign: the harness checkpoint cadence follows
		// the profile's (filled) persistence cadence.
		prof.CheckpointInterval = 2 * time.Millisecond
	}
	inj := faultinject.New()
	netsim.RegisterSites(inj)

	var csched cluster.Schedule
	for _, ev := range sch.Events {
		at := time.Duration(ev.AtUs) * time.Microsecond
		dur := time.Duration(ev.DurUs) * time.Microsecond
		switch ev.Kind {
		case KindKill:
			csched.Kills = append(csched.Kills, cluster.Kill{At: at, Node: ev.Node})
		case KindDrain:
			csched.Drains = append(csched.Drains, cluster.Window{From: at, To: at + dur, Node: ev.Node})
		case KindPartition:
			csched.Partitions = append(csched.Partitions, cluster.Window{From: at, To: at + dur, Node: ev.Node})
		case KindSnapshotRead:
			csched.SnapshotReads = append(csched.SnapshotReads, cluster.SnapshotRead{At: at, Node: ev.Node, Readers: ev.Readers})
		case KindLinkFault:
			inj.Disarm(ev.Site)
			inj.ArmAfter(ev.Site, faultinject.OpFailure, ev.Skip)
			inj.Enable()
		default:
			return nil, fmt.Errorf("explore: event %s invalid in cluster mode", ev)
		}
	}

	cfg := cluster.Config{
		System:   sch.App,
		Replicas: sch.Replicas,
		Seed:     sch.Seed,
		Recovery: recovery.Config{Mode: recovery.ModePhoenix, CheckpointInterval: prof.CheckpointInterval},
		Profile:  prof,
		Inj:      inj,
	}
	rep, err := cluster.Run(cfg, mk, csched)
	if err != nil {
		return nil, fmt.Errorf("explore: cluster run: %w", err)
	}
	return &registry.Observation{
		App:     sch.App,
		Seed:    sch.Seed,
		Cluster: &rep,
	}, nil
}

// shardRunFor overrides the shard profile's traffic window for explored
// schedules: long enough that kills, migrations, and ring changes all land
// inside open-loop load, short enough that a 500-seed sweep stays cheap.
// GenerateShard draws its event instants against the same window.
const shardRunFor = 120 * time.Millisecond

// runShard replays the schedule against the sharded serving fabric: kills,
// live shard moves, and ring changes become the fabric's rebalance script,
// and the fabric's own oracles (ownership epochs, acked-write ledger) report
// through the shard observation.
func runShard(sch Schedule) (*registry.Observation, error) {
	mk, ok := registry.Factories(sch.Seed)[sch.App]
	if !ok {
		return nil, fmt.Errorf("explore: unknown app %q", sch.App)
	}
	prof := registry.ShardProfile(sch.App, sch.Seed)
	prof.RunFor = shardRunFor

	var ssched shard.Schedule
	for _, ev := range sch.Events {
		at := time.Duration(ev.AtUs) * time.Microsecond
		switch ev.Kind {
		case KindKill:
			ssched.Kills = append(ssched.Kills, shard.Kill{At: at, Shard: ev.Shard, Replica: ev.Replica})
		case KindShardMove:
			ssched.Moves = append(ssched.Moves, shard.Move{At: at, Shard: ev.Shard, Replica: ev.Replica})
		case KindRingChange:
			ssched.RingChanges = append(ssched.RingChanges, shard.RingChange{At: at, Shard: ev.Shard})
		case KindSnapshotRead:
			ssched.SnapshotReads = append(ssched.SnapshotReads, shard.SnapshotRead{At: at, Shard: ev.Shard, Replica: ev.Replica, Readers: ev.Readers})
		default:
			return nil, fmt.Errorf("explore: event %s invalid in shard mode", ev)
		}
	}

	cfg := shard.Config{
		System:   sch.App,
		Shards:   sch.Shards,
		Replicas: sch.Replicas,
		Spares:   sch.Spares,
		Seed:     sch.Seed,
		Recovery: recovery.Config{Mode: recovery.ModePhoenix, CheckpointInterval: prof.CheckpointInterval},
		Profile:  prof,
	}
	rep, err := shard.Run(cfg, mk, ssched)
	if err != nil {
		return nil, fmt.Errorf("explore: shard run: %w", err)
	}
	return &registry.Observation{
		App:   sch.App,
		Seed:  sch.Seed,
		Shard: &rep,
	}, nil
}
