package explore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"phoenix/internal/faultinject"
)

// TestGenerateDeterministic: the seed → schedule map is pure, and distinct
// seeds actually spread across the search space.
func TestGenerateDeterministic(t *testing.T) {
	modes := map[string]int{}
	apps := map[string]bool{}
	for seed := int64(1); seed <= 40; seed++ {
		a := Generate(seed, "")
		b := Generate(seed, "")
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		if string(ja) != string(jb) {
			t.Fatalf("seed %d: Generate is not pure:\n%s\n%s", seed, ja, jb)
		}
		modes[a.Mode]++
		apps[a.App] = true
		if len(a.Events) == 0 {
			t.Fatalf("seed %d: empty schedule explores nothing", seed)
		}
	}
	if modes["single"] == 0 || modes["cluster"] == 0 {
		t.Fatalf("40 seeds never drew both modes: %v", modes)
	}
	if len(apps) < 3 {
		t.Fatalf("40 seeds drew only %d app(s)", len(apps))
	}
}

// TestGenerateForcedApp: forcing -app restricts the target without changing
// the rest of the schedule shape.
func TestGenerateForcedApp(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		free := Generate(seed, "")
		forced := Generate(seed, "kvstore")
		if forced.App != "kvstore" {
			t.Fatalf("seed %d: forced app not honored: %q", seed, forced.App)
		}
		if free.Mode != forced.Mode || len(free.Events) != len(forced.Events) {
			t.Fatalf("seed %d: forcing the app changed the schedule shape: %v vs %v", seed, free, forced)
		}
	}
}

// TestRunDeterministic: the same schedule runs to byte-identical outcomes in
// both modes.
func TestRunDeterministic(t *testing.T) {
	ran := map[string]bool{}
	for seed := int64(1); seed <= 12 && (!ran["single"] || !ran["cluster"]); seed++ {
		sch := Generate(seed, "")
		if ran[sch.Mode] {
			continue
		}
		ran[sch.Mode] = true
		a, err := Run(sch)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := Run(sch)
		if err != nil {
			t.Fatalf("seed %d rerun: %v", seed, err)
		}
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		if string(ja) != string(jb) {
			t.Fatalf("seed %d (%s): same-schedule reruns diverged:\n%s\n%s", seed, sch.Mode, ja, jb)
		}
		if a.Requests == 0 {
			t.Fatalf("seed %d (%s): run served nothing", seed, sch.Mode)
		}
	}
	if !ran["single"] {
		t.Fatal("no single-mode schedule in the first 12 seeds")
	}
}

// knownViolation is a hand-written schedule that must trip the accounting
// oracle: with integrity verification off, an armed bit flip against the
// preserved frames commits silently, and the oracle's silent-corruption
// predicate (corruptions fired > checksum mismatches) fires.
func knownViolation() Schedule {
	return Schedule{
		Seed:             99,
		App:              "kvstore",
		Mode:             "single",
		Steps:            60,
		DisableChecksums: true,
		Events: []Event{
			{Kind: KindArm, At: 10, Site: faultinject.SitePreserveCorrupt},
			{Kind: KindKill, At: 30},
			{Kind: KindKill, At: 50}, // noise the shrinker must remove
		},
	}
}

// TestKnownViolationDetected: the engine flags the silent-corruption run.
func TestKnownViolationDetected(t *testing.T) {
	out, err := Run(knownViolation())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Violations) == 0 {
		t.Fatal("silent corruption under DisableChecksums was not flagged")
	}
	if out.Violations[0].Oracle != "accounting" {
		t.Fatalf("wrong oracle flagged: %+v", out.Violations)
	}
	if out.CorruptionsFired != 1 {
		t.Fatalf("corruption did not fire exactly once: %+v", out)
	}

	// The identical schedule with checksums on must be caught, not violated:
	// the mismatch aborts the preserve and the accounting stays consistent.
	sch := knownViolation()
	sch.DisableChecksums = false
	out, err = Run(sch)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Violations) != 0 {
		t.Fatalf("checksummed run should uphold every oracle, got %+v", out.Violations)
	}
}

// TestShrinkMinimizes: the shrinker reduces the known violation to its
// 2-event core (the arming and one kill) and tightens the step count to just
// past the kill, and the artifact replays byte-identically.
func TestShrinkMinimizes(t *testing.T) {
	sch := knownViolation()
	out, err := Run(sch)
	if err != nil {
		t.Fatal(err)
	}
	art, err := Shrink(sch, out.Violations)
	if err != nil {
		t.Fatal(err)
	}
	min := art.Schedule
	if len(min.Events) != 2 {
		t.Fatalf("minimal schedule kept %d events, want 2: %+v", len(min.Events), min.Events)
	}
	kinds := map[string]int{}
	var killAt int
	for _, ev := range min.Events {
		kinds[ev.Kind]++
		if ev.Kind == KindKill {
			killAt = ev.At
		}
	}
	if kinds[KindArm] != 1 || kinds[KindKill] != 1 {
		t.Fatalf("minimal schedule is not arm+kill: %+v", min.Events)
	}
	if min.Steps != killAt+1 {
		t.Fatalf("steps %d not tightened to just past the kill at %d", min.Steps, killAt)
	}
	if !min.DisableChecksums {
		t.Fatal("shrinker dropped DisableChecksums, which the violation needs")
	}
	if err := Verify(art); err != nil {
		t.Fatal(err)
	}

	// Shrinking is deterministic: the same failing schedule reduces to the
	// same minimal artifact.
	art2, err := Shrink(sch, out.Violations)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(art)
	j2, _ := json.Marshal(art2)
	if string(j1) != string(j2) {
		t.Fatalf("shrink is nondeterministic:\n%s\n%s", j1, j2)
	}
}

// TestArtifactRoundTrip: encode → decode → verify survives, and version or
// grammar drift is rejected instead of silently tolerated.
func TestArtifactRoundTrip(t *testing.T) {
	out, err := Run(knownViolation())
	if err != nil {
		t.Fatal(err)
	}
	art, err := Shrink(knownViolation(), out.Violations)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(art)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(back); err != nil {
		t.Fatal(err)
	}

	bad := back
	bad.Version = ArtifactVersion + 1
	if _, err := Replay(bad); err == nil {
		t.Fatal("version drift was not rejected")
	}
	if _, err := DecodeArtifact([]byte(`{"version":1,"bogus_field":true}`)); err == nil {
		t.Fatal("unknown artifact field was not rejected")
	}
}

// TestCheckedInArtifactsReproduce guards every stored minimal artifact: if a
// code change stops one from replaying its recorded violations, this test —
// and the CI artifact-reproduction step running it — fails.
func TestCheckedInArtifactsReproduce(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no checked-in artifacts under testdata/ — the reproduction gate guards nothing")
	}
	for _, p := range paths {
		p := p
		t.Run(filepath.Base(p), func(t *testing.T) {
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			art, err := DecodeArtifact(data)
			if err != nil {
				t.Fatal(err)
			}
			if len(art.Violations) == 0 {
				t.Fatal("artifact records no violations")
			}
			if err := Verify(art); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCampaignSmoke: a small sweep completes, reruns byte-identically, and
// every violating seed ships a verified minimal artifact.
func TestCampaignSmoke(t *testing.T) {
	opts := Options{Seeds: 10, Start: 1}
	a, err := CheckExplore(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CheckExplore(opts)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("same-option campaigns diverged:\n%s\n%s", ja, jb)
	}
	if len(a.Results) != 10 {
		t.Fatalf("campaign covered %d seeds, want 10", len(a.Results))
	}
	for _, r := range a.Results {
		if len(r.Violations) > 0 && r.Shrunk == nil {
			t.Fatalf("seed %d violated without a shrunk artifact", r.Seed)
		}
		if r.Shrunk != nil {
			if err := Verify(*r.Shrunk); err != nil {
				t.Fatalf("seed %d: %v", r.Seed, err)
			}
		}
	}
}

// TestIncrementalAuditCampaign sweeps 500 single-mode schedules — kills,
// bit-flip corruption arms, and mid-commit operation faults — with the full
// checksum walk shadowing every incremental verification (runSingle sets
// Machine.AuditIncremental). Soundness claim under test: the delta protocol
// never validates less than the full walk, i.e. zero audit divergences across
// the whole campaign. The aggregate assertions prove the campaign actually
// exercised the machinery rather than vacuously passing.
func TestIncrementalAuditCampaign(t *testing.T) {
	const want = 500
	var ran int
	var reused, verified int64
	var corruptions, opFaults, kills int
	for seed := int64(1); ran < want; seed++ {
		sch := Generate(seed, "")
		if sch.Mode != "single" {
			continue
		}
		obs, err := runSingle(sch)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if d := obs.Counters["incremental_audit_divergences"]; d != 0 {
			t.Errorf("seed %d: incremental verification passed %d commit(s) the full walk failed", seed, d)
		}
		reused += obs.Counters["checksums_reused"]
		verified += obs.Counters["checksums_verified"]
		corruptions += obs.CorruptionsFired
		opFaults += obs.OpFaultsFired
		for _, ev := range sch.Events {
			if ev.Kind == KindKill {
				kills++
			}
		}
		ran++
	}
	// Non-vacuity: the sweep must have reused cached checksums (the audit has
	// something to shadow), fired real bit flips (the adversarial case), and
	// driven mid-commit faults plus plain kills.
	if reused == 0 {
		t.Fatal("campaign never reused a cached checksum: the incremental path was not exercised")
	}
	if verified == 0 {
		t.Fatal("campaign never verified a checksum")
	}
	if corruptions == 0 {
		t.Fatal("campaign fired no preserved-frame corruption")
	}
	if opFaults == 0 {
		t.Fatal("campaign fired no mid-commit operation fault")
	}
	if kills == 0 {
		t.Fatal("campaign scheduled no kills")
	}
	t.Logf("audit campaign: %d runs, %d kills, %d corruptions, %d op faults, %d reused / %d verified checksums, 0 divergences",
		ran, kills, corruptions, opFaults, reused, verified)
}
