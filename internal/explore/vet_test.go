package explore

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestCheckVetAgreement: the shipped models must verify clean and stay
// violation-free dynamically, and every registered mutant must be flagged
// statically at its planted position and manifest dynamically — the
// differential contract, on a sweep small enough for the unit suite.
func TestCheckVetAgreement(t *testing.T) {
	sum, err := CheckVet(VetOptions{Seeds: 12})
	if err != nil {
		t.Fatalf("campaign failed: %v\n%s", err, FmtVetSummary(sum))
	}
	if !sum.Agreement {
		t.Fatalf("summary disagreement without error:\n%s", FmtVetSummary(sum))
	}
	if len(sum.Models) != 5 {
		t.Fatalf("campaign covered %d models, want 5", len(sum.Models))
	}
	for _, m := range sum.Models {
		if !m.Clean || m.Dangling != 0 || m.ChecksumMismatches != 0 {
			t.Fatalf("model %s: clean=%v dangling=%d checksum=%d", m.Model, m.Clean, m.Dangling, m.ChecksumMismatches)
		}
		if m.Calls == 0 || m.Restarts == 0 {
			t.Fatalf("model %s: degenerate drive (%d calls, %d restarts)", m.Model, m.Calls, m.Restarts)
		}
		if len(m.Mutants) == 0 {
			t.Fatalf("model %s: no mutants exercised", m.Model)
		}
		for _, mu := range m.Mutants {
			if !mu.Flagged || mu.Dynamic == 0 {
				t.Fatalf("model %s mutant %s#%d: flagged=%v dynamic=%d",
					m.Model, mu.Fn, mu.NthStore, mu.Flagged, mu.Dynamic)
			}
			if mu.Line == 0 {
				t.Fatalf("model %s mutant %s#%d lacks position", m.Model, mu.Fn, mu.NthStore)
			}
		}
	}
}

// TestCheckVetGolden: the campaign JSON is byte-identical across two runs of
// the same seed range — the same-seed determinism bar the other campaigns
// already meet.
func TestCheckVetGolden(t *testing.T) {
	run := func() []byte {
		sum, err := CheckVet(VetOptions{Seeds: 6, Start: 3})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(sum)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	b1, b2 := run(), run()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("vet campaign not byte-stable:\n%s\n%s", b1, b2)
	}
}

// TestCheckVetModelFilter: restricting to one model sweeps only it, and an
// unknown model is an error.
func TestCheckVetModelFilter(t *testing.T) {
	sum, err := CheckVet(VetOptions{Seeds: 4, Model: "kvstore"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Models) != 1 || sum.Models[0].Model != "kvstore" {
		t.Fatalf("filtered campaign models = %+v", sum.Models)
	}
	if _, err := CheckVet(VetOptions{Seeds: 1, Model: "no-such-model"}); err == nil {
		t.Fatal("unknown model accepted")
	}
}
