package explore

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"phoenix/internal/apps/registry"
)

// TestGenerateShardDeterminism pins the shard generator's purity: the same
// seed maps to the identical schedule, forcing an app changes only the App
// field (the draw is burned either way), and the generator stays inside the
// fabric's bounds.
func TestGenerateShardDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 200; seed++ {
		a, b := GenerateShard(seed, ""), GenerateShard(seed, "")
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: same-seed schedules differ:\n%+v\n%+v", seed, a, b)
		}
		forced := GenerateShard(seed, "lsmdb")
		if forced.App != "lsmdb" {
			t.Fatalf("seed %d: forced app not honoured: %q", seed, forced.App)
		}
		forced.App = a.App
		if !reflect.DeepEqual(a, forced) {
			t.Fatalf("seed %d: forcing the app shifted later draws:\n%+v\n%+v", seed, a, forced)
		}
		if a.Mode != "shard" || a.Shards < 2 || a.Shards > 4 ||
			a.Replicas < 1 || a.Replicas > 2 || a.Spares < 1 || a.Spares > 2 {
			t.Fatalf("seed %d: schedule out of bounds: %+v", seed, a)
		}
		kills, moves := 0, 0
		for _, ev := range a.Events {
			switch ev.Kind {
			case KindKill:
				kills++
			case KindShardMove:
				moves++
			case KindRingChange:
			case KindSnapshotRead:
				if ev.Readers != 1 && ev.Readers != 4 && ev.Readers != 16 {
					t.Fatalf("seed %d: snapshot read fan-out off the ladder: %s", seed, ev)
				}
			default:
				t.Fatalf("seed %d: unexpected kind %q", seed, ev.Kind)
			}
			if ev.Shard >= a.Shards || ev.Replica >= a.Replicas {
				t.Fatalf("seed %d: event targets missing slot: %s", seed, ev)
			}
			if ev.AtUs <= 0 || ev.AtUs >= shardRunFor.Microseconds() {
				t.Fatalf("seed %d: event outside the traffic window: %s", seed, ev)
			}
		}
		if kills == 0 || moves == 0 {
			t.Fatalf("seed %d: schedule missing kills or moves: %+v", seed, a)
		}
	}
}

// TestShardSweep is the live-rebalance safety campaign (acceptance: zero
// lost acked writes and zero non-owner serves across ≥500 random seeds):
// every generated shard schedule — kills, live migrations, and ring changes
// landing mid-traffic on randomly shaped fabrics — must run clean against
// the shard oracles. A seed slice also replays through the public Run
// pipeline and must reproduce its outcome byte-for-byte.
func TestShardSweep(t *testing.T) {
	want := int64(500)
	if testing.Short() {
		want = 40
	}
	var kills, movesDone, ledger, snapReads int
	for seed := int64(1); seed <= want; seed++ {
		sch := GenerateShard(seed, "")
		obs, err := runShard(sch)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, oracle := range registry.ShardOracles() {
			for _, msg := range oracle.Check(obs) {
				t.Errorf("seed %d: oracle %s: %s", seed, oracle.Name(), msg)
			}
		}
		if t.Failed() {
			t.Fatalf("seed %d: schedule %+v\nreport: %s", seed, sch, obs.Shard)
		}
		if obs.Shard.Requests == 0 {
			t.Fatalf("seed %d: shard run served no traffic", seed)
		}
		kills += obs.Shard.Kills
		movesDone += obs.Shard.MovesCompleted
		ledger += obs.Shard.LedgerChecked
		snapReads += obs.Shard.SnapshotReads
		if seed%50 == 1 {
			// Replay through the public pipeline, twice: Run must dispatch
			// shard mode, find no violations, and stay byte-deterministic.
			out, err := Run(sch)
			if err != nil {
				t.Fatalf("seed %d replay: %v", seed, err)
			}
			if len(out.Violations) != 0 {
				t.Fatalf("seed %d replay: violations %+v", seed, out.Violations)
			}
			if out.Requests != obs.Shard.Requests || out.Recoveries != obs.Shard.Kills {
				t.Fatalf("seed %d replay: outcome drifted from observation: %+v", seed, out)
			}
			again, err := Run(sch)
			if err != nil {
				t.Fatalf("seed %d second replay: %v", seed, err)
			}
			ja, _ := json.Marshal(out)
			jb, _ := json.Marshal(again)
			if !bytes.Equal(ja, jb) {
				t.Fatalf("seed %d: replay diverged:\n%s\n%s", seed, ja, jb)
			}
		}
	}
	// Non-vacuity: the sweep must have killed replicas, completed live
	// migrations, and audited acked writes — otherwise the zero-violation
	// result proves nothing.
	if kills == 0 {
		t.Fatal("sweep killed no replica")
	}
	if movesDone == 0 {
		t.Fatal("sweep completed no live migration")
	}
	if ledger == 0 {
		t.Fatal("sweep audited no acked writes")
	}
	if snapReads == 0 {
		t.Fatal("sweep ran no snapshot-read batches")
	}
}
