// Package explore implements deterministic-simulation testing (DST) for the
// PHOENIX recovery stack: from a single int64 seed it generates a random
// fault schedule — preserve-path operation failures, Byzantine bit flips,
// synthetic process kills, supervisor-calming idle periods, and (in cluster
// mode) node kills, balancer drains, network partitions, and link faults —
// runs the schedule against a registry application, and checks the
// per-application invariant oracles (registry.OraclesFor). A violated oracle
// triggers deterministic shrinking to a minimal failing schedule and a
// replayable JSON artifact; Replay reproduces the violation byte-for-byte.
//
// Everything downstream of the seed is deterministic: one seeded RNG
// generates the schedule, the run itself rides the repo's simulated clocks,
// and outcome JSON uses fixed field order, so the campaign can require
// byte-identical double runs of every seed.
package explore

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"phoenix/internal/apps/registry"
	"phoenix/internal/kernel"
	"phoenix/internal/netsim"
)

// Event kinds. Single-harness schedules use arm/kill/calm with At as a
// request index; cluster schedules use kill/drain/partition with AtUs as a
// cluster-clock instant and linkfault as an up-front arming.
const (
	// KindArm arms one preserve-path fault site (Site, Skip) just before
	// request At; the fault strikes the next recovery that reaches the site.
	KindArm = "arm"
	// KindKill crashes the process (single) or one node (cluster).
	KindKill = "kill"
	// KindCalm advances the simulated clock by DurUs before request At, long
	// enough for the supervisor's stable period to de-escalate the ladder.
	KindCalm = "calm"
	// KindDrain and KindPartition open a [AtUs, AtUs+DurUs) window against
	// Node (cluster only).
	KindDrain     = "drain"
	KindPartition = "partition"
	// KindLinkFault arms one netsim.link.* site with Skip (cluster only).
	KindLinkFault = "linkfault"
	// KindComponentKill arms a one-shot crash attributed to the component
	// named by Site, just before request At. The crash fires mid-request —
	// after a small write to the component's state — so it exercises the
	// sub-process rungs: rewind-domain discard and component microreboot.
	KindComponentKill = "componentkill"
	// KindDomainFault arms the application bug named by Site just before
	// request At: a crash mid-request *without* component attribution, which
	// a rewind floor must roll back and the ladder must then escalate past
	// the microreboot rung.
	KindDomainFault = "domainfault"
	// KindShardMove live-migrates replica (Shard, Replica) to a spare at
	// AtUs, and KindRingChange rotates Shard's ring placement (shard mode
	// only). Shard-mode kills reuse KindKill with (Shard, Replica) targets.
	KindShardMove  = "shardmove"
	KindRingChange = "ringchange"
	// KindSnapshotRead runs one concurrent-read batch at AtUs against Node
	// (cluster mode) or (Shard, Replica) (shard mode): the target commits an
	// MVCC snapshot and serves the default batch size off it at Readers
	// fan-out. The stale-snapshot oracle must stay at zero.
	KindSnapshotRead = "snapshotread"
)

// Event is one element of a fault schedule. Field meaning depends on Kind;
// unused fields stay zero so the JSON encoding is compact and stable.
type Event struct {
	Kind  string `json:"kind"`
	At    int    `json:"at,omitempty"`
	AtUs  int64  `json:"at_us,omitempty"`
	Site  string `json:"site,omitempty"`
	Skip  int    `json:"skip,omitempty"`
	Node  int    `json:"node,omitempty"`
	DurUs int64  `json:"dur_us,omitempty"`
	// Shard/Replica target shard-mode kills and moves.
	Shard   int `json:"shard,omitempty"`
	Replica int `json:"replica,omitempty"`
	// Readers is the snapshot-read fan-out (snapshotread only).
	Readers int `json:"readers,omitempty"`
}

func (e Event) String() string {
	switch e.Kind {
	case KindArm:
		return fmt.Sprintf("arm(%s+%d)@%d", e.Site, e.Skip, e.At)
	case KindKill:
		if e.AtUs > 0 {
			return fmt.Sprintf("kill(node%d)@%dµs", e.Node, e.AtUs)
		}
		return fmt.Sprintf("kill@%d", e.At)
	case KindShardMove:
		return fmt.Sprintf("shardmove(%d/%d)@%dµs", e.Shard, e.Replica, e.AtUs)
	case KindRingChange:
		return fmt.Sprintf("ringchange(%d)@%dµs", e.Shard, e.AtUs)
	case KindCalm:
		return fmt.Sprintf("calm(%dµs)@%d", e.DurUs, e.At)
	case KindDrain, KindPartition:
		return fmt.Sprintf("%s(node%d)@[%d,%d)µs", e.Kind, e.Node, e.AtUs, e.AtUs+e.DurUs)
	case KindLinkFault:
		return fmt.Sprintf("linkfault(%s+%d)", e.Site, e.Skip)
	case KindComponentKill:
		return fmt.Sprintf("componentkill(%s)@%d", e.Site, e.At)
	case KindDomainFault:
		return fmt.Sprintf("domainfault(%s)@%d", e.Site, e.At)
	case KindSnapshotRead:
		if e.Shard > 0 || e.Replica > 0 {
			return fmt.Sprintf("snapshotread(%d/%d x%d)@%dµs", e.Shard, e.Replica, e.Readers, e.AtUs)
		}
		return fmt.Sprintf("snapshotread(node%d x%d)@%dµs", e.Node, e.Readers, e.AtUs)
	}
	return e.Kind
}

// Schedule is one generated fault script: the search space element a seed
// maps to and the unit shrinking minimizes. Mode "single" drives one
// recovery.Harness request by request; mode "cluster" replays the events
// against a replicated serving tier.
type Schedule struct {
	Seed int64  `json:"seed"`
	App  string `json:"app"`
	Mode string `json:"mode"`
	// Steps is the single-mode request count.
	Steps int `json:"steps,omitempty"`
	// Replicas is the cluster-mode node count, or the shard-mode replicas
	// per shard.
	Replicas int `json:"replicas,omitempty"`
	// Shards and Spares shape the shard-mode fabric: Shards replica groups
	// plus a warm spare pool migrations draw from.
	Shards int `json:"shards,omitempty"`
	Spares int `json:"spares,omitempty"`
	// DisableChecksums runs the harness with post-commit integrity
	// verification off — the configuration under which an injected bit flip
	// commits silently, which the accounting oracle must flag.
	DisableChecksums bool `json:"disable_checksums,omitempty"`
	// Domains runs the harness with rewind domains on and the supervisor
	// floor at the rewind rung, so recovery climbs rewind → microreboot →
	// process ladder. Old schedules decode with Domains false and behave
	// exactly as before.
	Domains bool    `json:"domains,omitempty"`
	Events  []Event `json:"events"`
}

// kindRank orders same-instant events deterministically: armings land before
// the kill whose recovery they strike; calms settle the supervisor first.
func kindRank(kind string) int {
	switch kind {
	case KindCalm:
		return 0
	case KindArm:
		return 1
	case KindComponentKill:
		return 2
	case KindDomainFault:
		return 3
	case KindLinkFault:
		return 4
	case KindDrain:
		return 5
	case KindPartition:
		return 6
	case KindKill:
		return 7
	case KindShardMove:
		return 8
	case KindRingChange:
		return 9
	case KindSnapshotRead:
		return 10
	}
	return 11
}

func sortEvents(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.AtUs != b.AtUs {
			return a.AtUs < b.AtUs
		}
		if kindRank(a.Kind) != kindRank(b.Kind) {
			return kindRank(a.Kind) < kindRank(b.Kind)
		}
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		if a.Replica != b.Replica {
			return a.Replica < b.Replica
		}
		return a.Skip < b.Skip
	})
}

// componentGraph lists each application's rebootable components, in declared
// order, for the component-kill draw. The table mirrors the apps' own
// ComponentApp declarations (TestComponentGraphMatchesApps keeps them in
// sync); apps without an entry never draw component kills.
var componentGraph = map[string][]string{
	"webcache-varnish": {"lru", "stats"},
	"webcache-squid":   {"lru", "stats"},
	"lsmdb":            {"memtable", "sstreader"},
	"boost":            {"preds", "grads"},
}

// midRequestFaults names, per application, one scripted bug that crashes
// mid-request on temporary state only — safe to fire at any ladder rung. The
// domain-fault draw arms it so schedules exercise partial-request rollback
// (and, for non-rewindable apps, the fall-through past the sub-process
// rungs). kvstore uses R3 (null deref on a request-scoped object), not R1:
// R1's overflow-sized allocation touches a page set large enough that a
// rewind-domain discard costs more than a whole preserve_exec, which is a
// real property of huge-footprint faults but the wrong vector for measuring
// the rewind rung.
var midRequestFaults = map[string]string{
	"kvstore":          "R3",
	"lsmdb":            "L1",
	"boost":            "X1",
	"particle":         "VP1",
	"webcache-varnish": "VA1",
	"webcache-squid":   "S3",
}

// mix is a splitmix64 finalizer: math/rand sources seeded with *adjacent*
// integers emit correlated first draws, which would skew a sweep of seeds
// 1..N toward the same schedule shapes. Scrambling the seed decorrelates
// consecutive campaign seeds while keeping the seed → schedule map pure.
func mix(seed int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Generate maps one seed to one fault schedule. app restricts the choice to
// one registry application ("" draws one at random). The mapping is pure:
// the same (seed, app) pair always yields the identical schedule.
func Generate(seed int64, app string) Schedule {
	rng := rand.New(rand.NewSource(mix(seed)))
	names := registry.Names()
	// Always burn the app draw so forcing an app does not shift every later
	// draw (the -app flag then explores the same schedules, same apps aside).
	pick := names[rng.Intn(len(names))]
	if app == "" {
		app = pick
	}
	if rng.Intn(4) == 0 {
		return generateCluster(rng, seed, app)
	}
	return generateSingle(rng, seed, app)
}

func generateSingle(rng *rand.Rand, seed int64, app string) Schedule {
	sch := Schedule{
		Seed:  seed,
		App:   app,
		Mode:  "single",
		Steps: 60 + rng.Intn(140),
		// Roughly one seed in six runs with integrity verification off: often
		// enough that every sweep keeps the violation → shrink → replay
		// pipeline exercised, rare enough that most seeds search the
		// checksummed configuration.
		DisableChecksums: rng.Intn(6) == 0,
	}
	sites := kernel.PreserveSiteSpecs()

	kills := 1 + rng.Intn(4)
	for i := 0; i < kills; i++ {
		sch.Events = append(sch.Events, Event{Kind: KindKill, At: 5 + rng.Intn(sch.Steps-5)})
	}
	arms := rng.Intn(4)
	for i := 0; i < arms; i++ {
		s := sites[rng.Intn(len(sites))]
		sch.Events = append(sch.Events, Event{
			Kind: KindArm,
			At:   rng.Intn(sch.Steps),
			Site: s.ID,
			Skip: rng.Intn(s.MaxSkip + 1),
		})
	}
	if rng.Intn(2) == 0 {
		sch.Events = append(sch.Events, Event{
			Kind:  KindCalm,
			At:    5 + rng.Intn(sch.Steps-5),
			DurUs: (30*time.Second + time.Duration(rng.Intn(60))*time.Second).Microseconds(),
		})
	}
	// Half the seeds run with rewind domains on (floor at the rewind rung);
	// the other half keep the process-level floor, so both ladder shapes stay
	// under search.
	sch.Domains = rng.Intn(2) == 0
	// Draw counts and positions unconditionally so forcing an app never
	// changes the schedule shape (TestGenerateForcedApp): apps without a
	// component graph spend the same draws on extra mid-request bugs.
	comps := componentGraph[app]
	ckills := rng.Intn(3)
	for i := 0; i < ckills; i++ {
		at := 5 + rng.Intn(sch.Steps-5)
		pick := rng.Intn(2)
		if len(comps) > 0 {
			sch.Events = append(sch.Events, Event{
				Kind: KindComponentKill, At: at, Site: comps[pick%len(comps)],
			})
		} else {
			sch.Events = append(sch.Events, Event{
				Kind: KindDomainFault, At: at, Site: midRequestFaults[app],
			})
		}
	}
	if rng.Intn(3) == 0 {
		sch.Events = append(sch.Events, Event{
			Kind: KindDomainFault,
			At:   5 + rng.Intn(sch.Steps-5),
			Site: midRequestFaults[app],
		})
	}
	sortEvents(sch.Events)
	return sch
}

func generateCluster(rng *rand.Rand, seed int64, app string) Schedule {
	sch := Schedule{Seed: seed, App: app, Mode: "cluster", Replicas: 3}
	runUs := registry.ClusterProfile(app, seed).RunFor.Microseconds()
	if runUs == 0 {
		runUs = (150 * time.Millisecond).Microseconds()
	}
	// At most one kill per node: a second kill on the same node at these time
	// scales lands inside the PHOENIX grace window and only measures the
	// fallback path (mirrors cluster.DefaultSchedule's rationale).
	order := rng.Perm(sch.Replicas)
	kills := 1 + rng.Intn(2)
	for i := 0; i < kills; i++ {
		sch.Events = append(sch.Events, Event{
			Kind: KindKill,
			Node: order[i],
			AtUs: runUs/10 + rng.Int63n(runUs*7/10),
		})
	}
	if rng.Intn(2) == 0 {
		from := runUs/10 + rng.Int63n(runUs/2)
		sch.Events = append(sch.Events, Event{
			Kind:  KindDrain,
			Node:  order[sch.Replicas-1],
			AtUs:  from,
			DurUs: runUs/20 + rng.Int63n(runUs/5),
		})
	}
	if rng.Intn(2) == 0 {
		from := runUs/10 + rng.Int63n(runUs/2)
		sch.Events = append(sch.Events, Event{
			Kind:  KindPartition,
			Node:  order[0],
			AtUs:  from,
			DurUs: runUs/20 + rng.Int63n(runUs/5),
		})
	}
	linkSites := []string{netsim.SiteLinkDrop, netsim.SiteLinkDup, netsim.SiteLinkDelay}
	faults := rng.Intn(3)
	for i := 0; i < faults; i++ {
		sch.Events = append(sch.Events, Event{
			Kind: KindLinkFault,
			Site: linkSites[rng.Intn(len(linkSites))],
			Skip: rng.Intn(200),
		})
	}
	// Snapshot-read draws come last so their addition never shifts the draws
	// above (older seeds keep their kill/drain/partition shapes).
	snaps := rng.Intn(3)
	for i := 0; i < snaps; i++ {
		sch.Events = append(sch.Events, Event{
			Kind:    KindSnapshotRead,
			Node:    rng.Intn(sch.Replicas),
			AtUs:    runUs/10 + rng.Int63n(runUs*7/10),
			Readers: snapshotFanouts[rng.Intn(len(snapshotFanouts))],
		})
	}
	sortEvents(sch.Events)
	return sch
}

// snapshotFanouts are the reader widths the snapshot-read draw picks from —
// the same 1/4/16 ladder the concurrency campaign measures.
var snapshotFanouts = []int{1, 4, 16}

// GenerateShard maps one seed to one shard-mode schedule: replica kills,
// live shard moves, and ring changes landing mid-traffic on a sharded
// fabric. It is a separate entry point rather than a Generate arm because
// Generate's draw sequence is pinned by golden schedule tests; the extra
// mix round keeps its schedules decorrelated from Generate's at the same
// seed. app restricts the draw to one shardable application ("" draws one
// at random). The mapping is pure: same (seed, app), same schedule.
func GenerateShard(seed int64, app string) Schedule {
	rng := rand.New(rand.NewSource(mix(mix(seed))))
	names := registry.ShardNames()
	// Burn the app draw unconditionally, as Generate does, so forcing an app
	// never shifts the later draws.
	pick := names[rng.Intn(len(names))]
	if app == "" {
		app = pick
	}
	sch := Schedule{
		Seed:     seed,
		App:      app,
		Mode:     "shard",
		Shards:   2 + rng.Intn(3),
		Replicas: 1 + rng.Intn(2),
		Spares:   1 + rng.Intn(2),
	}
	runUs := shardRunFor.Microseconds()
	window := func() int64 { return runUs/10 + rng.Int63n(runUs*7/10) }
	kills := 1 + rng.Intn(2)
	for i := 0; i < kills; i++ {
		sch.Events = append(sch.Events, Event{
			Kind:    KindKill,
			Shard:   rng.Intn(sch.Shards),
			Replica: rng.Intn(sch.Replicas),
			AtUs:    window(),
		})
	}
	moves := 1 + rng.Intn(2)
	for i := 0; i < moves; i++ {
		sch.Events = append(sch.Events, Event{
			Kind:    KindShardMove,
			Shard:   rng.Intn(sch.Shards),
			Replica: rng.Intn(sch.Replicas),
			AtUs:    window(),
		})
	}
	if rng.Intn(2) == 0 {
		sch.Events = append(sch.Events, Event{
			Kind:  KindRingChange,
			Shard: rng.Intn(sch.Shards),
			AtUs:  window(),
		})
	}
	// Snapshot-read draws come last (see generateCluster) so older seeds keep
	// their kill/move/ring-change shapes.
	snaps := rng.Intn(3)
	for i := 0; i < snaps; i++ {
		sch.Events = append(sch.Events, Event{
			Kind:    KindSnapshotRead,
			Shard:   rng.Intn(sch.Shards),
			Replica: rng.Intn(sch.Replicas),
			AtUs:    window(),
			Readers: snapshotFanouts[rng.Intn(len(snapshotFanouts))],
		})
	}
	sortEvents(sch.Events)
	return sch
}
