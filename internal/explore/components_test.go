package explore

import (
	"strings"
	"testing"

	"phoenix/internal/apps/registry"
	"phoenix/internal/faultinject"
	"phoenix/internal/recovery"
)

// TestComponentGraphMatchesApps pins the generator's static component table
// to the applications' own ComponentApp declarations: a component renamed or
// added in an app without updating the table would silently stop being
// explored (or generate kills the driver cannot attribute).
func TestComponentGraphMatchesApps(t *testing.T) {
	for _, name := range registry.Names() {
		mk := registry.Factories(1)[name]
		app, _ := mk(faultinject.New())
		ca, ok := app.(recovery.ComponentApp)
		declared, tabled := []string(nil), componentGraph[name]
		if ok {
			for _, c := range ca.Components() {
				declared = append(declared, c.Name)
			}
		}
		if strings.Join(declared, ",") != strings.Join(tabled, ",") {
			t.Errorf("%s: componentGraph table %v != app declaration %v", name, tabled, declared)
		}
	}
}

// TestMidRequestFaultTableArms checks every table entry names an app that
// accepts ArmBug (firing is covered by the campaign runs).
func TestMidRequestFaultTableArms(t *testing.T) {
	for name, bug := range midRequestFaults {
		mk, ok := registry.Factories(1)[name]
		if !ok {
			t.Errorf("midRequestFaults names unknown app %q", name)
			continue
		}
		app, _ := mk(faultinject.New())
		ba, ok := app.(interface{ ArmBug(string) })
		if !ok {
			t.Errorf("%s: no ArmBug method", name)
			continue
		}
		ba.ArmBug(bug)
	}
}

// TestMicrorebootSpecsMatchTables pins the registry's granularity-campaign
// specs to this package's fault tables: both must name the same mid-request
// bug per app, and every spec component must be a node of the component
// graph — otherwise the two campaigns would silently drift apart.
func TestMicrorebootSpecsMatchTables(t *testing.T) {
	specs := registry.MicrorebootSpecs(1)
	if len(specs) != len(registry.Names()) {
		t.Fatalf("specs cover %d apps, registry has %d", len(specs), len(registry.Names()))
	}
	for _, s := range specs {
		if s.Bug != midRequestFaults[s.Name] {
			t.Errorf("%s: spec bug %q != midRequestFaults %q", s.Name, s.Bug, midRequestFaults[s.Name])
		}
		comps := componentGraph[s.Name]
		if (s.Component == "") != (len(comps) == 0) {
			t.Errorf("%s: spec component %q vs component graph %v", s.Name, s.Component, comps)
			continue
		}
		found := s.Component == ""
		for _, c := range comps {
			found = found || c == s.Component
		}
		if !found {
			t.Errorf("%s: spec component %q not in graph %v", s.Name, s.Component, comps)
		}
	}
}

// TestComponentKillSchedulesRecover drives a hand-written schedule with a
// component kill and a mid-request fault at the rewind floor for each
// component-declaring app, and requires a clean outcome: the sub-process
// rungs (or their fall-through to process recovery) must leave no dangling
// component state and no oracle violation.
func TestComponentKillSchedulesRecover(t *testing.T) {
	for app, comps := range componentGraph {
		app, comps := app, comps
		t.Run(app, func(t *testing.T) {
			t.Parallel()
			sch := Schedule{
				Seed:    42,
				App:     app,
				Mode:    "single",
				Steps:   40,
				Domains: true,
			}
			for i, c := range comps {
				sch.Events = append(sch.Events, Event{Kind: KindComponentKill, At: 8 + 6*i, Site: c})
			}
			sch.Events = append(sch.Events,
				Event{Kind: KindDomainFault, At: 25, Site: midRequestFaults[app]},
				Event{Kind: KindKill, At: 32})
			sortEvents(sch.Events)
			out, err := Run(sch)
			if err != nil {
				t.Fatal(err)
			}
			if len(out.Violations) != 0 {
				t.Fatalf("violations: %+v", out.Violations)
			}
			if out.Recoveries < len(comps)+2 {
				t.Fatalf("expected at least %d recoveries, got %d", len(comps)+2, out.Recoveries)
			}
		})
	}
}

// TestDomainsOffComponentKill runs the same component kills without rewind
// domains: the crashes must be recoverable purely by microreboot-or-restart,
// still with zero violations.
func TestDomainsOffComponentKill(t *testing.T) {
	for app, comps := range componentGraph {
		sch := Schedule{Seed: 7, App: app, Mode: "single", Steps: 30}
		for i, c := range comps {
			sch.Events = append(sch.Events, Event{Kind: KindComponentKill, At: 6 + 5*i, Site: c})
		}
		sortEvents(sch.Events)
		out, err := Run(sch)
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if len(out.Violations) != 0 {
			t.Fatalf("%s: violations: %+v", app, out.Violations)
		}
	}
}
