package metrics

import "fmt"

// RecoveryCounters counts preserve_exec lifecycle events machine-wide: how
// many preservation plans were staged (validated against both address
// spaces), how many committed, how many aborted before or during commit, and
// how many driver-level fallbacks a recovery-time fault caused. The kernel
// increments the preserve counters; the recovery driver increments the
// fallback counter. Together they make the crash-atomicity contract
// observable: Staged == Committed + CommitAborts, and every abort must be
// matched by a counted fallback rather than a torn successor.
type RecoveryCounters struct {
	// PreservesStaged counts preserve_exec calls whose transfer plan passed
	// validation (coverage, destination overlap, partial-page geometry).
	PreservesStaged int64
	// PreservesCommitted counts preserve_exec calls that fully committed:
	// every page move and partial copy applied and the image loaded.
	PreservesCommitted int64
	// PreservesAborted counts preserve_exec calls that failed — either at
	// validation (source untouched) or during commit (rolled back).
	PreservesAborted int64
	// RecoveryFaultFallbacks counts driver fallbacks taken because
	// preserve_exec itself failed (as opposed to unsafe-region, grace-window,
	// or cross-check fallbacks).
	RecoveryFaultFallbacks int64
}

// NewRecoveryCounters returns zeroed counters.
func NewRecoveryCounters() *RecoveryCounters { return &RecoveryCounters{} }

// Snapshot exports the counters as a name → value map for reports and tests.
func (c *RecoveryCounters) Snapshot() map[string]int64 {
	return map[string]int64{
		"preserves_staged":         c.PreservesStaged,
		"preserves_committed":      c.PreservesCommitted,
		"preserves_aborted":        c.PreservesAborted,
		"recovery_fault_fallbacks": c.RecoveryFaultFallbacks,
	}
}

func (c *RecoveryCounters) String() string {
	return fmt.Sprintf("staged=%d committed=%d aborted=%d recovery-fault-fallbacks=%d",
		c.PreservesStaged, c.PreservesCommitted, c.PreservesAborted, c.RecoveryFaultFallbacks)
}
