package metrics

import (
	"encoding/json"
	"fmt"
	"sync/atomic"
)

// RecoveryCounters counts recovery-mechanism lifecycle events machine-wide:
// preserve_exec plans staged/committed/aborted, integrity checksums verified
// and caught, driver-level fallbacks by cause, and escalation-ladder
// transitions. The kernel increments the preserve and checksum counters; the
// recovery driver increments the fallback and escalation counters. Together
// they make the supervision contract observable: Staged == Committed +
// CommitAborts, every abort is matched by a counted fallback rather than a
// torn successor, and every checksum mismatch surfaces as an integrity
// fallback instead of a corrupt boot.
//
// All fields are atomic: the harness mutates them on the simulated main
// timeline while background cross-check goroutines may snapshot them
// concurrently, and campaign reporters read them from outside the run.
type RecoveryCounters struct {
	// PreservesStaged counts preserve_exec calls whose transfer plan passed
	// validation (coverage, destination overlap, partial-page geometry).
	PreservesStaged atomic.Int64
	// PreservesCommitted counts preserve_exec calls that fully committed:
	// every page move and partial copy applied, the image loaded, and the
	// integrity checksums verified.
	PreservesCommitted atomic.Int64
	// PreservesAborted counts preserve_exec calls that failed — at
	// validation (source untouched), during commit (rolled back), or at
	// integrity verification (rolled back).
	PreservesAborted atomic.Int64
	// ChecksumsVerified counts per-frame integrity checksums that were
	// staged into the preserve info block and re-verified clean in the new
	// address space.
	ChecksumsVerified atomic.Int64
	// ChecksumMismatches counts integrity verification failures: a preserved
	// frame whose post-commit contents diverged from the stage-time checksum
	// (a bit flip in the preservation channel). Each one aborts the preserve.
	ChecksumMismatches atomic.Int64
	// ChecksumsReused counts per-frame checksums the incremental preserve
	// path reused from the prior verified commit's cache instead of
	// re-hashing, because the page's soft-dirty bit was still clear.
	ChecksumsReused atomic.Int64
	// IncrementalAuditDivergences counts verified commits where the
	// incremental checksum walk passed but the audit-mode full walk found a
	// mismatch — the incremental walk validated less than the full walk
	// would. Any nonzero value is a soundness bug in dirty tracking or the
	// delta-checksum protocol; the exploration oracles flag it.
	IncrementalAuditDivergences atomic.Int64
	// RecoveryFaultFallbacks counts driver fallbacks taken because
	// preserve_exec itself failed operationally (as opposed to
	// unsafe-region, grace-window, cross-check, or integrity fallbacks).
	RecoveryFaultFallbacks atomic.Int64
	// IntegrityFallbacks counts driver fallbacks taken because integrity
	// verification detected corrupted preserved state.
	IntegrityFallbacks atomic.Int64
	// BreakerTrips counts crash-loop breaker activations: the sliding
	// restart-history window exceeded its threshold and the supervisor
	// escalated the recovery mechanism.
	BreakerTrips atomic.Int64
	// Escalations counts downward ladder transitions (PHOENIX → builtin →
	// vanilla); currently every escalation is a breaker trip.
	Escalations atomic.Int64
	// Deescalations counts upward ladder transitions back toward PHOENIX
	// after a stable serving period.
	Deescalations atomic.Int64
	// Rewinds counts faulting requests recovered by discarding their rewind
	// domain in-process — the cheapest rung, below any restart.
	Rewinds atomic.Int64
	// Microreboots counts component-level reboots: one component's transient
	// state discarded and reinitialised (dependents cascading) while the
	// process keeps its address space.
	Microreboots atomic.Int64
	// DomainDiscards counts rewind-domain discards at the kernel layer,
	// whatever triggered them (the rewind rung or a campaign probe). Each one
	// restored the touched pages byte-exactly.
	DomainDiscards atomic.Int64
}

// NewRecoveryCounters returns zeroed counters.
func NewRecoveryCounters() *RecoveryCounters { return &RecoveryCounters{} }

// Snapshot exports the counters as a name → value map for reports and tests.
// It is safe to call concurrently with updates; each value is read
// atomically (the map as a whole is not one consistent cut).
func (c *RecoveryCounters) Snapshot() map[string]int64 {
	return map[string]int64{
		"preserves_staged":              c.PreservesStaged.Load(),
		"preserves_committed":           c.PreservesCommitted.Load(),
		"preserves_aborted":             c.PreservesAborted.Load(),
		"checksums_verified":            c.ChecksumsVerified.Load(),
		"checksum_mismatches":           c.ChecksumMismatches.Load(),
		"checksums_reused":              c.ChecksumsReused.Load(),
		"incremental_audit_divergences": c.IncrementalAuditDivergences.Load(),
		"recovery_fault_fallbacks":      c.RecoveryFaultFallbacks.Load(),
		"integrity_fallbacks":           c.IntegrityFallbacks.Load(),
		"breaker_trips":                 c.BreakerTrips.Load(),
		"escalations":                   c.Escalations.Load(),
		"deescalations":                 c.Deescalations.Load(),
		"rewinds":                       c.Rewinds.Load(),
		"microreboots":                  c.Microreboots.Load(),
		"domain_discards":               c.DomainDiscards.Load(),
	}
}

// MarshalJSON exports the Snapshot map. encoding/json emits map keys in
// sorted order, so the bytes are deterministic for equal counter values —
// two same-seed runs serialise identically.
func (c *RecoveryCounters) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.Snapshot())
}

func (c *RecoveryCounters) String() string {
	return fmt.Sprintf("staged=%d committed=%d aborted=%d checksums=%d/%d-bad recovery-fault-fallbacks=%d integrity-fallbacks=%d breaker-trips=%d esc=%d deesc=%d",
		c.PreservesStaged.Load(), c.PreservesCommitted.Load(), c.PreservesAborted.Load(),
		c.ChecksumsVerified.Load(), c.ChecksumMismatches.Load(),
		c.RecoveryFaultFallbacks.Load(), c.IntegrityFallbacks.Load(),
		c.BreakerTrips.Load(), c.Escalations.Load(), c.Deescalations.Load())
}
