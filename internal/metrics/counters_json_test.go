package metrics

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestCountersMarshalJSONDeterministic pins the JSON export contract: keys
// are emitted sorted, so equal counter values marshal to identical bytes.
func TestCountersMarshalJSONDeterministic(t *testing.T) {
	mk := func() *RecoveryCounters {
		c := NewRecoveryCounters()
		c.PreservesStaged.Store(7)
		c.PreservesCommitted.Store(6)
		c.PreservesAborted.Store(1)
		c.ChecksumMismatches.Store(1)
		c.Escalations.Store(2)
		return c
	}
	a, err := json.Marshal(mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(mk())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("non-deterministic JSON:\n%s\n%s", a, b)
	}

	// Round-trip: the bytes decode back to the snapshot values.
	var got map[string]int64
	if err := json.Unmarshal(a, &got); err != nil {
		t.Fatal(err)
	}
	want := mk().Snapshot()
	if len(got) != len(want) {
		t.Fatalf("field count %d != %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %s: got %d want %d", k, got[k], v)
		}
	}

	// Sorted-key check: the raw bytes must list keys in sorted order.
	keys := make([]string, 0, len(want))
	dec := json.NewDecoder(bytes.NewReader(a))
	if _, err := dec.Token(); err != nil { // opening brace
		t.Fatal(err)
	}
	for dec.More() {
		tok, err := dec.Token()
		if err != nil {
			t.Fatal(err)
		}
		if k, ok := tok.(string); ok {
			keys = append(keys, k)
		}
		if _, err := dec.Token(); err != nil { // value
			t.Fatal(err)
		}
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys not sorted: %q before %q", keys[i-1], keys[i])
		}
	}
}
