package metrics

import (
	"sync"
	"testing"
)

// TestRecoveryCountersConcurrent hammers the counters the way a real run
// does: one set of goroutines plays the harness/kernel (incrementing on the
// simulated main timeline), another plays background cross-check reporters
// (snapshotting and stringifying concurrently). Run under -race — the CI test
// step does — this pins the counters' concurrency contract.
func TestRecoveryCountersConcurrent(t *testing.T) {
	c := NewRecoveryCounters()
	const writers, perWriter = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.PreservesStaged.Add(1)
				c.PreservesCommitted.Add(1)
				c.ChecksumsVerified.Add(3)
				c.IntegrityFallbacks.Add(1)
			}
		}()
	}
	// Cross-check-style readers run during the writes.
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					snap := c.Snapshot()
					if snap["preserves_committed"] > snap["preserves_staged"] {
						t.Error("committed overtook staged")
						return
					}
					_ = c.String()
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()

	want := int64(writers * perWriter)
	snap := c.Snapshot()
	if snap["preserves_staged"] != want || snap["preserves_committed"] != want ||
		snap["checksums_verified"] != 3*want || snap["integrity_fallbacks"] != want {
		t.Fatalf("lost updates: %s", c)
	}
}
