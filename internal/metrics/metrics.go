// Package metrics collects simulated-time service timelines and computes the
// three availability metrics of Figure 10: downtime, relative effective
// availability at the fifth second after restart, and time to restore 90% of
// pre-failure effective availability.
package metrics

import (
	"fmt"
	"time"
)

// Timeline accumulates per-bucket service counters over simulated time.
type Timeline struct {
	// Bucket is the histogram resolution.
	Bucket time.Duration

	// ok[i] counts successful operations in bucket i; attempts[i] all
	// attempted operations; good[i] counts "effective" successes (cache
	// hits, successful reads) per the paper's effective-availability metric.
	ok       []int64
	attempts []int64
	good     []int64

	// Failure/recovery markers.
	failureAt time.Duration
	resumedAt time.Duration
	hasFail   bool
	hasResume bool
}

// NewTimeline creates a timeline with the given bucket width.
func NewTimeline(bucket time.Duration) *Timeline {
	if bucket <= 0 {
		bucket = 250 * time.Millisecond
	}
	return &Timeline{Bucket: bucket}
}

func (t *Timeline) bucketOf(at time.Duration) int { return int(at / t.Bucket) }

func (t *Timeline) ensure(i int) {
	for len(t.ok) <= i {
		t.ok = append(t.ok, 0)
		t.attempts = append(t.attempts, 0)
		t.good = append(t.good, 0)
	}
}

// Record notes one operation at simulated time at. ok means the request was
// answered; effective means it counts toward effective availability (e.g. a
// cache hit or successful read). Effective implies ok.
func (t *Timeline) Record(at time.Duration, ok, effective bool) {
	i := t.bucketOf(at)
	t.ensure(i)
	t.attempts[i]++
	if ok {
		t.ok[i]++
	}
	if effective {
		t.good[i]++
	}
}

// RecordWork notes units of computational progress (batch apps): units of
// work count as both ok and effective.
func (t *Timeline) RecordWork(at time.Duration, units int64) {
	i := t.bucketOf(at)
	t.ensure(i)
	t.attempts[i] += units
	t.ok[i] += units
	t.good[i] += units
}

// MarkFailure records the instant the fault manifested (service stopped).
func (t *Timeline) MarkFailure(at time.Duration) {
	if !t.hasFail {
		t.failureAt, t.hasFail = at, true
	}
}

// MarkResumed records the first successful post-recovery response.
func (t *Timeline) MarkResumed(at time.Duration) {
	if t.hasFail && !t.hasResume {
		t.resumedAt, t.hasResume = at, true
	}
}

// FailureAt returns the failure instant (and whether one was marked).
func (t *Timeline) FailureAt() (time.Duration, bool) { return t.failureAt, t.hasFail }

// ResumedAt returns the service-resumption instant.
func (t *Timeline) ResumedAt() (time.Duration, bool) { return t.resumedAt, t.hasResume }

// Downtime returns the total time the system could not serve any request:
// from failure to first successful post-recovery response (§4.3.3 metric 1).
func (t *Timeline) Downtime() time.Duration {
	if !t.hasFail {
		return 0
	}
	if !t.hasResume {
		// Never resumed within the observation window.
		return time.Duration(len(t.ok))*t.Bucket - t.failureAt
	}
	return t.resumedAt - t.failureAt
}

// rate returns effective successes per second over [from, to).
func (t *Timeline) rate(from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	lo, hi := t.bucketOf(from), t.bucketOf(to)
	var sum int64
	for i := lo; i < hi && i < len(t.good); i++ {
		sum += t.good[i]
	}
	return float64(sum) / (to - from).Seconds()
}

// SteadyRate returns the pre-failure effective-availability baseline: the
// rate over the two seconds immediately preceding the failure (the paper
// normalizes to availability "before failure"; using the final window keeps
// warm-up out of the baseline).
func (t *Timeline) SteadyRate() float64 {
	end := t.failureAt
	if !t.hasFail {
		end = time.Duration(len(t.good)) * t.Bucket
	}
	start := end - 2*time.Second
	if start < end/2 {
		start = end / 2 // short runs: fall back to the second half
	}
	return t.rate(start, end)
}

// AvailabilityAtFifthSecond returns effective availability during the fifth
// second after service resumption, normalized to the pre-failure baseline
// (§4.3.3 metric 2). Values are clamped to [0, ~].
func (t *Timeline) AvailabilityAtFifthSecond() float64 {
	if !t.hasResume {
		return 0
	}
	base := t.SteadyRate()
	if base == 0 {
		return 0
	}
	from := t.resumedAt + 4*time.Second
	return t.rate(from, from+time.Second) / base
}

// RecoveryTime90 returns the time from service resumption until a one-second
// window first reaches 90% of the pre-failure effective availability
// (§4.3.3 metric 3). The second return is false if 90% was never reached in
// the observation window.
func (t *Timeline) RecoveryTime90() (time.Duration, bool) {
	if !t.hasResume {
		return 0, false
	}
	base := t.SteadyRate()
	if base == 0 {
		return 0, false
	}
	window := time.Second
	end := time.Duration(len(t.good)) * t.Bucket
	for at := t.resumedAt; at+window <= end; at += t.Bucket {
		if t.rate(at, at+window) >= 0.9*base {
			return at - t.resumedAt, true
		}
	}
	return 0, false
}

// Series returns (time, effective-rate) points at bucket granularity, for
// plotting timelines like Figures 1, 11, 12, and 13.
func (t *Timeline) Series() []Point {
	pts := make([]Point, len(t.good))
	for i := range t.good {
		pts[i] = Point{
			T:    time.Duration(i) * t.Bucket,
			Rate: float64(t.good[i]) / t.Bucket.Seconds(),
		}
	}
	return pts
}

// Point is one timeline sample.
type Point struct {
	T    time.Duration
	Rate float64 // effective operations per second
}

// Summary bundles the three Figure-10 metrics.
type Summary struct {
	Downtime    time.Duration
	FifthSecond float64 // relative effective availability at the 5th second
	Recovery90  time.Duration
	Recovered90 bool
}

// Summarize computes the Figure-10 metrics from the timeline.
func (t *Timeline) Summarize() Summary {
	rec90, ok := t.RecoveryTime90()
	return Summary{
		Downtime:    t.Downtime(),
		FifthSecond: t.AvailabilityAtFifthSecond(),
		Recovery90:  rec90,
		Recovered90: ok,
	}
}

// String formats the summary as a table row.
func (s Summary) String() string {
	rec := "never"
	if s.Recovered90 {
		rec = fmt.Sprintf("%.2fs", s.Recovery90.Seconds())
	}
	return fmt.Sprintf("downtime=%.3fs 5s-avail=%.2f 90%%-rec=%s",
		s.Downtime.Seconds(), s.FifthSecond, rec)
}
