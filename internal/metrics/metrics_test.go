package metrics

import (
	"testing"
	"time"
)

// fill records a steady stream of effective ops at `rate` per second over
// [from, to).
func fill(t *Timeline, from, to time.Duration, rate int) {
	step := time.Second / time.Duration(rate)
	for at := from; at < to; at += step {
		t.Record(at, true, true)
	}
}

func TestDowntime(t *testing.T) {
	tl := NewTimeline(100 * time.Millisecond)
	fill(tl, 0, 10*time.Second, 100)
	tl.MarkFailure(10 * time.Second)
	tl.MarkResumed(12 * time.Second)
	fill(tl, 12*time.Second, 20*time.Second, 100)
	if got := tl.Downtime(); got != 2*time.Second {
		t.Fatalf("Downtime = %v", got)
	}
}

func TestDowntimeNeverResumed(t *testing.T) {
	tl := NewTimeline(100 * time.Millisecond)
	fill(tl, 0, 5*time.Second, 100)
	tl.MarkFailure(5 * time.Second)
	// Pad the observation window with failed attempts.
	for at := 5 * time.Second; at < 9*time.Second; at += 100 * time.Millisecond {
		tl.Record(at, false, false)
	}
	if got := tl.Downtime(); got < 3*time.Second {
		t.Fatalf("Downtime without resume = %v", got)
	}
}

func TestNoFailureZeroDowntime(t *testing.T) {
	tl := NewTimeline(0) // default bucket
	fill(tl, 0, time.Second, 10)
	if tl.Downtime() != 0 {
		t.Fatal("downtime without failure")
	}
	if _, ok := tl.FailureAt(); ok {
		t.Fatal("phantom failure")
	}
}

func TestMarkOnlyFirst(t *testing.T) {
	tl := NewTimeline(100 * time.Millisecond)
	tl.MarkFailure(time.Second)
	tl.MarkFailure(2 * time.Second)
	if at, _ := tl.FailureAt(); at != time.Second {
		t.Fatal("second MarkFailure overwrote the first")
	}
	tl.MarkResumed(3 * time.Second)
	tl.MarkResumed(4 * time.Second)
	if at, _ := tl.ResumedAt(); at != 3*time.Second {
		t.Fatal("second MarkResumed overwrote the first")
	}
}

func TestFifthSecondAvailability(t *testing.T) {
	tl := NewTimeline(100 * time.Millisecond)
	fill(tl, 0, 10*time.Second, 100)
	tl.MarkFailure(10 * time.Second)
	tl.MarkResumed(11 * time.Second)
	// Recover at half rate.
	fill(tl, 11*time.Second, 20*time.Second, 50)
	got := tl.AvailabilityAtFifthSecond()
	if got < 0.4 || got > 0.6 {
		t.Fatalf("5th-second availability = %.2f, want ~0.5", got)
	}
}

func TestRecovery90(t *testing.T) {
	tl := NewTimeline(100 * time.Millisecond)
	fill(tl, 0, 10*time.Second, 100)
	tl.MarkFailure(10 * time.Second)
	tl.MarkResumed(11 * time.Second)
	// 3 seconds at 50%, then full rate.
	fill(tl, 11*time.Second, 14*time.Second, 50)
	fill(tl, 14*time.Second, 25*time.Second, 100)
	rec, ok := tl.RecoveryTime90()
	if !ok {
		t.Fatal("90% never reached")
	}
	if rec < 2*time.Second || rec > 4500*time.Millisecond {
		t.Fatalf("RecoveryTime90 = %v, want ~3s", rec)
	}
}

func TestRecovery90Never(t *testing.T) {
	tl := NewTimeline(100 * time.Millisecond)
	fill(tl, 0, 10*time.Second, 100)
	tl.MarkFailure(10 * time.Second)
	tl.MarkResumed(11 * time.Second)
	fill(tl, 11*time.Second, 20*time.Second, 10) // stuck at 10%
	if _, ok := tl.RecoveryTime90(); ok {
		t.Fatal("90% reported despite 10% rate")
	}
	sum := tl.Summarize()
	if sum.Recovered90 {
		t.Fatal("summary claims recovery")
	}
	if sum.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestRecordWork(t *testing.T) {
	tl := NewTimeline(time.Second)
	tl.RecordWork(0, 10)
	tl.RecordWork(500*time.Millisecond, 5)
	pts := tl.Series()
	if len(pts) != 1 || pts[0].Rate != 15 {
		t.Fatalf("Series = %+v", pts)
	}
}

func TestSteadyRateUsesPreFailureWindow(t *testing.T) {
	tl := NewTimeline(100 * time.Millisecond)
	// Slow warm-up then fast steady state.
	fill(tl, 0, 5*time.Second, 10)
	fill(tl, 5*time.Second, 10*time.Second, 100)
	tl.MarkFailure(10 * time.Second)
	rate := tl.SteadyRate()
	if rate < 90 || rate > 110 {
		t.Fatalf("SteadyRate = %.1f, want ~100 (warm-up excluded)", rate)
	}
}

func TestRecoveryCountersSnapshot(t *testing.T) {
	c := NewRecoveryCounters()
	c.PreservesStaged.Store(3)
	c.PreservesCommitted.Store(2)
	c.PreservesAborted.Store(1)
	c.RecoveryFaultFallbacks.Store(1)
	snap := c.Snapshot()
	for name, want := range map[string]int64{
		"preserves_staged":         3,
		"preserves_committed":      2,
		"preserves_aborted":        1,
		"recovery_fault_fallbacks": 1,
	} {
		if snap[name] != want {
			t.Fatalf("%s = %d, want %d", name, snap[name], want)
		}
	}
	if c.String() == "" {
		t.Fatal("empty String()")
	}
}
