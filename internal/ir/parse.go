package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a module from the textual .pir format. Grammar (line based,
// ';' starts a comment):
//
//	global <name>
//	component <name> <member> [<member>...]
//	func <name>(<p1>, <p2>, ...) {
//	<label>:
//	  x = const N
//	  x = add|sub|mul|lt|eq a, b
//	  x = alloc N
//	  x = talloc N
//	  x = load p, off
//	  store p, off, v
//	  x = field p, off
//	  [x =] call f(a, b)
//	  br label
//	  cbr cond, l1, l2
//	  ret [v]
//	  unsafe_enter / unsafe_exit
//	}
func Parse(src string) (*Module, error) {
	m := NewModule()
	var cur *Func
	var curBlock *Block

	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := raw
		if i := strings.Index(line, ";"); i >= 0 {
			line = line[:i]
		}
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		// Column of the first non-blank byte (1-based), for instruction
		// positions and parse errors.
		col := strings.Index(line, trimmed) + 1
		line = trimmed
		fail := func(format string, args ...interface{}) error {
			return fmt.Errorf("ir: line %d:%d: %s", ln+1, col, fmt.Sprintf(format, args...))
		}
		switch {
		case strings.HasPrefix(line, "global "):
			if cur != nil {
				return nil, fail("global inside function")
			}
			m.Globals = append(m.Globals, strings.TrimSpace(strings.TrimPrefix(line, "global ")))
		case strings.HasPrefix(line, "component "):
			if cur != nil {
				return nil, fail("component inside function")
			}
			fields := strings.Fields(strings.TrimPrefix(line, "component "))
			if len(fields) < 2 {
				return nil, fail("component wants a name and at least one member")
			}
			m.Components = append(m.Components, ComponentDecl{Name: fields[0], Members: fields[1:]})
		case strings.HasPrefix(line, "func "):
			if cur != nil {
				return nil, fail("nested func")
			}
			rest := strings.TrimPrefix(line, "func ")
			open := strings.Index(rest, "(")
			close_ := strings.Index(rest, ")")
			if open < 0 || close_ < open || !strings.HasSuffix(rest, "{") {
				return nil, fail("malformed func header %q", line)
			}
			f := &Func{Name: strings.TrimSpace(rest[:open])}
			for _, p := range strings.Split(rest[open+1:close_], ",") {
				p = strings.TrimSpace(p)
				if p != "" {
					f.Params = append(f.Params, p)
				}
			}
			cur = f
			curBlock = nil
		case line == "}":
			if cur == nil {
				return nil, fail("stray }")
			}
			if err := m.AddFunc(cur); err != nil {
				return nil, fail("%v", err)
			}
			cur, curBlock = nil, nil
		case strings.HasSuffix(line, ":") && cur != nil:
			label := strings.TrimSuffix(line, ":")
			if cur.BlockByLabel(label) != nil {
				return nil, fail("duplicate label %s", label)
			}
			curBlock = &Block{Label: label}
			cur.Blocks = append(cur.Blocks, curBlock)
		default:
			if cur == nil {
				return nil, fail("instruction outside function: %q", line)
			}
			if curBlock == nil {
				// Implicit entry block.
				curBlock = &Block{Label: "entry"}
				cur.Blocks = append(cur.Blocks, curBlock)
			}
			in, err := parseInstr(line)
			if err != nil {
				return nil, fail("%v", err)
			}
			in.Pos = Pos{Line: ln + 1, Col: col}
			curBlock.Instrs = append(curBlock.Instrs, in)
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("ir: unterminated func %s", cur.Name)
	}
	return m, nil
}

// MustParse parses or panics (for compiled-in application models).
func MustParse(src string) *Module {
	m, err := Parse(src)
	if err != nil {
		panic(err)
	}
	if _, err := m.Validate(); err != nil {
		panic(err)
	}
	return m
}

func parseInstr(line string) (Instr, error) {
	// Assignment forms: "x = ...".
	if eq := strings.Index(line, "="); eq > 0 && !strings.HasPrefix(line, "store") &&
		!strings.Contains(line[:eq], ",") {
		dst := strings.TrimSpace(line[:eq])
		rhs := strings.TrimSpace(line[eq+1:])
		in, err := parseRHS(rhs)
		if err != nil {
			return Instr{}, err
		}
		in.Dst = dst
		return in, nil
	}
	fields := splitOp(line)
	if len(fields) == 0 {
		return Instr{}, fmt.Errorf("empty instruction")
	}
	switch fields[0] {
	case "store":
		// store p, off, v
		args := splitArgs(strings.TrimPrefix(line, "store "))
		if len(args) != 3 {
			return Instr{}, fmt.Errorf("store wants 3 operands: %q", line)
		}
		off, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return Instr{}, fmt.Errorf("store offset: %v", err)
		}
		return Instr{Op: OpStore, A: args[0], Imm: off, Val: args[2]}, nil
	case "call", "icall":
		return parseRHS(line)
	case "br":
		if len(fields) != 2 {
			return Instr{}, fmt.Errorf("br wants a label")
		}
		return Instr{Op: OpBr, L1: fields[1]}, nil
	case "cbr":
		args := splitArgs(strings.TrimPrefix(line, "cbr "))
		if len(args) != 3 {
			return Instr{}, fmt.Errorf("cbr wants cond, l1, l2")
		}
		return Instr{Op: OpCbr, Val: args[0], L1: args[1], L2: args[2]}, nil
	case "ret":
		in := Instr{Op: OpRet}
		if len(fields) == 2 {
			in.Val = fields[1]
		}
		return in, nil
	case "unsafe_enter":
		return Instr{Op: OpUnsafeEnter}, nil
	case "unsafe_exit":
		return Instr{Op: OpUnsafeExit}, nil
	}
	return Instr{}, fmt.Errorf("unknown instruction %q", line)
}

func parseRHS(rhs string) (Instr, error) {
	fields := splitOp(rhs)
	if len(fields) == 0 {
		return Instr{}, fmt.Errorf("empty rhs")
	}
	switch fields[0] {
	case "const":
		if len(fields) != 2 {
			return Instr{}, fmt.Errorf("const wants one immediate")
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return Instr{}, fmt.Errorf("const: %v", err)
		}
		return Instr{Op: OpConst, Imm: v}, nil
	case "alloc", "talloc":
		if len(fields) != 2 {
			return Instr{}, fmt.Errorf("%s wants one size", fields[0])
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return Instr{}, fmt.Errorf("%s: %v", fields[0], err)
		}
		op := OpAlloc
		if fields[0] == "talloc" {
			op = OpTalloc
		}
		return Instr{Op: op, Imm: v}, nil
	case "add", "sub", "mul", "lt", "eq":
		kind := map[string]BinKind{"add": BinAdd, "sub": BinSub, "mul": BinMul, "lt": BinLt, "eq": BinEq}[fields[0]]
		args := splitArgs(strings.TrimPrefix(rhs, fields[0]+" "))
		if len(args) != 2 {
			return Instr{}, fmt.Errorf("%s wants 2 operands", fields[0])
		}
		return Instr{Op: OpBin, Bin: kind, A: args[0], B: args[1]}, nil
	case "load":
		args := splitArgs(strings.TrimPrefix(rhs, "load "))
		if len(args) != 2 {
			return Instr{}, fmt.Errorf("load wants p, off")
		}
		off, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return Instr{}, fmt.Errorf("load offset: %v", err)
		}
		return Instr{Op: OpLoad, A: args[0], Imm: off}, nil
	case "field":
		args := splitArgs(strings.TrimPrefix(rhs, "field "))
		if len(args) != 2 {
			return Instr{}, fmt.Errorf("field wants p, off")
		}
		off, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return Instr{}, fmt.Errorf("field offset: %v", err)
		}
		return Instr{Op: OpGetField, A: args[0], Imm: off}, nil
	case "call":
		rest := strings.TrimSpace(strings.TrimPrefix(rhs, "call "))
		open := strings.Index(rest, "(")
		close_ := strings.LastIndex(rest, ")")
		if open < 0 || close_ < open {
			return Instr{}, fmt.Errorf("malformed call %q", rhs)
		}
		in := Instr{Op: OpCall, Fn: strings.TrimSpace(rest[:open])}
		for _, a := range strings.Split(rest[open+1:close_], ",") {
			a = strings.TrimSpace(a)
			if a != "" {
				in.Args = append(in.Args, a)
			}
		}
		return in, nil
	case "funcref":
		if len(fields) != 2 {
			return Instr{}, fmt.Errorf("funcref wants a function name")
		}
		return Instr{Op: OpFuncRef, Fn: fields[1]}, nil
	case "icall":
		rest := strings.TrimSpace(strings.TrimPrefix(rhs, "icall "))
		open := strings.Index(rest, "(")
		close_ := strings.LastIndex(rest, ")")
		if open < 0 || close_ < open {
			return Instr{}, fmt.Errorf("malformed icall %q", rhs)
		}
		in := Instr{Op: OpICall, Val: strings.TrimSpace(rest[:open])}
		for _, a := range strings.Split(rest[open+1:close_], ",") {
			a = strings.TrimSpace(a)
			if a != "" {
				in.Args = append(in.Args, a)
			}
		}
		return in, nil
	}
	return Instr{}, fmt.Errorf("unknown rhs %q", rhs)
}

func splitOp(s string) []string {
	return strings.Fields(strings.ReplaceAll(s, ",", " , "))
}

func splitArgs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		a = strings.TrimSpace(a)
		if a != "" {
			out = append(out, a)
		}
	}
	return out
}
