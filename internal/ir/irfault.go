package ir

import (
	"fmt"
	"math/rand"
)

// IR-level fault injection: the direct analogue of the paper's LLVM-IR
// injector (§4.4, Table 6), operating on module copies so a campaign can
// compile "vanilla" and "fault-injected" versions of each function and
// switch between them.

// FaultKind enumerates the injectable IR transformations.
type FaultKind uint8

const (
	// FaultCompInversion flips a comparison's result (swap lt operands /
	// negate eq).
	FaultCompInversion FaultKind = iota
	// FaultMissingStore deletes a store instruction.
	FaultMissingStore
	// FaultWrongOperand replaces a binop operand with the literal 0 or 1.
	FaultWrongOperand
	// FaultMissingBranch rewrites a cbr to always take the false edge.
	FaultMissingBranch
	// FaultUninitVar deletes a register's first const assignment.
	FaultUninitVar
	// FaultWrongResult makes a store write the literal 0.
	FaultWrongResult
	// FaultMissingCall deletes a call instruction.
	FaultMissingCall
)

func (k FaultKind) String() string {
	switch k {
	case FaultCompInversion:
		return "comparison-inversion"
	case FaultMissingStore:
		return "missing-assignment"
	case FaultWrongOperand:
		return "wrong-operand"
	case FaultMissingBranch:
		return "missing-if"
	case FaultUninitVar:
		return "uninitialized-variable"
	case FaultWrongResult:
		return "assign-wrong-result"
	case FaultMissingCall:
		return "missing-function-call"
	}
	return "unknown"
}

// FaultSite is a concrete injectable location.
type FaultSite struct {
	Fn   string
	Ref  InstrRef
	Kind FaultKind
}

// EnumerateFaultSites lists every (instruction, kind) pair the module
// supports, restricted to the given functions (pass nil for all) — the
// gcov-style activation filter of §4.4.
func EnumerateFaultSites(m *Module, funcs map[string]bool) []FaultSite {
	var out []FaultSite
	for _, name := range m.Order {
		if funcs != nil && !funcs[name] {
			continue
		}
		f := m.Funcs[name]
		f.ForEachInstr(func(ref InstrRef, in *Instr) {
			switch in.Op {
			case OpBin:
				if in.Bin == BinLt || in.Bin == BinEq {
					out = append(out, FaultSite{name, ref, FaultCompInversion})
				}
				out = append(out, FaultSite{name, ref, FaultWrongOperand})
			case OpStore:
				out = append(out, FaultSite{name, ref, FaultMissingStore})
				out = append(out, FaultSite{name, ref, FaultWrongResult})
			case OpCbr:
				out = append(out, FaultSite{name, ref, FaultMissingBranch})
			case OpConst:
				out = append(out, FaultSite{name, ref, FaultUninitVar})
			case OpCall, OpICall:
				out = append(out, FaultSite{name, ref, FaultMissingCall})
			}
		})
	}
	return out
}

// Inject applies the fault to a copy of the module and returns it. The
// original module is untouched.
func Inject(m *Module, site FaultSite) (*Module, error) {
	nm := m.Clone()
	f, ok := nm.Funcs[site.Fn]
	if !ok {
		return nil, fmt.Errorf("ir: inject into unknown function %q", site.Fn)
	}
	if site.Ref.Block >= len(f.Blocks) || site.Ref.Index >= len(f.Blocks[site.Ref.Block].Instrs) {
		return nil, fmt.Errorf("ir: inject site out of range")
	}
	b := f.Blocks[site.Ref.Block]
	in := &b.Instrs[site.Ref.Index]
	switch site.Kind {
	case FaultCompInversion:
		if in.Op != OpBin || (in.Bin != BinLt && in.Bin != BinEq) {
			return nil, fmt.Errorf("ir: comparison inversion on non-comparison")
		}
		if in.Bin == BinLt {
			in.A, in.B = in.B, in.A // a<b becomes b<a (≈ >=, off by equality)
		} else {
			// eq inversion: rewrite to lt(0, |a-b|)-style via swap is not
			// expressible in place; emulate by changing to lt with the same
			// operands, which flips most equal/unequal outcomes.
			in.Bin = BinLt
		}
	case FaultMissingStore:
		if in.Op != OpStore {
			return nil, fmt.Errorf("ir: missing-store on non-store")
		}
		b.Instrs = append(b.Instrs[:site.Ref.Index], b.Instrs[site.Ref.Index+1:]...)
	case FaultWrongOperand:
		if in.Op != OpBin {
			return nil, fmt.Errorf("ir: wrong-operand on non-binop")
		}
		in.B = "0"
	case FaultMissingBranch:
		if in.Op != OpCbr {
			return nil, fmt.Errorf("ir: missing-if on non-cbr")
		}
		*in = Instr{Op: OpBr, L1: in.L2}
	case FaultUninitVar:
		if in.Op != OpConst {
			return nil, fmt.Errorf("ir: uninit-var on non-const")
		}
		b.Instrs = append(b.Instrs[:site.Ref.Index], b.Instrs[site.Ref.Index+1:]...)
	case FaultWrongResult:
		if in.Op != OpStore {
			return nil, fmt.Errorf("ir: wrong-result on non-store")
		}
		in.Val = "0"
	case FaultMissingCall:
		if in.Op != OpCall && in.Op != OpICall {
			return nil, fmt.Errorf("ir: missing-call on non-call")
		}
		b.Instrs = append(b.Instrs[:site.Ref.Index], b.Instrs[site.Ref.Index+1:]...)
	default:
		return nil, fmt.Errorf("ir: unknown fault kind %d", site.Kind)
	}
	return nm, nil
}

// PickSites draws n distinct random sites (deterministic in the rng).
func PickSites(sites []FaultSite, n int, rng *rand.Rand) []FaultSite {
	if n >= len(sites) {
		out := make([]FaultSite, len(sites))
		copy(out, sites)
		return out
	}
	perm := rng.Perm(len(sites))
	out := make([]FaultSite, n)
	for i := 0; i < n; i++ {
		out[i] = sites[perm[i]]
	}
	return out
}
