package ir

import (
	"strings"
	"testing"
)

// FuzzParse asserts the parser never panics on arbitrary input, and that
// anything it accepts is stable under a String→Parse round trip (when the
// module also validates).
func FuzzParse(f *testing.F) {
	f.Add(sample)
	f.Add("global g\n")
	f.Add("func f() {\nentry:\n  ret\n}")
	f.Add("func f(a, b) {\nentry:\n  x = add a, b\n  store a, 0, x\n  cbr x, entry, out\nout:\n  ret x\n}")
	f.Add("func f() {\nentry:\n  x = funcref f\n  icall x()\n  ret\n}")
	f.Add("global g\nfunc f() {\nentry:\n  t = talloc 16\n  store g, 0, t\n  ret\n}")
	f.Add("} ; stray\nfunc ( {")
	f.Add("func f() {\nentry:\n  store , , \n}")
	f.Fuzz(func(t *testing.T, src string) {
		m, err := Parse(src)
		if err != nil {
			return
		}
		if _, err := m.Validate(); err != nil {
			return
		}
		text := m.String()
		m2, err := Parse(text)
		if err != nil {
			t.Fatalf("re-parse of rendered module failed: %v\n%s", err, text)
		}
		if got := m2.String(); got != text {
			t.Fatalf("String not stable:\n--- first\n%s\n--- second\n%s", text, got)
		}
	})
}

// FuzzInterp runs accepted single-function modules briefly under fuel,
// asserting the interpreter returns errors instead of panicking.
func FuzzInterp(f *testing.F) {
	f.Add("global g\nfunc main() {\nentry:\n  store g, 0, 1\n  ret\n}")
	f.Add("func main() {\nentry:\n  br entry\n}")
	f.Fuzz(func(t *testing.T, src string) {
		m, err := Parse(src)
		if err != nil {
			return
		}
		if _, err := m.Validate(); err != nil {
			return
		}
		fn, ok := m.Funcs["main"]
		if !ok || len(fn.Params) != 0 {
			return
		}
		in := NewInterp(m)
		in.MaxStep = 2000
		if _, err := in.Call("main"); err != nil &&
			!strings.Contains(err.Error(), "ir:") {
			t.Fatalf("non-ir error escaped: %v", err)
		}
	})
}
