package ir

import (
	"strings"
	"testing"
)

const componentSample = `
global g

func f() {
entry:
  x = const 1
  store g, 0, x
  ret
}

func h() {
entry:
  v = load g, 0
  ret v
}

component writer f g
component reader h
`

func TestParseComponents(t *testing.T) {
	m, err := Parse(componentSample)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Components) != 2 {
		t.Fatalf("parsed %d components", len(m.Components))
	}
	if _, err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for member, want := range map[string]string{"f": "writer", "g": "writer", "h": "reader", "nope": ""} {
		if got := m.ComponentOf(member); got != want {
			t.Errorf("ComponentOf(%s) = %q, want %q", member, got, want)
		}
	}
	// Round trip: components must render and re-parse byte-stably.
	text := m.String()
	m2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	if m2.String() != text {
		t.Fatal("String not stable across round trip with components")
	}
	if m2.ComponentOf("g") != "writer" {
		t.Fatal("component membership lost in round trip")
	}
}

func TestComponentParseErrors(t *testing.T) {
	if _, err := Parse("func f() {\ncomponent a f\n}"); err == nil ||
		!strings.Contains(err.Error(), "component inside function") {
		t.Errorf("component inside function: got %v", err)
	}
	if _, err := Parse("component lonely"); err == nil ||
		!strings.Contains(err.Error(), "at least one member") {
		t.Errorf("memberless component: got %v", err)
	}
}

func TestComponentValidate(t *testing.T) {
	base := func() *Module {
		m, err := Parse(componentSample)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	cases := []struct {
		name string
		mut  func(*Module)
		want string
	}{
		{"dup-name", func(m *Module) {
			m.Components = append(m.Components, ComponentDecl{Name: "writer", Members: []string{"h"}})
		}, "duplicate component"},
		{"empty-members", func(m *Module) {
			m.Components = append(m.Components, ComponentDecl{Name: "idle"})
		}, "no members"},
		{"dup-member", func(m *Module) {
			m.Components = append(m.Components, ComponentDecl{Name: "other", Members: []string{"f"}})
		}, "in both component"},
		{"unknown-member", func(m *Module) {
			m.Components = append(m.Components, ComponentDecl{Name: "ghost", Members: []string{"missing"}})
		}, "neither a function nor a global"},
	}
	for _, tc := range cases {
		m := base()
		tc.mut(m)
		_, err := m.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestInsertCrossDomainStore(t *testing.T) {
	m := MustParse(componentSample)
	mut, pos, err := InsertCrossDomainStore(m, "h", "g", 8)
	if err != nil {
		t.Fatal(err)
	}
	// Anchor is h's original first instruction.
	orig := m.Funcs["h"].Entry().Instrs[0].Pos
	if pos != orig {
		t.Fatalf("anchor pos %v, want %v", pos, orig)
	}
	// The source module is untouched; the mutant gained two instructions.
	if n := len(m.Funcs["h"].Entry().Instrs); n != 2 {
		t.Fatalf("source module mutated: %d instrs", n)
	}
	e := mut.Funcs["h"].Entry().Instrs
	if len(e) != 4 || e[0].Op != OpConst || e[1].Op != OpStore ||
		e[1].A != "g" || e[1].Imm != 8 || e[1].Pos != pos {
		t.Fatalf("unexpected mutant entry block: %+v", e)
	}
	if _, err := mut.Validate(); err != nil {
		t.Fatalf("mutant does not validate: %v", err)
	}
	if _, _, err := InsertCrossDomainStore(m, "missing", "g", 0); err == nil {
		t.Error("unknown function accepted")
	}
	if _, _, err := InsertCrossDomainStore(m, "h", "missing", 0); err == nil {
		t.Error("unknown global accepted")
	}
}
