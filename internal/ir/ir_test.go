package ir

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

const sample = `
global g

func main(x) {
entry:
  a = const 5
  b = add a, x
  p = alloc 16
  store p, 0, b
  v = load p, 0
  q = field p, 8
  r = call helper(p, v)
  ok = lt r, a
  cbr ok, yes, no
yes:
  ret r
no:
  z = const 0
  ret z
}

func helper(p, v) {
entry:
  store p, 8, v
  ret v
}
`

func TestParseRoundTrip(t *testing.T) {
	m, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Funcs) != 2 || len(m.Globals) != 1 {
		t.Fatalf("parsed %d funcs %d globals", len(m.Funcs), len(m.Globals))
	}
	text := m.String()
	m2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	if m2.String() != text {
		t.Fatal("String not stable across round trip")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"func f( {",                         // malformed header
		"func f() {\nentry:\n  bogus op\n}", // unknown instruction
		"func f() {\nentry:\n  ret\n",       // unterminated
		"store p, 0, v",                     // instr outside func
		"func f() {\nentry:\n  ret\n}\nfunc f() {\nentry:\n  ret\n}", // dup
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestValidate(t *testing.T) {
	m := MustParse(sample)
	ext, err := m.Validate()
	if err != nil || len(ext) != 0 {
		t.Fatalf("validate: %v ext=%v", err, ext)
	}
	bad, _ := Parse("func f() {\nentry:\n  x = const 1\n}")
	if _, err := bad.Validate(); err == nil {
		t.Fatal("missing terminator not caught")
	}
	extm, _ := Parse("func f() {\nentry:\n  call libc_memcpy(f, f)\n  ret\n}")
	ext, err = extm.Validate()
	if err != nil || len(ext) != 1 || ext[0] != "libc_memcpy" {
		t.Fatalf("external not reported: %v %v", ext, err)
	}
}

func TestInterpBasics(t *testing.T) {
	m := MustParse(sample)
	in := NewInterp(m)
	// helper stores v at p+8; main returns r=v if r<5 else 0. x=2: b=7,
	// helper returns 7, ok = 7<5 false → ret 0.
	got, err := in.Call("main", 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("main(2) = %d, want 0", got)
	}
	// x=-3: b=2, helper returns 2, 2<5 → ret 2.
	got, err = in.Call("main", -3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("main(-3) = %d, want 2", got)
	}
}

func TestInterpGlobalsAndExternals(t *testing.T) {
	m := MustParse(`
global root

func touch() {
entry:
  store root, 0, 42
  x = call ext_rand()
  ret x
}
`)
	in := NewInterp(m)
	in.Externals["ext_rand"] = func(args []int64) int64 { return 99 }
	got, err := in.Call("touch")
	if err != nil {
		t.Fatal(err)
	}
	if got != 99 {
		t.Fatalf("external returned %d", got)
	}
	if in.Load(in.Global("root")) != 42 {
		t.Fatal("global store lost")
	}
}

func TestInterpFuel(t *testing.T) {
	m := MustParse(`
func spin() {
entry:
  br entry
}
`)
	in := NewInterp(m)
	in.MaxStep = 100
	if _, err := in.Call("spin"); err == nil || !strings.Contains(err.Error(), "fuel") {
		t.Fatalf("fuel limit not enforced: %v", err)
	}
}

func TestInterpCrashInjection(t *testing.T) {
	m := MustParse(sample)
	in := NewInterp(m)
	in.CrashAtStep = 3
	_, err := in.Call("main", 1)
	crash, ok := err.(*ErrCrash)
	if !ok {
		t.Fatalf("expected ErrCrash, got %v", err)
	}
	if crash.Fn != "main" || len(crash.Stack) != 1 {
		t.Fatalf("crash info: %+v", crash)
	}
}

func TestUnsafeStateTransitions(t *testing.T) {
	m := MustParse(`
global g

func f() {
entry:
  unsafe_enter
  store g, 0, 1
  unsafe_exit
  ret
}
`)
	// Crash inside the unsafe region → frame state M → unsafe.
	in := NewInterp(m)
	in.CrashAtStep = 2 // right after unsafe_enter
	_, err := in.Call("f")
	crash := err.(*ErrCrash)
	if Safe(crash.Stack) {
		t.Fatalf("crash inside region reported safe: %v", crash.Stack)
	}
	// Crash after exit → safe.
	in2 := NewInterp(m)
	in2.CrashAtStep = 4
	_, err = in2.Call("f")
	crash = err.(*ErrCrash)
	if !Safe(crash.Stack) {
		t.Fatalf("crash after region reported unsafe: %v", crash.Stack)
	}
}

func TestSafePredicate(t *testing.T) {
	if !Safe([]FrameState{StateU, StateU}) || !Safe([]FrameState{StateE}) || !Safe(nil) {
		t.Fatal("safe stacks misjudged")
	}
	if Safe([]FrameState{StateE, StateM, StateU}) {
		t.Fatal("M frame not detected")
	}
}

func TestEnumerateAndInjectFaults(t *testing.T) {
	m := MustParse(sample)
	sites := EnumerateFaultSites(m, nil)
	if len(sites) < 8 {
		t.Fatalf("only %d fault sites", len(sites))
	}
	kinds := map[FaultKind]bool{}
	for _, s := range sites {
		kinds[s.Kind] = true
		nm, err := Inject(m, s)
		if err != nil {
			t.Fatalf("inject %v at %s: %v", s.Kind, s.Fn, err)
		}
		if nm == m {
			t.Fatal("Inject did not copy")
		}
		if _, err := nm.Validate(); err != nil {
			t.Fatalf("injected module invalid: %v", err)
		}
	}
	for _, k := range []FaultKind{FaultCompInversion, FaultMissingStore, FaultWrongOperand,
		FaultMissingBranch, FaultUninitVar, FaultWrongResult, FaultMissingCall} {
		if !kinds[k] {
			t.Errorf("no site for %v", k)
		}
	}
}

func TestInjectedFaultChangesBehaviour(t *testing.T) {
	m := MustParse(sample)
	// Find the store in helper and delete it.
	var site FaultSite
	for _, s := range EnumerateFaultSites(m, map[string]bool{"helper": true}) {
		if s.Kind == FaultMissingStore {
			site = s
			break
		}
	}
	nm, err := Inject(m, site)
	if err != nil {
		t.Fatal(err)
	}
	// Vanilla writes b to p+8 via helper; injected one does not.
	run := func(mod *Module) int64 {
		in := NewInterp(mod)
		if _, err := in.Call("main", 1); err != nil {
			t.Fatal(err)
		}
		// p is the first allocation after the 512-byte global root.
		return in.Load(0x1200 + 8)
	}
	if run(m) == run(nm) {
		t.Fatal("missing-store fault had no effect")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := MustParse(sample)
	c := m.Clone()
	c.Funcs["main"].Blocks[0].Instrs[0].Imm = 999
	if m.Funcs["main"].Blocks[0].Instrs[0].Imm == 999 {
		t.Fatal("clone aliases original")
	}
}

func TestStringRendersAllOps(t *testing.T) {
	src := `
global g

func all(p) {
entry:
  a = const 1
  b = add a, a
  c = sub a, a
  d = mul a, a
  e = lt a, a
  f = eq a, a
  m = alloc 8
  store m, 0, a
  v = load m, 0
  q = field m, 4
  r = call all(m)
  fr = funcref all
  ir = icall fr(m)
  unsafe_enter
  unsafe_exit
  cbr e, yes, no
yes:
  ret r
no:
  ret
}
`
	m := MustParse(src)
	text := m.String()
	for _, want := range []string{"const", "add", "sub", "mul", "lt", "eq", "alloc",
		"store", "load", "field", "call all", "funcref all", "icall fr",
		"unsafe_enter", "unsafe_exit", "cbr", "ret r", "ret"} {
		if !strings.Contains(text, want) {
			t.Fatalf("String missing %q:\n%s", want, text)
		}
	}
	// Round trip.
	m2, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if m2.String() != text {
		t.Fatal("all-ops module not stable under round trip")
	}
	// Interpreter executes it (recursion guarded by fuel is fine: the call
	// recurses once through r then icall — give it fuel and let it run).
	in := NewInterp(m)
	in.MaxStep = 2000
	if _, err := in.Call("all", 0); err == nil {
		t.Log("all() returned cleanly")
	}
}

func TestInstrRefLess(t *testing.T) {
	a := InstrRef{Block: 0, Index: 5}
	b := InstrRef{Block: 1, Index: 0}
	c := InstrRef{Block: 0, Index: 6}
	if !a.Less(b) || !a.Less(c) || b.Less(a) {
		t.Fatal("InstrRef ordering wrong")
	}
}

func TestFrameStateStrings(t *testing.T) {
	if StateU.String() != "U" || StateM.String() != "M" || StateE.String() != "E" {
		t.Fatal("frame state strings wrong")
	}
	if (&ErrCrash{Fn: "f", Stack: []FrameState{StateM}}).Error() == "" {
		t.Fatal("empty crash error")
	}
}

func TestFaultKindStrings(t *testing.T) {
	kinds := []FaultKind{FaultCompInversion, FaultMissingStore, FaultWrongOperand,
		FaultMissingBranch, FaultUninitVar, FaultWrongResult, FaultMissingCall}
	for _, k := range kinds {
		if k.String() == "unknown" {
			t.Fatalf("kind %d unnamed", k)
		}
	}
}

func TestPickSites(t *testing.T) {
	m := MustParse(sample)
	sites := EnumerateFaultSites(m, nil)
	rng := rand.New(rand.NewSource(1))
	got := PickSites(sites, 3, rng)
	if len(got) != 3 {
		t.Fatalf("PickSites = %d", len(got))
	}
	seen := map[string]bool{}
	for _, s := range got {
		key := fmt.Sprintf("%s/%d/%d/%d", s.Fn, s.Ref.Block, s.Ref.Index, s.Kind)
		if seen[key] {
			t.Fatal("duplicate site picked")
		}
		seen[key] = true
	}
	// Asking for more than available returns everything.
	if all := PickSites(sites, 10000, rng); len(all) != len(sites) {
		t.Fatalf("overdraw = %d, want %d", len(all), len(sites))
	}
}

func TestMemorySnapshotAndStore(t *testing.T) {
	m := MustParse(sample)
	in := NewInterp(m)
	in.Store(0x42, 99)
	snap := in.MemorySnapshot()
	if snap[0x42] != 99 {
		t.Fatal("snapshot missing stored value")
	}
	snap[0x42] = 1
	if in.Load(0x42) != 99 {
		t.Fatal("snapshot aliases live memory")
	}
}

func TestInjectErrors(t *testing.T) {
	m := MustParse(sample)
	if _, err := Inject(m, FaultSite{Fn: "nope", Kind: FaultMissingStore}); err == nil {
		t.Fatal("inject into unknown function succeeded")
	}
	if _, err := Inject(m, FaultSite{Fn: "main", Ref: InstrRef{Block: 99}, Kind: FaultMissingStore}); err == nil {
		t.Fatal("out-of-range site succeeded")
	}
	// Kind/instruction mismatches.
	if _, err := Inject(m, FaultSite{Fn: "main", Ref: InstrRef{0, 0}, Kind: FaultMissingStore}); err == nil {
		t.Fatal("missing-store on const succeeded")
	}
}
