// Package ir defines the miniature intermediate representation the PHOENIX
// static analyzer operates on — the stand-in for LLVM IR in §3.5.
//
// Programs are modules of functions; functions are lists of labelled basic
// blocks of register-based instructions. Registers are mutable function-
// local variables (no SSA), which matches the analyzer's deliberately
// flow-insensitive, completeness-over-soundness taint treatment.
//
// A textual format (".pir") round-trips through Parse/String so application
// models can live in source files and the phxanalyze CLI can consume them.
package ir

import (
	"fmt"
	"strings"
)

// Op enumerates instruction opcodes.
type Op uint8

const (
	// OpConst: x = const N
	OpConst Op = iota
	// OpBin: x = add|sub|mul|lt|eq a, b
	OpBin
	// OpAlloc: x = alloc N — allocate N bytes from the preserved arena,
	// returns pointer. Preserved-arena memory survives a PHOENIX restart.
	OpAlloc
	// OpLoad: x = load p, off — read the word at p+off.
	OpLoad
	// OpStore: store p, off, v — write v to p+off.
	OpStore
	// OpGetField: x = field p, off — pointer arithmetic (p+off).
	OpGetField
	// OpCall: x = call f(a, b, ...) — x optional.
	OpCall
	// OpBr: br label
	OpBr
	// OpCbr: cbr cond, l1, l2
	OpCbr
	// OpRet: ret v? — return from function.
	OpRet
	// OpFuncRef: x = funcref f — takes the address of function f.
	OpFuncRef
	// OpICall: [x =] icall r(a, b, ...) — indirect call through register r.
	OpICall
	// OpUnsafeEnter / OpUnsafeExit are inserted by the instrumenter: frame
	// state transitions U→M and M→E (§3.5's state stack updates).
	OpUnsafeEnter
	OpUnsafeExit
	// OpTalloc: x = talloc N — allocate N bytes of transient memory (regular
	// heap / stack analogue). Transient memory is discarded by
	// Interp.PreserveRestart, so a preserved pointer into a talloc'd object
	// dangles after recovery — the bug class phxvet's dangling-reference
	// finding reports statically.
	OpTalloc
)

// Pos is a source position in the .pir text (1-based; zero means unknown —
// e.g. instructions built programmatically or inserted by the instrumenter).
type Pos struct {
	Line int
	Col  int
}

// IsZero reports whether the position is unknown.
func (p Pos) IsZero() bool { return p.Line == 0 && p.Col == 0 }

func (p Pos) String() string {
	if p.IsZero() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// BinKind is the OpBin operator.
type BinKind uint8

const (
	BinAdd BinKind = iota
	BinSub
	BinMul
	BinLt
	BinEq
)

func (b BinKind) String() string {
	switch b {
	case BinAdd:
		return "add"
	case BinSub:
		return "sub"
	case BinMul:
		return "mul"
	case BinLt:
		return "lt"
	case BinEq:
		return "eq"
	}
	return "?"
}

// Instr is one instruction.
type Instr struct {
	Op   Op
	Dst  string  // destination register ("" if none)
	Bin  BinKind // for OpBin
	A, B string  // register operands
	Imm  int64   // OpConst value, OpAlloc/OpTalloc size, OpLoad/OpStore/OpGetField offset
	Val  string  // OpStore value register; OpRet value; OpCbr cond
	Fn   string  // OpCall target
	Args []string
	L1   string // branch targets
	L2   string
	// Pos is the instruction's position in the source text, threaded through
	// Parse so analyzer findings and interpreter faults can cite it.
	Pos Pos
}

// Block is a labelled basic block.
type Block struct {
	Label  string
	Instrs []Instr
}

// Func is one function.
type Func struct {
	Name   string
	Params []string
	Blocks []*Block
}

// Entry returns the first block.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// BlockByLabel returns the named block, or nil.
func (f *Func) BlockByLabel(label string) *Block {
	for _, b := range f.Blocks {
		if b.Label == label {
			return b
		}
	}
	return nil
}

// ComponentDecl assigns functions and globals to one named recovery
// component ("component <name> <member...>" in the .pir text). The phxvet
// domain-isolation check uses the partition: a store executed by one
// component's code must not target preserved state homed in another
// component — such a write would survive the other component's microreboot
// as dangling state.
type ComponentDecl struct {
	Name string
	// Members are function and global names belonging to the component.
	Members []string
}

// Module is a set of functions plus named globals (roots of preserved
// state) and optional component declarations.
type Module struct {
	Funcs      map[string]*Func
	Order      []string // declaration order, for deterministic output
	Globals    []string
	Components []ComponentDecl
}

// NewModule returns an empty module.
func NewModule() *Module {
	return &Module{Funcs: make(map[string]*Func)}
}

// AddFunc registers a function, preserving declaration order.
func (m *Module) AddFunc(f *Func) error {
	if _, dup := m.Funcs[f.Name]; dup {
		return fmt.Errorf("ir: duplicate function %q", f.Name)
	}
	m.Funcs[f.Name] = f
	m.Order = append(m.Order, f.Name)
	return nil
}

// String renders the instruction in textual form.
func (in *Instr) String() string {
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("%s = const %d", in.Dst, in.Imm)
	case OpBin:
		return fmt.Sprintf("%s = %s %s, %s", in.Dst, in.Bin, in.A, in.B)
	case OpAlloc:
		return fmt.Sprintf("%s = alloc %d", in.Dst, in.Imm)
	case OpTalloc:
		return fmt.Sprintf("%s = talloc %d", in.Dst, in.Imm)
	case OpLoad:
		return fmt.Sprintf("%s = load %s, %d", in.Dst, in.A, in.Imm)
	case OpStore:
		return fmt.Sprintf("store %s, %d, %s", in.A, in.Imm, in.Val)
	case OpGetField:
		return fmt.Sprintf("%s = field %s, %d", in.Dst, in.A, in.Imm)
	case OpCall:
		call := fmt.Sprintf("call %s(%s)", in.Fn, strings.Join(in.Args, ", "))
		if in.Dst != "" {
			return in.Dst + " = " + call
		}
		return call
	case OpFuncRef:
		return fmt.Sprintf("%s = funcref %s", in.Dst, in.Fn)
	case OpICall:
		call := fmt.Sprintf("icall %s(%s)", in.Val, strings.Join(in.Args, ", "))
		if in.Dst != "" {
			return in.Dst + " = " + call
		}
		return call
	case OpBr:
		return "br " + in.L1
	case OpCbr:
		return fmt.Sprintf("cbr %s, %s, %s", in.Val, in.L1, in.L2)
	case OpRet:
		if in.Val == "" {
			return "ret"
		}
		return "ret " + in.Val
	case OpUnsafeEnter:
		return "unsafe_enter"
	case OpUnsafeExit:
		return "unsafe_exit"
	}
	return "?"
}

// String renders the module in the textual .pir format.
func (m *Module) String() string {
	var sb strings.Builder
	for _, g := range m.Globals {
		fmt.Fprintf(&sb, "global %s\n", g)
	}
	for _, c := range m.Components {
		fmt.Fprintf(&sb, "component %s %s\n", c.Name, strings.Join(c.Members, " "))
	}
	for _, name := range m.Order {
		f := m.Funcs[name]
		fmt.Fprintf(&sb, "func %s(%s) {\n", f.Name, strings.Join(f.Params, ", "))
		for _, b := range f.Blocks {
			fmt.Fprintf(&sb, "%s:\n", b.Label)
			for i := range b.Instrs {
				fmt.Fprintf(&sb, "  %s\n", b.Instrs[i].String())
			}
		}
		sb.WriteString("}\n")
	}
	return sb.String()
}

// InstrRef identifies one instruction position within a function.
type InstrRef struct {
	Block int
	Index int
}

// Less orders references in layout order (the analyzer's conservative
// "first/last modification" ordering).
func (r InstrRef) Less(o InstrRef) bool {
	if r.Block != o.Block {
		return r.Block < o.Block
	}
	return r.Index < o.Index
}

// ForEachInstr visits every instruction in layout order.
func (f *Func) ForEachInstr(fn func(ref InstrRef, in *Instr)) {
	for bi, b := range f.Blocks {
		for ii := range b.Instrs {
			fn(InstrRef{bi, ii}, &b.Instrs[ii])
		}
	}
}

// Clone deep-copies the function (instrumentation and fault injection work
// on copies).
func (f *Func) Clone() *Func {
	nf := &Func{Name: f.Name, Params: append([]string(nil), f.Params...)}
	for _, b := range f.Blocks {
		nb := &Block{Label: b.Label, Instrs: make([]Instr, len(b.Instrs))}
		copy(nb.Instrs, b.Instrs)
		for i := range nb.Instrs {
			nb.Instrs[i].Args = append([]string(nil), b.Instrs[i].Args...)
		}
		nf.Blocks = append(nf.Blocks, nb)
	}
	return nf
}

// ComponentOf returns the component a function or global belongs to ("" when
// unassigned or the module declares no components).
func (m *Module) ComponentOf(member string) string {
	for _, c := range m.Components {
		for _, mem := range c.Members {
			if mem == member {
				return c.Name
			}
		}
	}
	return ""
}

// Clone deep-copies the module.
func (m *Module) Clone() *Module {
	nm := NewModule()
	nm.Globals = append([]string(nil), m.Globals...)
	for _, c := range m.Components {
		nm.Components = append(nm.Components, ComponentDecl{
			Name:    c.Name,
			Members: append([]string(nil), c.Members...),
		})
	}
	for _, name := range m.Order {
		if err := nm.AddFunc(m.Funcs[name].Clone()); err != nil {
			panic(err) // clone of a valid module cannot collide
		}
	}
	return nm
}

// Validate checks structural invariants: branch targets exist, blocks end
// with a terminator, and called functions are declared (calls to undeclared
// names are treated as externals and allowed; Validate reports them).
func (m *Module) Validate() (externals []string, err error) {
	seenExt := map[string]bool{}
	compNames := map[string]bool{}
	owner := map[string]string{}
	for _, c := range m.Components {
		if compNames[c.Name] {
			return nil, fmt.Errorf("ir: duplicate component %q", c.Name)
		}
		compNames[c.Name] = true
		if len(c.Members) == 0 {
			return nil, fmt.Errorf("ir: component %q has no members", c.Name)
		}
		for _, mem := range c.Members {
			if prev, dup := owner[mem]; dup {
				return nil, fmt.Errorf("ir: member %q in both component %q and %q", mem, prev, c.Name)
			}
			owner[mem] = c.Name
			_, isFunc := m.Funcs[mem]
			isGlobal := false
			for _, g := range m.Globals {
				if g == mem {
					isGlobal = true
				}
			}
			if !isFunc && !isGlobal {
				return nil, fmt.Errorf("ir: component %q member %q is neither a function nor a global", c.Name, mem)
			}
		}
	}
	for _, name := range m.Order {
		f := m.Funcs[name]
		if len(f.Blocks) == 0 {
			return nil, fmt.Errorf("ir: func %s has no blocks", name)
		}
		for _, b := range f.Blocks {
			if len(b.Instrs) == 0 {
				return nil, fmt.Errorf("ir: %s: empty block %s", name, b.Label)
			}
			last := b.Instrs[len(b.Instrs)-1]
			switch last.Op {
			case OpBr, OpCbr, OpRet:
			default:
				return nil, fmt.Errorf("ir: %s: block %s does not end in a terminator", name, b.Label)
			}
			for i := range b.Instrs {
				in := &b.Instrs[i]
				switch in.Op {
				case OpBr:
					if f.BlockByLabel(in.L1) == nil {
						return nil, fmt.Errorf("ir: %s: br to unknown label %s", name, in.L1)
					}
				case OpCbr:
					if f.BlockByLabel(in.L1) == nil || f.BlockByLabel(in.L2) == nil {
						return nil, fmt.Errorf("ir: %s: cbr to unknown label", name)
					}
				case OpCall:
					if _, ok := m.Funcs[in.Fn]; !ok && !seenExt[in.Fn] {
						seenExt[in.Fn] = true
						externals = append(externals, in.Fn)
					}
				case OpFuncRef:
					if _, ok := m.Funcs[in.Fn]; !ok {
						return nil, fmt.Errorf("ir: %s: funcref to unknown function %s", name, in.Fn)
					}
				}
			}
		}
	}
	return externals, nil
}
