package ir

import "testing"

// rewindSrc is a minimal serving module: req links a freshly allocated node
// into the preserved global, escape additionally publishes the fresh node
// into a talloc'd scratch word (the rewind-escape bug class), and stash
// stores a *pre-existing* preserved pointer into transient scratch (the
// benign pattern a discard leaves behind harmlessly).
const rewindSrc = `
global g

func req(x) {
entry:
  n = alloc 16
  store n, 8, x
  store g, 0, n
  ret
}

func escape(x) {
entry:
  n = alloc 16
  store n, 8, x
  store g, 0, n
  t = talloc 16
  store t, 0, n
  ret
}

func stash() {
entry:
  p = load g, 0
  t = talloc 16
  store t, 0, p
  ret
}

func deref() {
entry:
  p = load g, 0
  v = load p, 8
  ret v
}
`

func TestDomainDiscardRestoresPreservedState(t *testing.T) {
	m := MustParse(rewindSrc)
	in := NewInterp(m)
	if _, err := in.Call("req", 7); err != nil {
		t.Fatal(err)
	}
	before := in.MemorySnapshot()
	sum := in.PreservedChecksum()

	if err := in.DomainBegin(); err != nil {
		t.Fatal(err)
	}
	if !in.DomainOpen() {
		t.Fatal("DomainOpen = false inside a domain")
	}
	if _, err := in.Call("req", 9); err != nil {
		t.Fatal(err)
	}
	if in.PreservedChecksum() == sum {
		t.Fatal("call inside domain did not change preserved state")
	}
	esc, err := in.DomainDiscard()
	if err != nil {
		t.Fatal(err)
	}
	if len(esc) != 0 {
		t.Fatalf("clean request reported %d escape(s): %v", len(esc), esc)
	}
	if got := in.PreservedChecksum(); got != sum {
		t.Fatalf("preserved checksum after discard = %#x, want %#x", got, sum)
	}
	// Every preserved word must be byte-identical; transient scratch from the
	// discarded request may survive (it models unjournalled native state).
	after := in.MemorySnapshot()
	for addr, v := range before {
		if addr >= int64(1)<<44 {
			continue
		}
		if after[addr] != v {
			t.Fatalf("preserved word %#x = %d after discard, want %d", addr, after[addr], v)
		}
	}
}

func TestDomainCommitKeepsEffects(t *testing.T) {
	m := MustParse(rewindSrc)
	in := NewInterp(m)
	if err := in.DomainBegin(); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Call("req", 5); err != nil {
		t.Fatal(err)
	}
	if err := in.DomainCommit(); err != nil {
		t.Fatal(err)
	}
	node := in.Load(in.Global("g"))
	if node == 0 {
		t.Fatal("committed domain lost the linked node")
	}
	if got := in.Load(node + 8); got != 5 {
		t.Fatalf("node payload = %d, want 5", got)
	}
}

func TestDomainDiscardAuditsEscapes(t *testing.T) {
	m := MustParse(rewindSrc)
	in := NewInterp(m)
	if err := in.DomainBegin(); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Call("escape", 3); err != nil {
		t.Fatal(err)
	}
	esc, err := in.DomainDiscard()
	if err != nil {
		t.Fatal(err)
	}
	if len(esc) != 1 {
		t.Fatalf("got %d escape(s), want 1: %v", len(esc), esc)
	}
	if esc[0].Fn != "escape" {
		t.Fatalf("escape allocated in %q, want escape", esc[0].Fn)
	}
	if esc[0].Line == 0 {
		t.Fatal("escape record carries no alloc position")
	}
	// The published pointer aims at an unwound span: dereferencing it must
	// fault, like any dangling pointer into discarded memory.
	in.Store(in.Global("g"), esc[0].Target) // the native side hands the stale pointer back
	if _, err := in.Call("deref"); err == nil {
		t.Fatal("dereferencing the escaped pointer after discard succeeded")
	} else if _, ok := err.(*ErrDangling); !ok {
		t.Fatalf("deref failed with %v, want *ErrDangling", err)
	}
}

func TestDomainStashOfPreexistingPointerIsNotAnEscape(t *testing.T) {
	m := MustParse(rewindSrc)
	in := NewInterp(m)
	if _, err := in.Call("req", 2); err != nil {
		t.Fatal(err)
	}
	if err := in.DomainBegin(); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Call("stash"); err != nil {
		t.Fatal(err)
	}
	esc, err := in.DomainDiscard()
	if err != nil {
		t.Fatal(err)
	}
	if len(esc) != 0 {
		t.Fatalf("stash of a pre-domain pointer reported %d escape(s): %v", len(esc), esc)
	}
}

func TestDomainBracketErrors(t *testing.T) {
	in := NewInterp(MustParse(rewindSrc))
	if _, err := in.DomainDiscard(); err == nil {
		t.Fatal("DomainDiscard without open domain succeeded")
	}
	if err := in.DomainCommit(); err == nil {
		t.Fatal("DomainCommit without open domain succeeded")
	}
	if err := in.DomainBegin(); err != nil {
		t.Fatal(err)
	}
	if err := in.DomainBegin(); err == nil {
		t.Fatal("nested DomainBegin succeeded")
	}
	if err := in.DomainCommit(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertRewindEscapeMutant(t *testing.T) {
	m := MustParse(rewindSrc)
	ref, err := FindAlloc(m, "req", 0)
	if err != nil {
		t.Fatal(err)
	}
	mut, pos, err := InsertRewindEscape(m, "req", ref)
	if err != nil {
		t.Fatal(err)
	}
	if pos.Line == 0 {
		t.Fatal("anchor position is zero")
	}
	// Original module untouched.
	if n := len(m.Funcs["req"].Entry().Instrs); n != len(mut.Funcs["req"].Entry().Instrs)-2 {
		t.Fatalf("mutation leaked into the original module (orig %d instrs)", n)
	}
	in := NewInterp(mut)
	if err := in.DomainBegin(); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Call("req", 4); err != nil {
		t.Fatal(err)
	}
	esc, err := in.DomainDiscard()
	if err != nil {
		t.Fatal(err)
	}
	if len(esc) != 1 {
		t.Fatalf("planted mutant produced %d escape(s), want 1: %v", len(esc), esc)
	}
	if esc[0].Line != pos.Line || esc[0].Col != pos.Col {
		t.Fatalf("escape at %d:%d, want anchor %d:%d", esc[0].Line, esc[0].Col, pos.Line, pos.Col)
	}

	if _, err := FindAlloc(m, "req", 5); err == nil {
		t.Fatal("FindAlloc out of range succeeded")
	}
	if _, err := FindAlloc(m, "nosuch", 0); err == nil {
		t.Fatal("FindAlloc on unknown function succeeded")
	}
	storeRef, err := FindStore(m, "req", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := InsertRewindEscape(m, "req", storeRef); err == nil {
		t.Fatal("InsertRewindEscape on a non-alloc instruction succeeded")
	}
}
