package ir

import (
	"errors"
	"strings"
	"testing"
)

// cleanSrc keeps its transient buffer private: the talloc'd scratch is read
// and written but never linked into preserved memory.
const cleanSrc = `
global root

func setup() {
entry:
  box = alloc 32
  store root, 0, box
  ret
}

func work(v) {
entry:
  tmp = talloc 16
  store tmp, 0, v
  x = load tmp, 0
  box = load root, 0
  store box, 8, x
  ret x
}
`

// leakySrc links the talloc'd node straight into the preserved box — the
// dangling-reference bug class.
const leakySrc = `
global root

func setup() {
entry:
  box = alloc 32
  store root, 0, box
  ret
}

func leak(v) {
entry:
  t = talloc 16
  store t, 0, v
  box = load root, 0
  store box, 8, t
  ret v
}

func read() {
entry:
  box = load root, 0
  p = load box, 8
  x = load p, 0
  ret x
}
`

func TestParsePositions(t *testing.T) {
	m := MustParse(cleanSrc)
	f := m.Funcs["work"]
	in := f.Entry().Instrs[0] // tmp = talloc 16
	if in.Op != OpTalloc {
		t.Fatalf("first instr of work = %v", in.Op)
	}
	if in.Pos.Line != 13 || in.Pos.Col != 3 {
		t.Fatalf("talloc pos = %s, want 13:3", in.Pos)
	}
	// Round trip preserves the instruction stream (positions are not part of
	// the textual format).
	m2 := MustParse(m.String())
	if m2.String() != m.String() {
		t.Fatal("talloc module not String-stable")
	}
}

func TestParseErrorCarriesPosition(t *testing.T) {
	_, err := Parse("func f() {\nentry:\n  x = bogus 1\n  ret\n}")
	if err == nil {
		t.Fatal("expected parse error")
	}
	if !strings.Contains(err.Error(), "line 3:3") {
		t.Fatalf("error lacks line:col position: %v", err)
	}
}

func TestPreserveRestartCleanModule(t *testing.T) {
	m := MustParse(cleanSrc)
	in := NewInterp(m)
	if _, err := in.Call("setup"); err != nil {
		t.Fatal(err)
	}
	for v := int64(1); v <= 5; v++ {
		if _, err := in.Call("work", v); err != nil {
			t.Fatal(err)
		}
	}
	before := in.PreservedChecksum()
	if dangling := in.PreserveRestart(); len(dangling) != 0 {
		t.Fatalf("clean module reported dangling pointers: %+v", dangling)
	}
	if after := in.PreservedChecksum(); after != before {
		t.Fatalf("preserved checksum changed across restart: %x -> %x", before, after)
	}
	// The surviving heap still works.
	if _, err := in.Call("work", 9); err != nil {
		t.Fatalf("post-restart call failed: %v", err)
	}
}

func TestPreserveRestartDetectsDangling(t *testing.T) {
	m := MustParse(leakySrc)
	in := NewInterp(m)
	if _, err := in.Call("setup"); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Call("leak", 42); err != nil {
		t.Fatal(err)
	}
	// Pre-restart the transient node is alive and readable.
	if v, err := in.Call("read"); err != nil || v != 42 {
		t.Fatalf("pre-restart read = %d, %v", v, err)
	}
	dangling := in.PreserveRestart()
	if len(dangling) != 1 {
		t.Fatalf("audit found %d dangling pointers, want 1: %+v", len(dangling), dangling)
	}
	if dangling[0].Fn != "leak" || dangling[0].Line == 0 {
		t.Fatalf("dangling record lacks talloc site attribution: %+v", dangling[0])
	}
	// Post-restart the dangling pointer faults when chased.
	_, err := in.Call("read")
	var de *ErrDangling
	if !errors.As(err, &de) {
		t.Fatalf("post-restart read = %v, want ErrDangling", err)
	}
	if de.Fn != "read" || de.Pos.Line == 0 {
		t.Fatalf("ErrDangling lacks position: %+v", de)
	}
	// A second restart re-reports the still-dangling word.
	if again := in.PreserveRestart(); len(again) != 1 {
		t.Fatalf("second audit found %d, want 1", len(again))
	}
}

func TestInsertDanglingStore(t *testing.T) {
	m := MustParse(cleanSrc)
	ref, err := FindStore(m, "setup", 0)
	if err != nil {
		t.Fatal(err)
	}
	mut, pos, err := InsertDanglingStore(m, "setup", ref)
	if err != nil {
		t.Fatal(err)
	}
	if pos.IsZero() {
		t.Fatal("mutant position is zero")
	}
	if _, err := mut.Validate(); err != nil {
		t.Fatalf("mutant does not validate: %v", err)
	}
	// Original is untouched.
	if m.String() == mut.String() {
		t.Fatal("mutation did not change the module")
	}
	// Dynamically the mutant dangles: root now points at a talloc'd buffer.
	in := NewInterp(mut)
	if _, err := in.Call("setup"); err != nil {
		t.Fatal(err)
	}
	if dangling := in.PreserveRestart(); len(dangling) == 0 {
		t.Fatal("mutant restart audit found no dangling pointer")
	}
	if _, err := FindStore(m, "setup", 7); err == nil {
		t.Fatal("FindStore accepted out-of-range index")
	}
}
