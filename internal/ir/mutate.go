package ir

import "fmt"

// Seeded-mutant helpers for the phxvet differential campaign: starting from
// a correct module, InsertDanglingStore plants the exact bug class the
// verifier's dangling-reference finding exists for — a preserved word made
// to point into the transient arena — so the campaign can assert the bug is
// flagged statically at the right position AND manifests dynamically.

// FindStore returns the InstrRef of the nth store instruction (0-based, in
// layout order) of fn.
func FindStore(m *Module, fn string, nth int) (InstrRef, error) {
	f, ok := m.Funcs[fn]
	if !ok {
		return InstrRef{}, fmt.Errorf("ir: FindStore: unknown function %q", fn)
	}
	seen := 0
	var found InstrRef
	ok = false
	f.ForEachInstr(func(ref InstrRef, in *Instr) {
		if in.Op != OpStore {
			return
		}
		if seen == nth && !ok {
			found, ok = ref, true
		}
		seen++
	})
	if !ok {
		return InstrRef{}, fmt.Errorf("ir: FindStore: %s has %d store(s), want index %d", fn, seen, nth)
	}
	return found, nil
}

// InsertDanglingStore returns a copy of m in which the store at (fn, ref)
// is immediately followed by a store of a freshly talloc'd buffer to the
// same address — overwriting the just-written preserved word with a pointer
// into the transient arena. The injected instructions carry the original
// store's source position, which is also returned: a verifier that reports
// the planted bug must report it at exactly this position.
func InsertDanglingStore(m *Module, fn string, ref InstrRef) (*Module, Pos, error) {
	nm := m.Clone()
	f, ok := nm.Funcs[fn]
	if !ok {
		return nil, Pos{}, fmt.Errorf("ir: InsertDanglingStore: unknown function %q", fn)
	}
	if ref.Block >= len(f.Blocks) || ref.Index >= len(f.Blocks[ref.Block].Instrs) {
		return nil, Pos{}, fmt.Errorf("ir: InsertDanglingStore: ref out of range")
	}
	b := f.Blocks[ref.Block]
	orig := b.Instrs[ref.Index]
	if orig.Op != OpStore {
		return nil, Pos{}, fmt.Errorf("ir: InsertDanglingStore: instruction at %s b%d:%d is not a store", fn, ref.Block, ref.Index)
	}
	const reg = "__dangle"
	tall := Instr{Op: OpTalloc, Dst: reg, Imm: 16, Pos: orig.Pos}
	dang := Instr{Op: OpStore, A: orig.A, Imm: orig.Imm, Val: reg, Pos: orig.Pos}
	// Insert the dangling store after the original, the talloc before it.
	b.Instrs = insertInstr(b.Instrs, ref.Index+1, dang)
	b.Instrs = insertInstr(b.Instrs, ref.Index, tall)
	return nm, orig.Pos, nil
}

// InsertCrossDomainStore returns a copy of m in which function fn's entry
// block opens with a store of a constant into the named global at the given
// offset — a cross-component write when fn and the global belong to
// different components. The planted instructions carry the position of fn's
// original first instruction (the anchor), which is also returned: a
// verifier that reports the planted bug must report it at exactly this
// position. The offset should name a scalar counter field so the mutant
// perturbs component state without corrupting any pointer chain — the bug
// class is isolation violation, not memory unsafety.
func InsertCrossDomainStore(m *Module, fn, global string, off int64) (*Module, Pos, error) {
	nm := m.Clone()
	f, ok := nm.Funcs[fn]
	if !ok {
		return nil, Pos{}, fmt.Errorf("ir: InsertCrossDomainStore: unknown function %q", fn)
	}
	declared := false
	for _, g := range nm.Globals {
		if g == global {
			declared = true
		}
	}
	if !declared {
		return nil, Pos{}, fmt.Errorf("ir: InsertCrossDomainStore: unknown global %q", global)
	}
	b := f.Entry()
	if b == nil || len(b.Instrs) == 0 {
		return nil, Pos{}, fmt.Errorf("ir: InsertCrossDomainStore: %s has no instructions", fn)
	}
	anchor := b.Instrs[0].Pos
	const reg = "__xd"
	cns := Instr{Op: OpConst, Dst: reg, Imm: 7, Pos: anchor}
	xd := Instr{Op: OpStore, A: global, Imm: off, Val: reg, Pos: anchor}
	b.Instrs = insertInstr(b.Instrs, 0, cns)
	b.Instrs = insertInstr(b.Instrs, 1, xd)
	return nm, anchor, nil
}

// FindAlloc returns the InstrRef of the nth preserved-arena alloc
// instruction (0-based, in layout order) of fn.
func FindAlloc(m *Module, fn string, nth int) (InstrRef, error) {
	f, ok := m.Funcs[fn]
	if !ok {
		return InstrRef{}, fmt.Errorf("ir: FindAlloc: unknown function %q", fn)
	}
	seen := 0
	var found InstrRef
	ok = false
	f.ForEachInstr(func(ref InstrRef, in *Instr) {
		if in.Op != OpAlloc {
			return
		}
		if seen == nth && !ok {
			found, ok = ref, true
		}
		seen++
	})
	if !ok {
		return InstrRef{}, fmt.Errorf("ir: FindAlloc: %s has %d alloc(s), want index %d", fn, seen, nth)
	}
	return found, nil
}

// InsertRewindEscape returns a copy of m in which the preserved-arena alloc
// at (fn, ref) is immediately followed by a talloc'd scratch word holding a
// pointer to the fresh allocation — publishing domain-transient preserved
// state into the transient arena, which a rewind-domain discard cannot
// unwind. The injected instructions carry the original alloc's source
// position, which is also returned: a verifier that reports the planted bug
// must report it at exactly this position, and the interpreter's
// DomainDiscard escape audit reports the unwound span at the same position.
func InsertRewindEscape(m *Module, fn string, ref InstrRef) (*Module, Pos, error) {
	nm := m.Clone()
	f, ok := nm.Funcs[fn]
	if !ok {
		return nil, Pos{}, fmt.Errorf("ir: InsertRewindEscape: unknown function %q", fn)
	}
	if ref.Block >= len(f.Blocks) || ref.Index >= len(f.Blocks[ref.Block].Instrs) {
		return nil, Pos{}, fmt.Errorf("ir: InsertRewindEscape: ref out of range")
	}
	b := f.Blocks[ref.Block]
	orig := b.Instrs[ref.Index]
	if orig.Op != OpAlloc {
		return nil, Pos{}, fmt.Errorf("ir: InsertRewindEscape: instruction at %s b%d:%d is not an alloc", fn, ref.Block, ref.Index)
	}
	const reg = "__rew"
	tall := Instr{Op: OpTalloc, Dst: reg, Imm: 16, Pos: orig.Pos}
	esc := Instr{Op: OpStore, A: reg, Imm: 0, Val: orig.Dst, Pos: orig.Pos}
	// Insert talloc then the escaping store directly after the alloc.
	b.Instrs = insertInstr(b.Instrs, ref.Index+1, tall)
	b.Instrs = insertInstr(b.Instrs, ref.Index+2, esc)
	return nm, orig.Pos, nil
}

func insertInstr(instrs []Instr, i int, in Instr) []Instr {
	instrs = append(instrs, Instr{})
	copy(instrs[i+1:], instrs[i:])
	instrs[i] = in
	return instrs
}
