package ir

import (
	"fmt"
)

// Interp executes IR modules against a flat word-addressed memory. It
// maintains the runtime *state stack* of §3.5: each frame tracks whether the
// function is before (U), inside (M), or past (E) its unsafe region, driven
// by the instrumenter's unsafe_enter/unsafe_exit transitions. At a crash the
// stack answers the recovery condition: is any frame mid-modification?
type Interp struct {
	Mod *Module

	mem     map[int64]int64
	nextPtr int64
	globals map[string]int64 // global name → address of its root cell

	// stack is the live state stack.
	stack []*Frame

	// Steps counts executed instructions (fuel limiting).
	Steps   int
	MaxStep int

	// CrashAtStep, when >0, aborts execution with ErrCrash once Steps
	// reaches it — the §4.4-style random crash point.
	CrashAtStep int

	// Externals maps undeclared callees to Go handlers (the "annotations
	// for library functions" escape hatch).
	Externals map[string]func(args []int64) int64

	// funcIDs assigns each function a stable non-zero id for funcref/icall.
	funcIDs  map[string]int64
	funcByID map[int64]string
}

// FrameState is a function's position relative to its unsafe region.
type FrameState uint8

const (
	// StateU: no modification has happened in this function yet.
	StateU FrameState = iota
	// StateM: inside the modification range.
	StateM
	// StateE: all modifications in this function are complete.
	StateE
)

func (s FrameState) String() string {
	switch s {
	case StateU:
		return "U"
	case StateM:
		return "M"
	case StateE:
		return "E"
	}
	return "?"
}

// Frame is one activation record.
type Frame struct {
	Fn    string
	State FrameState
	regs  map[string]int64
}

// ErrCrash is returned when execution hits the injected crash point.
type ErrCrash struct {
	Fn    string
	Stack []FrameState
}

func (e *ErrCrash) Error() string {
	return fmt.Sprintf("ir: crash injected in %s (stack %v)", e.Fn, e.Stack)
}

// NewInterp builds an interpreter over the module with fresh memory.
// Each declared global gets a root cell initialised to a fresh 64-word
// allocation (a preserved object root).
func NewInterp(m *Module) *Interp {
	in := &Interp{
		Mod:       m,
		mem:       make(map[int64]int64),
		nextPtr:   0x1000,
		globals:   make(map[string]int64),
		MaxStep:   1 << 20,
		Externals: make(map[string]func([]int64) int64),
	}
	for _, g := range m.Globals {
		root := in.alloc(64 * 8)
		in.globals[g] = root
	}
	in.funcIDs = make(map[string]int64)
	in.funcByID = make(map[int64]string)
	for i, name := range m.Order {
		id := int64(i + 1)
		in.funcIDs[name] = id
		in.funcByID[id] = name
	}
	return in
}

func (in *Interp) alloc(n int64) int64 {
	p := in.nextPtr
	in.nextPtr += (n + 15) &^ 15
	return p
}

// Global returns the address bound to a global name.
func (in *Interp) Global(name string) int64 { return in.globals[name] }

// Load reads a memory word (tests and validators).
func (in *Interp) Load(addr int64) int64 { return in.mem[addr] }

// Store writes a memory word.
func (in *Interp) Store(addr, v int64) { in.mem[addr] = v }

// StackStates returns the state-stack snapshot, outermost first.
func (in *Interp) StackStates() []FrameState {
	out := make([]FrameState, len(in.stack))
	for i, f := range in.stack {
		out[i] = f.State
	}
	return out
}

// Safe evaluates the recovery condition on a state-stack snapshot: the
// preserved state is consistent iff no frame was mid-modification (§3.5 —
// "all on the left or on the right of M regions").
func Safe(states []FrameState) bool {
	for _, s := range states {
		if s == StateM {
			return false
		}
	}
	return true
}

// Call runs fn with the given arguments. Globals may be passed by name via
// GlobalArg. It returns the function's return value.
func (in *Interp) Call(fn string, args ...int64) (int64, error) {
	f, ok := in.Mod.Funcs[fn]
	if !ok {
		if ext := in.Externals[fn]; ext != nil {
			return ext(args), nil
		}
		return 0, fmt.Errorf("ir: call to unknown function %q", fn)
	}
	if len(args) != len(f.Params) {
		return 0, fmt.Errorf("ir: %s wants %d args, got %d", fn, len(f.Params), len(args))
	}
	frame := &Frame{Fn: fn, State: StateU, regs: make(map[string]int64)}
	for i, p := range f.Params {
		frame.regs[p] = args[i]
	}
	in.stack = append(in.stack, frame)
	defer func() { in.stack = in.stack[:len(in.stack)-1] }()

	block := f.Entry()
	ii := 0
	for {
		if ii >= len(block.Instrs) {
			return 0, fmt.Errorf("ir: %s: fell off block %s", fn, block.Label)
		}
		instr := &block.Instrs[ii]
		in.Steps++
		if in.Steps > in.MaxStep {
			return 0, fmt.Errorf("ir: fuel exhausted in %s", fn)
		}
		if in.CrashAtStep > 0 && in.Steps >= in.CrashAtStep {
			return 0, &ErrCrash{Fn: fn, Stack: in.StackStates()}
		}
		switch instr.Op {
		case OpConst:
			frame.regs[instr.Dst] = instr.Imm
		case OpBin:
			a, b := in.reg(frame, instr.A), in.reg(frame, instr.B)
			var v int64
			switch instr.Bin {
			case BinAdd:
				v = a + b
			case BinSub:
				v = a - b
			case BinMul:
				v = a * b
			case BinLt:
				if a < b {
					v = 1
				}
			case BinEq:
				if a == b {
					v = 1
				}
			}
			frame.regs[instr.Dst] = v
		case OpAlloc:
			frame.regs[instr.Dst] = in.alloc(instr.Imm)
		case OpLoad:
			frame.regs[instr.Dst] = in.mem[in.reg(frame, instr.A)+instr.Imm]
		case OpStore:
			in.mem[in.reg(frame, instr.A)+instr.Imm] = in.reg(frame, instr.Val)
		case OpGetField:
			frame.regs[instr.Dst] = in.reg(frame, instr.A) + instr.Imm
		case OpCall:
			callArgs := make([]int64, len(instr.Args))
			for i, a := range instr.Args {
				callArgs[i] = in.reg(frame, a)
			}
			ret, err := in.Call(instr.Fn, callArgs...)
			if err != nil {
				return 0, err
			}
			if instr.Dst != "" {
				frame.regs[instr.Dst] = ret
			}
		case OpFuncRef:
			frame.regs[instr.Dst] = in.funcIDs[instr.Fn]
		case OpICall:
			target, ok := in.funcByID[in.reg(frame, instr.Val)]
			if !ok {
				return 0, fmt.Errorf("ir: %s: icall through bogus function pointer", fn)
			}
			callArgs := make([]int64, len(instr.Args))
			for i, a := range instr.Args {
				callArgs[i] = in.reg(frame, a)
			}
			ret, err := in.Call(target, callArgs...)
			if err != nil {
				return 0, err
			}
			if instr.Dst != "" {
				frame.regs[instr.Dst] = ret
			}
		case OpBr:
			block = f.BlockByLabel(instr.L1)
			ii = 0
			continue
		case OpCbr:
			if in.reg(frame, instr.Val) != 0 {
				block = f.BlockByLabel(instr.L1)
			} else {
				block = f.BlockByLabel(instr.L2)
			}
			ii = 0
			continue
		case OpRet:
			if instr.Val == "" {
				return 0, nil
			}
			return in.reg(frame, instr.Val), nil
		case OpUnsafeEnter:
			frame.State = StateM
		case OpUnsafeExit:
			frame.State = StateE
		}
		ii++
	}
}

// reg reads a register, resolving global names to their root addresses.
func (in *Interp) reg(f *Frame, name string) int64 {
	if v, ok := f.regs[name]; ok {
		return v
	}
	if addr, ok := in.globals[name]; ok {
		return addr
	}
	// Numeric literals are permitted as operands.
	var v int64
	if _, err := fmt.Sscanf(name, "%d", &v); err == nil {
		return v
	}
	return 0
}

// MemorySnapshot copies the interpreter's memory (ground-truth comparison in
// IR-level injection experiments).
func (in *Interp) MemorySnapshot() map[int64]int64 {
	out := make(map[int64]int64, len(in.mem))
	for k, v := range in.mem {
		out[k] = v
	}
	return out
}
