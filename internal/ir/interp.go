package ir

import (
	"fmt"
	"sort"
)

// Interp executes IR modules against a flat word-addressed memory. It
// maintains the runtime *state stack* of §3.5: each frame tracks whether the
// function is before (U), inside (M), or past (E) its unsafe region, driven
// by the instrumenter's unsafe_enter/unsafe_exit transitions. At a crash the
// stack answers the recovery condition: is any frame mid-modification?
type Interp struct {
	Mod *Module

	mem      map[int64]int64
	nextPtr  int64
	nextTPtr int64
	globals  map[string]int64 // global name → address of its root cell

	// allocs records every allocation in ascending address order. Preserved-
	// arena allocations (alloc, global roots) survive PreserveRestart;
	// transient ones (talloc) are discarded by it and poisoned: any later
	// load/store into a discarded range faults with ErrDangling.
	allocs []allocSpan

	// stack is the live state stack.
	stack []*Frame

	// domain is the open rewind domain's undo journal, nil when none
	// (rewind.go).
	domain *domainJournal

	// Steps counts executed instructions (fuel limiting).
	Steps   int
	MaxStep int

	// CrashAtStep, when >0, aborts execution with ErrCrash once Steps
	// reaches it — the §4.4-style random crash point.
	CrashAtStep int

	// Externals maps undeclared callees to Go handlers (the "annotations
	// for library functions" escape hatch).
	Externals map[string]func(args []int64) int64

	// funcIDs assigns each function a stable non-zero id for funcref/icall.
	funcIDs  map[string]int64
	funcByID map[int64]string
}

// FrameState is a function's position relative to its unsafe region.
type FrameState uint8

const (
	// StateU: no modification has happened in this function yet.
	StateU FrameState = iota
	// StateM: inside the modification range.
	StateM
	// StateE: all modifications in this function are complete.
	StateE
)

func (s FrameState) String() string {
	switch s {
	case StateU:
		return "U"
	case StateM:
		return "M"
	case StateE:
		return "E"
	}
	return "?"
}

// Frame is one activation record.
type Frame struct {
	Fn    string
	State FrameState
	regs  map[string]int64
}

// ErrCrash is returned when execution hits the injected crash point.
type ErrCrash struct {
	Fn    string
	Stack []FrameState
}

func (e *ErrCrash) Error() string {
	return fmt.Sprintf("ir: crash injected in %s (stack %v)", e.Fn, e.Stack)
}

// allocSpan is one allocation's bookkeeping record.
type allocSpan struct {
	start, size int64
	transient   bool
	discarded   bool
	fn          string // allocating function ("" for global roots)
	pos         Pos    // position of the alloc/talloc instruction
}

// ErrDangling is returned when an instruction dereferences memory that a
// PreserveRestart discarded — the runtime manifestation of a preserved
// pointer left dangling into the transient arena.
type ErrDangling struct {
	Fn   string // function executing the faulting load/store
	Pos  Pos    // position of the faulting instruction
	Addr int64  // discarded address it touched
}

func (e *ErrDangling) Error() string {
	return fmt.Sprintf("ir: %s at %s: access to discarded transient memory 0x%x", e.Fn, e.Pos, e.Addr)
}

// Dangling is one audit record from PreserveRestart: a word of preserved
// memory that points into the transient arena at restart time.
type Dangling struct {
	Addr   int64  `json:"addr"`   // preserved word holding the pointer
	Target int64  `json:"target"` // where it points (inside a transient span)
	Fn     string `json:"fn"`     // function that allocated the transient span
	Line   int    `json:"line"`   // talloc site position
	Col    int    `json:"col"`
}

// NewInterp builds an interpreter over the module with fresh memory.
// Each declared global gets a root cell initialised to a fresh 64-word
// allocation (a preserved object root).
func NewInterp(m *Module) *Interp {
	in := &Interp{
		Mod:       m,
		mem:       make(map[int64]int64),
		nextPtr:   0x1000,
		nextTPtr:  transientBase,
		globals:   make(map[string]int64),
		MaxStep:   1 << 20,
		Externals: make(map[string]func([]int64) int64),
	}
	for _, g := range m.Globals {
		root := in.allocSpanned(64*8, false, "", Pos{})
		in.globals[g] = root
	}
	in.funcIDs = make(map[string]int64)
	in.funcByID = make(map[int64]string)
	for i, name := range m.Order {
		id := int64(i + 1)
		in.funcIDs[name] = id
		in.funcByID[id] = name
	}
	return in
}

// transientBase is the start of the transient arena's address range. It is
// far above anything the preserved arena's bump allocator or the models'
// integer arithmetic can reach, so the restart audit's word scan cannot
// mistake an accumulated preserved integer for a pointer into a talloc span
// (the conservative-GC misidentification problem).
const transientBase = int64(1) << 44

func (in *Interp) alloc(n int64) int64 {
	p := in.nextPtr
	in.nextPtr += (n + 15) &^ 15
	return p
}

// allocSpanned allocates from the arena matching transient and records the
// span, keeping in.allocs sorted by start address (the two bump allocators
// interleave, so append order is not address order).
func (in *Interp) allocSpanned(n int64, transient bool, fn string, pos Pos) int64 {
	rounded := (n + 15) &^ 15
	var p int64
	if transient {
		p = in.nextTPtr
		in.nextTPtr += rounded
	} else {
		p = in.alloc(n)
	}
	span := allocSpan{start: p, size: rounded, transient: transient, fn: fn, pos: pos}
	i := sort.Search(len(in.allocs), func(i int) bool { return in.allocs[i].start > p })
	in.allocs = append(in.allocs, allocSpan{})
	copy(in.allocs[i+1:], in.allocs[i:])
	in.allocs[i] = span
	return p
}

// findSpan locates the allocation containing addr, or -1.
func (in *Interp) findSpan(addr int64) int {
	i := sort.Search(len(in.allocs), func(i int) bool {
		return in.allocs[i].start+in.allocs[i].size > addr
	})
	if i < len(in.allocs) && addr >= in.allocs[i].start {
		return i
	}
	return -1
}

// checkAccess returns an ErrDangling if addr lies inside a discarded
// transient span.
func (in *Interp) checkAccess(addr int64, frame *Frame, instr *Instr) error {
	if i := in.findSpan(addr); i >= 0 && in.allocs[i].discarded {
		return &ErrDangling{Fn: frame.Fn, Pos: instr.Pos, Addr: addr}
	}
	return nil
}

// PreserveRestart models a PHOENIX restart over the interpreter's memory:
// preserved-arena allocations (alloc, global roots) survive in place, the
// transient arena (talloc) is discarded. Before discarding it audits the
// preserved heap — every word of preserved memory reachable from the global
// roots that points into a transient span is reported as a Dangling record,
// the dynamic ground truth phxvet's dangling-reference finding predicts.
// Subsequent access to a discarded span faults with ErrDangling.
func (in *Interp) PreserveRestart() []Dangling {
	var out []Dangling
	// BFS from the global roots over surviving (non-transient) spans.
	visited := make([]bool, len(in.allocs))
	var queue []int
	for _, name := range in.Mod.Globals {
		if i := in.findSpan(in.globals[name]); i >= 0 && !visited[i] {
			visited[i] = true
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		a := in.allocs[i]
		for off := int64(0); off < a.size; off += 8 {
			addr := a.start + off
			v, ok := in.mem[addr]
			if !ok || v == 0 {
				continue
			}
			j := in.findSpan(v)
			if j < 0 {
				continue
			}
			t := in.allocs[j]
			if t.transient {
				out = append(out, Dangling{Addr: addr, Target: v, Fn: t.fn, Line: t.pos.Line, Col: t.pos.Col})
				continue
			}
			if !visited[j] {
				visited[j] = true
				queue = append(queue, j)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].Target < out[j].Target
	})
	// Discard the transient arena: delete its words and poison the spans.
	for i := range in.allocs {
		a := &in.allocs[i]
		if !a.transient || a.discarded {
			continue
		}
		for off := int64(0); off < a.size; off += 8 {
			delete(in.mem, a.start+off)
		}
		a.discarded = true
	}
	return out
}

// PreservedChecksum is an FNV-1a hash over every preserved-arena word in
// address order — the IR-level analogue of the kernel's per-frame integrity
// checksums. It must be invariant across PreserveRestart.
func (in *Interp) PreservedChecksum() uint64 {
	h := uint64(14695981039346656037)
	for _, a := range in.allocs {
		if a.transient || a.discarded {
			continue
		}
		for off := int64(0); off < a.size; off += 8 {
			v := uint64(in.mem[a.start+off])
			for b := 0; b < 8; b++ {
				h ^= v & 0xff
				h *= 1099511628211
				v >>= 8
			}
		}
	}
	return h
}

// Global returns the address bound to a global name.
func (in *Interp) Global(name string) int64 { return in.globals[name] }

// Load reads a memory word (tests and validators).
func (in *Interp) Load(addr int64) int64 { return in.mem[addr] }

// Store writes a memory word.
func (in *Interp) Store(addr, v int64) { in.mem[addr] = v }

// StackStates returns the state-stack snapshot, outermost first.
func (in *Interp) StackStates() []FrameState {
	out := make([]FrameState, len(in.stack))
	for i, f := range in.stack {
		out[i] = f.State
	}
	return out
}

// Safe evaluates the recovery condition on a state-stack snapshot: the
// preserved state is consistent iff no frame was mid-modification (§3.5 —
// "all on the left or on the right of M regions").
func Safe(states []FrameState) bool {
	for _, s := range states {
		if s == StateM {
			return false
		}
	}
	return true
}

// Call runs fn with the given arguments. Globals may be passed by name via
// GlobalArg. It returns the function's return value.
func (in *Interp) Call(fn string, args ...int64) (int64, error) {
	f, ok := in.Mod.Funcs[fn]
	if !ok {
		if ext := in.Externals[fn]; ext != nil {
			return ext(args), nil
		}
		return 0, fmt.Errorf("ir: call to unknown function %q", fn)
	}
	if len(args) != len(f.Params) {
		return 0, fmt.Errorf("ir: %s wants %d args, got %d", fn, len(f.Params), len(args))
	}
	frame := &Frame{Fn: fn, State: StateU, regs: make(map[string]int64)}
	for i, p := range f.Params {
		frame.regs[p] = args[i]
	}
	in.stack = append(in.stack, frame)
	defer func() { in.stack = in.stack[:len(in.stack)-1] }()

	block := f.Entry()
	ii := 0
	for {
		if ii >= len(block.Instrs) {
			return 0, fmt.Errorf("ir: %s: fell off block %s", fn, block.Label)
		}
		instr := &block.Instrs[ii]
		in.Steps++
		if in.Steps > in.MaxStep {
			return 0, fmt.Errorf("ir: fuel exhausted in %s", fn)
		}
		if in.CrashAtStep > 0 && in.Steps >= in.CrashAtStep {
			return 0, &ErrCrash{Fn: fn, Stack: in.StackStates()}
		}
		switch instr.Op {
		case OpConst:
			frame.regs[instr.Dst] = instr.Imm
		case OpBin:
			a, b := in.reg(frame, instr.A), in.reg(frame, instr.B)
			var v int64
			switch instr.Bin {
			case BinAdd:
				v = a + b
			case BinSub:
				v = a - b
			case BinMul:
				v = a * b
			case BinLt:
				if a < b {
					v = 1
				}
			case BinEq:
				if a == b {
					v = 1
				}
			}
			frame.regs[instr.Dst] = v
		case OpAlloc:
			frame.regs[instr.Dst] = in.allocSpanned(instr.Imm, false, fn, instr.Pos)
		case OpTalloc:
			frame.regs[instr.Dst] = in.allocSpanned(instr.Imm, true, fn, instr.Pos)
		case OpLoad:
			addr := in.reg(frame, instr.A) + instr.Imm
			if err := in.checkAccess(addr, frame, instr); err != nil {
				return 0, err
			}
			frame.regs[instr.Dst] = in.mem[addr]
		case OpStore:
			addr := in.reg(frame, instr.A) + instr.Imm
			if err := in.checkAccess(addr, frame, instr); err != nil {
				return 0, err
			}
			in.journalStore(addr)
			in.mem[addr] = in.reg(frame, instr.Val)
		case OpGetField:
			frame.regs[instr.Dst] = in.reg(frame, instr.A) + instr.Imm
		case OpCall:
			callArgs := make([]int64, len(instr.Args))
			for i, a := range instr.Args {
				callArgs[i] = in.reg(frame, a)
			}
			ret, err := in.Call(instr.Fn, callArgs...)
			if err != nil {
				return 0, err
			}
			if instr.Dst != "" {
				frame.regs[instr.Dst] = ret
			}
		case OpFuncRef:
			frame.regs[instr.Dst] = in.funcIDs[instr.Fn]
		case OpICall:
			target, ok := in.funcByID[in.reg(frame, instr.Val)]
			if !ok {
				return 0, fmt.Errorf("ir: %s: icall through bogus function pointer", fn)
			}
			callArgs := make([]int64, len(instr.Args))
			for i, a := range instr.Args {
				callArgs[i] = in.reg(frame, a)
			}
			ret, err := in.Call(target, callArgs...)
			if err != nil {
				return 0, err
			}
			if instr.Dst != "" {
				frame.regs[instr.Dst] = ret
			}
		case OpBr:
			block = f.BlockByLabel(instr.L1)
			ii = 0
			continue
		case OpCbr:
			if in.reg(frame, instr.Val) != 0 {
				block = f.BlockByLabel(instr.L1)
			} else {
				block = f.BlockByLabel(instr.L2)
			}
			ii = 0
			continue
		case OpRet:
			if instr.Val == "" {
				return 0, nil
			}
			return in.reg(frame, instr.Val), nil
		case OpUnsafeEnter:
			frame.State = StateM
		case OpUnsafeExit:
			frame.State = StateE
		}
		ii++
	}
}

// reg reads a register, resolving global names to their root addresses.
func (in *Interp) reg(f *Frame, name string) int64 {
	if v, ok := f.regs[name]; ok {
		return v
	}
	if addr, ok := in.globals[name]; ok {
		return addr
	}
	// Numeric literals are permitted as operands.
	var v int64
	if _, err := fmt.Sscanf(name, "%d", &v); err == nil {
		return v
	}
	return 0
}

// MemorySnapshot copies the interpreter's memory (ground-truth comparison in
// IR-level injection experiments).
func (in *Interp) MemorySnapshot() map[int64]int64 {
	out := make(map[int64]int64, len(in.mem))
	for k, v := range in.mem {
		out[k] = v
	}
	return out
}
