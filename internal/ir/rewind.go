package ir

import (
	"fmt"
	"sort"
)

// Per-request rewind domains at the IR level, mirroring the runtime's
// CoW undo log (mem.BeginDomain / kernel.DomainBegin): a domain brackets one
// serving-entry invocation, journalling every write to the *preserved* arena
// so a discard can restore it byte-exactly, and rolling back preserved
// allocations made inside the bracket.
//
// Crucially — and this is what makes the rewind-escape bug class expressible
// — the transient arena is NOT covered by the journal. At the IR level the
// transient arena models the state that lives outside the simulated address
// space in the real system (Go-side handles, the WAL on the simulated disk):
// state a domain discard cannot rewind. A request that publishes a pointer to
// domain-created preserved state into transient state therefore leaves, after
// a discard, a live word aiming into unwound heap — exactly the bug class the
// lsmdb RewindObserver papered over dynamically in the concurrent-serving PR,
// and the dynamic ground truth for phxvet's rewind-escape finding.

// RewindEscape is one audit record from DomainDiscard: a word of transient
// (domain-surviving) memory that points into a preserved span the discard is
// about to unwind.
type RewindEscape struct {
	Addr   int64  `json:"addr"`   // transient word holding the pointer
	Target int64  `json:"target"` // where it points (inside a domain-created preserved span)
	Fn     string `json:"fn"`     // function that allocated the unwound span
	Line   int    `json:"line"`   // alloc site position
	Col    int    `json:"col"`
}

// domainJournal is one open rewind domain's undo state.
type domainJournal struct {
	// words maps each preserved address written inside the domain to its
	// pre-domain value; present records whether the word existed at all (the
	// interpreter's memory is sparse, so "absent" and "zero" differ for the
	// restore).
	words   map[int64]int64
	present map[int64]bool
	// allocWatermark is nextPtr at DomainBegin: preserved spans with
	// start >= allocWatermark were created inside the domain and are unwound
	// (poisoned) by a discard.
	allocWatermark int64
}

// DomainBegin opens a rewind domain. Domains do not nest — the runtime's
// per-request bracket is flat — so opening a second one is an error.
func (in *Interp) DomainBegin() error {
	if in.domain != nil {
		return fmt.Errorf("ir: DomainBegin: a rewind domain is already open")
	}
	in.domain = &domainJournal{
		words:          make(map[int64]int64),
		present:        make(map[int64]bool),
		allocWatermark: in.nextPtr,
	}
	return nil
}

// DomainOpen reports whether a rewind domain is currently open.
func (in *Interp) DomainOpen() bool { return in.domain != nil }

// journalStore records the pre-write state of a preserved word, first write
// wins. Transient-arena words are deliberately not journalled (see the file
// comment).
func (in *Interp) journalStore(addr int64) {
	if in.domain == nil || addr >= transientBase {
		return
	}
	if _, seen := in.domain.present[addr]; seen {
		return
	}
	v, ok := in.mem[addr]
	in.domain.present[addr] = ok
	if ok {
		in.domain.words[addr] = v
	}
}

// DomainCommit closes the open domain keeping every effect, like the
// runtime's CommitDomain.
func (in *Interp) DomainCommit() error {
	if in.domain == nil {
		return fmt.Errorf("ir: DomainCommit: no open rewind domain")
	}
	in.domain = nil
	return nil
}

// DomainDiscard rolls the open domain back: preserved words are restored to
// their pre-domain values and preserved spans allocated inside the domain are
// poisoned (subsequent access faults with ErrDangling, like discarded
// transient spans after a PreserveRestart). Before unwinding it audits the
// transient arena — every live transient word pointing into a span the
// discard is about to unwind is returned as a RewindEscape, in deterministic
// (Addr, Target) order.
func (in *Interp) DomainDiscard() ([]RewindEscape, error) {
	d := in.domain
	if d == nil {
		return nil, fmt.Errorf("ir: DomainDiscard: no open rewind domain")
	}
	in.domain = nil

	// Audit first, while the domain's stores are still visible: scan every
	// live transient span's words for pointers into domain-created preserved
	// spans.
	var out []RewindEscape
	for _, a := range in.allocs {
		if !a.transient || a.discarded {
			continue
		}
		for off := int64(0); off < a.size; off += 8 {
			addr := a.start + off
			v, ok := in.mem[addr]
			if !ok || v == 0 {
				continue
			}
			j := in.findSpan(v)
			if j < 0 {
				continue
			}
			t := in.allocs[j]
			if !t.transient && !t.discarded && t.start >= d.allocWatermark {
				out = append(out, RewindEscape{Addr: addr, Target: v, Fn: t.fn, Line: t.pos.Line, Col: t.pos.Col})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].Target < out[j].Target
	})

	// Restore journalled preserved words.
	for addr, was := range d.present {
		if was {
			in.mem[addr] = d.words[addr]
		} else {
			delete(in.mem, addr)
		}
	}
	// Poison preserved spans created inside the domain: delete their words
	// and mark them discarded so any surviving pointer faults on use.
	for i := range in.allocs {
		a := &in.allocs[i]
		if a.transient || a.discarded || a.start < d.allocWatermark {
			continue
		}
		for off := int64(0); off < a.size; off += 8 {
			delete(in.mem, a.start+off)
		}
		a.discarded = true
	}
	return out, nil
}
