package recovery

import (
	"fmt"
	"time"
)

// This file implements the recovery supervision layer: a crash-loop breaker
// over a sliding window of restart history and the escalation ladder
// PHOENIX → builtin → vanilla. The paper's §3.2 second-failure rule bounds
// exactly one bad PHOENIX attempt; a latent bug that re-crashes *after* each
// grace window would re-enter PHOENIX recovery forever. The supervisor bounds
// that pathology the way Microreboot's recursive recovery does: when one
// level of recovery stops working, escalate to a stronger (and more lossy)
// one, back off exponentially between attempts, and return to the cheapest
// level once the system has proven stable again.
//
// The supervisor is a pure state machine over simulated timestamps: the
// driver feeds it crash and serving instants from simclock, so every breaker
// and backoff decision is deterministic and wall-clock-free.

// Level is a rung of the escalation ladder, ordered cheapest-first. The two
// sub-process rungs sit below zero so LevelPhoenix keeps its zero value:
// existing zero-valued Decisions, outcomes, and configs still mean "process
// PHOENIX", and only harnesses that opt in via SupervisorConfig.Floor start
// below it.
const (
	// LevelRewind discards the faulting request's rewind domain in-process:
	// no restart at all, just a byte-exact rollback of the request's writes.
	LevelRewind Level = iota - 2
	// LevelMicroreboot discards and reinitialises one component's transient
	// state (dependents cascade along the component graph) while the process
	// keeps its address space.
	LevelMicroreboot
	// LevelPhoenix attempts partial-state-preserving restarts.
	LevelPhoenix
	// LevelBuiltin abandons preservation and restarts into the
	// application's own persistence (RDB/WAL-style default recovery).
	LevelBuiltin
	// LevelVanilla restarts with persistence disabled too: the deepest
	// rung, for when even the builtin recovery state is suspect.
	LevelVanilla
)

type Level int

func (l Level) String() string {
	switch l {
	case LevelRewind:
		return "rewind"
	case LevelMicroreboot:
		return "microreboot"
	case LevelPhoenix:
		return "phoenix"
	case LevelBuiltin:
		return "builtin"
	case LevelVanilla:
		return "vanilla"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// SupervisorConfig parameterises the breaker and ladder.
type SupervisorConfig struct {
	// BreakerK is how many restarts within Window trip the breaker and
	// escalate one level (default 3).
	BreakerK int
	// Window is the sliding restart-history window W (default 60s of
	// simulated time).
	Window time.Duration
	// BackoffBase is the hold-down before the first retry of an episode;
	// it doubles per consecutive crash up to BackoffMax (defaults 250ms and
	// 8s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// StablePeriod is how long the system must serve without crashing
	// before the supervisor de-escalates one level and resets the backoff
	// (default 30s).
	StablePeriod time.Duration
	// RetryBudget bounds consecutive restarts without an intervening stable
	// period; exceeding it makes OnCrash report exhaustion, and the driver
	// surfaces a terminal error instead of looping forever (default 16).
	RetryBudget int
	// Floor is the cheapest rung the ladder starts at and de-escalates back
	// to. The zero value is LevelPhoenix — the pre-component behaviour — so
	// only harnesses whose app declares a component graph (and, for
	// LevelRewind, routes requests through rewind domains) opt into the
	// sub-process rungs.
	Floor Level
}

func (c *SupervisorConfig) fill() {
	if c.BreakerK == 0 {
		c.BreakerK = 3
	}
	if c.Window == 0 {
		c.Window = 60 * time.Second
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 250 * time.Millisecond
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = 8 * time.Second
	}
	if c.StablePeriod == 0 {
		c.StablePeriod = 30 * time.Second
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 16
	}
}

// Validate rejects nonsensical supervisor parameters.
func (c SupervisorConfig) Validate() error {
	if c.BreakerK < 0 {
		return fmt.Errorf("BreakerK %d is negative", c.BreakerK)
	}
	if c.BreakerK == 1 {
		return fmt.Errorf("BreakerK 1 escalates on every crash; use at least 2 (or 0 for the default)")
	}
	if c.Window < 0 || c.BackoffBase < 0 || c.BackoffMax < 0 || c.StablePeriod < 0 {
		return fmt.Errorf("negative duration (window %v, backoff %v..%v, stable %v)",
			c.Window, c.BackoffBase, c.BackoffMax, c.StablePeriod)
	}
	if c.BackoffBase != 0 && c.BackoffMax != 0 && c.BackoffMax < c.BackoffBase {
		return fmt.Errorf("BackoffMax %v below BackoffBase %v", c.BackoffMax, c.BackoffBase)
	}
	if c.RetryBudget < 0 {
		return fmt.Errorf("RetryBudget %d is negative", c.RetryBudget)
	}
	if c.Floor < LevelRewind || c.Floor > LevelVanilla {
		return fmt.Errorf("Floor %d is not a ladder rung", int(c.Floor))
	}
	return nil
}

// Decision is what the supervisor tells the driver to do with one crash.
type Decision struct {
	// Level is the rung the coming restart must use (post-escalation).
	Level Level
	// Backoff is how long to hold the restart (simulated time).
	Backoff time.Duration
	// Tripped reports the breaker fired on this crash (Level just moved
	// down the ladder).
	Tripped bool
	// Exhausted reports the retry budget is spent; the driver must stop
	// instead of restarting again.
	Exhausted bool
}

// Supervisor is the per-harness escalation state machine.
type Supervisor struct {
	cfg   SupervisorConfig
	level Level
	// window holds the crash instants inside the sliding window at the
	// current level; it is cleared on every level change so each rung gets a
	// fresh breaker count.
	window []time.Duration
	// consec counts crashes since the last stable period; it drives the
	// exponential backoff and the retry budget.
	consec    int
	lastCrash time.Duration
	everCrash bool
}

// NewSupervisor builds a supervisor starting at the configured Floor
// (LevelPhoenix by default). Zero config fields take the documented defaults.
func NewSupervisor(cfg SupervisorConfig) *Supervisor {
	cfg.fill()
	return &Supervisor{cfg: cfg, level: cfg.Floor}
}

// Level returns the current ladder rung.
func (s *Supervisor) Level() Level { return s.level }

// ConsecutiveCrashes returns the crashes seen since the last stable period.
func (s *Supervisor) ConsecutiveCrashes() int { return s.consec }

// OnCrash records a crash at the simulated instant now and decides how the
// coming restart must run: at which ladder rung, after how much backoff, and
// whether the retry budget is exhausted.
func (s *Supervisor) OnCrash(now time.Duration) Decision {
	s.consec++
	s.lastCrash = now
	s.everCrash = true
	if s.consec > s.cfg.RetryBudget {
		return Decision{Level: s.level, Exhausted: true}
	}

	// Slide the window, then count this crash.
	kept := s.window[:0]
	for _, t := range s.window {
		if now-t < s.cfg.Window {
			kept = append(kept, t)
		}
	}
	s.window = append(kept, now)

	d := Decision{Level: s.level}
	if len(s.window) >= s.cfg.BreakerK && s.level < LevelVanilla {
		s.level++
		s.window = s.window[:0]
		d.Level = s.level
		d.Tripped = true
	}

	// Exponential backoff: Base doubled per consecutive crash, capped.
	b := s.cfg.BackoffBase
	for i := 1; i < s.consec && b < s.cfg.BackoffMax; i++ {
		b *= 2
	}
	if b > s.cfg.BackoffMax {
		b = s.cfg.BackoffMax
	}
	d.Backoff = b
	return d
}

// NoteServing tells the supervisor the system answered a request at the
// simulated instant now. Once a full StablePeriod has passed since the last
// crash, the backoff and breaker history reset and — if the ladder is below
// the floor — the level steps back up one rung. Each further rung requires
// another full stable period, so a flapping system climbs back slowly.
func (s *Supervisor) NoteServing(now time.Duration) (deescalated bool, to Level) {
	if !s.everCrash || now-s.lastCrash < s.cfg.StablePeriod {
		return false, s.level
	}
	s.consec = 0
	s.window = s.window[:0]
	if s.level > s.cfg.Floor {
		s.level--
		// Restart the stability clock for the next rung.
		s.lastCrash = now
		return true, s.level
	}
	s.everCrash = false
	return false, s.level
}
