package recovery

import (
	"fmt"

	"phoenix/internal/core"
	"phoenix/internal/faultinject"
	"phoenix/internal/kernel"
	"phoenix/internal/mem"
	"phoenix/internal/workload"
)

// This file implements the crash-consistency checker for preserve_exec: it
// replays one deterministic workload-plus-crash sequence many times, arming a
// different recovery-path fault each time, and requires every survivor's
// logical state (App.Dump) to equal either the fully-preserved reference or
// the default-recovery reference — never a torn hybrid. Because an aborted
// preserve charges no simulated time and every run reuses the same machine
// seed, the probe runs are clock-identical replays of the references up to
// the moment the fault strikes.

// Probe names one recovery-path fault to inject: the site to arm and how
// many executions of that site to let pass before it fires (ArmAfter).
type Probe struct {
	Site string `json:"site"`
	Skip int    `json:"skip"`
}

func (p Probe) String() string { return fmt.Sprintf("%s+%d", p.Site, p.Skip) }

// DefaultProbes covers every recovery injection point, striking the move and
// copy sites at several depths so mid-commit rollback is exercised, not just
// first-operation failure. The corrupt probes are Byzantine: instead of
// failing an operation they silently flip a bit in a preserved frame, and the
// integrity checksums must catch it.
func DefaultProbes() []Probe {
	return []Probe{
		{Site: faultinject.SitePreservePlan},
		{Site: faultinject.SitePreserveMove},
		{Site: faultinject.SitePreserveMove, Skip: 1},
		{Site: faultinject.SitePreserveMove, Skip: 3},
		{Site: faultinject.SitePreserveCopy},
		{Site: faultinject.SitePreserveCopy, Skip: 1},
		{Site: faultinject.SitePreserveLoad},
		{Site: faultinject.SitePreserveCorrupt},
		{Site: faultinject.SitePreserveCorrupt, Skip: 2},
	}
}

// armFault arms pr's site with the fault type that site fires: corruption
// sites flip bits, operation sites fail.
func armFault(inj *faultinject.Injector, pr Probe) {
	typ := faultinject.OpFailure
	if pr.Site == faultinject.SitePreserveCorrupt {
		typ = faultinject.BitFlip
	}
	inj.ArmAfter(pr.Site, typ, pr.Skip)
	inj.Enable()
}

// AppFactory builds a fresh application and workload generator bound to the
// given injector. The checker constructs everything anew for every run so
// each is a byte-for-byte deterministic replay of the others.
type AppFactory func(inj *faultinject.Injector) (App, workload.Generator)

// AtomicityConfig parameterises CheckAtomicity.
type AtomicityConfig struct {
	// Seed is the machine seed shared by every run.
	Seed int64
	// Warm is how many requests to serve before the synthetic crash
	// (default 50).
	Warm int
	// Settle is how many requests to serve after recovery, proving the
	// survivor still works.
	Settle int
	// Probes defaults to DefaultProbes.
	Probes []Probe
	// Harness overrides harness options (Mode is forced to ModePhoenix).
	Harness Config
}

// ProbeOutcome records how one probe run ended.
type ProbeOutcome struct {
	Probe Probe `json:"probe"`
	// Fired reports the armed fault actually struck (a probe deeper than the
	// app's plan — e.g. the 4th move of a 2-range plan — never fires).
	Fired bool `json:"fired"`
	// Fallback reports the harness counted a recovery-fault or integrity
	// fallback.
	Fallback bool `json:"fallback"`
	// MatchedPreserve / MatchedFallback report which reference dump the
	// surviving state equalled.
	MatchedPreserve bool `json:"matched_preserve"`
	MatchedFallback bool `json:"matched_fallback"`
}

// crashAddr is an address no layout maps: far above every image (which sit
// near the builder bases) and far below the ASLR slide floor (1<<45).
const crashAddr = mem.VAddr(0x2_0000_0000)

// CheckAtomicity runs the crash-consistency protocol for one application.
// It returns the per-probe outcomes and the first violation found:
// a simulator error escaping recovery, a fired fault without a counted
// fallback, or — the property under test — a survivor whose state is torn.
func CheckAtomicity(mk AppFactory, cfg AtomicityConfig) ([]ProbeOutcome, error) {
	if cfg.Probes == nil {
		cfg.Probes = DefaultProbes()
	}
	if cfg.Warm <= 0 {
		cfg.Warm = 50
	}

	runOnce := func(arm *Probe) (core.StateDump, *Harness, error) {
		m := kernel.NewMachine(cfg.Seed)
		inj := faultinject.New()
		app, gen := mk(inj)
		hcfg := cfg.Harness
		hcfg.Mode = ModePhoenix
		h := NewHarness(m, hcfg, app, gen, inj)
		if err := h.Boot(); err != nil {
			return nil, nil, err
		}
		if err := h.RunRequests(cfg.Warm); err != nil {
			return nil, nil, err
		}
		if arm != nil {
			armFault(inj, *arm)
		}
		ci := h.Proc().Run(func() { h.Proc().AS.ReadU64(crashAddr) })
		if ci == nil {
			return nil, nil, fmt.Errorf("synthetic crash did not register")
		}
		if err := h.HandleFailureForREPL(ci); err != nil {
			return nil, nil, fmt.Errorf("recovery surfaced a simulator error: %w", err)
		}
		if err := h.RunRequests(cfg.Settle); err != nil {
			return nil, nil, err
		}
		return h.App.Dump(), h, nil
	}

	// Reference A — no fault: the fully-preserved trajectory.
	preserveDump, hA, err := runOnce(nil)
	if err != nil {
		return nil, fmt.Errorf("preserve reference: %w", err)
	}
	if hA.Stat.PhoenixRestarts != 1 {
		return nil, fmt.Errorf("preserve reference did not PHOENIX-restart: %+v", hA.Stat)
	}
	// Reference B — crash between plan and commit: nothing transferred, so
	// the fallback runs the application's default recovery from scratch.
	fallbackDump, hB, err := runOnce(&Probe{Site: faultinject.SitePreservePlan})
	if err != nil {
		return nil, fmt.Errorf("fallback reference: %w", err)
	}
	if hB.Stat.RecoveryFaultFallbacks != 1 {
		return nil, fmt.Errorf("fallback reference took no recovery-fault fallback: %+v", hB.Stat)
	}

	outcomes := make([]ProbeOutcome, 0, len(cfg.Probes))
	for _, pr := range cfg.Probes {
		pr := pr
		dump, h, err := runOnce(&pr)
		if err != nil {
			return outcomes, fmt.Errorf("probe %s: %w", pr, err)
		}
		out := ProbeOutcome{
			Probe:           pr,
			Fired:           h.Inj.Fired(pr.Site),
			Fallback:        h.Stat.RecoveryFaultFallbacks+h.Stat.IntegrityFallbacks > 0,
			MatchedPreserve: dumpsEqual(dump, preserveDump),
			MatchedFallback: dumpsEqual(dump, fallbackDump),
		}
		outcomes = append(outcomes, out)
		switch {
		case !out.MatchedPreserve && !out.MatchedFallback:
			return outcomes, fmt.Errorf("probe %s: torn state — survivor matches neither reference (%s)",
				pr, diffSummary(dump, preserveDump, fallbackDump))
		case out.Fired && !out.Fallback:
			return outcomes, fmt.Errorf("probe %s: fault fired but no recovery-fault fallback counted (%+v)",
				pr, h.Stat)
		case out.Fired && h.M.Counters.PreservesAborted.Load() == 0:
			return outcomes, fmt.Errorf("probe %s: fault fired but no aborted preserve counted (%s)",
				pr, h.M.Counters)
		case !out.Fired && (out.Fallback || !out.MatchedPreserve):
			return outcomes, fmt.Errorf("probe %s: fault never fired yet the run diverged from the preserve reference (%+v)",
				pr, h.Stat)
		}
	}
	return outcomes, nil
}

func dumpsEqual(a, b core.StateDump) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// diffSummary condenses how a torn dump differs from each reference.
func diffSummary(got, preserve, fallback core.StateDump) string {
	count := func(ref core.StateDump) int {
		n := 0
		for k, v := range got {
			if ref[k] != v {
				n++
			}
		}
		for k := range ref {
			if _, ok := got[k]; !ok {
				n++
			}
		}
		return n
	}
	return fmt.Sprintf("%d keys; %d differ from preserve ref (%d keys), %d from fallback ref (%d keys)",
		len(got), count(preserve), len(preserve), count(fallback), len(fallback))
}
