package recovery

import (
	"testing"
	"time"
)

// TestSupervisorStateMachine drives the breaker/ladder through scripted
// crash-and-serve traces. Every instant is an explicit simulated timestamp,
// so the tables double as the state machine's specification.
func TestSupervisorStateMachine(t *testing.T) {
	sec := func(n int) time.Duration { return time.Duration(n) * time.Second }
	type step struct {
		at    time.Duration
		serve bool // false = crash
		// expectations after the step:
		level     Level
		tripped   bool
		exhausted bool
		backoff   time.Duration // checked only for crashes
		deesc     bool          // checked only for serves
	}
	cfg := SupervisorConfig{
		BreakerK: 3, Window: sec(60),
		BackoffBase: sec(1), BackoffMax: sec(8),
		StablePeriod: sec(30), RetryBudget: 10,
	}
	for _, tc := range []struct {
		name  string
		cfg   SupervisorConfig
		steps []step
	}{
		{
			name: "breaker trips on the Kth crash inside the window",
			cfg:  cfg,
			steps: []step{
				{at: sec(0), level: LevelPhoenix, backoff: sec(1)},
				{at: sec(5), level: LevelPhoenix, backoff: sec(2)},
				{at: sec(10), level: LevelBuiltin, tripped: true, backoff: sec(4)},
			},
		},
		{
			name: "crashes outside the window never accumulate",
			cfg:  cfg,
			steps: []step{
				{at: sec(0), level: LevelPhoenix, backoff: sec(1)},
				{at: sec(70), level: LevelPhoenix, backoff: sec(2)},
				{at: sec(140), level: LevelPhoenix, backoff: sec(4)},
				{at: sec(210), level: LevelPhoenix, backoff: sec(8)},
			},
		},
		{
			name: "full ladder: each rung gets a fresh window, vanilla is the floor",
			cfg:  cfg,
			steps: []step{
				{at: sec(0), level: LevelPhoenix, backoff: sec(1)},
				{at: sec(1), level: LevelPhoenix, backoff: sec(2)},
				{at: sec(2), level: LevelBuiltin, tripped: true, backoff: sec(4)},
				// The trip cleared the window: builtin needs K fresh crashes.
				{at: sec(3), level: LevelBuiltin, backoff: sec(8)},
				{at: sec(4), level: LevelBuiltin, backoff: sec(8)},
				{at: sec(5), level: LevelVanilla, tripped: true, backoff: sec(8)},
				// At the floor the breaker has nowhere to go: no more trips.
				{at: sec(6), level: LevelVanilla, backoff: sec(8)},
			},
		},
		{
			name: "backoff caps at BackoffMax and resets after a stable period",
			cfg:  cfg,
			steps: []step{
				{at: sec(0), level: LevelPhoenix, backoff: sec(1)},
				{at: sec(61), level: LevelPhoenix, backoff: sec(2)},
				{at: sec(122), level: LevelPhoenix, backoff: sec(4)},
				{at: sec(183), level: LevelPhoenix, backoff: sec(8)},
				{at: sec(244), level: LevelPhoenix, backoff: sec(8)}, // capped
				{at: sec(280), serve: true, level: LevelPhoenix},     // stable: resets consec
				{at: sec(300), level: LevelPhoenix, backoff: sec(1)}, // backoff restarts
			},
		},
		{
			name: "retry budget exhausts instead of looping",
			cfg:  SupervisorConfig{BreakerK: 100, Window: sec(60), BackoffBase: sec(1), BackoffMax: sec(1), StablePeriod: sec(30), RetryBudget: 3},
			steps: []step{
				{at: sec(0), level: LevelPhoenix, backoff: sec(1)},
				{at: sec(1), level: LevelPhoenix, backoff: sec(1)},
				{at: sec(2), level: LevelPhoenix, backoff: sec(1)},
				{at: sec(3), level: LevelPhoenix, exhausted: true},
			},
		},
		{
			name: "de-escalation walks back one rung per stable period",
			cfg:  cfg,
			steps: []step{
				{at: sec(0), level: LevelPhoenix, backoff: sec(1)},
				{at: sec(1), level: LevelPhoenix, backoff: sec(2)},
				{at: sec(2), level: LevelBuiltin, tripped: true, backoff: sec(4)},
				{at: sec(3), level: LevelBuiltin, backoff: sec(8)},
				{at: sec(4), level: LevelBuiltin, backoff: sec(8)},
				{at: sec(5), level: LevelVanilla, tripped: true, backoff: sec(8)},
				// Serving before the stable period elapses changes nothing.
				{at: sec(20), serve: true, level: LevelVanilla},
				// One stable period: vanilla → builtin, and the stability
				// clock restarts — serving right after must not skip a rung.
				{at: sec(35), serve: true, level: LevelBuiltin, deesc: true},
				{at: sec(36), serve: true, level: LevelBuiltin},
				// Another full period: builtin → phoenix.
				{at: sec(66), serve: true, level: LevelPhoenix, deesc: true},
				{at: sec(100), serve: true, level: LevelPhoenix},
			},
		},
		{
			name: "crash during climb-back restarts the breaker at the current rung",
			cfg:  cfg,
			steps: []step{
				{at: sec(0), level: LevelPhoenix, backoff: sec(1)},
				{at: sec(1), level: LevelPhoenix, backoff: sec(2)},
				{at: sec(2), level: LevelBuiltin, tripped: true, backoff: sec(4)},
				{at: sec(35), serve: true, level: LevelPhoenix, deesc: true},
				// New episode: consec reset, fresh window at phoenix.
				{at: sec(40), level: LevelPhoenix, backoff: sec(1)},
				{at: sec(41), level: LevelPhoenix, backoff: sec(2)},
				{at: sec(42), level: LevelBuiltin, tripped: true, backoff: sec(4)},
			},
		},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s := NewSupervisor(tc.cfg)
			for i, st := range tc.steps {
				if st.serve {
					de, to := s.NoteServing(st.at)
					if de != st.deesc || to != st.level {
						t.Fatalf("step %d (serve@%v): deesc=%v to=%v, want deesc=%v level=%v",
							i, st.at, de, to, st.deesc, st.level)
					}
					continue
				}
				d := s.OnCrash(st.at)
				if d.Exhausted != st.exhausted {
					t.Fatalf("step %d (crash@%v): exhausted=%v, want %v", i, st.at, d.Exhausted, st.exhausted)
				}
				if st.exhausted {
					continue
				}
				if d.Level != st.level || d.Tripped != st.tripped || d.Backoff != st.backoff {
					t.Fatalf("step %d (crash@%v): level=%v tripped=%v backoff=%v, want level=%v tripped=%v backoff=%v",
						i, st.at, d.Level, d.Tripped, d.Backoff, st.level, st.tripped, st.backoff)
				}
				if s.Level() != st.level {
					t.Fatalf("step %d: Level() = %v, want %v", i, s.Level(), st.level)
				}
			}
		})
	}
}

// TestSupervisorDefaults checks zero-config fill and that replaying the same
// trace twice is bit-identical (determinism is what lets campaigns replay).
func TestSupervisorDefaults(t *testing.T) {
	run := func() []Decision {
		s := NewSupervisor(SupervisorConfig{})
		var ds []Decision
		for i := 0; i < 8; i++ {
			ds = append(ds, s.OnCrash(time.Duration(i)*5*time.Second))
		}
		return ds
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at crash %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Defaults: K=3 so the third crash trips, base 250ms doubling.
	if !a[2].Tripped || a[2].Level != LevelBuiltin {
		t.Fatalf("default breaker did not trip on 3rd crash: %+v", a[2])
	}
	if a[0].Backoff != 250*time.Millisecond || a[1].Backoff != 500*time.Millisecond {
		t.Fatalf("default backoff wrong: %+v %+v", a[0], a[1])
	}
	for _, d := range a {
		if d.Backoff > 8*time.Second {
			t.Fatalf("backoff exceeded default cap: %+v", d)
		}
		if d.Exhausted {
			t.Fatalf("default budget exhausted within 8 crashes: %+v", d)
		}
	}
}

func TestSupervisorConfigValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  SupervisorConfig
		ok   bool
	}{
		{"zero value is fine (defaults)", SupervisorConfig{}, true},
		{"explicit sane config", SupervisorConfig{BreakerK: 2, Window: time.Minute, BackoffBase: time.Second, BackoffMax: 4 * time.Second, StablePeriod: time.Minute, RetryBudget: 8}, true},
		{"negative K", SupervisorConfig{BreakerK: -1}, false},
		{"K of one trips every crash", SupervisorConfig{BreakerK: 1}, false},
		{"negative window", SupervisorConfig{Window: -time.Second}, false},
		{"negative backoff", SupervisorConfig{BackoffBase: -time.Second}, false},
		{"max below base", SupervisorConfig{BackoffBase: 5 * time.Second, BackoffMax: time.Second}, false},
		{"negative stable period", SupervisorConfig{StablePeriod: -time.Minute}, false},
		{"negative budget", SupervisorConfig{RetryBudget: -2}, false},
	} {
		if err := tc.cfg.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero value", Config{}, true},
		{"plain phoenix", Config{Mode: ModePhoenix}, true},
		{"phoenix with everything", Config{Mode: ModePhoenix, UnsafeRegions: true, CrossCheck: true, Supervise: true, DisableChecksums: true}, true},
		{"unsafe regions without phoenix", Config{Mode: ModeBuiltin, UnsafeRegions: true}, false},
		{"cross-check without phoenix", Config{Mode: ModeVanilla, CrossCheck: true}, false},
		{"checksum toggle without phoenix", Config{Mode: ModeCRIU, DisableChecksums: true}, false},
		{"supervise without phoenix", Config{Mode: ModeBuiltin, Supervise: true}, false},
		{"negative checkpoint interval", Config{Mode: ModeBuiltin, CheckpointInterval: -time.Second}, false},
		{"negative watchdog", Config{Mode: ModePhoenix, WatchdogTimeout: -time.Second}, false},
		{"negative bucket", Config{Mode: ModePhoenix, Bucket: -time.Millisecond}, false},
		{"invalid mode", Config{Mode: Mode(42)}, false},
		{"bad supervisor config surfaces", Config{Mode: ModePhoenix, Supervise: true, Supervisor: SupervisorConfig{BreakerK: 1}}, false},
		{"bad supervisor config ignored when not supervising", Config{Mode: ModePhoenix, Supervisor: SupervisorConfig{BreakerK: 1}}, true},
	} {
		if err := tc.cfg.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// TestDriverEscalationLadder drives a supervised harness through the full
// ladder with the toy app: PHOENIX restart, trip to builtin, trip to
// vanilla (persistence forced off), stable-period walk back to PHOENIX
// (persistence restored), and a final clean PHOENIX recovery. Backoff is
// asserted to the exact simulated duration — everything flows through
// simclock, so the trace is deterministic.
func TestDriverEscalationLadder(t *testing.T) {
	h, app := harness(t, Config{
		Mode: ModePhoenix, Supervise: true,
		Supervisor: SupervisorConfig{
			BreakerK: 2, Window: time.Hour,
			BackoffBase: 50 * time.Millisecond, BackoffMax: time.Second,
			StablePeriod: 10 * time.Second, RetryBudget: 10,
		},
	})
	h.RunRequests(30)

	crash := func() {
		app.crashNext = "segv"
		if err := h.RunRequests(5); err != nil {
			t.Fatal(err)
		}
	}

	crash() // #1: recovers via PHOENIX
	if h.EscalationLevel() != LevelPhoenix || h.Stat.PhoenixRestarts != 1 {
		t.Fatalf("after crash 1: level=%v stats=%+v", h.EscalationLevel(), h.Stat)
	}
	crash() // #2: breaker trips → builtin
	if h.EscalationLevel() != LevelBuiltin || h.Stat.BreakerTrips != 1 {
		t.Fatalf("after crash 2: level=%v stats=%+v", h.EscalationLevel(), h.Stat)
	}
	if !app.persistence {
		t.Fatal("builtin rung must keep persistence on")
	}
	crash() // #3: builtin restart, fresh window at this rung
	if h.EscalationLevel() != LevelBuiltin {
		t.Fatalf("after crash 3: level=%v", h.EscalationLevel())
	}
	crash() // #4: second trip → vanilla, persistence off
	if h.EscalationLevel() != LevelVanilla || h.Stat.BreakerTrips != 2 {
		t.Fatalf("after crash 4: level=%v stats=%+v", h.EscalationLevel(), h.Stat)
	}
	if app.persistence {
		t.Fatal("vanilla rung must run with persistence off")
	}
	// Backoff doubles per consecutive crash: 50+100+200+400 ms, exactly.
	if want := 750 * time.Millisecond; h.Stat.BackoffTotal != want {
		t.Fatalf("BackoffTotal = %v, want %v", h.Stat.BackoffTotal, want)
	}

	// Stable serving walks the ladder back one rung per period.
	h.M.Clock.Advance(10 * time.Second)
	h.RunRequests(3)
	if h.EscalationLevel() != LevelBuiltin || h.Stat.Deescalations != 1 {
		t.Fatalf("after first stable period: level=%v stats=%+v", h.EscalationLevel(), h.Stat)
	}
	if !app.persistence {
		t.Fatal("de-escalation to builtin must restore persistence")
	}
	h.M.Clock.Advance(10 * time.Second)
	h.RunRequests(3)
	if h.EscalationLevel() != LevelPhoenix || h.Stat.Deescalations != 2 {
		t.Fatalf("after second stable period: level=%v stats=%+v", h.EscalationLevel(), h.Stat)
	}

	// Back at PHOENIX with the episode reset: a clean crash preserves again,
	// with the backoff restarting from its base.
	crash()
	if h.Stat.PhoenixRestarts != 2 {
		t.Fatalf("post-recovery crash did not use PHOENIX: %+v", h.Stat)
	}
	if want := 800 * time.Millisecond; h.Stat.BackoffTotal != want {
		t.Fatalf("BackoffTotal = %v, want %v (backoff must reset after stability)", h.Stat.BackoffTotal, want)
	}

	kinds := map[EventKind]int{}
	for _, e := range h.Stat.Events {
		kinds[e.Kind]++
	}
	if kinds[EvBreakerTrip] != 2 || kinds[EvEscalate] != 2 || kinds[EvDeescalate] != 2 || kinds[EvBackoff] != 5 {
		t.Fatalf("event counts %v", kinds)
	}
	if h.Stat.Escalations != h.Stat.BreakerTrips || h.Stat.Deescalations != h.Stat.Escalations {
		t.Fatalf("ladder accounting torn: %+v", h.Stat)
	}
	if h.M.Counters.BreakerTrips.Load() != 2 || h.M.Counters.Escalations.Load() != 2 ||
		h.M.Counters.Deescalations.Load() != 2 {
		t.Fatalf("machine counters: %s", h.M.Counters)
	}
}

// TestDriverRetryBudgetSurfaces pins the unbounded-crash-loop bound: once
// the budget is spent the harness surfaces a terminal error instead of
// restarting forever.
func TestDriverRetryBudgetSurfaces(t *testing.T) {
	h, app := harness(t, Config{
		Mode: ModePhoenix, Supervise: true,
		Supervisor: SupervisorConfig{
			BreakerK: 2, Window: time.Hour,
			BackoffBase: time.Millisecond, BackoffMax: time.Millisecond,
			StablePeriod: time.Hour, RetryBudget: 3,
		},
	})
	h.RunRequests(10)
	var err error
	for i := 0; i < 6 && err == nil; i++ {
		app.crashNext = "segv"
		err = h.RunRequests(2)
	}
	if err == nil {
		t.Fatal("retry budget never surfaced an error")
	}
	if h.Stat.Failures != 4 {
		t.Fatalf("failures = %d, want 4 (budget 3 + the exhausting crash)", h.Stat.Failures)
	}
}

// TestNewHarnessRejectsInvalidConfig pins the construction contract: a
// nonsensical config is a programming error and panics with the validation
// message rather than silently misbehaving mid-run.
func TestNewHarnessRejectsInvalidConfig(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("NewHarness accepted CrossCheck without ModePhoenix")
		}
		if err, ok := r.(error); !ok || err.Error() == "" {
			t.Fatalf("panic payload is not a descriptive error: %v", r)
		}
	}()
	harness(t, Config{Mode: ModeVanilla, CrossCheck: true})
}
