package recovery_test

// External test package: the campaign tests pull every application in via
// internal/apps/registry, which itself imports recovery — an internal test
// package would be an import cycle.

import (
	"testing"

	"phoenix/internal/apps/registry"
	"phoenix/internal/recovery"
)

// TestPreserveAtomicityAllApps runs the crash-consistency matrix: for every
// application, every recovery-path injection point (at several depths) must
// end in a counted fallback whose surviving state equals either the
// fully-preserved or the default-recovery reference — never a torn hybrid,
// never a simulator error. The corrupt probes additionally require the
// integrity checksums to catch a silent bit flip in the preserved frames.
func TestPreserveAtomicityAllApps(t *testing.T) {
	for name, mk := range registry.Factories(11) {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			outcomes, err := recovery.CheckAtomicity(mk, recovery.AtomicityConfig{Seed: 11, Warm: 60, Settle: 20})
			if err != nil {
				t.Fatal(err)
			}
			fired := 0
			for _, o := range outcomes {
				if o.Fired {
					fired++
				}
				t.Logf("%-28s fired=%-5v fallback=%-5v matched: preserve=%-5v fallback=%v",
					o.Probe, o.Fired, o.Fallback, o.MatchedPreserve, o.MatchedFallback)
			}
			// Plan, first-move, image-load, and first-corrupt faults strike
			// every app's restart; deeper probes may pass through when the
			// plan is small.
			if fired < 4 {
				t.Fatalf("only %d probes fired — the matrix exercised too little", fired)
			}
		})
	}
}

// TestEscalationAllApps runs the Byzantine-corruption campaign for every
// application: repeated bit flips in the preserved frames must all be caught
// by the checksums, the crash-loop breaker must walk the full ladder
// PHOENIX → builtin → vanilla without exceeding the retry budget, and a
// stable serving period must walk it back until a clean crash recovers via
// preserve_exec again.
func TestEscalationAllApps(t *testing.T) {
	for name, mk := range registry.Factories(23) {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			out, err := recovery.CheckEscalation(mk, recovery.EscalationConfig{Seed: 23})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s", out)
			if out.MaxLevel != recovery.LevelVanilla {
				t.Fatalf("ladder never reached vanilla: %s", out)
			}
			if out.CorruptionsFired < 2 {
				t.Fatalf("expected at least two caught corruptions before the first trip: %s", out)
			}
		})
	}
}
