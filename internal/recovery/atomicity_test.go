package recovery

import (
	"testing"

	"phoenix/internal/apps/boost"
	"phoenix/internal/apps/kvstore"
	"phoenix/internal/apps/lsmdb"
	"phoenix/internal/apps/particle"
	"phoenix/internal/apps/webcache"
	"phoenix/internal/faultinject"
	"phoenix/internal/workload"
)

// stepGen drives the compute apps one step per request.
type stepGen struct{ seq uint64 }

func (g *stepGen) Next() *workload.Request {
	g.seq++
	return &workload.Request{Seq: g.seq, Op: workload.OpRead, Key: "step"}
}

// atomicityFactories builds every application in internal/apps, sized small
// enough that the full probe matrix stays fast.
func atomicityFactories(seed int64) map[string]AppFactory {
	return map[string]AppFactory{
		"kvstore": func(inj *faultinject.Injector) (App, workload.Generator) {
			kv := kvstore.New(kvstore.Config{Cleanup: true}, inj)
			gen := workload.NewYCSB(workload.YCSBConfig{
				Seed: seed, Records: 200, ReadFrac: 0.8, InsertFrac: 0.2,
				ValueSize: 64, ZipfianKeys: true,
			})
			return kv, gen
		},
		"lsmdb": func(inj *faultinject.Injector) (App, workload.Generator) {
			db := lsmdb.New(lsmdb.Config{MemtableThreshold: 1 << 20}, inj)
			return db, workload.NewFillSeq(64)
		},
		"webcache-varnish": func(inj *faultinject.Injector) (App, workload.Generator) {
			web := workload.NewWeb(workload.WebConfig{Seed: seed, URLs: 100, MeanSize: 2 << 10})
			c := webcache.New(webcache.Config{
				Flavor: webcache.FlavorVarnish, CapacityBytes: 8 << 20,
			}, web, inj)
			return c, web
		},
		"webcache-squid": func(inj *faultinject.Injector) (App, workload.Generator) {
			web := workload.NewWeb(workload.WebConfig{Seed: seed, URLs: 100, MeanSize: 2 << 10})
			c := webcache.New(webcache.Config{
				Flavor: webcache.FlavorSquid, CapacityBytes: 8 << 20,
			}, web, inj)
			return c, web
		},
		"boost": func(inj *faultinject.Injector) (App, workload.Generator) {
			tr := boost.New(boost.Config{Samples: 200, Features: 8, MaxIters: 256, WorkScale: 50}, inj)
			return tr, &stepGen{}
		},
		"particle": func(inj *faultinject.Injector) (App, workload.Generator) {
			s := particle.New(particle.Config{Particles: 200, Cells: 32, WorkScale: 50}, inj)
			return s, &stepGen{}
		},
	}
}

// TestPreserveAtomicityAllApps runs the crash-consistency matrix: for every
// application, every recovery-path injection point (at several depths) must
// end in a counted fallback whose surviving state equals either the
// fully-preserved or the default-recovery reference — never a torn hybrid,
// never a simulator error.
func TestPreserveAtomicityAllApps(t *testing.T) {
	for name, mk := range atomicityFactories(11) {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			outcomes, err := CheckAtomicity(mk, AtomicityConfig{Seed: 11, Warm: 60, Settle: 20})
			if err != nil {
				t.Fatal(err)
			}
			fired := 0
			for _, o := range outcomes {
				if o.Fired {
					fired++
				}
				t.Logf("%-28s fired=%-5v fallback=%-5v matched: preserve=%-5v fallback=%v",
					o.Probe, o.Fired, o.Fallback, o.MatchedPreserve, o.MatchedFallback)
			}
			// Plan, first-move, and image-load faults strike every app's
			// restart; deeper probes may pass through when the plan is small.
			if fired < 3 {
				t.Fatalf("only %d probes fired — the matrix exercised too little", fired)
			}
		})
	}
}
