package recovery

import (
	"testing"
	"time"
)

// Boundary tests for the supervisor: the breaker's exact Kth crash, the
// sliding window's exact edge, de-escalation at exactly the stable period,
// the backoff doubling sequence and its exact cap, and the retry budget's
// exact exhaustion point. These pin the off-by-one behaviour the state
// machine's specification implies but the scripted traces only sample.

// TestBreakerWindowBoundaries tables the breaker against crash trains placed
// exactly on and just off the window edge.
func TestBreakerWindowBoundaries(t *testing.T) {
	const W = 60 * time.Second
	cases := []struct {
		name    string
		crashes []time.Duration // OnCrash instants, in order
		trips   []bool          // expected Tripped per crash
	}{
		{
			// Exactly K=3 crashes inside one window: the 3rd trips.
			name:    "exactly-K-trips-on-Kth",
			crashes: []time.Duration{0, time.Second, 2 * time.Second},
			trips:   []bool{false, false, true},
		},
		{
			// K-1 crashes: never trips.
			name:    "K-minus-1-never-trips",
			crashes: []time.Duration{0, time.Second},
			trips:   []bool{false, false},
		},
		{
			// The 3rd crash lands exactly W after the 1st: now-t < W is false
			// for the first crash, so it has aged out and the count is 2.
			name:    "first-crash-ages-out-exactly-at-window",
			crashes: []time.Duration{0, time.Second, W},
			trips:   []bool{false, false, false},
		},
		{
			// One instant inside the window edge: the first crash still
			// counts and the 3rd trips.
			name:    "first-crash-still-counted-just-inside-window",
			crashes: []time.Duration{0, time.Second, W - time.Nanosecond},
			trips:   []bool{false, false, true},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s := NewSupervisor(SupervisorConfig{BreakerK: 3, Window: W})
			for i, at := range tc.crashes {
				d := s.OnCrash(at)
				if d.Tripped != tc.trips[i] {
					t.Fatalf("crash %d at %v: tripped=%v, want %v (level %v)", i, at, d.Tripped, tc.trips[i], s.Level())
				}
			}
		})
	}
}

// TestDeescalationStablePeriodBoundary: serving exactly StablePeriod after
// the last crash de-escalates; one nanosecond earlier does not.
func TestDeescalationStablePeriodBoundary(t *testing.T) {
	const SP = 30 * time.Second
	mk := func() *Supervisor {
		s := NewSupervisor(SupervisorConfig{BreakerK: 2, Window: time.Hour, StablePeriod: SP})
		s.OnCrash(0)
		d := s.OnCrash(time.Second) // trips to builtin
		if !d.Tripped || s.Level() != LevelBuiltin {
			t.Fatalf("setup did not escalate: %+v level=%v", d, s.Level())
		}
		return s
	}

	s := mk()
	lastCrash := time.Second
	if de, _ := s.NoteServing(lastCrash + SP - time.Nanosecond); de {
		t.Fatal("de-escalated one nanosecond before the stable period elapsed")
	}
	if de, to := s.NoteServing(lastCrash + SP); !de || to != LevelPhoenix {
		t.Fatalf("serving at exactly the stable period should de-escalate to phoenix, got de=%v to=%v", de, to)
	}

	// Each further rung needs its own full stable period: after the builtin →
	// phoenix step the stability clock restarts.
	s = mk()
	s.OnCrash(2 * time.Second) // still builtin (window cleared on escalation)
	s.OnCrash(3 * time.Second)
	if s.Level() != LevelVanilla {
		t.Fatalf("second trip did not reach vanilla: %v", s.Level())
	}
	at := 3*time.Second + SP
	if de, to := s.NoteServing(at); !de || to != LevelBuiltin {
		t.Fatalf("first stable period should step vanilla -> builtin, got de=%v to=%v", de, to)
	}
	if de, _ := s.NoteServing(at + SP - time.Nanosecond); de {
		t.Fatal("second rung climbed without a full second stable period")
	}
	if de, to := s.NoteServing(at + SP); !de || to != LevelPhoenix {
		t.Fatalf("second stable period should step builtin -> phoenix, got de=%v to=%v", de, to)
	}
}

// TestBackoffDoublingAndCap: the backoff sequence is Base, 2·Base, 4·Base, …
// and saturates at exactly BackoffMax.
func TestBackoffDoublingAndCap(t *testing.T) {
	const (
		base = 100 * time.Millisecond
		max  = 800 * time.Millisecond // exactly base·2³
	)
	s := NewSupervisor(SupervisorConfig{BreakerK: 100, Window: time.Hour, BackoffBase: base, BackoffMax: max})
	want := []time.Duration{
		base,     // 1st crash
		2 * base, // doubled
		4 * base,
		8 * base, // == max, not beyond
		max,      // stays capped
		max,
	}
	for i, w := range want {
		d := s.OnCrash(time.Duration(i) * time.Second)
		if d.Backoff != w {
			t.Fatalf("crash %d: backoff %v, want %v", i+1, d.Backoff, w)
		}
	}

	// A stable period resets the doubling to Base.
	s.NoteServing(time.Duration(len(want))*time.Second + 31*time.Second)
	if d := s.OnCrash(2 * time.Hour); d.Backoff != base {
		t.Fatalf("backoff did not reset after a stable period: %v", d.Backoff)
	}
}

// TestRetryBudgetExactEdge: exactly RetryBudget consecutive crashes restart;
// the next one reports exhaustion, and a stable period refills the budget.
func TestRetryBudgetExactEdge(t *testing.T) {
	const budget = 4
	s := NewSupervisor(SupervisorConfig{BreakerK: 100, Window: time.Hour, RetryBudget: budget})
	for i := 1; i <= budget; i++ {
		if d := s.OnCrash(time.Duration(i) * time.Second); d.Exhausted {
			t.Fatalf("crash %d of %d exhausted the budget early", i, budget)
		}
	}
	if d := s.OnCrash(time.Duration(budget+1) * time.Second); !d.Exhausted {
		t.Fatalf("crash %d did not exhaust the budget", budget+1)
	}

	// Consecutive-crash accounting resets after a stable period.
	s = NewSupervisor(SupervisorConfig{BreakerK: 100, Window: time.Hour, RetryBudget: budget, StablePeriod: 30 * time.Second})
	for i := 1; i <= budget; i++ {
		s.OnCrash(time.Duration(i) * time.Second)
	}
	s.NoteServing(time.Duration(budget)*time.Second + 30*time.Second)
	if d := s.OnCrash(time.Hour); d.Exhausted {
		t.Fatal("budget did not refill after a stable period")
	}
}
