package recovery

import (
	"testing"
	"time"

	"phoenix/internal/core"
	"phoenix/internal/faultinject"
	"phoenix/internal/kernel"
	"phoenix/internal/linker"
	"phoenix/internal/mem"
	"phoenix/internal/workload"
)

// badPlanApp assembles a restart plan that references an unmapped range, so
// rt.Restart always fails validation.
type badPlanApp struct{ *toyApp }

func (a *badPlanApp) PlanRestart(rt *core.Runtime, ci *kernel.CrashInfo, useUnsafe bool) (core.RestartPlan, string) {
	return core.RestartPlan{
		InfoAddr: a.counter,
		WithHeap: true,
		Ranges:   []linker.Range{{Start: 0x7000_0000, Len: int(mem.PageSize)}},
	}, ""
}

// TestRestartErrorTakesFallback is the regression test for phoenixRestart
// returning the rt.Restart error as a simulator error: a failing
// preserve_exec must count the event and degrade to the default recovery.
func TestRestartErrorTakesFallback(t *testing.T) {
	m := kernel.NewMachine(1)
	app := &badPlanApp{newToyApp()}
	h := NewHarness(m, Config{Mode: ModePhoenix}, app, workload.NewFillSeq(8), nil)
	if err := h.Boot(); err != nil {
		t.Fatal(err)
	}
	h.RunRequests(50)
	app.crashNext = "segv"
	if err := h.RunRequests(10); err != nil {
		t.Fatalf("restart error killed the simulation: %v", err)
	}
	if h.Stat.RecoveryFaultFallbacks != 1 || h.Stat.PhoenixRestarts != 0 {
		t.Fatalf("stats %+v", h.Stat)
	}
	if m.Counters.RecoveryFaultFallbacks.Load() != 1 || m.Counters.PreservesAborted.Load() != 1 {
		t.Fatalf("counters %s", m.Counters)
	}
	if app.value() >= 50 {
		t.Fatalf("fallback kept preserved state: %d", app.value())
	}
}

// TestInjectedRecoveryFaultFallsBack arms a recovery-path fault, checks the
// harness degrades to a counted fallback, and checks the machine counters
// are exported correctly; the next crash (fault consumed) recovers via
// PHOENIX as usual.
func TestInjectedRecoveryFaultFallsBack(t *testing.T) {
	m := kernel.NewMachine(1)
	app := newToyApp()
	inj := faultinject.New()
	h := NewHarness(m, Config{Mode: ModePhoenix}, app, workload.NewFillSeq(8), inj)
	if err := h.Boot(); err != nil {
		t.Fatal(err)
	}
	h.RunRequests(50)
	inj.Arm(faultinject.SitePreserveMove, faultinject.OpFailure)
	inj.Enable()
	app.crashNext = "segv"
	if err := h.RunRequests(10); err != nil {
		t.Fatal(err)
	}
	if !inj.Fired(faultinject.SitePreserveMove) {
		t.Fatal("armed recovery fault never fired")
	}
	if h.Stat.RecoveryFaultFallbacks != 1 || h.Stat.PhoenixRestarts != 0 {
		t.Fatalf("stats %+v", h.Stat)
	}
	snap := m.Counters.Snapshot()
	if snap["preserves_staged"] != 1 || snap["preserves_aborted"] != 1 ||
		snap["preserves_committed"] != 0 || snap["recovery_fault_fallbacks"] != 1 {
		t.Fatalf("counters %s", m.Counters)
	}

	// The fault fires once: the following crash takes the normal PHOENIX
	// path and commits.
	app.crashNext = "segv"
	if err := h.RunRequests(10); err != nil {
		t.Fatal(err)
	}
	if h.Stat.PhoenixRestarts != 1 {
		t.Fatalf("stats after retry %+v", h.Stat)
	}
	if m.Counters.PreservesCommitted.Load() != 1 {
		t.Fatalf("counters after retry %s", m.Counters)
	}
}

// TestStaleCrossCheckVerdictIgnored is the regression test for stale
// cross-check state: a verdict whose incarnation died before the background
// reference finished must not hot-switch the process that booted after it.
func TestStaleCrossCheckVerdictIgnored(t *testing.T) {
	h, app := ccHarness(t, true) // lying snapshot: verdict would mismatch
	h.RunRequests(50)
	app.crashNext = "segv"
	h.RunRequests(1) // crash #1: PHOENIX restart, cross-check in flight
	if h.Stat.PhoenixRestarts != 1 {
		t.Fatalf("stats %+v", h.Stat)
	}
	app.crashNext = "segv"
	h.RunRequests(1) // crash #2 inside the grace window: fallback restart
	if h.Stat.GraceFallbacks != 1 {
		t.Fatalf("stats %+v", h.Stat)
	}
	if h.CrossCheckResult() != nil {
		t.Fatal("active check from the dead incarnation not cleared")
	}
	// Let the dead incarnation's verdict timer fire, then keep serving.
	h.M.Clock.Advance(time.Second)
	if err := h.RunRequests(10); err != nil {
		t.Fatal(err)
	}
	if h.Stat.CrossFallbacks != 0 {
		t.Fatalf("stale verdict triggered a hot-switch: %+v", h.Stat)
	}
}
