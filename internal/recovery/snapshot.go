package recovery

// Concurrent serving off MVCC preserved snapshots. The harness stays a
// single-writer machine — every mutation still flows through ServeRequest on
// one goroutine — but the preserved data structures are multi-version:
// SnapshotCommit freezes the live address space into an immutable version
// (mem.SnapshotStore, copy-on-write against the previous version), and any
// number of readers serve read-only requests off that version while the
// writer advances the next one. The simulated cost of a read batch is the
// fan-out model (costmodel.ConcurrentReadBatch): N readers amortise the batch
// at the price of N reader spawns. Go-level execution of a batch stays
// sequential here so harness runs are deterministic; the real-goroutine
// hammering lives in the race-test battery, which drives SnapshotReader
// handles from concurrent readers directly.

import (
	"fmt"

	"phoenix/internal/mem"
	"phoenix/internal/workload"
)

// SnapshotServer is an optional App extension: apps whose preserved state can
// be served read-only off a frozen MVCC view implement it. OpenSnapshotReader
// is called on the writer thread (it may read the live clock and Go-side
// indexes); the returned closure must be pure — it may touch only the view
// and values captured at build time, never app stats, injectors, or the live
// address space — so it is safe to call from many goroutines at once.
type SnapshotServer interface {
	OpenSnapshotReader(view *mem.AddressSpace) func(req *workload.Request) (ok, effective bool)
}

// SnapshotReader is one open handle on a committed snapshot version: the
// frozen view plus the app's reader bound to it. Serve is safe for concurrent
// use; Close releases the version (a superseded version's pages are reclaimed
// when its last reader closes).
type SnapshotReader struct {
	store *mem.SnapshotStore
	v     *mem.SnapshotVersion
	serve func(*workload.Request) (bool, bool)
}

// Serve answers one read-only request from the frozen view.
func (r *SnapshotReader) Serve(req *workload.Request) (ok, effective bool) { return r.serve(req) }

// Version exposes the underlying MVCC version (tests, oracles).
func (r *SnapshotReader) Version() *mem.SnapshotVersion { return r.v }

// CheckFrozen runs the stale-snapshot oracle on the held version.
func (r *SnapshotReader) CheckFrozen() error { return r.v.CheckFrozen() }

// Close releases the held version.
func (r *SnapshotReader) Close() { r.store.Release(r.v) }

// snapshotStore returns the store bound to the live process's address space,
// creating it when none exists yet or when a restart/migration installed a
// new space (versions of the dead incarnation die with it — the first commit
// on the new space is a full copy).
func (h *Harness) snapshotStore() *mem.SnapshotStore {
	if h.snapStore == nil || h.snapStore.Space() != h.proc.AS {
		h.snapStore = mem.NewSnapshotStore(h.proc.AS)
	}
	return h.snapStore
}

// SnapshotCommit freezes the current application state as a new MVCC version,
// charging the incremental commit cost (pages written since the previous
// commit). Returns the number of pages copied. The app must implement
// SnapshotServer — committing versions nobody can read is a driver bug.
func (h *Harness) SnapshotCommit() (changed int, err error) {
	if _, ok := h.App.(SnapshotServer); !ok {
		return 0, fmt.Errorf("recovery: %s does not implement SnapshotServer", h.App.Name())
	}
	if h.proc == nil {
		return 0, fmt.Errorf("recovery: SnapshotCommit before Boot")
	}
	v := h.snapshotStore().Commit()
	h.M.Clock.Advance(h.M.Model.SnapshotCommit(v.Changed()))
	return v.Changed(), nil
}

// OpenSnapshot opens the latest committed version and binds the app's reader
// to it. Must be called on the writer thread; the returned handle may then be
// shared across reader goroutines. The caller owns the handle and must Close
// it.
func (h *Harness) OpenSnapshot() (*SnapshotReader, error) {
	ss, ok := h.App.(SnapshotServer)
	if !ok {
		return nil, fmt.Errorf("recovery: %s does not implement SnapshotServer", h.App.Name())
	}
	if h.proc == nil || h.snapStore == nil || h.snapStore.Space() != h.proc.AS {
		return nil, fmt.Errorf("recovery: no snapshot committed for the live process")
	}
	v := h.snapStore.Open()
	if v == nil {
		return nil, fmt.Errorf("recovery: no snapshot committed")
	}
	return &SnapshotReader{store: h.snapStore, v: v, serve: ss.OpenSnapshotReader(v.View())}, nil
}

// ServeSnapshotReads serves reqs off the latest committed snapshot at the
// given reader fan-out, charging costmodel.ConcurrentReadBatch. The requests
// execute sequentially in Go (determinism); readers expresses the modelled
// concurrency. After the batch the stale-snapshot oracle runs: stale is 1 if
// any frame of the served version postdates its commit horizon (a reader
// could have observed a post-snapshot write), else 0.
func (h *Harness) ServeSnapshotReads(reqs []*workload.Request, readers int) (effective, stale int, err error) {
	r, err := h.OpenSnapshot()
	if err != nil {
		return 0, 0, err
	}
	defer r.Close()
	for _, req := range reqs {
		if _, eff := r.Serve(req); eff {
			effective++
		}
	}
	if ferr := r.CheckFrozen(); ferr != nil {
		stale = 1
		h.event(EvSnapshotStale, ferr.Error())
	}
	h.M.Clock.Advance(h.M.Model.ConcurrentReadBatch(len(reqs), readers))
	h.event(EvSnapshotRead, fmt.Sprintf("%d reads x %d readers (v%d)", len(reqs), readers, r.Version().Seq()))
	return effective, stale, nil
}

// SnapshotReadBatch is the scheduled action the cluster and shard tiers
// drive: commit a fresh version, then serve count in-distribution reads off
// it at the given fan-out. Write ops drawn from the generator are demoted to
// reads of the same key, so the batch probes live keys without mutating.
func (h *Harness) SnapshotReadBatch(count, readers int) (effective, stale int, err error) {
	if count <= 0 {
		count = 1
	}
	if _, err := h.SnapshotCommit(); err != nil {
		return 0, 0, err
	}
	reqs := make([]*workload.Request, count)
	for i := range reqs {
		rq := *h.Gen.Next()
		if rq.Op != workload.OpWebGet {
			rq.Op = workload.OpRead
		}
		reqs[i] = &rq
	}
	return h.ServeSnapshotReads(reqs, readers)
}
