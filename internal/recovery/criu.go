// Package recovery orchestrates a simulated application under a workload,
// injects failures, and drives one of four recovery mechanisms — Vanilla
// restart, the application's Builtin persistence, CRIU-style full-process
// checkpointing, or PHOENIX — recording a service timeline for the
// availability metrics of §4.3.
package recovery

import (
	"time"

	"phoenix/internal/kernel"
	"phoenix/internal/mem"
)

// CRIUImage is a full-process checkpoint: a deep copy of the address space
// plus accounting of how many bytes the on-disk image occupies.
type CRIUImage struct {
	AS      *mem.AddressSpace
	Bytes   int64
	TakenAt time.Duration
}

// criuFile is the simulated on-disk image name.
const criuFile = "criu.img"

// CRIUSnapshot freezes the process and dumps its memory: the application is
// paused for the freeze cost plus the sequential write of every resident
// page — CRIU's runtime overhead source (Table 8) and its downtime advantage
// over data-format unmarshalling (§4.3.3).
func CRIUSnapshot(p *kernel.Process) *CRIUImage {
	m := p.Machine
	m.Clock.Advance(m.Model.FreezeFixed)
	img := &CRIUImage{
		AS:      p.AS.Clone(),
		Bytes:   int64(p.AS.ResidentPages()) * mem.PageSize,
		TakenAt: m.Clock.Now(),
	}
	// The page dump is written as one sequential image.
	m.Disk.WriteFile(criuFile, make([]byte, 0))
	m.Clock.Advance(m.Model.DiskWrite(img.Bytes))
	return img
}

// CRIURestore reads the image back and reconstructs the process. Execution
// state resumes from the snapshot instant: all updates after TakenAt are
// lost, which is CRIU's staleness trade-off.
func CRIURestore(m *kernel.Machine, old *kernel.Process, img *CRIUImage) *kernel.Process {
	m.Clock.Advance(m.Model.DiskRead(img.Bytes))
	old.Kill()
	// Restore from a fresh clone so the cached image can be restored again.
	return m.Restore(old.Image, img.AS.Clone())
}
