// Package recovery orchestrates a simulated application under a workload,
// injects failures, and drives one of four recovery mechanisms — Vanilla
// restart, the application's Builtin persistence, CRIU-style full-process
// checkpointing, or PHOENIX — recording a service timeline for the
// availability metrics of §4.3.
package recovery

import (
	"time"

	"phoenix/internal/kernel"
	"phoenix/internal/mem"
)

// CRIUImage is a full-process checkpoint: a deep copy of the address space
// plus accounting of how many bytes the on-disk image occupies. In
// incremental mode an image may be a delta on top of a parent chain: Bytes is
// what *this* snapshot wrote, ChainBytes the cumulative chain a restore must
// read back (equal to Bytes for a full snapshot).
type CRIUImage struct {
	AS         *mem.AddressSpace
	Bytes      int64
	ChainBytes int64
	TakenAt    time.Duration
}

// criuFile is the simulated on-disk image name.
const criuFile = "criu.img"

// CRIUSnapshot freezes the process and dumps its memory: the application is
// paused for the freeze cost plus the sequential write of every resident
// page — CRIU's runtime overhead source (Table 8) and its downtime advantage
// over data-format unmarshalling (§4.3.3).
func CRIUSnapshot(p *kernel.Process) *CRIUImage {
	m := p.Machine
	m.Clock.Advance(m.Model.FreezeFixed)
	img := &CRIUImage{
		AS:      p.AS.Clone(),
		Bytes:   int64(p.AS.ResidentPages()) * mem.PageSize,
		TakenAt: m.Clock.Now(),
	}
	img.ChainBytes = img.Bytes
	// The page dump is written as one sequential image.
	m.Disk.WriteFile(criuFile, make([]byte, 0))
	m.Clock.Advance(m.Model.DiskWrite(img.Bytes))
	return img
}

// CRIUSnapshotIncremental takes a soft-dirty-driven delta checkpoint: the
// freeze still stops the world, but only pages dirtied since prev are dumped,
// so steady-state snapshot overhead scales with the write rate — the same win
// incremental preservation gives PHOENIX, kept in the baseline so the
// comparison stays fair. The first snapshot (prev == nil) is a full dump that
// establishes the baseline. Every snapshot clears the process's soft-dirty
// bits; the restore cost is the whole chain (ChainBytes), which is the
// classic incremental-checkpoint trade-off.
func CRIUSnapshotIncremental(p *kernel.Process, prev *CRIUImage) *CRIUImage {
	if prev == nil {
		// Full baseline dump. Clear the bits before cloning so both the live
		// process and the image record "clean as of this dump": a restore
		// from the image then deltas correctly against the chain.
		p.AS.ClearAllDirty()
		return CRIUSnapshot(p)
	}
	m := p.Machine
	m.Clock.Advance(m.Model.FreezeFixed)
	dirty := int64(p.AS.DirtyPages()) * mem.PageSize
	p.AS.ClearAllDirty()
	img := &CRIUImage{
		AS:      p.AS.Clone(),
		Bytes:   dirty,
		TakenAt: m.Clock.Now(),
	}
	img.ChainBytes = prev.ChainBytes + img.Bytes
	m.Disk.WriteFile(criuFile, make([]byte, 0))
	m.Clock.Advance(m.Model.DiskWrite(img.Bytes))
	return img
}

// CRIURestore reads the image back and reconstructs the process. Execution
// state resumes from the snapshot instant: all updates after TakenAt are
// lost, which is CRIU's staleness trade-off. For an incremental image the
// read covers the full parent chain, not just the last delta.
func CRIURestore(m *kernel.Machine, old *kernel.Process, img *CRIUImage) *kernel.Process {
	m.Clock.Advance(m.Model.DiskRead(img.ChainBytes))
	old.Kill()
	// Restore from a fresh clone so the cached image can be restored again.
	return m.Restore(old.Image, img.AS.Clone())
}
