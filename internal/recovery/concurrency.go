package recovery

import (
	"fmt"
	"strings"
	"time"

	"phoenix/internal/faultinject"
	"phoenix/internal/kernel"
	"phoenix/internal/mem"
	"phoenix/internal/workload"
)

// This file implements the concurrent-serving campaign: CheckConcurrency
// drives each snapshot-serving application through the reader ladder —
// batches of reads served off committed MVCC versions at 1, 4, and 16
// concurrent readers — with writes advancing the next version between
// batches and a mid-run PHOENIX kill landing between ladder points. The
// campaign's contract is threefold: serving throughput must scale with
// readers (≥2x ops/sec at 4 readers vs 1), the stale-snapshot oracle must
// stay at zero across the restart, and the modelled parallel preserve
// staging must beat the serial walk on the app's preserved footprint. All
// timing flows through the simulated clock, so outcomes are deterministic
// and same-seed runs marshal byte-identically.

// concurrencyCrashVA is an unmapped address outside every app's layout;
// reading it is the synthetic mid-run kill (same class the cluster and
// explore campaigns use).
const concurrencyCrashVA = mem.VAddr(0x2_0000_0000)

// concurrencyReaders is the fan-out ladder the campaign measures.
var concurrencyReaders = []int{1, 4, 16}

// ConcurrencySpec names one application that implements SnapshotServer.
type ConcurrencySpec struct {
	Name string
	Mk   AppFactory
}

// ConcurrencyConfig parameterises CheckConcurrency.
type ConcurrencyConfig struct {
	// Seed is the machine seed (runs are deterministic replays).
	Seed int64
	// Warm is how many in-distribution requests to serve before the campaign
	// keyset goes in (default 64).
	Warm int
	// Keys is the campaign's own keyset size — keys it inserts itself so
	// every snapshot read has a known-present target (default 64).
	Keys int
	// Batch is the reads per ladder point (default 128 — large enough that
	// the per-read term dominates the fixed commit/capture overhead).
	Batch int
	// Writes advance the dataset between ladder points so every commit
	// captures a fresh dirty set (default 16).
	Writes int
	// Workers is the modelled parallel-staging pool width (default 4).
	Workers int
	// ModelPages is the preserved footprint the modelled parallel-vs-serial
	// staging comparison runs at (default 2048 — a working set large enough
	// to amortise the worker spawns; the campaign apps' own footprints sit
	// below the pool's break-even and are recorded separately as Pages).
	ModelPages int
}

func (c *ConcurrencyConfig) fill() {
	if c.Warm <= 0 {
		c.Warm = 64
	}
	if c.Keys <= 0 {
		c.Keys = 64
	}
	if c.Batch <= 0 {
		c.Batch = 128
	}
	if c.Writes <= 0 {
		c.Writes = 16
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.ModelPages <= 0 {
		c.ModelPages = 2048
	}
}

// ReaderPoint is one measured ladder point: a batch of snapshot reads at one
// fan-out, timed on the simulated clock (commit + capture + serve).
type ReaderPoint struct {
	Readers   int     `json:"readers"`
	BatchNs   int64   `json:"batch_ns"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Effective int     `json:"effective"`
}

// ConcurrencyOutcome is one application's concurrent-serving result.
type ConcurrencyOutcome struct {
	App    string        `json:"app"`
	Points []ReaderPoint `json:"points"`
	// Speedup4v1 and Speedup16v1 compare batch latency against the
	// single-reader baseline; the campaign requires Speedup4v1 >= 2.
	Speedup4v1  float64 `json:"speedup_4v1"`
	Speedup16v1 float64 `json:"speedup_16v1"`
	// PhoenixRestarts counts the mid-run kill's recoveries (must be >= 1);
	// PostRestartEffective is the effective reads of the first batch served
	// off the restarted process's fresh snapshot store.
	PhoenixRestarts      int `json:"phoenix_restarts"`
	PostRestartEffective int `json:"post_restart_effective"`
	// Stale is the stale-snapshot oracle across every batch: nonzero means a
	// reader observed a frozen page mutated under it.
	Stale int `json:"stale"`
	// Pages is the app's preserved footprint (the first commit's full copy).
	// PreserveSerialNs and PreserveParallelNs are the modelled staging
	// latencies of an incremental preserve at the ModelPages reference
	// footprint, serial vs spread across Workers.
	Pages              int   `json:"pages"`
	ModelPages         int   `json:"model_pages"`
	PreserveSerialNs   int64 `json:"preserve_serial_ns"`
	PreserveParallelNs int64 `json:"preserve_parallel_ns"`
}

func (o ConcurrencyOutcome) String() string {
	parts := make([]string, 0, len(o.Points))
	for _, p := range o.Points {
		parts = append(parts, fmt.Sprintf("x%d=%v", p.Readers, time.Duration(p.BatchNs)))
	}
	return fmt.Sprintf("%s: %s speedup4v1=%.2f stale=%d preserve=%v/%v",
		o.App, strings.Join(parts, " "), o.Speedup4v1, o.Stale,
		time.Duration(o.PreserveParallelNs), time.Duration(o.PreserveSerialNs))
}

// CheckConcurrency runs the reader ladder for every spec and enforces the
// concurrent-serving contract.
func CheckConcurrency(specs []ConcurrencySpec, cfg ConcurrencyConfig) ([]ConcurrencyOutcome, error) {
	cfg.fill()
	var out []ConcurrencyOutcome
	for _, spec := range specs {
		o, err := checkOneConcurrency(spec, cfg)
		if err != nil {
			return out, err
		}
		out = append(out, o)
	}
	return out, nil
}

func checkOneConcurrency(spec ConcurrencySpec, cfg ConcurrencyConfig) (ConcurrencyOutcome, error) {
	o := ConcurrencyOutcome{App: spec.Name}
	m := kernel.NewMachine(cfg.Seed)
	inj := faultinject.New()
	app, gen := spec.Mk(inj)
	h := NewHarness(m, Config{Mode: ModePhoenix, CheckpointInterval: 2 * time.Millisecond}, app, gen, inj)
	if err := h.Boot(); err != nil {
		return o, fmt.Errorf("%s: boot: %w", spec.Name, err)
	}
	if _, ok := app.(SnapshotServer); !ok {
		return o, fmt.Errorf("%s: app does not implement SnapshotServer", spec.Name)
	}
	if err := h.RunRequests(cfg.Warm); err != nil {
		return o, fmt.Errorf("%s: warm: %w", spec.Name, err)
	}

	// The campaign drives its own keyset so every snapshot read has a
	// known-present target: the in-distribution generators of some apps read
	// keys they never inserted, which would make the effectiveness contract
	// vacuous. Caches populate via cacheable GETs; stores via inserts.
	isCache := strings.HasPrefix(spec.Name, "webcache")
	writeReq := func(i, round int) *workload.Request {
		key := fmt.Sprintf("conc-%04d", i)
		if isCache {
			return &workload.Request{Op: workload.OpWebGet, Key: key, Size: 256, Cacheable: true}
		}
		return &workload.Request{Op: workload.OpInsert, Key: key,
			Value: []byte(fmt.Sprintf("conc-val-%04d-round-%d", i, round))}
	}
	readReq := func(i int) *workload.Request {
		key := fmt.Sprintf("conc-%04d", i%cfg.Keys)
		if isCache {
			return &workload.Request{Op: workload.OpWebGet, Key: key}
		}
		return &workload.Request{Op: workload.OpRead, Key: key}
	}
	populate := func(n, round int) error {
		for i := 0; i < n; i++ {
			if _, _, err := h.ServeRequest(writeReq(i, round)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := populate(cfg.Keys, 0); err != nil {
		return o, fmt.Errorf("%s: populate: %w", spec.Name, err)
	}
	batch := make([]*workload.Request, cfg.Batch)
	for i := range batch {
		batch[i] = readReq(i)
	}

	// The first commit copies the whole preserved footprint — recorded as the
	// app's real page cost of entering the MVCC regime.
	pages, err := h.SnapshotCommit()
	if err != nil {
		return o, fmt.Errorf("%s: first commit: %w", spec.Name, err)
	}
	o.Pages = pages

	// The reader ladder: writes dirty a fresh set, then one timed batch per
	// fan-out (commit + app capture + fan-out serve, so the speedups below
	// are end-to-end, not just the read term). Every read targets a key the
	// campaign wrote, so effectiveness must be total.
	byReaders := map[int]time.Duration{}
	runBatch := func(readers int) (time.Duration, int, error) {
		before := m.Clock.Now()
		if _, err := h.SnapshotCommit(); err != nil {
			return 0, 0, err
		}
		eff, stale, err := h.ServeSnapshotReads(batch, readers)
		if err != nil {
			return 0, 0, err
		}
		o.Stale += stale
		return m.Clock.Now() - before, eff, nil
	}
	for round, readers := range concurrencyReaders {
		if err := populate(cfg.Writes, round+1); err != nil {
			return o, fmt.Errorf("%s: writes before x%d: %w", spec.Name, readers, err)
		}
		dur, eff, err := runBatch(readers)
		if err != nil {
			return o, fmt.Errorf("%s: batch x%d: %w", spec.Name, readers, err)
		}
		if eff != cfg.Batch {
			return o, fmt.Errorf("%s: batch x%d: %d/%d reads effective against the campaign keyset",
				spec.Name, readers, eff, cfg.Batch)
		}
		byReaders[readers] = dur
		o.Points = append(o.Points, ReaderPoint{
			Readers:   readers,
			BatchNs:   dur.Nanoseconds(),
			OpsPerSec: float64(cfg.Batch) / dur.Seconds(),
			Effective: eff,
		})
	}
	o.Speedup4v1 = float64(byReaders[1]) / float64(byReaders[4])
	o.Speedup16v1 = float64(byReaders[1]) / float64(byReaders[16])

	// Mid-run PHOENIX kill: the process dies between ladder points, recovery
	// preserves the pages, and the next batch must serve off a snapshot store
	// rebuilt against the restarted address space.
	ci := h.Proc().Run(func() { h.Proc().AS.ReadU64(concurrencyCrashVA) })
	if ci == nil {
		return o, fmt.Errorf("%s: synthetic crash did not register", spec.Name)
	}
	if err := h.HandleFailureForREPL(ci); err != nil {
		return o, fmt.Errorf("%s: recovery: %w", spec.Name, err)
	}
	o.PhoenixRestarts = h.Stat.PhoenixRestarts
	_, eff, err := runBatch(4)
	if err != nil {
		return o, fmt.Errorf("%s: post-restart batch: %w", spec.Name, err)
	}
	o.PostRestartEffective = eff

	// Modelled preserve staging at the reference footprint: the parallel
	// walk must beat the serial one once the footprint amortises the worker
	// spawns (the campaign apps themselves sit below that break-even, which
	// is why the comparison runs at ModelPages, not Pages).
	o.ModelPages = cfg.ModelPages
	o.PreserveSerialNs = m.Model.PreserveExecDelta(cfg.ModelPages, 0, cfg.ModelPages, cfg.ModelPages).Nanoseconds()
	o.PreserveParallelNs = m.Model.PreserveExecDeltaParallel(cfg.ModelPages, 0, cfg.ModelPages, cfg.ModelPages, cfg.Workers).Nanoseconds()

	// The contract.
	if o.Speedup4v1 < 2.0 {
		return o, fmt.Errorf("%s: 4-reader speedup %.2f below 2.0 (%s)", spec.Name, o.Speedup4v1, o)
	}
	if byReaders[16] > byReaders[4] {
		return o, fmt.Errorf("%s: batch latency not monotone in readers: x16=%v > x4=%v", spec.Name, byReaders[16], byReaders[4])
	}
	if o.Stale != 0 {
		return o, fmt.Errorf("%s: %d snapshot reads observed mutated frozen pages", spec.Name, o.Stale)
	}
	if o.PhoenixRestarts < 1 {
		return o, fmt.Errorf("%s: mid-run kill did not recover via preserve_exec", spec.Name)
	}
	if o.PostRestartEffective != cfg.Batch {
		return o, fmt.Errorf("%s: %d/%d snapshot reads effective after the restart — preserve_exec lost campaign keys",
			spec.Name, o.PostRestartEffective, cfg.Batch)
	}
	if o.PreserveParallelNs >= o.PreserveSerialNs {
		return o, fmt.Errorf("%s: modelled parallel preserve staging %v does not beat serial %v over %d pages",
			spec.Name, time.Duration(o.PreserveParallelNs), time.Duration(o.PreserveSerialNs), cfg.ModelPages)
	}
	return o, nil
}

// FmtConcurrency renders the campaign result for terminal output: one row
// per application.
func FmtConcurrency(outs []ConcurrencyOutcome) string {
	var b strings.Builder
	for _, o := range outs {
		fmt.Fprintf(&b, "%-18s", o.App)
		for _, p := range o.Points {
			fmt.Fprintf(&b, " x%d=%v(%.0f ops/s)", p.Readers, time.Duration(p.BatchNs), p.OpsPerSec)
		}
		fmt.Fprintf(&b, " speedup4v1=%.2f restart=%d preserve=%v/%v\n",
			o.Speedup4v1, o.PhoenixRestarts,
			time.Duration(o.PreserveParallelNs), time.Duration(o.PreserveSerialNs))
	}
	return b.String()
}
