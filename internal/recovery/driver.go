package recovery

import (
	"errors"
	"fmt"
	"time"

	"phoenix/internal/core"
	"phoenix/internal/faultinject"
	"phoenix/internal/kernel"
	"phoenix/internal/linker"
	"phoenix/internal/mem"
	"phoenix/internal/metrics"
	"phoenix/internal/workload"
)

// Mode selects the recovery mechanism under test.
type Mode int

const (
	// ModeVanilla restarts with no persistence: all state is lost.
	ModeVanilla Mode = iota
	// ModeBuiltin uses the application's own persistence (RDB-style
	// snapshot, WAL, or periodic checkpoint) for recovery.
	ModeBuiltin
	// ModeCRIU restores the last full-process checkpoint image.
	ModeCRIU
	// ModePhoenix performs PHOENIX-mode restarts with partial state
	// preservation, falling back to the application's default recovery when
	// the recovery condition fails.
	ModePhoenix
)

func (m Mode) String() string {
	switch m {
	case ModeVanilla:
		return "Vanilla"
	case ModeBuiltin:
		return "Builtin"
	case ModeCRIU:
		return "CRIU"
	case ModePhoenix:
		return "PHOENIX"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Config parameterises a harness run.
type Config struct {
	Mode Mode
	// UnsafeRegions gates the recovery-condition check (the U vs N
	// configurations of Table 7). Only meaningful under ModePhoenix.
	UnsafeRegions bool
	// CrossCheck enables background cross-check validation (the C
	// configuration). Only meaningful under ModePhoenix.
	CrossCheck bool
	// CheckpointInterval is the Builtin/CRIU snapshot period (0 disables
	// periodic snapshots).
	CheckpointInterval time.Duration
	// IncrementalCheckpoint makes periodic CRIU snapshots soft-dirty deltas
	// after the first full dump: each snapshot writes only pages dirtied
	// since the previous one, and a restore reads the whole chain. Only
	// meaningful under ModeCRIU.
	IncrementalCheckpoint bool
	// WatchdogTimeout is how long a hang persists before a forced restart.
	WatchdogTimeout time.Duration
	// DisablePersistence turns the app's builtin persistence off even under
	// ModePhoenix, so a PHOENIX fallback degenerates to a fresh restart —
	// the injection-testing configuration of §4.4, where fallbacks "restart
	// to empty memory state".
	DisablePersistence bool
	// DisableChecksums turns off post-commit integrity verification of
	// preserved frames (checksums are still staged). Only meaningful under
	// ModePhoenix; the zero value keeps verification on.
	DisableChecksums bool
	// Supervise enables the crash-loop breaker and escalation ladder
	// (PHOENIX → builtin → vanilla with exponential backoff, extended
	// downward to microreboot and rewind when Supervisor.Floor opts in).
	// Only meaningful under ModePhoenix.
	Supervise bool
	// RewindDomains routes each request through a per-request rewind domain
	// when the app is rewindable: a faulting request's page writes are rolled
	// back byte-exactly, and the LevelRewind rung recovers without any
	// restart. Only meaningful under ModePhoenix.
	RewindDomains bool
	// Supervisor parameterises the breaker/ladder; zero fields take
	// defaults. Ignored unless Supervise is set.
	Supervisor SupervisorConfig
	// Bucket is the timeline histogram resolution.
	Bucket time.Duration
	// EventCap bounds Stats.Events: once the log reaches the cap, the oldest
	// half is discarded and Stats.DroppedEvents counts the loss. 0 takes the
	// default (4096); negative keeps the log unbounded.
	EventCap int
}

func (c *Config) fill() {
	if c.WatchdogTimeout == 0 {
		c.WatchdogTimeout = 5 * time.Second
	}
	if c.Bucket == 0 {
		c.Bucket = 250 * time.Millisecond
	}
	if c.EventCap == 0 {
		c.EventCap = 4096
	}
}

// Validate rejects nonsensical configurations with a descriptive error
// instead of letting them silently misbehave mid-run: PHOENIX-only knobs
// combined with a non-PHOENIX mode, negative durations, or contradictory
// supervisor parameters. NewHarness calls it on every construction.
func (c Config) Validate() error {
	if c.Mode < ModeVanilla || c.Mode > ModePhoenix {
		return fmt.Errorf("recovery: unknown mode %v", c.Mode)
	}
	if c.Mode != ModePhoenix {
		if c.UnsafeRegions {
			return fmt.Errorf("recovery: UnsafeRegions requires ModePhoenix (got %v): the recovery-condition check only gates PHOENIX restarts", c.Mode)
		}
		if c.CrossCheck {
			return fmt.Errorf("recovery: CrossCheck requires ModePhoenix (got %v): cross-check validates preserved state", c.Mode)
		}
		if c.DisableChecksums {
			return fmt.Errorf("recovery: DisableChecksums requires ModePhoenix (got %v): only preserve_exec verifies checksums", c.Mode)
		}
		if c.Supervise {
			return fmt.Errorf("recovery: Supervise requires ModePhoenix (got %v): the escalation ladder starts at PHOENIX", c.Mode)
		}
		if c.RewindDomains {
			return fmt.Errorf("recovery: RewindDomains requires ModePhoenix (got %v): rewind is a rung below the PHOENIX ladder", c.Mode)
		}
	}
	if c.IncrementalCheckpoint && c.Mode != ModeCRIU {
		return fmt.Errorf("recovery: IncrementalCheckpoint requires ModeCRIU (got %v): only CRIU snapshots dump page deltas", c.Mode)
	}
	if c.CheckpointInterval < 0 {
		return fmt.Errorf("recovery: negative CheckpointInterval %v", c.CheckpointInterval)
	}
	if c.WatchdogTimeout < 0 {
		return fmt.Errorf("recovery: negative WatchdogTimeout %v", c.WatchdogTimeout)
	}
	if c.Bucket < 0 {
		return fmt.Errorf("recovery: negative Bucket %v", c.Bucket)
	}
	if c.Supervise {
		if err := c.Supervisor.Validate(); err != nil {
			return fmt.Errorf("recovery: invalid Supervisor config: %w", err)
		}
	}
	return nil
}

// App is the contract an evaluated application implements. One App value
// represents the *program*: it survives simulated process restarts, and its
// Main method rebinds its internal cursors to each new process incarnation.
type App interface {
	// Name identifies the application.
	Name() string
	// Image returns the application's binary image (built once).
	Image() *linker.Image
	// Main boots the application inside the process held by rt: on a fresh
	// start it initialises state (loading persistence if the mode uses it);
	// in PHOENIX recovery mode it re-adopts preserved state.
	Main(rt *core.Runtime) error
	// Handle processes one request. ok reports the request was answered;
	// effective reports it counts toward effective availability (hit or
	// successful read).
	Handle(req *workload.Request) (ok, effective bool)
	// Checkpoint runs the builtin persistence snapshot (no-op if the app has
	// none or persistence is disabled).
	Checkpoint()
	// PlanRestart is the crash-time restart handler: it assembles the
	// PHOENIX preservation plan or returns a non-empty fallback reason
	// (e.g. "unsafe region: kv"). useUnsafe mirrors the U/N configurations.
	PlanRestart(rt *core.Runtime, ci *kernel.CrashInfo, useUnsafe bool) (core.RestartPlan, string)
	// Reattach rebinds the app's cursors to the restored process after a
	// CRIU restore. Simulated addresses are unchanged; only Go-side handles
	// and the runtime binding need refreshing.
	Reattach(rt *core.Runtime)
	// Dump extracts the logical application state for end-to-end
	// validation.
	Dump() core.StateDump
	// CrossCheck returns the app's cross-check wiring; ok=false if the app
	// does not support it.
	CrossCheck(rt *core.Runtime) (core.CrossCheckSpec, bool)
	// SetPersistence toggles builtin persistence (driver sets it from the
	// mode: Vanilla and CRIU run without builtin persistence, per §4.3.3).
	SetPersistence(on bool)
}

// ReferenceRestorer is an optional App extension: after a cross-check
// mismatch, the system switches to the background process whose live state
// is the validated S_r. Apps implementing it rebuild directly from the
// reference dump (mirroring the hot-switch); apps that don't fall back to a
// plain default-recovery Main.
type ReferenceRestorer interface {
	RestoreReference(rt *core.Runtime, ref core.StateDump) error
}

// Event records one recovery-relevant occurrence on the timeline.
type Event struct {
	At     time.Duration
	Kind   EventKind
	Detail string
}

// Stats accumulates what Table 7 and Figure 10 report.
type Stats struct {
	Requests        int
	Failures        int
	PhoenixRestarts int
	UnsafeFallbacks int // recovery condition said unsafe (Chk.)
	GraceFallbacks  int // crashed again right after a PHOENIX restart (Fbk.)
	CrossFallbacks  int // cross-check verdict diverged (+X in Chk.)
	// RecoveryFaultFallbacks counts fallbacks taken because preserve_exec
	// itself failed (validation or an injected/real commit fault): the
	// recovery mechanism degraded safely instead of killing the run.
	RecoveryFaultFallbacks int
	// IntegrityFallbacks counts fallbacks taken because preserve_exec's
	// post-commit checksum verification caught corrupted preserved frames.
	IntegrityFallbacks int
	OtherRestarts      int // vanilla/builtin/criu restarts
	BootFailures       int // Main crashed during recovery (counts into Fbk.)
	// Escalation-ladder accounting (zero unless Config.Supervise).
	BreakerTrips  int
	Escalations   int
	Deescalations int
	// Rewinds counts faulting requests recovered at LevelRewind: the request's
	// rewind domain discarded in-process, no restart of any kind.
	Rewinds int
	// Microreboots counts component-level recoveries at LevelMicroreboot: one
	// component (plus cascaded dependents) discarded and reinitialised while
	// the process kept its address space.
	Microreboots int
	// BackoffTotal is the cumulative simulated time spent holding restarts.
	BackoffTotal time.Duration
	// Events is the bounded diagnostic log, oldest first. When it reaches
	// Config.EventCap the oldest half is dropped; DroppedEvents counts how
	// many entries were discarded that way over the run, and DroppedByKind
	// breaks the loss down per event kind — so a campaign report can still
	// say "the ring dropped 3 de-escalations" even though their details are
	// gone.
	Events           []Event
	DroppedEvents    int
	DroppedByKind    map[EventKind]int
	CheckpointsTaken int
}

// Harness runs one application under one configuration.
type Harness struct {
	Cfg  Config
	App  App
	M    *kernel.Machine
	Inj  *faultinject.Injector
	TL   *metrics.Timeline
	Gen  workload.Generator
	Stat Stats

	proc *kernel.Process
	rt   *core.Runtime

	lastCkpt  time.Duration
	criuImage *CRIUImage

	sup *Supervisor

	// snapStore holds the MVCC snapshot versions of the live process's
	// address space (nil until the first SnapshotCommit; recreated when a
	// restart or migration installs a new space).
	snapStore *mem.SnapshotStore

	pendingResume bool
	pendingSwitch bool
	switchDetail  string
	switchRef     core.StateDump
	activeCheck   *core.CrossCheck
	// ccGen numbers process incarnations for cross-check purposes: a verdict
	// callback captured under an older generation is stale and must not
	// trigger a hot-switch against the current process.
	ccGen int
}

// NewHarness assembles a harness. The injector may be nil (no injection).
// The configuration must pass Validate; a nonsensical one is a programming
// error and panics with the validation message.
func NewHarness(m *kernel.Machine, cfg Config, app App, gen workload.Generator, inj *faultinject.Injector) *Harness {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg.fill()
	if inj == nil {
		inj = faultinject.New()
	}
	// Recovery-path injection sites live in the kernel: declare them (no-op
	// if a shared campaign injector already has them) and hand the injector
	// to the machine so PreserveExec consults it.
	inj.RegisterRecovery()
	m.Inj = inj
	h := &Harness{
		Cfg: cfg, App: app, M: m, Gen: gen, Inj: inj,
		TL: metrics.NewTimeline(cfg.Bucket),
	}
	if cfg.Supervise {
		h.sup = NewSupervisor(cfg.Supervisor)
	}
	return h
}

// EscalationLevel returns the supervisor's current ladder rung
// (LevelPhoenix when supervision is off).
func (h *Harness) EscalationLevel() Level {
	if h.sup == nil {
		return LevelPhoenix
	}
	return h.sup.Level()
}

// LadderFloor returns the cheapest rung the ladder de-escalates back to
// (LevelPhoenix when supervision is off).
func (h *Harness) LadderFloor() Level {
	if h.sup == nil {
		return LevelPhoenix
	}
	return h.sup.cfg.Floor
}

// Runtime returns the live PHOENIX runtime (nil before Boot).
func (h *Harness) Runtime() *core.Runtime { return h.rt }

// newRuntime binds a PHOENIX runtime to proc, marking it as an
// instrumented build only under ModePhoenix (vanilla builds compile the
// annotations away, so they cost nothing — the Table 8 baseline).
func (h *Harness) newRuntime(proc *kernel.Process) *core.Runtime {
	rt := core.Init(proc, nil)
	rt.SetInstrumented(h.Cfg.Mode == ModePhoenix)
	return rt
}

// Proc returns the live process.
func (h *Harness) Proc() *kernel.Process { return h.proc }

// Boot spawns the first process and runs the application's Main.
func (h *Harness) Boot() error {
	persist := h.Cfg.Mode == ModeBuiltin || h.Cfg.Mode == ModePhoenix
	if h.Cfg.DisablePersistence {
		persist = false
	}
	h.App.SetPersistence(persist)
	p, err := h.M.Spawn(h.App.Image())
	if err != nil {
		return err
	}
	h.proc = p
	h.rt = h.newRuntime(p)
	h.lastCkpt = h.M.Clock.Now()
	return h.App.Main(h.rt)
}

// AdoptPreserved binds the harness to a process migrated in from another
// machine (the destination side of a shard-migration cutover) and boots the
// application exactly as after a PHOENIX restart: Main runs in recovery
// mode against the preserved pages the migration installed. The harness
// must not have booted; it owns the destination machine the process was
// built on. A crash during the adopting boot degrades to the application's
// default recovery on this machine, mirroring a failed PHOENIX boot.
func (h *Harness) AdoptPreserved(np *kernel.Process) error {
	if h.proc != nil {
		return fmt.Errorf("recovery: AdoptPreserved on a booted harness")
	}
	if np == nil || np.Machine != h.M {
		return fmt.Errorf("recovery: AdoptPreserved: process not on this harness's machine")
	}
	persist := h.Cfg.Mode == ModeBuiltin || h.Cfg.Mode == ModePhoenix
	if h.Cfg.DisablePersistence {
		persist = false
	}
	h.App.SetPersistence(persist)
	h.proc = np
	h.rt = h.newRuntime(np)
	h.ccGen++
	h.lastCkpt = h.M.Clock.Now()
	h.event(EvAdopt, fmt.Sprintf("%d preserved pages", np.Handoff().MovedPages))
	bootCrash := np.Run(func() {
		if err := h.App.Main(h.rt); err != nil {
			panic(&kernel.Crash{Sig: kernel.SIGABRT, Reason: "main: " + err.Error()})
		}
	})
	if bootCrash != nil {
		h.Stat.BootFailures++
		h.event(EvFallback, "crash during adopting boot: "+bootCrash.Reason)
		return h.fallbackRestart("adopt boot crash")
	}
	// An adoption is a planned handoff, not a crash recovery: leaving the
	// second-failure grace armed would cold-restart — and lose — the moved
	// state on the first real crash after a migration.
	h.rt.DisarmGrace()
	return nil
}

// event appends a diagnostic event, compacting the log when it reaches the
// configured cap: the oldest half is dropped in one copy, which keeps the
// slice chronological, bounds memory at EventCap entries, and amortises to
// O(1) per append.
func (h *Harness) event(kind EventKind, detail string) {
	if limit := h.Cfg.EventCap; limit > 0 && len(h.Stat.Events) >= limit {
		drop := len(h.Stat.Events) - limit/2
		if h.Stat.DroppedByKind == nil {
			h.Stat.DroppedByKind = make(map[EventKind]int)
		}
		for _, e := range h.Stat.Events[:drop] {
			h.Stat.DroppedByKind[e.Kind]++
		}
		kept := copy(h.Stat.Events, h.Stat.Events[drop:])
		h.Stat.Events = h.Stat.Events[:kept]
		h.Stat.DroppedEvents += drop
	}
	h.Stat.Events = append(h.Stat.Events, Event{At: h.M.Clock.Now(), Kind: kind, Detail: detail})
}

// applyLevel makes the application's persistence posture match a ladder
// rung: the vanilla rung runs with persistence off (even the builtin
// recovery state is suspect); the other rungs restore the configured
// posture.
func (h *Harness) applyLevel(l Level) {
	if l == LevelVanilla {
		h.App.SetPersistence(false)
		return
	}
	h.App.SetPersistence(!h.Cfg.DisablePersistence)
}

// ServeRequest executes one externally supplied request end to end,
// including any snapshotting due, failure handling, and recovery. ok and
// effective are the application's verdicts for the request (both false when
// the request crashed the process — the caller sees a failed request while
// the harness recovers). err is non-nil only for simulator problems.
func (h *Harness) ServeRequest(req *workload.Request) (ok, effective bool, err error) {
	h.maybeSnapshot()
	if h.pendingSwitch {
		if err := h.hotSwitch(); err != nil {
			return false, false, err
		}
	}
	h.Stat.Requests++
	if h.Cfg.RewindDomains && h.rewindable() {
		if err := h.proc.BeginRewindDomain(); err != nil {
			return false, false, err
		}
	}
	ci := h.proc.Run(func() { ok, effective = h.App.Handle(req) })
	now := h.M.Clock.Now()
	if ci == nil {
		if h.proc.AS.DomainActive() {
			if _, err := h.proc.CommitRewindDomain(); err != nil {
				return false, false, err
			}
		}
		h.TL.Record(now, ok, effective)
		if ok && h.pendingResume {
			h.TL.MarkResumed(now)
			h.pendingResume = false
		}
		if ok && h.sup != nil {
			if de, to := h.sup.NoteServing(now); de {
				h.Stat.Deescalations++
				h.M.Counters.Deescalations.Add(1)
				h.event(EvDeescalate, to.String())
				h.applyLevel(to)
			}
		}
		return ok, effective, nil
	}
	return false, false, h.handleFailure(ci)
}

// Step executes the generator's next request via ServeRequest. It returns an
// error only for simulator problems; application failures are handled
// internally.
func (h *Harness) Step() error {
	_, _, err := h.ServeRequest(h.Gen.Next())
	return err
}

// RunRequests executes n requests.
func (h *Harness) RunRequests(n int) error {
	for i := 0; i < n; i++ {
		if err := h.Step(); err != nil {
			return err
		}
	}
	return nil
}

// RunUntil executes requests until the simulated clock passes deadline.
func (h *Harness) RunUntil(deadline time.Duration) error {
	for h.M.Clock.Now() < deadline {
		if err := h.Step(); err != nil {
			return err
		}
	}
	return nil
}

func (h *Harness) maybeSnapshot() {
	if h.Cfg.CheckpointInterval <= 0 {
		return
	}
	now := h.M.Clock.Now()
	if now-h.lastCkpt < h.Cfg.CheckpointInterval {
		return
	}
	h.lastCkpt = now
	switch h.Cfg.Mode {
	case ModeBuiltin:
		h.App.Checkpoint()
		h.Stat.CheckpointsTaken++
	case ModeCRIU:
		if h.Cfg.IncrementalCheckpoint {
			h.criuImage = CRIUSnapshotIncremental(h.proc, h.criuImage)
		} else {
			h.criuImage = CRIUSnapshot(h.proc)
		}
		h.Stat.CheckpointsTaken++
	case ModePhoenix:
		// PHOENIX leaves the application's own persistence cadence alone;
		// apps with builtin persistence continue checkpointing.
		h.App.Checkpoint()
		h.Stat.CheckpointsTaken++
	}
}

// handleFailure drives the configured recovery mechanism.
func (h *Harness) handleFailure(ci *kernel.CrashInfo) error {
	h.Stat.Failures++
	h.TL.MarkFailure(ci.Time)
	h.pendingResume = true
	h.event(EvCrash, fmt.Sprintf("%s: %s", ci.Sig, ci.Reason))

	// The dying incarnation's cross-check state is void: a pending hot-switch
	// or an in-flight verdict from the previous process must not fire against
	// whatever boots next.
	h.ccGen++
	h.pendingSwitch = false
	h.switchDetail = ""
	h.switchRef = nil
	h.activeCheck = nil

	// A hang dwells until the watchdog fires.
	if ci.Sig == kernel.SIGALRM {
		h.M.Clock.Advance(h.Cfg.WatchdogTimeout)
	}
	// The restarted process's persistence timer starts fresh; without this
	// a snapshot due "during" the outage would pollute the downtime
	// measurement.
	defer func() { h.lastCkpt = h.M.Clock.Now() }()

	// Supervision: the breaker may escalate the ladder, the backoff holds the
	// restart, and an exhausted retry budget stops the run instead of
	// crash-looping forever. All timing is simulated.
	level := LevelPhoenix
	if h.sup != nil {
		d := h.sup.OnCrash(h.M.Clock.Now())
		if d.Exhausted {
			return fmt.Errorf("recovery: retry budget exhausted after %d consecutive crashes at level %v",
				h.sup.ConsecutiveCrashes(), d.Level)
		}
		if d.Tripped {
			h.Stat.BreakerTrips++
			h.Stat.Escalations++
			h.M.Counters.BreakerTrips.Add(1)
			h.M.Counters.Escalations.Add(1)
			h.event(EvBreakerTrip, fmt.Sprintf("escalating to %v", d.Level))
			h.event(EvEscalate, d.Level.String())
			h.applyLevel(d.Level)
		}
		if d.Backoff > 0 {
			h.Stat.BackoffTotal += d.Backoff
			h.event(EvBackoff, d.Backoff.String())
			h.M.Clock.Advance(d.Backoff)
		}
		level = d.Level
	}

	switch h.Cfg.Mode {
	case ModeVanilla, ModeBuiltin:
		return h.plainRestart(h.Cfg.Mode.String())
	case ModeCRIU:
		return h.criuRestart()
	case ModePhoenix:
		// Sub-process rungs: rewind the request in place, then (or instead)
		// microreboot the faulting component. Either one that succeeds ends
		// the recovery with the process still alive; one that cannot apply
		// (no open domain, no component graph, unattributed crash, reinit
		// failure) falls through to the next rung down.
		if level == LevelRewind {
			if done, err := h.rewindRecover(); done || err != nil {
				return err
			}
		}
		if level <= LevelMicroreboot {
			if done, err := h.microreboot(ci); done || err != nil {
				return err
			}
		}
		// Process-level recovery from here on: any still-open domain is
		// closed keeping its bytes, so restart semantics are unchanged from
		// the pre-domain driver (the crashed request's partial writes are
		// visible to the restart plan exactly as they always were).
		if h.proc.AS.DomainActive() {
			if _, err := h.proc.CommitRewindDomain(); err != nil {
				return err
			}
		}
		switch level {
		case LevelBuiltin:
			return h.plainRestart("escalated: builtin")
		case LevelVanilla:
			return h.plainRestart("escalated: vanilla")
		}
		return h.phoenixRestart(ci)
	}
	return fmt.Errorf("recovery: unknown mode %v", h.Cfg.Mode)
}

// rewindable reports whether the app consents to rewind domains in its
// current configuration.
func (h *Harness) rewindable() bool {
	ra, ok := h.App.(RewindableApp)
	return ok && ra.Rewindable()
}

// rewindRecover attempts LevelRewind recovery: discard the faulting request's
// rewind domain, rolling its page writes back byte-exactly. The process never
// stopped (Run recovered the panic), so nothing restarts. It reports whether
// the rung applied — false when no domain was open (the app is not
// rewindable, or domains are off).
func (h *Harness) rewindRecover() (bool, error) {
	if !h.proc.AS.DomainActive() {
		return false, nil
	}
	n, err := h.proc.DiscardRewindDomain()
	if err != nil {
		return false, err
	}
	// The discard rolled simulated memory back to the top of the request,
	// where no unsafe region was open — but the unsafe counters are runtime
	// state, not simulated memory, so a crash inside an UnsafeBegin/End
	// bracket leaves them raised. Reset them to match the restored memory:
	// without this, one rewound mid-region crash would poison IsSafe and
	// turn every later process-level restart into an unsafe fallback.
	h.rt.Unsafe().Reset()
	if ro, ok := h.App.(RewindObserver); ok {
		ro.AfterRewind()
	}
	h.Stat.Rewinds++
	h.M.Counters.Rewinds.Add(1)
	h.event(EvRewind, fmt.Sprintf("%d pages restored", n))
	return true, nil
}

// microreboot attempts LevelMicroreboot recovery: discard the in-flight
// request's domain (its partial cross-component writes must not survive the
// component they landed in), then discard and reinitialise the faulting
// component plus its transitive dependents. It reports whether the rung
// applied — false (falling through to a process restart) when the app
// declares no component graph, the crash carries no component attribution,
// or a reinit fails.
func (h *Harness) microreboot(ci *kernel.CrashInfo) (bool, error) {
	ca, ok := h.App.(ComponentApp)
	if !ok {
		return false, nil
	}
	if h.proc.AS.DomainActive() {
		if _, err := h.proc.DiscardRewindDomain(); err != nil {
			return false, err
		}
		// The discard restored memory to the top of the request; Go-side
		// handles must follow before any component reboot walks them.
		if ro, ok := h.App.(RewindObserver); ok {
			ro.AfterRewind()
		}
	}
	if ci.Component == "" {
		return false, nil
	}
	set, err := cascade(ca.Components(), ci.Component)
	if err != nil {
		// Attribution named a component the app never declared; component
		// recovery cannot target anything, so escalate.
		h.event(EvFallback, err.Error())
		return false, nil
	}
	units := 0
	for _, c := range set {
		var n int
		var rebootErr error
		// A reboot walking corrupted structures can itself fault; convert
		// that into an escalation, not a simulator crash.
		if crash := h.proc.Run(func() { n, rebootErr = ca.RebootComponent(c.Name) }); crash != nil {
			h.event(EvFallback, fmt.Sprintf("microreboot %s crashed: %s", c.Name, crash.Reason))
			return false, nil
		}
		if rebootErr != nil {
			h.event(EvFallback, fmt.Sprintf("microreboot %s: %v", c.Name, rebootErr))
			return false, nil
		}
		units += n
	}
	// Same argument as rewindRecover: no handler is running anymore and the
	// faulting component was just reinitialised, so a counter left raised by
	// the mid-region crash no longer describes anything live.
	h.rt.Unsafe().Reset()
	h.M.Clock.Advance(h.M.Model.Microreboot(len(set), units))
	h.Stat.Microreboots++
	h.M.Counters.Microreboots.Add(1)
	h.event(EvMicroreboot, fmt.Sprintf("%s (%d components, %d units)", ci.Component, len(set), units))
	return true, nil
}

// plainRestart tears down and reboots; Builtin recovery happens inside
// App.Main when persistence is on.
func (h *Harness) plainRestart(reason string) error {
	np, err := h.rt.Fallback(reason)
	if err != nil {
		return err
	}
	h.proc = np
	h.rt = h.newRuntime(np)
	h.Stat.OtherRestarts++
	h.event(EvRestart, reason)
	return h.bootAfterRecovery()
}

func (h *Harness) criuRestart() error {
	if h.criuImage == nil {
		return h.plainRestart("criu: no image")
	}
	h.proc = CRIURestore(h.M, h.proc, h.criuImage)
	h.rt = h.newRuntime(h.proc)
	// Reattaching can itself fail — e.g. a restored Varnish worker cannot
	// re-handshake with its master (§4.3.3); that degenerates to a full
	// restart.
	if crash := h.proc.Run(func() { h.App.Reattach(h.rt) }); crash != nil {
		h.event(EvCRIUReattachFailed, crash.Reason)
		return h.plainRestart("criu reattach failed: " + crash.Reason)
	}
	h.Stat.OtherRestarts++
	h.event(EvCRIURestore, fmt.Sprintf("image@%v", h.criuImage.TakenAt))
	return nil
}

func (h *Harness) phoenixRestart(ci *kernel.CrashInfo) error {
	// Second-failure rule (§3.2): no second PHOENIX attempt shortly after a
	// PHOENIX restart.
	if h.rt.WithinGrace() {
		h.Stat.GraceFallbacks++
		h.event(EvFallback, "second failure within grace window")
		return h.fallbackRestart("second failure")
	}
	plan, fbReason := h.App.PlanRestart(h.rt, ci, h.Cfg.UnsafeRegions)
	if fbReason != "" {
		h.Stat.UnsafeFallbacks++
		h.event(EvFallback, fbReason)
		return h.fallbackRestart(fbReason)
	}
	plan.SkipIntegrityVerify = h.Cfg.DisableChecksums
	np, err := h.rt.Restart(plan)
	if err != nil {
		// preserve_exec aborted. The kernel rolled back either way, so the
		// source address space is intact and the application's default
		// recovery is safe to run — but the cause is worth distinguishing:
		// an integrity mismatch means the preserved frames were corrupted in
		// flight and the checksums caught it before the successor booted.
		var ie *kernel.IntegrityError
		if errors.As(err, &ie) {
			h.Stat.IntegrityFallbacks++
			h.M.Counters.IntegrityFallbacks.Add(1)
			h.event(EvFallback, "integrity: "+err.Error())
			return h.fallbackRestart("preserved-state corruption detected")
		}
		h.Stat.RecoveryFaultFallbacks++
		h.M.Counters.RecoveryFaultFallbacks.Add(1)
		h.event(EvFallback, "preserve_exec failed: "+err.Error())
		return h.fallbackRestart("preserve_exec failed")
	}
	h.proc = np
	h.rt = h.newRuntime(np)
	h.Stat.PhoenixRestarts++
	h.event(EvPhoenixRestart, "")

	// Boot in recovery mode; a crash here means the preserved state is
	// unusable — fall back to default recovery.
	bootCrash := h.proc.Run(func() {
		if err := h.App.Main(h.rt); err != nil {
			panic(&kernel.Crash{Sig: kernel.SIGABRT, Reason: "main: " + err.Error()})
		}
	})
	if bootCrash != nil {
		h.Stat.BootFailures++
		h.Stat.GraceFallbacks++
		h.event(EvFallback, "crash during phoenix boot: "+bootCrash.Reason)
		return h.fallbackRestart("phoenix boot crash")
	}

	if h.Cfg.CrossCheck {
		if spec, ok := h.App.CrossCheck(h.rt); ok {
			userVerdict := spec.OnVerdict
			gen := h.ccGen
			spec.OnVerdict = func(v core.Verdict) {
				if userVerdict != nil {
					userVerdict(v)
				}
				// A verdict that outlived its incarnation (the clock timer
				// fired after another crash) must not schedule a switch.
				if h.ccGen != gen {
					return
				}
				if !v.Match {
					h.pendingSwitch = true
					h.switchDetail = fmt.Sprintf("diverged keys: %v", v.Diverged)
					h.switchRef = v.Reference
				}
			}
			h.activeCheck = h.rt.StartCrossCheck(spec)
		}
	}
	return nil
}

// fallbackRestart runs the application's default recovery path.
func (h *Harness) fallbackRestart(reason string) error {
	np, err := h.rt.Fallback(reason)
	if err != nil {
		return err
	}
	h.proc = np
	h.rt = h.newRuntime(np)
	return h.bootAfterRecovery()
}

// bootAfterRecovery runs Main, tolerating at most a few consecutive boot
// crashes (a persistently corrupt on-disk image would loop forever
// otherwise; the paper's scope excludes such cases, §3.5).
func (h *Harness) bootAfterRecovery() error {
	for attempt := 0; attempt < 3; attempt++ {
		crash := h.proc.Run(func() {
			if err := h.App.Main(h.rt); err != nil {
				panic(&kernel.Crash{Sig: kernel.SIGABRT, Reason: "main: " + err.Error()})
			}
		})
		if crash == nil {
			return nil
		}
		h.Stat.BootFailures++
		h.event(EvBootCrash, crash.Reason)
		np, err := h.rt.Fallback("boot crash")
		if err != nil {
			return err
		}
		h.proc = np
		h.rt = h.newRuntime(np)
	}
	return fmt.Errorf("recovery: %s could not boot after repeated crashes", h.App.Name())
}

// hotSwitch discards the speculative process and switches to the validated
// recovery state after a cross-check mismatch (§3.6). The default recovery
// ran concurrently in the background process, so the switch itself is
// charged only the base exec cost: the rebuild work happens offline.
func (h *Harness) hotSwitch() error {
	h.pendingSwitch = false
	h.Stat.CrossFallbacks++
	h.event(EvHotSwitch, h.switchDetail)
	var err error
	h.M.Clock.RunOffline(func() {
		var np *kernel.Process
		np, err = h.rt.Fallback("cross-check mismatch")
		if err != nil {
			return
		}
		h.proc = np
		h.rt = h.newRuntime(np)
		if rr, ok := h.App.(ReferenceRestorer); ok && h.switchRef != nil {
			err = rr.RestoreReference(h.rt, h.switchRef)
		} else {
			err = h.App.Main(h.rt)
		}
	})
	if err != nil {
		return err
	}
	// The switch is visible to clients as one brief process swap.
	h.M.Clock.Advance(h.M.Model.Exec())
	return nil
}

// HandleFailureForREPL exposes the failure-handling path for interactive
// drivers (cmd/phxkv) that run requests themselves instead of via Step.
func (h *Harness) HandleFailureForREPL(ci *kernel.CrashInfo) error {
	return h.handleFailure(ci)
}

// CrossCheckResult returns the latest cross-check verdict (nil if none ran
// or the check is still pending).
func (h *Harness) CrossCheckResult() *core.Verdict {
	if h.activeCheck == nil {
		return nil
	}
	return h.activeCheck.Verdict()
}
