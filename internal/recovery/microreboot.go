package recovery

import (
	"fmt"
	"strings"
	"time"

	"phoenix/internal/faultinject"
	"phoenix/internal/kernel"
)

// This file implements the recovery-granularity campaign: CheckMicroreboot
// measures, for one application and one mid-request fault, the simulated
// unavailability window — crash to first answered request — at every rung of
// the extended ladder it supports: request rewind, component microreboot,
// PHOENIX preserve_exec, builtin restart, and vanilla restart. The campaign's
// contract is the granularity ordering itself: a rewind must be cheaper than
// a microreboot, and a microreboot cheaper than any process-level recovery,
// on the same fault under the same workload.

// MicrorebootSpec names one application plus the fault hooks the granularity
// campaign drives: a scripted mid-request bug (armed via the app's ArmBug
// method) for the rewind and process-level rungs, and a component name (armed
// via ComponentApp.ArmComponentCrash) for the microreboot rung. Empty hooks
// skip the rungs that need them.
type MicrorebootSpec struct {
	Name string
	Mk   AppFactory
	// Bug is a scripted fault that crashes mid-request on transient state
	// only, so every rung can recover from it.
	Bug string
	// Component is the component whose crash exercises the microreboot rung
	// ("" when the app declares no component graph).
	Component string
}

// MicrorebootConfig parameterises CheckMicroreboot.
type MicrorebootConfig struct {
	// Seed is the machine seed (runs are deterministic replays).
	Seed int64
	// Warm is how many requests to serve before the fault (default 40).
	Warm int
	// Limit bounds how many post-fault requests may pass before the first
	// answered one; exceeding it fails the campaign (default 50).
	Limit int
}

// GranularityWindow is one measured rung: the unavailability window from the
// instant the faulting request was issued to the completion of the first
// answered request after it.
type GranularityWindow struct {
	// Granularity names the rung the harness was pinned to: "rewind",
	// "microreboot", "phoenix", "builtin", or "vanilla".
	Granularity string `json:"granularity"`
	// Window is the measured unavailability (simulated time, ns in JSON).
	Window time.Duration `json:"window_ns"`
	// Mechanism reports what actually recovered the fault (e.g. a phoenix-
	// pinned run that hit an unsafe region reports "fallback").
	Mechanism string `json:"mechanism"`
	// Requests counts requests from the faulting one to the first answered
	// one, inclusive.
	Requests int `json:"requests"`
}

// MicrorebootOutcome is one application's granularity table, cheapest rung
// first.
type MicrorebootOutcome struct {
	App     string              `json:"app"`
	Windows []GranularityWindow `json:"windows"`
}

func (o MicrorebootOutcome) String() string {
	parts := make([]string, 0, len(o.Windows))
	for _, w := range o.Windows {
		parts = append(parts, fmt.Sprintf("%s=%v", w.Granularity, w.Window))
	}
	return fmt.Sprintf("%s: %s", o.App, strings.Join(parts, " "))
}

// CheckMicroreboot measures every supported rung for every spec and enforces
// the granularity contract: for each application, rewind < microreboot <
// process-level recovery (whichever of those rungs the app supports). All
// timing flows through the simulated clock, so outcomes are deterministic.
func CheckMicroreboot(specs []MicrorebootSpec, cfg MicrorebootConfig) ([]MicrorebootOutcome, error) {
	if cfg.Warm <= 0 {
		cfg.Warm = 40
	}
	if cfg.Limit <= 0 {
		cfg.Limit = 50
	}
	var out []MicrorebootOutcome
	for _, spec := range specs {
		o, err := checkOneApp(spec, cfg)
		if err != nil {
			return out, err
		}
		out = append(out, o)
	}
	return out, nil
}

func checkOneApp(spec MicrorebootSpec, cfg MicrorebootConfig) (MicrorebootOutcome, error) {
	o := MicrorebootOutcome{App: spec.Name}
	// Probe the app's capabilities once on a throwaway instance.
	probe, _ := spec.Mk(faultinject.New())
	ra, isRewindable := probe.(RewindableApp)
	rewind := spec.Bug != "" && isRewindable && ra.Rewindable()
	_, isComponent := probe.(ComponentApp)
	micro := spec.Component != "" && isComponent

	byRung := map[string]time.Duration{}
	for _, gran := range []string{"rewind", "microreboot", "phoenix", "builtin", "vanilla"} {
		switch {
		case gran == "rewind" && !rewind,
			gran == "microreboot" && !micro,
			spec.Bug == "" && gran != "microreboot":
			continue
		}
		w, err := measureWindow(spec, gran, cfg)
		if err != nil {
			return o, fmt.Errorf("%s/%s: %w", spec.Name, gran, err)
		}
		o.Windows = append(o.Windows, w)
		byRung[gran] = w.Window
	}

	// The contract: each finer granularity must strictly beat the next
	// coarser one on the same application.
	type edge struct{ fine, coarse string }
	for _, e := range []edge{
		{"rewind", "microreboot"},
		{"rewind", "phoenix"},
		{"microreboot", "phoenix"},
	} {
		f, fok := byRung[e.fine]
		c, cok := byRung[e.coarse]
		if fok && cok && f >= c {
			return o, fmt.Errorf("%s: %s window %v is not below %s window %v (%s)",
				spec.Name, e.fine, f, e.coarse, c, o)
		}
	}
	return o, nil
}

// measureWindow runs one application once, pinned to one ladder rung, fires
// the fault, and measures crash → first answered request on the simulated
// clock.
func measureWindow(spec MicrorebootSpec, gran string, cfg MicrorebootConfig) (GranularityWindow, error) {
	w := GranularityWindow{Granularity: gran}
	m := kernel.NewMachine(cfg.Seed)
	inj := faultinject.New()
	app, gen := spec.Mk(inj)

	var hcfg Config
	switch gran {
	case "rewind", "microreboot":
		hcfg.Mode = ModePhoenix
		hcfg.Supervise = true
		hcfg.RewindDomains = gran == "rewind"
		floor := LevelMicroreboot
		if gran == "rewind" {
			floor = LevelRewind
		}
		// A nanosecond of backoff keeps the supervisor's state machine honest
		// while leaving the window dominated by the mechanism under
		// measurement, not the hold-down policy.
		hcfg.Supervisor = SupervisorConfig{
			Floor:       floor,
			BackoffBase: time.Nanosecond,
			BackoffMax:  time.Nanosecond,
		}
	case "phoenix":
		hcfg.Mode = ModePhoenix
	case "builtin":
		hcfg.Mode = ModeBuiltin
	case "vanilla":
		hcfg.Mode = ModeVanilla
	default:
		return w, fmt.Errorf("unknown granularity %q", gran)
	}

	h := NewHarness(m, hcfg, app, gen, inj)
	if err := h.Boot(); err != nil {
		return w, err
	}
	if err := h.RunRequests(cfg.Warm); err != nil {
		return w, err
	}

	if gran == "microreboot" {
		app.(ComponentApp).ArmComponentCrash(spec.Component)
	} else {
		ba, ok := app.(interface{ ArmBug(string) })
		if !ok {
			return w, fmt.Errorf("app has no ArmBug method for bug %q", spec.Bug)
		}
		ba.ArmBug(spec.Bug)
	}

	start := m.Clock.Now()
	recovered := false
	for i := 0; i < cfg.Limit && !recovered; i++ {
		ok, _, err := h.ServeRequest(h.Gen.Next())
		if err != nil {
			return w, err
		}
		w.Requests++
		if i == 0 && h.Stat.Failures == 0 {
			return w, fmt.Errorf("armed fault did not fire")
		}
		if ok {
			w.Window = m.Clock.Now() - start
			recovered = true
		}
	}
	if !recovered {
		return w, fmt.Errorf("no answered request within %d after the fault", cfg.Limit)
	}

	// Per-rung sanity: the pinned rung — and only it — must have recovered.
	s := h.Stat
	fallbacks := s.UnsafeFallbacks + s.GraceFallbacks + s.CrossFallbacks +
		s.RecoveryFaultFallbacks + s.IntegrityFallbacks + s.BootFailures
	switch gran {
	case "rewind":
		if s.Rewinds != 1 || s.Microreboots != 0 || s.PhoenixRestarts != 0 || s.OtherRestarts != 0 || fallbacks != 0 {
			return w, fmt.Errorf("rewind rung leaked: rewinds=%d microreboots=%d phoenix=%d other=%d fallbacks=%d",
				s.Rewinds, s.Microreboots, s.PhoenixRestarts, s.OtherRestarts, fallbacks)
		}
	case "microreboot":
		if s.Microreboots != 1 || s.Rewinds != 0 || s.PhoenixRestarts != 0 || s.OtherRestarts != 0 || fallbacks != 0 {
			return w, fmt.Errorf("microreboot rung leaked: rewinds=%d microreboots=%d phoenix=%d other=%d fallbacks=%d",
				s.Rewinds, s.Microreboots, s.PhoenixRestarts, s.OtherRestarts, fallbacks)
		}
	default:
		if s.Rewinds != 0 || s.Microreboots != 0 {
			return w, fmt.Errorf("sub-process rung ran while pinned to %s: rewinds=%d microreboots=%d",
				gran, s.Rewinds, s.Microreboots)
		}
	}
	switch {
	case s.Rewinds > 0:
		w.Mechanism = "rewind"
	case s.Microreboots > 0:
		w.Mechanism = "microreboot"
	case s.PhoenixRestarts > 0:
		w.Mechanism = "preserve_exec"
	case fallbacks > 0:
		w.Mechanism = "fallback"
	default:
		w.Mechanism = "restart"
	}
	return w, nil
}

// FmtMicroreboot renders the campaign result for terminal output: one row per
// application, one column per measured rung.
func FmtMicroreboot(outs []MicrorebootOutcome) string {
	var b strings.Builder
	for _, o := range outs {
		fmt.Fprintf(&b, "%-18s", o.App)
		for _, w := range o.Windows {
			fmt.Fprintf(&b, " %s=%v(%s)", w.Granularity, w.Window, w.Mechanism)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
