package recovery

import (
	"fmt"
	"testing"
	"time"

	"phoenix/internal/core"
	"phoenix/internal/heap"
	"phoenix/internal/kernel"
	"phoenix/internal/linker"
	"phoenix/internal/mem"
	"phoenix/internal/workload"
)

// toyApp is a minimal App: one counter in simulated memory, optional
// persistence to one disk file, crash on demand.
type toyApp struct {
	img         *linker.Image
	rt          *core.Runtime
	counter     mem.VAddr
	persistence bool
	crashNext   string // "", "segv", "hang", "unsafe"
	boots       int
}

func newToyApp() *toyApp {
	b := linker.NewBuilder("toy", 0x0010_0000)
	b.Var("cfg", 8, linker.SecData)
	return &toyApp{img: b.Build()}
}

func (a *toyApp) Name() string         { return "toy" }
func (a *toyApp) Image() *linker.Image { return a.img }
func (a *toyApp) SetPersistence(on bool) {
	a.persistence = on
}

func (a *toyApp) Main(rt *core.Runtime) error {
	a.rt = rt
	a.boots++
	h, err := rt.OpenHeap(heap.Options{})
	if err != nil {
		return err
	}
	if rt.IsRecoveryMode() {
		a.counter = rt.RecoveryInfo()
		rt.FinishRecovery(false)
		return nil
	}
	a.counter = h.Alloc(8)
	var v uint64
	if a.persistence {
		if data, ok := rt.Proc().Machine.Disk.ReadFile("toy.ckpt"); ok && len(data) == 8 {
			for i := 0; i < 8; i++ {
				v |= uint64(data[i]) << (8 * i)
			}
		}
	}
	rt.Proc().AS.WriteU64(a.counter, v)
	rt.FinishRecovery(false)
	return nil
}

func (a *toyApp) value() uint64 { return a.rt.Proc().AS.ReadU64(a.counter) }

func (a *toyApp) Handle(req *workload.Request) (bool, bool) {
	m := a.rt.Proc().Machine
	m.Clock.Advance(m.Model.RequestBase)
	switch a.crashNext {
	case "segv":
		a.crashNext = ""
		a.rt.Proc().AS.ReadU64(0xBAD000)
	case "hang":
		a.crashNext = ""
		panic(&kernel.Crash{Sig: kernel.SIGALRM, Reason: "toy hang"})
	case "unsafe":
		a.crashNext = ""
		a.rt.UnsafeBegin("toy")
		a.rt.Proc().AS.ReadU64(0xBAD000)
	}
	a.rt.Proc().AS.WriteU64(a.counter, a.value()+1)
	return true, true
}

func (a *toyApp) Checkpoint() {
	if !a.persistence {
		return
	}
	v := a.value()
	buf := make([]byte, 8)
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	a.rt.Proc().Machine.Disk.WriteFile("toy.ckpt", buf)
}

func (a *toyApp) PlanRestart(rt *core.Runtime, ci *kernel.CrashInfo, useUnsafe bool) (core.RestartPlan, string) {
	if useUnsafe && !rt.IsSafe("toy") {
		return core.RestartPlan{}, "unsafe region: toy"
	}
	return core.RestartPlan{InfoAddr: a.counter, WithHeap: true}, ""
}

func (a *toyApp) Reattach(rt *core.Runtime) { a.rt = rt }

func (a *toyApp) Dump() core.StateDump {
	return core.StateDump{"counter": fmt.Sprint(a.value())}
}

func (a *toyApp) CrossCheck(rt *core.Runtime) (core.CrossCheckSpec, bool) {
	return core.CrossCheckSpec{}, false
}

func harness(t *testing.T, cfg Config) (*Harness, *toyApp) {
	t.Helper()
	m := kernel.NewMachine(1)
	app := newToyApp()
	h := NewHarness(m, cfg, app, workload.NewFillSeq(8), nil)
	if err := h.Boot(); err != nil {
		t.Fatal(err)
	}
	return h, app
}

func TestCleanRun(t *testing.T) {
	h, app := harness(t, Config{Mode: ModeVanilla})
	if err := h.RunRequests(100); err != nil {
		t.Fatal(err)
	}
	if app.value() != 100 || h.Stat.Failures != 0 {
		t.Fatalf("value=%d stats=%+v", app.value(), h.Stat)
	}
}

func TestVanillaLosesCounter(t *testing.T) {
	h, app := harness(t, Config{Mode: ModeVanilla})
	h.RunRequests(50)
	app.crashNext = "segv"
	if err := h.RunRequests(50); err != nil {
		t.Fatal(err)
	}
	// 50 before + 49 after (crashing request lost), counter reset at crash.
	if app.value() != 49 {
		t.Fatalf("value = %d, want 49", app.value())
	}
	if h.Stat.OtherRestarts != 1 {
		t.Fatalf("stats %+v", h.Stat)
	}
}

func TestBuiltinRestoresCheckpoint(t *testing.T) {
	h, app := harness(t, Config{Mode: ModeBuiltin, CheckpointInterval: time.Millisecond})
	h.RunRequests(100)
	app.crashNext = "segv"
	if err := h.RunRequests(10); err != nil {
		t.Fatal(err)
	}
	// Checkpoints land every ~80 requests at this cadence; at most one
	// interval of work is lost.
	if app.value() < 80 {
		t.Fatalf("builtin lost too much: %d", app.value())
	}
}

func TestCRIURestoresImage(t *testing.T) {
	h, app := harness(t, Config{Mode: ModeCRIU, CheckpointInterval: time.Millisecond})
	h.RunRequests(100)
	app.crashNext = "segv"
	if err := h.RunRequests(10); err != nil {
		t.Fatal(err)
	}
	if app.value() < 80 {
		t.Fatalf("criu lost too much: %d", app.value())
	}
	if h.Stat.CheckpointsTaken == 0 {
		t.Fatal("no criu snapshots")
	}
}

func TestPhoenixPreservesCounter(t *testing.T) {
	h, app := harness(t, Config{Mode: ModePhoenix, UnsafeRegions: true})
	h.RunRequests(50)
	app.crashNext = "segv"
	if err := h.RunRequests(50); err != nil {
		t.Fatal(err)
	}
	if app.value() != 99 { // only the crashing request lost
		t.Fatalf("value = %d, want 99", app.value())
	}
	if h.Stat.PhoenixRestarts != 1 || app.boots != 2 {
		t.Fatalf("stats %+v boots=%d", h.Stat, app.boots)
	}
}

func TestPhoenixUnsafeFallback(t *testing.T) {
	h, app := harness(t, Config{Mode: ModePhoenix, UnsafeRegions: true})
	h.RunRequests(50)
	app.crashNext = "unsafe"
	if err := h.RunRequests(10); err != nil {
		t.Fatal(err)
	}
	if h.Stat.UnsafeFallbacks != 1 || h.Stat.PhoenixRestarts != 0 {
		t.Fatalf("stats %+v", h.Stat)
	}
	if app.value() >= 50 {
		t.Fatalf("fallback kept state: %d", app.value())
	}
}

func TestPhoenixUnsafeIgnoredUnderN(t *testing.T) {
	h, app := harness(t, Config{Mode: ModePhoenix, UnsafeRegions: false})
	h.RunRequests(50)
	app.crashNext = "unsafe"
	if err := h.RunRequests(10); err != nil {
		t.Fatal(err)
	}
	if h.Stat.PhoenixRestarts != 1 || h.Stat.UnsafeFallbacks != 0 {
		t.Fatalf("stats %+v", h.Stat)
	}
}

func TestWatchdogDwellOnHang(t *testing.T) {
	h, app := harness(t, Config{Mode: ModePhoenix, WatchdogTimeout: 3 * time.Second})
	h.RunRequests(50)
	app.crashNext = "hang"
	if err := h.RunRequests(10); err != nil {
		t.Fatal(err)
	}
	d := h.TL.Summarize().Downtime
	if d < 3*time.Second {
		t.Fatalf("hang downtime %v < watchdog timeout", d)
	}
}

func TestSecondFailureRule(t *testing.T) {
	h, app := harness(t, Config{Mode: ModePhoenix, UnsafeRegions: true})
	h.RunRequests(50)
	app.crashNext = "segv"
	h.RunRequests(1)
	app.crashNext = "segv" // immediately again, inside the grace window
	if err := h.RunRequests(5); err != nil {
		t.Fatal(err)
	}
	if h.Stat.PhoenixRestarts != 1 || h.Stat.GraceFallbacks != 1 {
		t.Fatalf("stats %+v", h.Stat)
	}
}

func TestTimelineMarks(t *testing.T) {
	h, app := harness(t, Config{Mode: ModePhoenix})
	h.RunRequests(50)
	app.crashNext = "segv"
	if err := h.RunRequests(10); err != nil {
		t.Fatal(err)
	}
	if _, ok := h.TL.FailureAt(); !ok {
		t.Fatal("failure not marked")
	}
	if _, ok := h.TL.ResumedAt(); !ok {
		t.Fatal("resume not marked")
	}
	if h.TL.Summarize().Downtime <= 0 {
		t.Fatal("no downtime measured")
	}
}

func TestDisablePersistence(t *testing.T) {
	h, app := harness(t, Config{Mode: ModePhoenix, DisablePersistence: true, CheckpointInterval: time.Millisecond})
	h.RunRequests(50)
	if app.persistence {
		t.Fatal("persistence not disabled")
	}
	if h.Proc().Machine.Disk.Exists("toy.ckpt") {
		t.Fatal("checkpoint written despite DisablePersistence")
	}
}

func TestEventsRecorded(t *testing.T) {
	h, app := harness(t, Config{Mode: ModePhoenix})
	h.RunRequests(10)
	app.crashNext = "segv"
	h.RunRequests(5)
	kinds := map[EventKind]bool{}
	for _, e := range h.Stat.Events {
		kinds[e.Kind] = true
	}
	if !kinds[EvCrash] || !kinds[EvPhoenixRestart] {
		t.Fatalf("events = %+v", h.Stat.Events)
	}
}

func TestRunUntil(t *testing.T) {
	h, _ := harness(t, Config{Mode: ModeVanilla})
	deadline := h.M.Clock.Now() + 50*time.Millisecond
	if err := h.RunUntil(deadline); err != nil {
		t.Fatal(err)
	}
	if h.M.Clock.Now() < deadline {
		t.Fatalf("clock %v short of deadline %v", h.M.Clock.Now(), deadline)
	}
	if h.Stat.Requests == 0 {
		t.Fatal("no requests ran")
	}
}

func TestHandleFailureForREPL(t *testing.T) {
	h, app := harness(t, Config{Mode: ModePhoenix})
	h.RunRequests(10)
	ci := h.Proc().Run(func() { h.Proc().AS.ReadU64(0xBAD000) })
	if ci == nil {
		t.Fatal("no crash")
	}
	if err := h.HandleFailureForREPL(ci); err != nil {
		t.Fatal(err)
	}
	if h.Stat.PhoenixRestarts != 1 {
		t.Fatalf("stats %+v", h.Stat)
	}
	if app.value() != 10 {
		t.Fatalf("counter = %d", app.value())
	}
}

// ccApp extends toyApp with cross-check wiring whose snapshot dump can be
// forced to diverge.
type ccApp struct {
	*toyApp
	lie bool // make the preserved snapshot claim a wrong counter
}

func (a *ccApp) CrossCheck(rt *core.Runtime) (core.CrossCheckSpec, bool) {
	counter := a.counter
	truth := fmt.Sprint(rt.Proc().AS.ReadU64(counter))
	return core.CrossCheckSpec{
		SnapshotDump: func(snap *mem.AddressSpace) core.StateDump {
			v := fmt.Sprint(snap.ReadU64(counter))
			if a.lie {
				v = "corrupted"
			}
			return core.StateDump{"counter": v}
		},
		ReferenceRecover: func() (core.StateDump, time.Duration) {
			return core.StateDump{"counter": truth}, 100 * time.Millisecond
		},
	}, true
}

func (a *ccApp) RestoreReference(rt *core.Runtime, ref core.StateDump) error {
	if err := a.Main(rt); err != nil {
		return err
	}
	var v uint64
	fmt.Sscan(ref["counter"], &v)
	rt.Proc().AS.WriteU64(a.counter, v)
	return nil
}

func ccHarness(t *testing.T, lie bool) (*Harness, *ccApp) {
	t.Helper()
	m := kernel.NewMachine(1)
	app := &ccApp{toyApp: newToyApp(), lie: lie}
	h := NewHarness(m, Config{Mode: ModePhoenix, CrossCheck: true}, app, workload.NewFillSeq(8), nil)
	if err := h.Boot(); err != nil {
		t.Fatal(err)
	}
	return h, app
}

func TestCrossCheckPassKeepsSpeculation(t *testing.T) {
	h, app := ccHarness(t, false)
	h.RunRequests(50)
	app.crashNext = "segv"
	if err := h.RunRequests(10); err != nil {
		t.Fatal(err)
	}
	h.M.Clock.Advance(time.Second)
	if err := h.RunRequests(10); err != nil {
		t.Fatal(err)
	}
	v := h.CrossCheckResult()
	if v == nil || !v.Match {
		t.Fatalf("verdict %+v", v)
	}
	if h.Stat.CrossFallbacks != 0 {
		t.Fatalf("stats %+v", h.Stat)
	}
}

func TestCrossCheckMismatchHotSwitch(t *testing.T) {
	h, app := ccHarness(t, true)
	h.RunRequests(50)
	app.crashNext = "segv"
	if err := h.RunRequests(10); err != nil {
		t.Fatal(err)
	}
	h.M.Clock.Advance(time.Second)
	// One step processes the pending switch.
	if err := h.RunRequests(5); err != nil {
		t.Fatal(err)
	}
	if h.Stat.CrossFallbacks != 1 {
		t.Fatalf("stats %+v", h.Stat)
	}
	// The hot-switch restored the validated counter value (50 pre-crash
	// minus the lost in-flight request, plus post-verdict requests).
	if app.value() < 50 {
		t.Fatalf("counter = %d after hot switch", app.value())
	}
}

// crashyBootApp fails its first post-fallback Main to exercise the repeated
// boot-crash path.
type crashyBootApp struct {
	*toyApp
	bootCrashes int
}

func (a *crashyBootApp) Main(rt *core.Runtime) error {
	if !rt.IsRecoveryMode() && a.boots > 0 && a.bootCrashes > 0 {
		a.bootCrashes--
		a.boots++
		panic(&kernel.Crash{Sig: kernel.SIGABRT, Reason: "boot crash"})
	}
	return a.toyApp.Main(rt)
}

func TestBootCrashRetries(t *testing.T) {
	m := kernel.NewMachine(1)
	app := &crashyBootApp{toyApp: newToyApp(), bootCrashes: 2}
	h := NewHarness(m, Config{Mode: ModeVanilla}, app, workload.NewFillSeq(8), nil)
	if err := h.Boot(); err != nil {
		t.Fatal(err)
	}
	h.RunRequests(10)
	app.crashNext = "segv"
	if err := h.RunRequests(10); err != nil {
		t.Fatal(err)
	}
	if h.Stat.BootFailures != 2 {
		t.Fatalf("boot failures = %d", h.Stat.BootFailures)
	}
	if app.value() != 9 {
		t.Fatalf("counter = %d", app.value())
	}
}

func TestBootCrashGivesUp(t *testing.T) {
	m := kernel.NewMachine(1)
	app := &crashyBootApp{toyApp: newToyApp(), bootCrashes: 99}
	h := NewHarness(m, Config{Mode: ModeVanilla}, app, workload.NewFillSeq(8), nil)
	if err := h.Boot(); err != nil {
		t.Fatal(err)
	}
	app.crashNext = "segv"
	err := h.RunRequests(5)
	if err == nil {
		t.Fatal("endless boot crashes not surfaced")
	}
}

func TestModeStrings(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeVanilla: "Vanilla", ModeBuiltin: "Builtin", ModeCRIU: "CRIU", ModePhoenix: "PHOENIX",
	} {
		if m.String() != want {
			t.Fatalf("%d.String() = %s", m, m.String())
		}
	}
	if h, _ := harness(t, Config{Mode: ModeVanilla}); h.Runtime() == nil {
		t.Fatal("Runtime() nil after boot")
	}
}
