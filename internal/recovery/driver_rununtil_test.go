package recovery

import (
	"testing"
	"time"

	"phoenix/internal/kernel"
	"phoenix/internal/workload"
)

// TestRunUntilWithSupervisedCrashes drives RunUntil through repeated crashes
// under the supervisor: the deadline must still be reached, every crash must
// be charged backoff, and the breaker must walk the ladder down.
func TestRunUntilWithSupervisedCrashes(t *testing.T) {
	h, app := harness(t, Config{
		Mode:      ModePhoenix,
		Supervise: true,
		Supervisor: SupervisorConfig{
			BreakerK: 2, Window: time.Hour, BackoffBase: 50 * time.Millisecond,
			StablePeriod: time.Hour, RetryBudget: 16,
		},
	})
	for i := 0; i < 4; i++ {
		app.crashNext = "segv"
		deadline := h.M.Clock.Now() + 20*time.Millisecond
		if err := h.RunUntil(deadline); err != nil {
			t.Fatal(err)
		}
		if h.M.Clock.Now() < deadline {
			t.Fatalf("crash %d: clock %v short of deadline %v", i, h.M.Clock.Now(), deadline)
		}
	}
	if h.Stat.Failures != 4 {
		t.Fatalf("failures = %d, want 4", h.Stat.Failures)
	}
	if h.Stat.BackoffTotal == 0 {
		t.Fatal("supervised crashes charged no backoff")
	}
	// BreakerK=2, history resets on each trip: crash 2 trips PHOENIX→Builtin,
	// crash 4 trips Builtin→Vanilla.
	if h.Stat.Escalations != 2 || h.EscalationLevel() != LevelVanilla {
		t.Fatalf("escalations=%d level=%v, want 2 escalations down to Vanilla",
			h.Stat.Escalations, h.EscalationLevel())
	}
	if h.Stat.Requests == 0 {
		t.Fatal("no requests ran")
	}
}

// TestRunUntilSurfacesRetryExhaustion: when every request crashes and the
// budget runs out, RunUntil must return the terminal error instead of
// spinning forever.
func TestRunUntilSurfacesRetryExhaustion(t *testing.T) {
	m := kernel.NewMachine(1)
	app := newToyApp()
	h := NewHarness(m, Config{
		Mode:      ModePhoenix,
		Supervise: true,
		Supervisor: SupervisorConfig{
			BreakerK: 2, Window: time.Hour, BackoffBase: time.Millisecond,
			StablePeriod: time.Hour, RetryBudget: 3,
		},
	}, app, workload.NewFillSeq(8), nil)
	if err := h.Boot(); err != nil {
		t.Fatal(err)
	}
	var err error
	for i := 0; i < 10 && err == nil; i++ {
		app.crashNext = "segv"
		err = h.RunUntil(h.M.Clock.Now() + 10*time.Millisecond)
	}
	if err == nil {
		t.Fatal("exhausted retry budget did not surface an error")
	}
}

// TestHotSwitchLeavesLadderAlone: a cross-check mismatch hot-switch is a
// planned swap, not a crash — it must not move the escalation ladder or
// consume restart budget.
func TestHotSwitchLeavesLadderAlone(t *testing.T) {
	m := kernel.NewMachine(1)
	app := &ccApp{toyApp: newToyApp(), lie: true}
	h := NewHarness(m, Config{
		Mode: ModePhoenix, CrossCheck: true,
		Supervise: true,
		Supervisor: SupervisorConfig{
			BreakerK: 3, Window: time.Hour, BackoffBase: time.Millisecond,
			StablePeriod: time.Hour, RetryBudget: 16,
		},
	}, app, workload.NewFillSeq(8), nil)
	if err := h.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := h.RunRequests(50); err != nil {
		t.Fatal(err)
	}
	app.crashNext = "segv"
	if err := h.RunRequests(10); err != nil {
		t.Fatal(err)
	}
	crashesBefore := h.sup.ConsecutiveCrashes()
	h.M.Clock.Advance(time.Second) // let the background verdict fire
	if err := h.RunRequests(5); err != nil {
		t.Fatal(err)
	}
	if h.Stat.CrossFallbacks != 1 {
		t.Fatalf("stats %+v: hot switch did not happen", h.Stat)
	}
	if h.EscalationLevel() != LevelPhoenix {
		t.Fatalf("hot switch moved the ladder to %v", h.EscalationLevel())
	}
	if h.sup.ConsecutiveCrashes() > crashesBefore {
		t.Fatalf("hot switch consumed restart budget (%d -> %d)",
			crashesBefore, h.sup.ConsecutiveCrashes())
	}
	if h.Stat.Escalations != 0 {
		t.Fatalf("stats %+v: hot switch escalated", h.Stat)
	}
	// The switch restored the validated state and serving continued.
	if app.value() < 50 {
		t.Fatalf("counter = %d after hot switch", app.value())
	}
}

// TestHotSwitchThenLadderStillWorks: after a hot switch, real crashes must
// still drive the breaker — the swap must leave the supervisor functional.
func TestHotSwitchThenLadderStillWorks(t *testing.T) {
	m := kernel.NewMachine(1)
	app := &ccApp{toyApp: newToyApp(), lie: true}
	h := NewHarness(m, Config{
		Mode: ModePhoenix, CrossCheck: true,
		Supervise: true,
		Supervisor: SupervisorConfig{
			BreakerK: 2, Window: time.Hour, BackoffBase: time.Millisecond,
			StablePeriod: time.Hour, RetryBudget: 16,
		},
	}, app, workload.NewFillSeq(8), nil)
	if err := h.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := h.RunRequests(20); err != nil {
		t.Fatal(err)
	}
	app.crashNext = "segv" // crash 1: supervised PHOENIX restart
	if err := h.RunRequests(5); err != nil {
		t.Fatal(err)
	}
	h.M.Clock.Advance(time.Second)
	if err := h.RunRequests(5); err != nil { // processes the hot switch
		t.Fatal(err)
	}
	if h.Stat.CrossFallbacks != 1 {
		t.Fatalf("stats %+v: no hot switch", h.Stat)
	}
	app.lie = false        // subsequent checks pass; isolate the breaker
	app.crashNext = "segv" // crash 2: trips BreakerK=2
	if err := h.RunRequests(5); err != nil {
		t.Fatal(err)
	}
	if h.Stat.Escalations != 1 || h.EscalationLevel() != LevelBuiltin {
		t.Fatalf("escalations=%d level=%v, want breaker trip to Builtin after second real crash",
			h.Stat.Escalations, h.EscalationLevel())
	}
}

// TestEventCapBoundsEvents: the bounded event ring must stay under the cap,
// count what it dropped, keep the newest entries, and stay time-ordered.
func TestEventCapBoundsEvents(t *testing.T) {
	h, app := harness(t, Config{Mode: ModePhoenix, EventCap: 8})
	for i := 0; i < 20; i++ {
		app.crashNext = "segv"
		if err := h.RunRequests(2); err != nil {
			t.Fatal(err)
		}
	}
	ev := h.Stat.Events
	if len(ev) > 8 {
		t.Fatalf("event ring holds %d entries, cap 8", len(ev))
	}
	if h.Stat.DroppedEvents == 0 {
		t.Fatal("20 crashes under cap 8 dropped nothing")
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].At < ev[i-1].At {
			t.Fatalf("events out of order: %v after %v", ev[i].At, ev[i-1].At)
		}
	}
	// The newest event survived the trimming.
	if ev[len(ev)-1].At < ev[0].At {
		t.Fatal("ring did not keep the newest entries")
	}
}

// TestEventCapUnbounded: a negative cap disables trimming entirely.
func TestEventCapUnbounded(t *testing.T) {
	h, app := harness(t, Config{Mode: ModePhoenix, EventCap: -1})
	for i := 0; i < 20; i++ {
		app.crashNext = "segv"
		if err := h.RunRequests(2); err != nil {
			t.Fatal(err)
		}
	}
	if h.Stat.DroppedEvents != 0 {
		t.Fatalf("unbounded ring dropped %d events", h.Stat.DroppedEvents)
	}
	if len(h.Stat.Events) < 40 { // ≥2 events per crash (crash + restart)
		t.Fatalf("only %d events recorded", len(h.Stat.Events))
	}
}
