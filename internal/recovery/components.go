package recovery

import "fmt"

// This file defines the component graph that powers the microreboot rung.
// Microreboot (Candea et al.) restarts individual components instead of the
// whole process; here an application declares which pieces of its state are
// independently rebootable and how they depend on each other, and the driver
// reboots the faulting component — plus its transitive dependents — while
// the process keeps its address space.

// Component is one node of an application's component graph.
type Component struct {
	// Name identifies the component; it is what kernel.Crash.Component and
	// the explore engine's component-kill action reference.
	Name string
	// Deps names the components this one derives state from. When any of
	// them reboots, this component's transient state may be dangling, so the
	// cascade reboots it too.
	Deps []string
}

// ComponentApp is implemented by applications that declare a component graph
// and support component-level recovery.
type ComponentApp interface {
	// Components returns the component graph in a stable order.
	Components() []Component
	// RebootComponent discards and reinitialises the named component's
	// transient state. The driver has already rolled back any in-flight
	// request (via the rewind domain) before calling it. It returns the
	// number of reinit units actually rebuilt, for cost accounting.
	RebootComponent(name string) (int, error)
	// VerifyComponents cross-checks component-level invariants (no dangling
	// references across component boundaries); the explore engine calls it
	// after every recovery.
	VerifyComponents() error
	// ArmComponentCrash arms a one-shot crash attributed to the named
	// component: the next request panics with kernel.Crash{Component: name}
	// after performing a small write, exercising the sub-process rungs.
	ArmComponentCrash(name string)
}

// RewindableApp marks applications whose request handlers a rewind-domain
// discard rolls back completely. Handlers that touch only simulated memory
// qualify as-is; handlers with Go-side per-request side effects (WAL appends,
// disk writes, handle swaps) qualify only if they also implement
// RewindObserver and repair those effects there — a domain discard alone
// cannot undo them.
type RewindableApp interface {
	// Rewindable reports whether requests may run inside rewind domains in
	// the app's current configuration.
	Rewindable() bool
}

// RewindObserver is an optional extension for rewindable apps with Go-side
// per-request effects. AfterRewind is called immediately after a rewind
// domain's discard rolled simulated memory back to the top of the faulting
// request (on both the rewind rung and the microreboot rung's pre-discard):
// the app re-syncs its Go-side state with the restored memory — reopening
// structure handles from preserved roots, undoing the request's disk appends.
type RewindObserver interface {
	AfterRewind()
}

// cascade returns the reboot set for a crash in component name: the component
// itself plus every transitive dependent, in the graph's declared order so
// reboot order is deterministic. Unknown names return an error — a crash
// attributed to a component the app never declared means the attribution
// plumbing is broken, and silently rebooting nothing would mask it.
func cascade(graph []Component, name string) ([]Component, error) {
	found := false
	for _, c := range graph {
		if c.Name == name {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("recovery: component %q not in graph", name)
	}
	doomed := map[string]bool{name: true}
	// Dependents cascade transitively: iterate until no new component joins
	// the set (graphs are tiny, quadratic is fine).
	for changed := true; changed; {
		changed = false
		for _, c := range graph {
			if doomed[c.Name] {
				continue
			}
			for _, d := range c.Deps {
				if doomed[d] {
					doomed[c.Name] = true
					changed = true
					break
				}
			}
		}
	}
	var out []Component
	for _, c := range graph {
		if doomed[c.Name] {
			out = append(out, c)
		}
	}
	return out, nil
}
