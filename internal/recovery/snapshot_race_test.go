package recovery_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"phoenix/internal/apps/kvstore"
	"phoenix/internal/apps/lsmdb"
	"phoenix/internal/apps/webcache"
	"phoenix/internal/kernel"
	"phoenix/internal/mem"
	"phoenix/internal/recovery"
	"phoenix/internal/workload"
)

// Race-hammer battery for concurrent snapshot serving. Unlike the campaign
// (which executes reader fan-out sequentially for determinism), these tests
// spawn real goroutines: several readers share one open SnapshotReader handle
// and serve off the frozen view while the writer keeps mutating the live
// address space, committing new versions, and — mid-battery — dying and
// riding a PHOENIX restart. Run under -race this exercises the whole
// published-immutability contract (fresh frame copies at commit, mutex
// handoff in Open, pure reader closures); the oracles check that every read
// of a campaign key is effective on every version and that CheckFrozen stays
// clean even with writes and a preserve_exec restart landing under held
// versions.

// raceCrashVA is an unmapped address outside every app's layout (same class
// the concurrency campaign uses).
const raceCrashVA = mem.VAddr(0x2_0000_0000)

type raceTarget struct {
	h     *recovery.Harness
	m     *kernel.Machine
	write func(i, round int) *workload.Request
	read  func(i int) *workload.Request
}

func hammerSnapshots(t *testing.T, tgt raceTarget) {
	t.Helper()
	const keys, readers, readsPerReader, rounds = 48, 4, 64, 6
	h := tgt.h
	populate := func(n, round int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, _, err := h.ServeRequest(tgt.write(i, round)); err != nil {
				t.Fatal(err)
			}
		}
	}
	populate(keys, 0)

	for round := 0; round < rounds; round++ {
		if _, err := h.SnapshotCommit(); err != nil {
			t.Fatal(err)
		}
		r, err := h.OpenSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		var eff atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < readers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < readsPerReader; i++ {
					if _, effective := r.Serve(tgt.read((g*readsPerReader + i) % keys)); effective {
						eff.Add(1)
					}
				}
			}(g)
		}
		// The writer mutates the live space under the frozen version the
		// readers are walking — overwrites of existing keys plus fresh ones.
		populate(keys/2, round+1)
		if round == rounds/2 {
			// Mid-stream the process dies and preserve_exec restarts it while
			// the readers above still serve off the pre-restart version.
			ci := h.Proc().Run(func() { h.Proc().AS.ReadU64(raceCrashVA) })
			if ci == nil {
				t.Fatal("synthetic crash did not register")
			}
			if err := h.HandleFailureForREPL(ci); err != nil {
				t.Fatal(err)
			}
		}
		wg.Wait()
		if got, want := eff.Load(), int64(readers*readsPerReader); got != want {
			t.Fatalf("round %d: %d/%d snapshot reads effective against the campaign keyset", round, got, want)
		}
		if err := r.CheckFrozen(); err != nil {
			t.Fatalf("round %d: stale snapshot after concurrent writes: %v", round, err)
		}
		r.Close()
	}
	if h.Stat.PhoenixRestarts != 1 {
		t.Fatalf("restarts = %d, want exactly 1 mid-battery", h.Stat.PhoenixRestarts)
	}
}

func bootRace(t *testing.T, seed int64, app recovery.App, gen workload.Generator) (*recovery.Harness, *kernel.Machine) {
	t.Helper()
	m := kernel.NewMachine(seed)
	h := recovery.NewHarness(m, recovery.Config{
		Mode: recovery.ModePhoenix, CheckpointInterval: 2 * time.Millisecond,
	}, app, gen, nil)
	if err := h.Boot(); err != nil {
		t.Fatal(err)
	}
	return h, m
}

func storeReqs(keys int) (func(i, round int) *workload.Request, func(i int) *workload.Request) {
	write := func(i, round int) *workload.Request {
		return &workload.Request{
			Op:    workload.OpInsert,
			Key:   fmt.Sprintf("race-%04d", i),
			Value: []byte(fmt.Sprintf("race-val-%04d-round-%d", i, round)),
		}
	}
	read := func(i int) *workload.Request {
		return &workload.Request{Op: workload.OpRead, Key: fmt.Sprintf("race-%04d", i%keys)}
	}
	return write, read
}

func TestSnapshotRaceKVStore(t *testing.T) {
	kv := kvstore.New(kvstore.Config{Cleanup: true}, nil)
	h, m := bootRace(t, 51, kv, workload.NewFillSeq(64))
	write, read := storeReqs(48)
	hammerSnapshots(t, raceTarget{h: h, m: m, write: write, read: read})
}

func TestSnapshotRaceLsmdb(t *testing.T) {
	db := lsmdb.New(lsmdb.Config{MemtableThreshold: 1 << 20}, nil)
	h, m := bootRace(t, 52, db, workload.NewFillSeq(64))
	write, read := storeReqs(48)
	hammerSnapshots(t, raceTarget{h: h, m: m, write: write, read: read})
}

func TestSnapshotRaceWebcache(t *testing.T) {
	for _, flavor := range []webcache.Flavor{webcache.FlavorVarnish, webcache.FlavorSquid} {
		t.Run(fmt.Sprint(flavor), func(t *testing.T) {
			web := workload.NewWeb(workload.WebConfig{Seed: 53, URLs: 100, MeanSize: 2 << 10})
			c := webcache.New(webcache.Config{Flavor: flavor, CapacityBytes: 8 << 20}, web, nil)
			h, m := bootRace(t, 53, c, web)
			write := func(i, round int) *workload.Request {
				return &workload.Request{
					Op: workload.OpWebGet, Key: fmt.Sprintf("race-%04d", i),
					Size: 256, Cacheable: true,
				}
			}
			read := func(i int) *workload.Request {
				return &workload.Request{Op: workload.OpWebGet, Key: fmt.Sprintf("race-%04d", i%48)}
			}
			hammerSnapshots(t, raceTarget{h: h, m: m, write: write, read: read})
		})
	}
}
