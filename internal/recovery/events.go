package recovery

// EventKind is the typed identifier of a recovery-timeline event. Drivers,
// campaigns, and tests assert on these constants instead of magic strings.
type EventKind string

const (
	// EvCrash records a caught failure (signal + reason).
	EvCrash EventKind = "crash"
	// EvRestart records a plain (vanilla/builtin) restart.
	EvRestart EventKind = "restart"
	// EvPhoenixRestart records a successful PHOENIX-mode preserve_exec.
	EvPhoenixRestart EventKind = "phoenix-restart"
	// EvFallback records a PHOENIX fallback decision (grace window, unsafe
	// region, preserve_exec failure, integrity mismatch, or boot crash).
	EvFallback EventKind = "fallback"
	// EvBootCrash records a crash inside Main during default recovery.
	EvBootCrash EventKind = "boot-crash"
	// EvHotSwitch records a cross-check-mismatch switch to the validated
	// background state (§3.6).
	EvHotSwitch EventKind = "hot-switch"
	// EvCRIURestore records a successful CRIU image restore.
	EvCRIURestore EventKind = "criu-restore"
	// EvCRIUReattachFailed records a restored process that could not
	// re-handshake and degenerated to a full restart (§4.3.3).
	EvCRIUReattachFailed EventKind = "criu-reattach-failed"
	// EvBackoff records the supervisor holding the restart for an
	// exponential-backoff delay.
	EvBackoff EventKind = "backoff"
	// EvBreakerTrip records the crash-loop breaker tripping: too many
	// restarts inside the sliding window.
	EvBreakerTrip EventKind = "breaker-trip"
	// EvEscalate records a downward ladder transition (PHOENIX → builtin →
	// vanilla).
	EvEscalate EventKind = "escalate"
	// EvDeescalate records an upward ladder transition back toward PHOENIX
	// after a stable serving period.
	EvDeescalate EventKind = "de-escalate"
	// EvRewind records a faulting request recovered by discarding its rewind
	// domain in-process — no restart of any kind.
	EvRewind EventKind = "rewind"
	// EvMicroreboot records a component-level reboot: the faulting
	// component's transient state discarded and reinitialised, dependents
	// cascading, while the process kept its address space.
	EvMicroreboot EventKind = "microreboot"
	// EvAdopt records this harness adopting a process migrated in from
	// another machine: the shard-migration cutover handed it preserved pages
	// under a Handoff, and Main booted down the PHOENIX recovery path.
	EvAdopt EventKind = "adopt"
	// EvSnapshotRead records one served concurrent-read batch: N reads at a
	// reader fan-out off a committed MVCC snapshot version.
	EvSnapshotRead EventKind = "snapshot-read"
	// EvSnapshotStale records the stale-snapshot oracle firing: a frame in a
	// served frozen view postdated its commit horizon, meaning a reader could
	// have observed a post-snapshot write.
	EvSnapshotStale EventKind = "snapshot-stale"
)
