package recovery

import (
	"fmt"
	"time"

	"phoenix/internal/faultinject"
	"phoenix/internal/kernel"
)

// This file implements the Byzantine-corruption campaign for the escalation
// ladder: CheckEscalation (the sibling of CheckAtomicity) drives one
// application through a sequence of crashes, each with a bit flip armed
// against the preserved frames, and checks the whole supervision contract —
// every injected corruption is caught by the integrity checksums before the
// successor serves, the crash-loop breaker escalates PHOENIX → builtin →
// vanilla instead of crash-looping, the retry budget bounds the episode, and
// a stable serving period walks the ladder back to PHOENIX, after which a
// clean crash recovers via preserve_exec again.

// EscalationConfig parameterises CheckEscalation.
type EscalationConfig struct {
	// Seed is the machine seed (runs are deterministic replays).
	Seed int64
	// Warm is how many requests to serve before the first crash (default 50).
	Warm int
	// Settle is how many requests to serve after each recovery (default 15).
	Settle int
	// Crashes is how many corruption-armed crash cycles to drive
	// (default 7 — with the campaign supervisor's BreakerK of 3 that
	// traverses the full ladder: two caught corruptions, a trip to builtin,
	// and a second trip to vanilla).
	Crashes int
	// Supervisor overrides the campaign's breaker/ladder parameters; zero
	// fields take the campaign defaults (BreakerK 3, Window 60s).
	Supervisor SupervisorConfig
	// Harness overrides harness options (Mode is forced to ModePhoenix and
	// Supervise to true).
	Harness Config
}

// EscalationOutcome reports what one campaign observed.
type EscalationOutcome struct {
	// Cycles is how many crash cycles ran.
	Cycles int `json:"cycles"`
	// CorruptionsFired counts cycles whose armed bit flip actually struck a
	// preserved frame (only PHOENIX-level restarts reach preserve_exec).
	CorruptionsFired int `json:"corruptions_fired"`
	// Detections counts checksum mismatches the kernel caught; the campaign
	// requires Detections == CorruptionsFired.
	Detections int64 `json:"detections"`
	// IntegrityFallbacks, BreakerTrips, Escalations, Deescalations mirror
	// the harness Stats.
	IntegrityFallbacks int `json:"integrity_fallbacks"`
	BreakerTrips       int `json:"breaker_trips"`
	Escalations        int `json:"escalations"`
	Deescalations      int `json:"deescalations"`
	// MaxLevel is the deepest ladder rung reached; FinalLevel is the rung
	// after the stabilisation phase (must be LevelPhoenix).
	MaxLevel   Level `json:"max_level"`
	FinalLevel Level `json:"final_level"`
	// BackoffTotal is the simulated time spent holding restarts (ns in JSON).
	BackoffTotal time.Duration `json:"backoff_total_ns"`
	// PhoenixRecovered reports the post-stabilisation clean crash recovered
	// via preserve_exec with its checksums verified.
	PhoenixRecovered bool `json:"phoenix_recovered"`
}

func (o EscalationOutcome) String() string {
	return fmt.Sprintf("cycles=%d corruptions=%d detected=%d integrity-fallbacks=%d trips=%d esc=%d deesc=%d max=%v final=%v backoff=%v phoenix-again=%v",
		o.Cycles, o.CorruptionsFired, o.Detections, o.IntegrityFallbacks,
		o.BreakerTrips, o.Escalations, o.Deescalations, o.MaxLevel, o.FinalLevel,
		o.BackoffTotal, o.PhoenixRecovered)
}

// CheckEscalation runs the Byzantine-corruption protocol for one application
// and returns the first contract violation found. All timing — backoff,
// breaker window, stable period — flows through the simulated clock, so runs
// are deterministic.
func CheckEscalation(mk AppFactory, cfg EscalationConfig) (EscalationOutcome, error) {
	if cfg.Warm <= 0 {
		cfg.Warm = 50
	}
	if cfg.Settle <= 0 {
		cfg.Settle = 15
	}
	if cfg.Crashes <= 0 {
		cfg.Crashes = 7
	}
	sup := cfg.Supervisor
	if sup.BreakerK == 0 {
		sup.BreakerK = 3
	}
	if sup.Window == 0 {
		sup.Window = 60 * time.Second
	}
	if sup.BackoffBase == 0 {
		sup.BackoffBase = 100 * time.Millisecond
	}
	if sup.BackoffMax == 0 {
		sup.BackoffMax = 2 * time.Second
	}
	if sup.StablePeriod == 0 {
		sup.StablePeriod = 30 * time.Second
	}

	var out EscalationOutcome
	m := kernel.NewMachine(cfg.Seed)
	inj := faultinject.New()
	app, gen := mk(inj)
	hcfg := cfg.Harness
	hcfg.Mode = ModePhoenix
	hcfg.Supervise = true
	hcfg.Supervisor = sup
	if err := hcfg.Validate(); err != nil {
		return out, fmt.Errorf("escalation config: %w", err)
	}
	h := NewHarness(m, hcfg, app, gen, inj)
	if err := h.Boot(); err != nil {
		return out, err
	}
	if err := h.RunRequests(cfg.Warm); err != nil {
		return out, err
	}

	crashOnce := func() error {
		ci := h.Proc().Run(func() { h.Proc().AS.ReadU64(crashAddr) })
		if ci == nil {
			return fmt.Errorf("synthetic crash did not register")
		}
		// A supervision error here (budget exhaustion) is a campaign failure:
		// no run may crash-loop past its budget.
		if err := h.HandleFailureForREPL(ci); err != nil {
			return fmt.Errorf("cycle %d: %w", out.Cycles, err)
		}
		return nil
	}

	// Phase 1 — Byzantine crash cycles: every cycle re-arms a bit flip
	// against the preserved frames and crashes. Cycles that restart at the
	// PHOENIX rung reach preserve_exec and must have the corruption caught;
	// escalated cycles never call it, so their armed fault stays cold.
	for i := 0; i < cfg.Crashes; i++ {
		inj.Disarm(faultinject.SitePreserveCorrupt)
		inj.ArmAfter(faultinject.SitePreserveCorrupt, faultinject.BitFlip, 0)
		inj.Enable()
		firedBefore := m.Counters.ChecksumMismatches.Load()
		if err := crashOnce(); err != nil {
			return out, err
		}
		out.Cycles++
		if inj.Fired(faultinject.SitePreserveCorrupt) {
			out.CorruptionsFired++
			if m.Counters.ChecksumMismatches.Load() != firedBefore+1 {
				return out, fmt.Errorf("cycle %d: corruption fired but no checksum mismatch counted (%s)",
					out.Cycles, m.Counters)
			}
		}
		if lvl := h.EscalationLevel(); lvl > out.MaxLevel {
			out.MaxLevel = lvl
		}
		if err := h.RunRequests(cfg.Settle); err != nil {
			return out, err
		}
	}
	inj.Disarm(faultinject.SitePreserveCorrupt)

	// Phase 2 — stabilisation: serve past the stable period once per rung
	// below PHOENIX; the ladder must walk all the way back.
	for i := 0; i <= int(LevelVanilla) && h.EscalationLevel() != LevelPhoenix; i++ {
		m.Clock.Advance(sup.StablePeriod)
		if err := h.RunRequests(cfg.Settle); err != nil {
			return out, err
		}
	}

	out.Detections = m.Counters.ChecksumMismatches.Load()
	out.IntegrityFallbacks = h.Stat.IntegrityFallbacks
	out.BreakerTrips = h.Stat.BreakerTrips
	out.Escalations = h.Stat.Escalations
	out.Deescalations = h.Stat.Deescalations
	out.FinalLevel = h.EscalationLevel()
	out.BackoffTotal = h.Stat.BackoffTotal

	// Contract checks.
	switch {
	case out.CorruptionsFired == 0:
		return out, fmt.Errorf("no corruption ever fired — the campaign exercised nothing (%s)", out)
	case out.Detections != int64(out.CorruptionsFired):
		return out, fmt.Errorf("detections (%d) != corruptions fired (%d): a bit flip escaped the checksums (%s)",
			out.Detections, out.CorruptionsFired, out)
	case out.IntegrityFallbacks != out.CorruptionsFired:
		return out, fmt.Errorf("integrity fallbacks (%d) != corruptions fired (%d): a detection was not contained (%s)",
			out.IntegrityFallbacks, out.CorruptionsFired, out)
	case out.BreakerTrips == 0:
		return out, fmt.Errorf("breaker never tripped across %d crash cycles (%s)", out.Cycles, out)
	case out.Escalations != out.BreakerTrips:
		return out, fmt.Errorf("escalations (%d) != breaker trips (%d) (%s)", out.Escalations, out.BreakerTrips, out)
	case out.FinalLevel != LevelPhoenix:
		return out, fmt.Errorf("ladder did not return to PHOENIX after stable serving: final level %v (%s)",
			out.FinalLevel, out)
	case out.Deescalations != out.Escalations:
		return out, fmt.Errorf("de-escalations (%d) != escalations (%d): ladder accounting is torn (%s)",
			out.Deescalations, out.Escalations, out)
	case h.Stat.BackoffTotal <= 0:
		return out, fmt.Errorf("no backoff was ever charged across %d cycles (%s)", out.Cycles, out)
	}

	// Phase 3 — proof of recovery: with no fault armed, one more crash must
	// recover via preserve_exec with every checksum verifying clean.
	phoenixBefore := h.Stat.PhoenixRestarts
	verifiedBefore := m.Counters.ChecksumsVerified.Load()
	if err := crashOnce(); err != nil {
		return out, err
	}
	if err := h.RunRequests(cfg.Settle); err != nil {
		return out, err
	}
	out.PhoenixRecovered = h.Stat.PhoenixRestarts == phoenixBefore+1 &&
		m.Counters.ChecksumsVerified.Load() > verifiedBefore
	if !out.PhoenixRecovered {
		return out, fmt.Errorf("post-stabilisation crash did not recover via PHOENIX (restarts %d→%d, verified %d→%d; %s)",
			phoenixBefore, h.Stat.PhoenixRestarts, verifiedBefore, m.Counters.ChecksumsVerified.Load(), out)
	}
	return out, nil
}
