package recovery

import (
	"strings"
	"testing"
	"time"

	"phoenix/internal/kernel"
	"phoenix/internal/mem"
)

// TestCRIUSnapshotIncrementalDeltas pins the delta accounting: the first
// snapshot is a full dump, later ones write only pages dirtied since, and the
// restore pays for the whole chain.
func TestCRIUSnapshotIncrementalDeltas(t *testing.T) {
	const region = mem.VAddr(0x2000_0000)
	const pages = 100
	m := kernel.NewMachine(1)
	p, _ := m.Spawn(nil)
	if _, err := p.AS.Map(region, pages, mem.KindCustom, "state"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pages; i++ {
		p.AS.WriteU64(region+mem.VAddr(i)*mem.PageSize, uint64(i)+1)
	}

	base := CRIUSnapshotIncremental(p, nil)
	if base.Bytes != pages*mem.PageSize || base.ChainBytes != base.Bytes {
		t.Fatalf("baseline: Bytes=%d ChainBytes=%d, want full %d", base.Bytes, base.ChainBytes, pages*mem.PageSize)
	}
	if p.AS.DirtyPages() != 0 {
		t.Fatal("baseline snapshot left dirty bits set")
	}

	// Touch 3 pages; the delta dumps exactly those.
	for i := 0; i < 3; i++ {
		p.AS.WriteU64(region+mem.VAddr(i*10)*mem.PageSize, 0xABC)
	}
	before := m.Clock.Now()
	delta := CRIUSnapshotIncremental(p, base)
	snapCost := m.Clock.Now() - before
	if delta.Bytes != 3*mem.PageSize {
		t.Fatalf("delta Bytes = %d, want %d", delta.Bytes, 3*mem.PageSize)
	}
	if delta.ChainBytes != base.ChainBytes+delta.Bytes {
		t.Fatalf("ChainBytes = %d, want cumulative %d", delta.ChainBytes, base.ChainBytes+delta.Bytes)
	}
	// The file-creation write charges one disk-latency unit on top of the
	// modelled sequential dump.
	if want := m.Model.FreezeFixed + m.Model.DiskWrite(0) + m.Model.DiskWrite(delta.Bytes); snapCost != want {
		t.Fatalf("delta snapshot charged %v, want %v", snapCost, want)
	}
	// Snapshot pause scales with the write rate, not the resident set.
	fullCost := m.Model.FreezeFixed + m.Model.DiskWrite(0) + m.Model.DiskWrite(base.Bytes)
	if snapCost >= fullCost {
		t.Fatalf("delta snapshot %v not cheaper than full %v", snapCost, fullCost)
	}

	// Restore pays for the chain and reproduces the latest content.
	before = m.Clock.Now()
	np := CRIURestore(m, p, delta)
	restoreCost := m.Clock.Now() - before
	if want := m.Model.DiskRead(delta.ChainBytes) + m.Model.Exec(); restoreCost != want {
		t.Fatalf("restore charged %v, want chain read %v", restoreCost, want)
	}
	if got := np.AS.ReadU64(region); got != 0xABC {
		t.Fatalf("restored content %#x, want delta content", got)
	}
	if got := np.AS.ReadU64(region + 5*mem.PageSize); got != 6 {
		t.Fatalf("restored untouched page reads %#x, want baseline content", got)
	}
}

// TestIncrementalCheckpointHarness runs the builtin-checkpoint baseline end to
// end in incremental mode: recovery still works, and the steady-state
// snapshots are deltas.
func TestIncrementalCheckpointHarness(t *testing.T) {
	h, app := harness(t, Config{
		Mode:                  ModeCRIU,
		CheckpointInterval:    time.Millisecond,
		IncrementalCheckpoint: true,
	})
	h.RunRequests(100)
	if h.Stat.CheckpointsTaken < 2 {
		t.Fatalf("only %d snapshots taken", h.Stat.CheckpointsTaken)
	}
	// Steady state: the toy app dirties a single counter page per interval,
	// so the latest image is a one-page delta on a longer chain.
	img := h.criuImage
	if img.Bytes >= img.ChainBytes {
		t.Fatalf("latest snapshot is not a delta: Bytes=%d ChainBytes=%d", img.Bytes, img.ChainBytes)
	}
	app.crashNext = "segv"
	if err := h.RunRequests(10); err != nil {
		t.Fatal(err)
	}
	if app.value() < 80 {
		t.Fatalf("incremental criu lost too much: %d", app.value())
	}
}

// TestIncrementalCheckpointValidation: the knob is CRIU-only.
func TestIncrementalCheckpointValidation(t *testing.T) {
	for _, mode := range []Mode{ModeVanilla, ModeBuiltin, ModePhoenix} {
		err := Config{Mode: mode, IncrementalCheckpoint: true}.Validate()
		if err == nil || !strings.Contains(err.Error(), "IncrementalCheckpoint") {
			t.Fatalf("mode %v: IncrementalCheckpoint accepted: %v", mode, err)
		}
	}
	if err := (Config{Mode: ModeCRIU, IncrementalCheckpoint: true}).Validate(); err != nil {
		t.Fatalf("CRIU incremental rejected: %v", err)
	}
}
