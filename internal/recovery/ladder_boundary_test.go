package recovery

import (
	"testing"
	"time"
)

// Boundary tests for the extended ladder: with a sub-process floor the rungs
// must be visited in order (rewind → microreboot → phoenix → builtin →
// vanilla), each rung must get its own fresh breaker window, and stable
// serving must walk the ladder back down one rung per period, stopping
// exactly at the configured floor.

// TestExtendedLadderEscalationOrder: starting at the rewind floor, each
// breaker trip moves exactly one rung, in ladder order, and the ladder
// saturates at vanilla.
func TestExtendedLadderEscalationOrder(t *testing.T) {
	s := NewSupervisor(SupervisorConfig{BreakerK: 2, Window: time.Hour, Floor: LevelRewind})
	if s.Level() != LevelRewind {
		t.Fatalf("supervisor did not start at its floor: %v", s.Level())
	}
	want := []Level{LevelMicroreboot, LevelPhoenix, LevelBuiltin, LevelVanilla}
	at := time.Duration(0)
	for _, next := range want {
		// First crash at this rung: no trip (K=2, fresh window per rung).
		at += time.Second
		if d := s.OnCrash(at); d.Tripped {
			t.Fatalf("first crash at %v tripped immediately", s.Level())
		}
		at += time.Second
		d := s.OnCrash(at)
		if !d.Tripped || d.Level != next || s.Level() != next {
			t.Fatalf("second crash should trip one rung to %v, got tripped=%v level=%v", next, d.Tripped, s.Level())
		}
	}
	// At vanilla the ladder is saturated: further crashes never trip.
	for i := 0; i < 4; i++ {
		at += time.Second
		if d := s.OnCrash(at); d.Tripped || s.Level() != LevelVanilla {
			t.Fatalf("vanilla rung escalated further: tripped=%v level=%v", d.Tripped, s.Level())
		}
	}
}

// TestPerRungBreakerWindow: the crash history is cleared on every level
// change, so each rung needs K crashes of its own — crashes counted at the
// rewind rung must not pre-trip the microreboot rung's breaker.
func TestPerRungBreakerWindow(t *testing.T) {
	s := NewSupervisor(SupervisorConfig{BreakerK: 3, Window: time.Hour, Floor: LevelRewind})
	s.OnCrash(1 * time.Second)
	s.OnCrash(2 * time.Second)
	d := s.OnCrash(3 * time.Second)
	if !d.Tripped || s.Level() != LevelMicroreboot {
		t.Fatalf("3rd crash should trip rewind -> microreboot, got tripped=%v level=%v", d.Tripped, s.Level())
	}
	// The three rewind-rung crashes are history: microreboot's window starts
	// empty, so the next two crashes (well inside the window) must not trip.
	if d := s.OnCrash(4 * time.Second); d.Tripped {
		t.Fatal("1st microreboot-rung crash tripped on inherited history")
	}
	if d := s.OnCrash(5 * time.Second); d.Tripped {
		t.Fatal("2nd microreboot-rung crash tripped on inherited history")
	}
	if d := s.OnCrash(6 * time.Second); !d.Tripped || s.Level() != LevelPhoenix {
		t.Fatalf("3rd microreboot-rung crash should trip to phoenix, got tripped=%v level=%v", d.Tripped, s.Level())
	}
}

// TestDeescalationToRewindFloor: stable serving steps the ladder down one
// rung per full stable period and stops exactly at the rewind floor — never
// above it, never oscillating past it.
func TestDeescalationToRewindFloor(t *testing.T) {
	const SP = 30 * time.Second
	s := NewSupervisor(SupervisorConfig{BreakerK: 2, Window: time.Hour, StablePeriod: SP, Floor: LevelRewind})
	// Walk all the way up to vanilla.
	at := time.Duration(0)
	for s.Level() != LevelVanilla {
		at += time.Second
		s.OnCrash(at)
	}
	// Each full stable period steps down exactly one rung.
	want := []Level{LevelBuiltin, LevelPhoenix, LevelMicroreboot, LevelRewind}
	for _, next := range want {
		if de, _ := s.NoteServing(at + SP - time.Nanosecond); de {
			t.Fatalf("de-escalated to %v one nanosecond early", next)
		}
		at += SP
		de, to := s.NoteServing(at)
		if !de || to != next || s.Level() != next {
			t.Fatalf("stable period should step down to %v, got de=%v to=%v", next, de, to)
		}
	}
	// At the floor, further stable serving holds — no step below LevelRewind.
	if de, to := s.NoteServing(at + 2*SP); de || to != LevelRewind {
		t.Fatalf("ladder moved below its floor: de=%v to=%v", de, to)
	}
}

// TestFloorValidation: SupervisorConfig rejects floors outside the ladder,
// and Config.Validate refuses RewindDomains without ModePhoenix (the rewind
// rung hangs off the PHOENIX driver).
func TestFloorValidation(t *testing.T) {
	if err := (SupervisorConfig{Floor: LevelRewind - 1}).Validate(); err == nil {
		t.Fatal("floor below LevelRewind validated")
	}
	if err := (SupervisorConfig{Floor: LevelVanilla + 1}).Validate(); err == nil {
		t.Fatal("floor above LevelVanilla validated")
	}
	if err := (SupervisorConfig{Floor: LevelRewind}).Validate(); err != nil {
		t.Fatalf("rewind floor rejected: %v", err)
	}
	bad := Config{Mode: ModeBuiltin, RewindDomains: true}
	if err := bad.Validate(); err == nil {
		t.Fatal("RewindDomains under ModeBuiltin validated")
	}
}
