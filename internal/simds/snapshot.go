package simds

import (
	"phoenix/internal/costmodel"
	"phoenix/internal/mem"
)

// MVCC snapshot support: the structures in this package are read through a
// Ctx, and their read paths (Dict.Get, Skiplist lookups, List walks) never
// allocate or mutate — so reading a structure from a frozen snapshot view is
// just a Ctx whose AS is the view. SnapshotCtx builds that context.
//
// The lifecycle is mem.SnapshotStore's: a single writer mutates the live
// structures and Commits a version; any number of readers Open the latest
// version and walk the same roots (Open* with the preserved root address)
// against the immutable view, lock-free. Writes through a SnapshotCtx are a
// bug — the structures would fault or silently diverge — so the constructor
// deliberately attaches no heap: any mutating operation that needs an
// allocation panics on the nil heap before it can touch the frozen pages.

// SnapshotCtx returns a read-only context over a frozen MVCC snapshot view.
// The clock is nil — snapshot readers are charged at the batch level (see
// costmodel.ConcurrentReadBatch), not per structure step, so the returned
// context is safe to share across reader goroutines.
func SnapshotCtx(view *mem.AddressSpace, model costmodel.Model) *Ctx {
	return &Ctx{AS: view, Model: model}
}
