package simds

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"phoenix/internal/costmodel"
	"phoenix/internal/heap"
	"phoenix/internal/mem"
	"phoenix/internal/simclock"
)

const heapBase = mem.VAddr(0x1000_0000)

func newCtx(t *testing.T) *Ctx {
	t.Helper()
	as := mem.NewAddressSpace()
	h, err := heap.New(as, heapBase, heap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return NewCtx(h, nil, costmodel.Default())
}

func newTimedCtx(t *testing.T) (*Ctx, *simclock.Clock) {
	t.Helper()
	as := mem.NewAddressSpace()
	h, err := heap.New(as, heapBase, heap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	clk := simclock.New()
	return NewCtx(h, clk, costmodel.Default()), clk
}

// --- blobs ---

func TestBlobRoundTrip(t *testing.T) {
	c := newCtx(t)
	b := c.NewBlob([]byte("hello"))
	if c.BlobLen(b) != 5 || !bytes.Equal(c.BlobBytes(b), []byte("hello")) {
		t.Fatal("blob round trip failed")
	}
	if !c.BlobEqual(b, []byte("hello")) || c.BlobEqual(b, []byte("hellO")) || c.BlobEqual(b, []byte("hell")) {
		t.Fatal("BlobEqual wrong")
	}
}

func TestBlobEmpty(t *testing.T) {
	c := newCtx(t)
	b := c.NewBlob(nil)
	if c.BlobLen(b) != 0 || len(c.BlobBytes(b)) != 0 || !c.BlobEqual(b, nil) {
		t.Fatal("empty blob wrong")
	}
}

func TestBlobSetInPlace(t *testing.T) {
	c := newCtx(t)
	b := c.NewBlob([]byte("aaaa"))
	if !c.BlobSet(b, []byte("bb")) {
		t.Fatal("in-place set of smaller payload failed")
	}
	if !c.BlobEqual(b, []byte("bb")) {
		t.Fatal("in-place content wrong")
	}
	if c.BlobSet(b, make([]byte, 1<<16)) {
		t.Fatal("oversized in-place set succeeded")
	}
}

func TestCompareBlobKey(t *testing.T) {
	c := newCtx(t)
	b := c.NewBlob([]byte("mango"))
	cases := []struct {
		key  string
		want int
	}{
		{"mango", 0}, {"manga", 1}, {"mangz", -1}, {"mang", 1}, {"mangoo", -1}, {"zebra", -1}, {"apple", 1},
	}
	for _, tc := range cases {
		if got := c.CompareBlobKey(b, []byte(tc.key)); got != tc.want {
			t.Errorf("CompareBlobKey(mango,%q) = %d, want %d", tc.key, got, tc.want)
		}
	}
}

// --- dict ---

func TestDictBasic(t *testing.T) {
	c := newCtx(t)
	d := NewDict(c, 16)
	if _, ok := d.Get([]byte("k")); ok {
		t.Fatal("Get on empty dict")
	}
	if _, existed := d.Set([]byte("k"), 7); existed {
		t.Fatal("fresh Set reported existing")
	}
	v, ok := d.Get([]byte("k"))
	if !ok || v != 7 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	old, existed := d.Set([]byte("k"), 8)
	if !existed || old != 7 {
		t.Fatalf("update Set = %d,%v", old, existed)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
	got, ok := d.Delete([]byte("k"))
	if !ok || got != 8 {
		t.Fatalf("Delete = %d,%v", got, ok)
	}
	if d.Len() != 0 {
		t.Fatal("Len after delete != 0")
	}
	if _, ok := d.Delete([]byte("k")); ok {
		t.Fatal("double Delete succeeded")
	}
}

func TestDictGrowth(t *testing.T) {
	c := newCtx(t)
	d := NewDict(c, 16)
	const n = 5000
	for i := 0; i < n; i++ {
		d.Set([]byte(fmt.Sprintf("key-%d", i)), uint64(i))
	}
	if d.Len() != n {
		t.Fatalf("Len = %d", d.Len())
	}
	for i := 0; i < n; i++ {
		v, ok := d.Get([]byte(fmt.Sprintf("key-%d", i)))
		if !ok || v != uint64(i) {
			t.Fatalf("key-%d = %d,%v", i, v, ok)
		}
	}
	if !d.Validate() {
		t.Fatal("Validate failed after growth")
	}
}

func TestDictIterate(t *testing.T) {
	c := newCtx(t)
	d := NewDict(c, 16)
	want := map[string]uint64{}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%02d", i)
		want[k] = uint64(i * 3)
		d.Set([]byte(k), uint64(i*3))
	}
	got := map[string]uint64{}
	d.Iterate(func(k []byte, v uint64) bool {
		got[string(k)] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("iterated %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("entry %s = %d, want %d", k, got[k], v)
		}
	}
	// Early stop.
	seen := 0
	d.Iterate(func(k []byte, v uint64) bool { seen++; return seen < 5 })
	if seen != 5 {
		t.Fatalf("early stop visited %d", seen)
	}
}

func TestDictMarkSweepSurvival(t *testing.T) {
	c := newCtx(t)
	d := NewDict(c, 16)
	for i := 0; i < 200; i++ {
		d.Set([]byte(fmt.Sprintf("k%d", i)), uint64(i))
	}
	// Allocate garbage that should be swept.
	for i := 0; i < 50; i++ {
		c.Heap.Alloc(64)
	}
	d.Mark(nil)
	freed, _, _ := c.Heap.Sweep()
	if freed != 50 {
		t.Fatalf("sweep freed %d chunks, want 50", freed)
	}
	// Dict fully usable after sweep.
	if !d.Validate() {
		t.Fatal("dict corrupted by sweep")
	}
	v, ok := d.Get([]byte("k123"))
	if !ok || v != 123 {
		t.Fatal("dict content lost after sweep")
	}
	d.Set([]byte("new"), 1)
}

func TestDictPreserveAcrossMove(t *testing.T) {
	c := newCtx(t)
	d := NewDict(c, 16)
	for i := 0; i < 500; i++ {
		d.Set([]byte(fmt.Sprintf("key-%04d", i)), uint64(i)+1000)
	}
	root := d.Addr()

	dst := mem.NewAddressSpace()
	for _, r := range c.Heap.PreservedRanges() {
		if _, err := c.AS.MovePages(dst, r.Start, r.Len/mem.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	h2, err := heap.Attach(dst, heapBase, heap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewCtx(h2, nil, costmodel.Default())
	d2 := OpenDict(c2, root)
	if d2.Len() != 500 || !d2.Validate() {
		t.Fatalf("reopened dict: len=%d valid=%v", d2.Len(), d2.Validate())
	}
	v, ok := d2.Get([]byte("key-0042"))
	if !ok || v != 1042 {
		t.Fatal("reopened dict content lost")
	}
	d2.Set([]byte("post-restart"), 5)
	if d2.Len() != 501 {
		t.Fatal("insert after reopen failed")
	}
}

func TestDictChargesTime(t *testing.T) {
	c, clk := newTimedCtx(t)
	d := NewDict(c, 16)
	before := clk.Now()
	d.Set([]byte("a"), 1)
	if clk.Now() == before {
		t.Fatal("Set charged no simulated time")
	}
}

// Property: dict behaves like a Go map under random operations.
func TestQuickDictMapEquivalence(t *testing.T) {
	c := newCtx(t)
	d := NewDict(c, 16)
	shadow := map[string]uint64{}
	f := func(key uint8, val uint64, del bool) bool {
		k := fmt.Sprintf("key-%d", key%64)
		if del {
			_, okD := d.Delete([]byte(k))
			_, okS := shadow[k]
			delete(shadow, k)
			if okD != okS {
				return false
			}
		} else {
			d.Set([]byte(k), val)
			shadow[k] = val
		}
		if d.Len() != uint64(len(shadow)) {
			return false
		}
		v, ok := d.Get([]byte(k))
		sv, sok := shadow[k]
		return ok == sok && (!ok || v == sv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	if !d.Validate() {
		t.Fatal("Validate failed after random ops")
	}
}

// --- skiplist ---

func TestSkiplistBasic(t *testing.T) {
	c := newCtx(t)
	s := NewSkiplist(c, 42)
	if _, ok := s.Get([]byte("a")); ok {
		t.Fatal("Get on empty skiplist")
	}
	if !s.Insert([]byte("a"), []byte("1")) {
		t.Fatal("fresh Insert reported replace")
	}
	if s.Insert([]byte("a"), []byte("2")) {
		t.Fatal("replace Insert reported fresh")
	}
	v, ok := s.Get([]byte("a"))
	if !ok || string(v) != "2" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	if !s.Delete([]byte("a")) || s.Delete([]byte("a")) {
		t.Fatal("Delete semantics wrong")
	}
	if s.Len() != 0 {
		t.Fatal("Len after delete")
	}
}

func TestSkiplistOrdering(t *testing.T) {
	c := newCtx(t)
	s := NewSkiplist(c, 1)
	r := rand.New(rand.NewSource(7))
	keys := r.Perm(1000)
	for _, k := range keys {
		s.Insert([]byte(fmt.Sprintf("%06d", k)), []byte(fmt.Sprintf("v%d", k)))
	}
	if s.Len() != 1000 {
		t.Fatalf("Len = %d", s.Len())
	}
	var got []string
	s.IterAll(func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if !sort.StringsAreSorted(got) {
		t.Fatal("IterAll not in key order")
	}
	if len(got) != 1000 {
		t.Fatalf("IterAll visited %d", len(got))
	}
	if !s.Validate() {
		t.Fatal("Validate failed")
	}
}

func TestSkiplistValueRealloc(t *testing.T) {
	c := newCtx(t)
	s := NewSkiplist(c, 9)
	s.Insert([]byte("k"), []byte("small"))
	big := bytes.Repeat([]byte("x"), 5000)
	s.Insert([]byte("k"), big)
	v, ok := s.Get([]byte("k"))
	if !ok || !bytes.Equal(v, big) {
		t.Fatal("value realloc failed")
	}
	if s.PayloadBytes() != uint64(1+len(big)) {
		t.Fatalf("PayloadBytes = %d", s.PayloadBytes())
	}
}

func TestSkiplistPreserveAcrossMove(t *testing.T) {
	c := newCtx(t)
	s := NewSkiplist(c, 3)
	for i := 0; i < 300; i++ {
		s.Insert([]byte(fmt.Sprintf("%05d", i)), []byte(fmt.Sprintf("val-%d", i)))
	}
	root := s.Addr()
	dst := mem.NewAddressSpace()
	for _, r := range c.Heap.PreservedRanges() {
		if _, err := c.AS.MovePages(dst, r.Start, r.Len/mem.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	h2, err := heap.Attach(dst, heapBase, heap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2 := OpenSkiplist(NewCtx(h2, nil, costmodel.Default()), root)
	if s2.Len() != 300 || !s2.Validate() {
		t.Fatal("reopened skiplist invalid")
	}
	v, ok := s2.Get([]byte("00123"))
	if !ok || string(v) != "val-123" {
		t.Fatal("reopened skiplist content lost")
	}
	// Deterministic RNG state preserved: inserts still work.
	s2.Insert([]byte("zzzzz"), []byte("tail"))
	if !s2.Validate() {
		t.Fatal("insert after reopen broke skiplist")
	}
}

func TestSkiplistMarkSweep(t *testing.T) {
	c := newCtx(t)
	s := NewSkiplist(c, 5)
	for i := 0; i < 100; i++ {
		s.Insert([]byte(fmt.Sprintf("%04d", i)), []byte("v"))
	}
	garbage := c.Heap.Alloc(1000)
	_ = garbage
	s.Mark()
	freed, _, _ := c.Heap.Sweep()
	if freed != 1 {
		t.Fatalf("sweep freed %d, want 1", freed)
	}
	if !s.Validate() {
		t.Fatal("skiplist corrupted by sweep")
	}
}

// Property: skiplist matches a sorted Go map.
func TestQuickSkiplistEquivalence(t *testing.T) {
	c := newCtx(t)
	s := NewSkiplist(c, 99)
	shadow := map[string]string{}
	f := func(key uint8, val uint16, del bool) bool {
		k := fmt.Sprintf("%03d", key%128)
		v := fmt.Sprintf("%d", val)
		if del {
			okS := false
			if _, ok := shadow[k]; ok {
				okS = true
			}
			if s.Delete([]byte(k)) != okS {
				return false
			}
			delete(shadow, k)
		} else {
			s.Insert([]byte(k), []byte(v))
			shadow[k] = v
		}
		got, ok := s.Get([]byte(k))
		want, wok := shadow[k]
		return ok == wok && (!ok || string(got) == want) && s.Len() == uint64(len(shadow))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
	if !s.Validate() {
		t.Fatal("Validate failed after random ops")
	}
}

// --- list ---

func TestListBasic(t *testing.T) {
	c := newCtx(t)
	l := NewList(c)
	if l.Len() != 0 || l.Back() != mem.NullPtr || l.Front() != mem.NullPtr {
		t.Fatal("empty list wrong")
	}
	n1 := l.PushFront(1)
	n2 := l.PushFront(2)
	n3 := l.PushFront(3)
	if l.Len() != 3 || l.Front() != n3 || l.Back() != n1 {
		t.Fatal("push order wrong")
	}
	if l.Payload(n2) != 2 {
		t.Fatal("payload wrong")
	}
	if !l.Validate() {
		t.Fatal("Validate failed")
	}
	if got := l.Remove(n2); got != 2 {
		t.Fatalf("Remove = %d", got)
	}
	if l.Len() != 2 || !l.Validate() {
		t.Fatal("list broken after middle remove")
	}
}

func TestListMoveToFront(t *testing.T) {
	c := newCtx(t)
	l := NewList(c)
	n1 := l.PushFront(1)
	n2 := l.PushFront(2)
	n3 := l.PushFront(3)
	// List is [3 2 1]; moving the tail to front yields [1 3 2].
	l.MoveToFront(n1)
	if l.Front() != n1 || l.Back() != n2 {
		var order []uint64
		l.Iterate(func(_ mem.VAddr, p uint64) bool { order = append(order, p); return true })
		t.Fatalf("MoveToFront order = %v", order)
	}
	l.MoveToFront(n1) // already front: no-op
	if l.Front() != n1 || !l.Validate() {
		t.Fatal("MoveToFront of head broke list")
	}
	// Move the current tail (n2) to front: [2 1 3].
	l.MoveToFront(n2)
	if l.Front() != n2 || l.Back() != n3 || !l.Validate() {
		t.Fatal("MoveToFront of tail broke list")
	}
}

func TestListRemoveEnds(t *testing.T) {
	c := newCtx(t)
	l := NewList(c)
	n1 := l.PushFront(1)
	n2 := l.PushFront(2)
	l.Remove(n2) // head
	if l.Front() != n1 || l.Back() != n1 || !l.Validate() {
		t.Fatal("head remove broke list")
	}
	l.Remove(n1) // last element
	if l.Len() != 0 || l.Front() != mem.NullPtr || l.Back() != mem.NullPtr {
		t.Fatal("final remove broke list")
	}
}

func TestListIterateAndMark(t *testing.T) {
	c := newCtx(t)
	l := NewList(c)
	for i := 0; i < 10; i++ {
		l.PushFront(uint64(i))
	}
	var got []uint64
	l.Iterate(func(_ mem.VAddr, p uint64) bool { got = append(got, p); return true })
	if len(got) != 10 || got[0] != 9 || got[9] != 0 {
		t.Fatalf("Iterate = %v", got)
	}
	garbage := c.Heap.Alloc(100)
	_ = garbage
	marked := 0
	l.Mark(func(uint64) { marked++ })
	if marked != 10 {
		t.Fatalf("Mark payload callback ran %d times", marked)
	}
	freed, _, _ := c.Heap.Sweep()
	if freed != 1 {
		t.Fatalf("sweep freed %d, want 1", freed)
	}
	if !l.Validate() {
		t.Fatal("list corrupted by sweep")
	}
}
