package simds

import "phoenix/internal/mem"

// Skiplist is an ordered map in simulated memory — the analogue of LevelDB's
// memtable, the paper's preservation target for LevelDB (Table 3).
//
// Header layout:
//
//	 0: entry count (u64)
//	 8: approximate payload bytes (u64)
//	16: xorshift RNG state (u64) — preserved with the structure so level
//	    choice stays deterministic across PHOENIX restarts
//	24: head node (VAddr)
//
// Node layout:
//
//	 0: key blob (VAddr, owned; NullPtr for the head)
//	 8: value blob (VAddr, owned)
//	16: level (u32)
//	24: forward[level] (VAddr each)
type Skiplist struct {
	c    *Ctx
	addr mem.VAddr
}

const (
	slMaxLevel = 12

	slHdrSize   = 32
	slOffCount  = 0
	slOffBytes  = 8
	slOffRNG    = 16
	slOffHead   = 24
	nodeOffKey  = 0
	nodeOffVal  = 8
	nodeOffLvl  = 16
	nodeOffFwd  = 24
	slBranching = 4
)

func slNodeSize(level int) int { return nodeOffFwd + level*8 }

// NewSkiplist allocates an empty skiplist with a deterministic RNG seed.
func NewSkiplist(c *Ctx, seed uint64) *Skiplist {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	hdr := c.mustAlloc(slHdrSize)
	head := c.mustAlloc(slNodeSize(slMaxLevel))
	c.AS.WritePtr(head+nodeOffKey, mem.NullPtr)
	c.AS.WritePtr(head+nodeOffVal, mem.NullPtr)
	c.AS.WriteU32(head+nodeOffLvl, slMaxLevel)
	for i := 0; i < slMaxLevel; i++ {
		c.AS.WritePtr(head+nodeOffFwd+mem.VAddr(i*8), mem.NullPtr)
	}
	c.AS.WriteU64(hdr+slOffCount, 0)
	c.AS.WriteU64(hdr+slOffBytes, 0)
	c.AS.WriteU64(hdr+slOffRNG, seed)
	c.AS.WritePtr(hdr+slOffHead, head)
	return &Skiplist{c: c, addr: hdr}
}

// OpenSkiplist reattaches to a preserved skiplist at addr.
func OpenSkiplist(c *Ctx, addr mem.VAddr) *Skiplist {
	return &Skiplist{c: c, addr: addr}
}

// Addr returns the skiplist root address.
func (s *Skiplist) Addr() mem.VAddr { return s.addr }

// Len returns the entry count.
func (s *Skiplist) Len() uint64 { return s.c.AS.ReadU64(s.addr + slOffCount) }

// PayloadBytes returns the approximate stored key+value payload size, used
// as the memtable flush threshold.
func (s *Skiplist) PayloadBytes() uint64 { return s.c.AS.ReadU64(s.addr + slOffBytes) }

func (s *Skiplist) head() mem.VAddr { return s.c.AS.ReadPtr(s.addr + slOffHead) }

// randLevel draws a level with 1/slBranching promotion probability from the
// in-memory xorshift state.
func (s *Skiplist) randLevel() int {
	x := s.c.AS.ReadU64(s.addr + slOffRNG)
	lvl := 1
	for lvl < slMaxLevel {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if x%slBranching != 0 {
			break
		}
		lvl++
	}
	s.c.AS.WriteU64(s.addr+slOffRNG, x)
	return lvl
}

// findPrev fills prev[0..slMaxLevel) with the rightmost node at each level
// whose key is < key, and returns the candidate node at level 0 (which may
// equal key) plus the traversal step count.
func (s *Skiplist) findPrev(key []byte, prev *[slMaxLevel]mem.VAddr) (mem.VAddr, int) {
	x := s.head()
	steps := 0
	for i := slMaxLevel - 1; i >= 0; i-- {
		for {
			next := s.c.AS.ReadPtr(x + nodeOffFwd + mem.VAddr(i*8))
			steps++
			if next == mem.NullPtr {
				break
			}
			if s.c.CompareBlobKey(s.c.AS.ReadPtr(next+nodeOffKey), key) >= 0 {
				break
			}
			x = next
		}
		prev[i] = x
	}
	return s.c.AS.ReadPtr(x + nodeOffFwd), steps
}

// Get returns a copy of the value stored for key.
func (s *Skiplist) Get(key []byte) ([]byte, bool) {
	var prev [slMaxLevel]mem.VAddr
	cand, steps := s.findPrev(key, &prev)
	s.c.Charge(steps)
	if cand == mem.NullPtr || s.c.CompareBlobKey(s.c.AS.ReadPtr(cand+nodeOffKey), key) != 0 {
		return nil, false
	}
	v := s.c.BlobBytes(s.c.AS.ReadPtr(cand + nodeOffVal))
	s.c.ChargeBytes(len(v))
	return v, true
}

// Insert sets key → val, replacing any existing value in place when it fits
// or reallocating otherwise. It reports whether the key was new.
func (s *Skiplist) Insert(key, val []byte) bool {
	var prev [slMaxLevel]mem.VAddr
	cand, steps := s.findPrev(key, &prev)
	if cand != mem.NullPtr && s.c.CompareBlobKey(s.c.AS.ReadPtr(cand+nodeOffKey), key) == 0 {
		oldVal := s.c.AS.ReadPtr(cand + nodeOffVal)
		oldLen := s.c.BlobLen(oldVal)
		if !s.c.BlobSet(oldVal, val) {
			s.c.FreeBlob(oldVal)
			s.c.AS.WritePtr(cand+nodeOffVal, s.c.NewBlob(val))
		}
		s.c.AS.WriteU64(s.addr+slOffBytes,
			s.c.AS.ReadU64(s.addr+slOffBytes)-uint64(oldLen)+uint64(len(val)))
		s.c.Charge(steps + 2)
		s.c.ChargeBytes(len(val))
		return false
	}
	lvl := s.randLevel()
	n := s.c.mustAlloc(slNodeSize(lvl))
	s.c.AS.WritePtr(n+nodeOffKey, s.c.NewBlob(key))
	s.c.AS.WritePtr(n+nodeOffVal, s.c.NewBlob(val))
	s.c.AS.WriteU32(n+nodeOffLvl, uint32(lvl))
	for i := 0; i < lvl; i++ {
		fwd := prev[i] + nodeOffFwd + mem.VAddr(i*8)
		s.c.AS.WritePtr(n+nodeOffFwd+mem.VAddr(i*8), s.c.AS.ReadPtr(fwd))
		s.c.AS.WritePtr(fwd, n)
	}
	s.c.AS.WriteU64(s.addr+slOffCount, s.Len()+1)
	s.c.AS.WriteU64(s.addr+slOffBytes,
		s.c.AS.ReadU64(s.addr+slOffBytes)+uint64(len(key)+len(val)))
	s.c.Charge(steps + 2*lvl + 2)
	s.c.ChargeBytes(len(key) + len(val))
	return true
}

// Delete removes key, reporting whether it existed.
func (s *Skiplist) Delete(key []byte) bool {
	var prev [slMaxLevel]mem.VAddr
	cand, steps := s.findPrev(key, &prev)
	if cand == mem.NullPtr || s.c.CompareBlobKey(s.c.AS.ReadPtr(cand+nodeOffKey), key) != 0 {
		s.c.Charge(steps)
		return false
	}
	lvl := int(s.c.AS.ReadU32(cand + nodeOffLvl))
	for i := 0; i < lvl; i++ {
		fwd := prev[i] + nodeOffFwd + mem.VAddr(i*8)
		if s.c.AS.ReadPtr(fwd) == cand {
			s.c.AS.WritePtr(fwd, s.c.AS.ReadPtr(cand+nodeOffFwd+mem.VAddr(i*8)))
		}
	}
	kb := s.c.AS.ReadPtr(cand + nodeOffKey)
	vb := s.c.AS.ReadPtr(cand + nodeOffVal)
	s.c.AS.WriteU64(s.addr+slOffBytes,
		s.c.AS.ReadU64(s.addr+slOffBytes)-uint64(s.c.BlobLen(kb)+s.c.BlobLen(vb)))
	s.c.FreeBlob(kb)
	s.c.FreeBlob(vb)
	s.c.Heap.Free(cand)
	s.c.AS.WriteU64(s.addr+slOffCount, s.Len()-1)
	s.c.Charge(steps + lvl + 3)
	return true
}

// IterAll visits entries in ascending key order. Keys and values are copies.
func (s *Skiplist) IterAll(fn func(key, val []byte) bool) {
	x := s.c.AS.ReadPtr(s.head() + nodeOffFwd)
	steps := 0
	for x != mem.NullPtr {
		steps++
		k := s.c.BlobBytes(s.c.AS.ReadPtr(x + nodeOffKey))
		v := s.c.BlobBytes(s.c.AS.ReadPtr(x + nodeOffVal))
		if !fn(k, v) {
			break
		}
		x = s.c.AS.ReadPtr(x + nodeOffFwd)
	}
	s.c.Charge(steps)
}

// Mark marks the skiplist header, head node, every node, and every key and
// value blob for the PHOENIX cleanup sweep.
func (s *Skiplist) Mark() {
	s.c.Heap.Mark(s.addr)
	head := s.head()
	s.c.Heap.Mark(head)
	x := s.c.AS.ReadPtr(head + nodeOffFwd)
	steps := 0
	for x != mem.NullPtr {
		steps += 3
		s.c.Heap.Mark(x)
		s.c.Heap.Mark(s.c.AS.ReadPtr(x + nodeOffKey))
		s.c.Heap.Mark(s.c.AS.ReadPtr(x + nodeOffVal))
		x = s.c.AS.ReadPtr(x + nodeOffFwd)
	}
	s.c.Charge(steps)
}

// ValidateHeader performs the cheap boot-time sanity check: the head node
// must be mapped and the count plausible. Deep corruption surfaces on
// access.
func (s *Skiplist) ValidateHeader() (valid bool) {
	defer func() {
		if recover() != nil {
			valid = false
		}
	}()
	head := s.head()
	if !s.c.AS.Mapped(head) || s.Len() > 1<<40 {
		return false
	}
	return int(s.c.AS.ReadU32(head+nodeOffLvl)) == slMaxLevel
}

// FreeAll releases every node, blob, the head, and the header — dropping the
// whole structure (an LSM store deletes its immutable memtable this way
// after a flush).
func (s *Skiplist) FreeAll() {
	head := s.head()
	x := s.c.AS.ReadPtr(head + nodeOffFwd)
	steps := 0
	for x != mem.NullPtr {
		next := s.c.AS.ReadPtr(x + nodeOffFwd)
		s.c.FreeBlob(s.c.AS.ReadPtr(x + nodeOffKey))
		s.c.FreeBlob(s.c.AS.ReadPtr(x + nodeOffVal))
		s.c.Heap.Free(x)
		x = next
		steps += 4
	}
	s.c.Heap.Free(head)
	s.c.Heap.Free(s.addr)
	s.c.Charge(steps + 2)
}

// Validate checks ordering and count invariants, returning false on
// corruption (including faults while walking).
func (s *Skiplist) Validate() (valid bool) {
	defer func() {
		if recover() != nil {
			valid = false
		}
	}()
	var count uint64
	var prevKey []byte
	first := true
	x := s.c.AS.ReadPtr(s.head() + nodeOffFwd)
	for x != mem.NullPtr {
		count++
		if count > s.Len()+1 {
			return false
		}
		k := s.c.BlobBytes(s.c.AS.ReadPtr(x + nodeOffKey))
		if !first && string(prevKey) >= string(k) {
			return false
		}
		prevKey, first = k, false
		x = s.c.AS.ReadPtr(x + nodeOffFwd)
	}
	return count == s.Len()
}
