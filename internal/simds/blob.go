package simds

import "phoenix/internal/mem"

// Blob layout: [u32 length][payload bytes]. Blobs are the unit of string and
// value storage inside simulated memory.
const blobHdr = 4

// NewBlob allocates a blob holding data and returns its address.
func (c *Ctx) NewBlob(data []byte) mem.VAddr {
	p := c.mustAlloc(blobHdr + len(data))
	c.AS.WriteU32(p, uint32(len(data)))
	if len(data) > 0 {
		c.AS.WriteAt(p+blobHdr, data)
	}
	return p
}

// BlobLen returns the blob's payload length.
func (c *Ctx) BlobLen(p mem.VAddr) int {
	return int(c.AS.ReadU32(p))
}

// BlobBytes returns a copy of the blob's payload.
func (c *Ctx) BlobBytes(p mem.VAddr) []byte {
	n := c.BlobLen(p)
	return c.AS.ReadBytes(p+blobHdr, n)
}

// BlobEqual reports whether the blob's payload equals data without copying.
func (c *Ctx) BlobEqual(p mem.VAddr, data []byte) bool {
	if c.BlobLen(p) != len(data) {
		return false
	}
	// Compare in bounded chunks to avoid large temporary copies.
	const chunk = 256
	var buf [chunk]byte
	off := 0
	for off < len(data) {
		n := len(data) - off
		if n > chunk {
			n = chunk
		}
		c.AS.ReadAt(p+blobHdr+mem.VAddr(off), buf[:n])
		for i := 0; i < n; i++ {
			if buf[i] != data[off+i] {
				return false
			}
		}
		off += n
	}
	return true
}

// BlobSet overwrites the blob's payload in place. The new data must fit the
// allocation's usable size; otherwise the caller should allocate a new blob.
// It reports whether the write fit.
func (c *Ctx) BlobSet(p mem.VAddr, data []byte) bool {
	if blobHdr+len(data) > c.Heap.UsableSize(p) {
		return false
	}
	c.AS.WriteU32(p, uint32(len(data)))
	if len(data) > 0 {
		c.AS.WriteAt(p+blobHdr, data)
	}
	return true
}

// FreeBlob releases the blob.
func (c *Ctx) FreeBlob(p mem.VAddr) { c.Heap.Free(p) }

// CompareBlobKey compares the blob's payload with key lexicographically,
// returning -1, 0, or 1 (blob < key, ==, >).
func (c *Ctx) CompareBlobKey(p mem.VAddr, key []byte) int {
	bl := c.BlobLen(p)
	n := bl
	if len(key) < n {
		n = len(key)
	}
	const chunk = 256
	var buf [chunk]byte
	off := 0
	for off < n {
		cnt := n - off
		if cnt > chunk {
			cnt = chunk
		}
		c.AS.ReadAt(p+blobHdr+mem.VAddr(off), buf[:cnt])
		for i := 0; i < cnt; i++ {
			if buf[i] != key[off+i] {
				if buf[i] < key[off+i] {
					return -1
				}
				return 1
			}
		}
		off += cnt
	}
	switch {
	case bl < len(key):
		return -1
	case bl > len(key):
		return 1
	}
	return 0
}
