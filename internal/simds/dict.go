package simds

import "phoenix/internal/mem"

// Dict is a separate-chaining hash table in simulated memory, the analogue
// of Redis's key-value dictionary — the paper's canonical preservation
// target (Table 3).
//
// Header layout (allocated on the heap):
//
//	 0: entry count (u64)
//	 8: bucket count (u64, power of two)
//	16: bucket-array pointer (VAddr)
//
// Entry layout:
//
//	 0: next entry (VAddr)
//	 8: key blob (VAddr, owned)
//	16: value (u64, caller-owned meaning: raw integer or pointer)
//	24: cached key hash (u64)
//
// Values are opaque u64s so callers can store either raw payloads or
// simulated pointers; Mark takes a callback so the owner can extend the GC
// traversal into value objects.
type Dict struct {
	c    *Ctx
	addr mem.VAddr
}

const (
	dictHdrSize   = 24
	dictOffCount  = 0
	dictOffNBkt   = 8
	dictOffBkts   = 16
	entrySize     = 32
	entryOffNext  = 0
	entryOffKey   = 8
	entryOffVal   = 16
	entryOffHash  = 24
	dictMinBucket = 16
)

// NewDict allocates an empty dictionary. initialBuckets is rounded up to a
// power of two (minimum 16).
func NewDict(c *Ctx, initialBuckets int) *Dict {
	nb := dictMinBucket
	for nb < initialBuckets {
		nb <<= 1
	}
	hdr := c.mustAlloc(dictHdrSize)
	bkts := c.mustAlloc(nb * 8)
	c.AS.Zero(bkts, nb*8)
	c.AS.WriteU64(hdr+dictOffCount, 0)
	c.AS.WriteU64(hdr+dictOffNBkt, uint64(nb))
	c.AS.WritePtr(hdr+dictOffBkts, bkts)
	return &Dict{c: c, addr: hdr}
}

// OpenDict reattaches to a dictionary at addr — the post-restart step where
// the application re-adopts its preserved root pointer (Figure 2, line 9).
func OpenDict(c *Ctx, addr mem.VAddr) *Dict {
	return &Dict{c: c, addr: addr}
}

// Addr returns the dictionary's root address (what goes into the recovery
// info block).
func (d *Dict) Addr() mem.VAddr { return d.addr }

// Len returns the number of entries.
func (d *Dict) Len() uint64 { return d.c.AS.ReadU64(d.addr + dictOffCount) }

func (d *Dict) buckets() (bkts mem.VAddr, nb uint64) {
	return d.c.AS.ReadPtr(d.addr + dictOffBkts), d.c.AS.ReadU64(d.addr + dictOffNBkt)
}

// find returns the entry for key and the address of the link pointing at it
// (bucket slot or previous entry's next field), or NullPtr entries if absent.
func (d *Dict) find(key []byte, h uint64) (entry, linkAddr mem.VAddr, steps int) {
	bkts, nb := d.buckets()
	slot := bkts + mem.VAddr((h&(nb-1))*8)
	link := slot
	e := d.c.AS.ReadPtr(link)
	steps = 1
	for e != mem.NullPtr {
		steps++
		if d.c.AS.ReadU64(e+entryOffHash) == h &&
			d.c.BlobEqual(d.c.AS.ReadPtr(e+entryOffKey), key) {
			return e, link, steps
		}
		link = e + entryOffNext
		e = d.c.AS.ReadPtr(link)
	}
	return mem.NullPtr, mem.NullPtr, steps
}

// Get returns the value stored for key.
func (d *Dict) Get(key []byte) (uint64, bool) {
	h := hashBytes(key)
	e, _, steps := d.find(key, h)
	d.c.Charge(steps)
	if e == mem.NullPtr {
		return 0, false
	}
	return d.c.AS.ReadU64(e + entryOffVal), true
}

// Set inserts or updates key → val, returning the previous value and whether
// the key already existed. The caller owns any object the old value pointed
// to.
func (d *Dict) Set(key []byte, val uint64) (old uint64, existed bool) {
	h := hashBytes(key)
	e, _, steps := d.find(key, h)
	if e != mem.NullPtr {
		old = d.c.AS.ReadU64(e + entryOffVal)
		d.c.AS.WriteU64(e+entryOffVal, val)
		d.c.Charge(steps + 1)
		return old, true
	}
	// Insert at bucket head.
	bkts, nb := d.buckets()
	slot := bkts + mem.VAddr((h&(nb-1))*8)
	ne := d.c.mustAlloc(entrySize)
	kb := d.c.NewBlob(key)
	d.c.AS.WritePtr(ne+entryOffNext, d.c.AS.ReadPtr(slot))
	d.c.AS.WritePtr(ne+entryOffKey, kb)
	d.c.AS.WriteU64(ne+entryOffVal, val)
	d.c.AS.WriteU64(ne+entryOffHash, h)
	d.c.AS.WritePtr(slot, ne)
	cnt := d.Len() + 1
	d.c.AS.WriteU64(d.addr+dictOffCount, cnt)
	d.c.Charge(steps + 4)
	d.c.ChargeBytes(len(key))
	if cnt > nb {
		d.grow()
	}
	return 0, false
}

// Delete removes key, returning its value and whether it existed. Entry and
// key blob are freed; the value object (if a pointer) is the caller's to
// free.
func (d *Dict) Delete(key []byte) (uint64, bool) {
	h := hashBytes(key)
	e, link, steps := d.find(key, h)
	d.c.Charge(steps + 2)
	if e == mem.NullPtr {
		return 0, false
	}
	val := d.c.AS.ReadU64(e + entryOffVal)
	d.c.AS.WritePtr(link, d.c.AS.ReadPtr(e+entryOffNext))
	d.c.FreeBlob(d.c.AS.ReadPtr(e + entryOffKey))
	d.c.Heap.Free(e)
	d.c.AS.WriteU64(d.addr+dictOffCount, d.Len()-1)
	return val, true
}

// grow doubles the bucket array and rehashes all entries.
func (d *Dict) grow() {
	oldBkts, nb := d.buckets()
	newNB := nb * 2
	newBkts := d.c.Heap.Alloc(int(newNB) * 8)
	if newBkts == mem.NullPtr {
		return // degrade to longer chains under memory pressure
	}
	d.c.AS.Zero(newBkts, int(newNB)*8)
	steps := 0
	for i := uint64(0); i < nb; i++ {
		e := d.c.AS.ReadPtr(oldBkts + mem.VAddr(i*8))
		for e != mem.NullPtr {
			next := d.c.AS.ReadPtr(e + entryOffNext)
			h := d.c.AS.ReadU64(e + entryOffHash)
			slot := newBkts + mem.VAddr((h&(newNB-1))*8)
			d.c.AS.WritePtr(e+entryOffNext, d.c.AS.ReadPtr(slot))
			d.c.AS.WritePtr(slot, e)
			e = next
			steps += 3
		}
	}
	d.c.AS.WriteU64(d.addr+dictOffNBkt, newNB)
	d.c.AS.WritePtr(d.addr+dictOffBkts, newBkts)
	d.c.Heap.Free(oldBkts)
	d.c.Charge(steps + int(nb))
}

// Iterate visits every entry in bucket order. Return false to stop. The key
// slice is a copy and safe to retain.
func (d *Dict) Iterate(fn func(key []byte, val uint64) bool) {
	bkts, nb := d.buckets()
	steps := 0
	for i := uint64(0); i < nb; i++ {
		e := d.c.AS.ReadPtr(bkts + mem.VAddr(i*8))
		for e != mem.NullPtr {
			steps++
			key := d.c.BlobBytes(d.c.AS.ReadPtr(e + entryOffKey))
			val := d.c.AS.ReadU64(e + entryOffVal)
			if !fn(key, val) {
				d.c.Charge(steps)
				return
			}
			e = d.c.AS.ReadPtr(e + entryOffNext)
		}
	}
	d.c.Charge(steps + int(nb))
}

// Mark sets the PHOENIX marker bit on the dictionary header, bucket array,
// every entry node and key blob, and invokes markVal for each stored value so
// the owner can mark value objects — the developer traversal protocol of
// §3.4.
func (d *Dict) Mark(markVal func(val uint64)) {
	d.c.Heap.Mark(d.addr)
	bkts, nb := d.buckets()
	d.c.Heap.Mark(bkts)
	steps := int(nb)
	for i := uint64(0); i < nb; i++ {
		e := d.c.AS.ReadPtr(bkts + mem.VAddr(i*8))
		for e != mem.NullPtr {
			steps += 3
			d.c.Heap.Mark(e)
			d.c.Heap.Mark(d.c.AS.ReadPtr(e + entryOffKey))
			if markVal != nil {
				markVal(d.c.AS.ReadU64(e + entryOffVal))
			}
			e = d.c.AS.ReadPtr(e + entryOffNext)
		}
	}
	d.c.Charge(steps)
}

// ValidateHeader performs the cheap sanity check a real server does when
// re-adopting a preserved dictionary: header fields must be plausible. It
// does NOT walk the chains — deep corruption surfaces later, on access,
// which is exactly the hazard the unsafe-region mechanism exists to bound.
func (d *Dict) ValidateHeader() (valid bool) {
	defer func() {
		if recover() != nil {
			valid = false
		}
	}()
	bkts, nb := d.buckets()
	if nb == 0 || nb&(nb-1) != 0 || nb > 1<<30 {
		return false
	}
	if !d.c.AS.Mapped(bkts) || !d.c.AS.Mapped(bkts+mem.VAddr(nb*8-1)) {
		return false
	}
	return true
}

// Validate walks the whole structure checking invariants (hash placement,
// count consistency). It returns false if corruption is detected without
// crashing — used by cross-check comparison and injection validation.
func (d *Dict) Validate() (valid bool) {
	defer func() {
		if recover() != nil {
			valid = false // a fault during the walk also means corrupt
		}
	}()
	bkts, nb := d.buckets()
	if nb == 0 || nb&(nb-1) != 0 {
		return false
	}
	var count uint64
	ok := true
	for i := uint64(0); i < nb; i++ {
		e := d.c.AS.ReadPtr(bkts + mem.VAddr(i*8))
		for e != mem.NullPtr {
			count++
			if count > d.Len()+1 {
				return false // cycle or count corruption
			}
			h := d.c.AS.ReadU64(e + entryOffHash)
			if h&(nb-1) != i {
				ok = false
			}
			kb := d.c.AS.ReadPtr(e + entryOffKey)
			if hashBytes(d.c.BlobBytes(kb)) != h {
				ok = false
			}
			e = d.c.AS.ReadPtr(e + entryOffNext)
		}
	}
	return ok && count == d.Len()
}
