package simds

import "phoenix/internal/mem"

// List is an intrusive doubly-linked list in simulated memory, used by the
// web-cache apps for LRU eviction order. Each node carries an opaque u64
// payload (typically a pointer to the owner's object).
//
// Header layout:  0: head (VAddr), 8: tail (VAddr), 16: length (u64)
// Node layout:    0: prev (VAddr), 8: next (VAddr), 16: payload (u64)
type List struct {
	c    *Ctx
	addr mem.VAddr
}

const (
	listHdrSize = 24
	listOffHead = 0
	listOffTail = 8
	listOffLen  = 16
	lnodeSize   = 24
	lnodeOffPrv = 0
	lnodeOffNxt = 8
	lnodeOffPay = 16
)

// NewList allocates an empty list.
func NewList(c *Ctx) *List {
	hdr := c.mustAlloc(listHdrSize)
	c.AS.WritePtr(hdr+listOffHead, mem.NullPtr)
	c.AS.WritePtr(hdr+listOffTail, mem.NullPtr)
	c.AS.WriteU64(hdr+listOffLen, 0)
	return &List{c: c, addr: hdr}
}

// OpenList reattaches to a preserved list at addr.
func OpenList(c *Ctx, addr mem.VAddr) *List {
	return &List{c: c, addr: addr}
}

// Addr returns the list's root address.
func (l *List) Addr() mem.VAddr { return l.addr }

// Len returns the node count.
func (l *List) Len() uint64 { return l.c.AS.ReadU64(l.addr + listOffLen) }

// PushFront inserts a node carrying payload at the head (most recently used
// position) and returns the node address.
func (l *List) PushFront(payload uint64) mem.VAddr {
	n := l.c.mustAlloc(lnodeSize)
	head := l.c.AS.ReadPtr(l.addr + listOffHead)
	l.c.AS.WritePtr(n+lnodeOffPrv, mem.NullPtr)
	l.c.AS.WritePtr(n+lnodeOffNxt, head)
	l.c.AS.WriteU64(n+lnodeOffPay, payload)
	if head != mem.NullPtr {
		l.c.AS.WritePtr(head+lnodeOffPrv, n)
	} else {
		l.c.AS.WritePtr(l.addr+listOffTail, n)
	}
	l.c.AS.WritePtr(l.addr+listOffHead, n)
	l.c.AS.WriteU64(l.addr+listOffLen, l.Len()+1)
	l.c.Charge(5)
	return n
}

// Payload returns the payload stored in node n.
func (l *List) Payload(n mem.VAddr) uint64 { return l.c.AS.ReadU64(n + lnodeOffPay) }

// Back returns the tail node (least recently used), or NullPtr when empty.
func (l *List) Back() mem.VAddr { return l.c.AS.ReadPtr(l.addr + listOffTail) }

// Front returns the head node, or NullPtr when empty.
func (l *List) Front() mem.VAddr { return l.c.AS.ReadPtr(l.addr + listOffHead) }

// unlink detaches n without freeing it.
func (l *List) unlink(n mem.VAddr) {
	prv := l.c.AS.ReadPtr(n + lnodeOffPrv)
	nxt := l.c.AS.ReadPtr(n + lnodeOffNxt)
	if prv != mem.NullPtr {
		l.c.AS.WritePtr(prv+lnodeOffNxt, nxt)
	} else {
		l.c.AS.WritePtr(l.addr+listOffHead, nxt)
	}
	if nxt != mem.NullPtr {
		l.c.AS.WritePtr(nxt+lnodeOffPrv, prv)
	} else {
		l.c.AS.WritePtr(l.addr+listOffTail, prv)
	}
	l.c.AS.WriteU64(l.addr+listOffLen, l.Len()-1)
	l.c.Charge(5)
}

// Remove detaches and frees node n, returning its payload.
func (l *List) Remove(n mem.VAddr) uint64 {
	pay := l.Payload(n)
	l.unlink(n)
	l.c.Heap.Free(n)
	return pay
}

// MoveToFront makes n the head — an LRU touch.
func (l *List) MoveToFront(n mem.VAddr) {
	if l.c.AS.ReadPtr(l.addr+listOffHead) == n {
		l.c.Charge(1)
		return
	}
	pay := l.Payload(n)
	prv := l.c.AS.ReadPtr(n + lnodeOffPrv)
	nxt := l.c.AS.ReadPtr(n + lnodeOffNxt)
	// Unlink in place.
	if prv != mem.NullPtr {
		l.c.AS.WritePtr(prv+lnodeOffNxt, nxt)
	}
	if nxt != mem.NullPtr {
		l.c.AS.WritePtr(nxt+lnodeOffPrv, prv)
	} else {
		l.c.AS.WritePtr(l.addr+listOffTail, prv)
	}
	// Relink at head.
	head := l.c.AS.ReadPtr(l.addr + listOffHead)
	l.c.AS.WritePtr(n+lnodeOffPrv, mem.NullPtr)
	l.c.AS.WritePtr(n+lnodeOffNxt, head)
	l.c.AS.WriteU64(n+lnodeOffPay, pay)
	if head != mem.NullPtr {
		l.c.AS.WritePtr(head+lnodeOffPrv, n)
	}
	l.c.AS.WritePtr(l.addr+listOffHead, n)
	l.c.Charge(8)
}

// ValidateHeader performs the cheap boot-time sanity check: endpoints must
// be null or mapped and the length plausible.
func (l *List) ValidateHeader() (valid bool) {
	defer func() {
		if recover() != nil {
			valid = false
		}
	}()
	head := l.c.AS.ReadPtr(l.addr + listOffHead)
	tail := l.c.AS.ReadPtr(l.addr + listOffTail)
	if head != mem.NullPtr && !l.c.AS.Mapped(head) {
		return false
	}
	if tail != mem.NullPtr && !l.c.AS.Mapped(tail) {
		return false
	}
	return l.Len() <= 1<<40
}

// Iterate visits payloads from head to tail. Return false to stop.
func (l *List) Iterate(fn func(node mem.VAddr, payload uint64) bool) {
	n := l.c.AS.ReadPtr(l.addr + listOffHead)
	steps := 0
	for n != mem.NullPtr {
		steps++
		if !fn(n, l.Payload(n)) {
			break
		}
		n = l.c.AS.ReadPtr(n + lnodeOffNxt)
	}
	l.c.Charge(steps)
}

// Mark marks the list header and every node, calling markPayload per node so
// the owner can mark payload objects.
func (l *List) Mark(markPayload func(payload uint64)) {
	l.c.Heap.Mark(l.addr)
	n := l.c.AS.ReadPtr(l.addr + listOffHead)
	steps := 0
	for n != mem.NullPtr {
		steps += 2
		l.c.Heap.Mark(n)
		if markPayload != nil {
			markPayload(l.Payload(n))
		}
		n = l.c.AS.ReadPtr(n + lnodeOffNxt)
	}
	l.c.Charge(steps)
}

// Validate checks forward/backward link symmetry and count, returning false
// on corruption.
func (l *List) Validate() (valid bool) {
	defer func() {
		if recover() != nil {
			valid = false
		}
	}()
	var count uint64
	var prev mem.VAddr = mem.NullPtr
	n := l.c.AS.ReadPtr(l.addr + listOffHead)
	for n != mem.NullPtr {
		count++
		if count > l.Len()+1 {
			return false
		}
		if l.c.AS.ReadPtr(n+lnodeOffPrv) != prev {
			return false
		}
		prev = n
		n = l.c.AS.ReadPtr(n + lnodeOffNxt)
	}
	return count == l.Len() && l.c.AS.ReadPtr(l.addr+listOffTail) == prev
}
