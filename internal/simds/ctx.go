// Package simds provides data structures that live entirely inside simulated
// memory: a chaining hash dictionary (the Redis-analogue KV table), a
// skiplist (the LevelDB-analogue memtable), and an intrusive doubly-linked
// list (cache LRU order).
//
// Every node, bucket array, and string is allocated from the simulated heap
// and every link is a simulated virtual address. This is what makes PHOENIX
// preservation real in a garbage-collected host language: after a restart
// that preserves the heap pages, Open* reattaches to the same root address
// and the structure is intact; if the pages were *not* preserved, the first
// pointer chase faults — exactly the self-containment contract of §3.3.
package simds

import (
	"time"

	"phoenix/internal/costmodel"
	"phoenix/internal/heap"
	"phoenix/internal/kernel"
	"phoenix/internal/mem"
	"phoenix/internal/simclock"
)

// Ctx bundles what the data structures need: the address space, the heap to
// allocate from, and an optional clock+model for charging simulated time.
type Ctx struct {
	AS    *mem.AddressSpace
	Heap  *heap.Heap
	Clock *simclock.Clock
	Model costmodel.Model
}

// NewCtx builds a context. clock may be nil for untimed use (tests).
func NewCtx(h *heap.Heap, clock *simclock.Clock, model costmodel.Model) *Ctx {
	return &Ctx{AS: h.AS(), Heap: h, Clock: clock, Model: model}
}

// Charge advances the simulated clock by steps memory operations (a node
// visit, a hash probe, a pointer chase each count as one step).
func (c *Ctx) Charge(steps int) {
	if c.Clock != nil && steps > 0 {
		c.Clock.Advance(time.Duration(steps) * c.Model.MemOp)
	}
}

// ChargeBytes advances the clock for touching n payload bytes.
func (c *Ctx) ChargeBytes(n int) {
	if c.Clock != nil && n > 0 {
		c.Clock.Advance(time.Duration(n) * c.Model.ByteTouch)
	}
}

// mustAlloc allocates or crashes with a simulated OOM (SIGABRT), which is a
// recoverable application failure, not a simulator bug.
func (c *Ctx) mustAlloc(n int) mem.VAddr {
	p := c.Heap.Alloc(n)
	if p == mem.NullPtr {
		panic(&kernel.Crash{Sig: kernel.SIGABRT, Reason: "out of memory"})
	}
	return p
}

// hashBytes is FNV-1a 64-bit.
func hashBytes(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, x := range b {
		h ^= uint64(x)
		h *= prime64
	}
	return h
}
