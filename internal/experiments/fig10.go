package experiments

import (
	"fmt"
	"time"

	"phoenix/internal/bugs"
	"phoenix/internal/recovery"
)

// RunFig10 reproduces Figure 10: for every reproduced bug and every
// applicable recovery mechanism, run the system's standard benchmark,
// trigger the fault mid-run, keep serving, and report the three
// availability metrics (downtime, relative effective availability at the
// fifth second after restart, time to 90% recovery).
//
// Applicability follows the paper: LevelDB has no Vanilla (it always
// journals); the web caches have no Builtin (no persistence).
func RunFig10(o Options) error {
	o.fill()
	warm, observe := 10*time.Second, 30*time.Second
	if o.Quick {
		warm, observe = 3*time.Second, 9*time.Second
	}
	fmt.Fprintf(o.Out, "%-5s %-18s %-9s %-12s %-9s %-12s %s\n",
		"bug", "system", "mode", "downtime", "5s-avail", "90%-rec", "note")
	for _, bug := range bugs.All() {
		for _, mode := range applicableModes(bug.System) {
			cfg := recovery.Config{
				Mode:            mode,
				UnsafeRegions:   mode == recovery.ModePhoenix,
				WatchdogTimeout: watchdogFor(bug),
			}
			if mode == recovery.ModeBuiltin || mode == recovery.ModeCRIU {
				cfg.CheckpointInterval = warm / 2
			}
			if mode == recovery.ModePhoenix && (bug.System == "kvstore" || bug.System == "lsmdb") {
				// Keep the app's own persistence cadence alive under
				// PHOENIX, as the paper's deployments do.
				cfg.CheckpointInterval = warm / 2
			}
			sh, err := runScenario(bug.System, bug.ID, cfg, o, warm, observe)
			if err != nil {
				return fmt.Errorf("fig10 %s/%s: %w", bug.ID, mode, err)
			}
			sum := sh.h.TL.Summarize()
			rec := "never"
			if sum.Recovered90 {
				rec = fmtDur(sum.Recovery90)
			}
			note := ""
			if sh.h.Stat.UnsafeFallbacks > 0 {
				note = "unsafe-region fallback"
			}
			if sh.h.Stat.Failures == 0 {
				note = "fault did not manifest"
			}
			fmt.Fprintf(o.Out, "%-5s %-18s %-9s %-12s %-9.2f %-12s %s\n",
				bug.ID, bug.System, mode, fmtDur(sum.Downtime), sum.FifthSecond, rec, note)
		}
	}
	return nil
}

func applicableModes(system string) []recovery.Mode {
	switch system {
	case "lsmdb":
		return []recovery.Mode{recovery.ModeBuiltin, recovery.ModeCRIU, recovery.ModePhoenix}
	case "webcache-varnish", "webcache-squid":
		return []recovery.Mode{recovery.ModeVanilla, recovery.ModeCRIU, recovery.ModePhoenix}
	default:
		return []recovery.Mode{recovery.ModeVanilla, recovery.ModeBuiltin, recovery.ModeCRIU, recovery.ModePhoenix}
	}
}

func watchdogFor(b bugs.Bug) time.Duration {
	if b.ID == "VA3" {
		return 5 * time.Second // pool-herder quiet time (§4.3.3)
	}
	return 2 * time.Second
}
