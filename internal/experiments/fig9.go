package experiments

import (
	"fmt"
	"time"

	"phoenix/internal/core"
	"phoenix/internal/heap"
	"phoenix/internal/kernel"
	"phoenix/internal/linker"
	"phoenix/internal/mem"
)

// RunFig9 reproduces the §4.1 microbenchmark: PHOENIX restart time as a
// function of preserved memory size, measured from invoking phx_restart to
// returning from phx_init in the restarted process, averaged over several
// runs per size, against the plain-restart baseline.
//
// The paper's shape: ~1.20 ms flat below 4 MB (fixed cost dominates), then
// linear in preserved pages (~220 ms at 32 GB); plain restart 1.02 ms.
//
// Sizes above 1 GiB preserve sparse heap pages (allocated but untouched
// frames) so the host doesn't need tens of GB of RAM; preserve_exec moves
// the same number of page-table entries either way, which is what the
// latency depends on.
func RunFig9(o Options) error {
	o.fill()
	sizes := []int64{
		64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 32 << 20,
		128 << 20, 512 << 20, 1 << 30, 4 << 30, 32 << 30,
	}
	touchLimit := int64(1 << 30)
	runs := 5
	if o.Quick {
		sizes = sizes[:9]
		runs = 2
	}

	fmt.Fprintf(o.Out, "%-12s %-14s %-12s\n", "preserved", "phoenix", "baseline")
	for _, size := range sizes {
		var total, baseTotal time.Duration
		for r := 0; r < runs; r++ {
			d, b, err := measureRestart(o.Seed+int64(r), size, size <= touchLimit)
			if err != nil {
				return err
			}
			total += d
			baseTotal += b
		}
		fmt.Fprintf(o.Out, "%-12s %-14v %-12v\n",
			fmtBytes(size), total/time.Duration(runs), baseTotal/time.Duration(runs))
	}
	return nil
}

// measureRestart builds a process holding `size` bytes of heap, performs one
// PHOENIX restart preserving the heap, and returns the simulated restart
// latency plus a plain-restart baseline.
func measureRestart(seed, size int64, touch bool) (phoenixTime, baseline time.Duration, err error) {
	m := kernel.NewMachine(seed)
	b := linker.NewBuilder("microbench", 0x0010_0000)
	b.Var("mb.config", 8, linker.SecData)
	img := b.Build()

	p, err := m.Spawn(img)
	if err != nil {
		return 0, 0, err
	}
	rt := core.Init(p, nil)
	h, err := rt.OpenHeap(heap.Options{Name: "mb", BrkMax: 1 << 20, ArenaSize: 64 << 20})
	if err != nil {
		return 0, 0, err
	}
	// Allocate the target size in large chunks; fill the first bytes of
	// each page with non-zero data when touching is affordable.
	const chunk = 32 << 20
	var allocated int64
	var first mem.VAddr
	for allocated < size {
		n := size - allocated
		if n > chunk {
			n = chunk
		}
		ptr := h.Alloc(int(n))
		if ptr == mem.NullPtr {
			return 0, 0, fmt.Errorf("fig9: allocation failed at %d bytes", allocated)
		}
		if first == mem.NullPtr {
			first = ptr
		}
		if touch {
			for off := int64(0); off < n; off += mem.PageSize {
				p.AS.WriteU64(ptr+mem.VAddr(off), 0xA5A5A5A5A5A5A5A5)
			}
		}
		allocated += n
	}
	info := h.Alloc(16)
	p.AS.WritePtr(info, first)

	start := m.Clock.Now()
	np, err := rt.Restart(core.RestartPlan{InfoAddr: info, WithHeap: true})
	if err != nil {
		return 0, 0, err
	}
	rt2 := core.Init(np, nil)
	if _, err := rt2.OpenHeap(heap.Options{Name: "mb", BrkMax: 1 << 20, ArenaSize: 64 << 20}); err != nil {
		return 0, 0, err
	}
	phoenixTime = m.Clock.Now() - start
	if !rt2.IsRecoveryMode() {
		return 0, 0, fmt.Errorf("fig9: successor not in recovery mode")
	}
	if touch && np.AS.ReadU64(np.AS.ReadPtr(info)) != 0xA5A5A5A5A5A5A5A5 {
		return 0, 0, fmt.Errorf("fig9: preserved content lost")
	}

	// Plain-restart baseline ("process restart in a bash loop").
	start = m.Clock.Now()
	if _, err := np.Exec("baseline"); err != nil {
		return 0, 0, err
	}
	baseline = m.Clock.Now() - start
	return phoenixTime, baseline, nil
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%dGiB", n>>30)
	case n >= 1<<20:
		return fmt.Sprintf("%dMiB", n>>20)
	default:
		return fmt.Sprintf("%dKiB", n>>10)
	}
}
