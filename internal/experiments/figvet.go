package experiments

import (
	"fmt"

	"phoenix/internal/analysis"
	"phoenix/internal/analysis/pta"
	"phoenix/internal/explore"
	"phoenix/internal/ir"
)

// RunFigVet runs the preservation-safety verifier over every application
// model and then the static/dynamic differential campaign: the points-to
// verifier's verdicts against the interpreter's restart-audit ground truth,
// including the seeded dangling-store mutants. The per-model finding counts
// and the agreement table in EXPERIMENTS.md come from the full profile (500
// seeds per model); Quick keeps CI at a 50-seed smoke.
func RunFigVet(o Options) error {
	o.fill()
	fmt.Fprintf(o.Out, "static verification (phxvet):\n")
	for _, app := range analysis.IRApps() {
		rep, err := pta.Vet(ir.MustParse(app.Src), app.Entries)
		if err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "  %-10s funcs=%d objects=%d preserved=%d transient=%d findings=%v clean=%v\n",
			app.Name, rep.Funcs, rep.Objects, rep.Preserved, rep.Transient, rep.Counts(), rep.Clean())
	}
	opts := explore.VetOptions{Seeds: 500, Start: o.Seed}
	if o.Quick {
		opts.Seeds = 50
	}
	sum, err := explore.CheckVet(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "%s", explore.FmtVetSummary(sum))
	return nil
}
