// Package experiments implements one runnable reproduction per table and
// figure of the paper's evaluation (§4). Each experiment prints the same
// rows/series the paper reports; EXPERIMENTS.md records the paper-vs-
// measured comparison and the scale factors used.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"phoenix/internal/faultinject"
	"phoenix/internal/kernel"
	"phoenix/internal/recovery"
	"phoenix/internal/workload"

	"phoenix/internal/apps/boost"
	"phoenix/internal/apps/kvstore"
	"phoenix/internal/apps/lsmdb"
	"phoenix/internal/apps/particle"
	"phoenix/internal/apps/webcache"
)

// Options controls an experiment run.
type Options struct {
	// Quick shrinks workloads for CI/bench use; the full sizes are the
	// defaults used to produce EXPERIMENTS.md.
	Quick bool
	// Seed drives all deterministic randomness.
	Seed int64
	// Out receives the experiment's report.
	Out io.Writer
}

func (o *Options) fill() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(o Options) error
}

// All returns the experiment registry in paper order.
func All() []Experiment {
	return []Experiment{
		{"tab1", "Table 1: real-world failure study taxonomy", RunTab1},
		{"fig1", "Figure 1: Redis #12290 downtime and warm-up under builtin recovery", RunFig1},
		{"fig9", "Figure 9: PHOENIX restart latency vs preserved memory size", RunFig9},
		{"tab3", "Table 3: evaluated systems and preserved state", RunTab3},
		{"tab4", "Table 4: porting effort", RunTab4},
		{"tab5", "Table 5: reproduced real-world bugs", RunTab5},
		{"fig10", "Figure 10: availability of all bug cases under four recovery mechanisms", RunFig10},
		{"fig11", "Figure 11: Varnish #2796 deadlock timeline", RunFig11},
		{"fig12", "Figure 12: Redis #12290 timeline across recovery mechanisms", RunFig12},
		{"fig13", "Figure 13: XGBoost progress recovery timeline", RunFig13},
		{"tab6", "Table 6: injected fault types", RunTab6},
		{"tab7", "Table 7: large-scale fault injection", RunTab7},
		{"tab8", "Table 8: runtime overhead", RunTab8},
		{"tab9", "Table 9: memory reuse", RunTab9},
		{"figcluster", "Cluster figure: availability under traffic for replicated PHOENIX vs builtin vs vanilla", RunFigCluster},
		{"figshard", "Shard figure: sharded fabric availability with per-shard kills and preserve-riding live migration", RunFigShard},
		{"figexplore", "Exploration campaign: randomized fault-schedule search with oracle checking and failing-seed shrinking", RunFigExplore},
		{"figvet", "Vet differential: points-to preservation-safety verifier vs dynamic restart-audit ground truth", RunFigVet},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- shared builders ---

// sysHarness bundles one application instance under one recovery config.
type sysHarness struct {
	h   *recovery.Harness
	arm func(bug string) // schedules a scripted bug
	dmp func() map[string]string
	// recomputed reports redone work units (compute apps only; nil else).
	recomputed func() uint64
}

// buildSystem constructs a named system with its standard workload under
// the given recovery configuration, boots it, and pre-loads its dataset.
func buildSystem(system string, cfg recovery.Config, o Options, inj *faultinject.Injector) (*sysHarness, error) {
	m := kernel.NewMachine(o.Seed)
	records := uint64(20000)
	if o.Quick {
		records = 4000
	}
	boot := func(app recovery.App, gen workload.Generator) (*recovery.Harness, error) {
		h := recovery.NewHarness(m, cfg, app, gen, inj)
		if err := h.Boot(); err != nil {
			return nil, err
		}
		return h, nil
	}
	switch system {
	case "kvstore":
		kv := kvstore.New(kvstore.Config{RedoLog: cfg.CrossCheck, Cleanup: true}, inj)
		gen := workload.NewYCSB(workload.YCSBConfig{
			Seed: o.Seed, Records: records, ReadFrac: 0.88, InsertFrac: 0.10,
			ValueSize: 128, ZipfianKeys: true,
		})
		h, err := boot(kv, gen)
		if err != nil {
			return nil, err
		}
		keys := make([]string, records)
		for i := range keys {
			keys[i] = fmt.Sprintf("user%010d", i)
		}
		kv.Load(keys, 128)
		return &sysHarness{h: h, arm: kv.ArmBug, dmp: func() map[string]string { return kv.Dump() }}, nil
	case "lsmdb":
		db := lsmdb.New(lsmdb.Config{MemtableThreshold: 8 << 20, Cleanup: true}, inj)
		h, err := boot(db, workload.NewFillSeq(128))
		if err != nil {
			return nil, err
		}
		return &sysHarness{h: h, arm: db.ArmBug, dmp: func() map[string]string { return db.Dump() }}, nil
	case "webcache-varnish", "webcache-squid":
		flavor := webcache.FlavorVarnish
		if system == "webcache-squid" {
			flavor = webcache.FlavorSquid
		}
		web := workload.NewWeb(workload.WebConfig{Seed: o.Seed, URLs: records, MeanSize: 8 << 10})
		c := webcache.New(webcache.Config{Flavor: flavor, CapacityBytes: 512 << 20, Cleanup: true}, web, inj)
		h, err := boot(c, web)
		if err != nil {
			return nil, err
		}
		return &sysHarness{h: h, arm: c.ArmBug, dmp: func() map[string]string { return c.Dump() }}, nil
	case "boost":
		samples := 2000
		if o.Quick {
			samples = 500
		}
		tr := boost.New(boost.Config{Samples: samples, Features: 8, MaxIters: 4096, WorkScale: 400}, inj)
		h, err := boot(tr, &computeGen{})
		if err != nil {
			return nil, err
		}
		return &sysHarness{h: h, arm: tr.ArmBug, dmp: func() map[string]string { return tr.Dump() },
			recomputed: func() uint64 { return tr.Stats().Recomputed }}, nil
	case "particle":
		parts := 4000
		if o.Quick {
			parts = 1000
		}
		s := particle.New(particle.Config{Particles: parts, Cells: 128, WorkScale: 400}, inj)
		h, err := boot(s, &computeGen{})
		if err != nil {
			return nil, err
		}
		return &sysHarness{h: h, arm: s.ArmBug, dmp: func() map[string]string { return s.Dump() },
			recomputed: func() uint64 { return s.Stats().Recomputed }}, nil
	}
	return nil, fmt.Errorf("experiments: unknown system %q", system)
}

// computeGen emits one compute step per request.
type computeGen struct{ seq uint64 }

func (g *computeGen) Next() *workload.Request {
	g.seq++
	return &workload.Request{Seq: g.seq, Op: workload.OpRead, Key: "step"}
}

// Clone implements workload.Generator; the step stream is seed-independent.
func (g *computeGen) Clone(seed int64) workload.Generator { return &computeGen{} }

// fmtDur renders a duration in seconds with ms precision.
func fmtDur(d time.Duration) string { return fmt.Sprintf("%.3fs", d.Seconds()) }

// sortedKeys returns map keys sorted.
func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
