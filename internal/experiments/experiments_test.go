package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"phoenix/internal/recovery"
)

// TestRegistryComplete checks every paper table/figure has an experiment.
func TestRegistryComplete(t *testing.T) {
	want := []string{"tab1", "fig1", "fig9", "tab3", "tab4", "tab5",
		"fig10", "fig11", "fig12", "fig13", "tab6", "tab7", "tab8", "tab9",
		"figcluster", "figshard", "figexplore", "figvet"}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("missing experiment %s", id)
		}
	}
	if len(All()) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(All()), len(want))
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID(nope) resolved")
	}
}

// runQuick executes one experiment at quick scale and returns its output.
func runQuick(t *testing.T, id string) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("unknown experiment %s", id)
	}
	var buf bytes.Buffer
	if err := e.Run(Options{Quick: true, Seed: 1, Out: &buf}); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return buf.String()
}

func TestStaticTables(t *testing.T) {
	if out := runQuick(t, "tab1"); !strings.Contains(out, "87.5%") {
		t.Fatalf("tab1 missing finding-1 percentage:\n%s", out)
	}
	if out := runQuick(t, "tab3"); !strings.Contains(out, "Skiplist") {
		t.Fatalf("tab3 incomplete:\n%s", out)
	}
	if out := runQuick(t, "tab5"); strings.Count(out, "\n") < 17 {
		t.Fatalf("tab5 incomplete:\n%s", out)
	}
	if out := runQuick(t, "tab6"); !strings.Contains(out, "comparison-inversion") {
		t.Fatalf("tab6 incomplete:\n%s", out)
	}
	if out := runQuick(t, "tab4"); !strings.Contains(out, "phx_stage") {
		t.Fatalf("tab4 incomplete:\n%s", out)
	}
}

func TestFig9Shape(t *testing.T) {
	out := runQuick(t, "fig9")
	if !strings.Contains(out, "64KiB") || !strings.Contains(out, "1GiB") {
		t.Fatalf("fig9 sizes missing:\n%s", out)
	}
	// Baseline column present and constant.
	if !strings.Contains(out, "1.02ms") {
		t.Fatalf("fig9 baseline missing:\n%s", out)
	}
}

func TestBuildSystemAllNames(t *testing.T) {
	for _, sys := range []string{"kvstore", "lsmdb", "webcache-varnish", "webcache-squid", "boost", "particle"} {
		sh, err := buildSystem(sys, recovery.Config{Mode: recovery.ModeVanilla}, Options{Quick: true, Seed: 1}, nil)
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if err := sh.h.RunRequests(10); err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if len(sh.dmp()) == 0 && sys != "webcache-varnish" && sys != "webcache-squid" {
			t.Errorf("%s: empty dump", sys)
		}
	}
	if _, err := buildSystem("nope", recovery.Config{}, Options{Quick: true, Seed: 1}, nil); err == nil {
		t.Fatal("unknown system accepted")
	}
}

// TestFig12Shape runs the Redis mechanism comparison and checks the ordering
// claims the paper makes.
func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	warm, observe := fig1Windows(Options{Quick: true})
	results := map[recovery.Mode]time.Duration{}
	avail := map[recovery.Mode]float64{}
	for _, mode := range []recovery.Mode{recovery.ModeVanilla, recovery.ModeBuiltin, recovery.ModePhoenix} {
		cfg := recovery.Config{Mode: mode, UnsafeRegions: mode == recovery.ModePhoenix, WatchdogTimeout: 2 * time.Second}
		if mode != recovery.ModeVanilla {
			cfg.CheckpointInterval = warm / 2
		}
		sh, err := buildBigKV(cfg, Options{Quick: true, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := sh.h.RunUntil(sh.h.M.Clock.Now() + warm + warm/5); err != nil {
			t.Fatal(err)
		}
		sh.arm("R4")
		if err := sh.h.RunUntil(sh.h.M.Clock.Now() + observe); err != nil {
			t.Fatal(err)
		}
		sum := sh.h.TL.Summarize()
		results[mode] = sum.Downtime
		avail[mode] = sum.FifthSecond
	}
	// PHOENIX downtime at or below every alternative.
	if results[recovery.ModePhoenix] > results[recovery.ModeVanilla] ||
		results[recovery.ModePhoenix] > results[recovery.ModeBuiltin] {
		t.Fatalf("phoenix downtime not best: %v", results)
	}
	// Vanilla's 5-second availability far below PHOENIX's.
	if avail[recovery.ModeVanilla] > avail[recovery.ModePhoenix]*0.8 {
		t.Fatalf("vanilla availability suspiciously high: %v", avail)
	}
}

// TestTab7Smoke runs a tiny injection campaign end to end.
func TestTab7Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runQuick(t, "tab7")
	if !strings.Contains(out, "kvstore") || !strings.Contains(out, "Sum") {
		t.Fatalf("tab7 incomplete:\n%s", out)
	}
	// The U configuration must never show additional corruption.
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) >= 9 && fields[1] == "U" {
			if fields[6] != "0" {
				t.Fatalf("U config with additional corruption:\n%s", out)
			}
		}
	}
}

// TestAblations runs each ablation and checks its headline claim.
func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if len(Ablations()) != 3 {
		t.Fatalf("ablation registry = %d", len(Ablations()))
	}
	run := func(id string) string {
		t.Helper()
		for _, e := range Ablations() {
			if e.ID == id {
				var buf bytes.Buffer
				if err := e.Run(Options{Quick: true, Seed: 1, Out: &buf}); err != nil {
					t.Fatalf("%s: %v", id, err)
				}
				return buf.String()
			}
		}
		t.Fatalf("unknown ablation %s", id)
		return ""
	}
	// Zero-copy must beat page copying.
	out := run("abl-zerocopy")
	if !strings.Contains(out, "x") || strings.Contains(out, "0.") && strings.Contains(out, " 0.9x") {
		t.Fatalf("abl-zerocopy output:\n%s", out)
	}
	// Cleanup must reclaim memory.
	out = run("abl-cleanup")
	if !strings.Contains(out, "true") || !strings.Contains(out, "false") {
		t.Fatalf("abl-cleanup output:\n%s", out)
	}
	// Precision: the analyzer placement must reject strictly fewer crashes
	// than critical-section-style blanket marking.
	out = run("abl-regions")
	var tightPct, critPct float64
	for _, line := range strings.Split(out, "\n") {
		var crashes, unsafeCnt int
		var pct float64
		if n, _ := fmt.Sscanf(line, "analyzer %d %d %f%%", &crashes, &unsafeCnt, &pct); n == 3 {
			tightPct = pct
		}
		if n, _ := fmt.Sscanf(line, "crit-section %d %d %f%%", &crashes, &unsafeCnt, &pct); n == 3 {
			critPct = pct
		}
	}
	if tightPct == 0 || critPct == 0 || tightPct >= critPct {
		t.Fatalf("precision ablation: analyzer %.1f%% vs crit-section %.1f%%\n%s", tightPct, critPct, out)
	}
}

// TestTab9Smoke checks the reuse accounting is sane.
func TestTab9Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runQuick(t, "tab9")
	for _, sys := range []string{"kvstore", "lsmdb", "boost", "particle"} {
		if !strings.Contains(out, sys) {
			t.Fatalf("tab9 missing %s:\n%s", sys, out)
		}
	}
	// No reuse ratio above 100%.
	if strings.Contains(out, "1000.") || strings.Contains(out, "((") {
		t.Fatalf("tab9 implausible:\n%s", out)
	}
}

// TestFig11Smoke checks the Varnish deadlock scenario end to end.
func TestFig11Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runQuick(t, "fig11")
	if !strings.Contains(out, "PHOENIX") || !strings.Contains(out, "Vanilla") {
		t.Fatalf("fig11 incomplete:\n%s", out)
	}
}

// TestFig13Smoke checks the progress-recovery scenario: PHOENIX must report
// zero recomputed iterations.
func TestFig13Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runQuick(t, "fig13")
	found := false
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "PHOENIX") && strings.Contains(line, "0 iters") {
			found = true
		}
	}
	if !found {
		t.Fatalf("phoenix recomputed work:\n%s", out)
	}
}

// TestFigExploreSmoke runs the quick exploration sweep: the summary must
// cover both execution modes, and any violating seed must report a shrunk
// minimal schedule.
func TestFigExploreSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runQuick(t, "figexplore")
	if !strings.Contains(out, "explore: 50 seeds") {
		t.Fatalf("figexplore did not run the quick sweep:\n%s", out)
	}
	if !strings.Contains(out, "modes: single=") || strings.Contains(out, "cluster=0") {
		t.Fatalf("quick sweep never drew a cluster schedule:\n%s", out)
	}
	if strings.Contains(out, "violating") && !strings.Contains(out, ": 0 violating") &&
		!strings.Contains(out, "minimal:") {
		t.Fatalf("violating seeds without minimal schedules:\n%s", out)
	}
}

// TestFigVetSmoke runs the quick vet differential: every model must verify
// clean, the campaign must agree end to end, and every mutant line must show
// both static flagging and dynamic manifestation.
func TestFigVetSmoke(t *testing.T) {
	out := runQuick(t, "figvet")
	if !strings.Contains(out, "vet: 50 seeds") {
		t.Fatalf("figvet did not run the quick sweep:\n%s", out)
	}
	if !strings.Contains(out, "static/dynamic AGREE") {
		t.Fatalf("figvet campaign disagreed:\n%s", out)
	}
	if strings.Contains(out, "clean=false") || strings.Contains(out, "flagged=false") {
		t.Fatalf("figvet model not clean or mutant unflagged:\n%s", out)
	}
	if strings.Count(out, "mutant ") < 5 {
		t.Fatalf("figvet exercised fewer than 5 mutants:\n%s", out)
	}
}

// TestFigShardSmoke runs the quick sharded-fabric comparison: the contract
// check inside CheckShard does the heavy lifting; here we require the
// figure's own lines — per-shard kill windows all recovered and at least
// one completed migration with its delta trajectory.
func TestFigShardSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runQuick(t, "figshard")
	if !strings.Contains(out, "kvstore") || !strings.Contains(out, "PHOENIX") {
		t.Fatalf("figshard incomplete:\n%s", out)
	}
	if strings.Contains(out, "unrecovered at run end") {
		t.Fatalf("figshard left a kill window open:\n%s", out)
	}
	if !strings.Contains(out, "delta rounds") {
		t.Fatalf("figshard reports no completed migration:\n%s", out)
	}
}
