package experiments

import (
	"fmt"

	"phoenix/internal/explore"
)

// RunFigExplore runs the deterministic exploration campaign: a seed sweep in
// which every seed expands into a randomized fault schedule (preserve-path
// faults, bit-flip corruption, node kills, drains, partitions at random
// simclock instants), runs against a randomly drawn registry application in
// single-harness or cluster mode, and is judged by the per-app invariant
// oracles. Violating seeds are shrunk to minimal schedules and each minimal
// artifact is re-verified to replay byte-identically — the search-based
// complement to the scripted campaigns behind Tables 6-7.
//
// The full profile (1000 seeds) produced the seeds-vs-violations table in
// EXPERIMENTS.md; Quick keeps CI at a 50-seed smoke.
func RunFigExplore(o Options) error {
	o.fill()
	opts := explore.Options{Seeds: 1000, Start: o.Seed}
	if o.Quick {
		opts.Seeds = 50
	}
	sum, err := explore.CheckExplore(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "%s\n", explore.FmtSummary(sum))
	return nil
}
