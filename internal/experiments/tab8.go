package experiments

import (
	"fmt"
	"time"

	"phoenix/internal/recovery"
)

// RunTab8 reproduces the runtime-overhead comparison (§4.5): fault-free
// runs of every system under PHOENIX, CRIU, and Builtin, reported as the
// slowdown relative to Vanilla. Snapshot cadence is scaled with the run
// length the same way the paper's 30 s interval relates to its multi-minute
// runs.
//
// The CRIU snapshot interval is scaled so the image-bytes-per-interval
// ratio approximates the paper's deployment (6 GB images every 30 s);
// without the scaling, our reduced datasets would make CRIU look cheap.
//
// Expected shape: PHOENIX a few percent (unsafe-region marks and allocator
// tracking), Builtin similar (BGSAVE-style async snapshots), CRIU an order
// of magnitude more (stop-the-world full-memory dumps).
func RunTab8(o Options) error {
	o.fill()
	window := 30 * time.Second
	if o.Quick {
		window = 8 * time.Second
	}
	systems := []string{"kvstore", "lsmdb", "webcache-varnish", "webcache-squid", "boost", "particle"}
	fmt.Fprintf(o.Out, "%-18s %10s %10s %10s\n", "system", "PHOENIX", "CRIU", "Builtin")
	for _, system := range systems {
		base, err := measureWork(system, recovery.Config{Mode: recovery.ModeVanilla}, o, window)
		if err != nil {
			return fmt.Errorf("tab8 %s vanilla: %w", system, err)
		}
		row := make(map[string]string)
		for _, mc := range []struct {
			label string
			cfg   recovery.Config
		}{
			{"PHOENIX", recovery.Config{Mode: recovery.ModePhoenix, UnsafeRegions: true}},
			{"CRIU", recovery.Config{Mode: recovery.ModeCRIU, CheckpointInterval: window / 50}},
			{"Builtin", recovery.Config{Mode: recovery.ModeBuiltin, CheckpointInterval: window / 10}},
		} {
			if mc.label == "Builtin" && !hasBuiltin(system) {
				row[mc.label] = "N/A"
				continue
			}
			work, err := measureWork(system, mc.cfg, o, window)
			if err != nil {
				return fmt.Errorf("tab8 %s %s: %w", system, mc.label, err)
			}
			overhead := (float64(base)/float64(work) - 1) * 100
			if overhead < 0 {
				overhead = 0
			}
			row[mc.label] = fmt.Sprintf("%.1f%%", overhead)
		}
		fmt.Fprintf(o.Out, "%-18s %10s %10s %10s\n", system, row["PHOENIX"], row["CRIU"], row["Builtin"])
	}
	return nil
}

func hasBuiltin(system string) bool {
	switch system {
	case "webcache-varnish", "webcache-squid":
		return false
	}
	return true
}

// measureWork runs the system fault-free for a fixed window of simulated
// time and returns the number of completed requests/iterations — higher is
// faster, so overhead = base/work - 1.
func measureWork(system string, cfg recovery.Config, o Options, window time.Duration) (int, error) {
	cfg.WatchdogTimeout = time.Hour // no hang handling needed
	sh, err := buildSystem(system, cfg, o, nil)
	if err != nil {
		return 0, err
	}
	start := sh.h.M.Clock.Now()
	before := sh.h.Stat.Requests
	if err := sh.h.RunUntil(start + window); err != nil {
		return 0, err
	}
	if sh.h.Stat.Failures != 0 {
		return 0, fmt.Errorf("fault-free run failed: %+v", sh.h.Stat)
	}
	return sh.h.Stat.Requests - before, nil
}
