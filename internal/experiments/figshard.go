package experiments

import (
	"fmt"

	"phoenix/internal/apps/registry"
	"phoenix/internal/shard"
)

// RunFigShard measures the sharded serving fabric: for each shardable
// application, a consistent-hash ring of per-shard replica groups serves an
// open-loop client population while the identical kill-and-rebalance
// schedule — replica kills, a live shard migration, and a ring change, all
// mid-traffic — is replayed against PHOENIX, the application's builtin
// recovery, and a vanilla restart. The figure reports per-mode
// availability, latency percentiles, total unavailability, the migration
// cutover window, and the per-move delta-round trajectory; the per-shard
// kill windows show the sharding dividend over the whole-replica clusters
// of figcluster.
//
// The run doubles as the campaign's contract check: CheckShard asserts the
// availability ordering, that PHOENIX's delta-converged cutover beats the
// non-preserving modes' stop-and-copy, that no acked write is lost and no
// request is served by a non-owner, and that a same-seed rerun is
// byte-identical.
func RunFigShard(o Options) error {
	o.fill()
	systems := registry.ShardSystems(o.Seed)
	if o.Quick {
		var keep []shard.System
		for _, s := range systems {
			if s.Name == "kvstore" {
				keep = append(keep, s)
			}
		}
		systems = keep
	}
	res, err := shard.CheckShard(systems, shard.Options{Seed: o.Seed})
	for _, r := range res {
		fmt.Fprintf(o.Out, "%s\n", shard.FmtComparison(r))
		for _, w := range r.Phoenix.Windows {
			state := "recovered"
			if !w.Closed {
				state = "unrecovered at run end"
			}
			fmt.Fprintf(o.Out, "  phoenix shard %d/%d (node %d): unavailable %dµs (%s)\n",
				w.Shard, w.Replica, w.Node, w.DurUs, state)
		}
		for _, mv := range r.Phoenix.MoveReports {
			if !mv.Completed {
				continue
			}
			fmt.Fprintf(o.Out, "  phoenix move shard %d (%s): %d delta rounds, %d pages shipped, final delta %d, cutover %dµs\n",
				mv.Shard, mv.Reason, len(mv.Rounds), mv.ShippedPages, mv.FinalDelta, mv.CutoverUs)
		}
	}
	return err
}
