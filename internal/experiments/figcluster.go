package experiments

import (
	"fmt"

	"phoenix/internal/apps/registry"
	"phoenix/internal/cluster"
)

// RunFigCluster measures availability under traffic at the serving-tier
// level: for every registered application, a 3-replica cluster of recovery
// harnesses behind a load balancer serves a closed-loop client population
// over a simulated network while the identical kill/drain/partition schedule
// is replayed against PHOENIX, the application's builtin recovery, and a
// vanilla restart. The figure reports per-mode availability, latency
// percentiles, total unavailability (kill until the node's first effective
// read), and failed requests — the cluster-scale version of Figure 10's
// per-process availability comparison.
//
// The run doubles as the campaign's contract check: CheckCluster asserts the
// availability ordering, that every PHOENIX kill recovers to effective
// service, that draining or partitioned nodes serve nothing, and that a
// same-seed rerun is byte-identical.
func RunFigCluster(o Options) error {
	o.fill()
	systems := registry.ClusterSystems(o.Seed)
	if o.Quick {
		// One storage, one cache, one compute system keeps the quick profile
		// representative.
		var keep []cluster.System
		for _, s := range systems {
			switch s.Name {
			case "kvstore", "webcache-varnish", "boost":
				keep = append(keep, s)
			}
		}
		systems = keep
	}
	res, err := cluster.CheckCluster(systems, cluster.Options{Seed: o.Seed})
	for _, r := range res {
		fmt.Fprintf(o.Out, "%s\n", cluster.FmtComparison(r))
		for _, w := range r.Phoenix.Windows {
			state := "recovered"
			if !w.Closed {
				state = "unrecovered at run end"
			}
			fmt.Fprintf(o.Out, "  phoenix node %d: unavailable %dµs (%s)\n", w.Node, w.DurUs, state)
		}
	}
	return err
}
