package experiments

import (
	"fmt"

	"phoenix/internal/bugs"
	"phoenix/internal/faultinject"
)

// RunTab1 prints the §2.3 failure-study taxonomy (Table 1). This is a
// dataset reproduction: the study is human bug triage, encoded in
// internal/bugs.
func RunTab1(o Options) error {
	o.fill()
	w := o.Out
	fmt.Fprintf(w, "%-14s %-5s %6s %6s %5s %6s %8s %7s\n",
		"System", "Lang", "Cases", "Temp", "BadG", "GoodG", "Partial", "Modify")
	for _, r := range bugs.Study() {
		fmt.Fprintf(w, "%-14s %-5s %6d %6d %5d %6d %8d %7d\n",
			r.System, r.Language, r.Cases, r.TempOnly, r.BadGlob, r.GoodGlob, r.Partial, r.Modify)
	}
	t := bugs.StudyTotals()
	fmt.Fprintf(w, "%-14s %-5s %6d %6d %5d %6d %8d %7d\n",
		"Total", "", t.Cases, t.TempOnly, t.BadGlob, t.GoodGlob, t.Partial, t.Modify)
	fmt.Fprintf(w, "Finding 1: %.1f%% corrupt only temporary state or none (paper: 87.5%%)\n",
		100*float64(t.TempOnly+t.GoodGlob)/float64(t.Cases))
	return nil
}

// RunTab3 prints the evaluated systems and their preserved state (Table 3).
func RunTab3(o Options) error {
	o.fill()
	rows := [][3]string{
		{"kvstore (Redis)", "In-mem KV database", "In-mem KV hash table"},
		{"lsmdb (LevelDB)", "KV database", "Skiplist memory tables"},
		{"webcache-varnish (Varnish)", "Web cache server", "Web page cache objects"},
		{"webcache-squid (Squid)", "Web cache server", "Web page cache objects + phxsec pools"},
		{"boost (XGBoost)", "Gradient boosting", "Gradients and model"},
		{"particle (VPIC)", "Particle simulation", "Particles and physical fields"},
	}
	fmt.Fprintf(o.Out, "%-28s %-22s %s\n", "System", "Description", "Preserved state")
	for _, r := range rows {
		fmt.Fprintf(o.Out, "%-28s %-22s %s\n", r[0], r[1], r[2])
	}
	return nil
}

// RunTab4 prints the porting-effort accounting (Table 4). In this
// reproduction the integration lives inside each app package; the rows
// report where each concern is implemented rather than C LoC counts.
func RunTab4(o Options) error {
	o.fill()
	type row struct {
		system, base, mark, cc, clean string
	}
	rows := []row{
		{"kvstore", "Main/PlanRestart/writeInfo", "UnsafeBegin(kv) in set/del (analyzer-derived)", "CrossCheck + RedoLog", "dict.Mark + FinishRecovery(true)"},
		{"lsmdb", "Main/PlanRestart/writeInfo", "UnsafeBegin(ldb) spanning WAL append + memtable insert", "CrossCheck (WAL replay)", "skiplist.Mark"},
		{"webcache-varnish", "Main + master-worker handling", "UnsafeBegin(cache) in insert/evict", "N/A", "markAll + refcount reset"},
		{"webcache-squid", "Main + phxsec section statics", "UnsafeBegin(cache) in insert/evict", "N/A", "markAll"},
		{"boost", "Main/PlanRestart", "phx_stage hooks (predict/gradient/update)", "N/A", "skipped (>90% preserved)"},
		{"particle", "Main/PlanRestart", "phx_stage hooks (push/deposit/solve)", "N/A", "skipped (>90% preserved)"},
	}
	fmt.Fprintf(o.Out, "%-18s | %-30s | %-45s | %-22s | %s\n", "System", "Base", "Marks", "Cross-check", "Cleanup")
	for _, r := range rows {
		fmt.Fprintf(o.Out, "%-18s | %-30s | %-45s | %-22s | %s\n", r.system, r.base, r.mark, r.cc, r.clean)
	}
	return nil
}

// RunTab5 prints the reproduced bug catalogue (Table 5).
func RunTab5(o Options) error {
	o.fill()
	fmt.Fprintf(o.Out, "%-5s %-18s %-7s %-40s %s\n", "No.", "System", "Case#", "Description", "Expected")
	for _, b := range bugs.All() {
		exp := "phoenix-recover"
		if b.Expected == bugs.OutcomeFallback {
			exp = "unsafe-fallback"
		}
		fmt.Fprintf(o.Out, "%-5s %-18s %-7s %-40s %s\n", b.ID, b.System, b.Case, b.Desc, exp)
	}
	return nil
}

// RunTab6 prints the injected fault-type catalogue (Table 6).
func RunTab6(o Options) error {
	o.fill()
	methods := map[faultinject.FaultType]string{
		faultinject.CompInversion: "example: > becomes <=",
		faultinject.MissingStore:  "removing Store instruction",
		faultinject.WrongOperand:  "example: set operand to 0 or 1",
		faultinject.MissingBranch: "remove branch instruction",
		faultinject.UninitVar:     "remove first assignment after Alloca",
		faultinject.WrongResult:   "Store instruction writes 0 or 1",
		faultinject.MissingCall:   "remove function call",
	}
	fmt.Fprintf(o.Out, "%-24s %s\n", "Fault", "Method")
	for t := faultinject.FaultType(0); t < faultinject.NumFaultTypes; t++ {
		fmt.Fprintf(o.Out, "%-24s %s\n", t, methods[t])
	}
	return nil
}
